package tpq

import (
	"math/rand"
	"testing"
)

// TestPropertyMinimizePreservesEquivalence: on random queries, the
// minimized query must be equivalent to the original (mutual
// containment) and structurally valid.
func TestPropertyMinimizePreservesEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for iter := 0; iter < 300; iter++ {
		q := randomQuery(r)
		orig := q.Clone()
		Minimize(q)
		if err := q.Validate(); err != nil {
			t.Fatalf("iter %d: minimized query invalid: %v\norig: %s", iter, err, orig)
		}
		if !Equivalent(orig, q) {
			t.Fatalf("iter %d: minimization changed semantics:\norig: %s\nmin:  %s",
				iter, orig, q)
		}
	}
}

// TestPropertyMinimizeIdempotent: minimizing twice removes nothing more.
func TestPropertyMinimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for iter := 0; iter < 200; iter++ {
		q := randomQuery(r)
		Minimize(q)
		if removed := Minimize(q); removed != 0 {
			t.Fatalf("iter %d: second Minimize removed %d nodes: %s", iter, removed, q)
		}
	}
}

// TestPropertyMinimizeShrinksDuplicatedBranches: grafting a copy of an
// existing predicate-free branch must always be undone by minimization.
func TestPropertyMinimizeShrinksDuplicatedBranches(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 200; iter++ {
		q := randomQuery(r)
		Minimize(q) // start from a minimal query
		base := len(q.Nodes)
		// Duplicate a random non-root subtree as a sibling copy.
		if base < 2 {
			continue
		}
		victim := 1 + r.Intn(base-1)
		parent := q.Nodes[victim].Parent
		// Graft a copy only when the subtree carries no predicates
		// (predicate-free duplicates are always redundant).
		sub := q.Descendants(victim)
		clean := true
		for _, s := range sub {
			if len(q.Nodes[s].Constraints) > 0 || len(q.Nodes[s].FT) > 0 {
				clean = false
			}
		}
		if !clean {
			continue
		}
		copySubtree(q, victim, parent)
		if removed := Minimize(q); len(q.Nodes) != base {
			t.Fatalf("iter %d: duplicate branch not removed (removed=%d, %d vs %d): %s",
				iter, removed, len(q.Nodes), base, q)
		}
	}
}

// copySubtree grafts a deep copy of subtree root under parent.
func copySubtree(q *Query, root, parent int) int {
	n := q.Nodes[root]
	id := q.AddChild(parent, n.Tag, n.Axis)
	q.Nodes[id].Constraints = append([]Constraint(nil), n.Constraints...)
	q.Nodes[id].FT = append([]FTPred(nil), n.FT...)
	for _, c := range n.Children {
		copySubtree(q, c, id)
	}
	return id
}

func TestMinimizeOnParsedQueries(t *testing.T) {
	cases := []struct {
		src        string
		expectGone bool
	}{
		{`//a[./b and ./b]`, true},
		{`//a[.//b and ./b]`, true},       // ./b implies .//b
		{`//a[./b and .//c]`, false},      // different tags
		{`//a[./b[x > 1] and ./b]`, true}, // bare ./b implied by the stronger
	}
	for _, c := range cases {
		q := MustParse(c.src)
		before := len(q.Nodes)
		Minimize(q)
		if c.expectGone && len(q.Nodes) >= before {
			t.Errorf("%s: expected shrink", c.src)
		}
		if !c.expectGone && len(q.Nodes) != before {
			t.Errorf("%s: unexpected shrink to %s", c.src, q)
		}
	}
}
