// Package tpq implements the paper's query class: extended tree pattern
// queries (Section 3). A TPQ is a rooted tree whose nodes are labeled by
// tags and connected by parent-child (pc) or ancestor-descendant (ad)
// edges, with a distinguished answer node. Leaf conditions are constraint
// predicates (value relOp constant, e.g. price < 2000) and keyword
// predicates (ftcontains(., "good condition")).
//
// The package also provides what scoping rules need to operate on
// queries: subsumption (containment) checks, and add/delete/replace edits
// that keep the pattern a connected tree.
package tpq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Axis is the structural relation between a pattern node and its parent.
// For the root pattern node, the axis is relative to the document: Child
// means "must be the document root element", Descendant means "anywhere".
type Axis uint8

const (
	// Child is the parent-child axis (pc-edge, "/").
	Child Axis = iota
	// Descendant is the ancestor-descendant axis (ad-edge, "//").
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// RelOp is a comparison operator of a constraint predicate.
type RelOp uint8

const (
	EQ RelOp = iota
	NE
	LT
	LE
	GT
	GE
)

var relOpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (op RelOp) String() string { return relOpNames[op] }

// Eval applies the operator to the comparison result cmp (-1, 0, +1 of
// left vs right).
func (op RelOp) Eval(cmp int) bool {
	switch op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	}
	return false
}

// Value is a constraint literal: a number or a string.
type Value struct {
	IsNum bool
	Num   float64
	Str   string
}

// Num returns a numeric Value.
func NumValue(f float64) Value { return Value{IsNum: true, Num: f} }

// StrValue returns a string Value.
func StrValue(s string) Value { return Value{Str: s} }

// Compare compares a raw document value against the literal, returning
// (-1|0|+1, true) or ok=false when the document value cannot be
// interpreted in the literal's domain.
func (v Value) Compare(raw string) (int, bool) {
	raw = strings.TrimSpace(raw)
	if v.IsNum {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, false
		}
		switch {
		case f < v.Num:
			return -1, true
		case f > v.Num:
			return 1, true
		}
		return 0, true
	}
	return strings.Compare(raw, v.Str), true
}

func (v Value) String() string {
	if v.IsNum {
		// 'f' keeps the literal inside the query grammar (the lexer has
		// no exponent syntax).
		return strconv.FormatFloat(v.Num, 'f', -1, 64)
	}
	return QuoteString(v.Str)
}

// QuoteString renders s as a query-language string literal, escaping
// exactly what the lexer unescapes (a backslash protects the next byte);
// strconv.Quote would emit \x-style escapes the lexer does not know.
func QuoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

// Equal reports literal equality.
func (v Value) Equal(o Value) bool {
	if v.IsNum != o.IsNum {
		return false
	}
	if v.IsNum {
		return v.Num == o.Num
	}
	return v.Str == o.Str
}

// Constraint is a value predicate on a pattern node: the node's content
// (Attr == "") or the node's attribute Attr compares against Val under Op.
type Constraint struct {
	Attr string
	Op   RelOp
	Val  Value
	// Optional marks a predicate that filters nothing but contributes
	// Weight to the score when satisfied — the outer-join encoding of
	// scoping rules (Section 6.2, Plan 1).
	Optional bool
	Weight   float64
}

func (c Constraint) String() string {
	lhs := "."
	if c.Attr != "" {
		lhs = c.Attr
	}
	s := fmt.Sprintf("%s %s %s", lhs, c.Op, c.Val)
	if c.Optional {
		s += "?"
	}
	return s
}

// FTPred is a full-text predicate: the pattern node's subtree contains an
// occurrence of Phrase at any depth.
type FTPred struct {
	Phrase string
	// Optional / Weight: see Constraint.
	Optional bool
	Weight   float64
}

func (f FTPred) String() string {
	s := "ftcontains(., " + QuoteString(f.Phrase) + ")"
	if f.Optional {
		s += "?"
	}
	return s
}

// Node is one pattern node of a TPQ.
type Node struct {
	Tag         string
	Axis        Axis // relation to the parent pattern node
	Parent      int  // index into Query.Nodes; -1 for the root
	Children    []int
	Constraints []Constraint
	FT          []FTPred
	// Optional marks the whole subtree as an outer-joined (non-filtering,
	// score-contributing) branch, produced by flock encoding.
	Optional bool
	Weight   float64
}

// Query is an extended tree pattern query. Nodes[0] is the pattern root;
// Dist indexes the distinguished (answer) node.
type Query struct {
	Nodes []Node
	Dist  int
}

// NewQuery creates a query with a single root pattern node reached via
// axis from the document root.
func NewQuery(tag string, axis Axis) *Query {
	return &Query{Nodes: []Node{{Tag: tag, Axis: axis, Parent: -1}}, Dist: 0}
}

// AddChild appends a new pattern node under parent and returns its index.
func (q *Query) AddChild(parent int, tag string, axis Axis) int {
	id := len(q.Nodes)
	q.Nodes = append(q.Nodes, Node{Tag: tag, Axis: axis, Parent: parent})
	q.Nodes[parent].Children = append(q.Nodes[parent].Children, id)
	return id
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	nq := &Query{Nodes: make([]Node, len(q.Nodes)), Dist: q.Dist}
	for i, n := range q.Nodes {
		cn := n
		cn.Children = append([]int(nil), n.Children...)
		cn.Constraints = append([]Constraint(nil), n.Constraints...)
		cn.FT = append([]FTPred(nil), n.FT...)
		nq.Nodes[i] = cn
	}
	return nq
}

// Validate checks the structural invariants: a single root, parent/child
// consistency, acyclicity, Dist in range.
func (q *Query) Validate() error {
	if len(q.Nodes) == 0 {
		return fmt.Errorf("tpq: empty query")
	}
	if q.Dist < 0 || q.Dist >= len(q.Nodes) {
		return fmt.Errorf("tpq: distinguished node %d out of range", q.Dist)
	}
	roots := 0
	seen := make([]bool, len(q.Nodes))
	for i, n := range q.Nodes {
		if n.Parent == -1 {
			roots++
			if i != 0 {
				return fmt.Errorf("tpq: root must be node 0, found root at %d", i)
			}
			continue
		}
		if n.Parent < 0 || n.Parent >= len(q.Nodes) {
			return fmt.Errorf("tpq: node %d has invalid parent %d", i, n.Parent)
		}
		found := false
		for _, c := range q.Nodes[n.Parent].Children {
			if c == i {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tpq: node %d missing from parent %d's children", i, n.Parent)
		}
	}
	if roots != 1 {
		return fmt.Errorf("tpq: %d roots, want exactly 1", roots)
	}
	// Reachability from the root (acyclic by construction of the check).
	var visit func(i, depth int) error
	visit = func(i, depth int) error {
		if depth > len(q.Nodes) {
			return fmt.Errorf("tpq: cycle detected")
		}
		if seen[i] {
			return fmt.Errorf("tpq: node %d reached twice", i)
		}
		seen[i] = true
		for _, c := range q.Nodes[i].Children {
			if q.Nodes[c].Parent != i {
				return fmt.Errorf("tpq: child %d of %d has parent %d", c, i, q.Nodes[c].Parent)
			}
			if err := visit(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(0, 0); err != nil {
		return err
	}
	for i := range q.Nodes {
		if !seen[i] {
			return fmt.Errorf("tpq: node %d unreachable from root", i)
		}
	}
	return nil
}

// Ancestors returns the pattern-node path from the root down to i,
// inclusive of both.
func (q *Query) Ancestors(i int) []int {
	var path []int
	for n := i; n != -1; n = q.Nodes[n].Parent {
		path = append(path, n)
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}

// Descendants returns i and all pattern nodes below it, in preorder.
func (q *Query) Descendants(i int) []int {
	out := []int{i}
	for _, c := range q.Nodes[i].Children {
		out = append(out, q.Descendants(c)...)
	}
	return out
}

// FindByTag returns the indexes of pattern nodes with the given tag.
func (q *Query) FindByTag(tag string) []int {
	var out []int
	for i, n := range q.Nodes {
		if n.Tag == tag {
			out = append(out, i)
		}
	}
	return out
}

// RemoveFT removes full-text predicates with the given normalized-equal
// phrase at node i or any pattern descendant of i (ftcontains(x, k) holds
// at any depth, so a rule that deletes it must reach nested occurrences).
// It returns the number of predicates removed.
func (q *Query) RemoveFT(i int, phrase string) int {
	removed := 0
	for _, d := range q.Descendants(i) {
		kept := q.Nodes[d].FT[:0]
		for _, f := range q.Nodes[d].FT {
			if strings.EqualFold(f.Phrase, phrase) {
				removed++
			} else {
				kept = append(kept, f)
			}
		}
		q.Nodes[d].FT = kept
	}
	return removed
}

// SetFTOptional marks full-text predicates with the given phrase at node
// i or any pattern descendant as optional with the given score weight —
// the outer-join encoding of a delete scoping rule (Section 6.2: the
// outer-join "ensures american cars with low mileage as well as other
// cars are captured, and assigns a higher score" to matching ones). It
// returns the number of predicates marked.
func (q *Query) SetFTOptional(i int, phrase string, weight float64) int {
	marked := 0
	for _, d := range q.Descendants(i) {
		for k := range q.Nodes[d].FT {
			f := &q.Nodes[d].FT[k]
			if strings.EqualFold(f.Phrase, phrase) {
				f.Optional = true
				f.Weight = weight
				marked++
			}
		}
	}
	return marked
}

// SetConstraintOptional marks matching constraint predicates at node i or
// any pattern descendant as optional with the given weight; see
// SetFTOptional.
func (q *Query) SetConstraintOptional(i int, attr string, op RelOp, val Value, weight float64) int {
	marked := 0
	for _, d := range q.Descendants(i) {
		for k := range q.Nodes[d].Constraints {
			c := &q.Nodes[d].Constraints[k]
			if c.Attr == attr && c.Op == op && c.Val.Equal(val) {
				c.Optional = true
				c.Weight = weight
				marked++
			}
		}
	}
	return marked
}

// RemoveConstraint removes constraint predicates on attr with the given
// op/value at node i or any pattern descendant. It returns the count.
func (q *Query) RemoveConstraint(i int, attr string, op RelOp, val Value) int {
	removed := 0
	for _, d := range q.Descendants(i) {
		kept := q.Nodes[d].Constraints[:0]
		for _, c := range q.Nodes[d].Constraints {
			if c.Attr == attr && c.Op == op && c.Val.Equal(val) {
				removed++
			} else {
				kept = append(kept, c)
			}
		}
		q.Nodes[d].Constraints = kept
	}
	return removed
}

// RemoveNode deletes the subtree rooted at pattern node i (which must be
// neither the root nor contain the distinguished node) and compacts
// indices. It returns an error otherwise.
func (q *Query) RemoveNode(i int) error {
	if i == 0 {
		return fmt.Errorf("tpq: cannot remove the pattern root")
	}
	doomed := q.Descendants(i)
	isDoomed := make(map[int]bool, len(doomed))
	for _, d := range doomed {
		isDoomed[d] = true
	}
	if isDoomed[q.Dist] {
		return fmt.Errorf("tpq: cannot remove the distinguished node")
	}
	// Build the index remap.
	remap := make([]int, len(q.Nodes))
	next := 0
	for idx := range q.Nodes {
		if isDoomed[idx] {
			remap[idx] = -1
			continue
		}
		remap[idx] = next
		next++
	}
	newNodes := make([]Node, 0, next)
	for idx, n := range q.Nodes {
		if isDoomed[idx] {
			continue
		}
		if n.Parent != -1 {
			n.Parent = remap[n.Parent]
		}
		kids := n.Children[:0]
		for _, c := range n.Children {
			if !isDoomed[c] {
				kids = append(kids, remap[c])
			}
		}
		n.Children = kids
		newNodes = append(newNodes, n)
	}
	q.Nodes = newNodes
	q.Dist = remap[q.Dist]
	return nil
}

// RelaxEdge turns the pc-edge above node i into an ad-edge (a classic
// relaxation from FleXPath [3]); it is a no-op on ad-edges and the root.
func (q *Query) RelaxEdge(i int) {
	if i != 0 {
		q.Nodes[i].Axis = Descendant
	}
}

// String renders the query in the parseable query language. The path
// from the pattern root to the distinguished node is rendered as the
// top-level step spine (so the parser's default distinguished node is
// preserved); every other branch becomes a bracketed predicate.
func (q *Query) String() string {
	spine := q.Ancestors(q.Dist)
	nextOnSpine := make(map[int]int, len(spine)) // node -> its spine child
	for i := 0; i+1 < len(spine); i++ {
		nextOnSpine[spine[i]] = spine[i+1]
	}
	var sb strings.Builder
	for _, n := range spine {
		node := q.Nodes[n]
		sb.WriteString(node.Axis.String())
		sb.WriteString(node.Tag)
		preds := q.nodePreds(n, nextOnSpine[n], n == q.Dist)
		if len(preds) > 0 {
			sb.WriteString("[")
			sb.WriteString(strings.Join(preds, " and "))
			sb.WriteString("]")
		}
	}
	return sb.String()
}

// nodePreds renders the predicates of node i, skipping the child skipChild
// (0 is never a valid spine child, so 0 with isLast means "none").
func (q *Query) nodePreds(i, skipChild int, isLast bool) []string {
	n := q.Nodes[i]
	var preds []string
	for _, c := range n.Constraints {
		preds = append(preds, c.String())
	}
	for _, f := range n.FT {
		p := ". ftcontains " + QuoteString(f.Phrase)
		if f.Optional {
			p += "?"
		}
		preds = append(preds, p)
	}
	for _, c := range n.Children {
		if !isLast && c == skipChild {
			continue
		}
		var cb strings.Builder
		q.writeBranch(&cb, c)
		s := cb.String()
		if q.Nodes[c].Optional {
			s += "?"
		}
		preds = append(preds, s)
	}
	return preds
}

// writeBranch renders a non-spine subtree as a predicate path.
func (q *Query) writeBranch(sb *strings.Builder, i int) {
	n := q.Nodes[i]
	sb.WriteString(n.Axis.String())
	sb.WriteString(n.Tag)
	preds := q.nodePreds(i, 0, true)
	if len(preds) > 0 {
		sb.WriteString("[")
		sb.WriteString(strings.Join(preds, " and "))
		sb.WriteString("]")
	}
}

// ExpandPhrases returns a copy of q in which every required full-text
// predicate gains one optional predicate per synonym (weighted, so
// synonym-only matches rank below exact matches) — thesaurus-based query
// expansion, the extension Section 7.1 of the paper mentions but does
// not evaluate. syn maps a phrase to its synonyms; weight scales the
// synonym predicates' score contribution (e.g. 0.5).
func (q *Query) ExpandPhrases(syn func(string) []string, weight float64) *Query {
	out := q.Clone()
	for i := range out.Nodes {
		n := &out.Nodes[i]
		orig := len(n.FT)
		for j := 0; j < orig; j++ {
			f := n.FT[j]
			if f.Optional {
				continue
			}
			for _, s := range syn(f.Phrase) {
				n.FT = append(n.FT, FTPred{Phrase: s, Optional: true, Weight: weight})
			}
		}
	}
	return out
}

// PredCount returns the number of predicates (constraints + FT) in the
// whole query, a cheap complexity proxy used by tests and stats.
func (q *Query) PredCount() int {
	c := 0
	for _, n := range q.Nodes {
		c += len(n.Constraints) + len(n.FT)
	}
	return c
}

// Phrases returns all distinct full-text phrases in the query, sorted.
func (q *Query) Phrases() []string {
	set := map[string]bool{}
	for _, n := range q.Nodes {
		for _, f := range n.FT {
			set[f.Phrase] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
