package tpq

import "strings"

// This file implements the containment machinery the paper delegates to
// XPath containment algorithms [2, 18]: a tree-pattern homomorphism check
// extended with predicate implication. Two entry points:
//
//   - SubsumedBy(cond, q): does query q subsume the (unanchored) condition
//     pattern cond? This is Section 5.1's applicability test for scoping
//     rules: "a rule p is applicable to a query Q if the condition in p is
//     subsumed by Q".
//   - Contains(super, sub): anchored containment — every document binding
//     that satisfies sub satisfies super; used by minimization and tests.
//
// Both are sound for the extended-TPQ fragment the rules use: a
// homomorphism witnesses containment. With wildcard steps ('*') in play,
// homomorphism-based containment is sound but incomplete for some
// //-and-* interactions (Miklau & Suciu [18]); rule conditions in
// practice use concrete tags, where the check is exact.

// SubsumedBy reports whether the condition pattern cond embeds into q:
// there is a mapping h of cond's pattern nodes to q's non-optional pattern
// nodes preserving tags, mapping pc-edges to pc-edges and ad-edges to
// proper pattern-descendant paths, such that every predicate of cond is
// implied by q's required predicates at (or below) the image node.
func SubsumedBy(cond, q *Query) bool {
	_, ok := embed(cond, q, nil)
	return ok
}

// Embedding returns a witnessing homomorphism for SubsumedBy(cond, q):
// a slice mapping each cond pattern-node index to the q pattern-node it
// embeds onto. ok is false when no embedding exists. Scoping rules use
// the embedding to know where in the query their conclusions attach.
func Embedding(cond, q *Query) (assign []int, ok bool) {
	return embed(cond, q, nil)
}

// Contains reports whether answers(sub) is a subset of answers(super) on
// every document: an anchored homomorphism from super into sub that maps
// root to root (respecting the root axis) and the distinguished node onto
// the distinguished node.
func Contains(super, sub *Query) bool {
	anchor := map[int]func(int) bool{
		0: func(qn int) bool {
			if super.Nodes[0].Axis == Child {
				// super requires its root tag at the document root.
				return qn == 0 && sub.Nodes[0].Axis == Child
			}
			return true
		},
		super.Dist: func(qn int) bool { return qn == sub.Dist },
	}
	_, ok := embed(super, sub, anchor)
	return ok
}

// embed searches for a homomorphism from p into q. anchor optionally
// restricts candidate images for specific p nodes. Optional branches of
// p impose nothing (they are score-only outer-joins), so they are
// excluded from the mapping.
func embed(p, q *Query, anchor map[int]func(int) bool) ([]int, bool) {
	assign := make([]int, len(p.Nodes))
	for i := range assign {
		assign[i] = -1
	}
	all := p.Descendants(0) // preorder: parents before children
	order := all[:0]
	for _, n := range all {
		if !effectivelyOptional(p, n) {
			order = append(order, n)
		}
	}
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(order) {
			return true
		}
		pn := order[k]
		for qn := range q.Nodes {
			if !candidateOK(p, q, pn, qn, assign, anchor) {
				continue
			}
			assign[pn] = qn
			if try(k + 1) {
				return true
			}
			assign[pn] = -1
		}
		return false
	}
	if try(0) {
		return assign, true
	}
	return nil, false
}

func candidateOK(p, q *Query, pn, qn int, assign []int, anchor map[int]func(int) bool) bool {
	pNode := &p.Nodes[pn]
	qNode := &q.Nodes[qn]
	if qNode.Optional {
		return false // optional branches are not guaranteed to hold
	}
	if pNode.Tag != "*" && pNode.Tag != qNode.Tag {
		return false
	}
	if anchor != nil {
		if ok, present := anchorCheck(anchor, pn, qn); present && !ok {
			return false
		}
	}
	// Structural relation to the already-assigned parent.
	if pNode.Parent != -1 {
		qp := assign[pNode.Parent]
		if pNode.Axis == Child {
			if qNode.Parent != qp || qNode.Axis != Child {
				return false
			}
		} else {
			if !isPatternDescendant(q, qp, qn) {
				return false
			}
		}
	}
	// Predicate implication.
	for _, want := range pNode.Constraints {
		if want.Optional {
			continue // optional predicates in the condition impose nothing
		}
		if !constraintImpliedAt(q, qn, want) {
			return false
		}
	}
	for _, want := range pNode.FT {
		if want.Optional {
			continue
		}
		if !ftImpliedAt(q, qn, want.Phrase) {
			return false
		}
	}
	return true
}

func anchorCheck(anchor map[int]func(int) bool, pn, qn int) (ok, present bool) {
	f, present := anchor[pn]
	if !present {
		return true, false
	}
	return f(qn), true
}

// effectivelyOptional reports whether pattern node n or any ancestor is
// marked optional.
func effectivelyOptional(q *Query, n int) bool {
	for ; n != -1; n = q.Nodes[n].Parent {
		if q.Nodes[n].Optional {
			return true
		}
	}
	return false
}

// isPatternDescendant reports whether d is a proper descendant of a in the
// pattern tree (via any mix of pc/ad edges).
func isPatternDescendant(q *Query, a, d int) bool {
	for n := q.Nodes[d].Parent; n != -1; n = q.Nodes[n].Parent {
		if n == a {
			return true
		}
	}
	return false
}

// constraintImpliedAt reports whether some required constraint at q-node
// qn (matching the wanted attribute) implies want.
func constraintImpliedAt(q *Query, qn int, want Constraint) bool {
	for _, have := range q.Nodes[qn].Constraints {
		if have.Optional || have.Attr != want.Attr {
			continue
		}
		if ImpliesConstraint(have.Op, have.Val, want.Op, want.Val) {
			return true
		}
	}
	return false
}

// ftImpliedAt reports whether a required full-text predicate at qn or any
// required pattern descendant of qn implies ftcontains(., phrase).
// Descendants count because ftcontains matches at any depth: if a
// descendant's subtree contains the phrase, so does qn's.
func ftImpliedAt(q *Query, qn int, phrase string) bool {
	for _, d := range q.Descendants(qn) {
		if d != qn && q.Nodes[d].Optional {
			continue
		}
		if d != qn && !requiredPathTo(q, qn, d) {
			continue
		}
		for _, have := range q.Nodes[d].FT {
			if have.Optional {
				continue
			}
			if ImpliesPhrase(have.Phrase, phrase) {
				return true
			}
		}
	}
	return false
}

// requiredPathTo reports whether every pattern node strictly between anc
// and desc (and desc itself) is non-optional.
func requiredPathTo(q *Query, anc, desc int) bool {
	for n := desc; n != anc; n = q.Nodes[n].Parent {
		if n == -1 {
			return false
		}
		if q.Nodes[n].Optional {
			return false
		}
	}
	return true
}

// ImpliesConstraint reports whether (x haveOp haveVal) implies
// (x wantOp wantVal) over the literal's ordered domain. Numeric and
// string domains never imply across each other.
func ImpliesConstraint(haveOp RelOp, haveVal Value, wantOp RelOp, wantVal Value) bool {
	if haveVal.IsNum != wantVal.IsNum {
		return false
	}
	cmp := compareValues(haveVal, wantVal) // have vs want
	switch haveOp {
	case EQ:
		// x = a implies (x op b) iff (a op b).
		return wantOp.Eval(cmp)
	case NE:
		return wantOp == NE && cmp == 0
	case LT:
		switch wantOp {
		case LT, LE:
			return cmp <= 0 // x < a, a <= b => x < b (hence <= b)
		case NE:
			return cmp <= 0 // x < a <= b => x != b
		}
	case LE:
		switch wantOp {
		case LE:
			return cmp <= 0
		case LT, NE:
			return cmp < 0
		}
	case GT:
		switch wantOp {
		case GT, GE, NE:
			return cmp >= 0
		}
	case GE:
		switch wantOp {
		case GE:
			return cmp >= 0
		case GT, NE:
			return cmp > 0
		}
	}
	return false
}

func compareValues(a, b Value) int {
	if a.IsNum {
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return 0
	}
	return strings.Compare(a.Str, b.Str)
}

// ImpliesPhrase reports whether containing an occurrence of have implies
// containing an occurrence of want: want's word sequence is a contiguous
// (case-insensitive) subsequence of have's.
func ImpliesPhrase(have, want string) bool {
	h := strings.Fields(strings.ToLower(have))
	w := strings.Fields(strings.ToLower(want))
	if len(w) == 0 || len(w) > len(h) {
		return false
	}
outer:
	for i := 0; i+len(w) <= len(h); i++ {
		for j := range w {
			if h[i+j] != w[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// Equivalent reports mutual containment of two anchored queries.
func Equivalent(a, b *Query) bool {
	return Contains(a, b) && Contains(b, a)
}
