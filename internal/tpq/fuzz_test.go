package tpq

import "testing"

// FuzzParse checks that the query parser never panics, and that whatever
// it accepts survives a String/re-parse round trip as an equivalent,
// valid query. Run with `go test -fuzz FuzzParse ./internal/tpq` for a
// real fuzzing session; the seed corpus runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`,
		`//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]`,
		`//person(*)[.//business[. ftcontains "Yes"]]`,
		`/dealer/car[color = red]`,
		`//a[x <> 5 and y >= 2 and . ftcontains "k"?]`,
		`//a[./b? and c = 'q']`,
		`//`, `//a[`, `//a]]`, `//a[x =]`, `//a[ftcontains(]`, `//a["`,
		`//a[. ftcontains "unterminated]`,
		"//\x00weird", "//a[x = 99999999999999999999999]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v\nsrc: %q", err, src)
		}
		out := q.String()
		q2, err := Parse(out)
		if err != nil {
			t.Fatalf("String output unparseable: %v\nsrc: %q\nout: %q", err, src, out)
		}
		if !Equivalent(q, q2) {
			t.Fatalf("round trip not equivalent\nsrc: %q\nout: %q", src, out)
		}
	})
}
