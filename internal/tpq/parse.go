package tpq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the query language into a TPQ. The language covers exactly
// the paper's query class:
//
//	//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]
//	//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]
//	//person(*)[.//business[. ftcontains "Yes"]]
//
// Steps: '/' is a pc-edge, '//' an ad-edge; the first step's axis is
// relative to the document root. Predicates inside [...] are conjunctions
// ('and' or '&') of:
//   - relative paths with an optional comparison:  price < 2000,
//     ./price <= 2000, .//x/y = "s"  (a bare path is an existence test);
//   - full-text predicates:  . ftcontains "phrase",
//     path ftcontains "phrase", ftcontains(path, "phrase"),
//     about(path, "phrase")  (NEXI spelling);
//   - a trailing '?' marks the predicate optional (outer-join semantics).
//
// A step name may be the wildcard '*', matching any element tag.
// The distinguished node is the last top-level step unless a step carries
// the explicit marker '(*)'.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("tpq: parse %q: %w", src, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash
	tokName
	tokDot
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokComma
	tokRelOp
	tokNumber
	tokString
	tokAnd
	tokQuestion
	tokStar
)

type token struct {
	kind tokKind
	text string
	op   RelOp
	num  float64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) error(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) lexAll() error {
	for {
		t, err := l.next()
		if err != nil {
			return err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return nil
		}
	}
}

func isNameStart(r byte) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r >= 0x80
}

func isNameRune(r byte) bool {
	return isNameStart(r) || (r >= '0' && r <= '9') || r == '-'
}

func (l *lexer) next() (token, error) {
	s := l.src
	for l.pos < len(s) && unicode.IsSpace(rune(s[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(s) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := s[l.pos]
	switch {
	case c == '/':
		l.pos++
		if l.pos < len(s) && s[l.pos] == '/' {
			l.pos++
			return token{kind: tokDSlash, pos: start}, nil
		}
		return token{kind: tokSlash, pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, pos: start}, nil
	case c == '(':
		l.pos++
		// '(*)' distinguished-node marker
		if l.pos+1 < len(s) && s[l.pos] == '*' && s[l.pos+1] == ')' {
			l.pos += 2
			return token{kind: tokStar, pos: start}, nil
		}
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '?':
		l.pos++
		return token{kind: tokQuestion, pos: start}, nil
	case c == '&':
		l.pos++
		if l.pos < len(s) && s[l.pos] == '&' {
			l.pos++
		}
		return token{kind: tokAnd, pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokName, text: "*", pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokRelOp, op: EQ, pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(s) && s[l.pos] == '=' {
			l.pos++
			return token{kind: tokRelOp, op: NE, pos: start}, nil
		}
		return token{}, l.error("unexpected '!'")
	case c == '<':
		l.pos++
		if l.pos < len(s) && s[l.pos] == '=' {
			l.pos++
			return token{kind: tokRelOp, op: LE, pos: start}, nil
		}
		if l.pos < len(s) && s[l.pos] == '>' { // '<>' per the paper's figures
			l.pos++
			return token{kind: tokRelOp, op: NE, pos: start}, nil
		}
		return token{kind: tokRelOp, op: LT, pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(s) && s[l.pos] == '=' {
			l.pos++
			return token{kind: tokRelOp, op: GE, pos: start}, nil
		}
		return token{kind: tokRelOp, op: GT, pos: start}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(s) && s[l.pos] != quote {
			if s[l.pos] == '\\' && l.pos+1 < len(s) {
				l.pos++
			}
			sb.WriteByte(s[l.pos])
			l.pos++
		}
		if l.pos >= len(s) {
			return token{}, l.error("unterminated string")
		}
		l.pos++
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c >= '0' && c <= '9':
		j := l.pos
		for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
			j++
		}
		f, err := strconv.ParseFloat(s[l.pos:j], 64)
		if err != nil {
			return token{}, l.error("bad number %q", s[l.pos:j])
		}
		l.pos = j
		return token{kind: tokNumber, num: f, text: s[start:j], pos: start}, nil
	case isNameStart(c):
		j := l.pos
		for j < len(s) && isNameRune(s[j]) {
			j++
		}
		word := s[l.pos:j]
		l.pos = j
		if word == "and" {
			return token{kind: tokAnd, pos: start}, nil
		}
		return token{kind: tokName, text: word, pos: start}, nil
	}
	return token{}, l.error("unexpected character %q", string(c))
}

type parser struct {
	lex  *lexer
	toks []token
	i    int
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) take() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.i].kind == k }

func (p *parser) expect(k tokKind, what string) (token, error) {
	if !p.at(k) {
		t := p.peek()
		return t, fmt.Errorf("at offset %d: expected %s", t.pos, what)
	}
	return p.take(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.lex.lexAll(); err != nil {
		return nil, err
	}
	p.toks = p.lex.toks

	var q *Query
	cur := -1
	explicitDist := -1
	for p.at(tokSlash) || p.at(tokDSlash) {
		axis := Child
		if p.take().kind == tokDSlash {
			axis = Descendant
		}
		name, err := p.expect(tokName, "element name")
		if err != nil {
			return nil, err
		}
		if q == nil {
			q = NewQuery(name.text, axis)
			cur = 0
		} else {
			cur = q.AddChild(cur, name.text, axis)
		}
		if p.at(tokStar) {
			p.take()
			explicitDist = cur
		}
		for p.at(tokLBracket) {
			if err := p.parsePredicate(q, cur); err != nil {
				return nil, err
			}
		}
	}
	if q == nil {
		return nil, fmt.Errorf("empty query: expected '/' or '//'")
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("at offset %d: trailing input", p.peek().pos)
	}
	if explicitDist >= 0 {
		q.Dist = explicitDist
	} else {
		q.Dist = cur
	}
	return q, nil
}

// parsePredicate parses one [...] block attached to pattern node ctx.
func (p *parser) parsePredicate(q *Query, ctx int) error {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return err
	}
	for {
		if err := p.parseAtom(q, ctx); err != nil {
			return err
		}
		if p.at(tokAnd) {
			p.take()
			continue
		}
		break
	}
	_, err := p.expect(tokRBracket, "']'")
	return err
}

// parseAtom parses one conjunct: a path atom, a comparison, or a full-text
// predicate (infix or function form).
func (p *parser) parseAtom(q *Query, ctx int) error {
	// Function forms: ftcontains(path, "phrase") / about(path, "phrase").
	if p.at(tokName) && (p.peek().text == "ftcontains" || p.peek().text == "about") &&
		p.toks[p.i+1].kind == tokLParen {
		p.take()
		p.take() // '('
		node, err := p.parsePath(q, ctx, true)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return err
		}
		str, err := p.expect(tokString, "quoted phrase")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		if strings.TrimSpace(str.text) == "" {
			return fmt.Errorf("at offset %d: empty full-text phrase", str.pos)
		}
		opt := p.optionalMark()
		q.Nodes[node].FT = append(q.Nodes[node].FT, FTPred{Phrase: str.text, Optional: opt, Weight: optWeight(opt)})
		return nil
	}

	node, err := p.parsePath(q, ctx, false)
	if err != nil {
		return err
	}
	switch {
	case p.at(tokRelOp):
		op := p.take().op
		val, err := p.parseLiteral()
		if err != nil {
			return err
		}
		opt := p.optionalMark()
		q.Nodes[node].Constraints = append(q.Nodes[node].Constraints,
			Constraint{Op: op, Val: val, Optional: opt, Weight: optWeight(opt)})
	case p.at(tokName) && p.peek().text == "ftcontains":
		p.take()
		str, err := p.expect(tokString, "quoted phrase")
		if err != nil {
			return err
		}
		if strings.TrimSpace(str.text) == "" {
			return fmt.Errorf("at offset %d: empty full-text phrase", str.pos)
		}
		opt := p.optionalMark()
		q.Nodes[node].FT = append(q.Nodes[node].FT, FTPred{Phrase: str.text, Optional: opt, Weight: optWeight(opt)})
	default:
		// Bare path: existence predicate. Optional '?' marks the whole
		// added branch as outer-joined.
		if p.at(tokQuestion) {
			p.take()
			if node != ctx {
				markOptionalUpTo(q, node, ctx)
			}
		}
	}
	return nil
}

func (p *parser) optionalMark() bool {
	if p.at(tokQuestion) {
		p.take()
		return true
	}
	return false
}

// optWeight is the default score weight of an optional predicate.
func optWeight(optional bool) float64 {
	if optional {
		return 1
	}
	return 0
}

// markOptionalUpTo marks node and its ancestors up to (excluding) ctx
// as optional branches.
func markOptionalUpTo(q *Query, node, ctx int) {
	for n := node; n != ctx && n != -1; n = q.Nodes[n].Parent {
		q.Nodes[n].Optional = true
		if q.Nodes[n].Weight == 0 {
			q.Nodes[n].Weight = 1
		}
	}
}

// parsePath parses a relative path inside a predicate and returns the
// pattern node it denotes, creating nodes along the way. inFunc reports
// whether the path is a function argument (then a bare '.' is common).
func (p *parser) parsePath(q *Query, ctx int, inFunc bool) (int, error) {
	cur := ctx
	switch {
	case p.at(tokDot):
		p.take()
	case p.at(tokName):
		// Leading bare name == ./name
		name := p.take()
		cur = q.AddChild(cur, name.text, Child)
		for p.at(tokLBracket) {
			if err := p.parsePredicate(q, cur); err != nil {
				return 0, err
			}
		}
	case p.at(tokSlash) || p.at(tokDSlash):
		// fallthrough to the step loop below
	default:
		t := p.peek()
		return 0, fmt.Errorf("at offset %d: expected path", t.pos)
	}
	for p.at(tokSlash) || p.at(tokDSlash) {
		axis := Child
		if p.take().kind == tokDSlash {
			axis = Descendant
		}
		name, err := p.expect(tokName, "element name")
		if err != nil {
			return 0, err
		}
		cur = q.AddChild(cur, name.text, axis)
		for p.at(tokLBracket) {
			if err := p.parsePredicate(q, cur); err != nil {
				return 0, err
			}
		}
	}
	return cur, nil
}

func (p *parser) parseLiteral() (Value, error) {
	switch {
	case p.at(tokNumber):
		return NumValue(p.take().num), nil
	case p.at(tokString):
		return StrValue(p.take().text), nil
	case p.at(tokName): // unquoted word literal, e.g. color = red
		return StrValue(p.take().text), nil
	}
	t := p.peek()
	return Value{}, fmt.Errorf("at offset %d: expected literal", t.pos)
}
