package tpq

import "testing"

func TestParseWildcardSteps(t *testing.T) {
	q := MustParse(`//article//*[. ftcontains "data mining"]`)
	if q.Nodes[q.Dist].Tag != "*" {
		t.Fatalf("dist tag = %q", q.Nodes[q.Dist].Tag)
	}
	q2 := MustParse(`//a/*/c`)
	mid := q2.FindByTag("*")
	if len(mid) != 1 || q2.Nodes[mid[0]].Axis != Child {
		t.Fatalf("wildcard mid-step: %+v", q2.Nodes)
	}
	// Wildcards in predicate paths.
	q3 := MustParse(`//a[./*[x > 1]]`)
	if len(q3.FindByTag("*")) != 1 {
		t.Fatalf("wildcard in predicate: %s", q3)
	}
	// Round trip.
	for _, q := range []*Query{q, q2, q3} {
		q4, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if !Equivalent(q, q4) {
			t.Errorf("wildcard round trip: %s", q)
		}
	}
}

func TestWildcardMarkerDistinct(t *testing.T) {
	// '(*)' stays the distinguished marker; '*' is a step name.
	q := MustParse(`//a(*)//*`)
	_ = q
}

func TestWildcardContainment(t *testing.T) {
	// //a[./*] is implied by //a[./b]: a wildcard condition maps anywhere.
	if !SubsumedBy(MustParse(`//a[./*]`), MustParse(`//a[./b]`)) {
		t.Errorf("wildcard condition should be subsumed by concrete child")
	}
	// The converse cannot hold: //a[./*] guarantees no particular tag.
	if SubsumedBy(MustParse(`//a[./b]`), MustParse(`//a[./*]`)) {
		t.Errorf("concrete condition must not be subsumed by a wildcard")
	}
	// Containment: //a//* contains //a//b (anchored on dist).
	if !Contains(MustParse(`//a//*`), MustParse(`//a//b`)) {
		t.Errorf("//a//* must contain //a//b")
	}
	if Contains(MustParse(`//a//b`), MustParse(`//a//*`)) {
		t.Errorf("//a//b must not contain //a//*")
	}
}
