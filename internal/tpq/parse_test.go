package tpq

import (
	"strings"
	"testing"
)

func TestParsePaperQuery(t *testing.T) {
	// The running-example query Q from the introduction / Fig. 2.
	q, err := Parse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Nodes[0].Tag != "car" || q.Nodes[0].Axis != Descendant {
		t.Fatalf("root = %+v", q.Nodes[0])
	}
	if q.Dist != 0 {
		t.Fatalf("distinguished = %d, want 0 (car)", q.Dist)
	}
	descs := q.FindByTag("description")
	if len(descs) != 1 {
		t.Fatalf("description nodes: %v", descs)
	}
	d := q.Nodes[descs[0]]
	if d.Axis != Child || d.Parent != 0 {
		t.Fatalf("description node = %+v", d)
	}
	if len(d.FT) != 2 || d.FT[0].Phrase != "good condition" || d.FT[1].Phrase != "low mileage" {
		t.Fatalf("description FT = %+v", d.FT)
	}
	prices := q.FindByTag("price")
	if len(prices) != 1 {
		t.Fatalf("price nodes: %v", prices)
	}
	pc := q.Nodes[prices[0]].Constraints
	if len(pc) != 1 || pc[0].Op != LT || !pc[0].Val.Equal(NumValue(2000)) {
		t.Fatalf("price constraints = %+v", pc)
	}
}

func TestParseNEXIStyle(t *testing.T) {
	// INEX topic 131 from Section 7.1.
	q, err := Parse(`//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]`)
	if err != nil {
		t.Fatal(err)
	}
	if tag := q.Nodes[q.Dist].Tag; tag != "abs" {
		t.Fatalf("distinguished tag = %q, want abs", tag)
	}
	aus := q.FindByTag("au")
	if len(aus) != 1 {
		t.Fatalf("au nodes: %v", aus)
	}
	au := q.Nodes[aus[0]]
	if au.Axis != Descendant {
		t.Fatalf("au axis = %v, want //", au.Axis)
	}
	if len(au.FT) != 1 || au.FT[0].Phrase != "Jiawei Han" {
		t.Fatalf("au FT = %+v", au.FT)
	}
	abs := q.Nodes[q.Dist]
	if len(abs.FT) != 1 || abs.FT[0].Phrase != "data mining" {
		t.Fatalf("abs FT = %+v", abs.FT)
	}
}

func TestParseFig5Query(t *testing.T) {
	// Fig. 5: ad(person, business) & ftcontains(business, "Yes").
	q, err := Parse(`//person(*)[.//business[. ftcontains "Yes"]]`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Nodes[q.Dist].Tag != "person" {
		t.Fatalf("distinguished = %q", q.Nodes[q.Dist].Tag)
	}
	bus := q.FindByTag("business")
	if len(bus) != 1 || q.Nodes[bus[0]].Axis != Descendant {
		t.Fatalf("business node: %+v", q.Nodes[bus[0]])
	}
	if q.Nodes[bus[0]].FT[0].Phrase != "Yes" {
		t.Fatalf("business FT: %+v", q.Nodes[bus[0]].FT)
	}
}

func TestParseDistinguishedMarker(t *testing.T) {
	q := MustParse(`//a(*)//b`)
	if q.Nodes[q.Dist].Tag != "a" {
		t.Fatalf("marker ignored: dist = %q", q.Nodes[q.Dist].Tag)
	}
	q = MustParse(`//a//b`)
	if q.Nodes[q.Dist].Tag != "b" {
		t.Fatalf("default dist = %q, want last step", q.Nodes[q.Dist].Tag)
	}
}

func TestParseRelOps(t *testing.T) {
	cases := []struct {
		src string
		op  RelOp
	}{
		{`//a[x = 5]`, EQ},
		{`//a[x != 5]`, NE},
		{`//a[x <> 5]`, NE}, // the paper's figures use <>
		{`//a[x < 5]`, LT},
		{`//a[x <= 5]`, LE},
		{`//a[x > 5]`, GT},
		{`//a[x >= 5]`, GE},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		xs := q.FindByTag("x")
		if len(xs) != 1 || len(q.Nodes[xs[0]].Constraints) != 1 {
			t.Errorf("%q: constraints misplaced", c.src)
			continue
		}
		if got := q.Nodes[xs[0]].Constraints[0].Op; got != c.op {
			t.Errorf("%q: op = %v, want %v", c.src, got, c.op)
		}
	}
}

func TestParseStringLiteralsAndEscapes(t *testing.T) {
	q := MustParse(`//a[x = "hello \"world\""]`)
	c := q.Nodes[q.FindByTag("x")[0]].Constraints[0]
	if c.Val.Str != `hello "world"` {
		t.Fatalf("escaped string = %q", c.Val.Str)
	}
	q = MustParse(`//a[color = red]`)
	c = q.Nodes[q.FindByTag("color")[0]].Constraints[0]
	if c.Val.Str != "red" || c.Val.IsNum {
		t.Fatalf("bare word literal = %+v", c.Val)
	}
	q = MustParse(`//a[x = 'single']`)
	c = q.Nodes[q.FindByTag("x")[0]].Constraints[0]
	if c.Val.Str != "single" {
		t.Fatalf("single-quoted = %+v", c.Val)
	}
}

func TestParseOptionalMarks(t *testing.T) {
	q := MustParse(`//car[./description[. ftcontains "american"?]]`)
	d := q.Nodes[q.FindByTag("description")[0]]
	if len(d.FT) != 1 || !d.FT[0].Optional || d.FT[0].Weight <= 0 {
		t.Fatalf("optional FT = %+v", d.FT)
	}
	q = MustParse(`//car[price < 2000?]`)
	p := q.Nodes[q.FindByTag("price")[0]]
	if !p.Constraints[0].Optional {
		t.Fatalf("optional constraint = %+v", p.Constraints)
	}
	q = MustParse(`//car[./owner?]`)
	o := q.Nodes[q.FindByTag("owner")[0]]
	if !o.Optional {
		t.Fatalf("optional branch = %+v", o)
	}
}

func TestParseAmpersandConjunction(t *testing.T) {
	q := MustParse(`//a[x = 1 & y = 2 && z = 3]`)
	for _, tag := range []string{"x", "y", "z"} {
		if len(q.FindByTag(tag)) != 1 {
			t.Errorf("missing conjunct %q", tag)
		}
	}
}

func TestParseNestedPaths(t *testing.T) {
	q := MustParse(`//a[./b//c[d > 1] and .//e ftcontains "k"]`)
	cs := q.FindByTag("c")
	if len(cs) != 1 || q.Nodes[cs[0]].Axis != Descendant {
		t.Fatalf("c node: %+v", q.Nodes[cs[0]])
	}
	ds := q.FindByTag("d")
	if len(ds) != 1 || q.Nodes[ds[0]].Parent != cs[0] {
		t.Fatalf("d node: %+v", q.Nodes[ds[0]])
	}
	es := q.FindByTag("e")
	if len(es) != 1 || q.Nodes[es[0]].FT[0].Phrase != "k" {
		t.Fatalf("e node: %+v", q.Nodes[es[0]])
	}
}

func TestParseAbsolutePath(t *testing.T) {
	q := MustParse(`/dealer/car`)
	if q.Nodes[0].Axis != Child {
		t.Fatalf("absolute root axis = %v", q.Nodes[0].Axis)
	}
	if q.Nodes[q.Dist].Tag != "car" || q.Nodes[q.Dist].Axis != Child {
		t.Fatalf("car step: %+v", q.Nodes[q.Dist])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`car`,
		`//`,
		`//a[`,
		`//a]`,
		`//a[x <]`,
		`//a[x ! 5]`,
		`//a[ftcontains(.)]`,
		`//a[ftcontains(., "k"]`,
		`//a["unattached"]`,
		`//a[x = "unterminated]`,
		`//a extra`,
		`//a[. ftcontains]`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	sources := []string{
		`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`,
		`//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]`,
		`//person(*)[.//business[. ftcontains "Yes"]]`,
		`/dealer/car[color = "red"]`,
		`//a[x >= 10 and y != "z"]`,
	}
	for _, src := range sources {
		q := MustParse(src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("re-parse %q (from %q): %v", q.String(), src, err)
			continue
		}
		if !Equivalent(q, q2) {
			t.Errorf("round trip not equivalent:\n  src: %s\n  out: %s", src, q.String())
		}
		if q.Nodes[q.Dist].Tag != q2.Nodes[q2.Dist].Tag {
			t.Errorf("distinguished changed: %q vs %q", q.Nodes[q.Dist].Tag, q2.Nodes[q2.Dist].Tag)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	q := MustParse(`//a/b`)
	q.Dist = 99
	if err := q.Validate(); err == nil {
		t.Errorf("out-of-range Dist accepted")
	}

	q = MustParse(`//a/b`)
	q.Nodes[1].Parent = 1
	if err := q.Validate(); err == nil {
		t.Errorf("self-parent accepted")
	}

	q = MustParse(`//a/b`)
	q.Nodes[1].Parent = -1
	if err := q.Validate(); err == nil {
		t.Errorf("two roots accepted")
	}
}

func TestPhrasesAndPredCount(t *testing.T) {
	q := MustParse(`//a[. ftcontains "x y" and b ftcontains "z" and c > 1]`)
	ph := q.Phrases()
	if strings.Join(ph, ",") != "x y,z" {
		t.Fatalf("Phrases = %v", ph)
	}
	if q.PredCount() != 3 {
		t.Fatalf("PredCount = %d", q.PredCount())
	}
}
