package tpq

// Minimize removes redundant pattern branches, in the spirit of tree
// pattern minimization [2] (Amer-Yahia et al., SIGMOD 2001): a subtree is
// redundant when deleting it yields an equivalent query, which we certify
// with mutual containment. The distinguished node and its ancestors are
// never candidates. Minimize mutates q and returns the number of subtrees
// removed.
//
// The classic O(n^2) leaf-pruning loop suffices for the small patterns
// user queries and rule conditions produce.
func Minimize(q *Query) int {
	removed := 0
	for {
		victim := -1
		// Consider deepest-first so whole redundant branches go in few
		// passes; skip the root, the distinguished node and its ancestors.
		protected := map[int]bool{}
		for _, a := range q.Ancestors(q.Dist) {
			protected[a] = true
		}
		order := q.Descendants(0)
		for i := len(order) - 1; i >= 1; i-- {
			n := order[i]
			if protected[n] {
				continue
			}
			trial := q.Clone()
			if err := trial.RemoveNode(n); err != nil {
				continue
			}
			if Equivalent(q, trial) {
				victim = n
				break
			}
		}
		if victim == -1 {
			return removed
		}
		if err := q.RemoveNode(victim); err != nil {
			return removed
		}
		removed++
	}
}
