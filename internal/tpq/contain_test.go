package tpq

import (
	"math/rand"
	"testing"
)

func TestSubsumedByPaperRules(t *testing.T) {
	// Section 5.1: rules p1 and p2 of Fig. 2 are both applicable to Q,
	// i.e. their conditions are subsumed by Q.
	q := MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`)

	condP1 := MustParse(`//car[./description[. ftcontains "low mileage"]]`)
	condP2 := MustParse(`//car[./description[. ftcontains "good condition"]]`)

	if !SubsumedBy(condP1, q) {
		t.Errorf("p1's condition must be subsumed by Q")
	}
	if !SubsumedBy(condP2, q) {
		t.Errorf("p2's condition must be subsumed by Q")
	}

	// After p1 removes ftcontains(car, "good condition"), p2 no longer
	// applies (the conflict from Section 5.1).
	q2 := q.Clone()
	if n := q2.RemoveFT(0, "good condition"); n != 1 {
		t.Fatalf("RemoveFT removed %d preds", n)
	}
	if SubsumedBy(condP2, q2) {
		t.Errorf("p2 must be inapplicable after p1 fires")
	}
	if !SubsumedBy(condP1, q2) {
		t.Errorf("p1 stays applicable")
	}
}

func TestSubsumedByStructure(t *testing.T) {
	q := MustParse(`//a[./b[./c]]`)

	if !SubsumedBy(MustParse(`//a[./b]`), q) {
		t.Errorf("pc-edge present")
	}
	if !SubsumedBy(MustParse(`//a[.//c]`), q) {
		t.Errorf("ad-edge satisfied by pc-path of length 2")
	}
	if !SubsumedBy(MustParse(`//b[./c]`), q) {
		t.Errorf("unanchored condition may start anywhere")
	}
	if SubsumedBy(MustParse(`//a[./c]`), q) {
		t.Errorf("pc-edge must not match grandparent relation")
	}
	if SubsumedBy(MustParse(`//a[./d]`), q) {
		t.Errorf("missing tag")
	}

	// ad in query does not subsume pc condition.
	qAD := MustParse(`//a[.//b]`)
	if SubsumedBy(MustParse(`//a[./b]`), qAD) {
		t.Errorf("//b in query cannot guarantee pc(a,b)")
	}
	if !SubsumedBy(MustParse(`//a[.//b]`), qAD) {
		t.Errorf("ad matches ad")
	}
}

func TestSubsumedByConstraintImplication(t *testing.T) {
	q := MustParse(`//car[price < 2000]`)
	if !SubsumedBy(MustParse(`//car[price < 3000]`), q) {
		t.Errorf("price<2000 implies price<3000")
	}
	if !SubsumedBy(MustParse(`//car[price <= 2000]`), q) {
		t.Errorf("price<2000 implies price<=2000")
	}
	if SubsumedBy(MustParse(`//car[price < 1000]`), q) {
		t.Errorf("price<2000 does not imply price<1000")
	}
	if SubsumedBy(MustParse(`//car[price > 100]`), q) {
		t.Errorf("wrong direction")
	}

	qe := MustParse(`//car[price = 500]`)
	if !SubsumedBy(MustParse(`//car[price < 2000]`), qe) {
		t.Errorf("price=500 implies price<2000")
	}
	if !SubsumedBy(MustParse(`//car[price != 600]`), qe) {
		t.Errorf("price=500 implies price!=600")
	}
	if SubsumedBy(MustParse(`//car[price != 500]`), qe) {
		t.Errorf("price=500 contradicts price!=500")
	}
}

func TestSubsumedByFTImplication(t *testing.T) {
	q := MustParse(`//car[./description[. ftcontains "very good condition"]]`)
	if !SubsumedBy(MustParse(`//car[./description[. ftcontains "good condition"]]`), q) {
		t.Errorf("superset phrase implies sub-phrase")
	}
	if SubsumedBy(MustParse(`//car[./description[. ftcontains "bad condition"]]`), q) {
		t.Errorf("different phrase")
	}
	// FT at a descendant implies FT at the ancestor (any-depth semantics).
	if !SubsumedBy(MustParse(`//car[. ftcontains "good condition"]`), q) {
		t.Errorf("ftcontains(description,k) implies ftcontains(car,k)")
	}
	// But not the other way around.
	q2 := MustParse(`//car[. ftcontains "good condition" and ./description]`)
	if SubsumedBy(MustParse(`//car[./description[. ftcontains "good condition"]]`), q2) {
		t.Errorf("ftcontains(car,k) does not imply ftcontains(description,k)")
	}
}

func TestSubsumedByIgnoresOptional(t *testing.T) {
	q := MustParse(`//car[./description[. ftcontains "american"?]]`)
	if SubsumedBy(MustParse(`//car[./description[. ftcontains "american"]]`), q) {
		t.Errorf("optional predicates must not witness subsumption")
	}
	q2 := MustParse(`//car[./owner?]`)
	if SubsumedBy(MustParse(`//car[./owner]`), q2) {
		t.Errorf("optional branches must not witness subsumption")
	}
}

func TestContainsAnchored(t *testing.T) {
	sub := MustParse(`//car[price < 1000 and ./description[. ftcontains "good condition"]]`)
	super := MustParse(`//car[price < 2000]`)
	if !Contains(super, sub) {
		t.Errorf("more constrained query contained in less constrained")
	}
	if Contains(sub, super) {
		t.Errorf("containment is not symmetric here")
	}
	// Distinguished nodes must correspond.
	a := MustParse(`//car/price`)
	b := MustParse(`//car[./price]`)
	if Contains(a, b) || Contains(b, a) {
		t.Errorf("different distinguished tags cannot be contained")
	}
	// Root axis: absolute vs anywhere.
	abs := MustParse(`/dealer/car`)
	rel := MustParse(`//dealer/car`)
	if !Contains(rel, abs) {
		t.Errorf("absolute query contained in relative one")
	}
	if Contains(abs, rel) {
		t.Errorf("relative query not contained in absolute one")
	}
}

func TestEquivalentReflexive(t *testing.T) {
	for _, src := range []string{
		`//car[price < 2000]`,
		`//article[about(.//au, "X")]//abs`,
		`//a[./b and ./c[d > 1]]`,
	} {
		q := MustParse(src)
		if !Equivalent(q, q.Clone()) {
			t.Errorf("query not equivalent to its clone: %s", src)
		}
	}
}

func TestImpliesConstraintTable(t *testing.T) {
	n := NumValue
	cases := []struct {
		hOp  RelOp
		hVal Value
		wOp  RelOp
		wVal Value
		want bool
	}{
		{EQ, n(5), EQ, n(5), true},
		{EQ, n(5), LT, n(6), true},
		{EQ, n(5), GT, n(4), true},
		{EQ, n(5), NE, n(4), true},
		{EQ, n(5), NE, n(5), false},
		{LT, n(5), LT, n(5), true},
		{LT, n(5), LT, n(6), true},
		{LT, n(5), LE, n(5), true},
		{LT, n(5), LT, n(4), false},
		{LT, n(5), NE, n(5), true},
		{LT, n(5), NE, n(4), false},
		{LE, n(5), LE, n(5), true},
		{LE, n(5), LT, n(5), false},
		{LE, n(5), LT, n(6), true},
		{GT, n(5), GT, n(5), true},
		{GT, n(5), GE, n(5), true},
		{GT, n(5), GT, n(6), false},
		{GE, n(5), GE, n(5), true},
		{GE, n(5), GT, n(5), false},
		{GE, n(5), GT, n(4), true},
		{NE, n(5), NE, n(5), true},
		{NE, n(5), NE, n(6), false},
		{NE, n(5), LT, n(6), false},
		{LT, n(5), GT, n(1), false},
		{EQ, StrValue("red"), EQ, StrValue("red"), true},
		{EQ, StrValue("red"), NE, StrValue("blue"), true},
		{EQ, StrValue("red"), EQ, n(5), false}, // cross-domain
	}
	for _, c := range cases {
		got := ImpliesConstraint(c.hOp, c.hVal, c.wOp, c.wVal)
		if got != c.want {
			t.Errorf("(x %v %v) => (x %v %v): got %v, want %v",
				c.hOp, c.hVal, c.wOp, c.wVal, got, c.want)
		}
	}
}

// TestPropertyImplicationSoundness: whenever ImpliesConstraint says yes,
// every sample satisfying the premise satisfies the conclusion.
func TestPropertyImplicationSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ops := []RelOp{EQ, NE, LT, LE, GT, GE}
	for iter := 0; iter < 5000; iter++ {
		hOp := ops[r.Intn(len(ops))]
		wOp := ops[r.Intn(len(ops))]
		hVal := NumValue(float64(r.Intn(10)))
		wVal := NumValue(float64(r.Intn(10)))
		if !ImpliesConstraint(hOp, hVal, wOp, wVal) {
			continue
		}
		for x := -2.5; x <= 12.5; x += 0.5 {
			cmpH := cmpf(x, hVal.Num)
			cmpW := cmpf(x, wVal.Num)
			if hOp.Eval(cmpH) && !wOp.Eval(cmpW) {
				t.Fatalf("unsound: x=%v satisfies (x %v %v) but not (x %v %v)",
					x, hOp, hVal, wOp, wVal)
			}
		}
	}
}

func cmpf(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestImpliesPhrase(t *testing.T) {
	cases := []struct {
		have, want string
		result     bool
	}{
		{"good condition", "good condition", true},
		{"very good condition", "good condition", true},
		{"good condition", "good", true},
		{"good condition", "condition", true},
		{"good condition", "very good condition", false},
		{"good condition", "condition good", false},
		{"Good Condition", "good condition", true}, // case-insensitive
		{"good", "", false},
	}
	for _, c := range cases {
		if got := ImpliesPhrase(c.have, c.want); got != c.result {
			t.Errorf("ImpliesPhrase(%q, %q) = %v, want %v", c.have, c.want, got, c.result)
		}
	}
}

func TestMinimizeRedundantBranch(t *testing.T) {
	// ./b is implied by ./b[./c]: the bare branch is redundant.
	q := MustParse(`//a[./b and ./b[./c]]`)
	before := len(q.Nodes)
	removed := Minimize(q)
	if removed == 0 {
		t.Fatalf("expected a removal; query = %s", q)
	}
	if len(q.Nodes) >= before {
		t.Fatalf("no shrink: %d -> %d", before, len(q.Nodes))
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("minimized query invalid: %v", err)
	}
	// The constrained branch must survive.
	if !SubsumedBy(MustParse(`//a[./b[./c]]`), q) {
		t.Errorf("minimization removed the wrong branch: %s", q)
	}
}

func TestMinimizeKeepsNonRedundant(t *testing.T) {
	for _, src := range []string{
		`//car[./description[. ftcontains "good condition"] and price < 2000]`,
		`//a[./b and ./c]`,
		`//a[./b[x > 1] and ./b[x < 1]]`,
	} {
		q := MustParse(src)
		before := len(q.Nodes)
		if removed := Minimize(q); removed != 0 || len(q.Nodes) != before {
			t.Errorf("Minimize(%s) removed %d nodes", src, before-len(q.Nodes))
		}
	}
}

func TestMinimizeProtectsDistinguished(t *testing.T) {
	// //a//b with dist b; the b branch looks "redundant" structurally but
	// holds the distinguished node.
	q := MustParse(`//a[./b]//b`)
	Minimize(q)
	if q.Nodes[q.Dist].Tag != "b" {
		t.Fatalf("distinguished node lost: %s", q)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyContainmentReflexiveTransitive on random small queries.
func TestPropertyContainmentReflexiveTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	qs := make([]*Query, 0, 30)
	for i := 0; i < 30; i++ {
		qs = append(qs, randomQuery(r))
	}
	for _, q := range qs {
		if !Contains(q, q) {
			t.Fatalf("containment not reflexive: %s", q)
		}
	}
	for i := 0; i < 200; i++ {
		a, b, c := qs[r.Intn(len(qs))], qs[r.Intn(len(qs))], qs[r.Intn(len(qs))]
		if Contains(a, b) && Contains(b, c) && !Contains(a, c) {
			t.Fatalf("transitivity violated:\na=%s\nb=%s\nc=%s", a, b, c)
		}
	}
}

func randomQuery(r *rand.Rand) *Query {
	tags := []string{"a", "b", "c"}
	q := NewQuery(tags[r.Intn(len(tags))], Descendant)
	n := r.Intn(4)
	cur := 0
	for i := 0; i < n; i++ {
		axis := Child
		if r.Intn(2) == 0 {
			axis = Descendant
		}
		parent := r.Intn(len(q.Nodes))
		id := q.AddChild(parent, tags[r.Intn(len(tags))], axis)
		if r.Intn(3) == 0 {
			q.Nodes[id].Constraints = append(q.Nodes[id].Constraints,
				Constraint{Op: RelOp(r.Intn(6)), Val: NumValue(float64(r.Intn(5)))})
		}
		if r.Intn(3) == 0 {
			phrases := []string{"x", "y", "x y"}
			q.Nodes[id].FT = append(q.Nodes[id].FT,
				FTPred{Phrase: phrases[r.Intn(len(phrases))]})
		}
		cur = id
	}
	_ = cur
	q.Dist = 0
	return q
}
