package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (including any
// _bucket/_sum/_count suffix), its labels, and its value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseExposition parses Prometheus text-exposition output (the subset
// this package renders) and validates its structure:
//
//   - every sample line parses as name{labels} value;
//   - every sample belongs to a family announced by a # TYPE line;
//   - histogram bucket counts are cumulative (non-decreasing in le)
//     and the +Inf bucket equals _count.
//
// It exists for tests — the exposition lint in internal/server and the
// registry round-trip test — not for production scrape handling.
func ParseExposition(text string) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	var cur *Family
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			f := fams[name]
			if f == nil {
				f = &Family{Name: name}
				fams[name] = f
			}
			f.Help = help
			cur = f
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, typ)
			}
			f := fams[name]
			if f == nil {
				f = &Family{Name: name}
				fams[name] = f
			}
			if f.Type != "" && f.Type != typ {
				return nil, fmt.Errorf("line %d: %s re-typed %s -> %s", ln+1, name, f.Type, typ)
			}
			f.Type = typ
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		f := familyFor(fams, s.Name)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE family", ln+1, s.Name)
		}
		if cur != nil && f != cur {
			// Samples may only appear under their own family's header
			// block; interleaving breaks scrapers.
			return nil, fmt.Errorf("line %d: sample %q appears under family %q", ln+1, s.Name, cur.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has no # TYPE line", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its family, stripping histogram
// suffixes when the base name is a known histogram.
func familyFor(fams map[string]*Family, sample string) *Family {
	if f, ok := fams[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			if f, ok := fams[base]; ok && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: Labels{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		for _, pair := range splitLabelPairs(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validName(k) {
				return s, fmt.Errorf("malformed label %q in %q", pair, line)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				return s, fmt.Errorf("label value %s in %q: %w", v, line, err)
			}
			s.Labels[k] = uq
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "+Inf" {
		s.Value = math.Inf(1)
		return s, nil
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("value %q in %q: %w", valStr, line, err)
	}
	s.Value = v
	return s, nil
}

// splitLabelPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// checkHistogram validates cumulative buckets and sum/count presence
// for every label-set of a histogram family.
func checkHistogram(f *Family) error {
	type hist struct {
		les    []float64
		counts map[float64]float64
		count  float64
		hasCnt bool
	}
	bySig := make(map[string]*hist)
	sig := func(l Labels) string {
		cp := make(Labels, len(l))
		for k, v := range l {
			if k != "le" {
				cp[k] = v
			}
		}
		return signature(cp)
	}
	for _, s := range f.Samples {
		h := bySig[sig(s.Labels)]
		if h == nil {
			h = &hist{counts: make(map[float64]float64)}
			bySig[sig(s.Labels)] = h
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("%s: bad le %q", f.Name, leStr)
				}
			}
			h.les = append(h.les, le)
			h.counts[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			h.count, h.hasCnt = s.Value, true
		}
	}
	for _, h := range bySig {
		sort.Float64s(h.les)
		prev := -1.0
		for _, le := range h.les {
			if c := h.counts[le]; c < prev {
				return fmt.Errorf("%s: bucket counts not cumulative at le=%v (%v < %v)", f.Name, le, c, prev)
			} else {
				prev = c
			}
		}
		if len(h.les) == 0 || !math.IsInf(h.les[len(h.les)-1], 1) {
			return fmt.Errorf("%s: histogram without +Inf bucket", f.Name)
		}
		if !h.hasCnt {
			return fmt.Errorf("%s: histogram without _count", f.Name)
		}
		if h.counts[math.Inf(1)] != h.count {
			return fmt.Errorf("%s: +Inf bucket %v != count %v", f.Name, h.counts[math.Inf(1)], h.count)
		}
	}
	return nil
}
