// Package metrics is PIMENTO's self-instrumentation layer: an
// allocation-light registry of atomic counters, gauges and fixed-bucket
// histograms with Prometheus text-exposition rendering, plus the span
// tracing the engine threads through its personalization pipeline.
//
// Design constraints (DESIGN.md §11):
//
//   - Hot-path updates are single atomic operations. Handles are
//     resolved once at registration time; operators and HTTP handlers
//     hold *Counter/*Gauge/*Histogram pointers, never name lookups.
//   - Label cardinality is static: every label value a caller passes
//     must come from a compile-time-enumerable set (endpoint names,
//     operator kinds, outcome classes). `make ci` runs a lint that
//     scrapes /metrics and rejects series outside the allowlist, so a
//     dynamic value (a query string, a phrase, a document name) can
//     never leak into a label and blow up the series count.
//   - Rendering is deterministic: families in registration order,
//     series within a family in registration order, labels sorted by
//     key — so scrapes diff cleanly and tests can pin output.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric's label set. Values must be static (drawn from a
// fixed, code-enumerable set) — see the package comment.
type Labels map[string]string

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Store overwrites the counter's value. It exists for mirroring a
// monotone total accumulated elsewhere (e.g. the result cache's own
// counters) into the registry at scrape time; normal instrumentation
// uses Inc/Add.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations
// (by convention, seconds). Buckets are cumulative upper bounds; an
// implicit +Inf bucket catches the tail. Observations are lock-free:
// one atomic add on the bucket, one on the count, one CAS loop on the
// float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets is the default latency bucket layout, in seconds: 100µs to
// 10s, roughly 2.5x steps — wide enough for both a sub-millisecond cars
// query and a multi-second cold XMark scan.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one (labels, value) member of a family.
type series struct {
	labels    Labels
	signature string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
	bySig           map[string]*series
}

// Registry holds metric families and renders them. Registration takes a
// mutex; reads and updates of registered handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers (or returns the already-registered) counter with
// the given name and labels. It panics when name is already registered
// as a different metric type — that is a programming error, not input.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.get(name, help, "counter", labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.get(name, help, "gauge", labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (nil uses DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	s := r.get(name, help, "histogram", labels)
	if s.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		h := &Histogram{bounds: buckets}
		h.counts = make([]atomic.Int64, len(buckets)+1)
		s.h = h
	}
	return s.h
}

// get resolves (name, labels) to its series, creating family and series
// as needed. Callers hold no locks.
func (r *Registry) get(name, help, typ string, labels Labels) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for k := range labels {
		if !validName(k) {
			panic(fmt.Sprintf("metrics: invalid label name %q in %s", k, name))
		}
	}
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bySig: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.bySig[sig]
	if !ok {
		// Copy the labels: the caller's map must not alias registry state.
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp, signature: sig}
		f.bySig[sig] = s
		f.series = append(f.series, s)
	}
	return s
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// signature is the canonical key of a label set: sorted k=v pairs.
func signature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte(';')
	}
	return sb.String()
}

// renderLabels renders {k="v",...} with keys sorted, or "" for none.
// extra, when non-empty, is appended last (used for histogram le).
func renderLabels(labels Labels, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	if extraK != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraK, extraV)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	// Series slices only grow under mu; snapshot lengths for a stable view.
	counts := make([]int, len(fams))
	for i, f := range fams {
		counts[i] = len(f.series)
	}
	r.mu.Unlock()

	var sb strings.Builder
	for fi, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series[:counts[fi]] {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), s.c.Value())
			case "gauge":
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), s.g.Value())
			case "histogram":
				h := s.h
				cum := int64(0)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
						renderLabels(s.labels, "le", formatFloat(b)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
					renderLabels(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name,
					renderLabels(s.labels, "", ""), formatFloat(h.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name,
					renderLabels(s.labels, "", ""), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
