package metrics

import "time"

// Span is one timed stage of a pipeline trace. Offsets and durations
// are microseconds relative to the trace's start, which keeps traces
// compact on the wire and stable to re-marshal.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Trace records the stages of one pipeline run (analyze → rewrite →
// plan-build → execute → rank in the engine). It is owned by a single
// goroutine — the pipeline it traces — and is not safe for concurrent
// use; the finished span slice may be shared freely.
type Trace struct {
	t0    time.Time
	spans []Span
}

// NewTrace starts a trace at the current time.
func NewTrace() *Trace {
	return &Trace{t0: time.Now()}
}

// Start opens a span; the returned func closes it. Typical use:
//
//	done := tr.Start("execute")
//	... stage work ...
//	done()
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		t.spans = append(t.spans, Span{
			Name:    name,
			StartUS: start.Sub(t.t0).Microseconds(),
			DurUS:   time.Since(start).Microseconds(),
		})
	}
}

// Spans returns the recorded spans in completion order. Nil receivers
// (untraced pipelines) return nil.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}
