package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help", Labels{"k": "v"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels resolves to the same handle.
	if r.Counter("t_total", "help", Labels{"k": "v"}) != c {
		t.Fatal("re-registration returned a different handle")
	}
	// Same name, different labels: a distinct series.
	c2 := r.Counter("t_total", "help", Labels{"k": "w"})
	if c2 == c {
		t.Fatal("distinct labels shared a handle")
	}

	g := r.Gauge("t_gauge", "", nil)
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative buckets: 0.01 catches 0.005 and the boundary value
	// 0.01 itself (le is an upper *inclusive* bound).
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests served", Labels{"endpoint": "search"}).Add(3)
	r.Counter("req_total", "requests served", Labels{"endpoint": "explain"}).Add(1)
	r.Gauge("in_flight", "in-flight requests", nil).Set(2)
	r.Histogram("lat_seconds", "latency", []float64{0.1}, Labels{"endpoint": "search"}).Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, sb.String())
	}
	if fams["req_total"].Type != "counter" || len(fams["req_total"].Samples) != 2 {
		t.Errorf("req_total = %+v", fams["req_total"])
	}
	if fams["in_flight"].Samples[0].Value != 2 {
		t.Errorf("in_flight = %+v", fams["in_flight"].Samples)
	}
	// Rendering twice yields identical output (determinism).
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb.String() != sb2.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestConcurrentUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	h := r.Histogram("h_seconds", "", nil, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	// Render concurrently with the writers; must not race or corrupt.
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("c=%d h=%d, want 8000 each", c.Value(), h.Count())
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	done := tr.Start("stage_a")
	time.Sleep(time.Millisecond)
	done()
	tr.Start("stage_b")() // zero-length span
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v, want 2", spans)
	}
	if spans[0].Name != "stage_a" || spans[0].DurUS < 500 {
		t.Errorf("stage_a span = %+v, want dur >= 500us", spans[0])
	}
	if spans[1].StartUS < spans[0].StartUS {
		t.Errorf("stage_b starts before stage_a: %+v", spans)
	}
	var nilTrace *Trace
	nilTrace.Start("x")()
	if nilTrace.Spans() != nil {
		t.Error("nil trace recorded spans")
	}
}
