package workload

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/tpq"
)

func TestPaperQueryShape(t *testing.T) {
	q := PaperQuery()
	if q.Nodes[q.Dist].Tag != "car" {
		t.Fatalf("dist = %q", q.Nodes[q.Dist].Tag)
	}
	if got := q.Phrases(); len(got) != 2 {
		t.Errorf("phrases = %v", got)
	}
}

func TestFig2ProfileWellFormed(t *testing.T) {
	p := Fig2Profile()
	if len(p.SRs) != 3 || len(p.VORs) != 3 || len(p.KORs) != 2 {
		t.Fatalf("counts: %d/%d/%d", len(p.SRs), len(p.VORs), len(p.KORs))
	}
	// The assigned priorities must make the profile enforceable.
	if rep := analysis.DetectAmbiguityPrioritized(p.VORs); rep.Ambiguous {
		t.Errorf("Fig. 2 profile with priorities must be unambiguous: %v", rep.Cycle)
	}
	if _, err := analysis.AnalyzeSRs(p.SRs, PaperQuery()); err != nil {
		t.Errorf("prioritized SRs must not error: %v", err)
	}
}

func TestPlan1ProfileAppliesBothRules(t *testing.T) {
	p := Plan1Profile()
	_, applied, err := analysis.EncodeFlock(p.SRs, PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Errorf("applied = %v, want p2 and p3", applied)
	}
}

func TestFig5ProfileSweep(t *testing.T) {
	for n := 0; n <= 4; n++ {
		p := Fig5Profile(n)
		if len(p.KORs) != n {
			t.Errorf("nKORs=%d: got %d KORs", n, len(p.KORs))
		}
		if len(p.VORs) != 1 {
			t.Errorf("π5 missing")
		}
	}
	// KOR priorities fix the paper's application order π1..πn.
	p := Fig5Profile(4)
	kors := p.SortKORsByPriority()
	want := []string{"male", "United States", "College", "Phoenix"}
	for i, k := range kors {
		if k.Phrases[0] != want[i] {
			t.Errorf("kor %d = %q, want %q", i, k.Phrases[0], want[i])
		}
	}
}

func TestFig5ProfilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Fig5Profile(5) must panic")
		}
	}()
	Fig5Profile(5)
}

func TestFig1XMLParses(t *testing.T) {
	// Ensure the fixture stays parseable and the query matches it.
	q := PaperQuery()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := tpq.Parse(Fig5Query().String()); err != nil {
		t.Fatalf("Fig5 round trip: %v", err)
	}
}
