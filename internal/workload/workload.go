// Package workload holds the shared query/profile fixtures of the
// paper's running example (Figs. 1, 2) and performance study (Fig. 5),
// used by the examples, the experiment harness and the benchmarks.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/profile"
	"repro/internal/tpq"
)

// PaperQuery is the introduction's query Q: cars in good condition with
// low mileage costing less than $2000.
func PaperQuery() *tpq.Query {
	return tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`)
}

// Fig2ProfileSrc is the running example's profile (Fig. 2) in the DSL,
// with the priorities Section 5 assigns to resolve the p1/p3 conflict
// cycle and the ω1/ω2 ambiguity (priority 1 to ω2, 2 to ω1).
const Fig2ProfileSrc = `
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2 priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3 priority 3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
vor w3 priority 3: x.tag = car & y.tag = car & x.make = y.make & x.hp > y.hp => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S
`

// Fig2Profile parses Fig2ProfileSrc.
func Fig2Profile() *profile.Profile {
	return profile.MustParseProfile(Fig2ProfileSrc)
}

// Plan1ProfileSrc is the Section 6.2 exposition subset: rules p2 and p3
// with the ordering rules ω1, ω4, ω5 of Plan 1.
const Plan1ProfileSrc = `
sr p2 priority 1: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3 priority 2: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S
`

// Plan1Profile parses Plan1ProfileSrc.
func Plan1Profile() *profile.Profile {
	return profile.MustParseProfile(Plan1ProfileSrc)
}

// Fig1XML is the car-sale database of Fig. 1.
const Fig1XML = `
<dealer>
  <car>
    <description>I am selling my 2001 car at the best bid. It is in good condition
      as I was the only driver. I used it to go to work in NYC.</description>
    <date>2001</date>
    <price>500</price>
    <horsepower>150</horsepower>
    <owner>John Smith</owner>
    <color>red</color>
  </car>
  <car>
    <description>Powerful car. Low mileage. Bought on 11/2005. Eager seller.
      goodcar@yahoo.com. Also in good condition.</description>
    <horsepower>200</horsepower>
    <mileage>50000</mileage>
    <price>500</price>
    <location>NYC</location>
    <color>blue</color>
  </car>
  <car>
    <description>american classic in good condition and low mileage</description>
    <price>1800</price>
    <mileage>30000</mileage>
    <color>green</color>
    <horsepower>180</horsepower>
  </car>
</dealer>`

// Fig5Query is the XMark query of Fig. 5:
// ad(person, business) & ftcontains(business, "Yes").
func Fig5Query() *tpq.Query {
	return tpq.MustParse(`//person(*)[.//business[. ftcontains "Yes"]]`)
}

// fig5KORPhrases are the keyword-based ORs π1–π4 of Fig. 5, in the
// paper's order.
var fig5KORPhrases = []string{"male", "United States", "College", "Phoenix"}

// ExtraQuery is one of the additional XMark workloads of Section 7.2
// ("We tried these four plans on two other queries and observed that
// PushtopKPrune never does worse than Naive").
type ExtraQuery struct {
	Name    string
	Query   *tpq.Query
	Profile *profile.Profile
}

// ExtraQueries returns the two additional plan-comparison workloads: a
// person query over address structure, and an item query with its own
// keyword ordering rules over the item descriptions.
func ExtraQueries() []ExtraQuery {
	return []ExtraQuery{
		{
			Name:  "Q2-person-address",
			Query: tpq.MustParse(`//person(*)[./address[./country[. ftcontains "United States"]]]`),
			Profile: profile.MustParseProfile(`
kor q2k1 priority 1: x.tag = person & y.tag = person & ftcontains(x, "male") => x < y
kor q2k2 priority 2: x.tag = person & y.tag = person & ftcontains(x, "College") => x < y
kor q2k3 priority 3: x.tag = person & y.tag = person & ftcontains(x, "Phoenix") => x < y
kor q2k4 priority 4: x.tag = person & y.tag = person & ftcontains(x, "Yes") => x < y
rank K,V,S
`),
		},
		{
			Name:  "Q3-items",
			Query: tpq.MustParse(`//item(*)[.//text[. ftcontains "honour"]]`),
			Profile: profile.MustParseProfile(`
vor q3v: x.tag = item & y.tag = item & x.quantity > y.quantity => x < y
kor q3k1 priority 1: x.tag = item & y.tag = item & ftcontains(x, "fortune") => x < y
kor q3k2 priority 2: x.tag = item & y.tag = item & ftcontains(x, "sword") => x < y
kor q3k3 priority 3: x.tag = item & y.tag = item & ftcontains(x, "crown") => x < y
kor q3k4 priority 4: x.tag = item & y.tag = item & ftcontains(x, "castle") => x < y
rank K,V,S
`),
		},
	}
}

// Fig5Profile builds the Fig. 5 profile with the first nKORs keyword
// rules (1..4, as swept by Figs. 6 and 7) plus the value-based rule π5
// (x.age = 33 & y.age != 33 => x < y).
func Fig5Profile(nKORs int) *profile.Profile {
	if nKORs < 0 || nKORs > len(fig5KORPhrases) {
		panic(fmt.Sprintf("workload: nKORs must be 0..%d, got %d", len(fig5KORPhrases), nKORs))
	}
	var sb strings.Builder
	for i := 0; i < nKORs; i++ {
		fmt.Fprintf(&sb,
			"kor pi%d priority %d: x.tag = person & y.tag = person & ftcontains(x, %q) => x < y\n",
			i+1, i+1, fig5KORPhrases[i])
	}
	sb.WriteString(`vor pi5: x.tag = person & y.tag = person & x.age = 33 & y.age != 33 => x < y` + "\n")
	sb.WriteString("rank K,V,S\n")
	return profile.MustParseProfile(sb.String())
}
