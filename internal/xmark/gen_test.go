package xmark

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/text"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 1}, 50)
	b := Generate(Config{Seed: 1}, 50)
	if a.XMLString() != b.XMLString() {
		t.Fatal("same seed must generate identical documents")
	}
	c := Generate(Config{Seed: 2}, 50)
	if a.XMLString() == c.XMLString() {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateShape(t *testing.T) {
	doc := Generate(Config{Seed: 7}, 100)
	if doc.Tag(doc.Root()) != "site" {
		t.Fatalf("root = %q", doc.Tag(doc.Root()))
	}
	persons := doc.ElementsByTag("person")
	if len(persons) != 100 {
		t.Fatalf("persons = %d", len(persons))
	}
	// Every person has a business element nested in a profile.
	for _, p := range persons[:10] {
		if v, ok := doc.DeepValue(p, "business"); !ok || (v != "Yes" && v != "No") {
			t.Errorf("person %d business = %q, %v", p, v, ok)
		}
	}
	if len(doc.ElementsByTag("item")) == 0 {
		t.Errorf("no items generated")
	}
	if len(doc.ElementsByTag("open_auction")) == 0 {
		t.Errorf("no auctions generated")
	}
}

func TestGenerateTokensForFig5(t *testing.T) {
	doc := Generate(Config{Seed: 3}, 300)
	ix := index.Build(doc, text.Pipeline{})
	root := doc.Root()
	for _, phrase := range []string{"male", "United States", "College", "Phoenix", "Yes"} {
		if !ix.Contains(root, phrase) {
			t.Errorf("generated corpus lacks %q", phrase)
		}
	}
	// Some person must have age 33 (π5's constant).
	found := false
	for _, p := range doc.ElementsByTag("person") {
		if v, ok := doc.DeepValue(p, "age"); ok && v == "33" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no person aged 33 in 300 persons")
	}
}

func TestGenerateSizedHitsTarget(t *testing.T) {
	for _, target := range []int{101 * 1024, 1024 * 1024} {
		doc := GenerateSized(Config{Seed: 5}, target)
		got := len(doc.XMLString())
		ratio := float64(got) / float64(target)
		if ratio < 0.8 || ratio > 1.4 {
			t.Errorf("target %d: serialized %d bytes (ratio %.2f)", target, got, ratio)
		}
	}
}

func TestBusinessSelectivity(t *testing.T) {
	doc := Generate(Config{Seed: 11, PersonBusinessYes: 0.9}, 500)
	yes := 0
	persons := doc.ElementsByTag("person")
	for _, p := range persons {
		if v, _ := doc.DeepValue(p, "business"); v == "Yes" {
			yes++
		}
	}
	frac := float64(yes) / float64(len(persons))
	if frac < 0.8 || frac > 1.0 {
		t.Errorf("yes fraction = %.2f, want ~0.9", frac)
	}
}

func TestFig5EndToEnd(t *testing.T) {
	doc := Generate(Config{Seed: 13}, 400)
	e := engine.New(doc, text.Pipeline{})
	for n := 1; n <= 4; n++ {
		prof := workload.Fig5Profile(n)
		resp, err := e.Search(engine.Request{
			Query:    workload.Fig5Query(),
			Profile:  prof,
			K:        10,
			Strategy: plan.Push,
		})
		if err != nil {
			t.Fatalf("nKORs=%d: %v", n, err)
		}
		if len(resp.Results) != 10 {
			t.Fatalf("nKORs=%d: %d results", n, len(resp.Results))
		}
		// Every result is a person with business=Yes.
		for _, res := range resp.Results {
			if doc.Tag(res.Node) != "person" {
				t.Errorf("non-person answer: %+v", res)
			}
			if v, _ := doc.DeepValue(res.Node, "business"); v != "Yes" {
				t.Errorf("answer without business=Yes: %+v", res)
			}
		}
	}
}

func TestFig5StrategiesAgreeOnXMark(t *testing.T) {
	doc := Generate(Config{Seed: 17}, 600)
	e := engine.New(doc, text.Pipeline{})
	prof := workload.Fig5Profile(4)
	var base []engine.Result
	for i, strat := range plan.Strategies {
		resp, err := e.Search(engine.Request{
			Query: workload.Fig5Query(), Profile: prof, K: 10, Strategy: strat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = resp.Results
			continue
		}
		if len(resp.Results) != len(base) {
			t.Fatalf("%v: %d vs %d results", strat, len(resp.Results), len(base))
		}
		for j := range base {
			if resp.Results[j].Node != base[j].Node {
				t.Errorf("%v rank %d: node %d vs %d", strat, j,
					resp.Results[j].Node, base[j].Node)
			}
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		101 * 1024:             "101K",
		1024 * 1024:            "1M",
		10 * 1024 * 1024:       "10M",
		5*1024*1024 + 700*1024: "5.7M",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPaperSizesOrdered(t *testing.T) {
	for i := 1; i < len(PaperSizes); i++ {
		if PaperSizes[i] <= PaperSizes[i-1] {
			t.Fatalf("PaperSizes not increasing: %v", PaperSizes)
		}
	}
	labels := make([]string, len(PaperSizes))
	for i, s := range PaperSizes {
		labels[i] = SizeLabel(s)
	}
	want := "101K 212K 468K 571K 823K 1M 5.7M 10M"
	if got := strings.Join(labels, " "); got != want {
		t.Errorf("labels = %q, want %q", got, want)
	}
}

func TestDeepValueOnGenerated(t *testing.T) {
	doc := Generate(Config{Seed: 19}, 20)
	p := doc.ElementsByTag("person")[0]
	if _, ok := doc.DeepValue(p, "business"); !ok {
		t.Errorf("DeepValue(business) failed")
	}
	if v, ok := doc.AttrValue(p, "id"); !ok || !strings.HasPrefix(v, "person") {
		t.Errorf("person id attr = %q, %v", v, ok)
	}
	_ = xmldoc.InvalidNode
}

func BenchmarkGenerate1MB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateSized(Config{Seed: int64(i)}, 1024*1024)
	}
}

func TestGenerateClosedAuctionsAndCategories(t *testing.T) {
	doc := Generate(Config{Seed: 23}, 100)
	if len(doc.ElementsByTag("closed_auction")) == 0 {
		t.Errorf("no closed auctions")
	}
	if len(doc.ElementsByTag("category")) != 4 {
		t.Errorf("categories = %d", len(doc.ElementsByTag("category")))
	}
	// Buyer/seller references point at generated persons.
	ca := doc.ElementsByTag("closed_auction")[0]
	if v, ok := doc.DeepValue(ca, "buyer"); !ok || !strings.HasPrefix(v, "person") {
		t.Errorf("buyer ref = %q, %v", v, ok)
	}
}
