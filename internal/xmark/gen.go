// Package xmark is the XMark substrate: a deterministic generator of
// auction-site documents in the style of the XMark benchmark (Schmidt et
// al.), which the paper's Section 7.2 uses for its performance study.
// The original generator and its 101 KB–10 MB document instances are not
// redistributable here, so documents are synthesized with the same
// shape: a site with people (the Fig. 5 query's targets, carrying
// gender, education, city, country, age and business elements whose
// values the paper's KORs and VOR test), items, and auctions.
//
// All generation is seeded and reproducible bit for bit.
package xmark

import (
	"fmt"
	"math/rand"

	"repro/internal/xmldoc"
)

// Paper document sizes of Fig. 6, in bytes.
var PaperSizes = []int{
	101 * 1024,
	212 * 1024,
	468 * 1024,
	571 * 1024,
	823 * 1024,
	1 * 1024 * 1024,
	5*1024*1024 + 700*1024, // 5.7MB
	10 * 1024 * 1024,
}

// SizeLabel renders a byte size the way the paper's Fig. 6 axis does.
func SizeLabel(bytes int) string {
	switch {
	case bytes >= 1024*1024:
		mb := float64(bytes) / (1024 * 1024)
		if mb == float64(int(mb)) {
			return fmt.Sprintf("%dM", int(mb))
		}
		return fmt.Sprintf("%.1fM", mb)
	default:
		return fmt.Sprintf("%dK", bytes/1024)
	}
}

var (
	cities = []string{
		"Phoenix", "NYC", "Boston", "Seattle", "Austin", "Denver",
		"Chicago", "Portland", "Atlanta", "Dallas",
	}
	countries = []string{
		"United States", "United States", "United States", // XMark skews US
		"Germany", "France", "Japan", "Brazil", "Canada",
	}
	educations = []string{"High School", "College", "Graduate School", "Other"}
	genders    = []string{"male", "female"}
	firstNames = []string{
		"Jaak", "Mehrdad", "Sinisa", "Huei", "Jose", "Amanda", "Wera",
		"Dafydd", "Yuri", "Mitsuyuki", "Carmen", "Reinout", "Olga", "Tuomo",
	}
	lastNames = []string{
		"Merz", "Dashti", "Srdjevic", "Chou", "Morgado", "Leuski", "Krone",
		"Unno", "Braband", "Takano", "Gera", "Vrbsky", "Poppe", "Eastman",
	}
	words = []string{
		"honour", "fortune", "mistress", "gentle", "wherefore", "valiant",
		"daughter", "crown", "exeunt", "prithee", "sovereign", "quarrel",
		"banish", "noble", "herald", "sword", "castle", "treason", "march",
		"kingdom", "knave", "beseech", "villain", "feast", "duke", "army",
	}
	itemNames = []string{
		"vintage clock", "oak table", "silver spoon", "rare stamp",
		"porcelain vase", "old map", "brass lamp", "first edition",
	}
)

// Config tunes the generator; the zero value plus a seed is the paper's
// setup.
type Config struct {
	Seed int64
	// PersonBusinessYes is the fraction of persons whose business element
	// is "Yes" (the Fig. 5 query's selectivity); default 0.5.
	PersonBusinessYes float64
}

func (c Config) yesRate() float64 {
	if c.PersonBusinessYes == 0 {
		return 0.5
	}
	return c.PersonBusinessYes
}

// gen tracks approximate serialized size while building.
type gen struct {
	r     *rand.Rand
	b     *xmldoc.Builder
	bytes int
	cfg   Config
}

func (g *gen) start(tag string, attrs ...xmldoc.Attr) {
	g.bytes += 2*len(tag) + 5
	for _, a := range attrs {
		g.bytes += len(a.Name) + len(a.Value) + 4
	}
	g.b.Start(tag, attrs...)
}

func (g *gen) end() { g.b.End() }

func (g *gen) elem(tag, text string) {
	g.bytes += 2*len(tag) + 5 + len(text)
	g.b.Elem(tag, text)
}

func (g *gen) sentence(n int) string {
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, words[g.r.Intn(len(words))]...)
	}
	return string(out)
}

// GenerateSized builds a document of approximately targetBytes serialized
// size (within a few percent).
func GenerateSized(cfg Config, targetBytes int) *xmldoc.Document {
	g := &gen{
		r:   rand.New(rand.NewSource(cfg.Seed)),
		b:   xmldoc.NewBuilderCap(targetBytes / 24),
		cfg: cfg,
	}
	g.start("site")

	// People take roughly 60% of the budget; items and auctions the rest.
	peopleBudget := targetBytes * 6 / 10
	g.start("people")
	id := 0
	for g.bytes < peopleBudget {
		g.person(id)
		id++
	}
	g.end()

	g.start("regions")
	g.start("namerica")
	itemID := 0
	itemBudget := targetBytes * 85 / 100
	for g.bytes < itemBudget {
		g.item(itemID)
		itemID++
	}
	g.end()
	g.end()

	g.start("open_auctions")
	aid := 0
	auctionBudget := targetBytes * 97 / 100
	for g.bytes < auctionBudget {
		g.auction(aid, itemID)
		aid++
	}
	g.end()

	g.start("closed_auctions")
	for g.bytes < targetBytes {
		g.closedAuction(aid, itemID, id)
		aid++
	}
	g.end()

	g.categories(8)

	g.end() // site
	return g.b.MustDocument()
}

// Generate builds a document with exactly nPersons persons (plus
// proportional items/auctions), for tests that count rather than size.
func Generate(cfg Config, nPersons int) *xmldoc.Document {
	g := &gen{
		r:   rand.New(rand.NewSource(cfg.Seed)),
		b:   xmldoc.NewBuilderCap(nPersons * 40),
		cfg: cfg,
	}
	g.start("site")
	g.start("people")
	for i := 0; i < nPersons; i++ {
		g.person(i)
	}
	g.end()
	g.start("regions")
	g.start("namerica")
	for i := 0; i < nPersons/2; i++ {
		g.item(i)
	}
	g.end()
	g.end()
	g.start("open_auctions")
	for i := 0; i < nPersons/4; i++ {
		g.auction(i, nPersons/2)
	}
	g.end()
	g.start("closed_auctions")
	for i := 0; i < nPersons/8; i++ {
		g.closedAuction(i, nPersons/2, nPersons)
	}
	g.end()
	g.categories(4)
	g.end()
	return g.b.MustDocument()
}

func (g *gen) person(id int) {
	r := g.r
	g.start("person", xmldoc.Attr{Name: "id", Value: fmt.Sprintf("person%d", id)})
	g.elem("name", firstNames[r.Intn(len(firstNames))]+" "+lastNames[r.Intn(len(lastNames))])
	g.elem("emailaddress", fmt.Sprintf("mailto:user%d@example.com", id))
	if r.Intn(2) == 0 {
		g.elem("phone", fmt.Sprintf("+1 (%d) %d-%d", 100+r.Intn(900), 100+r.Intn(900), 1000+r.Intn(9000)))
	}
	if r.Intn(4) > 0 {
		g.start("address")
		g.elem("street", fmt.Sprintf("%d %s St", 1+r.Intn(99), lastNames[r.Intn(len(lastNames))]))
		g.elem("city", cities[r.Intn(len(cities))])
		g.elem("country", countries[r.Intn(len(countries))])
		g.elem("zipcode", fmt.Sprintf("%05d", r.Intn(100000)))
		g.end()
	}
	if r.Intn(2) == 0 {
		g.elem("homepage", fmt.Sprintf("http://example.com/~user%d", id))
	}
	g.start("profile", xmldoc.Attr{Name: "income", Value: fmt.Sprintf("%d", 20000+r.Intn(80000))})
	for i := r.Intn(3); i > 0; i-- {
		g.elem("interest", "category"+fmt.Sprint(r.Intn(40)))
	}
	if r.Intn(3) > 0 {
		g.elem("education", educations[r.Intn(len(educations))])
	}
	if r.Intn(4) > 0 {
		g.elem("gender", genders[r.Intn(len(genders))])
	}
	if r.Float64() < g.cfg.yesRate() {
		g.elem("business", "Yes")
	} else {
		g.elem("business", "No")
	}
	if r.Intn(3) > 0 {
		g.elem("age", fmt.Sprintf("%d", 18+r.Intn(53))) // includes 33
	}
	g.end() // profile
	g.end() // person
}

func (g *gen) item(id int) {
	r := g.r
	g.start("item", xmldoc.Attr{Name: "id", Value: fmt.Sprintf("item%d", id)})
	g.elem("location", countries[r.Intn(len(countries))])
	g.elem("quantity", fmt.Sprint(1+r.Intn(5)))
	g.elem("name", itemNames[r.Intn(len(itemNames))])
	g.start("description")
	g.elem("text", g.sentence(10+r.Intn(30)))
	g.end()
	g.elem("payment", "Creditcard")
	g.elem("shipping", "Will ship internationally")
	g.end()
}

func (g *gen) closedAuction(id, maxItem, maxPerson int) {
	r := g.r
	g.start("closed_auction")
	if maxPerson > 0 {
		g.elem("buyer", fmt.Sprintf("person%d", r.Intn(maxPerson)))
		g.elem("seller", fmt.Sprintf("person%d", r.Intn(maxPerson)))
	}
	if maxItem > 0 {
		g.elem("itemref", fmt.Sprintf("item%d", r.Intn(maxItem)))
	}
	g.elem("price", fmt.Sprintf("%d.%02d", 10+r.Intn(900), r.Intn(100)))
	g.elem("date", fmt.Sprintf("%02d/%02d/2001", 1+r.Intn(12), 1+r.Intn(28)))
	g.start("annotation")
	g.elem("description", g.sentence(6+r.Intn(12)))
	g.end()
	g.end()
}

func (g *gen) categories(n int) {
	g.start("categories")
	for i := 0; i < n; i++ {
		g.start("category", xmldoc.Attr{Name: "id", Value: fmt.Sprintf("category%d", i)})
		g.elem("name", g.sentence(2))
		g.elem("description", g.sentence(8))
		g.end()
	}
	g.end()
}

func (g *gen) auction(id, maxItem int) {
	r := g.r
	g.start("open_auction", xmldoc.Attr{Name: "id", Value: fmt.Sprintf("auction%d", id)})
	g.elem("initial", fmt.Sprintf("%d.%02d", 1+r.Intn(300), r.Intn(100)))
	for i := r.Intn(4); i > 0; i-- {
		g.start("bidder")
		g.elem("date", fmt.Sprintf("%02d/%02d/2001", 1+r.Intn(12), 1+r.Intn(28)))
		g.elem("increase", fmt.Sprintf("%d.00", 1+r.Intn(50)))
		g.end()
	}
	if maxItem > 0 {
		g.elem("itemref", fmt.Sprintf("item%d", r.Intn(maxItem)))
	}
	g.elem("current", fmt.Sprintf("%d.%02d", 10+r.Intn(500), r.Intn(100)))
	g.end()
}
