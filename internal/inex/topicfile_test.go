package inex

import (
	"reflect"
	"strings"
	"testing"
)

// paperTopic131 is the topic file Section 7.1 quotes (lightly
// normalized).
const paperTopic131 = `
<inex_topic topic_id="131" query_type="CAS">
  <title>//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]</title>
  <description>We are looking for the abstracts of the documents about data
  mining and written by Jiawei Han.</description>
  <narrative>To be relevant, the component has to be the abstracts written by
  Jiawei Han about "data mining". Any topics of data mining (e.g. "association
  rules", "data cube" etc.) should be considered as relevant.</narrative>
</inex_topic>`

func TestParseTopic131(t *testing.T) {
	topic, err := ParseTopic(paperTopic131)
	if err != nil {
		t.Fatal(err)
	}
	if topic.ID != 131 || topic.QueryType != "CAS" {
		t.Fatalf("topic = %+v", topic)
	}
	if topic.Query.Nodes[topic.Query.Dist].Tag != "abs" {
		t.Errorf("distinguished = %q", topic.Query.Nodes[topic.Query.Dist].Tag)
	}
	aus := topic.Query.FindByTag("au")
	if len(aus) != 1 || topic.Query.Nodes[aus[0]].FT[0].Phrase != "Jiawei Han" {
		t.Errorf("author condition not parsed: %s", topic.Query)
	}
	if !strings.Contains(topic.Narrative, "association") {
		t.Errorf("narrative lost")
	}
}

func TestDeriveProfileFromNarrative(t *testing.T) {
	topic, err := ParseTopic(paperTopic131)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := topic.DeriveProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.SRs) != 1 {
		t.Fatalf("SRs = %d (one relax rule for the abs keyword)", len(prof.SRs))
	}
	if len(prof.KORs) != 1 {
		t.Fatalf("KORs = %d", len(prof.KORs))
	}
	// The derived KOR covers the narrative's quoted phrases — the
	// paper's own derivation for this topic.
	got := prof.KORs[0].Phrases
	want := []string{"data mining", "association rules", "data cube"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("KOR phrases = %v, want %v", got, want)
	}
	if prof.KORs[0].Tag != "abs" {
		t.Errorf("KOR tag = %q", prof.KORs[0].Tag)
	}
}

func TestDeriveProfileExtraTerms(t *testing.T) {
	topic, err := ParseTopic(`<inex_topic topic_id="7" query_type="CAS">
	  <title>//article//p[about(., "query optimization")]</title>
	  <narrative>no quoted phrases here</narrative>
	</inex_topic>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topic.DeriveProfile(); err == nil {
		t.Errorf("no terms anywhere must fail")
	}
	prof, err := topic.DeriveProfile("cost model", "join ordering")
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.KORs[0].Phrases) != 2 {
		t.Errorf("phrases = %v", prof.KORs[0].Phrases)
	}
}

func TestParseTopicErrors(t *testing.T) {
	bad := []string{
		``,
		`<inex_topic topic_id="x"><title>//a</title></inex_topic>`,
		`<inex_topic topic_id="1"><title>not a query</title></inex_topic>`,
		`<other/>`,
	}
	for _, src := range bad {
		if _, err := ParseTopic(src); err == nil {
			t.Errorf("ParseTopic(%.40q) should fail", src)
		}
	}
}

func TestQuotedPhrases(t *testing.T) {
	got := quotedPhrases(`about "data mining" and "data cube" etc, plus "x"`)
	want := []string{"data mining", "data cube", "x"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v", got)
	}
	if got := quotedPhrases(`no quotes`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	if got := quotedPhrases(`unterminated "quote`); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}
