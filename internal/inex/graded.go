package inex

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/text"
	"repro/internal/xmldoc"
)

// Section 7.1 describes INEX's two-dimensional judgments: "A component
// is judged on two dimensions: relevance and coverage. Relevance judges
// whether the component contains information relevant to the query
// subject and coverage describes how much of the document component is
// relevant." This file grades the planted assessments on both dimensions
// and evaluates under INEX's two standard quantizations — strict (only
// highly relevant, exact coverage counts) and generalized (partial
// credit) — refining the binary Table 1 view.

// Coverage is INEX's coverage judgment.
type Coverage byte

const (
	// CoverageExact: the component covers the topic exactly (E).
	CoverageExact Coverage = 'E'
	// CoverageTooSmall: relevant but too small a fragment (S).
	CoverageTooSmall Coverage = 'S'
	// CoverageTooLarge: relevant content plus much else (L).
	CoverageTooLarge Coverage = 'L'
	// CoverageNone: no coverage (N).
	CoverageNone Coverage = 'N'
)

// Assessment is one graded judgment.
type Assessment struct {
	Node xmldoc.NodeID
	// Relevance: 0 irrelevant, 1 marginally, 2 fairly, 3 highly.
	Relevance int
	Coverage  Coverage
}

// Grade assigns the INEX-style grades to the planted kinds: exact query
// matches with narrative terms are highly relevant with exact coverage;
// narrative-only components fairly relevant; synonym-only ("hard")
// components marginally relevant with too-small coverage.
func gradeOf(kind string) (int, Coverage) {
	switch kind {
	case "easy":
		return 3, CoverageExact
	case "narrative":
		return 2, CoverageExact
	case "hard":
		return 1, CoverageTooSmall
	}
	return 0, CoverageNone
}

// BuildCollectionGraded is BuildCollection with graded assessments.
func BuildCollectionGraded(spec Spec, seed int64) (*xmldoc.Document, []Assessment) {
	doc, assessed := BuildCollection(spec, seed)
	out := make([]Assessment, 0, len(assessed))
	for _, n := range assessed {
		kind, _ := Kind(doc, n)
		rel, cov := gradeOf(kind)
		out = append(out, Assessment{Node: n, Relevance: rel, Coverage: cov})
	}
	return doc, out
}

// Quantization maps a graded judgment to a relevance credit in [0, 1].
type Quantization func(Assessment) float64

// Strict is INEX's strict quantization: full credit only for highly
// relevant components with exact coverage.
func Strict(a Assessment) float64 {
	if a.Relevance == 3 && a.Coverage == CoverageExact {
		return 1
	}
	return 0
}

// Generalized is INEX's generalized quantization: graded partial credit.
func Generalized(a Assessment) float64 {
	switch {
	case a.Relevance == 3 && a.Coverage == CoverageExact:
		return 1
	case a.Relevance >= 2 && a.Coverage != CoverageNone:
		return 0.75
	case a.Relevance == 2 || a.Coverage == CoverageTooLarge:
		return 0.5
	case a.Relevance == 1:
		return 0.25
	}
	return 0
}

// GradedRow is one topic's quantized effectiveness.
type GradedRow struct {
	Topic int
	// Found / Total are credit sums: Total is the quantized pool mass,
	// Found the mass the system retrieved.
	Found, Total float64
}

// RunTopicQuantized evaluates one topic under a quantization: the
// retrieved set is the usual best-5-per-type run; credit is summed over
// the graded pool.
func RunTopicQuantized(spec Spec, seed int64, quant Quantization) (GradedRow, error) {
	doc, graded := BuildCollectionGraded(spec, seed)
	e := engine.New(doc, text.DefaultPipeline)

	retrieved := map[xmldoc.NodeID]bool{}
	for _, tp := range spec.Types {
		resp, err := e.Search(engine.Request{
			Query:    TopicQuery(spec, tp.Tag),
			Profile:  TopicProfile(spec, tp.Tag),
			K:        5,
			Strategy: plan.Push,
		})
		if err != nil {
			return GradedRow{}, fmt.Errorf("inex: topic %d type %s: %w", spec.ID, tp.Tag, err)
		}
		for _, r := range resp.Results {
			if r.S+r.K > 1e-9 {
				retrieved[r.Node] = true
			}
		}
	}
	row := GradedRow{Topic: spec.ID}
	for _, a := range graded {
		c := quant(a)
		row.Total += c
		if retrieved[a.Node] {
			row.Found += c
		}
	}
	return row, nil
}

// RunQuantized evaluates all topics under a quantization.
func RunQuantized(seed int64, quant Quantization) ([]GradedRow, error) {
	var rows []GradedRow
	for _, spec := range Topics() {
		row, err := RunTopicQuantized(spec, seed, quant)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatGraded renders quantized rows.
func FormatGraded(name string, rows []GradedRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Quantization: %s\n", name)
	sb.WriteString("Topic   Found   Total   Recall-of-pool\n")
	for _, r := range rows {
		frac := 1.0
		if r.Total > 0 {
			frac = r.Found / r.Total
		}
		fmt.Fprintf(&sb, "%-7d %-7.2f %-7.2f %.2f\n", r.Topic, r.Found, r.Total, frac)
	}
	return sb.String()
}
