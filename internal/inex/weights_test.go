package inex

import (
	"strings"
	"testing"
)

func TestWeightStudyDialShiftsComposition(t *testing.T) {
	// Section 8's proposal, measured: under the blend rank order with a
	// tight per-type cut, a low narrative weight keeps only exact query
	// matches in the top k (the narrative-only assessed component is
	// displaced by distractors); raising the weight recovers it.
	spec := Topics()[1] // topic 131
	rows, err := RunWeightStudy(spec, 42, 3, []float64{0.05, 0.25, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	low, high := rows[0], rows[len(rows)-1]
	if low.NarrativeInTop != 0 {
		t.Errorf("low weight: narrative-only should be displaced, got %d in top", low.NarrativeInTop)
	}
	if high.NarrativeInTop == 0 {
		t.Errorf("high weight: narrative-only should be retrieved")
	}
	if !(high.Missed < low.Missed) {
		t.Errorf("raising the weight should reduce missed: low %d, high %d",
			low.Missed, high.Missed)
	}
	// Exact matches stay in the top k across the sweep (they score on
	// both components).
	for _, r := range rows {
		if r.ExactInTop != 4 {
			t.Errorf("weight %g: exact in top = %d, want 4", r.KORWeight, r.ExactInTop)
		}
	}
}

func TestWeightStudyDefaultK(t *testing.T) {
	spec := Topics()[0]
	rows, err := RunWeightStudy(spec, 42, 0, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// k defaults to 5: matches the Table 1 run for this topic.
	if rows[0].Missed != 0 {
		t.Errorf("default k: missed = %d", rows[0].Missed)
	}
}

func TestTopicProfileWeighted(t *testing.T) {
	spec := Topics()[1]
	p := TopicProfileWeighted(spec, "abs", 2, 0.5, true)
	if p.SRs[0].EffectiveWeight() != 2 {
		t.Errorf("sr weight = %v", p.SRs[0].EffectiveWeight())
	}
	if p.KORs[0].EffectiveWeight() != 0.5 {
		t.Errorf("kor weight = %v", p.KORs[0].EffectiveWeight())
	}
	if got := p.Rank.String(); got != "K+S,V" {
		t.Errorf("rank = %q", got)
	}
}

func TestFormatWeightStudy(t *testing.T) {
	spec := Topics()[1]
	rows, err := RunWeightStudy(spec, 42, 3, []float64{0.25, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatWeightStudy(spec, rows)
	for _, frag := range []string{"topic 131", "KOR weight", "narrative"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}
