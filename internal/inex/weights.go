package inex

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/xmldoc"
)

// This file operationalizes the paper's closing proposal (Sections 7.1
// and 8): "we need to consider weights for our SRs and incorporate those
// weights when the query score is computed". Section 7.1 observed that
// relaxation let marginally relevant components displace exact matches
// from the top k; weighting the relaxed predicates (and ranking by the
// combined score, profile.Blend) trades the two off explicitly.

// TopicProfileWeighted is TopicProfile with explicit weights: srWeight
// scales the relaxed query-keyword predicate's score contribution,
// korWeight the narrative keyword OR's, and blend switches the rank
// order to the combined score K + S.
func TopicProfileWeighted(spec Spec, typ string, srWeight, korWeight float64, blend bool) *profile.Profile {
	var sb strings.Builder
	fmt.Fprintf(&sb,
		"sr relax priority 1 weight %g: if ftcontains(%s, %q) then remove ftcontains(%s, %q)\n",
		srWeight, typ, spec.Phrase, typ, spec.Phrase)
	var fts []string
	for _, n := range spec.Narrative {
		fts = append(fts, fmt.Sprintf("ftcontains(x, %q)", n))
	}
	fmt.Fprintf(&sb, "kor narrative weight %g: x.tag = %s & y.tag = %s & %s => x < y\n",
		korWeight, typ, typ, strings.Join(fts, " & "))
	if blend {
		sb.WriteString("rank blend\n")
	} else {
		sb.WriteString("rank K,V,S\n")
	}
	return profile.MustParseProfile(sb.String())
}

// WeightStudyRow is one measurement of the weight sweep.
type WeightStudyRow struct {
	KORWeight float64
	// Missed / Retrieved as in Table 1, over all element types.
	Missed    int
	Retrieved int
	// ExactInTop / NarrativeInTop / DistractorsInTop break the retrieved
	// set down by plant kind.
	ExactInTop       int
	NarrativeInTop   int
	DistractorsInTop int
}

// RunWeightStudy sweeps the narrative KOR weight for one topic under the
// blend rank order (SR weight fixed at 1) and reports how the top-k
// composition shifts: low weights favor exact query matches, high
// weights favor narrative matches — the fine-tuning dial the paper
// proposes. k is the per-type cut (use a k below the per-type pool size,
// e.g. 3, to create the contention that makes the dial visible).
func RunWeightStudy(spec Spec, seed int64, k int, korWeights []float64) ([]WeightStudyRow, error) {
	if k <= 0 {
		k = 5
	}
	doc, assessed := BuildCollection(spec, seed)
	e := engine.New(doc, text.DefaultPipeline)

	var rows []WeightStudyRow
	for _, w := range korWeights {
		retrieved := map[xmldoc.NodeID]bool{}
		for _, tp := range spec.Types {
			resp, err := e.Search(engine.Request{
				Query:    TopicQuery(spec, tp.Tag),
				Profile:  TopicProfileWeighted(spec, tp.Tag, 1, w, true),
				K:        k,
				Strategy: plan.Push,
			})
			if err != nil {
				return nil, fmt.Errorf("inex: weight study: topic %d type %s: %w", spec.ID, tp.Tag, err)
			}
			for _, r := range resp.Results {
				if r.S+r.K > 1e-9 {
					retrieved[r.Node] = true
				}
			}
		}
		row := WeightStudyRow{KORWeight: w, Retrieved: len(retrieved)}
		for _, a := range assessed {
			if !retrieved[a] {
				row.Missed++
			}
		}
		for n := range retrieved {
			kind, _ := Kind(doc, n)
			switch kind {
			case "easy":
				row.ExactInTop++
			case "narrative":
				row.NarrativeInTop++
			case "distractor":
				row.DistractorsInTop++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatWeightStudy renders the sweep.
func FormatWeightStudy(spec Spec, rows []WeightStudyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Weight study — topic %d under rank=blend (Section 8 future work)\n", spec.ID)
	sb.WriteString("KOR weight  Missed  Retrieved  exact  narrative  distractors\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11g %-7d %-10d %-6d %-10d %d\n",
			r.KORWeight, r.Missed, r.Retrieved, r.ExactInTop, r.NarrativeInTop, r.DistractorsInTop)
	}
	return sb.String()
}
