package inex

import (
	"strings"
	"testing"
)

func TestTopicsMatchPaperPools(t *testing.T) {
	// The planting schedule must reproduce Table 1's "Out of" column.
	want := map[int]int{130: 7, 131: 6, 132: 12, 140: 20, 141: 5, 142: 8, 145: 6, 151: 6}
	topics := Topics()
	if len(topics) != 8 {
		t.Fatalf("topics = %d", len(topics))
	}
	for _, spec := range topics {
		if got := spec.Assessed(); got != want[spec.ID] {
			t.Errorf("topic %d: assessed pool %d, paper says %d", spec.ID, got, want[spec.ID])
		}
	}
}

func TestBuildCollectionDeterministic(t *testing.T) {
	spec := Topics()[0]
	a, assessedA := BuildCollection(spec, 42)
	b, assessedB := BuildCollection(spec, 42)
	if a.XMLString() != b.XMLString() {
		t.Fatal("collection not deterministic")
	}
	if len(assessedA) != len(assessedB) {
		t.Fatal("assessments not deterministic")
	}
	if len(assessedA) != spec.Assessed() {
		t.Fatalf("assessed = %d, want %d", len(assessedA), spec.Assessed())
	}
}

func TestCollectionShape(t *testing.T) {
	spec := Topics()[1] // topic 131
	doc, assessed := BuildCollection(spec, 42)
	if doc.Tag(doc.Root()) != "collection" {
		t.Fatalf("root = %q", doc.Tag(doc.Root()))
	}
	if n := len(doc.ElementsByTag("article")); n < 30 {
		t.Errorf("articles = %d, want plants + 25 filler", n)
	}
	// Assessed components carry the right tags.
	tags := map[string]int{}
	for _, a := range assessed {
		tags[doc.Tag(a)]++
	}
	if tags["abs"] != 4 || tags["p"] != 2 {
		t.Errorf("assessed tags = %v", tags)
	}
	// Relevant articles carry the author for topic 131.
	aus := doc.ElementsByTag("au")
	hasHan := false
	for _, au := range aus {
		if doc.TextContent(au) == "Jiawei Han" {
			hasHan = true
		}
	}
	if !hasHan {
		t.Errorf("topic 131 collection lacks the author")
	}
}

func TestTopicQueryShape(t *testing.T) {
	spec := Topics()[1]
	q := TopicQuery(spec, "abs")
	if q.Nodes[q.Dist].Tag != "abs" {
		t.Fatalf("dist = %q", q.Nodes[q.Dist].Tag)
	}
	if len(q.FindByTag("au")) != 1 {
		t.Errorf("author condition missing: %s", q)
	}
	q2 := TopicQuery(Topics()[0], "p")
	if len(q2.FindByTag("au")) != 0 {
		t.Errorf("unexpected author condition: %s", q2)
	}
}

func TestTopicProfileShape(t *testing.T) {
	spec := Topics()[1]
	prof := TopicProfile(spec, "abs")
	if len(prof.SRs) != 1 || len(prof.KORs) != 1 {
		t.Fatalf("profile: %d SRs, %d KORs", len(prof.SRs), len(prof.KORs))
	}
	if got := len(prof.KORs[0].Phrases); got != 2 {
		t.Errorf("KOR phrases = %d", got)
	}
}

func TestRunTopic131(t *testing.T) {
	spec := Topics()[1]
	row, err := RunTopic(spec, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.OutOf != 6 || row.InsteadOf != 6 {
		t.Errorf("pool = %+v", row)
	}
	// The hard component is missed; everything else is found.
	if row.Missed != 1 {
		t.Errorf("missed = %d, want 1 (the synonyms-only abstract)", row.Missed)
	}
	// Over-retrieval: more components than assessed.
	if row.Retrieved <= row.OutOf-row.Missed {
		t.Errorf("retrieved = %d, should exceed found-assessed", row.Retrieved)
	}
}

func TestPersonalizationImprovesOverBaseline(t *testing.T) {
	// The paper's claim: enforcing profiles improves retrieval of
	// assessed components. Narrative-only components are only reachable
	// with the profile, so the baseline must miss strictly more overall.
	persRows, err := RunTable1(42, true)
	if err != nil {
		t.Fatal(err)
	}
	baseRows, err := RunTable1(42, false)
	if err != nil {
		t.Fatal(err)
	}
	persMissed, baseMissed := 0, 0
	for i := range persRows {
		persMissed += persRows[i].Missed
		baseMissed += baseRows[i].Missed
		if persRows[i].Missed > baseRows[i].Missed {
			t.Errorf("topic %d: profile made things worse (%d vs %d)",
				persRows[i].Topic, persRows[i].Missed, baseRows[i].Missed)
		}
	}
	if persMissed >= baseMissed {
		t.Fatalf("personalization must reduce total missed: %d vs %d", persMissed, baseMissed)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := RunTable1(42, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperTable1) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		paper := PaperTable1[i]
		if r.Topic != paper.Topic || r.OutOf != paper.OutOf {
			t.Errorf("row %d: %+v vs paper %+v", i, r, paper)
		}
		// Shape: good precision (few missed relative to pool) and
		// over-retrieval (retrieved > found assessed).
		if r.Missed > r.OutOf/2 {
			t.Errorf("topic %d: missed %d of %d — precision shape broken", r.Topic, r.Missed, r.OutOf)
		}
		if r.Retrieved < r.OutOf-r.Missed {
			t.Errorf("topic %d: retrieved %d < found %d", r.Topic, r.Retrieved, r.OutOf-r.Missed)
		}
	}
	// Zero-miss topics in the paper should be zero-miss here.
	for _, i := range []int{0, 4, 6, 7} { // 130, 141, 145, 151
		if rows[i].Missed != 0 {
			t.Errorf("topic %d: missed %d, paper has 0", rows[i].Topic, rows[i].Missed)
		}
	}
}

// TestTable1ReproducesPaperExactly pins the default-seed run to the
// published Table 1 — the collection plants are calibrated so the
// measured values coincide row for row.
func TestTable1ReproducesPaperExactly(t *testing.T) {
	rows, err := RunTable1(42, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r != PaperTable1[i] {
			t.Errorf("row %d: measured %+v, paper %+v", i, r, PaperTable1[i])
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(PaperTable1)
	for _, frag := range []string{"Topic", "Missed", "130", "151", "Instead Of"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q:\n%s", frag, out)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 10 {
		t.Errorf("table lines = %d", n)
	}
}
