package inex

import (
	"strings"
	"testing"
)

func TestGradedAssessments(t *testing.T) {
	spec := Topics()[1] // topic 131: 4 easy, 1 narrative, 1 hard
	doc, graded := BuildCollectionGraded(spec, 42)
	if len(graded) != spec.Assessed() {
		t.Fatalf("graded = %d, want %d", len(graded), spec.Assessed())
	}
	counts := map[int]int{}
	for _, a := range graded {
		counts[a.Relevance]++
		if a.Relevance == 3 && a.Coverage != CoverageExact {
			t.Errorf("highly relevant must have exact coverage: %+v", a)
		}
		if kind, _ := Kind(doc, a.Node); kind == "hard" && a.Relevance != 1 {
			t.Errorf("hard component graded %d", a.Relevance)
		}
	}
	if counts[3] != 4 || counts[2] != 1 || counts[1] != 1 {
		t.Errorf("grade distribution = %v", counts)
	}
}

func TestStrictQuantizationFindsEverything(t *testing.T) {
	// The paper's misses are all low-grade components: under INEX's
	// strict quantization the personalized system retrieves the entire
	// pool for every topic.
	rows, err := RunQuantized(42, Strict)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("topic %d: empty strict pool", r.Topic)
		}
		if r.Found != r.Total {
			t.Errorf("topic %d: strict recall %v/%v", r.Topic, r.Found, r.Total)
		}
	}
}

func TestGeneralizedQuantizationMatchesTable1Shape(t *testing.T) {
	rows, err := RunQuantized(42, Generalized)
	if err != nil {
		t.Fatal(err)
	}
	table, err := RunTable1(42, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		// Generalized credit found/total must track the binary
		// found/assessed ratio: topics with misses lose credit.
		binaryLoss := table[i].Missed > 0
		gradedLoss := r.Found < r.Total
		if binaryLoss != gradedLoss {
			t.Errorf("topic %d: binary missed=%d but graded found %v/%v",
				r.Topic, table[i].Missed, r.Found, r.Total)
		}
	}
}

func TestQuantizationValues(t *testing.T) {
	cases := []struct {
		a       Assessment
		strict  float64
		general float64
	}{
		{Assessment{Relevance: 3, Coverage: CoverageExact}, 1, 1},
		{Assessment{Relevance: 2, Coverage: CoverageExact}, 0, 0.75},
		{Assessment{Relevance: 1, Coverage: CoverageTooSmall}, 0, 0.25},
		{Assessment{Relevance: 0, Coverage: CoverageNone}, 0, 0},
	}
	for _, c := range cases {
		if got := Strict(c.a); got != c.strict {
			t.Errorf("Strict(%+v) = %v", c.a, got)
		}
		if got := Generalized(c.a); got != c.general {
			t.Errorf("Generalized(%+v) = %v", c.a, got)
		}
	}
}

func TestFormatGraded(t *testing.T) {
	rows, err := RunQuantized(42, Strict)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatGraded("strict", rows)
	for _, frag := range []string{"strict", "Topic", "130", "151"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}
