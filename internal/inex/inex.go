// Package inex is the INEX substrate for the effectiveness study of
// Section 7.1 (Table 1). The real INEX collection (IEEE Computer Society
// articles), topics and relevance assessments are proprietary; this
// package synthesizes a collection with the same machinery:
//
//   - IEEE-style articles (article/fm/au+abs, article/bdy/sec/p+fig);
//   - the paper's 8 topics (130, 131, 132, 140, 141, 142, 145, 151),
//     each a NEXI-style TPQ plus a profile derived from the topic
//     narrative — a scoping rule that relaxes the query keyword (the
//     paper's "some form of relaxation") and a keyword OR over the
//     narrative's related terms, exactly like the paper's example KOR
//     for topic 131 (data cube / association rule / data mining);
//   - planted relevance assessments with the same assessed-pool sizes as
//     Table 1's "Out of" column. Components come in four kinds: easy
//     (query keyword + narrative terms), narrative-only (reachable only
//     through the profile's relaxation — these are what personalization
//     wins), hard (only unrelated synonyms — these stay missed, Table
//     1's nonzero "Missed" entries), and distractors (query keyword but
//     not assessed — these drive over-retrieval, the paper's "poor
//     recall" observation).
//
// Evaluation mirrors Section 7.1: "We considered the best 5 answers for
// each XML element type that was requested", counting answers with a
// positive score, and including "distinguished nodes other than the ones
// requested by the query" (each topic lists its component types).
package inex

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// TypePlant says how many components of one element type to plant for a
// topic, by kind.
type TypePlant struct {
	Tag               string
	EasyWithPhrase    int // assessed; contain the query phrase + narrative terms
	EasyNarrativeOnly int // assessed; narrative terms only (profile-reachable)
	Hard              int // assessed; synonyms only (unreachable)
	Distractors       int // not assessed; query phrase only
}

// Spec is one INEX topic: query, narrative-derived profile inputs, and
// the planting schedule whose assessed total matches Table 1's "Out of".
type Spec struct {
	ID        int
	Title     string
	Phrase    string   // the topic's query phrase
	Author    string   // optional au condition (topic 131)
	Narrative []string // related terms from the narrative -> KOR phrases
	Synonyms  []string // unrelated synonyms for hard components
	Types     []TypePlant
}

// Assessed returns the topic's assessment-pool size (Table 1 "Out of").
func (s Spec) Assessed() int {
	t := 0
	for _, tp := range s.Types {
		t += tp.EasyWithPhrase + tp.EasyNarrativeOnly + tp.Hard
	}
	return t
}

// Topics returns the 8 paper topics. Topic 131 is the one the paper
// quotes verbatim (Jiawei Han / data mining, with the derived KOR on
// data cube / association rule / data mining); the others are synthetic
// IEEE-flavored topics whose planting schedules target the Table 1 pool
// sizes.
func Topics() []Spec {
	return []Spec{
		{
			ID: 130, Title: "information retrieval relevance feedback",
			Phrase:    "information retrieval",
			Narrative: []string{"relevance feedback", "query expansion"},
			Synonyms:  []string{"document indexing heuristics"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 1, EasyNarrativeOnly: 1, Distractors: 3},
				{Tag: "p", EasyWithPhrase: 1, EasyNarrativeOnly: 1, Distractors: 3},
				{Tag: "sec", EasyWithPhrase: 2, Distractors: 3},
				{Tag: "fig", EasyWithPhrase: 1},
			},
		},
		{
			ID: 131, Title: "abstracts by Jiawei Han about data mining",
			Phrase: "data mining", Author: "Jiawei Han",
			Narrative: []string{"data cube", "association rule"},
			Synonyms:  []string{"knowledge discovery pipelines"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 2, EasyNarrativeOnly: 1, Hard: 1, Distractors: 2},
				{Tag: "p", EasyWithPhrase: 2, Distractors: 3},
				{Tag: "fig", Distractors: 3},
			},
		},
		{
			ID: 132, Title: "parallel architectures for matrix computation",
			Phrase:    "matrix computation",
			Narrative: []string{"systolic array", "parallel architecture"},
			Synonyms:  []string{"vector pipeline hazards"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 2, EasyNarrativeOnly: 1, Hard: 1, Distractors: 2},
				{Tag: "p", EasyWithPhrase: 2, EasyNarrativeOnly: 1, Hard: 1, Distractors: 2},
				{Tag: "sec", EasyWithPhrase: 2, Hard: 1, Distractors: 3},
				{Tag: "fig", EasyWithPhrase: 1},
			},
		},
		{
			ID: 140, Title: "software cost estimation models",
			Phrase:    "cost estimation",
			Narrative: []string{"function points", "effort model"},
			Synonyms:  []string{"budget forecasting spreadsheets"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 3, EasyNarrativeOnly: 1, Hard: 2, Distractors: 1},
				{Tag: "p", EasyWithPhrase: 3, EasyNarrativeOnly: 1, Hard: 2, Distractors: 1},
				{Tag: "sec", EasyWithPhrase: 3, EasyNarrativeOnly: 1, Hard: 1, Distractors: 1},
				{Tag: "fig", EasyWithPhrase: 2, Hard: 1, Distractors: 1},
			},
		},
		{
			ID: 141, Title: "object oriented design patterns",
			Phrase:    "design patterns",
			Narrative: []string{"object oriented", "software reuse"},
			Synonyms:  []string{"modular blueprints catalog"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 1, EasyNarrativeOnly: 1, Distractors: 3},
				{Tag: "p", EasyWithPhrase: 1, Distractors: 4},
				{Tag: "sec", EasyWithPhrase: 1, Distractors: 4},
				{Tag: "fig", EasyWithPhrase: 1, Distractors: 1},
			},
		},
		{
			ID: 142, Title: "wireless network protocols",
			Phrase:    "wireless network",
			Narrative: []string{"medium access", "mobile host"},
			Synonyms:  []string{"radio spectrum auctions"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 2, EasyNarrativeOnly: 1, Hard: 1, Distractors: 2},
				{Tag: "p", EasyWithPhrase: 2, Distractors: 3},
				{Tag: "fig", EasyWithPhrase: 2, Distractors: 2},
			},
		},
		{
			ID: 145, Title: "formal verification of hardware",
			Phrase:    "formal verification",
			Narrative: []string{"model checking", "temporal logic"},
			Synonyms:  []string{"silicon audit procedures"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 1, EasyNarrativeOnly: 1, Distractors: 3},
				{Tag: "p", EasyWithPhrase: 2, Distractors: 3},
				{Tag: "sec", EasyWithPhrase: 2, Distractors: 3},
			},
		},
		{
			ID: 151, Title: "image compression algorithms",
			Phrase:    "image compression",
			Narrative: []string{"wavelet transform", "entropy coding"},
			Synonyms:  []string{"pixel shrinking tricks"},
			Types: []TypePlant{
				{Tag: "abs", EasyWithPhrase: 2, EasyNarrativeOnly: 1, Distractors: 2},
				{Tag: "p", EasyWithPhrase: 2, Distractors: 3},
				{Tag: "fig", EasyWithPhrase: 1},
			},
		},
	}
}

var fillerWords = []string{
	"system", "approach", "result", "method", "analysis", "evaluation",
	"performance", "experiment", "section", "framework", "implementation",
	"algorithm", "study", "proposed", "novel", "technique", "problem",
}

type builder struct {
	r *rand.Rand
	b *xmldoc.Builder
}

func (g *builder) sentence(n int, inject ...string) string {
	var sb strings.Builder
	pos := map[int]string{}
	for i, p := range inject {
		pos[1+i*2] = p
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if p, ok := pos[i]; ok {
			sb.WriteString(p)
			sb.WriteByte(' ')
		}
		sb.WriteString(fillerWords[g.r.Intn(len(fillerWords))])
	}
	return sb.String()
}

// BuildCollection synthesizes the topic's collection and returns the
// document plus the assessed component IDs (the simulated INEX
// assessment).
func BuildCollection(spec Spec, seed int64) (*xmldoc.Document, []xmldoc.NodeID) {
	g := &builder{r: rand.New(rand.NewSource(seed ^ int64(spec.ID))), b: xmldoc.NewBuilder()}
	g.b.Start("collection")

	var plants []plantSpec
	for _, tp := range spec.Types {
		for i := 0; i < tp.EasyWithPhrase; i++ {
			plants = append(plants, plantSpec{
				tag:     tp.Tag,
				content: g.sentence(14, spec.Phrase, spec.Narrative[g.r.Intn(len(spec.Narrative))]),
				assess:  true, author: true, kind: "easy",
			})
		}
		for i := 0; i < tp.EasyNarrativeOnly; i++ {
			inj := append([]string(nil), spec.Narrative...)
			plants = append(plants, plantSpec{
				tag:     tp.Tag,
				content: g.sentence(14, inj...),
				assess:  true, author: true, kind: "narrative",
			})
		}
		for i := 0; i < tp.Hard; i++ {
			plants = append(plants, plantSpec{
				tag:     tp.Tag,
				content: g.sentence(14, spec.Synonyms[g.r.Intn(len(spec.Synonyms))]),
				assess:  true, author: true, kind: "hard",
			})
		}
		for i := 0; i < tp.Distractors; i++ {
			// Distractors satisfy the whole query (for authored topics
			// they are other on-phrase components by the same author) —
			// they are what the system retrieves "instead of" assessed
			// components.
			plants = append(plants, plantSpec{
				tag:     tp.Tag,
				content: g.sentence(14, spec.Phrase),
				assess:  false, author: true, kind: "distractor",
			})
		}
	}
	g.r.Shuffle(len(plants), func(i, j int) { plants[i], plants[j] = plants[j], plants[i] })

	for i, p := range plants {
		g.article(spec, fmt.Sprintf("a%d", i), &p)
	}
	// Filler articles: no topic terms at all.
	for i := 0; i < 25; i++ {
		g.article(spec, fmt.Sprintf("filler%d", i), nil)
	}
	g.b.End()
	doc := g.b.MustDocument()

	var assessed []xmldoc.NodeID
	doc.Walk(func(id xmldoc.NodeID) bool {
		if doc.Kind(id) == xmldoc.Element {
			if v, ok := doc.AttrValue(id, "assessed"); ok && v == "yes" {
				assessed = append(assessed, id)
			}
		}
		return true
	})
	return doc, assessed
}

// plantSpec is one component to be planted into the collection.
type plantSpec struct {
	tag     string
	content string
	assess  bool
	author  bool
	kind    string // "easy", "narrative", "hard", "distractor"
}

// article writes one IEEE-style article; plant places the topic
// component (nil for pure filler).
func (g *builder) article(spec Spec, id string, plant *plantSpec) {
	g.b.Start("article", xmldoc.Attr{Name: "id", Value: id})
	g.b.Start("fm")
	if plant != nil && plant.author && spec.Author != "" {
		g.b.Elem("au", spec.Author)
	} else {
		g.b.Elem("au", "A. Author")
	}
	if plant != nil && plant.tag == "abs" {
		g.plantElem(plant)
	} else {
		g.b.Elem("abs", g.sentence(12))
	}
	g.b.End() // fm
	g.b.Start("bdy")
	g.b.Start("sec")
	g.b.Elem("st", g.sentence(4))
	g.b.Elem("p", g.sentence(16))
	g.b.End() // sec
	// Planted p and fig components sit directly under bdy so that the
	// sec-type candidate pool is not polluted by containment (a sec
	// containing a planted paragraph would itself score on the topic).
	if plant != nil && plant.tag == "p" {
		g.plantElem(plant)
	}
	if plant != nil && plant.tag == "fig" {
		g.plantElem(plant)
	}
	if plant != nil && plant.tag == "sec" {
		// The content is direct section text (not an inner paragraph) so
		// sec plants do not leak into the p-type candidate pool.
		g.b.Start("sec", g.assessAttrs(plant)...)
		g.b.Elem("st", g.sentence(3))
		g.b.Text(plant.content)
		g.b.End()
	}
	g.b.End() // bdy
	g.b.End() // article
}

func (g *builder) plantElem(plant *plantSpec) {
	g.b.Start(plant.tag, g.assessAttrs(plant)...)
	g.b.Text(plant.content)
	g.b.End()
}

// Kind reports a planted component's kind attribute ("easy",
// "narrative", "hard", "distractor"); ok is false for filler content.
func Kind(doc *xmldoc.Document, id xmldoc.NodeID) (string, bool) {
	return doc.AttrValue(id, "kind")
}

func (g *builder) assessAttrs(plant *plantSpec) []xmldoc.Attr {
	attrs := []xmldoc.Attr{{Name: "kind", Value: plant.kind}}
	if plant.assess {
		attrs = append(attrs, xmldoc.Attr{Name: "assessed", Value: "yes"})
	}
	return attrs
}

// TopicQuery builds the topic's TPQ for one requested element type —
// topic 131's own query shape: //article[about(.//au, A)]//TYPE[about(., phrase)].
func TopicQuery(spec Spec, typ string) *tpq.Query {
	var src string
	if spec.Author != "" {
		src = fmt.Sprintf(`//article[about(.//au, %q)]//%s[about(., %q)]`,
			spec.Author, typ, spec.Phrase)
	} else {
		src = fmt.Sprintf(`//article//%s[about(., %q)]`, typ, spec.Phrase)
	}
	return tpq.MustParse(src)
}

// TopicProfile derives the topic's profile from its narrative, as
// Section 7.1 does: a scoping rule that relaxes the query keyword and
// one keyword-based OR per narrative term (the paper's example derives
// exactly this shape for topic 131).
func TopicProfile(spec Spec, typ string) *profile.Profile {
	var sb strings.Builder
	fmt.Fprintf(&sb,
		"sr relax priority 1: if ftcontains(%s, %q) then remove ftcontains(%s, %q)\n",
		typ, spec.Phrase, typ, spec.Phrase)
	var fts []string
	for _, n := range spec.Narrative {
		fts = append(fts, fmt.Sprintf("ftcontains(x, %q)", n))
	}
	fmt.Fprintf(&sb, "kor narrative: x.tag = %s & y.tag = %s & %s => x < y\n",
		typ, typ, strings.Join(fts, " & "))
	sb.WriteString("rank K,V,S\n")
	return profile.MustParseProfile(sb.String())
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Topic     int
	Missed    int
	OutOf     int
	Retrieved int
	InsteadOf int
}

// RunTopic evaluates one topic: the best 5 positive-score answers per
// requested element type, compared against the planted assessment.
// personalized toggles profile enforcement (Table 1 is personalized; the
// unpersonalized run is the baseline EXPERIMENTS.md contrasts).
func RunTopic(spec Spec, seed int64, personalized bool) (Table1Row, error) {
	return RunTopicScored(spec, seed, personalized, nil)
}

// RunTopicScored is RunTopic under an alternative base relevance function
// (nil keeps the default tf·idf) — the scorer study's entry point.
func RunTopicScored(spec Spec, seed int64, personalized bool, scorer index.Scorer) (Table1Row, error) {
	doc, assessed := BuildCollection(spec, seed)
	e := engine.New(doc, text.DefaultPipeline)
	if scorer != nil {
		e.Index().SetScorer(scorer)
	}

	retrieved := map[xmldoc.NodeID]bool{}
	for _, tp := range spec.Types {
		req := engine.Request{
			Query:    TopicQuery(spec, tp.Tag),
			K:        5,
			Strategy: plan.Push,
		}
		if personalized {
			req.Profile = TopicProfile(spec, tp.Tag)
		}
		resp, err := e.Search(req)
		if err != nil {
			return Table1Row{}, fmt.Errorf("inex: topic %d type %s: %w", spec.ID, tp.Tag, err)
		}
		for _, r := range resp.Results {
			if r.S+r.K > 1e-9 {
				retrieved[r.Node] = true
			}
		}
	}

	row := Table1Row{
		Topic:     spec.ID,
		OutOf:     len(assessed),
		Retrieved: len(retrieved),
		InsteadOf: len(assessed),
	}
	for _, a := range assessed {
		if !retrieved[a] {
			row.Missed++
		}
	}
	return row, nil
}

// RunTable1 reproduces Table 1: all 8 topics under profile enforcement.
func RunTable1(seed int64, personalized bool) ([]Table1Row, error) {
	return RunTable1Scored(seed, personalized, nil)
}

// RunTable1Scored is RunTable1 under an alternative base scorer.
func RunTable1Scored(seed int64, personalized bool, scorer index.Scorer) ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range Topics() {
		row, err := RunTopicScored(spec, seed, personalized, scorer)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PaperTable1 is the published Table 1, for side-by-side reporting.
var PaperTable1 = []Table1Row{
	{Topic: 130, Missed: 0, OutOf: 7, Retrieved: 16, InsteadOf: 7},
	{Topic: 131, Missed: 1, OutOf: 6, Retrieved: 13, InsteadOf: 6},
	{Topic: 132, Missed: 3, OutOf: 12, Retrieved: 16, InsteadOf: 12},
	{Topic: 140, Missed: 6, OutOf: 20, Retrieved: 18, InsteadOf: 20},
	{Topic: 141, Missed: 0, OutOf: 5, Retrieved: 17, InsteadOf: 5},
	{Topic: 142, Missed: 1, OutOf: 8, Retrieved: 14, InsteadOf: 8},
	{Topic: 145, Missed: 0, OutOf: 6, Retrieved: 15, InsteadOf: 6},
	{Topic: 151, Missed: 0, OutOf: 6, Retrieved: 11, InsteadOf: 6},
}

// FormatTable renders rows in the paper's Table 1 layout.
func FormatTable(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("          Precision        Recall\n")
	sb.WriteString("Topic   Missed  Out of   Retrieved  Instead Of\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-7d %-7d %-8d %-10d %d\n",
			r.Topic, r.Missed, r.OutOf, r.Retrieved, r.InsteadOf)
	}
	return sb.String()
}
