package inex

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/profile"
	"repro/internal/tpq"
)

// This file parses INEX topic files in the format Section 7.1 quotes:
//
//	<inex_topic topic_id="131" query_type="CAS">
//	  <title>//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]</title>
//	  <description>We are looking for ...</description>
//	  <narrative>To be relevant, the component has to ...</narrative>
//	</inex_topic>
//
// The title is a NEXI content-and-structure query, which the tpq parser
// reads directly; the narrative supplies the related terms a profile's
// keyword ordering rule is derived from (the paper's derivation for
// topic 131: data cube / association rule / data mining).

// Topic is a parsed INEX topic.
type Topic struct {
	ID          int
	QueryType   string
	Title       string
	Description string
	Narrative   string

	Query *tpq.Query
}

type xmlTopic struct {
	XMLName     xml.Name `xml:"inex_topic"`
	TopicID     string   `xml:"topic_id,attr"`
	QueryType   string   `xml:"query_type,attr"`
	Title       string   `xml:"title"`
	Description string   `xml:"description"`
	Narrative   string   `xml:"narrative"`
}

// ParseTopic reads one INEX topic document.
func ParseTopic(src string) (*Topic, error) {
	var xt xmlTopic
	if err := xml.Unmarshal([]byte(src), &xt); err != nil {
		return nil, fmt.Errorf("inex: parse topic: %w", err)
	}
	id, err := strconv.Atoi(strings.TrimSpace(xt.TopicID))
	if err != nil {
		return nil, fmt.Errorf("inex: parse topic: bad topic_id %q", xt.TopicID)
	}
	title := strings.TrimSpace(xt.Title)
	q, err := tpq.Parse(title)
	if err != nil {
		return nil, fmt.Errorf("inex: topic %d: title is not a parseable CAS query: %w", id, err)
	}
	return &Topic{
		ID:          id,
		QueryType:   xt.QueryType,
		Title:       title,
		Description: strings.TrimSpace(xt.Description),
		Narrative:   strings.TrimSpace(xt.Narrative),
		Query:       q,
	}, nil
}

// DeriveProfile builds a personalization profile from the topic the way
// Section 7.1 does: every quoted phrase in the narrative (plus any
// explicitly supplied related terms) becomes an ftcontains atom of a
// keyword ordering rule over the query's answer type, and the query's
// own keyword predicate on the answer node is relaxed by a scoping rule.
// extraTerms lets callers add narrative terms that are not quoted.
func (t *Topic) DeriveProfile(extraTerms ...string) (*profile.Profile, error) {
	typ := t.Query.Nodes[t.Query.Dist].Tag
	terms := append(quotedPhrases(t.Narrative), extraTerms...)
	if len(terms) == 0 {
		return nil, fmt.Errorf("inex: topic %d: no narrative terms to derive a profile from", t.ID)
	}
	var sb strings.Builder
	// Relax each full-text predicate on the distinguished node.
	for _, f := range t.Query.Nodes[t.Query.Dist].FT {
		fmt.Fprintf(&sb,
			"sr relax%d priority 1: if ftcontains(%s, %q) then remove ftcontains(%s, %q)\n",
			len(sb.String()), typ, f.Phrase, typ, f.Phrase)
	}
	var fts []string
	for _, term := range terms {
		fts = append(fts, fmt.Sprintf("ftcontains(x, %q)", term))
	}
	fmt.Fprintf(&sb, "kor narrative: x.tag = %s & y.tag = %s & %s => x < y\n",
		typ, typ, strings.Join(fts, " & "))
	sb.WriteString("rank K,V,S\n")
	return profile.ParseProfile(sb.String())
}

// quotedPhrases extracts "double quoted" phrases from free text.
func quotedPhrases(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '"')
		if j < 0 {
			return out
		}
		phrase := strings.Join(strings.Fields(s[i+1:i+1+j]), " ")
		if phrase != "" {
			out = append(out, phrase)
		}
		s = s[i+j+2:]
	}
}
