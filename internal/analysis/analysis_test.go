package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/tpq"
)

const paperQ = `//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`

// fig2SRs returns the paper's scoping rules, optionally prioritized.
func fig2SRs(t *testing.T, prioritized bool) []*profile.SR {
	t.Helper()
	pr := ""
	if prioritized {
		pr = `
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2 priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3 priority 3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
`
	} else {
		pr = `
sr p1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
`
	}
	p, err := profile.ParseProfile(pr)
	if err != nil {
		t.Fatal(err)
	}
	return p.SRs
}

func TestConflictGraphPaperExample(t *testing.T) {
	// Section 5.1: p1 conflicts with p2; p1 and p3 conflict with each
	// other (a cycle). Without priorities the analysis must report it.
	srs := fig2SRs(t, false)
	q := tpq.MustParse(paperQ)
	rep, err := AnalyzeSRs(srs, q)
	if err == nil {
		t.Fatalf("expected a conflict-cycle error, got order %v", rep.Order)
	}
	if !rep.Cyclic {
		t.Fatal("Cyclic not set")
	}
	for i := 0; i < 3; i++ {
		if !rep.Applicable[i] {
			t.Errorf("rule %d should be applicable", i)
		}
	}
	has := func(from, to int) bool {
		for _, j := range rep.Conflicts[from] {
			if j == to {
				return true
			}
		}
		return false
	}
	if !has(0, 1) {
		t.Errorf("p1 must conflict with p2")
	}
	if !has(0, 2) || !has(2, 0) {
		t.Errorf("p1 and p3 must conflict with each other: %v", rep.Conflicts)
	}
}

func TestConflictPrioritiesResolve(t *testing.T) {
	srs := fig2SRs(t, true)
	q := tpq.MustParse(paperQ)
	rep, err := AnalyzeSRs(srs, q)
	if err != nil {
		t.Fatalf("priorities must resolve cycles: %v", err)
	}
	if len(rep.Order) != 3 || rep.Order[0] != 0 || rep.Order[1] != 1 || rep.Order[2] != 2 {
		t.Errorf("priority order = %v, want [0 1 2]", rep.Order)
	}
}

func TestTopoOrderAppliesTargetsFirst(t *testing.T) {
	// Only p1 and p2 (no cycle): p1 conflicts with p2, so p2 must be
	// applied before p1 and both fire.
	srs := fig2SRs(t, false)[:2]
	q := tpq.MustParse(paperQ)
	rep, err := AnalyzeSRs(srs, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Order) != 2 || rep.Order[0] != 1 || rep.Order[1] != 0 {
		t.Fatalf("order = %v, want [1 0] (conflict target first)", rep.Order)
	}
	flock, applied, err := Flock(srs, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Fatalf("applied = %v, want both rules", applied)
	}
	if len(flock) != 3 {
		t.Fatalf("flock size = %d, want 3 (Q, p2(Q), p1(p2(Q)))", len(flock))
	}
	final := flock[len(flock)-1].String()
	if !strings.Contains(final, "american") {
		t.Errorf("p2's addition missing: %s", final)
	}
	if strings.Contains(final, "good condition") {
		t.Errorf("p1's removal missing: %s", final)
	}
}

func TestFlockSkipsInapplicable(t *testing.T) {
	// With priorities p1 < p2: p1 fires first and disables p2.
	srsSrc := `
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2 priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
`
	p := profile.MustParseProfile(srsSrc)
	q := tpq.MustParse(paperQ)
	flock, applied, err := Flock(p.SRs, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0] != "p1" {
		t.Fatalf("applied = %v, want [p1] only", applied)
	}
	if len(flock) != 2 {
		t.Fatalf("flock = %d queries", len(flock))
	}
}

func TestEncodeFlock(t *testing.T) {
	srs := fig2SRs(t, true)
	q := tpq.MustParse(paperQ)
	enc, applied, err := EncodeFlock(srs, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) == 0 {
		t.Fatal("nothing encoded")
	}
	// Encoded query keeps every phrase but some became optional.
	opt, req := 0, 0
	for _, n := range enc.Nodes {
		for _, f := range n.FT {
			if f.Optional {
				opt++
			} else {
				req++
			}
		}
	}
	if opt == 0 {
		t.Errorf("no optional predicates in encoded query: %s", enc)
	}
	// The original query is untouched.
	if strings.Contains(q.String(), "american") {
		t.Errorf("input query mutated")
	}
	// Encoded query must still be a valid TPQ.
	if err := enc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAmbiguityPaperExample(t *testing.T) {
	// Section 5.2: {ω1 (red preferred), ω2 (lower mileage preferred)} is
	// ambiguous — a red high-mileage car vs a non-red low-mileage car.
	p := profile.MustParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	rep := DetectAmbiguity(p.VORs)
	if !rep.Ambiguous {
		t.Fatal("ω1, ω2 must be ambiguous (Section 5.2)")
	}
	if len(rep.Cycle) == 0 || rep.Suggestion == "" {
		t.Errorf("witness missing: %+v", rep)
	}

	// Priorities break the cycle: "priority 1 to ω2 and 2 to ω1".
	p.VORs[0].Priority = 2
	p.VORs[1].Priority = 1
	if rep := DetectAmbiguityPrioritized(p.VORs); rep.Ambiguous {
		t.Errorf("distinct priorities must resolve ambiguity: %+v", rep)
	}
	// Same priority does not.
	p.VORs[0].Priority = 1
	if rep := DetectAmbiguityPrioritized(p.VORs); !rep.Ambiguous {
		t.Errorf("equal priorities cannot resolve ambiguity")
	}
}

func TestUnambiguousSets(t *testing.T) {
	cases := []string{
		// Single rule.
		`vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`,
		// Different tags cannot interact.
		`
vor a: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor b: x.tag = truck & y.tag = truck & x.mileage < y.mileage => x < y
`,
		// ω1 and ω3 of Fig. 2: a red car is never the y of w1 (y.color !=
		// red) while w3's x side is unconstrained... those are actually
		// compatible; use disjoint local constraints instead:
		`
vor a: x.tag = car & y.tag = car & x.fuel = "diesel" & y.fuel = "diesel" & x.hp > y.hp => x < y
vor b: x.tag = car & y.tag = car & x.fuel = "petrol" & y.fuel = "petrol" & x.mileage < y.mileage => x < y
`,
	}
	for i, src := range cases {
		p := profile.MustParseProfile(src)
		if rep := DetectAmbiguity(p.VORs); rep.Ambiguous {
			t.Errorf("case %d must be unambiguous; cycle %v", i, rep.Cycle)
		}
	}
}

func TestAmbiguityClosureMatters(t *testing.T) {
	// The paper's closure example: from y.hp = 200 & x.hp < y.hp one
	// infers x.hp < 200. Rule a prefers low-hp cars among hp=200-capped
	// pairs; rule b prefers cars with hp > 300. a's x side (hp < 200,
	// derived) is incompatible with b's y side... build a pair that is
	// compatible only if the closure is computed, and one that is not.
	pIncompat := profile.MustParseProfile(`
vor a: x.tag = car & y.tag = car & y.hp = 200 & x.hp < y.hp => x < y
vor b: x.tag = car & y.tag = car & x.hp = 500 & y.hp = 500 & x.mileage < y.mileage => x < y
`)
	// a's x has derived hp < 200; b's sides have hp = 500. A cycle needs
	// a.y (hp=200) = b.x (hp=500): inconsistent -> unambiguous.
	if rep := DetectAmbiguity(pIncompat.VORs); rep.Ambiguous {
		t.Errorf("closure should prove incompatibility; cycle %v", rep.Cycle)
	}

	pCompat := profile.MustParseProfile(`
vor a: x.tag = car & y.tag = car & y.hp = 200 & x.hp < y.hp => x < y
vor b: x.tag = car & y.tag = car & x.hp = 200 & y.hp < 200 & x.mileage < y.mileage => x < y
`)
	// a.y (hp=200) = b.x (hp=200) consistent; b.y (hp<200) = a.x
	// (hp<200 derived) consistent -> alternating cycle -> ambiguous.
	if rep := DetectAmbiguity(pCompat.VORs); !rep.Ambiguous {
		t.Errorf("compatible cycle must be detected")
	}
}

func TestAmbiguityPrefRel(t *testing.T) {
	// Color order vs mileage: ambiguous; color order vs itself reversed
	// would be a cycle in the order construction (rejected earlier).
	p := profile.MustParseProfile(`
order colors: red > blue
vor a: x.tag = car & y.tag = car & colors(x.color, y.color) => x < y
vor b: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	if rep := DetectAmbiguity(p.VORs); !rep.Ambiguous {
		t.Errorf("prefRel vs mileage must be ambiguous")
	}

	// prefRel alone: unambiguous (it is a strict partial order).
	if rep := DetectAmbiguity(p.VORs[:1]); rep.Ambiguous {
		t.Errorf("a single prefRel rule must be unambiguous")
	}
}

func TestConsistentConstraints(t *testing.T) {
	num := func(attr string, op tpq.RelOp, v float64) Constraint {
		return Constraint{Attr: attr, Kind: KindCmp, Op: op, Val: tpq.NumValue(v)}
	}
	str := func(attr string, op tpq.RelOp, s string) Constraint {
		return Constraint{Attr: attr, Kind: KindCmp, Op: op, Val: tpq.StrValue(s)}
	}
	cases := []struct {
		name string
		cs   []Constraint
		want bool
	}{
		{"empty", nil, true},
		{"point", []Constraint{num("a", tpq.EQ, 5)}, true},
		{"interval", []Constraint{num("a", tpq.GT, 1), num("a", tpq.LT, 3)}, true},
		{"empty interval", []Constraint{num("a", tpq.GT, 3), num("a", tpq.LT, 1)}, false},
		{"touching strict", []Constraint{num("a", tpq.GT, 2), num("a", tpq.LT, 2)}, false},
		{"touching closed", []Constraint{num("a", tpq.GE, 2), num("a", tpq.LE, 2)}, true},
		{"eq vs lt", []Constraint{num("a", tpq.EQ, 5), num("a", tpq.LT, 3)}, false},
		{"ne escape", []Constraint{num("a", tpq.GE, 2), num("a", tpq.LE, 2), num("a", tpq.NE, 2)}, false},
		{"two attrs independent", []Constraint{num("a", tpq.EQ, 1), num("b", tpq.EQ, 2)}, true},
		{"str eq ne", []Constraint{str("c", tpq.EQ, "red"), str("c", tpq.NE, "red")}, false},
		{"str eq eq diff", []Constraint{str("c", tpq.EQ, "red"), str("c", tpq.EQ, "blue")}, false},
		{"str ne ne", []Constraint{str("c", tpq.NE, "red"), str("c", tpq.NE, "blue")}, true},
		{"cross domain eq", []Constraint{str("c", tpq.EQ, "red"), num("c", tpq.EQ, 5)}, false},
		{"cross domain ne", []Constraint{str("c", tpq.NE, "red"), num("c", tpq.EQ, 5)}, true},
		{"interval midpoint", []Constraint{num("a", tpq.GT, 1), num("a", tpq.LT, 2)}, true},
	}
	for _, c := range cases {
		if got := ConsistentConstraints(c.cs); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConsistentPrefConstraints(t *testing.T) {
	po := profile.NewPartialOrder("colors")
	_ = po.Add("red", "blue")
	_ = po.Add("blue", "green")
	above := func(ref string) Constraint {
		return Constraint{Attr: "c", Kind: KindPrefAbove, Order: po, Ref: ref}
	}
	below := func(ref string) Constraint {
		return Constraint{Attr: "c", Kind: KindPrefBelow, Order: po, Ref: ref}
	}
	eq := func(s string) Constraint {
		return Constraint{Attr: "c", Kind: KindCmp, Op: tpq.EQ, Val: tpq.StrValue(s)}
	}
	if !ConsistentConstraints([]Constraint{above("blue")}) {
		t.Errorf("above(blue): red works")
	}
	if !ConsistentConstraints([]Constraint{above("green"), below("red")}) {
		t.Errorf("between green and red: blue works")
	}
	if ConsistentConstraints([]Constraint{above("red")}) {
		t.Errorf("nothing is above red")
	}
	if ConsistentConstraints([]Constraint{above("blue"), eq("green")}) {
		t.Errorf("green is not above blue")
	}
	if !ConsistentConstraints([]Constraint{above("blue"), eq("red")}) {
		t.Errorf("red is above blue")
	}
}

func TestLocalClosureDerivations(t *testing.T) {
	// The paper's example: x.color = red & y.color != red & y.hp = 200 &
	// x.hp < y.hp gives local*(x) = {color = red, hp < 200}.
	p := profile.MustParseProfile(
		`vor w: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" & y.hp = 200 & x.hp < y.hp => x < y`)
	v := p.VORs[0]
	cs := LocalClosure(v, true)
	var hasColor, hasHP bool
	for _, c := range cs {
		if c.Kind == KindCmp && c.Attr == "color" && c.Op == tpq.EQ && c.Val.Str == "red" {
			hasColor = true
		}
		if c.Kind == KindCmp && c.Attr == "hp" && c.Op == tpq.LT && c.Val.Num == 200 {
			hasHP = true
		}
	}
	if !hasColor || !hasHP {
		t.Errorf("local*(x) = %v; want color=red and hp<200", cs)
	}
}

// TestPropertyBruteForceWitnessImpliesDetection: on random small rule
// sets, whenever a brute-force search over tiny databases finds a
// preference contradiction between two elements, the static detector
// must report ambiguity. (The detector may be conservative the other
// way; Lemma 5.1's "only if" direction is what personalization soundness
// relies on.)
func TestPropertyBruteForceWitnessImpliesDetection(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	attrs := []string{"a", "b"}
	colors := []string{"red", "blue"}
	for iter := 0; iter < 400; iter++ {
		vors := randomVORs(r, attrs, colors)
		if len(vors) == 0 {
			continue
		}
		witness := bruteForceWitness(vors, attrs, colors)
		if witness {
			rep := DetectAmbiguity(vors)
			if !rep.Ambiguous {
				var descr []string
				for _, v := range vors {
					descr = append(descr, v.String())
				}
				t.Fatalf("brute force found a contradiction but detector says unambiguous:\n%s",
					strings.Join(descr, "\n"))
			}
		}
	}
}

func randomVORs(r *rand.Rand, attrs, colors []string) []*profile.VOR {
	n := 1 + r.Intn(3)
	out := make([]*profile.VOR, 0, n)
	for i := 0; i < n; i++ {
		v := &profile.VOR{Name: string(rune('a' + i)), Tag: "car"}
		switch r.Intn(2) {
		case 0:
			v.Form = profile.FormEqConst
			v.Attr = "c"
			v.Const = tpq.StrValue(colors[r.Intn(len(colors))])
		case 1:
			v.Form = profile.FormAttrCmp
			v.Attr = attrs[r.Intn(len(attrs))]
			v.Op = tpq.LT
			if r.Intn(2) == 0 {
				v.Op = tpq.GT
			}
		}
		// Occasional extra local constraints.
		if r.Intn(3) == 0 {
			v.LocalX = append(v.LocalX, profile.AttrConstraint{
				Attr: attrs[r.Intn(len(attrs))], Op: tpq.LT, Val: tpq.NumValue(float64(1 + r.Intn(3)))})
		}
		if r.Intn(3) == 0 {
			v.LocalY = append(v.LocalY, profile.AttrConstraint{
				Attr: attrs[r.Intn(len(attrs))], Op: tpq.GT, Val: tpq.NumValue(float64(r.Intn(3)))})
		}
		out = append(out, v)
	}
	return out
}

// bruteForceWitness searches tiny two-element databases for a pair where
// one rule prefers e to f and another prefers f to e.
func bruteForceWitness(vors []*profile.VOR, attrs, colors []string) bool {
	// Enumerate attribute assignments over a tiny grid.
	type elem map[string]string
	var elems []elem
	numVals := []string{"0", "1", "2", "3"}
	for _, a := range numVals {
		for _, b := range numVals {
			for _, c := range colors {
				elems = append(elems, elem{"a": a, "b": b, "c": c})
			}
		}
	}
	lk := func(e elem) func(string) (string, bool) {
		return func(attr string) (string, bool) { v, ok := e[attr]; return v, ok }
	}
	keysFor := func(e elem) []profile.Key {
		ks := make([]profile.Key, len(vors))
		for i, v := range vors {
			ks[i] = v.KeyFor("car", lk(e))
		}
		return ks
	}
	for i := 0; i < len(elems); i++ {
		ki := keysFor(elems[i])
		for j := i + 1; j < len(elems); j++ {
			kj := keysFor(elems[j])
			fwd, back := false, false
			for vi, v := range vors {
				switch v.Compare(&ki[vi], &kj[vi]) {
				case 1:
					fwd = true
				case -1:
					back = true
				}
			}
			if fwd && back {
				return true
			}
		}
	}
	return false
}
