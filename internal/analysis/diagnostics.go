// Diagnostic model for the profile/query static-analysis suite.
//
// Section 5's analyses gate execution: an ambiguous ordering-rule set or
// a cyclic conflict graph makes Search fail. The vet suite turns the
// same machinery (plus new checks) into structured diagnostics — a
// stable rule ID, a severity, the affected rules, and a concrete
// witness (the conflict cycle's rule sequence, the alternating cycle's
// variable walk of Lemma 5.1, or the contradictory predicate pair) — so
// tooling can explain *why* a profile is broken instead of just
// refusing it.
//
// Determinism contract: Vet output is byte-stable across runs. Cycle
// witnesses are canonicalized to their lexicographically smallest
// rotation and the diagnostic list is sorted by (severity, ID, first
// affected rule index, message); repeated analysis of the same inputs
// yields deeply equal results.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Severity grades a diagnostic. Error means engine.Search rejects the
// (profile, query) pair; Warn flags rules that are dead, redundant or
// surprising but do not block execution; Info is advisory.
type Severity uint8

const (
	SevError Severity = iota
	SevWarn
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	}
	return "info"
}

// MarshalJSON emits the severity as its string name, so wire payloads
// read "error"/"warn"/"info" rather than opaque numbers.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string names MarshalJSON produces, so
// clients can round-trip /lint payloads through this package's types.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = SevError
	case `"warn"`:
		*s = SevWarn
	case `"info"`:
		*s = SevInfo
	default:
		return fmt.Errorf("analysis: unknown severity %s", b)
	}
	return nil
}

// Diagnostic check IDs. The set is compile-time enumerable (metrics
// label values come from it) and stable across releases: IDs are never
// renumbered, only appended.
const (
	// DiagDuplicateName: two rules share one identifier. ParseProfile
	// rejects this at load time; the ID appears in its error message.
	DiagDuplicateName = "P001"
	// DiagDuplicateRule: two rules of the same kind have identical
	// bodies under different names (the later one double-applies).
	DiagDuplicateRule = "P002"
	// DiagSRConflictCycle: the SR conflict graph is cyclic for the
	// analyzed query and no priorities resolve it (Section 5.1).
	DiagSRConflictCycle = "SR001"
	// DiagSRUnsatCond: an SR condition carries an unsatisfiable
	// constraint conjunction — no document node can trigger it.
	DiagSRUnsatCond = "SR002"
	// DiagSRDeadAction: an SR's action cannot be carried out even on
	// its own trigger query (e.g. a conclusion names an unbound
	// variable).
	DiagSRDeadAction = "SR003"
	// DiagSRShadowed: an SR is pre-empted on its own trigger query —
	// the rules applied before it (by priority or topological order)
	// disable it.
	DiagSRShadowed = "SR004"
	// DiagUnsatRewrite: SR rewriting produced a flock member with an
	// unsatisfiable constraint conjunction (e.g. price < 100 ∧
	// price > 200).
	DiagUnsatRewrite = "SR005"
	// DiagSRProbeCycle: a conflict cycle is reachable from some rule's
	// own trigger query (profile-only heuristic; the query-scoped
	// SR001 is authoritative).
	DiagSRProbeCycle = "SR006"
	// DiagVORAmbiguous: the VOR set is ambiguous after priority
	// resolution (Lemma 5.1) — Search rejects the profile.
	DiagVORAmbiguous = "VOR001"
	// DiagVORAmbiguousResolved: the unprioritized VOR set has an
	// alternating cycle, but the assigned priorities break it.
	DiagVORAmbiguousResolved = "VOR002"
	// DiagVORRedundant: a VOR is subsumed by another rule with the
	// same ordering core and weaker local conditions.
	DiagVORRedundant = "VOR003"
	// DiagVORDead: a VOR side's local constraint closure is
	// unsatisfiable — the rule can never order any pair.
	DiagVORDead = "VOR004"
	// DiagVORNoMatch: no query in the flock can produce answers with
	// the VOR's tag.
	DiagVORNoMatch = "VOR005"
	// DiagKORNoMatch: no query in the flock can produce answers with
	// the KOR's tag, so its keywords can never contribute.
	DiagKORNoMatch = "KOR001"
	// DiagKORDupPhrase: a KOR lists the same phrase twice, double
	// counting its score contribution.
	DiagKORDupPhrase = "KOR002"
)

// DiagnosticIDs returns every check ID the suite can emit, in stable
// order. Metrics layers preregister one counter per ID from this list,
// which is what keeps the per-diagnostic-class label set compile-time
// enumerable.
func DiagnosticIDs() []string {
	return []string{
		DiagDuplicateName, DiagDuplicateRule,
		DiagSRConflictCycle, DiagSRUnsatCond, DiagSRDeadAction,
		DiagSRShadowed, DiagUnsatRewrite, DiagSRProbeCycle,
		DiagVORAmbiguous, DiagVORAmbiguousResolved, DiagVORRedundant,
		DiagVORDead, DiagVORNoMatch,
		DiagKORNoMatch, DiagKORDupPhrase,
	}
}

// RuleRef points at one affected rule: its kind ("sr", "vor", "kor"),
// its index in the profile's declaration order for that kind, and its
// name.
type RuleRef struct {
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	Name  string `json:"name"`
}

func (r RuleRef) String() string { return fmt.Sprintf("%s[%d] %s", r.Kind, r.Index, r.Name) }

// Witness kinds.
const (
	// WitnessConflictCycle: Path is the cycle's rule-name sequence
	// (canonical rotation).
	WitnessConflictCycle = "conflict-cycle"
	// WitnessAlternatingCycle: Path is the Lemma 5.1 variable walk
	// x1 ≺ y1 = x2 ≺ y2 = … (canonical rotation; closing back to the
	// first variable).
	WitnessAlternatingCycle = "alternating-cycle"
	// WitnessContradiction: Path is the contradictory predicate pair.
	WitnessContradiction = "contradiction"
	// WitnessShadowedBy: Path is the rule names applied before the
	// shadowed rule's failed turn.
	WitnessShadowedBy = "shadowed-by"
	// WitnessSubsumedBy: Path is the subsuming rule's name.
	WitnessSubsumedBy = "subsumed-by"
	// WitnessTagMismatch: Path is the rule's tag followed by the
	// answer tags the flock can actually produce.
	WitnessTagMismatch = "tag-mismatch"
)

// Witness is the concrete evidence behind a diagnostic.
type Witness struct {
	Kind string   `json:"kind"`
	Path []string `json:"path"`
}

func (w *Witness) String() string {
	if w == nil {
		return ""
	}
	sep := " "
	switch w.Kind {
	case WitnessConflictCycle:
		sep = " -> "
	case WitnessAlternatingCycle:
		sep = " ~ "
	case WitnessContradiction:
		sep = " ∧ "
	case WitnessShadowedBy, WitnessSubsumedBy, WitnessTagMismatch:
		sep = ", "
	}
	return w.Kind + ": " + strings.Join(w.Path, sep)
}

// Diagnostic is one finding of the vet suite.
type Diagnostic struct {
	ID       string    `json:"id"`
	Severity Severity  `json:"severity"`
	Message  string    `json:"message"`
	Rules    []RuleRef `json:"rules,omitempty"`
	Witness  *Witness  `json:"witness,omitempty"`
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s: %s", strings.ToUpper(d.Severity.String()), d.ID, d.Message)
	if d.Witness != nil {
		fmt.Fprintf(&sb, " (%s)", d.Witness)
	}
	return sb.String()
}

// firstRuleIndex is the sort tiebreaker: the smallest affected rule
// index, or a large sentinel for profile-level findings.
func (d Diagnostic) firstRuleIndex() int {
	idx := int(^uint(0) >> 1)
	for _, r := range d.Rules {
		if r.Index < idx {
			idx = r.Index
		}
	}
	return idx
}

// SortDiagnostics orders diagnostics canonically: severity (errors
// first), then check ID, then first affected rule index, then message.
// Vet applies it before returning; callers merging lists from several
// passes re-apply it to restore the contract.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		ai, bi := a.firstRuleIndex(), b.firstRuleIndex()
		if ai != bi {
			return ai < bi
		}
		return a.Message < b.Message
	})
}

// ErrorCount returns how many diagnostics are error-severity.
func ErrorCount(ds []Diagnostic) int {
	n := 0
	for _, d := range ds {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

// canonicalRotation rotates a cycle to its lexicographically smallest
// rotation, making witnesses byte-stable regardless of where DFS
// happened to enter the cycle. stride groups elements that rotate
// together (2 for alternating-cycle variable walks whose elements come
// in x/y pairs, 1 for plain rule cycles). The slice is rotated in
// place-free fashion: a new slice is returned.
func canonicalRotation(cycle []string, stride int) []string {
	if stride < 1 {
		stride = 1
	}
	n := len(cycle)
	if n == 0 || n%stride != 0 {
		return cycle
	}
	groups := n / stride
	best := 0
	for g := 1; g < groups; g++ {
		if rotationLess(cycle, g*stride, best*stride) {
			best = g
		}
	}
	if best == 0 {
		return append([]string(nil), cycle...)
	}
	out := make([]string, 0, n)
	out = append(out, cycle[best*stride:]...)
	out = append(out, cycle[:best*stride]...)
	return out
}

// rotationLess compares the rotations of cycle starting at offsets a
// and b lexicographically.
func rotationLess(cycle []string, a, b int) bool {
	n := len(cycle)
	for i := 0; i < n; i++ {
		va, vb := cycle[(a+i)%n], cycle[(b+i)%n]
		if va != vb {
			return va < vb
		}
	}
	return false
}
