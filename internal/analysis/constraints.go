// Package analysis implements the static analyses of Section 5: the
// scoping-rule conflict graph with topological application order and
// query-flock construction (5.1), and value-based-OR ambiguity detection
// via alternating cycles in the constraint graph — Lemma 5.1 — with
// priority-based resolution (5.2).
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/profile"
	"repro/internal/tpq"
)

// Constraint is a unary constraint on one attribute of one rule variable,
// in the closure language of Section 5.2: plain comparisons against
// constants plus the two derived forms a preference relation induces
// ("there is a value preferred to Ref" / "dominated by Ref").
type Constraint struct {
	Attr string
	Kind ConstraintKind

	// KindCmp:
	Op  tpq.RelOp
	Val tpq.Value

	// KindPrefAbove / KindPrefBelow:
	Order *profile.PartialOrder
	Ref   string
}

// ConstraintKind discriminates constraint shapes.
type ConstraintKind uint8

const (
	// KindCmp is attr Op Val.
	KindCmp ConstraintKind = iota
	// KindPrefAbove requires the value to be strictly preferred to Ref in
	// Order (derived from prefRel(x.a, y.a) with y.a = Ref).
	KindPrefAbove
	// KindPrefBelow requires Ref to be strictly preferred to the value.
	KindPrefBelow
)

func (c Constraint) String() string {
	switch c.Kind {
	case KindCmp:
		return fmt.Sprintf(".%s %s %s", c.Attr, c.Op, c.Val)
	case KindPrefAbove:
		return fmt.Sprintf(".%s >_%s %q", c.Attr, c.Order.Name(), c.Ref)
	case KindPrefBelow:
		return fmt.Sprintf(".%s <_%s %q", c.Attr, c.Order.Name(), c.Ref)
	}
	return "?"
}

// satisfies reports whether the candidate value meets the constraint.
// Numeric comparisons require a numeric candidate; string equality works
// on raw strings; cross-domain comparisons fail.
func (c Constraint) satisfies(v tpq.Value) bool {
	switch c.Kind {
	case KindCmp:
		if c.Val.IsNum != v.IsNum {
			// A numeric bound can only be met by a numeric value and vice
			// versa, except NE which is trivially true across domains.
			return c.Op == tpq.NE
		}
		var cmp int
		if v.IsNum {
			switch {
			case v.Num < c.Val.Num:
				cmp = -1
			case v.Num > c.Val.Num:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(v.Str, c.Val.Str)
		}
		return c.Op.Eval(cmp)
	case KindPrefAbove:
		return !v.IsNum && c.Order.Prefers(v.Str, c.Ref)
	case KindPrefBelow:
		return !v.IsNum && c.Order.Prefers(c.Ref, v.Str)
	}
	return false
}

// ConsistentConstraints decides satisfiability of a conjunction of unary
// constraints (grouped by attribute) by small-model enumeration: every
// constraint compares against a constant or a finite partial order, so if
// a satisfying value exists, one exists among the mentioned constants,
// their midpoints/offsets, the orders' members, and a fresh string.
func ConsistentConstraints(cs []Constraint) bool {
	byAttr := map[string][]Constraint{}
	for _, c := range cs {
		byAttr[c.Attr] = append(byAttr[c.Attr], c)
	}
	for _, group := range byAttr {
		if !attrSatisfiable(group) {
			return false
		}
	}
	return true
}

func attrSatisfiable(cs []Constraint) bool {
	cands := candidates(cs)
	for _, v := range cands {
		ok := true
		for _, c := range cs {
			if !c.satisfies(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// candidates enumerates the finite witness set for one attribute.
func candidates(cs []Constraint) []tpq.Value {
	var out []tpq.Value
	var nums []float64
	strSet := map[string]bool{}
	for _, c := range cs {
		switch c.Kind {
		case KindCmp:
			if c.Val.IsNum {
				nums = append(nums, c.Val.Num)
			} else {
				strSet[c.Val.Str] = true
			}
		case KindPrefAbove, KindPrefBelow:
			strSet[c.Ref] = true
			for _, v := range c.Order.Values() {
				strSet[v] = true
			}
		}
	}
	for _, n := range nums {
		out = append(out,
			tpq.NumValue(n-0.5), tpq.NumValue(n), tpq.NumValue(n+0.5))
	}
	// Midpoints between distinct mentioned numbers.
	for i := range nums {
		for j := i + 1; j < len(nums); j++ {
			out = append(out, tpq.NumValue((nums[i]+nums[j])/2))
		}
	}
	if len(nums) == 0 {
		out = append(out, tpq.NumValue(0)) // free numeric witness
	}
	for s := range strSet {
		out = append(out, tpq.StrValue(s))
	}
	out = append(out, tpq.StrValue("\x00fresh")) // NE-escape witness
	return out
}

// LocalClosure computes local*(side) for a VOR: the declared and
// form-induced local constraints of that side, plus constraints derived
// through the rule's comp atoms from the other side's locals — the
// closure step of Section 5.2 (e.g. from y.hp = 200 & x.hp < y.hp infer
// x.hp < 200). preferred selects the x side (true) or the y side.
func LocalClosure(v *profile.VOR, preferred bool) []Constraint {
	var out []Constraint
	for _, ac := range v.LocalAtoms(preferred) {
		out = append(out, Constraint{Attr: ac.Attr, Kind: KindCmp, Op: ac.Op, Val: ac.Val})
	}
	other := v.LocalAtoms(!preferred)
	otherByAttr := map[string][]profile.AttrConstraint{}
	for _, ac := range other {
		otherByAttr[ac.Attr] = append(otherByAttr[ac.Attr], ac)
	}
	for _, comp := range v.CompAtoms() {
		for _, oc := range otherByAttr[comp.Attr] {
			if d, ok := deriveThroughComp(comp, oc, preferred); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// deriveThroughComp derives a constraint on this side's comp.Attr from a
// constraint oc on the other side, through the comp atom. forPreferred
// says which side we are deriving for (x when true).
func deriveThroughComp(comp profile.CompAtom, oc profile.AttrConstraint, forPreferred bool) (Constraint, bool) {
	mk := func(op tpq.RelOp) (Constraint, bool) {
		return Constraint{Attr: comp.Attr, Kind: KindCmp, Op: op, Val: oc.Val}, true
	}
	if comp.Order != nil {
		// prefRel(x.a, y.a): only an equality on the other side pins a
		// reference value.
		if oc.Op == tpq.EQ && !oc.Val.IsNum {
			kind := KindPrefAbove // x's value preferred to y's
			if !forPreferred {
				kind = KindPrefBelow
			}
			return Constraint{Attr: comp.Attr, Kind: kind, Order: comp.Order, Ref: oc.Val.Str}, true
		}
		return Constraint{}, false
	}
	switch comp.Op {
	case tpq.EQ:
		// x.a = y.a: constraints transfer verbatim.
		return mk(oc.Op)
	case tpq.LT, tpq.GT:
		// Orient the comparison as thisSide relOp otherSide.
		rel := comp.Op // stated as x.a Op y.a
		if !forPreferred {
			if rel == tpq.LT {
				rel = tpq.GT
			} else {
				rel = tpq.LT
			}
		}
		// thisSide rel otherSide and otherSide oc.Op oc.Val.
		if rel == tpq.LT {
			// this < other. other = v -> this < v; other < v / <= v -> this < v.
			switch oc.Op {
			case tpq.EQ, tpq.LT, tpq.LE:
				return mk(tpq.LT)
			}
		} else {
			switch oc.Op {
			case tpq.EQ, tpq.GT, tpq.GE:
				return mk(tpq.GT)
			}
		}
	}
	return Constraint{}, false
}

// Compatible implements Section 5.2's variable compatibility: two
// variables from different rules can denote the same element iff their
// rules test the same tag and local*(a) & local*(b) is consistent (the
// x2 = y1 identification merges the attribute namespaces).
func Compatible(va *profile.VOR, aPreferred bool, vb *profile.VOR, bPreferred bool) bool {
	if va.Tag != vb.Tag {
		return false
	}
	cs := append(LocalClosure(va, aPreferred), LocalClosure(vb, bPreferred)...)
	return ConsistentConstraints(cs)
}
