package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tpq"
)

// TestQuickSolverAgreesWithBruteForce: on random numeric constraint
// conjunctions over one attribute, the small-model solver must agree
// with brute-force search over a fine grid (the constraints' constants
// come from the same grid, so the grid decision is exact).
func TestQuickSolverAgreesWithBruteForce(t *testing.T) {
	ops := []tpq.RelOp{tpq.EQ, tpq.NE, tpq.LT, tpq.LE, tpq.GT, tpq.GE}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		cs := make([]Constraint, n)
		for i := range cs {
			cs[i] = Constraint{
				Attr: "a",
				Kind: KindCmp,
				Op:   ops[r.Intn(len(ops))],
				Val:  tpq.NumValue(float64(r.Intn(8))),
			}
		}
		got := ConsistentConstraints(cs)

		// Brute force over a fine grid (half-steps cover strict gaps).
		brute := false
		for x := -1.0; x <= 8.5 && !brute; x += 0.5 {
			ok := true
			for _, c := range cs {
				cmp := 0
				switch {
				case x < c.Val.Num:
					cmp = -1
				case x > c.Val.Num:
					cmp = 1
				}
				if !c.Op.Eval(cmp) {
					ok = false
					break
				}
			}
			brute = ok
		}
		return got == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolverMonotone: adding a constraint can only shrink the
// satisfiable set (consistent conjunction stays consistent when a
// conjunct is removed).
func TestQuickSolverMonotone(t *testing.T) {
	ops := []tpq.RelOp{tpq.EQ, tpq.NE, tpq.LT, tpq.LE, tpq.GT, tpq.GE}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		cs := make([]Constraint, n)
		for i := range cs {
			cs[i] = Constraint{
				Attr: "a", Kind: KindCmp,
				Op:  ops[r.Intn(len(ops))],
				Val: tpq.NumValue(float64(r.Intn(6))),
			}
		}
		if ConsistentConstraints(cs) {
			// Every subset must also be consistent.
			for drop := 0; drop < n; drop++ {
				sub := append(append([]Constraint(nil), cs[:drop]...), cs[drop+1:]...)
				if !ConsistentConstraints(sub) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
