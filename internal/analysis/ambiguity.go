package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/profile"
)

// AmbiguityReport is the outcome of the Section 5.2 analysis.
type AmbiguityReport struct {
	// Ambiguous is true when the constraint graph has an alternating
	// cycle (Lemma 5.1).
	Ambiguous bool
	// Cycle is a witness when ambiguous: the sequence of rule variables
	// along one alternating cycle, e.g. ["w1.x", "w1.y", "w2.u", "w2.v"].
	Cycle []string
	// Suggestion describes how to break the cycle with priorities.
	Suggestion string
}

// varRef identifies one side of one rule in the constraint graph.
type varRef struct {
	rule int // index into the VOR slice
	pref bool
}

func (v varRef) String(vors []*profile.VOR) string {
	side := "y"
	if v.pref {
		side = "x"
	}
	return vors[v.rule].Name + "." + side
}

// DetectAmbiguity implements Lemma 5.1: build the constraint graph G(O_v)
// whose nodes are the rules' variables, with a directed ≺-arc from each
// rule's preferred variable to its dominated one and an undirected
// =-edge between every compatible pair of variables from different
// rules; O_v is ambiguous iff G contains an alternating cycle
// (≺,=,≺,=,...). Detection runs DFS on the composed relation ≺∘=, which
// has a cycle exactly when an alternating cycle exists — the paper's
// O(#edges) "straightforward adaptation of depth-first search".
func DetectAmbiguity(vors []*profile.VOR) AmbiguityReport {
	return detect(vors, nil)
}

// DetectAmbiguityPrioritized re-runs the analysis under user priorities
// (Section 5.2's resolution): only alternating cycles whose rules all
// share the same priority remain ambiguous, since distinct priorities
// impose a fixed application order that breaks the cycle. Unprioritized
// rules (priority 0) form one group.
func DetectAmbiguityPrioritized(vors []*profile.VOR) AmbiguityReport {
	groups := map[int][]*profile.VOR{}
	for _, v := range vors {
		groups[v.Priority] = append(groups[v.Priority], v)
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if rep := DetectAmbiguity(groups[k]); rep.Ambiguous {
			return rep
		}
	}
	return AmbiguityReport{}
}

func detect(vors []*profile.VOR, _ any) AmbiguityReport {
	n := len(vors)
	if n == 0 {
		return AmbiguityReport{}
	}
	// Composed graph H over rules: arc i -> j iff y_i (rule i's dominated
	// variable) is compatible with x_j (rule j's preferred variable) for
	// some orientation. More precisely, alternating steps are
	// x_i ≺ y_i = v where v is any variable of another rule; continuing
	// the alternation requires v to be that rule's preferred variable
	// x_j (the next ≺-arc starts at x_j). An =-edge landing on y_j
	// cannot continue an alternating cycle, so composing ≺ with = onto
	// preferred variables is exhaustive.
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Compatible(vors[i], false, vors[j], true) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	// DFS cycle detection with path recovery.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycleStart, cycleEnd = -1, -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, w := range adj[u] {
			if color[w] == gray {
				cycleStart, cycleEnd = w, u
				return true
			}
			if color[w] == white {
				parent[w] = u
				if dfs(w) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := 0; i < n && cycleStart == -1; i++ {
		if color[i] == white {
			dfs(i)
		}
	}
	if cycleStart == -1 {
		return AmbiguityReport{}
	}
	// Recover the rule cycle and expand to the alternating variable walk.
	var rules []int
	for u := cycleEnd; u != cycleStart; u = parent[u] {
		rules = append(rules, u)
	}
	rules = append(rules, cycleStart)
	// reverse into forward order
	for l, r := 0, len(rules)-1; l < r; l, r = l+1, r-1 {
		rules[l], rules[r] = rules[r], rules[l]
	}
	var walk []string
	for _, ri := range rules {
		walk = append(walk,
			varRef{ri, true}.String(vors),
			varRef{ri, false}.String(vors))
	}
	// Canonicalize to the lexicographically smallest rotation (stride 2:
	// x/y pairs rotate together) so the witness is byte-stable no matter
	// where DFS entered the cycle.
	walk = canonicalRotation(walk, 2)
	names := make([]string, 0, len(rules))
	for i := 0; i < len(walk); i += 2 {
		v := walk[i]
		names = append(names, v[:strings.LastIndexByte(v, '.')])
	}
	return AmbiguityReport{
		Ambiguous: true,
		Cycle:     walk,
		Suggestion: fmt.Sprintf(
			"assign distinct priorities to rules %v to break the alternating cycle",
			names),
	}
}
