package analysis

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/profile"
	"repro/internal/tpq"
)

func mustVet(t *testing.T, src, query string) []Diagnostic {
	t.Helper()
	p := profile.MustParseProfile(src)
	var q *tpq.Query
	if query != "" {
		q = tpq.MustParse(query)
	}
	return Vet(p, q)
}

func findDiag(ds []Diagnostic, id string) *Diagnostic {
	for i := range ds {
		if ds[i].ID == id {
			return &ds[i]
		}
	}
	return nil
}

func TestVetCleanProfile(t *testing.T) {
	ds := mustVet(t, `
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
rank K,V,S`, paperQ)
	if n := ErrorCount(ds); n != 0 {
		t.Fatalf("clean profile got %d errors: %v", n, ds)
	}
}

func TestVetAmbiguityError(t *testing.T) {
	ds := mustVet(t, `
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`, "")
	d := findDiag(ds, DiagVORAmbiguous)
	if d == nil {
		t.Fatalf("expected VOR001, got %v", ds)
	}
	if d.Severity != SevError {
		t.Errorf("VOR001 must be error severity, got %s", d.Severity)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessAlternatingCycle {
		t.Fatalf("missing alternating-cycle witness: %+v", d)
	}
	// Canonical rotation: the walk must start at the lexicographically
	// smallest x/y pair.
	want := []string{"w1.x", "w1.y", "w2.x", "w2.y"}
	if !reflect.DeepEqual(d.Witness.Path, want) {
		t.Errorf("walk = %v, want canonical %v", d.Witness.Path, want)
	}
	if len(d.Rules) != 2 || d.Rules[0].Name != "w1" || d.Rules[1].Name != "w2" {
		t.Errorf("rule refs = %v", d.Rules)
	}
}

func TestVetAmbiguityResolvedInfo(t *testing.T) {
	ds := mustVet(t, `
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`, "")
	if findDiag(ds, DiagVORAmbiguous) != nil {
		t.Fatalf("priorities must resolve ambiguity: %v", ds)
	}
	d := findDiag(ds, DiagVORAmbiguousResolved)
	if d == nil {
		t.Fatalf("expected VOR002 advisory, got %v", ds)
	}
	if d.Severity != SevInfo {
		t.Errorf("VOR002 must be info, got %s", d.Severity)
	}
}

// cyclicSRs is a pair of rules that each remove what the other needs:
// applicable together, they form a conflict cycle.
const cyclicSRs = `
sr a: if pc(car, description) & ftcontains(description, "alpha") & ftcontains(description, "beta") then remove ftcontains(description, "beta")
sr b: if pc(car, description) & ftcontains(description, "alpha") & ftcontains(description, "beta") then remove ftcontains(description, "alpha")
`

func TestVetConflictCycle(t *testing.T) {
	q := `//car[./description[. ftcontains "alpha" and . ftcontains "beta"]]`
	ds := mustVet(t, cyclicSRs, q)
	d := findDiag(ds, DiagSRConflictCycle)
	if d == nil {
		t.Fatalf("expected SR001, got %v", ds)
	}
	if d.Severity != SevError {
		t.Errorf("SR001 must be error, got %s", d.Severity)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessConflictCycle {
		t.Fatalf("missing conflict-cycle witness: %+v", d)
	}
	// Canonical rotation starts at the smallest rule name.
	if len(d.Witness.Path) == 0 || d.Witness.Path[0] != "a" {
		t.Errorf("cycle not canonical: %v", d.Witness.Path)
	}
}

func TestVetProbeCycle(t *testing.T) {
	// Profile-only vet: the cycle is reachable from each rule's own
	// trigger, so SR006 fires without a query.
	ds := mustVet(t, cyclicSRs, "")
	d := findDiag(ds, DiagSRProbeCycle)
	if d == nil {
		t.Fatalf("expected SR006, got %v", ds)
	}
	if d.Severity != SevWarn {
		t.Errorf("SR006 must be warn (query-scoped SR001 is the error), got %s", d.Severity)
	}
	if findDiag(ds, DiagSRConflictCycle) != nil {
		t.Error("SR001 is query-scoped; VetProfile must not emit it")
	}
}

func TestVetUnsatCondition(t *testing.T) {
	ds := mustVet(t, `
sr u: if pc(car, description) & car.price < 100 & car.price > 200 then add ftcontains(description, "z")`, "")
	d := findDiag(ds, DiagSRUnsatCond)
	if d == nil {
		t.Fatalf("expected SR002, got %v", ds)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessContradiction || len(d.Witness.Path) != 2 {
		t.Fatalf("want a contradictory pair witness, got %+v", d.Witness)
	}
}

func TestVetDeadAction(t *testing.T) {
	// The conclusion names a variable the condition never binds, so the
	// add cannot be carried out on any query.
	ds := mustVet(t, `
sr d: if pc(car, description) then add ftcontains(engine, "turbo")`, "")
	if findDiag(ds, DiagSRDeadAction) == nil {
		t.Fatalf("expected SR003, got %v", ds)
	}
}

func TestVetShadowedSR(t *testing.T) {
	// a (priority 1) removes the predicate b (priority 2) needs: on b's
	// own trigger, a fires first and disables b.
	ds := mustVet(t, `
sr a priority 1: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "good condition")
sr b priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")`, "")
	d := findDiag(ds, DiagSRShadowed)
	if d == nil {
		t.Fatalf("expected SR004, got %v", ds)
	}
	if d.Rules[0].Name != "b" {
		t.Errorf("shadowed rule should be b: %v", d.Rules)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessShadowedBy ||
		len(d.Witness.Path) != 1 || d.Witness.Path[0] != "a" {
		t.Errorf("witness should name a: %+v", d.Witness)
	}
}

func TestVetUnsatRewrite(t *testing.T) {
	// Two scoping rules jointly add price > 5000 and price < 100 to the
	// car node: the rewritten flock member can never match anything.
	ds := mustVet(t, `
sr s1 priority 1: if pc(car, description) then add car.price > 5000
sr s2 priority 2: if pc(car, description) then add car.price < 100`,
		`//car[./description]`)
	d := findDiag(ds, DiagUnsatRewrite)
	if d == nil {
		t.Fatalf("expected SR005, got %v", ds)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessContradiction {
		t.Fatalf("want contradiction witness, got %+v", d.Witness)
	}
}

func TestVetVORDead(t *testing.T) {
	ds := mustVet(t, `
vor d: x.tag = car & y.tag = car & x.hp < 100 & x.hp > 200 & x.mileage < y.mileage => x < y`, "")
	d := findDiag(ds, DiagVORDead)
	if d == nil {
		t.Fatalf("expected VOR004, got %v", ds)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessContradiction {
		t.Fatalf("want contradiction witness, got %+v", d.Witness)
	}
}

func TestVetVORRedundant(t *testing.T) {
	ds := mustVet(t, `
vor a: x.tag = car & y.tag = car & x.fuel = "diesel" & x.mileage < y.mileage => x < y
vor b: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`, "")
	d := findDiag(ds, DiagVORRedundant)
	if d == nil {
		t.Fatalf("expected VOR003, got %v", ds)
	}
	if d.Rules[0].Name != "a" {
		t.Errorf("the more constrained rule a is the subsumed one: %v", d.Rules)
	}
	if d.Witness == nil || d.Witness.Kind != WitnessSubsumedBy || d.Witness.Path[0] != "b" {
		t.Errorf("witness should name b: %+v", d.Witness)
	}
}

func TestVetVORRedundantIdenticalOnce(t *testing.T) {
	// Exact duplicates under different names: P002 fires, and VOR003
	// reports only the later declaration (not both directions).
	ds := mustVet(t, `
vor a: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
vor b: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`, "")
	if findDiag(ds, DiagDuplicateRule) == nil {
		t.Fatalf("expected P002, got %v", ds)
	}
	n := 0
	for _, d := range ds {
		if d.ID == DiagVORRedundant {
			n++
			if d.Rules[0].Name != "b" {
				t.Errorf("only the later duplicate is redundant: %v", d.Rules)
			}
		}
	}
	if n != 1 {
		t.Errorf("identical pair must yield exactly one VOR003, got %d", n)
	}
}

func TestVetTagMismatch(t *testing.T) {
	ds := mustVet(t, `
vor v: x.tag = boat & y.tag = boat & x.length > y.length => x < y
kor k: x.tag = boat & y.tag = boat & ftcontains(x, "sloop") => x < y`,
		`//car[./description]`)
	if findDiag(ds, DiagVORNoMatch) == nil {
		t.Errorf("expected VOR005, got %v", ds)
	}
	if findDiag(ds, DiagKORNoMatch) == nil {
		t.Errorf("expected KOR001, got %v", ds)
	}
	// A wildcard query reaches every tag: no mismatch.
	ds = mustVet(t, `
vor v: x.tag = boat & y.tag = boat & x.length > y.length => x < y`, `//*[. ftcontains "x"]`)
	if findDiag(ds, DiagVORNoMatch) != nil {
		t.Errorf("wildcard answers match every tag: %v", ds)
	}
}

func TestVetKORDupPhrase(t *testing.T) {
	ds := mustVet(t, `
kor k: x.tag = car & y.tag = car & ftcontains(x, "best bid") & ftcontains(x, "best bid") => x < y`, "")
	if findDiag(ds, DiagKORDupPhrase) == nil {
		t.Fatalf("expected KOR002, got %v", ds)
	}
}

func TestVetDuplicateSRBody(t *testing.T) {
	ds := mustVet(t, `
sr a: if pc(car, description) then add ftcontains(description, "x")
sr b: if pc(car, description) then add ftcontains(description, "x")`, "")
	d := findDiag(ds, DiagDuplicateRule)
	if d == nil {
		t.Fatalf("expected P002, got %v", ds)
	}
	if len(d.Rules) != 2 || d.Rules[0].Name != "b" || d.Rules[1].Name != "a" {
		t.Errorf("P002 should point at the duplicate and its original: %v", d.Rules)
	}
}

// TestVetDeterministic is the repeated-run equality gate: the same
// inputs must produce deeply equal diagnostics and byte-identical JSON.
func TestVetDeterministic(t *testing.T) {
	src := cyclicSRs + `
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
vor d: x.tag = truck & y.tag = truck & x.hp < 100 & x.hp > 200 & x.mileage < y.mileage => x < y
kor k: x.tag = car & y.tag = car & ftcontains(x, "bid") & ftcontains(x, "bid") => x < y`
	q := `//car[./description[. ftcontains "alpha" and . ftcontains "beta"]]`
	first := mustVet(t, src, q)
	if len(first) == 0 {
		t.Fatal("expected a rich diagnostics list")
	}
	b0, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ds := mustVet(t, src, q)
		if !reflect.DeepEqual(ds, first) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, ds, first)
		}
		b, _ := json.Marshal(ds)
		if string(b) != string(b0) {
			t.Fatalf("run %d JSON differs", i)
		}
	}
	// Sorted invariant: severity, then ID, then first rule index.
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Severity > b.Severity {
			t.Fatalf("not sorted by severity at %d: %v then %v", i, a, b)
		}
		if a.Severity == b.Severity && a.ID > b.ID {
			t.Fatalf("not sorted by ID at %d: %v then %v", i, a, b)
		}
	}
}

func TestCanonicalRotation(t *testing.T) {
	cases := []struct {
		in     []string
		stride int
		want   []string
	}{
		{[]string{"c", "a", "b"}, 1, []string{"a", "b", "c"}},
		{[]string{"a", "b", "c"}, 1, []string{"a", "b", "c"}},
		{[]string{"b.x", "b.y", "a.x", "a.y"}, 2, []string{"a.x", "a.y", "b.x", "b.y"}},
		// stride 2 must not split a pair, even when a mid-pair rotation
		// would be lexicographically smaller.
		{[]string{"b.x", "a.y", "c.x", "a.x"}, 2, []string{"b.x", "a.y", "c.x", "a.x"}},
		{[]string{"c.x", "a.x", "b.x", "a.y"}, 2, []string{"b.x", "a.y", "c.x", "a.x"}},
		{nil, 1, nil},
	}
	for _, c := range cases {
		got := canonicalRotation(c.in, c.stride)
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("canonicalRotation(%v, %d) = %v, want %v", c.in, c.stride, got, c.want)
		}
	}
}

func TestDiagnosticStringsAndJSON(t *testing.T) {
	d := Diagnostic{
		ID:       DiagSRConflictCycle,
		Severity: SevError,
		Message:  "m",
		Rules:    []RuleRef{{Kind: "sr", Index: 1, Name: "p1"}},
		Witness:  &Witness{Kind: WitnessConflictCycle, Path: []string{"p1", "p3"}},
	}
	if got := d.String(); got != "ERROR SR001: m (conflict-cycle: p1 -> p3)" {
		t.Errorf("String() = %q", got)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"severity":"error"`; !contains(string(b), want) {
		t.Errorf("JSON severity not stringly: %s", b)
	}
	if (&Witness{Kind: WitnessContradiction, Path: []string{"a", "b"}}).String() != "contradiction: a ∧ b" {
		t.Error("contradiction separator")
	}
	var nilW *Witness
	if nilW.String() != "" {
		t.Error("nil witness String")
	}
	if SevWarn.String() != "warn" || SevInfo.String() != "info" {
		t.Error("severity names")
	}
	var round Diagnostic
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if round.Severity != SevError {
		t.Errorf("round-tripped severity = %v", round.Severity)
	}
	var sev Severity
	if err := sev.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("unknown severity must be rejected")
	}
}

func contains(s, sub string) bool { return len(s) >= len(sub) && indexOf(s, sub) >= 0 }

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestDiagnosticIDsStable pins the metrics contract: the ID list is
// sorted-unique and every emitted diagnostic uses a listed ID.
func TestDiagnosticIDsStable(t *testing.T) {
	ids := DiagnosticIDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate ID %s", id)
		}
		seen[id] = true
	}
	src := cyclicSRs + `
sr u: if pc(car, x) & x.p < 1 & x.p > 2 then add ftcontains(x, "z")
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`
	for _, d := range mustVet(t, src, `//car[./description[. ftcontains "alpha" and . ftcontains "beta"]]`) {
		if !seen[d.ID] {
			t.Errorf("diagnostic %s not in DiagnosticIDs()", d.ID)
		}
	}
}

// FuzzVetProfile: any profile the parser accepts must vet without
// panicking, deterministically, with the sorted-output invariant.
func FuzzVetProfile(f *testing.F) {
	seeds := []string{
		`sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")`,
		`sr p2: if pc(a,b) then add pc(b,c) & c > 1`,
		`sr p3: if ad(a,b) then replace ftcontains(b, "x") with ftcontains(b, "y")`,
		`sr r: if pc(a,b) then relax pc(a,b)`,
		`vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y`,
		`vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`,
		"order colors: red > blue > green\nvor w: x.tag = c & y.tag = c & colors(x.a, y.a) => x < y",
		`kor k weight 0.5: x.tag = abs & y.tag = abs & ftcontains(x, "data cube") => x < y`,
		"vor w1: x.tag = car & y.tag = car & x.color = \"red\" & y.color != \"red\" => x < y\nvor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y",
		cyclicSRs,
		`sr u: if pc(car, x) & x.p < 1 & x.p > 2 then add ftcontains(x, "z")`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	q := tpq.MustParse(`//car[./description[. ftcontains "alpha" and . ftcontains "beta"] and price < 100]`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := profile.ParseProfile(src)
		if err != nil {
			return
		}
		ds1 := Vet(p, q)
		ds2 := Vet(p, q)
		if !reflect.DeepEqual(ds1, ds2) {
			t.Fatalf("vet not deterministic:\n%v\nvs\n%v\nsrc: %q", ds1, ds2, src)
		}
		for i, d := range ds1 {
			if d.ID == "" || d.Message == "" {
				t.Fatalf("empty diagnostic %+v", d)
			}
			if i > 0 && ds1[i-1].Severity > d.Severity {
				t.Fatalf("unsorted output: %v", ds1)
			}
		}
	})
}
