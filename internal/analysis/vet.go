// The vet suite: profile and (profile, query) static checks producing
// structured Diagnostics. VetProfile covers query-independent checks,
// VetQuery the query-scoped ones; Vet merges both. Every emitted list
// obeys the determinism contract of SortDiagnostics.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/profile"
	"repro/internal/tpq"
)

// Vet runs the full suite. q may be nil, in which case only the
// profile-scoped checks run (query-scoped conflict analysis then relies
// on the per-rule trigger probes of VetProfile).
func Vet(p *profile.Profile, q *tpq.Query) []Diagnostic {
	ds := VetProfile(p)
	if q != nil {
		ds = append(ds, VetQuery(p, q)...)
	}
	SortDiagnostics(ds)
	return ds
}

// VetProfile runs the query-independent checks: VOR ambiguity (the
// Section 5.2 gate, plus the resolved-by-priorities advisory), dead and
// redundant VORs, KOR phrase hygiene, exact-duplicate rule bodies, and
// the per-SR trigger probes (unsatisfiable conditions, dead actions,
// shadowing, reachable conflict cycles).
func VetProfile(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, vetAmbiguity(p)...)
	ds = append(ds, vetVORDead(p)...)
	ds = append(ds, vetVORRedundant(p)...)
	ds = append(ds, vetKORPhrases(p)...)
	ds = append(ds, vetDuplicateBodies(p)...)
	ds = append(ds, vetSRProbes(p)...)
	SortDiagnostics(ds)
	return ds
}

// VetQuery runs the query-scoped checks for q: the conflict-cycle gate
// of Section 5.1, unsatisfiable constraint conjunctions in the
// rewritten flock, and ordering rules whose tag no flock answer can
// carry. The returned list holds only query-scoped findings; use Vet to
// merge with VetProfile.
func VetQuery(p *profile.Profile, q *tpq.Query) []Diagnostic {
	var ds []Diagnostic
	rep, err := AnalyzeSRs(p.SRs, q)
	if err != nil {
		ds = append(ds, conflictCycleDiagnostic(p, rep))
		SortDiagnostics(ds)
		return ds
	}
	flock, _, ferr := Flock(p.SRs, q)
	if ferr != nil {
		// Unreachable when AnalyzeSRs succeeded, but keep the gate.
		SortDiagnostics(ds)
		return ds
	}
	ds = append(ds, vetFlockSatisfiable(p, q, flock)...)
	ds = append(ds, vetOrderingTags(p, flock)...)
	SortDiagnostics(ds)
	return ds
}

// --- VOR checks ---

// vetAmbiguity maps the Section 5.2 analysis onto diagnostics: an
// alternating cycle that survives priority resolution is an error
// (Search rejects the profile); one that priorities break is an info.
func vetAmbiguity(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	prio := DetectAmbiguityPrioritized(p.VORs)
	if prio.Ambiguous {
		ds = append(ds, Diagnostic{
			ID:       DiagVORAmbiguous,
			Severity: SevError,
			Message: "value-based ordering rules are ambiguous (Lemma 5.1): " +
				prio.Suggestion,
			Rules:   vorRefsFromWalk(p, prio.Cycle),
			Witness: &Witness{Kind: WitnessAlternatingCycle, Path: prio.Cycle},
		})
		return ds
	}
	if raw := DetectAmbiguity(p.VORs); raw.Ambiguous {
		ds = append(ds, Diagnostic{
			ID:       DiagVORAmbiguousResolved,
			Severity: SevInfo,
			Message:  "ordering rules contain an alternating cycle that the assigned priorities break",
			Rules:    vorRefsFromWalk(p, raw.Cycle),
			Witness:  &Witness{Kind: WitnessAlternatingCycle, Path: raw.Cycle},
		})
	}
	return ds
}

// vorRefsFromWalk recovers the rule references behind an alternating
// variable walk ("w1.x", "w1.y", …), ordered by declaration index.
func vorRefsFromWalk(p *profile.Profile, walk []string) []RuleRef {
	names := map[string]bool{}
	for _, v := range walk {
		if i := strings.LastIndexByte(v, '.'); i > 0 {
			names[v[:i]] = true
		}
	}
	var refs []RuleRef
	for i, v := range p.VORs {
		if names[v.Name] {
			refs = append(refs, RuleRef{Kind: "vor", Index: i, Name: v.Name})
		}
	}
	return refs
}

// vetVORDead flags rules whose local constraint closure on either side
// is unsatisfiable: no element can ever play that side, so the rule
// orders nothing.
func vetVORDead(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	for i, v := range p.VORs {
		for _, preferred := range []bool{true, false} {
			cs := LocalClosure(v, preferred)
			if ConsistentConstraints(cs) {
				continue
			}
			side := "y"
			if preferred {
				side = "x"
			}
			ds = append(ds, Diagnostic{
				ID:       DiagVORDead,
				Severity: SevWarn,
				Message: fmt.Sprintf(
					"vor %s can never order any pair: local*(%s) is unsatisfiable",
					v.Name, side),
				Rules:   []RuleRef{{Kind: "vor", Index: i, Name: v.Name}},
				Witness: contradictionWitness(cs),
			})
			break // one side suffices to kill the rule
		}
	}
	return ds
}

// vetVORRedundant flags a rule subsumed by another with the same
// ordering core (tag, form, attribute, constant/operator/order, common
// equalities) and a subset of its local conditions: whenever the more
// constrained rule orders a pair, the weaker one already does, the same
// way.
func vetVORRedundant(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	for i, a := range p.VORs {
		for j, b := range p.VORs {
			if i == j || vorCore(a) != vorCore(b) {
				continue
			}
			if !constraintSubset(b.LocalX, a.LocalX) || !constraintSubset(b.LocalY, a.LocalY) {
				continue
			}
			// a's locals ⊇ b's locals: a is subsumed by b. When the two
			// are identical, report only the later declaration.
			identical := constraintSubset(a.LocalX, b.LocalX) && constraintSubset(a.LocalY, b.LocalY)
			if identical && i < j {
				continue
			}
			ds = append(ds, Diagnostic{
				ID:       DiagVORRedundant,
				Severity: SevWarn,
				Message: fmt.Sprintf(
					"vor %s is subsumed by %s (same ordering core, weaker local conditions)",
					a.Name, b.Name),
				Rules: []RuleRef{
					{Kind: "vor", Index: i, Name: a.Name},
					{Kind: "vor", Index: j, Name: b.Name},
				},
				Witness: &Witness{Kind: WitnessSubsumedBy, Path: []string{b.Name}},
			})
			break
		}
	}
	return ds
}

// vorCore is the ordering-relevant signature shared by subsumption
// candidates: everything except the local side conditions. Priority is
// part of the core — under the prioritized semantics a weaker rule at a
// different priority still changes the ranking.
func vorCore(v *profile.VOR) string {
	common := append([]string(nil), v.CommonEq...)
	sort.Strings(common)
	core := fmt.Sprintf("%s|%d|%s|%d|%s", v.Tag, v.Form, v.Attr, v.Priority, strings.Join(common, ","))
	switch v.Form {
	case profile.FormEqConst:
		core += "|" + v.Const.String()
	case profile.FormAttrCmp:
		core += "|" + v.Op.String()
	case profile.FormPrefRel:
		if v.Order != nil {
			core += "|" + v.Order.Name()
		}
	}
	return core
}

// constraintSubset reports whether every constraint of sub appears in
// super (syntactic comparison on the canonical string form).
func constraintSubset(sub, super []profile.AttrConstraint) bool {
	have := make(map[string]bool, len(super))
	for _, c := range super {
		have[c.String()] = true
	}
	for _, c := range sub {
		if !have[c.String()] {
			return false
		}
	}
	return true
}

// --- KOR checks ---

func vetKORPhrases(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	for i, k := range p.KORs {
		seen := map[string]bool{}
		for _, ph := range k.Phrases {
			if seen[ph] {
				ds = append(ds, Diagnostic{
					ID:       DiagKORDupPhrase,
					Severity: SevWarn,
					Message: fmt.Sprintf(
						"kor %s lists phrase %q twice; its score contribution is double counted",
						k.Name, ph),
					Rules:   []RuleRef{{Kind: "kor", Index: i, Name: k.Name}},
					Witness: &Witness{Kind: WitnessContradiction, Path: []string{ph, ph}},
				})
				break
			}
			seen[ph] = true
		}
	}
	return ds
}

// --- duplicate rule bodies ---

// vetDuplicateBodies flags rules of the same kind whose bodies (priority
// and weight included) are identical under different names. ParseProfile
// already rejects duplicate *names* (P001); this catches the same rule
// smuggled in twice, which double-applies its effect.
func vetDuplicateBodies(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	report := func(kind string, idx int, name, dupOf string, dupIdx int) {
		ds = append(ds, Diagnostic{
			ID:       DiagDuplicateRule,
			Severity: SevWarn,
			Message: fmt.Sprintf(
				"%s %s duplicates %s %s under a different name", kind, name, kind, dupOf),
			Rules: []RuleRef{
				{Kind: kind, Index: idx, Name: name},
				{Kind: kind, Index: dupIdx, Name: dupOf},
			},
			Witness: &Witness{Kind: WitnessSubsumedBy, Path: []string{dupOf}},
		})
	}
	seenSR := map[string]int{}
	for i, sr := range p.SRs {
		body := srBody(sr)
		if j, ok := seenSR[body]; ok {
			report("sr", i, sr.Name, p.SRs[j].Name, j)
			continue
		}
		seenSR[body] = i
	}
	seenVOR := map[string]int{}
	for i, v := range p.VORs {
		body := ruleBody(v.Name, v.String()) + fmt.Sprintf("|prio=%d", v.Priority)
		if j, ok := seenVOR[body]; ok {
			report("vor", i, v.Name, p.VORs[j].Name, j)
			continue
		}
		seenVOR[body] = i
	}
	seenKOR := map[string]int{}
	for i, k := range p.KORs {
		body := ruleBody(k.Name, k.String()) + fmt.Sprintf("|prio=%d|w=%g", k.Priority, k.Weight)
		if j, ok := seenKOR[body]; ok {
			report("kor", i, k.Name, p.KORs[j].Name, j)
			continue
		}
		seenKOR[body] = i
	}
	return ds
}

func srBody(sr *profile.SR) string {
	return ruleBody(sr.Name, sr.String()) + fmt.Sprintf("|prio=%d|w=%g", sr.Priority, sr.Weight)
}

// ruleBody strips the leading "name: " prefix the String forms share.
func ruleBody(name, s string) string {
	return strings.TrimPrefix(s, name+": ")
}

// --- SR probes (profile-scoped) ---

// vetSRProbes analyses each scoping rule against its own trigger query
// (its condition pattern — the most specific query the rule applies
// to): unsatisfiable conditions, actions that cannot be carried out
// even on the trigger, rules pre-empted by the application order, and
// conflict cycles reachable from a trigger.
func vetSRProbes(p *profile.Profile) []Diagnostic {
	var ds []Diagnostic
	cycleSeen := false
	for i, sr := range p.SRs {
		cond, err := sr.CondQuery()
		if err != nil {
			continue // ParseProfile rejects these; defensive only
		}
		if n, pair, unsat := unsatQueryConstraints(cond, false); unsat {
			ds = append(ds, Diagnostic{
				ID:       DiagSRUnsatCond,
				Severity: SevWarn,
				Message: fmt.Sprintf(
					"sr %s can never trigger: condition constraints on %s are unsatisfiable",
					sr.Name, nodeLabel(cond, n)),
				Rules:   []RuleRef{{Kind: "sr", Index: i, Name: sr.Name}},
				Witness: &Witness{Kind: WitnessContradiction, Path: pair},
			})
			continue
		}
		if _, ok := sr.Apply(cond); !ok {
			ds = append(ds, Diagnostic{
				ID:       DiagSRDeadAction,
				Severity: SevWarn,
				Message: fmt.Sprintf(
					"sr %s's action does not apply to its own trigger query (dead rule?)",
					sr.Name),
				Rules: []RuleRef{{Kind: "sr", Index: i, Name: sr.Name}},
			})
			continue
		}
		rep, err := AnalyzeSRs(p.SRs, cond)
		if err != nil {
			if !cycleSeen {
				cycleSeen = true
				cycle := canonicalRotation(rep.Cycle, 1)
				ds = append(ds, Diagnostic{
					ID:       DiagSRProbeCycle,
					Severity: SevWarn,
					Message: fmt.Sprintf(
						"a conflict cycle is reachable from sr %s's own trigger; queries matching it will be rejected unless priorities are assigned",
						sr.Name),
					Rules:   srRefsByName(p, cycle),
					Witness: &Witness{Kind: WitnessConflictCycle, Path: cycle},
				})
			}
			continue
		}
		// Shadowing: replay the application order on the trigger and see
		// whether the rule ever fires.
		applied, fired := replayOrder(p.SRs, rep.Order, cond, i)
		if !fired {
			ds = append(ds, Diagnostic{
				ID:       DiagSRShadowed,
				Severity: SevWarn,
				Message: fmt.Sprintf(
					"sr %s is pre-empted on its own trigger: rules applied before it disable it",
					sr.Name),
				Rules:   []RuleRef{{Kind: "sr", Index: i, Name: sr.Name}},
				Witness: &Witness{Kind: WitnessShadowedBy, Path: applied},
			})
		}
	}
	return ds
}

// replayOrder applies rules in order to q (the Flock loop) and reports
// whether rule `watch` fired, plus the names applied before its turn.
func replayOrder(rules []*profile.SR, order []int, q *tpq.Query, watch int) (before []string, fired bool) {
	cur := q
	for _, idx := range order {
		out, ok := rules[idx].Apply(cur)
		if idx == watch {
			return before, ok
		}
		if ok {
			before = append(before, rules[idx].Name)
			cur = out
		}
	}
	// The watched rule was not applicable at all (not in the order):
	// treat as shadowed with everything applied before it.
	return before, false
}

func srRefsByName(p *profile.Profile, names []string) []RuleRef {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var refs []RuleRef
	for i, sr := range p.SRs {
		if want[sr.Name] {
			refs = append(refs, RuleRef{Kind: "sr", Index: i, Name: sr.Name})
		}
	}
	return refs
}

// --- query-scoped checks ---

// conflictCycleDiagnostic wraps the Section 5.1 cycle error.
func conflictCycleDiagnostic(p *profile.Profile, rep *ConflictReport) Diagnostic {
	var cycle []string
	if rep != nil {
		cycle = canonicalRotation(rep.Cycle, 1)
	}
	return Diagnostic{
		ID:       DiagSRConflictCycle,
		Severity: SevError,
		Message: "scoping rules form a conflict cycle for this query; " +
			"assign priorities to fix the application order (Section 5.1)",
		Rules:   srRefsByName(p, cycle),
		Witness: &Witness{Kind: WitnessConflictCycle, Path: cycle},
	}
}

// vetFlockSatisfiable checks every rewritten query of the flock for
// unsatisfiable required-constraint conjunctions (e.g. an SR adds
// price > 200 to a query already requiring price < 100).
func vetFlockSatisfiable(p *profile.Profile, q *tpq.Query, flock []*tpq.Query) []Diagnostic {
	var ds []Diagnostic
	for pos, fq := range flock {
		n, pair, unsat := unsatQueryConstraints(fq, true)
		if !unsat {
			continue
		}
		what := "the query"
		if pos > 0 {
			what = fmt.Sprintf("flock member %d", pos)
		}
		ds = append(ds, Diagnostic{
			ID:       DiagUnsatRewrite,
			Severity: SevWarn,
			Message: fmt.Sprintf(
				"%s carries an unsatisfiable constraint conjunction on %s after SR rewriting",
				what, nodeLabel(fq, n)),
			Witness: &Witness{Kind: WitnessContradiction, Path: pair},
		})
		break // one witness is enough; later members repeat it
	}
	return ds
}

// vetOrderingTags warns about VORs and KORs whose tag no flock query
// can produce as an answer: the rule is inert for this query.
func vetOrderingTags(p *profile.Profile, flock []*tpq.Query) []Diagnostic {
	tags := map[string]bool{}
	for _, fq := range flock {
		tags[fq.Nodes[fq.Dist].Tag] = true
	}
	reachable := func(tag string) bool { return tags[tag] || tags["*"] }
	tagList := make([]string, 0, len(tags))
	for t := range tags {
		tagList = append(tagList, t)
	}
	sort.Strings(tagList)
	var ds []Diagnostic
	for i, v := range p.VORs {
		if reachable(v.Tag) {
			continue
		}
		ds = append(ds, Diagnostic{
			ID:       DiagVORNoMatch,
			Severity: SevWarn,
			Message: fmt.Sprintf(
				"vor %s orders %q answers, but this query only produces %v",
				v.Name, v.Tag, tagList),
			Rules:   []RuleRef{{Kind: "vor", Index: i, Name: v.Name}},
			Witness: &Witness{Kind: WitnessTagMismatch, Path: append([]string{v.Tag}, tagList...)},
		})
	}
	for i, k := range p.KORs {
		if reachable(k.Tag) {
			continue
		}
		ds = append(ds, Diagnostic{
			ID:       DiagKORNoMatch,
			Severity: SevWarn,
			Message: fmt.Sprintf(
				"kor %s boosts %q answers, but this query only produces %v; its keywords can never match",
				k.Name, k.Tag, tagList),
			Rules:   []RuleRef{{Kind: "kor", Index: i, Name: k.Name}},
			Witness: &Witness{Kind: WitnessTagMismatch, Path: append([]string{k.Tag}, tagList...)},
		})
	}
	return ds
}

// --- constraint satisfiability plumbing ---

// unsatQueryConstraints scans a query's pattern nodes for an
// unsatisfiable constraint conjunction. requiredOnly skips optional
// (outer-joined) predicates — those never filter, so a contradiction
// among them cannot empty the result. Returns the offending node, a
// minimal contradictory witness, and whether one was found.
func unsatQueryConstraints(q *tpq.Query, requiredOnly bool) (node int, witness []string, found bool) {
	for ni := range q.Nodes {
		if requiredOnly && optionalSubtree(q, ni) {
			continue
		}
		var cs []Constraint
		var display []string
		for _, c := range q.Nodes[ni].Constraints {
			if requiredOnly && c.Optional {
				continue
			}
			cs = append(cs, Constraint{Attr: c.Attr, Kind: KindCmp, Op: c.Op, Val: c.Val})
			display = append(display, c.String())
		}
		if len(cs) < 2 || ConsistentConstraints(cs) {
			continue
		}
		// Minimal witness: prefer a contradictory pair.
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if !ConsistentConstraints([]Constraint{cs[i], cs[j]}) {
					return ni, []string{display[i], display[j]}, true
				}
			}
		}
		return ni, display, true
	}
	return 0, nil, false
}

// optionalSubtree reports whether node ni or one of its ancestors is an
// optional (outer-joined) branch.
func optionalSubtree(q *tpq.Query, ni int) bool {
	for ni >= 0 {
		if q.Nodes[ni].Optional {
			return true
		}
		ni = q.Nodes[ni].Parent
	}
	return false
}

// contradictionWitness extracts a minimal contradictory witness from an
// unsatisfiable constraint set: a contradictory pair when one exists,
// otherwise the whole conjunction.
func contradictionWitness(cs []Constraint) *Witness {
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if !ConsistentConstraints([]Constraint{cs[i], cs[j]}) {
				return &Witness{
					Kind: WitnessContradiction,
					Path: []string{cs[i].String(), cs[j].String()},
				}
			}
		}
	}
	path := make([]string, len(cs))
	for i, c := range cs {
		path[i] = c.String()
	}
	return &Witness{Kind: WitnessContradiction, Path: path}
}

// nodeLabel names a pattern node for messages: its tag plus index when
// tags repeat.
func nodeLabel(q *tpq.Query, ni int) string {
	tag := q.Nodes[ni].Tag
	count := 0
	for _, n := range q.Nodes {
		if n.Tag == tag {
			count++
		}
	}
	if count > 1 {
		return fmt.Sprintf("%s (pattern node %d)", tag, ni)
	}
	return tag
}
