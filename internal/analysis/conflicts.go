package analysis

import (
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/tpq"
)

// ConflictReport captures the Section 5.1 analysis of a scoping-rule set
// against one query.
type ConflictReport struct {
	// Applicable[i] reports whether rule i's condition is subsumed by Q.
	Applicable []bool
	// Conflicts is the conflict digraph over applicable rules: an arc
	// (i, j) means rule i conflicts with rule j w.r.t. Q — both are
	// applicable, but j is not applicable to i(Q).
	Conflicts [][]int
	// Cyclic reports whether the conflict graph has a cycle among rules
	// that lack user priorities.
	Cyclic bool
	// Cycle is a witness rule-name sequence when Cyclic.
	Cycle []string
	// Order is the chosen application order (indices into the rule
	// slice): user priorities when assigned, otherwise a topological
	// order of the conflict graph that fires conflict *targets* before
	// their attackers, so every applicable rule gets to apply.
	Order []int
}

// AnalyzeSRs builds the conflict report for rules w.r.t. q.
//
// Ordering semantics: the paper proves different orders can yield
// different results and proposes topologically sorting the conflict
// graph, with user priorities forcing the order when cycles exist. We
// topologically sort so that when i conflicts with j (i would disable j),
// j is applied first — the order that maximizes rule applicability and
// keeps semantics deterministic. Rules with explicit priorities override
// the topological order entirely (lower priority number fires first).
func AnalyzeSRs(rules []*profile.SR, q *tpq.Query) (*ConflictReport, error) {
	n := len(rules)
	rep := &ConflictReport{
		Applicable: make([]bool, n),
		Conflicts:  make([][]int, n),
	}
	rewritten := make([]*tpq.Query, n)
	for i, sr := range rules {
		if _, err := sr.CondQuery(); err != nil {
			return nil, err
		}
		rep.Applicable[i] = sr.Applicable(q)
		if rep.Applicable[i] {
			if out, ok := sr.Apply(q); ok {
				rewritten[i] = out
			}
		}
	}
	for i := range rules {
		if !rep.Applicable[i] || rewritten[i] == nil {
			continue
		}
		for j := range rules {
			if i == j || !rep.Applicable[j] {
				continue
			}
			if !rules[j].Applicable(rewritten[i]) {
				rep.Conflicts[i] = append(rep.Conflicts[i], j)
			}
		}
	}

	prioritized := true
	for i := range rules {
		if rep.Applicable[i] && rules[i].Priority == 0 {
			prioritized = false
			break
		}
	}
	if prioritized {
		// User-assigned order. (Also resolves any conflict cycles.)
		var idx []int
		for i := range rules {
			if rep.Applicable[i] {
				idx = append(idx, i)
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return rules[idx[a]].Priority < rules[idx[b]].Priority
		})
		rep.Order = idx
		return rep, nil
	}

	order, cycle := topoOrder(rep, rules)
	if cycle != nil {
		rep.Cyclic = true
		for _, i := range cycle {
			rep.Cycle = append(rep.Cycle, rules[i].Name)
		}
		// Canonical rotation: byte-stable witness regardless of DFS entry.
		rep.Cycle = canonicalRotation(rep.Cycle, 1)
		return rep, fmt.Errorf(
			"analysis: conflict cycle among scoping rules %v; assign priorities to fix the application order (Section 5.1)",
			rep.Cycle)
	}
	rep.Order = order
	return rep, nil
}

// topoOrder returns the application order: reverse-topological over the
// conflict arcs (targets before attackers). If the graph is cyclic it
// returns a witness cycle instead.
func topoOrder(rep *ConflictReport, rules []*profile.SR) (order []int, cycle []int) {
	n := len(rules)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var post []int
	cycleStart, cycleEnd := -1, -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, w := range rep.Conflicts[u] {
			if color[w] == gray {
				cycleStart, cycleEnd = w, u
				return true
			}
			if color[w] == white {
				parent[w] = u
				if dfs(w) {
					return true
				}
			}
		}
		color[u] = black
		post = append(post, u)
		return false
	}
	for i := 0; i < n; i++ {
		if rep.Applicable[i] && color[i] == white {
			if dfs(i) {
				var c []int
				for u := cycleEnd; u != cycleStart; u = parent[u] {
					c = append(c, u)
				}
				c = append(c, cycleStart)
				for l, r := 0, len(c)-1; l < r; l, r = l+1, r-1 {
					c[l], c[r] = c[r], c[l]
				}
				return nil, c
			}
		}
	}
	// post is already "targets first": dfs finishes conflict targets
	// before their attackers, and appending at finish time yields
	// children (targets) before parents (attackers).
	return post, nil
}

// Flock builds the query flock of Section 5.1 for q under rules: the
// family Q, p1(Q), p2(p1(Q)), ..., applying rules in the order fixed by
// AnalyzeSRs. Rules that are (or become) inapplicable at their turn are
// skipped. It returns the flock (starting with q itself) and the names
// of the rules actually applied.
func Flock(rules []*profile.SR, q *tpq.Query) (flock []*tpq.Query, applied []string, err error) {
	rep, err := AnalyzeSRs(rules, q)
	if err != nil {
		return nil, nil, err
	}
	flock = []*tpq.Query{q}
	cur := q
	for _, i := range rep.Order {
		out, ok := rules[i].Apply(cur)
		if !ok {
			continue
		}
		flock = append(flock, out)
		applied = append(applied, rules[i].Name)
		cur = out
	}
	return flock, applied, nil
}

// EncodeFlock enforces the rules on q via the single-plan encoding of
// Section 6.2 ("SRs can be enforced by encoding the query flock into a
// single query plan, without requiring actual rewriting"): each rule is
// applied in the same order as Flock but with EncodeOptional, so the
// result is one query whose optional, score-contributing predicates
// capture the whole flock. Returns the encoded query and the applied
// rule names.
func EncodeFlock(rules []*profile.SR, q *tpq.Query) (*tpq.Query, []string, error) {
	rep, err := AnalyzeSRs(rules, q)
	if err != nil {
		return nil, nil, err
	}
	cur := q
	var applied []string
	for _, i := range rep.Order {
		out, ok := rules[i].EncodeOptional(cur)
		if !ok {
			continue
		}
		applied = append(applied, rules[i].Name)
		cur = out
	}
	return cur, applied, nil
}
