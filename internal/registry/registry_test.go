package registry

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/profile"
)

const cleanProfile = `
sr p2 priority 1: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
rank K,V,S
`

// cleanProfileSpaced is cleanProfile with cosmetic whitespace changes
// outside quotes: same parse, same canonical serialization, same
// fingerprint.
const cleanProfileSpaced = `
sr  p2  priority 1:  if pc(car, description)  &  ftcontains(description, "good condition")  then add ftcontains(description, "american")

kor  w4:  x.tag = car  &  y.tag = car  &  ftcontains(x, "best bid")  =>  x < y
rank K, V, S
`

const otherProfile = `
kor w5: x.tag = car & y.tag = car & ftcontains(x, "low mileage") => x < y
rank V,K,S
`

const ambiguousProfile = `
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
rank K,V,S
`

func TestPutGetDeleteRoundTrip(t *testing.T) {
	r := New(nil)
	st, created, err := r.Put(context.Background(), "alice", cleanProfile)
	if err != nil || !created {
		t.Fatalf("Put = %v created=%v", err, created)
	}
	want := engine.ProfileFingerprint(profile.MustParseProfile(cleanProfile))
	if st.Fingerprint() != want {
		t.Errorf("fingerprint = %q, want %q", st.Fingerprint(), want)
	}
	if st.Source() != cleanProfile || st.Profile() == nil {
		t.Errorf("stored body mismatch: source=%q profile=%v", st.Source(), st.Profile())
	}

	got, ok := r.Get("alice")
	if !ok || got != st {
		t.Fatalf("Get = %v, %v; want the stored handle", got, ok)
	}
	if _, ok := r.Get("bob"); ok {
		t.Error("Get of unregistered name succeeded")
	}

	del, ok := r.Delete("alice")
	if !ok || del != st {
		t.Fatalf("Delete = %v, %v", del, ok)
	}
	if _, ok := r.Delete("alice"); ok {
		t.Error("second Delete succeeded")
	}
	if r.Len() != 0 || r.Distinct() != 0 {
		t.Errorf("after delete: Len=%d Distinct=%d, want 0/0", r.Len(), r.Distinct())
	}
}

func TestFingerprintDedup(t *testing.T) {
	r := New(nil)
	ctx := context.Background()
	a, _, _ := r.Put(ctx, "alice", cleanProfile)
	b, _, _ := r.Put(ctx, "bob", cleanProfile)
	// Cosmetic whitespace differences canonicalize away: same body.
	c, _, _ := r.Put(ctx, "carol", cleanProfileSpaced)
	if a != b || a != c {
		t.Fatal("identical bodies did not dedup to one Stored")
	}
	if a.Shared() != 3 {
		t.Errorf("Shared = %d, want 3", a.Shared())
	}
	if r.Len() != 3 || r.Distinct() != 1 {
		t.Errorf("Len=%d Distinct=%d, want 3/1", r.Len(), r.Distinct())
	}
	if s := r.Stats(); s.Names != 3 || s.Distinct != 1 {
		t.Errorf("Stats = %+v", s)
	}

	r.Delete("bob")
	if a.Shared() != 2 {
		t.Errorf("Shared after delete = %d, want 2", a.Shared())
	}
	r.Delete("alice")
	r.Delete("carol")
	if r.Distinct() != 0 {
		t.Errorf("Distinct after last unbind = %d, want 0 (fingerprint retired)", r.Distinct())
	}
}

func TestVetRunsOncePerDistinctBody(t *testing.T) {
	var vets atomic.Int64
	r := New(func(_ context.Context, p *profile.Profile) ([]analysis.Diagnostic, error) {
		vets.Add(1)
		return analysis.VetProfile(p), nil
	})
	ctx := context.Background()
	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := r.Put(ctx, name, cleanProfile); err != nil {
			t.Fatal(err)
		}
	}
	if vets.Load() != 1 {
		t.Errorf("vet ran %d times for one body over 3 names, want 1", vets.Load())
	}
	if _, _, err := r.Put(ctx, "d", otherProfile); err != nil {
		t.Fatal(err)
	}
	if vets.Load() != 2 {
		t.Errorf("vet ran %d times after a second distinct body, want 2", vets.Load())
	}
}

func TestRebindRepointsAndReleases(t *testing.T) {
	r := New(nil)
	ctx := context.Background()
	first, _, _ := r.Put(ctx, "alice", cleanProfile)
	second, created, err := r.Put(ctx, "alice", otherProfile)
	if err != nil || created {
		t.Fatalf("rebind Put = %v created=%v (want created=false)", err, created)
	}
	if second == first {
		t.Fatal("rebind kept the old body")
	}
	if first.Shared() != 0 {
		t.Errorf("old body Shared = %d, want 0", first.Shared())
	}
	if r.Len() != 1 || r.Distinct() != 1 {
		t.Errorf("Len=%d Distinct=%d, want 1/1", r.Len(), r.Distinct())
	}
	// Re-registering the identical body is a no-op.
	again, created, err := r.Put(ctx, "alice", otherProfile)
	if err != nil || created || again != second {
		t.Fatalf("idempotent re-put = %v created=%v same=%v", err, created, again == second)
	}
}

func TestPutRejections(t *testing.T) {
	r := New(nil)
	ctx := context.Background()
	cases := []struct {
		name      string
		profName  string
		source    string
		wantDiags bool // Rejection carries diagnostics (vs a plain error)
	}{
		{"empty name", "", cleanProfile, false},
		{"star name", "*", cleanProfile, false},
		{"slash name", "a/b", cleanProfile, false},
		{"malformed source", "ok", "sr broken", false},
		{"duplicate rule id", "ok", "sr a: if pc(car, d) then add ftcontains(d, \"x\")\nsr a: if pc(car, d) then remove ftcontains(d, \"x\")", true},
		{"ambiguous vors", "ok", ambiguousProfile, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := r.Put(ctx, tc.profName, tc.source)
			var rej *Rejection
			if !errors.As(err, &rej) {
				t.Fatalf("err = %v, want *Rejection", err)
			}
			if rej.Error() == "" {
				t.Error("empty rejection message")
			}
			if tc.wantDiags {
				if analysis.ErrorCount(rej.Diagnostics) == 0 {
					t.Errorf("want error-severity diagnostics, got %+v", rej.Diagnostics)
				}
			} else if rej.Err == nil {
				t.Errorf("want plain error, got diagnostics %+v", rej.Diagnostics)
			}
			if r.Len() != 0 || r.Distinct() != 0 {
				t.Errorf("rejection changed state: Len=%d Distinct=%d", r.Len(), r.Distinct())
			}
		})
	}
}

func TestVetterErrorPropagates(t *testing.T) {
	sentinel := errors.New("ctx expired mid-vet")
	r := New(func(context.Context, *profile.Profile) ([]analysis.Diagnostic, error) {
		return nil, sentinel
	})
	_, _, err := r.Put(context.Background(), "alice", cleanProfile)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the vetter's error verbatim", err)
	}
	var rej *Rejection
	if errors.As(err, &rej) {
		t.Error("vetter error must not be wrapped as a Rejection")
	}
}

func TestListSorted(t *testing.T) {
	r := New(nil)
	ctx := context.Background()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Put(ctx, name, cleanProfile)
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d", len(list))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if list[i].Name != want {
			t.Errorf("List[%d] = %q, want %q", i, list[i].Name, want)
		}
		if list[i].Fingerprint == "" {
			t.Errorf("List[%d] missing fingerprint", i)
		}
	}
}

// TestConcurrentPutsShareOneBody races N goroutines registering the
// same body under distinct names: afterwards exactly one Stored exists
// and every name resolves to it.
func TestConcurrentPutsShareOneBody(t *testing.T) {
	r := New(nil)
	ctx := context.Background()
	const n = 16
	var wg sync.WaitGroup
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, _, err := r.Put(ctx, name, cleanProfile); err != nil {
				t.Error(err)
			}
		}(names[i])
	}
	wg.Wait()
	if r.Distinct() != 1 || r.Len() != n {
		t.Fatalf("Len=%d Distinct=%d, want %d/1", r.Len(), r.Distinct(), n)
	}
	first, _ := r.Get(names[0])
	for _, name := range names[1:] {
		st, ok := r.Get(name)
		if !ok || st != first {
			t.Fatalf("name %q does not share the stored body", name)
		}
	}
	if first.Shared() != n {
		t.Errorf("Shared = %d, want %d", first.Shared(), n)
	}
}
