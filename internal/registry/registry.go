// Package registry is the multi-tenant named-profile store behind
// PUT/GET/DELETE /profiles/{name}: long-lived personalization state
// registered once and referenced by name from every search.
//
// Two properties drive the design:
//
//   - Content-fingerprint dedup. Profiles are stored by the sha256
//     fingerprint of their canonical serialization
//     (engine.ProfileFingerprint), not by name: N names registered over
//     one body share one parsed profile, one vet verdict, and — because
//     the result-cache key folds the canonical profile, never the name —
//     one result-cache key space. Millions of users collapse to
//     thousands of distinct profiles.
//
//   - Vet-on-write. A profile that fails the analysis suite's
//     error-severity checks is rejected at registration with its
//     diagnostics, extending the "error ⇔ Search rejects" contract to
//     "error ⇔ registration rejects": a name, once registered, never
//     fails profile-scoped analysis at query time. The vet runs once
//     per distinct body — re-registering an already-stored body skips
//     it entirely.
//
// Name binding is the only mutable state; stored bodies are immutable
// and refcounted, so a Stored handle resolved for one request stays
// valid even if the name is deleted or rebound mid-flight.
package registry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/profile"
)

// Vetter runs the profile-scoped static analyses and returns their
// diagnostics. The serving layer injects one backed by the shared
// engine.AnalysisCache so registration warms the same verdict searches
// consult; library users can pass analysis.VetProfile directly. The
// error is reserved for ctx expiring mid-analysis — rejections travel
// in the diagnostics.
type Vetter func(ctx context.Context, p *profile.Profile) ([]analysis.Diagnostic, error)

// Stored is one deduplicated, vetted profile body. It is immutable
// after creation (the refcount aside) and shared by every name bound
// to it.
type Stored struct {
	fingerprint string
	source      string
	prof        *profile.Profile
	refs        atomic.Int64
}

// Fingerprint returns the body's content fingerprint
// (engine.ProfileFingerprint of the parsed profile).
func (st *Stored) Fingerprint() string { return st.fingerprint }

// Source returns the profile DSL source as registered.
func (st *Stored) Source() string { return st.source }

// Profile returns the parsed profile. Callers must treat it as
// immutable — it is shared across names and across in-flight searches.
func (st *Stored) Profile() *profile.Profile { return st.prof }

// Shared returns how many names are currently bound to this body.
func (st *Stored) Shared() int { return int(st.refs.Load()) }

// Rejection is the vet-on-write (or parse) refusal: the registration
// changed nothing. Diagnostics carries the analysis findings when the
// body parsed but failed error-severity checks; Err carries plain
// parse/validation failures.
type Rejection struct {
	Diagnostics []analysis.Diagnostic
	Err         error
}

func (r *Rejection) Error() string {
	if r.Err != nil {
		return r.Err.Error()
	}
	return fmt.Sprintf("profile rejected: %d error-severity diagnostic(s)",
		analysis.ErrorCount(r.Diagnostics))
}

func (r *Rejection) Unwrap() error { return r.Err }

// ValidateName rejects profile names the rest of the API cannot
// address (mirroring document-name rules): "" and "*" are reserved,
// and '/' would break the {name} path segment.
func ValidateName(name string) error {
	if name == "" || name == "*" {
		return fmt.Errorf("invalid profile name %q", name)
	}
	if strings.ContainsAny(name, "/\x00") {
		return fmt.Errorf("invalid profile name %q: must not contain '/'", name)
	}
	return nil
}

// Registry is the concurrency-safe name → stored-profile map.
type Registry struct {
	vet Vetter

	mu    sync.RWMutex
	names map[string]*Stored
	byFP  map[string]*Stored
}

// New returns an empty registry. vet runs once per distinct profile
// body at registration time; nil means analysis.VetProfile.
func New(vet Vetter) *Registry {
	if vet == nil {
		vet = func(_ context.Context, p *profile.Profile) ([]analysis.Diagnostic, error) {
			return analysis.VetProfile(p), nil
		}
	}
	return &Registry{
		vet:   vet,
		names: make(map[string]*Stored),
		byFP:  make(map[string]*Stored),
	}
}

// Put parses, vets and registers source under name, returning the
// stored (possibly pre-existing, shared) body and whether the name is
// new. Failures return a *Rejection and change nothing. The vet runs
// only for bodies the registry has never stored: re-registering a
// known body — under any name — is a pure map update.
func (r *Registry) Put(ctx context.Context, name, source string) (*Stored, bool, error) {
	if err := ValidateName(name); err != nil {
		return nil, false, &Rejection{Err: err}
	}
	prof, err := profile.ParseProfile(source)
	if err != nil {
		// A duplicate rule identifier is a finding, not a malformed
		// request: surface it as the P001 diagnostic the parser's error
		// cites (mirroring POST /lint). Anything else is a plain parse
		// failure.
		if strings.Contains(err.Error(), "["+analysis.DiagDuplicateName+"]") {
			return nil, false, &Rejection{Diagnostics: []analysis.Diagnostic{{
				ID:       analysis.DiagDuplicateName,
				Severity: analysis.SevError,
				Message:  err.Error(),
			}}}
		}
		return nil, false, &Rejection{Err: err}
	}
	fp := engine.ProfileFingerprint(prof)

	// Dedup fast path: the body is already stored and vetted — bind the
	// name to it without re-running analysis.
	r.mu.Lock()
	if st, ok := r.byFP[fp]; ok {
		created := r.bindLocked(name, st)
		r.mu.Unlock()
		return st, created, nil
	}
	r.mu.Unlock()

	// New body: vet outside the lock (analysis can be expensive and the
	// injected vetter may block on a single-flight fill).
	ds, err := r.vet(ctx, prof)
	if err != nil {
		return nil, false, err
	}
	if analysis.ErrorCount(ds) > 0 {
		return nil, false, &Rejection{Diagnostics: ds}
	}

	st := &Stored{fingerprint: fp, source: source, prof: prof}
	r.mu.Lock()
	if racer, ok := r.byFP[fp]; ok {
		st = racer // a concurrent Put stored the same body first: share it
	} else {
		r.byFP[fp] = st
	}
	created := r.bindLocked(name, st)
	r.mu.Unlock()
	return st, created, nil
}

// bindLocked points name at st, releasing any previous binding.
// Caller holds mu. Returns true when the name is new.
func (r *Registry) bindLocked(name string, st *Stored) (created bool) {
	old, existed := r.names[name]
	if existed {
		if old == st {
			return false // re-registration of the identical body: no-op
		}
		r.unbindLocked(old)
	}
	r.names[name] = st
	st.refs.Add(1)
	return !existed
}

// unbindLocked drops one reference; the body is forgotten when the
// last name releases it, retiring its fingerprint. Caller holds mu.
func (r *Registry) unbindLocked(st *Stored) {
	if st.refs.Add(-1) == 0 {
		delete(r.byFP, st.fingerprint)
	}
}

// Get resolves a name to its stored body.
func (r *Registry) Get(name string) (*Stored, bool) {
	r.mu.RLock()
	st, ok := r.names[name]
	r.mu.RUnlock()
	return st, ok
}

// Delete unbinds a name, returning the body it pointed at; ok is
// false when the name was not registered (nothing changed).
func (r *Registry) Delete(name string) (*Stored, bool) {
	r.mu.Lock()
	st, ok := r.names[name]
	if ok {
		delete(r.names, name)
		r.unbindLocked(st)
	}
	r.mu.Unlock()
	return st, ok
}

// Entry is one (name, fingerprint) listing row.
type Entry struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// List returns every binding sorted by name.
func (r *Registry) List() []Entry {
	r.mu.RLock()
	out := make([]Entry, 0, len(r.names))
	for n, st := range r.names {
		out = append(out, Entry{Name: n, Fingerprint: st.fingerprint})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered names.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Distinct returns the number of distinct stored bodies — Len minus
// the dedup savings.
func (r *Registry) Distinct() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byFP)
}

// Stats is the registry's gauge block.
type Stats struct {
	// Names is the number of registered names; Distinct the number of
	// deduplicated bodies behind them.
	Names    int `json:"names"`
	Distinct int `json:"distinct"`
}

// Stats snapshots both gauges under one lock acquisition.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{Names: len(r.names), Distinct: len(r.byFP)}
}
