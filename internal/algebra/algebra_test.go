package algebra

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

const dealerXML = `
<dealer>
  <car>
    <description>It is in good condition. I used it to go to work in NYC.</description>
    <price>500</price>
    <color>red</color>
    <mileage>90000</mileage>
  </car>
  <car>
    <description>Powerful car. low mileage. Eager seller.</description>
    <price>1500</price>
    <color>blue</color>
    <mileage>20000</mileage>
  </car>
  <car>
    <description>best bid wins. good condition. low mileage. NYC pickup.</description>
    <price>900</price>
    <color>red</color>
    <mileage>30000</mileage>
  </car>
  <car>
    <description>good condition but pricey</description>
    <price>5000</price>
    <color>green</color>
    <mileage>10000</mileage>
  </car>
</dealer>`

func dealerIndex(t testing.TB) *index.Index {
	t.Helper()
	doc, err := xmldoc.ParseString(dealerXML)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc, text.Pipeline{})
}

func TestMatcherBindings(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./description and price < 2000]`)
	m := NewMatcher(ix, q)
	cars := ix.Elements("car")

	descNode := q.FindByTag("description")[0]
	bs := m.Bindings(descNode, cars[0])
	if len(bs) != 1 || ix.Document().Tag(bs[0]) != "description" {
		t.Fatalf("description bindings = %v", bs)
	}
	// A price pattern node binds to the car's own price child only.
	priceNode := q.FindByTag("price")[0]
	bs = m.Bindings(priceNode, cars[1])
	if len(bs) != 1 {
		t.Fatalf("price bindings = %v", bs)
	}
	if got := ix.Document().TextContent(bs[0]); got != "1500" {
		t.Errorf("bound wrong price: %q", got)
	}
}

func TestMatcherUpwardPath(t *testing.T) {
	// Distinguished node below the root pattern node.
	ix := dealerIndex(t)
	q := tpq.MustParse(`//dealer//description`)
	m := NewMatcher(ix, q)
	descs := ix.Elements("description")
	for _, d := range descs {
		if !m.MatchRequired(d) {
			t.Errorf("description %d should match //dealer//description", d)
		}
	}
	// A pattern with a wrong ancestor tag matches nothing.
	q2 := tpq.MustParse(`//garage//description`)
	m2 := NewMatcher(ix, q2)
	for _, d := range descs {
		if m2.MatchRequired(d) {
			t.Errorf("description %d must not match //garage//description", d)
		}
	}
}

func TestMatcherSiblingBranch(t *testing.T) {
	// NEXI shape: predicate on a branch hanging off an ancestor.
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./color]//description`)
	m := NewMatcher(ix, q)
	descs := ix.Elements("description")
	matched := 0
	for _, d := range descs {
		if m.MatchRequired(d) {
			matched++
		}
	}
	if matched != 3 { // car 3 (green) has color; cars 1,2,3... car without color? all 4 have color except none — check
		// All four cars have color: expect 4.
		if matched != 4 {
			t.Errorf("matched = %d", matched)
		}
	}
}

func TestMatchRequiredConstraints(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[price < 2000]`)
	m := NewMatcher(ix, q)
	cars := ix.Elements("car")
	want := []bool{true, true, true, false}
	for i, c := range cars {
		if got := m.MatchRequired(c); got != want[i] {
			t.Errorf("car %d: MatchRequired = %v, want %v", i, got, want[i])
		}
	}
}

func TestFTUnitsAndScores(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	m := NewMatcher(ix, q)
	fts := m.FTUnits()
	if len(fts) != 1 {
		t.Fatalf("FT units = %v", fts)
	}
	cars := ix.Elements("car")
	sat, score := m.EvalUnit(fts[0], cars[0])
	if !sat || score <= 0 {
		t.Errorf("car 0: sat=%v score=%v", sat, score)
	}
	sat, score = m.EvalUnit(fts[0], cars[1])
	if sat || score != 0 {
		t.Errorf("car 1: sat=%v score=%v", sat, score)
	}
	if b := m.MaxUnitScore(fts[0]); b < score {
		t.Errorf("bound %v below actual %v", b, score)
	}
}

func TestOptionalUnitsScoreOnly(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "best bid"?]]`)
	m := NewMatcher(ix, q)

	var opt int = -1
	for i, u := range m.Units() {
		if u.Kind == UnitFT && u.Optional {
			opt = i
		}
	}
	if opt == -1 {
		t.Fatal("no optional FT unit")
	}
	cars := ix.Elements("car")
	// car 0 lacks "best bid": unit unsatisfied but never filters.
	if sat, _ := m.EvalUnit(opt, cars[0]); sat {
		t.Errorf("car 0 should not satisfy the optional unit")
	}
	if sat, score := m.EvalUnit(opt, cars[2]); !sat || score <= 0 {
		t.Errorf("car 2: sat=%v score=%v", sat, score)
	}
}

func buildPipeline(ix *index.Index, q *tpq.Query, prof *profile.Profile) (Operator, *Matcher) {
	m := NewMatcher(ix, q)
	var op Operator = &ScanOp{Ix: ix, Tag: q.Nodes[q.Dist].Tag}
	op = &RequiredOp{In: op, Matcher: m}
	for _, u := range m.FTUnits() {
		op = &FTOp{In: op, Matcher: m, Unit: u}
	}
	op = &BonusOp{In: op, Matcher: m, Units: m.OptionalBonusUnits()}
	if prof != nil && len(prof.VORs) > 0 {
		op = &VOROp{In: op, Doc: ix.Document(), Prof: prof}
	}
	if prof != nil {
		for _, kor := range prof.SortKORsByPriority() {
			op = &KOROp{In: op, Ix: ix, Kor: kor}
		}
	}
	return op, m
}

func drain(op Operator) []Answer {
	op.Open()
	var out []Answer
	for {
		a, ok := op.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestPipelineScoresAndKOR(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	prof := profile.MustParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
`)
	op, _ := buildPipeline(ix, q, prof)
	out := drain(op)
	// Cars 0 and 2 match (good condition + price<2000); car 3 fails price,
	// car 1 lacks the phrase.
	if len(out) != 2 {
		t.Fatalf("got %d answers: %+v", len(out), out)
	}
	byNode := map[xmldoc.NodeID]Answer{}
	for _, a := range out {
		byNode[a.Node] = a
	}
	cars := ix.Elements("car")
	a0, ok0 := byNode[cars[0]]
	a2, ok2 := byNode[cars[2]]
	if !ok0 || !ok2 {
		t.Fatalf("wrong cars matched: %+v", out)
	}
	if a0.S <= 0 || a2.S <= 0 {
		t.Errorf("S scores missing: %+v %+v", a0, a2)
	}
	// K: car 0 has NYC only; car 2 has best bid + NYC.
	if !(a2.K > a0.K) {
		t.Errorf("car 2 should out-K car 0: %v vs %v", a2.K, a0.K)
	}
	if a0.K <= 0 {
		t.Errorf("car 0 contains NYC, K = %v", a0.K)
	}
	// VKeys present.
	if len(a0.VKeys) != 1 || len(a2.VKeys) != 1 {
		t.Errorf("VKeys missing")
	}
}

func TestRankerModes(t *testing.T) {
	prof := profile.MustParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
`)
	r := &Ranker{Prof: prof}
	doc, _ := xmldoc.ParseString(`<d><car><color>red</color></car><car><color>blue</color></car></d>`)
	cars := doc.ElementsByTag("car")
	red := Answer{Node: cars[0], S: 0.1, K: 0, VKeys: VORKeysFor(doc, prof, cars[0])}
	blue := Answer{Node: cars[1], S: 0.9, K: 0.5, VKeys: VORKeysFor(doc, prof, cars[1])}

	if got := r.Compare(&red, &blue, ModeS); got != -1 {
		t.Errorf("ModeS: %d", got)
	}
	if got := r.Compare(&red, &blue, ModeVS); got != 1 {
		t.Errorf("ModeVS: red preferred, got %d", got)
	}
	if got := r.Compare(&red, &blue, ModeKVS); got != -1 {
		t.Errorf("ModeKVS: K dominates, got %d", got)
	}
	if got := r.Compare(&red, &blue, ModeVKS); got != 1 {
		t.Errorf("ModeVKS: V dominates, got %d", got)
	}
	// Symmetry.
	if r.Compare(&blue, &red, ModeVKS) != -1 {
		t.Errorf("asymmetric comparison")
	}
}

func TestModeForProfile(t *testing.T) {
	if got := ModeForProfile(nil); got != ModeS {
		t.Errorf("nil profile: %v", got)
	}
	vOnly := profile.MustParseProfile(`vor w: x.tag = a & y.tag = a & x.m < y.m => x < y`)
	if got := ModeForProfile(vOnly); got != ModeVS {
		t.Errorf("v-only: %v", got)
	}
	kv := profile.MustParseProfile(`
vor w: x.tag = a & y.tag = a & x.m < y.m => x < y
kor k: x.tag = a & y.tag = a & ftcontains(x, "z") => x < y
`)
	if got := ModeForProfile(kv); got != ModeKVS {
		t.Errorf("kv: %v", got)
	}
	kv.Rank = profile.VKS
	if got := ModeForProfile(kv); got != ModeVKS {
		t.Errorf("vks: %v", got)
	}
}

// srcAnswers builds a synthetic operator from a fixed answer list.
type sliceOp struct {
	answers []Answer
	pos     int
	stats   OpStats
}

func (s *sliceOp) Open()          { s.pos = 0; s.stats = OpStats{Name: "slice"} }
func (s *sliceOp) Stats() OpStats { return s.stats }
func (s *sliceOp) Next() (Answer, bool) {
	if s.pos >= len(s.answers) {
		return Answer{}, false
	}
	a := s.answers[s.pos]
	s.pos++
	s.stats.Out++
	return a, true
}

func TestTopKPruneAlg1(t *testing.T) {
	r := &Ranker{}
	answers := []Answer{
		{Node: 1, S: 0.5}, {Node: 2, S: 0.9}, {Node: 3, S: 0.1},
		{Node: 4, S: 0.7}, {Node: 5, S: 0.3},
	}
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeS, Ranker: r}
	drain(op)
	top := op.TopK()
	if len(top) != 2 || top[0].S != 0.9 || top[1].S != 0.7 {
		t.Fatalf("top = %+v", top)
	}
	// With SBound = 0, answers 3 and 5 must have been pruned.
	if op.Stats().Pruned != 2 {
		t.Errorf("pruned = %d, want 2 (answers 0.1 and 0.3)", op.Stats().Pruned)
	}
}

func TestTopKPruneSBoundPreventsPruning(t *testing.T) {
	r := &Ranker{}
	answers := []Answer{
		{Node: 1, S: 0.5}, {Node: 2, S: 0.9}, {Node: 3, S: 0.1},
	}
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeS, Ranker: r, SBound: 1.0}
	out := drain(op)
	// 0.1 + 1.0 >= 0.5: nothing can be pruned.
	if len(out) != 3 || op.Stats().Pruned != 0 {
		t.Errorf("out=%d pruned=%d; bound must prevent pruning", len(out), op.Stats().Pruned)
	}
}

func TestTopKPruneBulkOnSorted(t *testing.T) {
	r := &Ranker{}
	answers := []Answer{
		{Node: 1, S: 0.9}, {Node: 2, S: 0.7}, {Node: 3, S: 0.5},
		{Node: 4, S: 0.3}, {Node: 5, S: 0.1},
	}
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeS, Ranker: r, SortedInput: true}
	out := drain(op)
	if len(out) != 2 {
		t.Errorf("sorted input must stop at first prune: emitted %d", len(out))
	}
	if op.Stats().In != 3 {
		t.Errorf("consumed %d, want 3 (two kept + one pruned then stop)", op.Stats().In)
	}
}

func TestTopKPruneAlg3KorBound(t *testing.T) {
	r := &Ranker{}
	answers := []Answer{
		{Node: 1, K: 1.0, S: 0.5},
		{Node: 2, K: 0.9, S: 0.5},
		{Node: 3, K: 0.2, S: 0.5}, // can catch up within bound 1.0
		{Node: 4, K: 0.0, S: 0.5}, // 0.0 + 0.8 < 0.9: pruned for bound 0.8
	}
	// korBound large: nothing pruned.
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeKVS, Ranker: r, KorBound: 1.0}
	out := drain(op)
	if len(out) != 4 {
		t.Errorf("bound 1.0: emitted %d, want 4", len(out))
	}
	// korBound 0.8: answer 4 pruned (0+0.8 < 0.9), answer 3 kept (0.2+0.8 >= 0.9).
	op = &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeKVS, Ranker: r, KorBound: 0.8}
	out = drain(op)
	if len(out) != 3 || op.Stats().Pruned != 1 {
		t.Errorf("bound 0.8: emitted %d pruned %d", len(out), op.Stats().Pruned)
	}
	// korBound 0: K final; answers 3 and 4 pruned.
	op = &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeKVS, Ranker: r}
	out = drain(op)
	if len(out) != 2 || op.Stats().Pruned != 2 {
		t.Errorf("bound 0: emitted %d pruned %d", len(out), op.Stats().Pruned)
	}
}

func TestTopKPruneAlg2VDominance(t *testing.T) {
	prof := profile.MustParseProfile(`
vor w: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
`)
	r := &Ranker{Prof: prof}
	doc, _ := xmldoc.ParseString(
		`<d><car><color>red</color></car><car><color>red</color></car><car><color>blue</color></car></d>`)
	cars := doc.ElementsByTag("car")
	key := func(i int) []profile.Key { return VORKeysFor(doc, prof, cars[i]) }
	answers := []Answer{
		{Node: cars[0], S: 0.9, VKeys: key(0)}, // red
		{Node: cars[1], S: 0.8, VKeys: key(1)}, // red
		{Node: cars[2], S: 1.0, VKeys: key(2)}, // blue: dominated by both reds
	}
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeVS, Ranker: r}
	drain(op)
	top := op.TopK()
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	for _, a := range top {
		if doc.TextContent(doc.ChildByTag(a.Node, "color")) != "red" {
			t.Errorf("user-preferred (red) answers must win despite lower S: %+v", top)
		}
	}
	if op.Stats().Pruned != 1 {
		t.Errorf("blue must be pruned: stats %+v", op.Stats())
	}
}

// TestTopKPreferredNotPrunedDespiteLowScore is the paper's headline
// requirement: "Even if their query score is low, user-preferred answers
// should not be pruned."
func TestTopKPreferredNotPrunedDespiteLowScore(t *testing.T) {
	prof := profile.MustParseProfile(`
vor w: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
`)
	r := &Ranker{Prof: prof}
	b := xmldoc.NewBuilder()
	b.Start("d")
	for i := 0; i < 20; i++ {
		b.Start("car")
		if i == 19 {
			b.Elem("color", "red") // the last, lowest-S car is red
		} else {
			b.Elem("color", "blue")
		}
		b.End()
	}
	b.End()
	doc := b.MustDocument()
	cars := doc.ElementsByTag("car")
	var answers []Answer
	for i, c := range cars {
		answers = append(answers, Answer{
			Node: c, S: 1.0 - float64(i)*0.05, VKeys: VORKeysFor(doc, prof, c),
		})
	}
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 3, Mode: ModeVS, Ranker: r}
	drain(op)
	top := op.TopK()
	if doc.TextContent(doc.ChildByTag(top[0].Node, "color")) != "red" {
		t.Fatalf("the red car must rank first: %+v", top)
	}
}

func TestSortOp(t *testing.T) {
	r := &Ranker{}
	answers := []Answer{{Node: 3, S: 0.5}, {Node: 1, S: 0.9}, {Node: 2, S: 0.9}}
	op := &SortOp{In: &sliceOp{answers: answers}, Ranker: r, Mode: ModeS}
	out := drain(op)
	if len(out) != 3 || out[0].S != 0.9 || out[2].S != 0.5 {
		t.Fatalf("sorted = %+v", out)
	}
	// Deterministic tie-break by NodeID.
	if out[0].Node != 1 || out[1].Node != 2 {
		t.Errorf("tie-break: %+v", out)
	}
}

func TestStatsNames(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	m := NewMatcher(ix, q)
	var op Operator = &ScanOp{Ix: ix, Tag: "car"}
	op = &FTOp{In: op, Matcher: m, Unit: m.FTUnits()[0]}
	drain(op)
	if name := op.Stats().Name; !strings.Contains(name, "good condition") {
		t.Errorf("stats name = %q", name)
	}
}

func BenchmarkMatchRequired(b *testing.B) {
	ix := dealerIndex(b)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	m := NewMatcher(ix, q)
	cars := ix.Elements("car")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchRequired(cars[i%len(cars)])
	}
}

func ExampleTopKPruneOp() {
	r := &Ranker{}
	answers := []Answer{{Node: 1, S: 0.3}, {Node: 2, S: 0.8}, {Node: 3, S: 0.6}}
	op := &TopKPruneOp{In: &sliceOp{answers: answers}, K: 2, Mode: ModeS, Ranker: r}
	op.Open()
	for {
		if _, ok := op.Next(); !ok {
			break
		}
	}
	for _, a := range op.TopK() {
		fmt.Printf("node %d score %.1f\n", a.Node, a.S)
	}
	// Output:
	// node 2 score 0.8
	// node 3 score 0.6
}
