// Arena-style scratch reuse for the serving hot path. Every query
// builds at least one operator chain, and each chain owns three growable
// buffers: the Matcher's two navigation scratch slices and the
// materialization buffers of SortOp / TopKPruneOp. Under a worker-pool
// scheduler the same handful of goroutines execute every request, so
// pooling these buffers makes steady-state allocation per query drop to
// (nearly) the answers themselves. Buffers are acquired lazily on first
// use and returned explicitly via ReleaseScratch — a released operator
// simply re-acquires on its next Open, so release is always safe, and
// releasing twice is a no-op.
package algebra

import (
	"sync"

	"repro/internal/xmldoc"
)

// Pools hold *pointers* to slices so Put does not allocate a fresh
// header box per cycle beyond the first.
var (
	nodeBufPool = sync.Pool{New: func() any {
		b := make([]xmldoc.NodeID, 0, 64)
		return &b
	}}
	answerBufPool = sync.Pool{New: func() any {
		b := make([]Answer, 0, 64)
		return &b
	}}
)

func getNodeBuf() []xmldoc.NodeID {
	return (*nodeBufPool.Get().(*[]xmldoc.NodeID))[:0]
}

func putNodeBuf(b []xmldoc.NodeID) {
	b = b[:0]
	nodeBufPool.Put(&b)
}

func getAnswerBuf() []Answer {
	return (*answerBufPool.Get().(*[]Answer))[:0]
}

func putAnswerBuf(b []Answer) {
	b = b[:0]
	answerBufPool.Put(&b)
}

// ScratchReleaser is implemented by operators (and the Matcher) that
// hold poolable scratch buffers.
type ScratchReleaser interface{ ReleaseScratch() }

// ReleaseChainScratch returns every pooled buffer held by the chain's
// operators, unwrapping timing decorators. Call it when a chain is done
// producing answers for the current execution; any answers already
// copied out (TopKPruneOp.TopK copies) stay valid. A released chain can
// be re-executed — operators re-acquire scratch on Open.
func ReleaseChainScratch(ops []Operator) {
	for _, op := range ops {
		for {
			u, ok := op.(interface{ Unwrap() Operator })
			if !ok {
				break
			}
			op = u.Unwrap()
		}
		if r, ok := op.(ScratchReleaser); ok {
			r.ReleaseScratch()
		}
	}
}
