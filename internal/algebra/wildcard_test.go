package algebra

import (
	"testing"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

func TestWildcardMatching(t *testing.T) {
	doc, err := xmldoc.ParseString(`
<article>
  <fm><abs>data mining survey</abs></fm>
  <bdy>
    <sec><p>data mining in practice</p><fig>unrelated chart</fig></sec>
  </bdy>
</article>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc, text.Pipeline{})

	// //article//*[. ftcontains "data mining"]: any descendant element
	// whose subtree contains the phrase.
	q := tpq.MustParse(`//article//*[. ftcontains "data mining"]`)
	m := NewMatcher(ix, q)
	var op Operator = &ScanOp{Ix: ix, Tag: "*"}
	op = &RequiredOp{In: op, Matcher: m}
	for _, u := range m.FTUnits() {
		op = &FTOp{In: op, Matcher: m, Unit: u}
	}
	got := drain(op)
	// fm, abs, bdy, sec, p all contain the phrase (article itself is the
	// pattern root, not the distinguished node, and is excluded as its
	// own proper descendant).
	want := map[string]bool{"fm": true, "abs": true, "bdy": true, "sec": true, "p": true}
	if len(got) != len(want) {
		t.Fatalf("got %d answers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[doc.Tag(a.Node)] {
			t.Errorf("unexpected answer tag %q", doc.Tag(a.Node))
		}
		if a.S <= 0 {
			t.Errorf("no score on %q", doc.Tag(a.Node))
		}
	}
}

func TestWildcardChildStep(t *testing.T) {
	doc, _ := xmldoc.ParseString(`<a><b><c/></b><d><c/></d><c/></a>`)
	ix := index.Build(doc, text.Pipeline{})
	// //a/*/c: c under any single intermediate element.
	q := tpq.MustParse(`//a/*/c`)
	m := NewMatcher(ix, q)
	matched := 0
	for _, e := range ix.Elements("c") {
		if m.MatchRequired(e) {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("matched = %d, want 2 (the direct c child of a fails the depth)", matched)
	}
}
