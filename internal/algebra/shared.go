package algebra

import (
	"math"
	"sync/atomic"
)

// SharedBound is a monotonically tightening score threshold shared by
// the topkPrune operators of concurrently executing plan partitions.
//
// Each worker publishes the primary-scalar value of its k-th best
// fully-scored answer; every worker may prune a candidate whose maximal
// reachable scalar is strictly below the published bound. Soundness
// rests on two facts:
//
//   - the bound only ever increases (Tighten is a CAS-max), and any
//     published value is witnessed by k real answers whose final primary
//     scalar is at least that value — so a candidate strictly below it
//     has at least k answers ranked strictly above and cannot be in the
//     global top k;
//   - a stale (lower) read is merely a looser bound: it prunes less,
//     never more, so racing readers are always safe.
type SharedBound struct {
	bits atomic.Uint64 // math.Float64bits of the current bound
}

// NewSharedBound returns a bound that starts at -Inf (prunes nothing).
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(-1)))
	return b
}

// Load returns the current bound. It may lag behind a concurrent
// Tighten, which is safe: the bound is conservative.
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten raises the bound to v if v is larger; lower values are
// ignored so the bound never loosens.
func (b *SharedBound) Tighten(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
