package algebra

import (
	"testing"

	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

func TestListScanAndUnitFilter(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[price < 2000]`)
	m := NewMatcher(ix, q)
	cars := ix.Elements("car")

	scan := &ListScanOp{IDs: cars}
	filter := &UnitFilterOp{In: scan, Matcher: m, Units: m.RequiredConstraintUnits()}
	got := drain(filter)
	if len(got) != 3 { // the 5000-priced car fails
		t.Fatalf("filtered = %d", len(got))
	}
	if scan.Stats().Out != 4 || filter.Stats().Pruned != 1 {
		t.Errorf("stats: scan %+v filter %+v", scan.Stats(), filter.Stats())
	}
	if scan.Stats().Name != "listscan" {
		t.Errorf("default name = %q", scan.Stats().Name)
	}
	named := &ListScanOp{Name: "twigscan(car)", IDs: nil}
	named.Open()
	if named.Stats().Name != "twigscan(car)" {
		t.Errorf("named = %q", named.Stats().Name)
	}
	if _, ok := named.Next(); ok {
		t.Errorf("empty list scan must end immediately")
	}
}

func TestOperatorStatsAccessors(t *testing.T) {
	ix := dealerIndex(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "best bid"?]]`)
	prof := profile.MustParseProfile(`
vor w: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor k: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
`)
	m := NewMatcher(ix, q)
	var ops []Operator
	var op Operator = &ScanOp{Ix: ix, Tag: "car"}
	ops = append(ops, op)
	op = &RequiredOp{In: op, Matcher: m}
	ops = append(ops, op)
	for _, u := range m.FTUnits() {
		op = &FTOp{In: op, Matcher: m, Unit: u}
		ops = append(ops, op)
	}
	bonus := &BonusOp{In: op, Matcher: m, Units: m.OptionalBonusUnits()}
	op = bonus
	ops = append(ops, op)
	op = &VOROp{In: op, Doc: ix.Document(), Prof: prof}
	ops = append(ops, op)
	op = &KOROp{In: op, Ix: ix, Kor: prof.KORs[0]}
	ops = append(ops, op)
	sortOp := &SortOp{In: op, Ranker: &Ranker{Prof: prof}, Mode: ModeKVS}
	op = sortOp
	ops = append(ops, op)
	prune := &TopKPruneOp{In: op, K: 2, Mode: ModeKVS, Ranker: &Ranker{Prof: prof}, SortedInput: true}
	ops = append(ops, prune)

	drain(prune)
	for _, o := range ops {
		s := o.Stats()
		if s.Name == "" {
			t.Errorf("operator %T has empty stats name", o)
		}
	}
	if bonus.MaxScore() < 0 {
		t.Errorf("bonus MaxScore negative")
	}
	for _, o := range ops {
		if ft, ok := o.(*FTOp); ok && ft.MaxScore() < 0 {
			t.Errorf("FT MaxScore negative")
		}
	}
	if len(prune.TopK()) == 0 {
		t.Errorf("no top-k")
	}
}

func TestMaxKORContributionTightBound(t *testing.T) {
	ix := dealerIndex(t)
	kor := &profile.KOR{Name: "k", Tag: "car", Phrases: []string{"best bid", "NYC"}}
	bound := MaxKORContribution(ix, kor)
	if bound <= 0 || bound > 2 {
		t.Fatalf("bound = %v", bound)
	}
	// The bound dominates every actual contribution.
	for _, c := range ix.Elements("car") {
		if got := KORContribution(ix, kor, c); got > bound+1e-12 {
			t.Errorf("contribution %v exceeds bound %v", got, bound)
		}
	}
	// Weighted rule scales the bound.
	w := &profile.KOR{Name: "k", Tag: "car", Phrases: []string{"best bid"}, Weight: 3}
	if b1, b3 := MaxKORContribution(ix, kor), MaxKORContribution(ix, w); b3 <= b1/2 {
		t.Errorf("weight must scale the bound: %v vs %v", b1, b3)
	}
}

func TestMatcherUpwardAbsoluteRoot(t *testing.T) {
	doc, _ := xmldoc.ParseString(`<a><a><b/></a></a>`)
	ix := index.Build(doc, text.Pipeline{})
	// /a/a/b: only the b whose grandparent is the document root.
	q := tpq.MustParse(`/a/a/b`)
	m := NewMatcher(ix, q)
	bs := ix.Elements("b")
	if len(bs) != 1 || !m.MatchRequired(bs[0]) {
		t.Fatalf("b should match /a/a/b")
	}
	// /a/b: b's parent chain is a/a, so the absolute two-step fails.
	q2 := tpq.MustParse(`/a/b`)
	m2 := NewMatcher(ix, q2)
	if m2.MatchRequired(bs[0]) {
		t.Errorf("b must not match /a/b (parent a is not the root)")
	}
}

func TestVORKeysForNilProfile(t *testing.T) {
	doc, _ := xmldoc.ParseString(`<a><b/></a>`)
	if got := VORKeysFor(doc, nil, doc.Root()); got != nil {
		t.Errorf("nil profile keys = %v", got)
	}
	empty := profile.NewProfile()
	if got := VORKeysFor(doc, empty, doc.Root()); got != nil {
		t.Errorf("empty profile keys = %v", got)
	}
}
