package algebra

import (
	"sort"
	"strings"

	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/xmldoc"
)

// Answer is one distinguished-node candidate flowing through a plan,
// carrying the three ranking components of Section 3.3: the query score
// S, the keyword-OR score K, and the per-VOR keys that define the V
// preference.
type Answer struct {
	Node  xmldoc.NodeID
	S     float64
	K     float64
	VKeys []profile.Key
}

// Operator is a pull-based (pipelined) plan operator.
type Operator interface {
	// Open prepares the operator (and its inputs) for iteration.
	Open()
	// Next produces the next answer; ok is false at end of stream.
	Next() (Answer, bool)
	// Stats returns the operator's counters for experiment reporting.
	Stats() OpStats
}

// OpStats counts an operator's traffic.
type OpStats struct {
	Name   string
	In     int // answers consumed
	Out    int // answers emitted
	Pruned int // answers dropped
	// WallNS is cumulative wall-clock nanoseconds spent inside this
	// operator's Open and Next calls, *inclusive* of its upstream chain
	// (a pull-based Next recurses into its input). Self time is
	// WallNS minus the input operator's WallNS. Zero unless the chain
	// was built with timing enabled (see WithTiming / plan.Options).
	WallNS int64
}

// Kind returns the operator's stable kind — its name up to the first
// parenthesis ("ftjoin(best bid)" → "ftjoin"). Kinds form a small,
// compile-time-enumerable set, which makes them safe metric label
// values where full names (carrying tags and phrases) are not.
func (s OpStats) Kind() string {
	if i := strings.IndexByte(s.Name, '('); i >= 0 {
		return s.Name[:i]
	}
	return s.Name
}

// ScanOp emits every element with the distinguished tag, in document
// order — the index-backed source of Fig. 4's plans.
type ScanOp struct {
	Ix  *index.Index
	Tag string
	// Cancel, when non-nil, lets a context deadline or client
	// disconnect end the scan early (nil is never checked).
	Cancel *CancelCheck

	elems []xmldoc.NodeID
	pos   int
	stats OpStats
}

func (s *ScanOp) Open() {
	s.elems = s.Ix.Elements(s.Tag)
	s.pos = 0
	s.stats = OpStats{Name: "scan(" + s.Tag + ")"}
}

func (s *ScanOp) Next() (Answer, bool) {
	if s.pos >= len(s.elems) || s.Cancel.Stop() {
		return Answer{}, false
	}
	e := s.elems[s.pos]
	s.pos++
	s.stats.In++
	s.stats.Out++
	return Answer{Node: e}, true
}

func (s *ScanOp) Stats() OpStats { return s.stats }

// ListScanOp emits a precomputed candidate list — the source operator of
// twig-filtered plans, where a holistic structural semijoin has already
// produced the distinguished-node bindings.
type ListScanOp struct {
	Name string
	IDs  []xmldoc.NodeID
	// Cancel, when non-nil, lets a context deadline or client
	// disconnect end the scan early (nil is never checked).
	Cancel *CancelCheck

	pos   int
	stats OpStats
}

func (s *ListScanOp) Open() {
	s.pos = 0
	name := s.Name
	if name == "" {
		name = "listscan"
	}
	s.stats = OpStats{Name: name}
}

func (s *ListScanOp) Next() (Answer, bool) {
	if s.pos >= len(s.IDs) || s.Cancel.Stop() {
		return Answer{}, false
	}
	e := s.IDs[s.pos]
	s.pos++
	s.stats.In++
	s.stats.Out++
	return Answer{Node: e}, true
}

func (s *ListScanOp) Stats() OpStats { return s.stats }

// UnitFilterOp drops answers failing any of the given (required) units;
// it is the constraint-only residue of RequiredOp in twig plans.
type UnitFilterOp struct {
	In      Operator
	Matcher *Matcher
	Units   []int

	stats OpStats
}

func (o *UnitFilterOp) Open() {
	o.In.Open()
	o.stats = OpStats{Name: "unitfilter"}
}

func (o *UnitFilterOp) Next() (Answer, bool) {
	for {
		a, ok := o.In.Next()
		if !ok {
			return Answer{}, false
		}
		o.stats.In++
		keep := true
		for _, u := range o.Units {
			if sat, _ := o.Matcher.EvalUnit(u, a.Node); !sat {
				keep = false
				break
			}
		}
		if !keep {
			o.stats.Pruned++
			continue
		}
		o.stats.Out++
		return a, true
	}
}

func (o *UnitFilterOp) Stats() OpStats { return o.stats }

// RequiredOp is the structural semijoin stage: it keeps candidates that
// satisfy the upward skeleton and every required non-FT unit. Structural
// joins are not score contributors (Section 6.2).
type RequiredOp struct {
	In      Operator
	Matcher *Matcher
	// Cancel, when non-nil, aborts the per-candidate match loop early:
	// structural matching is the dominant per-candidate cost, so the
	// checkpoint here bounds abort latency even when the source's
	// stride has not elapsed yet.
	Cancel *CancelCheck

	stats OpStats
}

func (o *RequiredOp) Open() {
	o.In.Open()
	o.stats = OpStats{Name: "required"}
}

func (o *RequiredOp) Next() (Answer, bool) {
	for {
		a, ok := o.In.Next()
		if !ok || o.Cancel.Stop() {
			return Answer{}, false
		}
		o.stats.In++
		if !o.Matcher.MatchRequired(a.Node) {
			o.stats.Pruned++
			continue
		}
		o.stats.Out++
		return a, true
	}
}

func (o *RequiredOp) Stats() OpStats { return o.stats }

// FTOp enforces one full-text unit: a keyword join. Required units
// filter and contribute score; optional units (outer-joins from encoded
// scoping rules) only contribute score.
type FTOp struct {
	In      Operator
	Matcher *Matcher
	Unit    int

	stats OpStats
}

func (o *FTOp) Open() {
	o.In.Open()
	u := o.Matcher.Units()[o.Unit]
	name := "ftjoin(" + u.F.Phrase + ")"
	if u.Optional {
		name = "ftouterjoin(" + u.F.Phrase + ")"
	}
	o.stats = OpStats{Name: name}
}

func (o *FTOp) Next() (Answer, bool) {
	u := o.Matcher.Units()[o.Unit]
	for {
		a, ok := o.In.Next()
		if !ok {
			return Answer{}, false
		}
		o.stats.In++
		sat, score := o.Matcher.EvalUnit(o.Unit, a.Node)
		if !sat && !u.Optional {
			o.stats.Pruned++
			continue
		}
		a.S += score
		o.stats.Out++
		return a, true
	}
}

func (o *FTOp) Stats() OpStats { return o.stats }

// MaxScore returns the operator's maximal S contribution, a summand of
// query-scorebound.
func (o *FTOp) MaxScore() float64 { return o.Matcher.MaxUnitScore(o.Unit) }

// BonusOp scores the optional non-FT units (existence/constraint bonuses
// of encoded scoping rules) in one pass.
type BonusOp struct {
	In      Operator
	Matcher *Matcher
	Units   []int

	stats OpStats
}

func (o *BonusOp) Open() {
	o.In.Open()
	o.stats = OpStats{Name: "bonus"}
}

func (o *BonusOp) Next() (Answer, bool) {
	a, ok := o.In.Next()
	if !ok {
		return Answer{}, false
	}
	o.stats.In++
	for _, u := range o.Units {
		if sat, score := o.Matcher.EvalUnit(u, a.Node); sat {
			a.S += score
		}
	}
	o.stats.Out++
	return a, true
}

func (o *BonusOp) Stats() OpStats { return o.stats }

// MaxScore returns the maximal total bonus.
func (o *BonusOp) MaxScore() float64 {
	t := 0.0
	for _, u := range o.Units {
		t += o.Matcher.MaxUnitScore(u)
	}
	return t
}

// VOROp is Fig. 3's vor operator: it augments answers with their OR
// values (the per-rule keys used by ≺_V comparisons downstream).
type VOROp struct {
	In   Operator
	Doc  *xmldoc.Document
	Prof *profile.Profile

	stats OpStats
}

func (o *VOROp) Open() {
	o.In.Open()
	o.stats = OpStats{Name: "vor"}
}

func (o *VOROp) Next() (Answer, bool) {
	a, ok := o.In.Next()
	if !ok {
		return Answer{}, false
	}
	o.stats.In++
	a.VKeys = VORKeysFor(o.Doc, o.Prof, a.Node)
	o.stats.Out++
	return a, true
}

func (o *VOROp) Stats() OpStats { return o.stats }

// VORKeysFor computes the per-VOR keys of an element.
func VORKeysFor(doc *xmldoc.Document, prof *profile.Profile, e xmldoc.NodeID) []profile.Key {
	if prof == nil || len(prof.VORs) == 0 {
		return nil
	}
	tag := doc.Tag(e)
	lookup := func(attr string) (string, bool) { return doc.DeepValue(e, attr) }
	keys := make([]profile.Key, len(prof.VORs))
	for i, v := range prof.VORs {
		keys[i] = v.KeyFor(tag, lookup)
	}
	return keys
}

// KOROp is Fig. 3's kor operator: it adds one keyword-based OR's score
// contribution to matching answers (implemented as an outer-join — every
// answer passes, matches gain K).
type KOROp struct {
	In  Operator
	Ix  *index.Index
	Kor *profile.KOR

	stats OpStats
}

func (o *KOROp) Open() {
	o.In.Open()
	o.stats = OpStats{Name: "kor(" + o.Kor.Name + ")"}
}

func (o *KOROp) Next() (Answer, bool) {
	a, ok := o.In.Next()
	if !ok {
		return Answer{}, false
	}
	o.stats.In++
	a.K += KORContribution(o.Ix, o.Kor, a.Node)
	o.stats.Out++
	return a, true
}

func (o *KOROp) Stats() OpStats { return o.stats }

// KORContribution computes one KOR's K increment for an element.
func KORContribution(ix *index.Index, kor *profile.KOR, e xmldoc.NodeID) float64 {
	if ix.Document().Tag(e) != kor.Tag {
		return 0
	}
	w := kor.EffectiveWeight()
	total := 0.0
	for _, p := range kor.Phrases {
		total += w * ix.Score(e, p)
	}
	return total
}

// SortOp is Fig. 3's parametric sort: it materializes its input and emits
// it ordered by the Ranker in the given mode ("the sort operator needs to
// sort an input list parametrically").
type SortOp struct {
	In     Operator
	Ranker *Ranker
	Mode   Mode

	buf   []Answer
	pos   int
	stats OpStats
}

func (o *SortOp) Open() {
	o.In.Open()
	o.stats = OpStats{Name: "sort(" + o.Mode.String() + ")"}
	if o.buf == nil {
		o.buf = getAnswerBuf()
	}
	o.buf = o.buf[:0]
	for {
		a, ok := o.In.Next()
		if !ok {
			break
		}
		o.stats.In++
		o.buf = append(o.buf, a)
	}
	r := o.Ranker
	mode := o.Mode
	sort.SliceStable(o.buf, func(i, j int) bool {
		c := r.Compare(&o.buf[i], &o.buf[j], mode)
		if c != 0 {
			return c > 0
		}
		return o.buf[i].Node < o.buf[j].Node
	})
	o.pos = 0
}

func (o *SortOp) Next() (Answer, bool) {
	if o.pos >= len(o.buf) {
		return Answer{}, false
	}
	a := o.buf[o.pos]
	o.pos++
	o.stats.Out++
	return a, true
}

func (o *SortOp) Stats() OpStats { return o.stats }

// ReleaseScratch returns the materialization buffer to the shared pool;
// the next Open re-acquires. Answers already pulled by Next were copied
// out by value, so nothing the consumer holds is invalidated.
func (o *SortOp) ReleaseScratch() {
	if o.buf == nil {
		return
	}
	putAnswerBuf(o.buf)
	o.buf = nil
	o.pos = 0
}
