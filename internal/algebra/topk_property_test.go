package algebra

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/profile"
	"repro/internal/xmldoc"
)

// propProfile has one VOR (lower mileage preferred) so V participates in
// the rank orders under test.
var propProfile = profile.MustParseProfile(`
vor w: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)

// randomAnswerStream fabricates n answers with random S, K and mileage
// (VOR keys computed through the real profile machinery).
func randomAnswerStream(r *rand.Rand, n int, withV bool) []Answer {
	out := make([]Answer, n)
	for i := range out {
		out[i] = Answer{
			Node: xmldoc.NodeID(i),
			S:    float64(r.Intn(20)) / 10,
			K:    float64(r.Intn(20)) / 10,
		}
		if withV {
			mileage := fmt.Sprint(1000 * (1 + r.Intn(50)))
			lookup := func(attr string) (string, bool) {
				if attr == "mileage" {
					return mileage, true
				}
				return "", false
			}
			out[i].VKeys = []profile.Key{propProfile.VORs[0].KeyFor("car", lookup)}
		}
	}
	return out
}

// naiveTopK is the reference: full sort under the ranker, cut at k.
func naiveTopK(answers []Answer, ranker *Ranker, mode Mode, k int) []Answer {
	buf := append([]Answer(nil), answers...)
	sort.SliceStable(buf, func(i, j int) bool {
		c := ranker.Compare(&buf[i], &buf[j], mode)
		if c != 0 {
			return c > 0
		}
		return buf[i].Node < buf[j].Node
	})
	if len(buf) > k {
		buf = buf[:k]
	}
	return buf
}

// TestPropertyTopKPruneMatchesNaive: with zero bounds (no future gains),
// the operator's final list must equal the naive top-k under every mode.
func TestPropertyTopKPruneMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.Intn(60)
		k := 1 + r.Intn(10)
		withV := r.Intn(2) == 0
		answers := randomAnswerStream(r, n, withV)
		prof := propProfile
		if !withV {
			prof = nil
		}
		ranker := &Ranker{Prof: prof}
		for _, mode := range []Mode{ModeS, ModeVS, ModeKVS, ModeVKS, ModeBlend} {
			op := &TopKPruneOp{
				In: &sliceOp{answers: answers}, K: k, Mode: mode, Ranker: ranker,
			}
			drain(op)
			got := op.TopK()
			want := naiveTopK(answers, ranker, mode, k)
			if len(got) != len(want) {
				t.Fatalf("iter %d mode %v: %d vs %d answers", iter, mode, len(got), len(want))
			}
			for i := range want {
				// Rank values must agree pairwise (node identity can
				// differ only between exact ranking ties).
				if got[i].S != want[i].S && mode == ModeS {
					t.Fatalf("iter %d mode %v rank %d: S %v vs %v", iter, mode, i, got[i].S, want[i].S)
				}
				cmp := ranker.Compare(&got[i], &want[i], mode)
				if cmp != 0 {
					t.Fatalf("iter %d mode %v rank %d: got n%d, want n%d (cmp %d)",
						iter, mode, i, got[i].Node, want[i].Node, cmp)
				}
			}
		}
	}
}

// TestPropertyBoundsNeverLoseTopK: with positive bounds the operator may
// keep extra answers in the flow, but everything in the true top-k must
// survive (never be pruned) — the soundness requirement of Section 6.3.
func TestPropertyBoundsNeverLoseTopK(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.Intn(60)
		k := 1 + r.Intn(8)
		answers := randomAnswerStream(r, n, true)
		ranker := &Ranker{Prof: propProfile}
		mode := []Mode{ModeKVS, ModeVKS, ModeBlend}[r.Intn(3)]
		op := &TopKPruneOp{
			In: &sliceOp{answers: answers}, K: k, Mode: mode, Ranker: ranker,
			SBound:   float64(r.Intn(3)) / 2,
			KorBound: float64(r.Intn(3)) / 2,
		}
		survived := map[xmldoc.NodeID]bool{}
		op.Open()
		for {
			a, ok := op.Next()
			if !ok {
				break
			}
			survived[a.Node] = true
		}
		want := naiveTopK(answers, ranker, mode, k)
		for i, w := range want {
			if !survived[w.Node] {
				// The pruned answer might tie exactly with a survivor;
				// only a strict loss is a bug.
				strict := true
				for node := range survived {
					for _, a := range answers {
						if a.Node == node && ranker.Compare(&a, &w, mode) == 0 {
							strict = false
						}
					}
				}
				if strict {
					t.Fatalf("iter %d mode %v: true top-%d member n%d (rank %d) was pruned",
						iter, mode, k, w.Node, i)
				}
			}
		}
	}
}

// TestPropertyInsertKeepsListSorted: the operator's internal list must
// stay sorted by the mode after every insertion pattern.
func TestPropertyInsertKeepsListSorted(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for iter := 0; iter < 300; iter++ {
		answers := randomAnswerStream(r, 1+r.Intn(40), false)
		ranker := &Ranker{}
		mode := []Mode{ModeS, ModeKVS, ModeBlend}[r.Intn(3)]
		op := &TopKPruneOp{
			In: &sliceOp{answers: answers}, K: 1 + r.Intn(6), Mode: mode, Ranker: ranker,
		}
		drain(op)
		list := op.TopK()
		for i := 1; i < len(list); i++ {
			if ranker.Compare(&list[i], &list[i-1], mode) > 0 {
				t.Fatalf("iter %d mode %v: list out of order at %d: %+v", iter, mode, i, list)
			}
		}
	}
}
