package algebra

import "repro/internal/profile"

// Mode selects which ranking components a comparison (or a topkPrune)
// considers — the parametric orders of Section 3.3 / 6.1.
type Mode uint8

const (
	// ModeS ranks by query score only (no ORs in the profile).
	ModeS Mode = iota
	// ModeVS ranks by VOR preference, then query score.
	ModeVS
	// ModeKVS is the paper's default K, V, S.
	ModeKVS
	// ModeVKS is the alternative V, K, S.
	ModeVKS
	// ModeBlend ranks by the combined score K + S with V as tie-break —
	// the weighted fine-tuning of the paper's conclusion (Section 8).
	ModeBlend
)

func (m Mode) String() string {
	switch m {
	case ModeS:
		return "S"
	case ModeVS:
		return "V,S"
	case ModeKVS:
		return "K,V,S"
	case ModeVKS:
		return "V,K,S"
	case ModeBlend:
		return "K+S,V"
	}
	return "?"
}

// ModeForProfile returns the final rank mode a profile calls for.
func ModeForProfile(p *profile.Profile) Mode {
	if p == nil || (len(p.KORs) == 0 && len(p.VORs) == 0) {
		return ModeS
	}
	if p.Rank == profile.Blend {
		return ModeBlend
	}
	if len(p.KORs) == 0 {
		return ModeVS
	}
	if p.Rank == profile.VKS {
		return ModeVKS
	}
	return ModeKVS
}

// Ranker compares answers under a profile's ordering rules.
type Ranker struct {
	Prof *profile.Profile
}

// Compare returns +1 when a ranks strictly before b under the mode, -1
// for the converse, 0 for ties (or V-incomparability, which falls through
// to the next component exactly as Algorithms 2/3 do).
func (r *Ranker) Compare(a, b *Answer, mode Mode) int {
	switch mode {
	case ModeS:
		return cmpFloat(a.S, b.S)
	case ModeVS:
		if c := r.CompareV(a, b); c != 0 {
			return c
		}
		return cmpFloat(a.S, b.S)
	case ModeKVS:
		if c := cmpFloat(a.K, b.K); c != 0 {
			return c
		}
		if c := r.CompareV(a, b); c != 0 {
			return c
		}
		return cmpFloat(a.S, b.S)
	case ModeVKS:
		if c := r.CompareV(a, b); c != 0 {
			return c
		}
		if c := cmpFloat(a.K, b.K); c != 0 {
			return c
		}
		return cmpFloat(a.S, b.S)
	case ModeBlend:
		if c := cmpFloat(a.K+a.S, b.K+b.S); c != 0 {
			return c
		}
		return r.CompareV(a, b)
	}
	return 0
}

// CompareV applies the profile's VORs in priority order (the ≺_V used by
// Algorithm 2); 0 means tie or incomparable.
func (r *Ranker) CompareV(a, b *Answer) int {
	if r.Prof == nil || len(r.Prof.VORs) == 0 || a.VKeys == nil || b.VKeys == nil {
		return 0
	}
	return r.Prof.CompareVORs(a.VKeys, b.VKeys)
}

func cmpFloat(a, b float64) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	}
	return 0
}
