package algebra

import "repro/internal/profile"

// Mode selects which ranking components a comparison (or a topkPrune)
// considers — the parametric orders of Section 3.3 / 6.1.
type Mode uint8

const (
	// ModeS ranks by query score only (no ORs in the profile).
	ModeS Mode = iota
	// ModeVS ranks by VOR preference, then query score.
	ModeVS
	// ModeKVS is the paper's default K, V, S.
	ModeKVS
	// ModeVKS is the alternative V, K, S.
	ModeVKS
	// ModeBlend ranks by the combined score K + S with V as tie-break —
	// the weighted fine-tuning of the paper's conclusion (Section 8).
	ModeBlend
)

func (m Mode) String() string {
	switch m {
	case ModeS:
		return "S"
	case ModeVS:
		return "V,S"
	case ModeKVS:
		return "K,V,S"
	case ModeVKS:
		return "V,K,S"
	case ModeBlend:
		return "K+S,V"
	}
	return "?"
}

// ModeForProfile returns the final rank mode a profile calls for.
func ModeForProfile(p *profile.Profile) Mode {
	if p == nil || (len(p.KORs) == 0 && len(p.VORs) == 0) {
		return ModeS
	}
	if p.Rank == profile.Blend {
		return ModeBlend
	}
	if len(p.KORs) == 0 {
		return ModeVS
	}
	if p.Rank == profile.VKS {
		return ModeVKS
	}
	return ModeKVS
}

// Ranker compares answers under a profile's ordering rules. A Ranker
// built with NewRanker precomputes the VOR application order; the zero
// value (with Prof set) works too, at the cost of recomputing it per
// comparison. Rankers are read-only after construction and safe to share
// across the workers of a parallel execution.
type Ranker struct {
	Prof *profile.Profile

	vorOrder []int // precomputed Prof.VORPriorityOrder, may be nil
}

// NewRanker returns a Ranker with the profile's VOR priority order
// precomputed, so rank comparisons on hot paths (sorts, top-k list
// inserts, parallel merges) do not allocate.
func NewRanker(p *profile.Profile) *Ranker {
	r := &Ranker{Prof: p}
	if p != nil && len(p.VORs) > 0 {
		r.vorOrder = p.VORPriorityOrder()
	}
	return r
}

// Compare returns +1 when a ranks strictly before b under the mode, -1
// for the converse, 0 for ties (or V-incomparability, which falls through
// to the next component exactly as Algorithms 2/3 do).
func (r *Ranker) Compare(a, b *Answer, mode Mode) int {
	switch mode {
	case ModeS:
		return cmpFloat(a.S, b.S)
	case ModeVS:
		if c := r.CompareV(a, b); c != 0 {
			return c
		}
		return cmpFloat(a.S, b.S)
	case ModeKVS:
		if c := cmpFloat(a.K, b.K); c != 0 {
			return c
		}
		if c := r.CompareV(a, b); c != 0 {
			return c
		}
		return cmpFloat(a.S, b.S)
	case ModeVKS:
		if c := r.CompareV(a, b); c != 0 {
			return c
		}
		if c := cmpFloat(a.K, b.K); c != 0 {
			return c
		}
		return cmpFloat(a.S, b.S)
	case ModeBlend:
		if c := cmpFloat(a.K+a.S, b.K+b.S); c != 0 {
			return c
		}
		return r.CompareV(a, b)
	}
	return 0
}

// CompareV compares the answers' VOR keys under the profile's
// deterministic linearization (profile.LinearCompareVORs): a weak order
// that agrees with the rules' genuine partial order ≺_V on every pair
// the rules relate, and resolves incomparable pairs by consistent
// classes. Using the raw partial order here would make the composite
// rank comparator cyclic (partial verdicts mixed with NodeID
// tie-breaks), and sorting with a cyclic comparator yields
// implementation-defined output that can rank a dominated answer above
// its dominator and varies with input partitioning — the linearization
// is what makes sequential results well-defined and parallel execution
// reproduce them exactly. 0 means same class: fall through to the next
// rank component, as Algorithms 2/3 do for ties.
func (r *Ranker) CompareV(a, b *Answer) int {
	if r.Prof == nil || len(r.Prof.VORs) == 0 || a.VKeys == nil || b.VKeys == nil {
		return 0
	}
	order := r.vorOrder
	if order == nil {
		order = r.Prof.VORPriorityOrder()
	}
	for _, idx := range order {
		if c := r.Prof.VORs[idx].LinearCompare(&a.VKeys[idx], &b.VKeys[idx]); c != 0 {
			return c
		}
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	}
	return 0
}
