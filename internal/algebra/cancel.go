package algebra

import (
	"context"
	"time"
)

// cancelStride is how many checkpoint probes elapse between context
// polls. Polling ctx.Err() is an atomic load plus an interface call;
// amortizing it keeps the per-candidate overhead unmeasurable while
// still bounding abort latency to a few dozen candidates.
const cancelStride = 64

// CancelCheck is a cooperative cancellation probe threaded through a
// plan's operator chain. The pull-based pipelines of Fig. 4 move every
// candidate through the source operator exactly once and through each
// prune loop at most once, so placing checkpoints there lets a
// context deadline or client disconnect abort an execution after a
// bounded amount of extra work instead of burning a worker on a scan
// nobody is waiting for.
//
// A CancelCheck is owned by a single operator chain (one goroutine);
// the probe counter is deliberately unsynchronized.
type CancelCheck struct {
	ctx      context.Context
	deadline time.Time
	hasDl    bool
	n        int
	done     bool
}

// NewCancelCheck returns a probe for ctx. A nil ctx (or
// context.Background()) yields a probe that never fires.
func NewCancelCheck(ctx context.Context) *CancelCheck {
	c := &CancelCheck{}
	c.Reset(ctx)
	return c
}

// Reset rebinds the probe to a new context and clears its state, so a
// plan built once can be executed under successive contexts.
func (c *CancelCheck) Reset(ctx context.Context) {
	c.ctx = ctx
	c.n = 0
	c.done = false
	c.deadline, c.hasDl = time.Time{}, false
	if ctx != nil {
		c.deadline, c.hasDl = ctx.Deadline()
	}
}

// Stop reports whether the chain should abort. It polls the context
// every cancelStride calls; once the context is done Stop latches true
// so every downstream operator observes the abort immediately. Nil
// receivers (operators outside any cancellable execution) never stop.
//
// Expired deadlines are detected against the clock, not just via
// ctx.Err(): a cancelled Err() requires the runtime to have run the
// context's timer, and on a single-CPU machine a CPU-bound operator
// loop can starve that timer past its own completion.
func (c *CancelCheck) Stop() bool {
	if c == nil || c.ctx == nil {
		return false
	}
	if c.done {
		return true
	}
	c.n++
	if c.n < cancelStride {
		return false
	}
	c.n = 0
	if c.ctx.Err() != nil || (c.hasDl && !time.Now().Before(c.deadline)) {
		c.done = true
		return true
	}
	return false
}

// Err returns the context's error, nil when the probe never fired or
// has no context.
func (c *CancelCheck) Err() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	return ContextErr(c.ctx)
}

// ContextErr is ctx.Err() with clock-based deadline detection: it
// reports context.DeadlineExceeded as soon as the deadline has passed,
// even if the runtime has not yet fired the context's cancellation
// timer (which a busy loop on a single CPU can delay indefinitely).
// Execution paths must use it for their post-drain abort checks, or a
// cooperatively-stopped chain could be mistaken for a completed one and
// a truncated top k returned as a success.
func ContextErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}
