package algebra

import "time"

// timedOp wraps an operator and accumulates the wall-clock time spent
// inside its Open and Next calls into OpStats.WallNS. The measurement
// is *inclusive* of the wrapped operator's upstream chain — Next pulls
// recurse — so per-operator self time falls out as a subtraction
// between adjacent chain positions, which the consumers (slow-query
// log, /metrics, the Fig. 6/7 harnesses) do at render time.
//
// The wrapper costs two clock reads per Next call, so it is opt-in:
// plan compilation inserts it only when Options.Timing is set (the
// serving layer always sets it; library callers and benchmarks default
// to the bare chain).
type timedOp struct {
	inner Operator
	wall  int64
}

// WithTiming wraps op so its Stats() carry wall time. Wrapping is
// transparent: the returned operator delegates Open/Next and reports
// the inner operator's counters with WallNS filled in.
func WithTiming(op Operator) Operator {
	return &timedOp{inner: op}
}

func (t *timedOp) Open() {
	start := time.Now()
	t.inner.Open()
	t.wall += int64(time.Since(start))
}

func (t *timedOp) Next() (Answer, bool) {
	start := time.Now()
	a, ok := t.inner.Next()
	t.wall += int64(time.Since(start))
	return a, ok
}

func (t *timedOp) Stats() OpStats {
	s := t.inner.Stats()
	s.WallNS = t.wall
	return s
}

// Unwrap returns the wrapped operator (plan compilation needs the
// concrete operator back for final-prune bookkeeping).
func (t *timedOp) Unwrap() Operator { return t.inner }
