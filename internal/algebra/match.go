// Package algebra implements the paper's query algebra (Section 6.2,
// Fig. 3): pipelined operators over answer streams — scans, structural
// and full-text semijoins, the vor and kor operators, parametric sort,
// and the three OR-aware topkPrune algorithms of Section 6.3.
//
// Plans pipeline bindings of the distinguished pattern node ("we wanted
// to choose plans which ... allow the distinguished node bindings to be
// pipelined throughout"). Every other predicate of the extended TPQ is
// enforced as an independent semijoin against the candidate, exactly as
// the paper's Fig. 4 plans do (one join per keyword / structural
// predicate); joins with keywords contribute score, structural semijoins
// do not.
package algebra

import (
	"sort"

	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// UnitKind discriminates semijoin units.
type UnitKind uint8

const (
	// UnitExist requires a binding of the pattern node to exist.
	UnitExist UnitKind = iota
	// UnitConstraint requires a binding satisfying a value constraint.
	UnitConstraint
	// UnitFT requires a binding whose subtree contains a phrase; it is a
	// score contributor.
	UnitFT
)

// Unit is one semijoin obligation of a query, anchored at a pattern node
// and evaluated per distinguished-node candidate.
type Unit struct {
	Kind UnitKind
	Node int // pattern node index
	C    tpq.Constraint
	F    tpq.FTPred
	// Optional units never filter; they add Weight-scaled score when
	// satisfied (the outer-join encoding of scoping rules).
	Optional bool
	Weight   float64
}

// Matcher decomposes a query into units and evaluates them per candidate.
// A Matcher is NOT safe for concurrent use: it reuses internal scratch
// buffers across calls (each plan builds its own Matcher).
type Matcher struct {
	ix    *index.Index
	doc   *xmldoc.Document
	pos   xmldoc.Positions // flat (post, level) arrays; O(1) region tests
	q     *tpq.Query
	paths [][]step // per pattern node: steps from the distinguished node
	units []Unit

	bufA, bufB []xmldoc.NodeID // navigation scratch, swapped per step
}

// step is one navigation step of a pattern path. tag is the target
// pattern node's tag; both directions filter on it.
type step struct {
	down bool
	axis tpq.Axis
	tag  string
}

// NewMatcher prepares unit evaluation for q against the index.
func NewMatcher(ix *index.Index, q *tpq.Query) *Matcher {
	m := &Matcher{ix: ix, doc: ix.Document(), pos: ix.Document().Pos(), q: q}
	m.paths = make([][]step, len(q.Nodes))
	for i := range q.Nodes {
		m.paths[i] = m.pathFromDist(i)
	}
	m.buildUnits()
	return m
}

// pathFromDist computes the navigation steps from the distinguished node
// to pattern node pn: up to the lowest common ancestor, then down.
func (m *Matcher) pathFromDist(pn int) []step {
	distAnc := m.q.Ancestors(m.q.Dist) // root..dist
	pnAnc := m.q.Ancestors(pn)         // root..pn
	onDist := make(map[int]int, len(distAnc))
	for i, n := range distAnc {
		onDist[n] = i
	}
	lcaIdx := 0
	var lcaPn int
	for i, n := range pnAnc {
		if j, ok := onDist[n]; ok {
			lcaIdx, lcaPn = j, i
		} else {
			break
		}
	}
	var steps []step
	// Up from dist to the LCA: each hop crosses the edge above distAnc[i]
	// and must land on an element tagged like the target pattern node.
	for i := len(distAnc) - 1; i > lcaIdx; i-- {
		steps = append(steps, step{
			down: false,
			axis: m.q.Nodes[distAnc[i]].Axis,
			tag:  m.q.Nodes[distAnc[i-1]].Tag,
		})
	}
	// Down from the LCA to pn.
	for i := lcaPn + 1; i < len(pnAnc); i++ {
		n := pnAnc[i]
		steps = append(steps, step{down: true, axis: m.q.Nodes[n].Axis, tag: m.q.Nodes[n].Tag})
	}
	return steps
}

func (m *Matcher) buildUnits() {
	for pn, n := range m.q.Nodes {
		effOpt := m.effectivelyOptional(pn)
		if pn != m.q.Dist {
			m.units = append(m.units, Unit{
				Kind: UnitExist, Node: pn,
				Optional: effOpt,
				Weight:   n.Weight,
			})
		}
		for _, c := range n.Constraints {
			m.units = append(m.units, Unit{
				Kind: UnitConstraint, Node: pn, C: c,
				Optional: c.Optional || effOpt,
				Weight:   c.Weight,
			})
		}
		for _, f := range n.FT {
			w := f.Weight
			if !f.Optional && !effOpt {
				w = 1 // required keyword joins contribute with unit weight
			}
			m.units = append(m.units, Unit{
				Kind: UnitFT, Node: pn, F: f,
				Optional: f.Optional || effOpt,
				Weight:   w,
			})
		}
	}
}

// effectivelyOptional reports whether pn sits on an optional branch
// (itself or any pattern ancestor marked optional).
func (m *Matcher) effectivelyOptional(pn int) bool {
	for n := pn; n != -1; n = m.q.Nodes[n].Parent {
		if m.q.Nodes[n].Optional {
			return true
		}
	}
	return false
}

// Units returns the query's semijoin units. Callers must not modify the
// returned slice.
func (m *Matcher) Units() []Unit { return m.units }

// RequiredUnits returns the indices of filtering units (skeleton +
// required constraints); FT units are excluded — plans enforce those with
// dedicated score-contributing operators.
func (m *Matcher) RequiredUnits() []int {
	var out []int
	for i, u := range m.units {
		if !u.Optional && u.Kind != UnitFT {
			out = append(out, i)
		}
	}
	return out
}

// FTUnits returns the indices of full-text units, required first
// (the score-contributing joins of Fig. 4).
func (m *Matcher) FTUnits() []int {
	var req, opt []int
	for i, u := range m.units {
		if u.Kind != UnitFT {
			continue
		}
		if u.Optional {
			opt = append(opt, i)
		} else {
			req = append(req, i)
		}
	}
	return append(req, opt...)
}

// RequiredConstraintUnits returns the required constraint units only —
// what remains to filter when a structural access path (the twig
// semijoin) has already guaranteed the skeleton.
func (m *Matcher) RequiredConstraintUnits() []int {
	var out []int
	for i, u := range m.units {
		if !u.Optional && u.Kind == UnitConstraint {
			out = append(out, i)
		}
	}
	return out
}

// OptionalBonusUnits returns optional non-FT units (existence and
// constraint bonuses from encoded scoping rules).
func (m *Matcher) OptionalBonusUnits() []int {
	var out []int
	for i, u := range m.units {
		if u.Optional && u.Kind != UnitFT && u.Weight > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Bindings returns the elements pattern node pn can bind to for candidate
// e, following only the tag/axis skeleton along the dist→pn path. The
// returned slice aliases the matcher's scratch buffers and is only valid
// until the next Bindings/EvalUnit/MatchRequired call.
func (m *Matcher) Bindings(pn int, e xmldoc.NodeID) []xmldoc.NodeID {
	if m.bufA == nil {
		m.bufA, m.bufB = getNodeBuf(), getNodeBuf()
	}
	cur := append(m.bufA[:0], e)
	next := m.bufB[:0]
	for _, s := range m.paths[pn] {
		if len(cur) == 0 {
			return nil
		}
		if s.down {
			next = m.down(next, cur, s.tag, s.axis)
		} else {
			next = m.up(next, cur, s.tag, s.axis)
		}
		cur, next = next, cur[:0]
	}
	// Remember the (possibly grown) buffers for reuse.
	m.bufA, m.bufB = cur[:len(cur)], next[:0]
	return cur
}

// ReleaseScratch returns the matcher's navigation buffers to the shared
// pool. The matcher stays usable — Bindings re-acquires lazily — but any
// slice a previous Bindings call returned is invalidated, so release
// only between candidates (in practice: when the owning chain finishes).
func (m *Matcher) ReleaseScratch() {
	if m.bufA == nil {
		return
	}
	putNodeBuf(m.bufA)
	putNodeBuf(m.bufB)
	m.bufA, m.bufB = nil, nil
}

// appendUnique adds n to out unless present. Binding sets per candidate
// are tiny (usually one to a handful of elements), so linear dedup beats
// allocating a map on this hot path.
func appendUnique(out []xmldoc.NodeID, n xmldoc.NodeID) []xmldoc.NodeID {
	for _, x := range out {
		if x == n {
			return out
		}
	}
	return append(out, n)
}

func (m *Matcher) up(out, set []xmldoc.NodeID, tag string, axis tpq.Axis) []xmldoc.NodeID {
	add := func(n xmldoc.NodeID) {
		if n != xmldoc.InvalidNode && (tag == "*" || m.doc.Tag(n) == tag) {
			out = appendUnique(out, n)
		}
	}
	for _, e := range set {
		if axis == tpq.Child {
			add(m.doc.Parent(e))
		} else {
			for p := m.doc.Parent(e); p != xmldoc.InvalidNode; p = m.doc.Parent(p) {
				add(p)
			}
		}
	}
	return out
}

func (m *Matcher) down(out, set []xmldoc.NodeID, tag string, axis tpq.Axis) []xmldoc.NodeID {
	if axis == tpq.Child {
		for _, e := range set {
			for c := m.doc.Node(e).First; c != xmldoc.InvalidNode; c = m.doc.Node(c).Next {
				if m.doc.Kind(c) == xmldoc.Element && (tag == "*" || m.doc.Tag(c) == tag) {
					out = appendUnique(out, c)
				}
			}
		}
		return out
	}
	// Descendant axis: the tag index is preorder-sorted, so e's
	// descendants are the contiguous run (e, post(e)] — found by one
	// binary search, then walked with O(1) flat-array position tests (no
	// Node struct loads on this hot path).
	tagged := m.ix.Elements(tag)
	for _, e := range set {
		post := m.pos.Post[e]
		lo := sort.Search(len(tagged), func(i int) bool { return tagged[i] > e })
		for i := lo; i < len(tagged); i++ {
			d := tagged[i]
			if int32(d) > post {
				break
			}
			out = appendUnique(out, d)
		}
	}
	return out
}

// matchesUpward verifies the skeleton above the distinguished node,
// including the root axis: the pattern root must reach the document root
// when its axis is Child.
func (m *Matcher) matchesUpward(e xmldoc.NodeID) bool {
	root := 0
	bindings := m.Bindings(root, e)
	if m.q.Dist == root {
		bindings = []xmldoc.NodeID{e}
	}
	if len(bindings) == 0 {
		return false
	}
	if m.q.Nodes[root].Axis == tpq.Child {
		docRoot := m.doc.Root()
		for _, b := range bindings {
			if b == docRoot {
				return true
			}
		}
		return false
	}
	return true
}

// EvalUnit evaluates one unit for candidate e: sat reports whether the
// unit holds, score is its contribution (nonzero only for FT units and
// satisfied optional units).
func (m *Matcher) EvalUnit(idx int, e xmldoc.NodeID) (sat bool, score float64) {
	u := &m.units[idx]
	switch u.Kind {
	case UnitExist:
		bs := m.Bindings(u.Node, e)
		if len(bs) == 0 {
			return false, 0
		}
		if u.Optional {
			return true, u.Weight
		}
		return true, 0
	case UnitConstraint:
		for _, b := range m.bindingsOrSelf(u.Node, e) {
			if m.constraintHolds(u.C, b) {
				if u.Optional {
					return true, u.Weight
				}
				return true, 0
			}
		}
		return false, 0
	case UnitFT:
		best := 0.0
		found := false
		for _, b := range m.bindingsOrSelf(u.Node, e) {
			if s := m.ix.Score(b, u.F.Phrase); s > 0 {
				found = true
				if s > best {
					best = s
				}
			}
		}
		if !found {
			return false, 0
		}
		return true, u.Weight * best
	}
	return false, 0
}

func (m *Matcher) bindingsOrSelf(pn int, e xmldoc.NodeID) []xmldoc.NodeID {
	if pn == m.q.Dist {
		return []xmldoc.NodeID{e}
	}
	return m.Bindings(pn, e)
}

func (m *Matcher) constraintHolds(c tpq.Constraint, b xmldoc.NodeID) bool {
	var raw string
	var ok bool
	if c.Attr == "" {
		raw = m.doc.TextContent(b)
		ok = true
	} else {
		raw, ok = m.doc.AttrValue(b, c.Attr)
	}
	if !ok {
		return false
	}
	cmp, ok := c.Val.Compare(raw)
	if !ok {
		return false
	}
	return c.Op.Eval(cmp)
}

// MatchRequired reports whether candidate e passes the upward skeleton
// and every required non-FT unit.
func (m *Matcher) MatchRequired(e xmldoc.NodeID) bool {
	if dt := m.q.Nodes[m.q.Dist].Tag; dt != "*" && m.doc.Tag(e) != dt {
		return false
	}
	if !m.matchesUpward(e) {
		return false
	}
	for _, i := range m.RequiredUnits() {
		if sat, _ := m.EvalUnit(i, e); !sat {
			return false
		}
	}
	return true
}

// MaxUnitScore returns the maximum score unit idx can contribute, the
// building block of query-scorebound (Algorithm 1). For FT units the
// bound is the index's per-(tag, phrase) maximum — the tightest sound
// conservative estimate.
func (m *Matcher) MaxUnitScore(idx int) float64 {
	u := &m.units[idx]
	switch u.Kind {
	case UnitFT:
		tag := m.q.Nodes[u.Node].Tag
		return u.Weight * m.ix.MaxPhraseScore(tag, u.F.Phrase)
	default:
		if u.Optional {
			return u.Weight
		}
	}
	return 0
}

// MaxKORContribution returns the largest K increment a keyword-based OR
// can add to any answer under this index — Algorithm 3's kor-scorebound
// summand, tightened with the index's per-(tag, phrase) maxima.
func MaxKORContribution(ix *index.Index, kor *profile.KOR) float64 {
	total := 0.0
	for _, p := range kor.Phrases {
		total += kor.EffectiveWeight() * ix.MaxPhraseScore(kor.Tag, p)
	}
	return total
}
