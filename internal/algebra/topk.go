package algebra

import "fmt"

// TopKPruneOp is the paper's OR-aware topkPrune operator (Section 6.3).
// It maintains a list of the current top k answers and prunes incoming
// answers that provably cannot reach the final top k, accounting for:
//
//   - SBound (query-scorebound): the maximum S an answer can still gain
//     from score-contributing operators later in the plan (Algorithm 1);
//   - the VOR partial order ≺_V (Algorithm 2);
//   - KorBound (kor-scorebound): the sum of the maximal scores of the
//     keyword-based ORs remaining in the plan (Algorithm 3).
//
// Non-pruned answers are kept in the flow (forwarded downstream); the
// operator's list is exposed for plans whose final operator it is.
//
// Two documented clarifications of the paper's pseudo-code (DESIGN.md §6):
// Algorithm 3 elides the branch for a.K != kth.K when kor-scorebound is
// 0 — we prune when a.K is strictly lower (K is final) and insert when
// strictly higher; and when kor-scorebound > 0 its line 9 would insert
// regardless of K — we insert only answers whose current K beats the kth,
// keeping the list a valid (conservative) threshold while K can still
// grow.
type TopKPruneOp struct {
	In     Operator
	K      int
	Mode   Mode // which components this prune reasons about
	Ranker *Ranker
	// SBound is Algorithm 1's query-scorebound at this plan position.
	SBound float64
	// KorBound is Algorithm 3's kor-scorebound at this plan position.
	KorBound float64
	// SortedInput enables bulk pruning (Section 6.4): on input sorted by
	// the current rank order, the first pruned answer ends the stream.
	SortedInput bool
	// Shared, when non-nil, is the cross-partition threshold of a
	// parallel execution: the operator prunes candidates provably below
	// it and publishes its own k-th fully-scored primary scalar into it.
	// Only modes whose primary rank component is a scalar participate
	// (S for ModeS, K for ModeKVS, K+S for ModeBlend); the V-first modes
	// rank by a partial order that a single float cannot bound.
	Shared *SharedBound
	// Cancel, when non-nil, aborts the prune loop early — the loop can
	// consume arbitrarily many candidates without emitting one, so it
	// needs its own checkpoint for bounded abort latency.
	Cancel *CancelCheck

	list  []Answer
	done  bool
	stats OpStats
}

func (o *TopKPruneOp) Open() {
	o.In.Open()
	if o.list == nil {
		o.list = getAnswerBuf()
	}
	o.list = o.list[:0]
	o.done = false
	name := fmt.Sprintf("topkPrune(k=%d,%s", o.K, o.Mode)
	if o.SBound > 0 {
		name += fmt.Sprintf(",sbound=%.2g", o.SBound)
	}
	if o.KorBound > 0 {
		name += fmt.Sprintf(",korbound=%.2g", o.KorBound)
	}
	if o.SortedInput {
		name += ",sorted"
	}
	o.stats = OpStats{Name: name + ")"}
}

func (o *TopKPruneOp) Next() (Answer, bool) {
	for {
		if o.done {
			return Answer{}, false
		}
		a, ok := o.In.Next()
		if !ok || o.Cancel.Stop() {
			return Answer{}, false
		}
		o.stats.In++
		if o.consider(a) {
			// Inserts only happen on the keep path, so this is the one
			// place the k-th entry can have improved.
			o.publishShared()
			o.stats.Out++
			return a, true
		}
		o.stats.Pruned++
		if o.SortedInput {
			// Bulk pruning: everything after a pruned answer in a sorted
			// stream is at most as good.
			o.done = true
			return Answer{}, false
		}
	}
}

func (o *TopKPruneOp) Stats() OpStats { return o.stats }

// TopK returns the operator's current top-k list, ordered best-first by
// the operator's mode. Valid after the stream is drained.
func (o *TopKPruneOp) TopK() []Answer {
	out := make([]Answer, len(o.list))
	copy(out, o.list)
	return out
}

// ReleaseScratch returns the top-k list to the shared pool; the next
// Open re-acquires. Call only after TopK (which copies) — the operator's
// own list is pool property afterwards.
func (o *TopKPruneOp) ReleaseScratch() {
	if o.list == nil {
		return
	}
	putAnswerBuf(o.list)
	o.list = nil
}

// consider decides an incoming answer's fate: false prunes it, true
// keeps it in the flow (inserting it into the top-k list when warranted).
func (o *TopKPruneOp) consider(a Answer) bool {
	if o.sharedPrune(&a) {
		return false
	}
	if len(o.list) < o.K {
		o.insert(a)
		return true
	}
	kth := &o.list[len(o.list)-1]
	switch o.Mode {
	case ModeS:
		return o.alg1(a, kth)
	case ModeVS:
		return o.alg2(a, kth)
	case ModeKVS:
		return o.alg3(a, kth)
	case ModeVKS:
		return o.algVKS(a, kth)
	case ModeBlend:
		return o.algBlend(a, kth)
	}
	return true
}

// sharedEps pads the shared-bound comparison against floating-point
// association error. The published threshold is a fully-accumulated
// scalar (bonuses added one KOROp at a time), while a candidate's
// maximal reachable value is "partial scalar + remaining-bound sum" —
// the same real quantity evaluated in a different association order,
// which can land a few ulps below it. An answer that exactly ties the
// global k-th must survive to the deterministic merge, so the prune
// only fires when the candidate is below the bound by more than any
// plausible accumulated rounding error. Pruning less is always sound.
const sharedEps = 1e-9

// sharedPrune drops a candidate whose maximal reachable primary scalar
// is strictly below the cross-partition bound. A candidate strictly
// below the bound has at least k answers ranked strictly above it in
// the final order, whatever the lower-priority components say. With
// SortedInput the resulting bulk prune stays sound: the primary scalar
// is non-increasing along the sorted stream while the shared bound only
// tightens, so every later candidate is prunable too.
func (o *TopKPruneOp) sharedPrune(a *Answer) bool {
	if o.Shared == nil {
		return false
	}
	t := o.Shared.Load() - sharedEps
	switch o.Mode {
	case ModeS:
		return a.S+o.SBound < t
	case ModeKVS:
		return a.K+o.KorBound < t
	case ModeBlend:
		return a.K+a.S+o.SBound+o.KorBound < t
	}
	return false
}

// publishShared exports the k-th list entry's primary scalar once it is
// final at this plan position (the operator's remaining bound for that
// scalar is zero, so no later operator can change it). The list is
// ordered with the scalar as its leading key, so k entries witness the
// published value.
func (o *TopKPruneOp) publishShared() {
	if o.Shared == nil || len(o.list) < o.K {
		return
	}
	kth := &o.list[len(o.list)-1]
	switch o.Mode {
	case ModeS:
		if o.SBound == 0 {
			o.Shared.Tighten(kth.S)
		}
	case ModeKVS:
		if o.KorBound == 0 {
			o.Shared.Tighten(kth.K)
		}
	case ModeBlend:
		if o.SBound == 0 && o.KorBound == 0 {
			o.Shared.Tighten(kth.K + kth.S)
		}
	}
}

// algBlend prunes under the combined K + S rank (the Section 8 weighted
// fine-tuning): an answer is dead once even its maximal future gains
// cannot reach the kth combined score.
func (o *TopKPruneOp) algBlend(a Answer, kth *Answer) bool {
	bound := o.SBound + o.KorBound
	cur := a.K + a.S
	kthScore := kth.K + kth.S
	if cur+bound < kthScore {
		return false
	}
	switch {
	case cur > kthScore:
		o.insert(a)
	case cur == kthScore && bound == 0:
		// Scores are final and tied: the V preference decides, as in
		// the final rank order.
		switch o.Ranker.CompareV(&a, kth) {
		case 1:
			o.insert(a)
		case -1:
			return false
		}
	}
	return true
}

// alg1 is Algorithm 1: prune on S with the query-scorebound.
func (o *TopKPruneOp) alg1(a Answer, kth *Answer) bool {
	if a.S+o.SBound < kth.S {
		return false // prune: cannot reach the kth's score
	}
	if a.S > kth.S {
		o.insert(a) // kth falls off the list but stays in the flow
	}
	return true
}

// alg2 is Algorithm 2: V then S. V keys are fixed once the vor operator
// ran, so a ≺_V verdict is final.
func (o *TopKPruneOp) alg2(a Answer, kth *Answer) bool {
	switch o.Ranker.CompareV(&a, kth) {
	case 0: // equal or incomparable w.r.t. ≺_V: fall through to scores
		return o.alg1(a, kth)
	case -1: // kth ≺_V a: a is dominated forever
		return false
	default: // a ≺_V kth: a enters the list; kth stays in the flow
		o.insert(a)
		return true
	}
}

// alg3 is Algorithm 3: K with the kor-scorebound, then V, then S.
func (o *TopKPruneOp) alg3(a Answer, kth *Answer) bool {
	if o.KorBound <= 0 {
		switch {
		case a.K == kth.K:
			return o.alg2(a, kth)
		case a.K > kth.K:
			o.insert(a)
			return true
		default:
			return false // K is final and strictly lower
		}
	}
	if a.K+o.KorBound < kth.K {
		return false // cannot catch up on K
	}
	if a.K > kth.K {
		o.insert(a)
	}
	return true
}

// algVKS handles the alternative V,K,S rank order: the V verdict is
// final (vor ran already), so V-dominated answers are pruned; V-ties
// reduce to K/S reasoning with bounds.
func (o *TopKPruneOp) algVKS(a Answer, kth *Answer) bool {
	switch o.Ranker.CompareV(&a, kth) {
	case -1:
		return false
	case 1:
		o.insert(a)
		return true
	}
	if a.K+o.KorBound < kth.K {
		return false
	}
	if a.K > kth.K || (a.K == kth.K && o.KorBound <= 0 && a.S > kth.S) {
		o.insert(a)
	}
	return true
}

// insert places a into the top-k list at the right position under the
// operator's mode, evicting the current kth when the list is full.
func (o *TopKPruneOp) insert(a Answer) {
	pos := len(o.list)
	for pos > 0 {
		c := o.Ranker.Compare(&a, &o.list[pos-1], o.Mode)
		if c < 0 || (c == 0 && a.Node >= o.list[pos-1].Node) {
			break
		}
		pos--
	}
	if len(o.list) < o.K {
		o.list = append(o.list, Answer{})
	} else if pos == len(o.list) {
		return // full and a sorts after the kth: no change
	}
	copy(o.list[pos+1:], o.list[pos:len(o.list)-1])
	o.list[pos] = a
}
