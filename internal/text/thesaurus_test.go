package text

import (
	"reflect"
	"testing"
)

func TestThesaurusBasics(t *testing.T) {
	th := NewThesaurus()
	th.Add("data mining", "knowledge discovery", "pattern mining")
	th.Add("Data Mining", "knowledge discovery") // duplicate, case-folded
	got := th.Synonyms("DATA  MINING")           // whitespace + case normalized
	want := []string{"knowledge discovery", "pattern mining"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Synonyms = %v", got)
	}
	if th.Len() != 1 {
		t.Errorf("Len = %d", th.Len())
	}
	if got := th.Synonyms("unknown"); got != nil {
		t.Errorf("unknown phrase: %v", got)
	}
	// Self-synonyms are dropped.
	th.Add("car", "car", "automobile")
	if got := th.Synonyms("car"); !reflect.DeepEqual(got, []string{"automobile"}) {
		t.Errorf("self-synonym kept: %v", got)
	}
	var nilTh *Thesaurus
	if nilTh.Synonyms("x") != nil {
		t.Errorf("nil thesaurus must be silent")
	}
}

func TestParseThesaurus(t *testing.T) {
	th, err := ParseThesaurus(`
# comment
data mining = knowledge discovery, pattern mining
car = automobile   # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if th.Len() != 2 {
		t.Fatalf("Len = %d", th.Len())
	}
	if got := th.Phrases(); !reflect.DeepEqual(got, []string{"car", "data mining"}) {
		t.Errorf("Phrases = %v", got)
	}
}

func TestParseThesaurusErrors(t *testing.T) {
	for _, bad := range []string{
		`no equals sign`,
		`= missing phrase`,
		`phrase = `,
	} {
		if _, err := ParseThesaurus(bad); err == nil {
			t.Errorf("ParseThesaurus(%q) should fail", bad)
		}
	}
}
