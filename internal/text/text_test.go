package text

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	p := Pipeline{}
	toks := p.Tokenize("Good condition, low-mileage! NYC 2001")
	got := make([]string, len(toks))
	for i, tk := range toks {
		got[i] = tk.Term
	}
	want := []string{"good", "condition", "low", "mileage", "nyc", "2001"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i, tk := range toks {
		if tk.Pos != i {
			t.Errorf("token %d has Pos %d", i, tk.Pos)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	p := Pipeline{}
	s := "  hello,  world "
	toks := p.Tokenize(s)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if s[toks[0].Start:toks[0].Start+len(toks[0].Raw)] != "hello" {
		t.Errorf("offset 0 wrong: %+v", toks[0])
	}
	if s[toks[1].Start:toks[1].Start+len(toks[1].Raw)] != "world" {
		t.Errorf("offset 1 wrong: %+v", toks[1])
	}
}

func TestTokenizeEmpty(t *testing.T) {
	p := Pipeline{}
	if toks := p.Tokenize(""); len(toks) != 0 {
		t.Errorf("empty input: %v", toks)
	}
	if toks := p.Tokenize("... !!! ---"); len(toks) != 0 {
		t.Errorf("punctuation only: %v", toks)
	}
}

func TestStopwords(t *testing.T) {
	p := Pipeline{DropStopwords: true}
	got := p.Terms("the car is in a good condition")
	want := []string{"car", "good", "condition"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
	if !IsStopword("the") || IsStopword("car") {
		t.Errorf("IsStopword misclassifies")
	}
}

func TestPorterStemKnownPairs(t *testing.T) {
	// Pairs from Porter's published vocabulary.
	pairs := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		"mining":       "mine",
		"association":  "associ",
	}
	for in, want := range pairs {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"a", "be", "", "x9", "2001", "café"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	p := DefaultPipeline
	txt := "It is in good condition as I was the only driver. I used it in NYC."
	cases := []struct {
		phrase string
		want   bool
	}{
		{"good condition", true},
		{"Good Condition", true}, // case folding
		{"condition good", false},
		{"only driver", true},
		{"nyc", true},
		{"low mileage", false},
		{"", false},
	}
	for _, c := range cases {
		if got := p.ContainsPhrase(txt, c.phrase); got != c.want {
			t.Errorf("ContainsPhrase(%q) = %v, want %v", c.phrase, got, c.want)
		}
	}
}

func TestContainsPhraseStemming(t *testing.T) {
	p := Pipeline{Stem: true}
	if !p.ContainsPhrase("mining associations in databases", "association mining") == false {
		// "association mining" is not contiguous in that order; sanity only.
		t.Log("order matters for phrases")
	}
	if !p.ContainsPhrase("we studied data mining extensively", "data mine") {
		t.Errorf("stemming should match mining ~ mine")
	}
	np := Pipeline{Stem: false}
	if np.ContainsPhrase("we studied data mining extensively", "data mine") {
		t.Errorf("without stemming, mine != mining")
	}
}

// TestPropertyStemIdempotentOnOutput: stemming twice equals stemming once
// for typical English word shapes. (True Porter is not idempotent on all
// strings; we check on realistic inputs used by the system.)
func TestPropertyTokenizeStable(t *testing.T) {
	f := func(s string) bool {
		p := Pipeline{}
		a := p.Terms(s)
		b := p.Terms(strings.Join(a, " "))
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPhraseSelfContainment: any window of a text's tokens is a
// phrase that ContainsPhrase finds in that text.
func TestPropertyPhraseSelfContainment(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	words := []string{"car", "red", "mileage", "power", "best", "bid",
		"good", "condition", "seller", "auction", "price"}
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(12)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = words[r.Intn(len(words))]
		}
		txt := strings.Join(toks, " ")
		lo := r.Intn(n)
		hi := lo + 1 + r.Intn(n-lo)
		phrase := strings.Join(toks[lo:hi], " ")
		if !DefaultPipeline.ContainsPhrase(txt, phrase) {
			t.Fatalf("text %q must contain its own window %q", txt, phrase)
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	s := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 50)
	p := DefaultPipeline
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Tokenize(s)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "conditioning", "authorization",
		"mileage", "personalization", "effectiveness"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
