// Package text implements the full-text pipeline for PIMENTO: a Unicode-
// aware tokenizer, lower-casing, an English stopword list, the Porter
// stemming algorithm, and phrase normalization. Section 7.1 of the paper
// reports that stemming and case folding were considered when matching
// query keywords against the INEX collection; both are implemented here
// and can be toggled per pipeline.
package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single token occurrence inside a piece of text.
type Token struct {
	Term  string // normalized term (lower-cased, optionally stemmed)
	Raw   string // the raw surface form
	Pos   int    // token ordinal within the tokenized text, starting at 0
	Start int    // byte offset of the raw token in the input
}

// Pipeline configures text normalization. The zero value lower-cases only.
type Pipeline struct {
	// Stem applies Porter stemming to each token.
	Stem bool
	// DropStopwords removes common English stopwords.
	DropStopwords bool
}

// DefaultPipeline is the configuration used by the engine: case folding
// and stemming, with stopwords kept (keyword predicates in the paper such
// as "best bid" contain function words that matter for phrase matching).
var DefaultPipeline = Pipeline{Stem: true}

// Tokenize splits s into normalized tokens. Tokens are maximal runs of
// letters and digits; everything else separates tokens.
func (p Pipeline) Tokenize(s string) []Token {
	var out []Token
	pos := 0
	i := 0
	for i < len(s) {
		r, size := rune(s[i]), 1
		if r >= 0x80 {
			r, size = decodeRune(s[i:])
		}
		if !isTokenRune(r) {
			i += size
			continue
		}
		start := i
		for i < len(s) {
			r, size = rune(s[i]), 1
			if r >= 0x80 {
				r, size = decodeRune(s[i:])
			}
			if !isTokenRune(r) {
				break
			}
			i += size
		}
		raw := s[start:i]
		term := strings.ToLower(raw)
		if p.DropStopwords && stopwords[term] {
			continue
		}
		if p.Stem {
			term = Stem(term)
		}
		out = append(out, Token{Term: term, Raw: raw, Pos: pos, Start: start})
		pos++
	}
	return out
}

// Terms returns just the normalized term strings of s.
func (p Pipeline) Terms(s string) []string {
	toks := p.Tokenize(s)
	terms := make([]string, len(toks))
	for i, t := range toks {
		terms[i] = t.Term
	}
	return terms
}

// NormalizePhrase normalizes a query phrase ("Good Condition") into its
// term sequence under this pipeline, for direct comparison with indexed
// tokens.
func (p Pipeline) NormalizePhrase(phrase string) []string {
	return p.Terms(phrase)
}

// ContainsPhrase reports whether the normalized tokens of text contain the
// normalized phrase as a contiguous subsequence. This is the naive
// reference used in tests and on small documents; the index package
// provides the fast path.
func (p Pipeline) ContainsPhrase(text, phrase string) bool {
	ph := p.NormalizePhrase(phrase)
	if len(ph) == 0 {
		return false
	}
	toks := p.Terms(text)
	return containsSubsequence(toks, ph)
}

func containsSubsequence(hay, needle []string) bool {
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j, n := range needle {
			if hay[i+j] != n {
				continue outer
			}
		}
		return true
	}
	return false
}

func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// decodeRune decodes the first rune of s (ASCII is fast-pathed by the
// callers; this handles the multi-byte tail).
func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

// stopwords is a compact English stopword list (SMART subset).
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// IsStopword reports whether the lower-cased term is in the stopword list.
func IsStopword(term string) bool { return stopwords[term] }
