package text

import (
	"fmt"
	"sort"
	"strings"
)

// Thesaurus maps phrases to synonym phrases for query expansion.
// Section 7.1 of the paper notes "We did not consider thesauri or
// ontologies to expand the set of keywords included in the query";
// this type makes that expansion available as an opt-in extension —
// synonyms enter the query as optional, down-weighted predicates so
// exact matches always rank at least as high.
type Thesaurus struct {
	syn map[string][]string
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{syn: make(map[string][]string)}
}

// Add registers synonyms for a phrase (one direction; call twice for a
// symmetric pair). Phrases are matched case-insensitively.
func (t *Thesaurus) Add(phrase string, synonyms ...string) {
	key := normPhrase(phrase)
	for _, s := range synonyms {
		s = strings.Join(strings.Fields(s), " ")
		if s == "" || normPhrase(s) == key {
			continue
		}
		dup := false
		for _, have := range t.syn[key] {
			if normPhrase(have) == normPhrase(s) {
				dup = true
			}
		}
		if !dup {
			t.syn[key] = append(t.syn[key], s)
		}
	}
}

// Synonyms returns the synonyms registered for phrase (nil if none).
func (t *Thesaurus) Synonyms(phrase string) []string {
	if t == nil {
		return nil
	}
	return t.syn[normPhrase(phrase)]
}

// Len returns the number of phrases with synonyms.
func (t *Thesaurus) Len() int { return len(t.syn) }

// Phrases returns the registered source phrases, sorted.
func (t *Thesaurus) Phrases() []string {
	out := make([]string, 0, len(t.syn))
	for p := range t.syn {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func normPhrase(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

// ParseThesaurus reads a small line-based format:
//
//	data mining = knowledge discovery, pattern mining
//	car = automobile
//
// '#' starts a comment.
func ParseThesaurus(src string) (*Thesaurus, error) {
	t := NewThesaurus()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("text: thesaurus line %d: want 'phrase = syn, syn'", lineNo+1)
		}
		phrase := strings.TrimSpace(line[:eq])
		if phrase == "" {
			return nil, fmt.Errorf("text: thesaurus line %d: empty phrase", lineNo+1)
		}
		var syns []string
		for _, s := range strings.Split(line[eq+1:], ",") {
			if s = strings.TrimSpace(s); s != "" {
				syns = append(syns, s)
			}
		}
		if len(syns) == 0 {
			return nil, fmt.Errorf("text: thesaurus line %d: no synonyms", lineNo+1)
		}
		t.Add(phrase, syns...)
	}
	return t, nil
}
