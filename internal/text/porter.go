package text

// Stem applies the Porter stemming algorithm (M.F. Porter, "An algorithm
// for suffix stripping", Program 1980) to a lower-cased English word and
// returns its stem. Words of length <= 2 are returned unchanged, per the
// original algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	for _, c := range w {
		if c < 'a' || c > 'z' {
			// Non-ASCII-lowercase input (digits, accents): leave as is.
			return word
		}
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] is a consonant in Porter's sense.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w[:len].
func measure(w []byte) int {
	n := len(w)
	m := 0
	i := 0
	// skip initial consonants
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		// in vowel run
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// cvc reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func cvc(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceIf replaces suffix s with r when the stem measure condition holds.
func replaceIf(w []byte, s, r string, cond func(stem []byte) bool) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if cond != nil && !cond(stem) {
		return w, true // suffix matched but condition failed: stop trying
	}
	out := make([]byte, 0, len(stem)+len(r))
	out = append(out, stem...)
	out = append(out, r...)
	return out, true
}

func mGreater(k int) func([]byte) bool {
	return func(stem []byte) bool { return measure(stem) > k }
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && cvc(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		out := make([]byte, len(w))
		copy(out, w)
		out[len(out)-1] = 'i'
		return out
	}
	return w
}

var step2Rules = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		if out, matched := replaceIf(w, rule.s, rule.r, mGreater(0)); matched {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		if out, matched := replaceIf(w, rule.s, rule.r, mGreater(0)); matched {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			continue // handled below
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	// (m>1 and (*S or *T)) ION
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if measure(stem) > 1 && len(stem) > 0 &&
			(stem[len(stem)-1] == 's' || stem[len(stem)-1] == 't') {
			return stem
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !cvc(stem)) {
			return stem
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
