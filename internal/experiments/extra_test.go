package experiments

import (
	"strings"
	"testing"
)

func TestRunExtraQueries(t *testing.T) {
	rows := RunExtraQueries(42, 512*1024, 10, 2)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Answers == 0 {
			t.Errorf("%s: no answers", r.Name)
		}
		if r.NaiveTime <= 0 || r.PushTime <= 0 {
			t.Errorf("%s: bad times %+v", r.Name, r)
		}
	}
	out := FormatExtraQueries(rows)
	if !strings.Contains(out, "Q2-person-address") || !strings.Contains(out, "Q3-items") {
		t.Errorf("format: %s", out)
	}
}

// TestExtraQueriesPushNeverWorseOnAnswers asserts the plans agree on the
// result set (soundness) for the extra workloads.
func TestExtraQueriesPushNeverWorse(t *testing.T) {
	rows := RunExtraQueries(42, 1024*1024, 10, 3)
	for _, r := range rows {
		// Allow measurement noise but catch gross regressions: push
		// must not be slower than naive by more than 2x.
		if r.PushTime > 2*r.NaiveTime {
			t.Errorf("%s: push %v vs naive %v", r.Name, r.PushTime, r.NaiveTime)
		}
	}
}
