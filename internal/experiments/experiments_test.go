package experiments

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

func TestRunFig6Quick(t *testing.T) {
	rows := RunFig6(Fig6Config{
		Seed:   42,
		Sizes:  []int{64 * 1024, 128 * 1024},
		MaxKOR: 2,
		Trials: 1,
	})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Time <= 0 {
			t.Errorf("non-positive time: %+v", r)
		}
		if r.Answers == 0 {
			t.Errorf("no answers: %+v", r)
		}
	}
	out := FormatFig6(rows)
	for _, frag := range []string{"64K", "128K", "#KORs=1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("format missing %q:\n%s", frag, out)
		}
	}
}

func TestRunFig7Quick(t *testing.T) {
	rows := RunFig7(Fig7Config{
		Seed:      42,
		SizeBytes: 256 * 1024,
		MaxKOR:    2,
		Trials:    1,
	})
	if len(rows) != len(plan.Strategies)*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All plans agree on the answer count (they compute the same top-k).
	byKORs := map[int]int{}
	for _, r := range rows {
		if prev, ok := byKORs[r.NumKORs]; ok && prev != r.Answers {
			t.Errorf("plans disagree on answers for kors=%d: %d vs %d",
				r.NumKORs, prev, r.Answers)
		}
		byKORs[r.NumKORs] = r.Answers
	}
	out := FormatFig7(rows)
	for _, frag := range []string{"NtpkP", "PtpkP", "S-ILtpkP"} {
		if !strings.Contains(out, frag) {
			t.Errorf("format missing %q:\n%s", frag, out)
		}
	}
}

func TestPushPrunesAtScale(t *testing.T) {
	rows := RunFig7(Fig7Config{
		Seed:      42,
		SizeBytes: 512 * 1024,
		MaxKOR:    4,
		Trials:    1,
	})
	var naive, push Fig7Row
	for _, r := range rows {
		if r.NumKORs != 4 {
			continue
		}
		switch r.Strategy {
		case plan.Naive:
			naive = r
		case plan.Push:
			push = r
		}
	}
	if push.Pruned <= naive.Pruned {
		t.Errorf("push pruned %d, naive %d: pushing must prune more",
			push.Pruned, naive.Pruned)
	}
}

func TestRunAblations(t *testing.T) {
	rows := RunAblations(42, 128*1024, 5, 1)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Time <= 0 {
			t.Errorf("bad time: %+v", r)
		}
	}
	for _, want := range []string{"push/kor-best-first", "push/kor-worst-first", "push/plain", "push/deep", "push/twig-access", "push/access-scan", "push/access-twigjoin"} {
		if !names[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
	out := FormatAblations(rows)
	if !strings.Contains(out, "push/deep") {
		t.Errorf("format output:\n%s", out)
	}
}
