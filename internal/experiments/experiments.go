// Package experiments regenerates the paper's evaluation artifacts:
// Table 1 (INEX effectiveness, via internal/inex), Fig. 6 (PushtopKPrune
// query time vs document size and #KORs) and Fig. 7 (the four plans of
// Section 7.2 on a 10 MB document), plus the ablations DESIGN.md calls
// out (KOR application order, deep pushing, bound tightness).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// Fig6Row is one bar of Fig. 6: query time for PushtopKPrune at one
// document size and KOR count.
type Fig6Row struct {
	SizeBytes int
	SizeLabel string
	NumKORs   int
	Time      time.Duration
	Pruned    int
	Answers   int // matching candidates (query selectivity context)
	// Ops is the per-operator time breakdown of one profiled execution
	// (a separate run with plan timing enabled, so the best-of-trials
	// wall time above stays free of clock-read overhead). It is the
	// same OpStats.WallNS data /metrics and the slow-query log consume.
	Ops []OpTime
}

// OpTime is one operator kind's share of a profiled execution: self
// time (inclusive wall time minus the upstream operator's) plus the
// answer traffic, aggregated over operators of the same kind.
type OpTime struct {
	Kind   string
	Self   time.Duration
	In     int
	Out    int
	Pruned int
}

// opBreakdown converts a timed chain's inclusive WallNS measurements
// into per-kind self times. Stats arrive in chain order (source
// first), each operator's wall time including its upstream, so self
// time is the adjacent difference — clamped at zero against scheduler
// noise in parallel merges.
func opBreakdown(stats []algebra.OpStats) []OpTime {
	var order []string
	byKind := map[string]*OpTime{}
	var prev int64
	for _, s := range stats {
		self := s.WallNS - prev
		prev = s.WallNS
		if self < 0 {
			self = 0
		}
		k := s.Kind()
		o := byKind[k]
		if o == nil {
			o = &OpTime{Kind: k}
			byKind[k] = o
			order = append(order, k)
		}
		o.Self += time.Duration(self)
		o.In += s.In
		o.Out += s.Out
		o.Pruned += s.Pruned
	}
	out := make([]OpTime, len(order))
	for i, k := range order {
		out[i] = *byKind[k]
	}
	return out
}

// Fig6Config tunes the Fig. 6 sweep; zero values give the paper's setup.
type Fig6Config struct {
	Seed   int64
	Sizes  []int // defaults to xmark.PaperSizes
	MaxKOR int   // defaults to 4
	K      int   // defaults to 10
	Trials int   // timing repetitions; defaults to 3
	// Parallelism is plan.Options.Parallelism for every timed run
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
	// Access is plan.Options.AccessPath for every timed run
	// (zero value: plan.AccessAuto).
	Access plan.AccessPath
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Sizes == nil {
		c.Sizes = xmark.PaperSizes
	}
	if c.MaxKOR == 0 {
		c.MaxKOR = 4
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// RunFig6 reproduces Fig. 6: the Fig. 5 query under the Push plan, for
// each document size and 1..MaxKOR keyword ordering rules. Index build
// time is excluded (the paper measures query response time).
func RunFig6(cfg Fig6Config) []Fig6Row {
	cfg = cfg.withDefaults()
	var rows []Fig6Row
	for _, size := range cfg.Sizes {
		doc := xmark.GenerateSized(xmark.Config{Seed: cfg.Seed}, size)
		ix := index.Build(doc, text.Pipeline{})
		for n := 1; n <= cfg.MaxKOR; n++ {
			prof := workload.Fig5Profile(n)
			row := timePlanOpts(ix, prof,
				plan.Options{Strategy: plan.Push, Parallelism: cfg.Parallelism, AccessPath: cfg.Access},
				cfg.K, cfg.Trials)
			row.SizeBytes = size
			row.SizeLabel = xmark.SizeLabel(size)
			row.NumKORs = n
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig7Row is one bar of Fig. 7: run time of one plan strategy with one
// KOR count on the 10 MB document.
type Fig7Row struct {
	Strategy plan.Strategy
	NumKORs  int
	Time     time.Duration
	Pruned   int
	Answers  int
	Ops      []OpTime // per-operator breakdown (see Fig6Row.Ops)
}

// Fig7Config tunes the Fig. 7 comparison.
type Fig7Config struct {
	Seed      int64
	SizeBytes int // defaults to 10 MB
	MaxKOR    int // defaults to 4
	K         int // defaults to 10
	Trials    int // defaults to 3
	// Parallelism is plan.Options.Parallelism for every timed run.
	Parallelism int
	// Access is plan.Options.AccessPath for every timed run.
	Access plan.AccessPath
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 10 * 1024 * 1024
	}
	if c.MaxKOR == 0 {
		c.MaxKOR = 4
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// RunFig7 reproduces Fig. 7: NtpkP, NS-ILtpkP, S-ILtpkP and PtpkP on one
// large document for 1..MaxKOR keyword ordering rules.
func RunFig7(cfg Fig7Config) []Fig7Row {
	cfg = cfg.withDefaults()
	doc := xmark.GenerateSized(xmark.Config{Seed: cfg.Seed}, cfg.SizeBytes)
	ix := index.Build(doc, text.Pipeline{})
	var rows []Fig7Row
	for _, strat := range plan.Strategies {
		for n := 1; n <= cfg.MaxKOR; n++ {
			prof := workload.Fig5Profile(n)
			r := timePlanOpts(ix, prof,
				plan.Options{Strategy: strat, Parallelism: cfg.Parallelism, AccessPath: cfg.Access},
				cfg.K, cfg.Trials)
			rows = append(rows, Fig7Row{
				Strategy: strat, NumKORs: n,
				Time: r.Time, Pruned: r.Pruned, Answers: r.Answers, Ops: r.Ops,
			})
		}
	}
	return rows
}

// timePlanOpts executes the Fig. 5 query under one plan configuration,
// reporting the best-of-trials wall time (warm index, like the paper's
// repeated runs).
func timePlanOpts(ix *index.Index, prof *profile.Profile, opts plan.Options, k, trials int) Fig6Row {
	q := workload.Fig5Query()
	var best time.Duration
	var pruned, answers int
	for t := 0; t < trials; t++ {
		p, err := plan.BuildWith(ix, q, prof, k, opts)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res := p.Execute()
		el := time.Since(start)
		if t == 0 || el < best {
			best = el
		}
		pruned = p.TotalPruned()
		answers = len(res)
	}

	// One extra profiled execution with operator timing enabled — kept
	// out of the timed trials so the two clock reads per pull never
	// skew the reported wall time.
	profiled := opts
	profiled.Timing = true
	var ops []OpTime
	if p, err := plan.BuildWith(ix, q, prof, k, profiled); err == nil {
		p.Execute()
		ops = opBreakdown(p.Stats())
	}
	return Fig6Row{Time: best, Pruned: pruned, Answers: answers, Ops: ops}
}

// FormatOpBreakdown renders one row's per-operator profile: where the
// execution spent its time, kind by kind.
func FormatOpBreakdown(label string, ops []OpTime) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Operator breakdown — %s\n", label)
	sb.WriteString("Operator      self(ms)        in       out    pruned\n")
	var total time.Duration
	for _, o := range ops {
		total += o.Self
		fmt.Fprintf(&sb, "%-12s  %8.3f  %8d  %8d  %8d\n",
			o.Kind, float64(o.Self.Microseconds())/1000, o.In, o.Out, o.Pruned)
	}
	fmt.Fprintf(&sb, "%-12s  %8.3f\n", "total", float64(total.Microseconds())/1000)
	return sb.String()
}

// ExtraQueryRow compares Naive and Push on one of Section 7.2's "two
// other queries".
type ExtraQueryRow struct {
	Name      string
	NaiveTime time.Duration
	PushTime  time.Duration
	Answers   int
}

// RunExtraQueries measures the additional workloads the paper used to
// confirm "PushtopKPrune never does worse than Naive".
func RunExtraQueries(seed int64, sizeBytes, k, trials int) []ExtraQueryRow {
	if sizeBytes == 0 {
		sizeBytes = 5*1024*1024 + 700*1024
	}
	if k == 0 {
		k = 10
	}
	if trials == 0 {
		trials = 3
	}
	doc := xmark.GenerateSized(xmark.Config{Seed: seed}, sizeBytes)
	ix := index.Build(doc, text.Pipeline{})
	var rows []ExtraQueryRow
	for _, w := range workload.ExtraQueries() {
		row := ExtraQueryRow{Name: w.Name}
		for t := 0; t < trials; t++ {
			for _, strat := range []plan.Strategy{plan.Naive, plan.Push} {
				p, err := plan.Build(ix, w.Query, w.Profile, k, strat)
				if err != nil {
					panic(err)
				}
				start := time.Now()
				res := p.Execute()
				el := time.Since(start)
				switch strat {
				case plan.Naive:
					if t == 0 || el < row.NaiveTime {
						row.NaiveTime = el
					}
				case plan.Push:
					if t == 0 || el < row.PushTime {
						row.PushTime = el
					}
				}
				row.Answers = len(res)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatExtraQueries renders the comparison.
func FormatExtraQueries(rows []ExtraQueryRow) string {
	var sb strings.Builder
	sb.WriteString("Other queries (Section 7.2): Push never does worse than Naive\n")
	sb.WriteString("Query               naive(ms)  push(ms)  answers\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s  %9.2f  %8.2f  %d\n", r.Name,
			float64(r.NaiveTime.Microseconds())/1000,
			float64(r.PushTime.Microseconds())/1000, r.Answers)
	}
	return sb.String()
}

// AblationRow is one measurement of the KOR-ordering / deep-push
// ablations.
type AblationRow struct {
	Name    string
	NumKORs int
	Time    time.Duration
	Pruned  int
}

// RunAblations operationalizes Section 7.2's closing observations:
// applying the highest-contribution KOR first vs last, and pushing
// prunes between the score-contributing joins (PushDeep) vs the plain
// Push plan.
func RunAblations(seed int64, sizeBytes, k, trials int) []AblationRow {
	if sizeBytes == 0 {
		sizeBytes = 1024 * 1024
	}
	if k == 0 {
		k = 10
	}
	if trials == 0 {
		trials = 3
	}
	doc := xmark.GenerateSized(xmark.Config{Seed: seed}, sizeBytes)
	ix := index.Build(doc, text.Pipeline{})
	var rows []AblationRow

	// KOR order: best-first (by actual max contribution) vs worst-first.
	base := workload.Fig5Profile(4)
	kors := append([]*profile.KOR(nil), base.KORs...)
	sort.SliceStable(kors, func(i, j int) bool {
		return algebra.MaxKORContribution(ix, kors[i]) > algebra.MaxKORContribution(ix, kors[j])
	})
	bestFirst := *base
	bestFirst.KORs = reprioritize(kors)
	worst := make([]*profile.KOR, len(kors))
	for i := range kors {
		worst[i] = kors[len(kors)-1-i]
	}
	worstFirst := *base
	worstFirst.KORs = reprioritize(worst)

	for _, c := range []struct {
		name string
		prof *profile.Profile
		opts plan.Options
	}{
		{"push/kor-best-first", &bestFirst, plan.Options{Strategy: plan.Push}},
		{"push/kor-worst-first", &worstFirst, plan.Options{Strategy: plan.Push}},
		{"push/plain", base, plan.Options{Strategy: plan.Push}},
		{"push/deep", base, plan.Options{Strategy: plan.PushDeep}},
		{"push/twig-access", base, plan.Options{Strategy: plan.Push, TwigAccess: true}},
		{"push/access-scan", base, plan.Options{Strategy: plan.Push, AccessPath: plan.AccessScan}},
		{"push/access-twigjoin", base, plan.Options{Strategy: plan.Push, AccessPath: plan.AccessTwigJoin}},
	} {
		r := timePlanOpts(ix, c.prof, c.opts, k, trials)
		rows = append(rows, AblationRow{Name: c.name, NumKORs: 4, Time: r.Time, Pruned: r.Pruned})
	}
	return rows
}

// ParallelRow is one measurement of the parallel-execution sweep: the
// Push plan on the Fig. 5 workload at a fixed worker count.
type ParallelRow struct {
	Workers int
	Time    time.Duration
	Pruned  int
	Answers int
}

// RunParallel measures scan-partitioned execution (DESIGN.md §9) on the
// Push plan with the full Fig. 5 profile, sweeping worker counts. The
// answers are identical at every count — the sweep isolates wall-clock
// and pruning effects of partitioning plus the shared top-k threshold.
func RunParallel(seed int64, sizeBytes, k, trials int, workers []int) []ParallelRow {
	if sizeBytes == 0 {
		sizeBytes = 10 * 1024 * 1024
	}
	if k == 0 {
		k = 10
	}
	if trials == 0 {
		trials = 3
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	doc := xmark.GenerateSized(xmark.Config{Seed: seed}, sizeBytes)
	ix := index.Build(doc, text.Pipeline{})
	prof := workload.Fig5Profile(4)
	var rows []ParallelRow
	for _, w := range workers {
		r := timePlanOpts(ix, prof, plan.Options{Strategy: plan.Push, Parallelism: w}, k, trials)
		rows = append(rows, ParallelRow{Workers: w, Time: r.Time, Pruned: r.Pruned, Answers: r.Answers})
	}
	return rows
}

// FormatParallel renders the parallel sweep with speedups relative to
// the sequential row.
func FormatParallel(rows []ParallelRow) string {
	var sb strings.Builder
	sb.WriteString("Parallel execution — Push plan, Fig. 5 workload, 4 KORs\n")
	sb.WriteString("Workers   time(ms)   speedup   pruned\n")
	var seq time.Duration
	for _, r := range rows {
		if r.Workers == 1 {
			seq = r.Time
		}
	}
	for _, r := range rows {
		speed := "-"
		if seq > 0 && r.Time > 0 {
			speed = fmt.Sprintf("%.2fx", float64(seq)/float64(r.Time))
		}
		fmt.Fprintf(&sb, "%-9d %8.2f   %7s   %d\n",
			r.Workers, float64(r.Time.Microseconds())/1000, speed, r.Pruned)
	}
	return sb.String()
}

// reprioritize clones KORs with priorities matching their slice order,
// so SortKORsByPriority preserves it.
func reprioritize(kors []*profile.KOR) []*profile.KOR {
	out := make([]*profile.KOR, len(kors))
	for i, k := range kors {
		c := *k
		c.Priority = i + 1
		out[i] = &c
	}
	return out
}

// FormatFig6 renders the Fig. 6 series, one line per size, one column
// per KOR count (the paper's grouped bars).
func FormatFig6(rows []Fig6Row) string {
	byKey := map[string]map[int]Fig6Row{}
	var sizes []string
	for _, r := range rows {
		if byKey[r.SizeLabel] == nil {
			byKey[r.SizeLabel] = map[int]Fig6Row{}
			sizes = append(sizes, r.SizeLabel)
		}
		byKey[r.SizeLabel][r.NumKORs] = r
	}
	var sb strings.Builder
	sb.WriteString("Fig. 6 — PushtopKPrune query time (ms) by document size and #KORs\n")
	sb.WriteString("Size      #KORs=1   #KORs=2   #KORs=3   #KORs=4\n")
	for _, s := range sizes {
		fmt.Fprintf(&sb, "%-8s", s)
		for n := 1; n <= 4; n++ {
			if r, ok := byKey[s][n]; ok {
				fmt.Fprintf(&sb, "  %8.2f", float64(r.Time.Microseconds())/1000)
			} else {
				sb.WriteString("         -")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatFig7 renders the Fig. 7 comparison, one line per plan.
func FormatFig7(rows []Fig7Row) string {
	byStrat := map[plan.Strategy]map[int]Fig7Row{}
	var order []plan.Strategy
	for _, r := range rows {
		if byStrat[r.Strategy] == nil {
			byStrat[r.Strategy] = map[int]Fig7Row{}
			order = append(order, r.Strategy)
		}
		byStrat[r.Strategy][r.NumKORs] = r
	}
	var sb strings.Builder
	sb.WriteString("Fig. 7 — run time (ms) of four plans on the 10MB document, by #KORs\n")
	sb.WriteString("Plan        #KORs=1   #KORs=2   #KORs=3   #KORs=4\n")
	for _, s := range order {
		fmt.Fprintf(&sb, "%-10s", s)
		for n := 1; n <= 4; n++ {
			if r, ok := byStrat[s][n]; ok {
				fmt.Fprintf(&sb, "  %8.2f", float64(r.Time.Microseconds())/1000)
			} else {
				sb.WriteString("         -")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatAblations renders the ablation measurements.
func FormatAblations(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablations — Section 7.2 design observations (4 KORs)\n")
	sb.WriteString("Variant                    time(ms)   pruned\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-25s  %8.2f   %d\n",
			r.Name, float64(r.Time.Microseconds())/1000, r.Pruned)
	}
	return sb.String()
}
