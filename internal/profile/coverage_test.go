package profile

import (
	"strings"
	"testing"

	"repro/internal/tpq"
)

func TestDeleteStructuralAtom(t *testing.T) {
	// A delete rule that removes a whole subtree: pc(car, owner).
	p := MustParseProfile(`sr d: if pc(car, price) then remove pc(car, owner)`)
	q := tpq.MustParse(`//car[./price and ./owner[./name]]`)
	out, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("rule must apply")
	}
	if len(out.FindByTag("owner")) != 0 || len(out.FindByTag("name")) != 0 {
		t.Fatalf("owner subtree kept: %s", out)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleting something absent is a no-op success (the query simply
	// lacks the optional part).
	q2 := tpq.MustParse(`//car[./price]`)
	out2, ok := p.SRs[0].Apply(q2)
	if !ok {
		t.Fatal("rule applies (condition holds), delete finds nothing")
	}
	if !tpq.Equivalent(q2, out2) {
		t.Errorf("no-op delete changed the query")
	}
}

func TestDeleteStructuralAtomOptionalEncoding(t *testing.T) {
	p := MustParseProfile(`sr d priority 1: if pc(car, price) then remove pc(car, owner)`)
	q := tpq.MustParse(`//car[./price and ./owner]`)
	out, ok := p.SRs[0].EncodeOptional(q)
	if !ok {
		t.Fatal("encode applies")
	}
	owners := out.FindByTag("owner")
	if len(owners) != 1 || !out.Nodes[owners[0]].Optional {
		t.Fatalf("owner should be demoted to optional: %s", out)
	}
}

func TestDeleteConstraintAtom(t *testing.T) {
	p := MustParseProfile(`sr d: if pc(car, price) then remove price < 2000`)
	q := tpq.MustParse(`//car[price < 2000]`)
	out, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("rule must apply")
	}
	prices := out.FindByTag("price")
	if len(prices) != 1 || len(out.Nodes[prices[0]].Constraints) != 0 {
		t.Fatalf("constraint kept: %s", out)
	}
	// Optional encoding keeps but demotes it.
	out2, _ := p.SRs[0].EncodeOptional(q)
	p2 := out2.FindByTag("price")[0]
	if len(out2.Nodes[p2].Constraints) != 1 || !out2.Nodes[p2].Constraints[0].Optional {
		t.Fatalf("constraint not demoted: %s", out2)
	}
}

func TestDeleteCannotRemoveDistinguished(t *testing.T) {
	p := MustParseProfile(`sr d: if pc(car, price) then remove pc(car, price)`)
	q := tpq.MustParse(`//car/price`) // price is distinguished
	if _, ok := p.SRs[0].Apply(q); ok {
		t.Errorf("removing the distinguished subtree must fail")
	}
}

func TestAddRuleUnboundVariable(t *testing.T) {
	// Conclusion references a variable absent from the condition and not
	// created by a structural atom: inapplicable.
	p := MustParseProfile(`sr a: if pc(car, price) then add ftcontains(ghost, "x")`)
	q := tpq.MustParse(`//car[./price]`)
	if _, ok := p.SRs[0].Apply(q); ok {
		t.Errorf("unbound conclusion variable must fail")
	}
}

func TestAddChainedStructuralAtoms(t *testing.T) {
	// pc chains in the conclusion resolve in any order.
	p := MustParseProfile(`sr a: if pc(car, price) then add pc(car, seller) & pc(seller, rating) & rating > 4`)
	q := tpq.MustParse(`//car[./price]`)
	out, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("rule must apply")
	}
	ratings := out.FindByTag("rating")
	if len(ratings) != 1 {
		t.Fatalf("chain not built: %s", out)
	}
	r := out.Nodes[ratings[0]]
	if out.Nodes[r.Parent].Tag != "seller" || len(r.Constraints) != 1 {
		t.Fatalf("chain mis-attached: %s", out)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringsAreParseableDescriptions(t *testing.T) {
	p := MustParseProfile(`
order colors: red > blue
sr p3: if pc(car, description) then replace ftcontains(description, "low mileage") with ftcontains(description, "mileage")
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w6: x.tag = car & y.tag = car & colors(x.color, y.color) => x < y
kor w4 weight 2: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
`)
	for _, frag := range []string{"replace", "with"} {
		if !strings.Contains(p.SRs[0].String(), frag) {
			t.Errorf("SR string missing %q: %s", frag, p.SRs[0])
		}
	}
	if !strings.Contains(p.VORs[0].String(), `x.color = "red"`) {
		t.Errorf("VOR string: %s", p.VORs[0])
	}
	if !strings.Contains(p.VORs[1].String(), "colors(x.color, y.color)") {
		t.Errorf("prefRel VOR string: %s", p.VORs[1])
	}
	if !strings.Contains(p.KORs[0].String(), "best bid") {
		t.Errorf("KOR string: %s", p.KORs[0])
	}
	if p.Orders["colors"].Name() != "colors" {
		t.Errorf("order name")
	}
}

func TestVORStringWithCommonAndLocals(t *testing.T) {
	p := MustParseProfile(`vor w3: x.tag = car & y.tag = car & x.make = y.make & x.fuel = "diesel" & y.age > 2 & x.hp > y.hp => x < y`)
	s := p.VORs[0].String()
	for _, frag := range []string{"x.make = y.make", `x.fuel = "diesel"`, "y.age > 2", "x.hp > y.hp"} {
		if !strings.Contains(s, frag) {
			t.Errorf("VOR string missing %q: %s", frag, s)
		}
	}
}

func TestAttrConstraintHolds(t *testing.T) {
	c := AttrConstraint{Attr: "age", Op: tpq.GT, Val: tpq.NumValue(30)}
	lk := func(v string, ok bool) func(string) (string, bool) {
		return func(string) (string, bool) { return v, ok }
	}
	if !c.Holds(lk("35", true)) {
		t.Errorf("35 > 30")
	}
	if c.Holds(lk("25", true)) {
		t.Errorf("25 > 30 false")
	}
	if c.Holds(lk("", false)) {
		t.Errorf("missing attr must fail")
	}
	if c.Holds(lk("not a number", true)) {
		t.Errorf("non-numeric must fail a numeric bound")
	}
	if c.String() == "" {
		t.Errorf("empty String")
	}
}

func TestPartialOrderLevelUnknownValue(t *testing.T) {
	po := NewPartialOrder("o")
	_ = po.Add("a", "b")
	unknown := po.Level("zzz")
	if unknown <= po.Level("b") {
		t.Errorf("unknown values must be least preferred: %d vs %d", unknown, po.Level("b"))
	}
	if got := po.Values(); len(got) != 2 {
		t.Errorf("Values = %v", got)
	}
}

func TestVORValidateErrors(t *testing.T) {
	cases := []*VOR{
		{Name: "v", Attr: "a", Form: FormAttrCmp, Op: tpq.LT},             // no tag
		{Name: "v", Tag: "car", Form: FormAttrCmp, Op: tpq.LT},            // no attr
		{Name: "v", Tag: "car", Attr: "a", Form: FormAttrCmp, Op: tpq.EQ}, // bad relOp
		{Name: "v", Tag: "car", Attr: "a", Form: FormPrefRel},             // nil order
	}
	for i, v := range cases {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}

func TestCompareVORsNoRules(t *testing.T) {
	p := NewProfile()
	if got := p.CompareVORs(nil, nil); got != 0 {
		t.Errorf("empty profile compare = %d", got)
	}
}

func TestLocalAtomsAndCompAtoms(t *testing.T) {
	p := MustParseProfile(`
order colors: red > blue
vor w: x.tag = car & y.tag = car & x.make = y.make & colors(x.color, y.color) => x < y
`)
	v := p.VORs[0]
	comp := v.CompAtoms()
	if len(comp) != 2 {
		t.Fatalf("comp atoms = %v", comp)
	}
	if comp[0].Attr != "make" || comp[0].Op != tpq.EQ {
		t.Errorf("common-eq atom: %+v", comp[0])
	}
	if comp[1].Order == nil || comp[1].Attr != "color" {
		t.Errorf("prefRel atom: %+v", comp[1])
	}
	// EqConst form induces locals.
	p2 := MustParseProfile(`vor w: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y`)
	lx := p2.VORs[0].LocalAtoms(true)
	ly := p2.VORs[0].LocalAtoms(false)
	if len(lx) != 1 || lx[0].Op != tpq.EQ {
		t.Errorf("x locals = %v", lx)
	}
	if len(ly) != 1 || ly[0].Op != tpq.NE {
		t.Errorf("y locals = %v", ly)
	}
}
