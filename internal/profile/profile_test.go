package profile

import (
	"strings"
	"testing"

	"repro/internal/tpq"
)

// fig2Profile is the running example of Fig. 2, expressed in the DSL.
const fig2Profile = `
# Scoping rules of Fig. 2
sr p1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")

# Ordering rules of Fig. 2
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
vor w3: x.tag = car & y.tag = car & x.make = y.make & x.hp > y.hp => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S
`

func fig2(t *testing.T) *Profile {
	t.Helper()
	p, err := ParseProfile(fig2Profile)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	return p
}

const paperQ = `//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`

func TestParseFig2Counts(t *testing.T) {
	p := fig2(t)
	if len(p.SRs) != 3 || len(p.VORs) != 3 || len(p.KORs) != 2 {
		t.Fatalf("counts: %d SRs, %d VORs, %d KORs", len(p.SRs), len(p.VORs), len(p.KORs))
	}
	if p.Rank != KVS {
		t.Errorf("rank = %v", p.Rank)
	}
}

func TestVORFormsDetected(t *testing.T) {
	p := fig2(t)
	w1, w2, w3 := p.VORs[0], p.VORs[1], p.VORs[2]
	if w1.Form != FormEqConst || w1.Attr != "color" || w1.Const.Str != "red" {
		t.Errorf("w1 = %+v", w1)
	}
	if len(w1.LocalX) != 0 || len(w1.LocalY) != 0 {
		t.Errorf("w1 locals should be lifted into the form: %+v", w1)
	}
	if w2.Form != FormAttrCmp || w2.Attr != "mileage" || w2.Op != tpq.LT {
		t.Errorf("w2 = %+v", w2)
	}
	if w3.Form != FormAttrCmp || w3.Attr != "hp" || w3.Op != tpq.GT {
		t.Errorf("w3 = %+v", w3)
	}
	if len(w3.CommonEq) != 1 || w3.CommonEq[0] != "make" {
		t.Errorf("w3 common = %v", w3.CommonEq)
	}
}

func TestKORParsed(t *testing.T) {
	p := fig2(t)
	w4 := p.KORs[0]
	if w4.Tag != "car" || len(w4.Phrases) != 1 || w4.Phrases[0] != "best bid" {
		t.Errorf("w4 = %+v", w4)
	}
	if w4.MaxContribution() != 1 {
		t.Errorf("MaxContribution = %v", w4.MaxContribution())
	}
	multi := MustParseProfile(`kor k priority 1 weight 0.5: x.tag = abs & y.tag = abs & ftcontains(x, "data cube") & ftcontains(x, "association rule") & ftcontains(x, "data mining") => x < y`)
	k := multi.KORs[0]
	if len(k.Phrases) != 3 {
		t.Fatalf("phrases = %v", k.Phrases)
	}
	if k.MaxContribution() != 1.5 {
		t.Errorf("MaxContribution = %v", k.MaxContribution())
	}
	if k.Priority != 1 {
		t.Errorf("priority = %d", k.Priority)
	}
}

func TestSRApplicability(t *testing.T) {
	p := fig2(t)
	q := tpq.MustParse(paperQ)
	for _, sr := range p.SRs {
		if !sr.Applicable(q) {
			t.Errorf("%s should be applicable to Q", sr.Name)
		}
	}
	// A query without "low mileage": p1 and p3's conditions differ.
	q2 := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	if p.SRs[0].Applicable(q2) {
		t.Errorf("p1 needs 'low mileage' in the query")
	}
	if !p.SRs[1].Applicable(q2) {
		t.Errorf("p2 only needs 'good condition'")
	}
}

func TestSRApplyDelete(t *testing.T) {
	p := fig2(t)
	q := tpq.MustParse(paperQ)
	out, ok := p.SRs[0].Apply(q) // p1 removes ftcontains(car, "good condition")
	if !ok {
		t.Fatal("p1 must apply")
	}
	if strings.Contains(out.String(), "good condition") {
		t.Errorf("phrase not removed: %s", out)
	}
	if !strings.Contains(out.String(), "low mileage") {
		t.Errorf("wrong phrase removed: %s", out)
	}
	// Original untouched.
	if !strings.Contains(q.String(), "good condition") {
		t.Errorf("Apply mutated its input")
	}
}

func TestSRApplyAdd(t *testing.T) {
	p := fig2(t)
	q := tpq.MustParse(paperQ)
	out, ok := p.SRs[1].Apply(q) // p2 adds ftcontains(description, "american")
	if !ok {
		t.Fatal("p2 must apply")
	}
	if !strings.Contains(out.String(), "american") {
		t.Errorf("predicate not added: %s", out)
	}
	// Added to the description node, not elsewhere.
	descs := out.FindByTag("description")
	found := false
	for _, d := range descs {
		for _, f := range out.Nodes[d].FT {
			if f.Phrase == "american" && !f.Optional {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("american not attached to description: %s", out)
	}
}

func TestSRConflictSemantics(t *testing.T) {
	// Section 5.1: p1 conflicts with p2 w.r.t. Q — after applying p1,
	// p2 is no longer applicable.
	p := fig2(t)
	q := tpq.MustParse(paperQ)
	q1, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("p1 applies")
	}
	if p.SRs[1].Applicable(q1) {
		t.Errorf("p2 must be inapplicable after p1")
	}
	// But p2 then p1 works: both apply.
	q2, ok := p.SRs[1].Apply(q)
	if !ok {
		t.Fatal("p2 applies")
	}
	if !p.SRs[0].Applicable(q2) {
		t.Errorf("p1 must stay applicable after p2")
	}
	q21, ok := p.SRs[0].Apply(q2)
	if !ok {
		t.Fatal("p1 applies after p2")
	}
	// Different orders yield different queries (the paper's point).
	if tpq.Equivalent(q1, q21) {
		t.Errorf("p1(Q) and p1(p2(Q)) should differ:\n%s\n%s", q1, q21)
	}
}

func TestSRReplace(t *testing.T) {
	p := MustParseProfile(`sr r: if pc(car, description) & ftcontains(description, "good condition") then replace ftcontains(description, "low mileage") with ftcontains(description, "mileage")`)
	q := tpq.MustParse(paperQ)
	out, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("replace rule must apply")
	}
	s := out.String()
	if strings.Contains(s, "low mileage") {
		t.Errorf("old predicate kept: %s", s)
	}
	if !strings.Contains(s, `"mileage"`) {
		t.Errorf("new predicate missing: %s", s)
	}
}

func TestSREncodeOptional(t *testing.T) {
	p := fig2(t)
	q := tpq.MustParse(paperQ)

	// p2 (add): "american" appears as an optional scored predicate.
	out, ok := p.SRs[1].EncodeOptional(q)
	if !ok {
		t.Fatal("p2 encodes")
	}
	foundOpt := false
	for _, n := range out.Nodes {
		for _, f := range n.FT {
			if f.Phrase == "american" {
				if !f.Optional || f.Weight <= 0 {
					t.Errorf("american must be optional with weight: %+v", f)
				}
				foundOpt = true
			}
		}
	}
	if !foundOpt {
		t.Fatalf("american not added: %s", out)
	}

	// p3 (delete): "low mileage" is demoted to optional, not removed.
	out3, ok := p.SRs[2].EncodeOptional(q)
	if !ok {
		t.Fatal("p3 encodes")
	}
	stillThere := false
	for _, n := range out3.Nodes {
		for _, f := range n.FT {
			if f.Phrase == "low mileage" {
				stillThere = true
				if !f.Optional {
					t.Errorf("low mileage must become optional: %+v", f)
				}
			}
		}
	}
	if !stillThere {
		t.Errorf("delete-encoding must keep the predicate: %s", out3)
	}
}

func TestSRAddStructural(t *testing.T) {
	p := MustParseProfile(`sr s: if pc(car, price) then add pc(car, location) & ftcontains(location, "NYC")`)
	q := tpq.MustParse(`//car[price < 2000]`)
	out, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("rule must apply")
	}
	locs := out.FindByTag("location")
	if len(locs) != 1 {
		t.Fatalf("location node not added: %s", out)
	}
	n := out.Nodes[locs[0]]
	if n.Axis != tpq.Child || len(n.FT) != 1 || n.FT[0].Phrase != "NYC" {
		t.Errorf("location node = %+v", n)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVORCompare(t *testing.T) {
	p := fig2(t)
	w1 := p.VORs[0] // red preferred

	redCar := map[string]string{"color": "red", "mileage": "50000"}
	blueCar := map[string]string{"color": "blue", "mileage": "10000"}
	noColor := map[string]string{"mileage": "10000"}

	lk := func(m map[string]string) func(string) (string, bool) {
		return func(a string) (string, bool) { v, ok := m[a]; return v, ok }
	}
	kr := w1.KeyFor("car", lk(redCar))
	kb := w1.KeyFor("car", lk(blueCar))
	kn := w1.KeyFor("car", lk(noColor))

	if got := w1.Compare(&kr, &kb); got != 1 {
		t.Errorf("red vs blue = %d, want 1", got)
	}
	if got := w1.Compare(&kb, &kr); got != -1 {
		t.Errorf("blue vs red = %d, want -1", got)
	}
	if got := w1.Compare(&kr, &kr); got != 0 {
		t.Errorf("red vs red = %d, want 0", got)
	}
	if got := w1.Compare(&kb, &kn); got != 0 {
		t.Errorf("blue vs missing-color = %d, want 0 (missing attr cannot satisfy y.color != red? it has no value)", got)
	}

	// Wrong tag: rule silent.
	ko := w1.KeyFor("truck", lk(redCar))
	if got := w1.Compare(&ko, &kb); got != 0 {
		t.Errorf("wrong tag = %d, want 0", got)
	}

	// w2: lower mileage preferred.
	w2 := p.VORs[1]
	k2r := w2.KeyFor("car", lk(redCar))
	k2b := w2.KeyFor("car", lk(blueCar))
	if got := w2.Compare(&k2b, &k2r); got != 1 {
		t.Errorf("lower mileage preferred: got %d", got)
	}

	// w3: same make, higher hp preferred; different makes incomparable.
	w3 := p.VORs[2]
	honda1 := lk(map[string]string{"make": "honda", "hp": "200"})
	honda2 := lk(map[string]string{"make": "honda", "hp": "150"})
	ford := lk(map[string]string{"make": "ford", "hp": "300"})
	kh1, kh2, kf := w3.KeyFor("car", honda1), w3.KeyFor("car", honda2), w3.KeyFor("car", ford)
	if got := w3.Compare(&kh1, &kh2); got != 1 {
		t.Errorf("same make, higher hp: got %d", got)
	}
	if got := w3.Compare(&kh1, &kf); got != 0 {
		t.Errorf("different makes must be incomparable: got %d", got)
	}
}

func TestVORPrefRel(t *testing.T) {
	p := MustParseProfile(`
order colors: red > blue > green
vor w: x.tag = car & y.tag = car & colors(x.color, y.color) => x < y
`)
	w := p.VORs[0]
	if w.Form != FormPrefRel || w.Order == nil {
		t.Fatalf("w = %+v", w)
	}
	lk := func(c string) func(string) (string, bool) {
		return func(a string) (string, bool) {
			if a == "color" {
				return c, true
			}
			return "", false
		}
	}
	red, blue, green, pink := w.KeyFor("car", lk("red")), w.KeyFor("car", lk("blue")),
		w.KeyFor("car", lk("green")), w.KeyFor("car", lk("pink"))
	if w.Compare(&red, &blue) != 1 || w.Compare(&blue, &green) != 1 || w.Compare(&red, &green) != 1 {
		t.Errorf("chain preferences broken")
	}
	if w.Compare(&red, &pink) != 0 {
		t.Errorf("unknown value must be incomparable")
	}
}

func TestProfileCompareVORsPriority(t *testing.T) {
	// Section 5.2's resolution: priority 1 to w2 (mileage), 2 to w1
	// (color). A red high-mileage car vs a blue low-mileage car is then
	// decided by mileage.
	p := MustParseProfile(`
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	lk := func(m map[string]string) func(string) (string, bool) {
		return func(a string) (string, bool) { v, ok := m[a]; return v, ok }
	}
	redHigh := map[string]string{"color": "red", "mileage": "90000"}
	blueLow := map[string]string{"color": "blue", "mileage": "10000"}
	keysFor := func(m map[string]string) []Key {
		ks := make([]Key, len(p.VORs))
		for i, v := range p.VORs {
			ks[i] = v.KeyFor("car", lk(m))
		}
		return ks
	}
	a, b := keysFor(redHigh), keysFor(blueLow)
	if got := p.CompareVORs(a, b); got != -1 {
		t.Errorf("mileage (priority 1) must win: got %d", got)
	}
	// Equal mileage: color decides.
	redSame := map[string]string{"color": "red", "mileage": "10000"}
	a2 := keysFor(redSame)
	if got := p.CompareVORs(a2, b); got != 1 {
		t.Errorf("tie on mileage falls through to color: got %d", got)
	}
}

func TestPartialOrder(t *testing.T) {
	po := NewPartialOrder("colors")
	if err := po.Add("red", "blue"); err != nil {
		t.Fatal(err)
	}
	if err := po.Add("blue", "green"); err != nil {
		t.Fatal(err)
	}
	if !po.Prefers("red", "green") {
		t.Errorf("transitivity")
	}
	if po.Prefers("green", "red") || po.Prefers("red", "red") {
		t.Errorf("strictness")
	}
	if err := po.Add("green", "red"); err == nil {
		t.Errorf("cycle must be rejected")
	}
	if err := po.Add("x", "x"); err == nil {
		t.Errorf("self-loop must be rejected")
	}
	if po.Level("red") >= po.Level("blue") || po.Level("blue") >= po.Level("green") {
		t.Errorf("levels must respect the order: red=%d blue=%d green=%d",
			po.Level("red"), po.Level("blue"), po.Level("green"))
	}
	if po.Comparable("red", "purple") {
		t.Errorf("unknown value comparable")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`vor w: x.tag = car => x < y`,                                      // no y tag, no form
		`vor w: x.tag = car & y.tag = car => x < y`,                        // no ordering atom
		`vor w: x.tag = car & y.tag = truck & x.a < y.a => x < y`,          // tag mismatch
		`vor w: x.tag = car & y.tag = car & x.a != y.a => x < y`,           // != cross atom
		`vor w: x.tag = car & y.tag = car & x.a < y.b => x < y`,            // attr mismatch
		`vor w: x.tag = car & y.tag = car & unknownrel(x.a, y.a) => x < y`, // unknown order
		`kor k: x.tag = car & y.tag = car => x < y`,                        // no ftcontains
		`kor k: x.tag = car & y.tag = car & ftcontains(y, "z") => x < y`,   // ft on wrong var
		`sr s: if then add ftcontains(a, "x")`,                             // empty condition
		`sr s: pc(a,b) then add ftcontains(a, "x")`,                        // missing if
		`sr s: if pc(a,b) then frobnicate ftcontains(a, "x")`,              // bad action
		`sr s: if pc(a,b) & pc(c,d) then add ftcontains(a, "x")`,           // disconnected
		`sr s: if pc(a,b) & pc(b,a) then add ftcontains(a, "x")`,           // cyclic
		`order o red > blue`,                                               // missing ':'
		`order o: red`,                                                     // no chain
		`rank S,V,K`,                                                       // unknown order
		`zzz something`,                                                    // unknown decl
		`vor : x.tag = car => x < y`,                                       // missing name
	}
	for _, src := range bad {
		if _, err := ParseProfile(src); err == nil {
			t.Errorf("ParseProfile(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	p, err := ParseProfile(`
# full line comment
rank V,K,S  # trailing comment

`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rank != VKS {
		t.Errorf("rank = %v", p.Rank)
	}
}

func TestSRStringRoundTrip(t *testing.T) {
	p := fig2(t)
	for _, sr := range p.SRs {
		s := sr.String()
		for _, frag := range []string{"if", "then", sr.Name} {
			if !strings.Contains(s, frag) {
				t.Errorf("SR string %q missing %q", s, frag)
			}
		}
	}
	for _, v := range p.VORs {
		if !strings.Contains(v.String(), "=> x < y") {
			t.Errorf("VOR string %q", v.String())
		}
	}
}
