// Package profile implements the paper's user profiles (Section 3): a
// profile H = (Σ, O_v, O_k) of scoping rules, value-based ordering rules
// and keyword-based ordering rules, plus the named strict partial orders
// over value domains that VORs of form (3) reference, and a small DSL for
// writing rules as in Fig. 2.
package profile

import (
	"fmt"
	"sort"
)

// PartialOrder is a named strict partial order over string domain values,
// as required by VOR form (3): "prefRel is a binary relation on the domain
// of x.attr which is a strict partial order, e.g. a partial ordering on
// colors". It is stored as the DAG of stated preferences; Prefers answers
// reachability (the transitive closure).
type PartialOrder struct {
	name  string
	edges map[string]map[string]bool // better -> set of directly-worse
}

// NewPartialOrder creates an empty order with the given name.
func NewPartialOrder(name string) *PartialOrder {
	return &PartialOrder{name: name, edges: make(map[string]map[string]bool)}
}

// Name returns the order's name, used by rules to reference it.
func (po *PartialOrder) Name() string { return po.name }

// Add states that better is preferred to worse. It returns an error if
// that would create a cycle (the relation must stay a strict partial
// order).
func (po *PartialOrder) Add(better, worse string) error {
	if better == worse {
		return fmt.Errorf("profile: order %s: %q preferred to itself", po.name, better)
	}
	if po.Prefers(worse, better) {
		return fmt.Errorf("profile: order %s: adding %s > %s creates a cycle",
			po.name, better, worse)
	}
	if po.edges[better] == nil {
		po.edges[better] = make(map[string]bool)
	}
	po.edges[better][worse] = true
	return nil
}

// Prefers reports whether a is strictly preferred to b (reachability in
// the preference DAG).
func (po *PartialOrder) Prefers(a, b string) bool {
	if a == b {
		return false
	}
	seen := map[string]bool{}
	var dfs func(v string) bool
	dfs = func(v string) bool {
		if v == b {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for w := range po.edges[v] {
			if dfs(w) {
				return true
			}
		}
		return false
	}
	for w := range po.edges[a] {
		if w == b || dfs(w) {
			return true
		}
	}
	return false
}

// Comparable reports whether a and b are ordered either way.
func (po *PartialOrder) Comparable(a, b string) bool {
	return po.Prefers(a, b) || po.Prefers(b, a)
}

// Values returns every value mentioned by the order, sorted.
func (po *PartialOrder) Values() []string {
	set := map[string]bool{}
	for a, ws := range po.edges {
		set[a] = true
		for w := range ws {
			set[w] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Level assigns each value its depth in a canonical linear extension:
// level 0 for maximal (most preferred) values, and level(v) = 1 + max
// level over values preferred to v. Unknown values get the maximum level
// + 1 (least preferred). Sorting ascending by Level is a linear extension
// of the order, which DESIGN.md §6.3 uses to turn the partial order into
// a sortable key while preserving every stated strict preference.
func (po *PartialOrder) Level(v string) int {
	levels := po.levels()
	if l, ok := levels[v]; ok {
		return l
	}
	maxL := 0
	for _, l := range levels {
		if l+1 > maxL {
			maxL = l + 1
		}
	}
	return maxL
}

func (po *PartialOrder) levels() map[string]int {
	memo := map[string]int{}
	var depth func(v string) int
	// depth from the top: 0 when nothing is preferred to v.
	preferrers := map[string][]string{}
	for a, ws := range po.edges {
		for w := range ws {
			preferrers[w] = append(preferrers[w], a)
		}
	}
	depth = func(v string) int {
		if d, ok := memo[v]; ok {
			return d
		}
		memo[v] = 0 // breaks cycles defensively; Add prevents real ones
		d := 0
		for _, p := range preferrers[v] {
			if pd := depth(p) + 1; pd > d {
				d = pd
			}
		}
		memo[v] = d
		return d
	}
	for _, v := range po.Values() {
		depth(v)
	}
	return memo
}
