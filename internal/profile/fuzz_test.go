package profile

import "testing"

// FuzzParseProfile checks the profile DSL parser never panics and that
// accepted profiles are internally consistent (VORs validate, compiled
// SR conditions build).
func FuzzParseProfile(f *testing.F) {
	seeds := []string{
		`sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")`,
		`sr p2: if pc(a,b) then add pc(b,c) & c > 1`,
		`sr p3: if ad(a,b) then replace ftcontains(b, "x") with ftcontains(b, "y")`,
		`sr r: if pc(a,b) then relax pc(a,b)`,
		`vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y`,
		`vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`,
		"order colors: red > blue > green\nvor w: x.tag = c & y.tag = c & colors(x.a, y.a) => x < y",
		`kor k weight 0.5: x.tag = abs & y.tag = abs & ftcontains(x, "data cube") => x < y`,
		`rank V,K,S`,
		`rank blend`,
		`# just a comment`,
		`sr broken`, `vor : =>`, `kor k: =>`, `order o:`, `sr s: if then add x`,
		"vor w: x.tag = a & y.tag = a & x.v < y.v => x < y\nvor w: x.tag = a & y.tag = a & x.v > y.v => x < y",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProfile(src)
		if err != nil {
			return
		}
		for _, v := range p.VORs {
			if err := v.Validate(); err != nil {
				t.Fatalf("accepted VOR invalid: %v\nsrc: %q", err, src)
			}
		}
		for _, sr := range p.SRs {
			if _, err := sr.CondQuery(); err != nil {
				t.Fatalf("accepted SR condition does not compile: %v\nsrc: %q", err, src)
			}
			_ = sr.String()
		}
		for _, k := range p.KORs {
			if len(k.Phrases) == 0 || k.Tag == "" {
				t.Fatalf("accepted KOR malformed: %+v\nsrc: %q", k, src)
			}
		}
	})
}
