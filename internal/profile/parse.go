package profile

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/tpq"
)

// ParseProfile parses the profile DSL. One declaration per line; '#'
// starts a comment. The syntax mirrors the paper's Fig. 2:
//
//	order colors: red > blue > green
//	sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
//	sr p2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
//	sr p3: if pc(car, description) & ftcontains(description, "good condition") then replace ftcontains(description, "low mileage") with ftcontains(description, "mileage")
//	vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
//	vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
//	vor w3: x.tag = car & y.tag = car & x.make = y.make & x.hp > y.hp => x < y
//	vor w6: x.tag = car & y.tag = car & colors(x.color, y.color) => x < y
//	kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
//	rank K,V,S
//
// In conclusions, "x < y" reads "x is preferred to y" (the paper's
// x ≺ y).
func ParseProfile(src string) (*Profile, error) {
	p := NewProfile()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseDecl(p, line); err != nil {
			return nil, fmt.Errorf("profile: line %d: %w", lineNo+1, err)
		}
	}
	return p, nil
}

// MustParseProfile is ParseProfile for known-good literals.
func MustParseProfile(src string) *Profile {
	p, err := ParseProfile(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseDecl(p *Profile, line string) error {
	word, rest := cutWord(line)
	switch word {
	case "order":
		return parseOrderDecl(p, rest)
	case "sr":
		return parseSRDecl(p, rest)
	case "vor":
		return parseVORDecl(p, rest)
	case "kor":
		return parseKORDecl(p, rest)
	case "rank":
		return parseRankDecl(p, rest)
	}
	return fmt.Errorf("unknown declaration %q", word)
}

func cutWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := 0
	for i < len(s) && !unicode.IsSpace(rune(s[i])) && s[i] != ':' {
		i++
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// checkRuleName rejects a rule identifier already taken by any sr, vor
// or kor: rules share one namespace (diagnostics and witnesses refer to
// them by name), so a collision would make every report ambiguous. The
// error carries the vet check ID P001.
func checkRuleName(p *Profile, kind, name string) error {
	clash := func(otherKind string) error {
		if kind == otherKind {
			return fmt.Errorf("%s %s: duplicate rule identifier [P001]", kind, name)
		}
		return fmt.Errorf("%s %s: rule identifier already used by a %s [P001]", kind, name, otherKind)
	}
	for _, sr := range p.SRs {
		if sr.Name == name {
			return clash("sr")
		}
	}
	for _, v := range p.VORs {
		if v.Name == name {
			return clash("vor")
		}
	}
	for _, k := range p.KORs {
		if k.Name == name {
			return clash("kor")
		}
	}
	return nil
}

// parseHeader consumes "NAME [priority N] [weight W] :" and returns the
// remainder after the colon.
func parseHeader(s string) (name string, priority int, weight float64, rest string, err error) {
	name, s = cutWord(s)
	if name == "" {
		return "", 0, 0, "", fmt.Errorf("missing rule name")
	}
	for {
		if strings.HasPrefix(s, ":") {
			return name, priority, weight, strings.TrimSpace(s[1:]), nil
		}
		var kw string
		kw, s = cutWord(s)
		switch kw {
		case "priority":
			var v string
			v, s = cutWord(s)
			n, perr := strconv.Atoi(v)
			if perr != nil {
				return "", 0, 0, "", fmt.Errorf("bad priority %q", v)
			}
			priority = n
		case "weight":
			var v string
			v, s = cutWord(s)
			f, perr := strconv.ParseFloat(v, 64)
			if perr != nil {
				return "", 0, 0, "", fmt.Errorf("bad weight %q", v)
			}
			weight = f
		case "":
			return "", 0, 0, "", fmt.Errorf("missing ':'")
		default:
			return "", 0, 0, "", fmt.Errorf("unexpected %q before ':'", kw)
		}
	}
}

func parseOrderDecl(p *Profile, s string) error {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return fmt.Errorf("order: missing ':'")
	}
	name := strings.TrimSpace(s[:i])
	if name == "" {
		return fmt.Errorf("order: missing name")
	}
	po := p.Orders[name]
	if po == nil {
		po = NewPartialOrder(name)
		p.Orders[name] = po
	}
	for _, chain := range strings.Split(s[i+1:], ",") {
		vals := strings.Split(chain, ">")
		if len(vals) < 2 {
			return fmt.Errorf("order %s: chain %q needs at least 'a > b'", name, strings.TrimSpace(chain))
		}
		for j := 0; j+1 < len(vals); j++ {
			better := unquote(strings.TrimSpace(vals[j]))
			worse := unquote(strings.TrimSpace(vals[j+1]))
			if better == "" || worse == "" {
				return fmt.Errorf("order %s: empty value in chain", name)
			}
			if err := po.Add(better, worse); err != nil {
				return err
			}
		}
	}
	return nil
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}

func parseRankDecl(p *Profile, s string) error {
	norm := strings.ToUpper(strings.ReplaceAll(strings.ReplaceAll(s, " ", ""), ",", ""))
	switch norm {
	case "KVS":
		p.Rank = KVS
	case "VKS":
		p.Rank = VKS
	case "BLEND", "K+SV", "K+S":
		p.Rank = Blend
	default:
		return fmt.Errorf("rank: want K,V,S or V,K,S or blend; got %q", s)
	}
	return nil
}

func parseSRDecl(p *Profile, s string) error {
	name, priority, weight, rest, err := parseHeader(s)
	if err != nil {
		return fmt.Errorf("sr: %w", err)
	}
	if err := checkRuleName(p, "sr", name); err != nil {
		return err
	}
	var kw string
	kw, rest = cutWord(rest)
	if kw != "if" {
		return fmt.Errorf("sr %s: expected 'if'", name)
	}
	thenIdx := findKeyword(rest, "then")
	if thenIdx < 0 {
		return fmt.Errorf("sr %s: missing 'then'", name)
	}
	condSrc := rest[:thenIdx]
	actionSrc := strings.TrimSpace(rest[thenIdx+len("then"):])

	cond, err := parseAtoms(condSrc)
	if err != nil {
		return fmt.Errorf("sr %s: condition: %w", name, err)
	}
	sr := &SR{Name: name, Cond: cond, Priority: priority, Weight: weight}

	actWord, actRest := cutWord(actionSrc)
	switch actWord {
	case "add":
		sr.Kind = SRAdd
		sr.Concl, err = parseAtoms(actRest)
	case "remove", "delete":
		sr.Kind = SRDelete
		sr.Concl, err = parseAtoms(actRest)
	case "relax":
		sr.Kind = SRRelax
		sr.Concl, err = parseAtoms(actRest)
		for _, a := range sr.Concl {
			if err == nil && a.Kind != AtomPC {
				err = fmt.Errorf("relax only applies to pc(...) atoms, got %s", a)
			}
		}
	case "replace":
		sr.Kind = SRReplace
		withIdx := findKeyword(actRest, "with")
		if withIdx < 0 {
			return fmt.Errorf("sr %s: replace needs 'with'", name)
		}
		sr.ReplWhat, err = parseAtoms(actRest[:withIdx])
		if err == nil {
			sr.ReplWith, err = parseAtoms(actRest[withIdx+len("with"):])
		}
	default:
		return fmt.Errorf("sr %s: unknown action %q", name, actWord)
	}
	if err != nil {
		return fmt.Errorf("sr %s: %w", name, err)
	}
	if _, err := sr.CondQuery(); err != nil {
		return err
	}
	p.SRs = append(p.SRs, sr)
	return nil
}

// findKeyword locates a keyword at word boundaries outside quotes.
func findKeyword(s, kw string) int {
	inQuote := byte(0)
	for i := 0; i+len(kw) <= len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		if c == '"' || c == '\'' {
			inQuote = c
			continue
		}
		if !strings.HasPrefix(s[i:], kw) {
			continue
		}
		before := i == 0 || isWordBoundary(s[i-1])
		afterIdx := i + len(kw)
		after := afterIdx >= len(s) || isWordBoundary(s[afterIdx])
		if before && after {
			return i
		}
	}
	return -1
}

func isWordBoundary(c byte) bool {
	return !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9')
}

// parseAtoms parses "atom & atom & ...".
func parseAtoms(s string) ([]Atom, error) {
	var out []Atom
	for _, part := range splitTop(s, '&') {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty conjunct")
		}
		a, err := parseAtom(part)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no atoms")
	}
	return out, nil
}

// splitTop splits on sep outside quotes and parentheses.
func splitTop(s string, sep byte) []string {
	var parts []string
	depth := 0
	inQuote := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseAtom(s string) (Atom, error) {
	if m, args, ok := matchCall(s, "pc"); ok {
		_ = m
		if len(args) != 2 {
			return Atom{}, fmt.Errorf("pc wants 2 args: %q", s)
		}
		return Atom{Kind: AtomPC, X: args[0], Y: args[1]}, nil
	}
	if _, args, ok := matchCall(s, "ad"); ok {
		if len(args) != 2 {
			return Atom{}, fmt.Errorf("ad wants 2 args: %q", s)
		}
		return Atom{Kind: AtomAD, X: args[0], Y: args[1]}, nil
	}
	if _, args, ok := matchCall(s, "ftcontains"); ok {
		if len(args) != 2 {
			return Atom{}, fmt.Errorf("ftcontains wants 2 args: %q", s)
		}
		phrase := unquote(args[1])
		if strings.TrimSpace(phrase) == "" {
			return Atom{}, fmt.Errorf("ftcontains with an empty phrase: %q", s)
		}
		return Atom{Kind: AtomFT, X: args[0], Phrase: phrase}, nil
	}
	// Constraint atom: VAR[.attr] relop literal.
	lhs, op, rhs, err := splitComparison(s)
	if err != nil {
		return Atom{}, err
	}
	x, attr := lhs, ""
	if i := strings.IndexByte(lhs, '.'); i >= 0 {
		x, attr = lhs[:i], lhs[i+1:]
	}
	val, err := parseLiteral(rhs)
	if err != nil {
		return Atom{}, err
	}
	return Atom{Kind: AtomCmp, X: x, Attr: attr, Op: op, Val: val}, nil
}

// matchCall parses "name ( a, b )" and returns the trimmed args.
func matchCall(s, name string) (string, []string, bool) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, name) {
		return "", nil, false
	}
	rest := strings.TrimSpace(t[len(name):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", nil, false
	}
	inner := rest[1 : len(rest)-1]
	parts := splitTop(inner, ',')
	args := make([]string, len(parts))
	for i, p := range parts {
		args[i] = strings.TrimSpace(p)
	}
	return name, args, true
}

var compOps = []struct {
	sym string
	op  tpq.RelOp
}{
	// Longest first.
	{"<=", tpq.LE}, {">=", tpq.GE}, {"!=", tpq.NE}, {"<>", tpq.NE},
	{"=", tpq.EQ}, {"<", tpq.LT}, {">", tpq.GT},
}

func splitComparison(s string) (lhs string, op tpq.RelOp, rhs string, err error) {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		if c == '"' || c == '\'' {
			inQuote = c
			continue
		}
		for _, co := range compOps {
			if strings.HasPrefix(s[i:], co.sym) {
				return strings.TrimSpace(s[:i]), co.op,
					strings.TrimSpace(s[i+len(co.sym):]), nil
			}
		}
	}
	return "", 0, "", fmt.Errorf("no comparison operator in %q", s)
}

func parseLiteral(s string) (tpq.Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return tpq.Value{}, fmt.Errorf("missing literal")
	}
	if s[0] == '"' || s[0] == '\'' {
		return tpq.StrValue(unquote(s)), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return tpq.NumValue(f), nil
	}
	return tpq.StrValue(s), nil // bare word, e.g. color = red
}

// parseVORDecl parses a value-based ordering rule. The general shape is
// vatom & ... => A < B where A, B are the rule's two variables and A is
// the preferred side.
func parseVORDecl(p *Profile, s string) error {
	name, priority, _, rest, err := parseHeader(s)
	if err != nil {
		return fmt.Errorf("vor: %w", err)
	}
	if err := checkRuleName(p, "vor", name); err != nil {
		return err
	}
	body, xVar, yVar, err := splitConclusion(rest)
	if err != nil {
		return fmt.Errorf("vor %s: %w", name, err)
	}
	v := &VOR{Name: name, Priority: priority}
	var tagX, tagY string
	for _, part := range splitTop(body, '&') {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("vor %s: empty conjunct", name)
		}
		// prefRel atom: ordername(x.attr, y.attr)
		if i := strings.IndexByte(part, '('); i > 0 && !strings.ContainsAny(part[:i], "=<>!") {
			oname := strings.TrimSpace(part[:i])
			if po, ok := p.Orders[oname]; ok {
				_, args, okc := matchCall(part, oname)
				if !okc || len(args) != 2 {
					return fmt.Errorf("vor %s: bad preference atom %q", name, part)
				}
				vx, ax, err1 := splitVarAttr(args[0])
				vy, ay, err2 := splitVarAttr(args[1])
				if err1 != nil || err2 != nil || vx != xVar || vy != yVar || ax != ay {
					return fmt.Errorf("vor %s: preference atom must be %s(%s.a, %s.a)", name, oname, xVar, yVar)
				}
				v.Form = FormPrefRel
				v.Attr = ax
				v.Order = po
				continue
			}
			return fmt.Errorf("vor %s: unknown preference relation in %q", name, part)
		}
		lhs, op, rhs, err := splitComparison(part)
		if err != nil {
			return fmt.Errorf("vor %s: %w", name, err)
		}
		lv, lattr, err := splitVarAttr(lhs)
		if err != nil {
			return fmt.Errorf("vor %s: %w", name, err)
		}
		// Right side: variable.attr or literal?
		if rv, rattr, rerr := splitVarAttr(rhs); rerr == nil && (rv == xVar || rv == yVar) && rattr != "tag" {
			// Cross atom.
			if lattr != rattr {
				return fmt.Errorf("vor %s: cross atom must compare the same attribute: %q", name, part)
			}
			if lv == rv {
				return fmt.Errorf("vor %s: cross atom uses one variable twice: %q", name, part)
			}
			switch op {
			case tpq.EQ:
				v.CommonEq = append(v.CommonEq, lattr)
			case tpq.LT, tpq.GT:
				if v.Form == FormPrefRel || v.Attr != "" && v.Form == FormAttrCmp {
					return fmt.Errorf("vor %s: multiple ordering atoms", name)
				}
				v.Form = FormAttrCmp
				v.Attr = lattr
				v.Op = op
				if lv == yVar {
					// y.a < x.a  ==  x.a > y.a
					if op == tpq.LT {
						v.Op = tpq.GT
					} else {
						v.Op = tpq.LT
					}
				}
			default:
				return fmt.Errorf("vor %s: relOp must be <, > or = in cross atoms (Section 3.2)", name)
			}
			continue
		}
		// Local atom.
		val, verr := parseLiteral(rhs)
		if verr != nil {
			return fmt.Errorf("vor %s: %w", name, verr)
		}
		if lattr == "tag" {
			if op != tpq.EQ || val.IsNum {
				return fmt.Errorf("vor %s: tag condition must be var.tag = name", name)
			}
			if lv == xVar {
				tagX = val.Str
			} else if lv == yVar {
				tagY = val.Str
			} else {
				return fmt.Errorf("vor %s: unknown variable %q", name, lv)
			}
			continue
		}
		ac := AttrConstraint{Attr: lattr, Op: op, Val: val}
		switch lv {
		case xVar:
			v.LocalX = append(v.LocalX, ac)
		case yVar:
			v.LocalY = append(v.LocalY, ac)
		default:
			return fmt.Errorf("vor %s: unknown variable %q", name, lv)
		}
	}
	if tagX == "" || tagX != tagY {
		return fmt.Errorf("vor %s: both variables need the same tag condition (common condition C)", name)
	}
	v.Tag = tagX
	// Detect form (1): matching local pair x.a = c / y.a != c.
	if v.Form == FormEqConst && v.Attr == "" {
		if !liftEqConst(v) {
			return fmt.Errorf("vor %s: no ordering atom (need x.a=c & y.a!=c, x.a relOp y.a, or prefRel)", name)
		}
	}
	if err := v.Validate(); err != nil {
		return err
	}
	p.VORs = append(p.VORs, v)
	return nil
}

// liftEqConst searches LocalX/LocalY for the form-(1) pair x.a = c and
// y.a != c, removes them from the locals and installs them as the form.
func liftEqConst(v *VOR) bool {
	for i, cx := range v.LocalX {
		if cx.Op != tpq.EQ {
			continue
		}
		for j, cy := range v.LocalY {
			if cy.Op == tpq.NE && cy.Attr == cx.Attr && cy.Val.Equal(cx.Val) {
				v.Form = FormEqConst
				v.Attr = cx.Attr
				v.Const = cx.Val
				v.LocalX = append(v.LocalX[:i], v.LocalX[i+1:]...)
				v.LocalY = append(v.LocalY[:j], v.LocalY[j+1:]...)
				return true
			}
		}
	}
	return false
}

func splitVarAttr(s string) (v, attr string, err error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("expected var.attr, got %q", s)
	}
	return s[:i], s[i+1:], nil
}

// splitConclusion splits "body => x < y" and returns body and the two
// variable names (preferred first).
func splitConclusion(s string) (body, xVar, yVar string, err error) {
	i := strings.Index(s, "=>")
	if i < 0 {
		return "", "", "", fmt.Errorf("missing conclusion '=> x < y'")
	}
	body = strings.TrimSpace(s[:i])
	concl := strings.TrimSpace(s[i+2:])
	j := strings.IndexByte(concl, '<')
	if j < 0 {
		return "", "", "", fmt.Errorf("conclusion must be 'x < y', got %q", concl)
	}
	xVar = strings.TrimSpace(concl[:j])
	yVar = strings.TrimSpace(concl[j+1:])
	if xVar == "" || yVar == "" || xVar == yVar {
		return "", "", "", fmt.Errorf("conclusion must name two distinct variables, got %q", concl)
	}
	return body, xVar, yVar, nil
}

func parseKORDecl(p *Profile, s string) error {
	name, priority, weight, rest, err := parseHeader(s)
	if err != nil {
		return fmt.Errorf("kor: %w", err)
	}
	if err := checkRuleName(p, "kor", name); err != nil {
		return err
	}
	body, xVar, yVar, err := splitConclusion(rest)
	if err != nil {
		return fmt.Errorf("kor %s: %w", name, err)
	}
	k := &KOR{Name: name, Priority: priority, Weight: weight}
	var tagX, tagY string
	for _, part := range splitTop(body, '&') {
		part = strings.TrimSpace(part)
		if _, args, ok := matchCall(part, "ftcontains"); ok {
			if len(args) != 2 || args[0] != xVar {
				return fmt.Errorf("kor %s: ftcontains must test the preferred variable %s", name, xVar)
			}
			k.Phrases = append(k.Phrases, unquote(args[1]))
			continue
		}
		lhs, op, rhs, err := splitComparison(part)
		if err != nil {
			return fmt.Errorf("kor %s: %w", name, err)
		}
		lv, lattr, err := splitVarAttr(lhs)
		if err != nil || lattr != "tag" || op != tpq.EQ {
			return fmt.Errorf("kor %s: only tag conditions and ftcontains atoms are allowed, got %q", name, part)
		}
		tag := unquote(strings.TrimSpace(rhs))
		switch lv {
		case xVar:
			tagX = tag
		case yVar:
			tagY = tag
		default:
			return fmt.Errorf("kor %s: unknown variable %q", name, lv)
		}
	}
	if tagX == "" || tagX != tagY {
		return fmt.Errorf("kor %s: both variables need the same tag condition", name)
	}
	if len(k.Phrases) == 0 {
		return fmt.Errorf("kor %s: needs at least one ftcontains atom", name)
	}
	k.Tag = tagX
	p.KORs = append(p.KORs, k)
	return nil
}
