package profile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tpq"
)

// RankOrder selects how the three ranking components combine (Section
// 3.3): KVS orders answers by KOR score first, then VOR preference, then
// query score; VKS puts VOR preference first.
type RankOrder uint8

const (
	// KVS is the paper's default order K, V, S.
	KVS RankOrder = iota
	// VKS is the alternative order V, K, S.
	VKS
	// Blend ranks by the combined score K + S (with V as tie-break) —
	// the weighted fine-tuning the paper's conclusion proposes ("using
	// weights to perform a fine-tuning of the application of the SRs …
	// incorporate those weights when the query score is computed",
	// Sections 7.1 and 8). Under Blend, KOR weights and scoping-rule
	// weights trade off against exact query matches instead of KOR
	// matches strictly dominating.
	Blend
)

func (r RankOrder) String() string {
	switch r {
	case VKS:
		return "V,K,S"
	case Blend:
		return "K+S,V"
	}
	return "K,V,S"
}

// Profile is a user profile H = (Σ, O_v, O_k): scoping rules, value-based
// ordering rules, keyword-based ordering rules, plus the named partial
// orders the VORs reference and the rank order for answers.
type Profile struct {
	SRs    []*SR
	VORs   []*VOR
	KORs   []*KOR
	Orders map[string]*PartialOrder
	Rank   RankOrder
}

// NewProfile returns an empty profile with the default K,V,S rank order.
func NewProfile() *Profile {
	return &Profile{Orders: make(map[string]*PartialOrder)}
}

// AttrConstraint is a local condition on a single rule variable:
// var.Attr Op Val (e.g. x.color = "red", y.age != 33).
type AttrConstraint struct {
	Attr string
	Op   tpq.RelOp
	Val  tpq.Value
}

func (c AttrConstraint) String() string {
	return fmt.Sprintf(".%s %s %s", c.Attr, c.Op, c.Val)
}

// Holds evaluates the constraint against an attribute lookup for one
// answer element. Missing attributes fail the constraint.
func (c AttrConstraint) Holds(lookup func(string) (string, bool)) bool {
	raw, ok := lookup(c.Attr)
	if !ok {
		return false
	}
	cmp, ok := c.Val.Compare(raw)
	if !ok {
		return false
	}
	return c.Op.Eval(cmp)
}

// VORForm discriminates the three value-based OR shapes of Section 3.2.
type VORForm uint8

const (
	// FormEqConst is form (1): C & x.attr = c & y.attr != c -> x ≺ y.
	FormEqConst VORForm = iota
	// FormAttrCmp is form (2): C & x.attr relOp y.attr -> x ≺ y, relOp in {<,>}.
	FormAttrCmp
	// FormPrefRel is form (3): C & prefRel(x.attr, y.attr) -> x ≺ y.
	FormPrefRel
)

// VOR is a value-based ordering rule. The common condition C is the tag
// equality plus CommonEq attribute equalities; LocalX/LocalY are extra
// per-side conditions. The form fields say when x is preferred to y.
type VOR struct {
	Name     string
	Tag      string   // x.tag = Tag & y.tag = Tag (common condition)
	CommonEq []string // attrs equated across x and y, e.g. make in ω3
	LocalX   []AttrConstraint
	LocalY   []AttrConstraint

	Form  VORForm
	Attr  string        // the attribute the form tests
	Const tpq.Value     // FormEqConst: the constant c
	Op    tpq.RelOp     // FormAttrCmp: LT or GT
	Order *PartialOrder // FormPrefRel

	// Priority resolves ambiguity (Section 5.2): lower number = higher
	// priority. Rules with priority 0 are unprioritized.
	Priority int
}

// Validate checks the rule is well-formed per Section 3.2 (relOp must be
// < or > so ≺ stays a strict partial order).
func (v *VOR) Validate() error {
	if v.Tag == "" {
		return fmt.Errorf("profile: vor %s: missing tag condition", v.Name)
	}
	if v.Attr == "" {
		return fmt.Errorf("profile: vor %s: missing attribute", v.Name)
	}
	switch v.Form {
	case FormAttrCmp:
		if v.Op != tpq.LT && v.Op != tpq.GT {
			return fmt.Errorf("profile: vor %s: relOp must be < or > (Section 3.2)", v.Name)
		}
	case FormPrefRel:
		if v.Order == nil {
			return fmt.Errorf("profile: vor %s: missing preference relation", v.Name)
		}
	}
	return nil
}

// Key is the per-answer digest a VOR needs to compare two answers without
// touching the document again: the algebra's vor operator computes it
// once per answer ("applies a value-based OR by augmenting current
// answers with their OR value", Fig. 3).
type Key struct {
	TagOK     bool
	LocalXOK  bool // this answer satisfies local(x): it can be the preferred side
	LocalYOK  bool // this answer satisfies local(y): it can be the dominated side
	Common    []string
	HasCommon []bool
	Val       string // raw value of the form attribute
	HasVal    bool
	Num       float64
	HasNum    bool
}

// KeyFor computes the rule's Key for an answer, given its tag and an
// attribute lookup.
func (v *VOR) KeyFor(tag string, lookup func(string) (string, bool)) Key {
	k := Key{TagOK: tag == v.Tag}
	if !k.TagOK {
		return k
	}
	k.LocalXOK = holdsAll(v.LocalX, lookup)
	k.LocalYOK = holdsAll(v.LocalY, lookup)
	k.Common = make([]string, len(v.CommonEq))
	k.HasCommon = make([]bool, len(v.CommonEq))
	for i, a := range v.CommonEq {
		k.Common[i], k.HasCommon[i] = lookup(a)
	}
	if raw, ok := lookup(v.Attr); ok {
		k.Val, k.HasVal = raw, true
		if f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64); err == nil {
			k.Num, k.HasNum = f, true
		}
	}
	return k
}

func holdsAll(cs []AttrConstraint, lookup func(string) (string, bool)) bool {
	for _, c := range cs {
		if !c.Holds(lookup) {
			return false
		}
	}
	return true
}

// Compare returns +1 if the answer with key a is preferred to the one
// with key b under this rule, -1 for the converse, and 0 when the rule
// does not order the pair (inapplicable, common conditions unequal, or
// form condition indifferent).
func (v *VOR) Compare(a, b *Key) int {
	if !a.TagOK || !b.TagOK {
		return 0
	}
	for i := range v.CommonEq {
		if !a.HasCommon[i] || !b.HasCommon[i] || a.Common[i] != b.Common[i] {
			return 0
		}
	}
	if v.prefers(a, b) {
		return 1
	}
	if v.prefers(b, a) {
		return -1
	}
	return 0
}

// prefers reports whether the rule, read directionally (x := a, y := b),
// derives a ≺ b.
func (v *VOR) prefers(a, b *Key) bool {
	if !a.LocalXOK || !b.LocalYOK {
		return false
	}
	switch v.Form {
	case FormEqConst:
		if !a.HasVal || !b.HasVal {
			return false
		}
		ca, okA := v.Const.Compare(a.Val)
		cb, okB := v.Const.Compare(b.Val)
		return okA && okB && ca == 0 && cb != 0
	case FormAttrCmp:
		if !a.HasNum || !b.HasNum {
			return false
		}
		switch v.Op {
		case tpq.LT:
			return a.Num < b.Num
		case tpq.GT:
			return a.Num > b.Num
		}
		return false
	case FormPrefRel:
		if !a.HasVal || !b.HasVal {
			return false
		}
		return v.Order.Prefers(a.Val, b.Val)
	}
	return false
}

// LinearCompare is a deterministic weak order extending the rule's
// partial order: whenever Compare(a, b) != 0, LinearCompare agrees, and
// pairs the rule leaves unordered are resolved by grouping answers into
// totally ordered classes. Concretely it compares, in order:
//
//   - rule applicability (answers with the rule's tag first);
//   - the common-equality attribute tuple (the rule only relates answers
//     whose tuples are equal; distinct tuples get a consistent arbitrary
//     order, missing attributes last);
//   - the form key: for x.attr = c, answers matching the constant before
//     the rest; for x.attr < y.attr (resp. >), ascending (descending)
//     attribute value with non-numeric answers last; for prefRel, the
//     PartialOrder's canonical Level (a linear extension of the stated
//     preferences), then the raw value for cross-chain determinism.
//
// Local x/y side-conditions only mask preferences (they never reverse
// one), so ignoring them here keeps the extension property. Answers in
// the same class compare 0 and fall through to the rank order's next
// component (K, S, then NodeID) exactly as genuinely tied answers do.
func (v *VOR) LinearCompare(a, b *Key) int {
	if a.TagOK != b.TagOK {
		if a.TagOK {
			return 1
		}
		return -1
	}
	if !a.TagOK {
		return 0
	}
	for i := range v.CommonEq {
		if a.HasCommon[i] != b.HasCommon[i] {
			if a.HasCommon[i] {
				return 1
			}
			return -1
		}
		if a.HasCommon[i] && a.Common[i] != b.Common[i] {
			if a.Common[i] < b.Common[i] {
				return 1
			}
			return -1
		}
	}
	switch v.Form {
	case FormEqConst:
		am := keyMatchesConst(v, a)
		bm := keyMatchesConst(v, b)
		if am != bm {
			if am {
				return 1
			}
			return -1
		}
	case FormAttrCmp:
		if a.HasNum != b.HasNum {
			if a.HasNum {
				return 1
			}
			return -1
		}
		if a.HasNum && a.Num != b.Num {
			less := a.Num < b.Num
			if v.Op == tpq.GT {
				less = !less
			}
			if less {
				return 1
			}
			return -1
		}
	case FormPrefRel:
		if a.HasVal != b.HasVal {
			if a.HasVal {
				return 1
			}
			return -1
		}
		if a.HasVal {
			la, lb := v.Order.Level(a.Val), v.Order.Level(b.Val)
			if la != lb {
				if la < lb {
					return 1
				}
				return -1
			}
			if a.Val != b.Val {
				if a.Val < b.Val {
					return 1
				}
				return -1
			}
		}
	}
	return 0
}

func keyMatchesConst(v *VOR, k *Key) bool {
	if !k.HasVal {
		return false
	}
	c, ok := v.Const.Compare(k.Val)
	return ok && c == 0
}

// CompAtom is one comparison atom relating the two variables of a VOR,
// exposed in the general form local(x) & local(y) & comp(x,y) -> x ≺ y
// that the ambiguity analysis of Section 5.2 works with.
type CompAtom struct {
	Attr  string
	Op    tpq.RelOp     // EQ for common equalities; LT/GT for FormAttrCmp
	Order *PartialOrder // non-nil for FormPrefRel
}

// LocalAtoms returns the full local constraint set of one side (x when
// preferred is true): declared locals plus the form's induced local
// constraints (form (1) localizes x.attr = c and y.attr != c).
func (v *VOR) LocalAtoms(preferred bool) []AttrConstraint {
	var out []AttrConstraint
	if preferred {
		out = append(out, v.LocalX...)
	} else {
		out = append(out, v.LocalY...)
	}
	if v.Form == FormEqConst {
		if preferred {
			out = append(out, AttrConstraint{Attr: v.Attr, Op: tpq.EQ, Val: v.Const})
		} else {
			out = append(out, AttrConstraint{Attr: v.Attr, Op: tpq.NE, Val: v.Const})
		}
	}
	return out
}

// CompAtoms returns the cross-variable atoms: the CommonEq equalities and
// the form's comparison (forms (2) and (3)).
func (v *VOR) CompAtoms() []CompAtom {
	var out []CompAtom
	for _, a := range v.CommonEq {
		out = append(out, CompAtom{Attr: a, Op: tpq.EQ})
	}
	switch v.Form {
	case FormAttrCmp:
		out = append(out, CompAtom{Attr: v.Attr, Op: v.Op})
	case FormPrefRel:
		out = append(out, CompAtom{Attr: v.Attr, Order: v.Order})
	}
	return out
}

func (v *VOR) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: x.tag=%s & y.tag=%s", v.Name, v.Tag, v.Tag)
	for _, a := range v.CommonEq {
		fmt.Fprintf(&sb, " & x.%s = y.%s", a, a)
	}
	for _, c := range v.LocalX {
		fmt.Fprintf(&sb, " & x%s", c)
	}
	for _, c := range v.LocalY {
		fmt.Fprintf(&sb, " & y%s", c)
	}
	switch v.Form {
	case FormEqConst:
		fmt.Fprintf(&sb, " & x.%s = %s & y.%s != %s", v.Attr, v.Const, v.Attr, v.Const)
	case FormAttrCmp:
		fmt.Fprintf(&sb, " & x.%s %s y.%s", v.Attr, v.Op, v.Attr)
	case FormPrefRel:
		fmt.Fprintf(&sb, " & %s(x.%s, y.%s)", v.Order.Name(), v.Attr, v.Attr)
	}
	sb.WriteString(" => x < y")
	return sb.String()
}

// KOR is a keyword-based ordering rule: among answers with the rule's
// tag, those containing one of the phrases are preferred. The paper notes
// a rule with several ftcontains predicates "is just a shorthand" for one
// rule per phrase; we keep the phrases together and score each match.
type KOR struct {
	Name    string
	Tag     string
	Phrases []string
	// Weight scales the rule's score contribution; the maximum
	// contribution (the kor-scorebound summand of Algorithm 3) is
	// Weight * len(Phrases) since each phrase's match score is <= 1.
	Weight float64
	// Priority orders KOR application in plans; Section 7.2 observes that
	// "applying the KOR which contributes the highest score first is
	// beneficial as it increases the pruning threshold".
	Priority int
}

// MaxContribution is the largest K increment this rule can add to one
// answer — the summand of Algorithm 3's kor-scorebound.
func (k *KOR) MaxContribution() float64 {
	w := k.Weight
	if w == 0 {
		w = 1
	}
	return w * float64(len(k.Phrases))
}

// EffectiveWeight returns the per-phrase weight (default 1).
func (k *KOR) EffectiveWeight() float64 {
	if k.Weight == 0 {
		return 1
	}
	return k.Weight
}

func (k *KOR) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: x.tag=%s & y.tag=%s", k.Name, k.Tag, k.Tag)
	for _, p := range k.Phrases {
		fmt.Fprintf(&sb, " & ftcontains(x, %q)", p)
	}
	sb.WriteString(" => x < y")
	return sb.String()
}

// SortVORsByPriority returns the profile's VORs in priority order
// (priority 1 first; unprioritized rules last, in declaration order).
func (p *Profile) SortVORsByPriority() []*VOR {
	out := append([]*VOR(nil), p.VORs...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Priority, out[j].Priority
		if pi == 0 {
			pi = int(^uint(0) >> 1)
		}
		if pj == 0 {
			pj = int(^uint(0) >> 1)
		}
		return pi < pj
	})
	return out
}

// SortKORsByPriority returns the KORs in plan-application order.
func (p *Profile) SortKORsByPriority() []*KOR {
	out := append([]*KOR(nil), p.KORs...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Priority, out[j].Priority
		if pi == 0 {
			pi = int(^uint(0) >> 1)
		}
		if pj == 0 {
			pj = int(^uint(0) >> 1)
		}
		return pi < pj
	})
	return out
}

// CompareVORs applies the profile's VORs in priority order and returns
// the first non-zero verdict: +1 when a is preferred, -1 when b is.
// Each rule contributes its genuine partial order, so two answers the
// rules never relate compare as 0 even when they differ — use
// LinearCompareVORs wherever a sort needs a deterministic order.
func (p *Profile) CompareVORs(a, b []Key) int {
	rules := p.SortVORsByPriority()
	for _, v := range rules {
		idx := p.vorIndex(v)
		if c := v.Compare(&a[idx], &b[idx]); c != 0 {
			return c
		}
	}
	return 0
}

// VORPriorityOrder returns indices into p.VORs in rule-application order
// (ascending priority, declaration order for ties and for unprioritized
// rules). Callers on hot comparison paths compute it once and reuse it.
func (p *Profile) VORPriorityOrder() []int {
	rules := p.SortVORsByPriority()
	out := make([]int, len(rules))
	for i, v := range rules {
		out[i] = p.vorIndex(v)
	}
	return out
}

// LinearCompareVORs is the prioritized-lexicographic composition of each
// rule's LinearCompare: a deterministic weak order that extends the
// rules' partial order (CompareVORs never disagrees with it on ordered
// pairs). Sorting with CompareVORs itself is unsound — a partial order
// plus a NodeID tie-break is cyclic (a ≺-wins over b, b beats c on
// NodeID, c beats a on NodeID), and sort.SliceStable over a cyclic
// comparator returns implementation-defined output that can even place a
// dominated answer above its dominator. LinearCompareVORs is what every
// rank-order sort, top-k list insertion and parallel merge must use.
func (p *Profile) LinearCompareVORs(a, b []Key) int {
	for _, idx := range p.VORPriorityOrder() {
		if c := p.VORs[idx].LinearCompare(&a[idx], &b[idx]); c != 0 {
			return c
		}
	}
	return 0
}

func (p *Profile) vorIndex(v *VOR) int {
	for i, w := range p.VORs {
		if w == v {
			return i
		}
	}
	return -1
}
