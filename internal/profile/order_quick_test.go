package profile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOrder builds a random DAG-backed partial order over a small
// domain (edges only added when acyclic).
func randomOrder(r *rand.Rand) *PartialOrder {
	vals := []string{"a", "b", "c", "d", "e", "f"}
	po := NewPartialOrder("q")
	n := r.Intn(10)
	for i := 0; i < n; i++ {
		x := vals[r.Intn(len(vals))]
		y := vals[r.Intn(len(vals))]
		_ = po.Add(x, y) // cycle-creating adds are rejected; that's fine
	}
	return po
}

// TestQuickPartialOrderIsStrict: Prefers must be irreflexive,
// antisymmetric and transitive on random orders — the Section 3.2
// requirement ("prefRel ... is a strict partial order").
func TestQuickPartialOrderIsStrict(t *testing.T) {
	vals := []string{"a", "b", "c", "d", "e", "f"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		po := randomOrder(r)
		for _, x := range vals {
			if po.Prefers(x, x) {
				return false // irreflexive
			}
			for _, y := range vals {
				if po.Prefers(x, y) && po.Prefers(y, x) {
					return false // antisymmetric
				}
				for _, z := range vals {
					if po.Prefers(x, y) && po.Prefers(y, z) && !po.Prefers(x, z) {
						return false // transitive
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevelsAreLinearExtension: Level respects every stated strict
// preference (lower level = more preferred).
func TestQuickLevelsAreLinearExtension(t *testing.T) {
	vals := []string{"a", "b", "c", "d", "e", "f"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		po := randomOrder(r)
		for _, x := range vals {
			for _, y := range vals {
				if po.Prefers(x, y) && po.Level(x) >= po.Level(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
