package profile

import (
	"strings"
	"testing"

	"repro/internal/tpq"
)

func TestRelaxRuleParsesAndApplies(t *testing.T) {
	p := MustParseProfile(`sr r1: if pc(car, description) then relax pc(car, description)`)
	if p.SRs[0].Kind != SRRelax {
		t.Fatalf("kind = %v", p.SRs[0].Kind)
	}
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	out, ok := p.SRs[0].Apply(q)
	if !ok {
		t.Fatal("relax must apply")
	}
	d := out.Nodes[out.FindByTag("description")[0]]
	if d.Axis != tpq.Descendant {
		t.Fatalf("edge not relaxed: %+v", d)
	}
	// Original untouched.
	if q.Nodes[q.FindByTag("description")[0]].Axis != tpq.Child {
		t.Errorf("Apply mutated input")
	}
	// Relaxation broadens: the relaxed query contains the original.
	if !tpq.Contains(out, q) {
		t.Errorf("relaxed query must subsume the original:\n%s\n%s", out, q)
	}
	if tpq.Contains(q, out) {
		t.Errorf("relaxation must be strict here")
	}
}

func TestRelaxInapplicableOnAdEdge(t *testing.T) {
	p := MustParseProfile(`sr r1: if ad(car, description) then relax pc(car, description)`)
	// The query has //description below car: the condition (ad) holds but
	// there is no pc-edge to relax.
	q := tpq.MustParse(`//car[.//description]`)
	if _, ok := p.SRs[0].Apply(q); ok {
		t.Errorf("relax must fail with no pc-edge present")
	}
}

func TestRelaxRejectsNonStructuralAtoms(t *testing.T) {
	if _, err := ParseProfile(`sr r: if pc(a,b) then relax ftcontains(b, "x")`); err == nil {
		t.Errorf("relax of an ftcontains atom must be rejected")
	}
	if _, err := ParseProfile(`sr r: if pc(a,b) then relax ad(a, b)`); err == nil {
		t.Errorf("relax of an ad atom must be rejected")
	}
}

func TestRelaxEncodeOptional(t *testing.T) {
	p := MustParseProfile(`sr r1 priority 1: if pc(car, description) then relax pc(car, description)`)
	q := tpq.MustParse(`//car[./description]`)
	out, ok := p.SRs[0].EncodeOptional(q)
	if !ok {
		t.Fatal("encode must apply")
	}
	if !strings.Contains(out.String(), "//description") {
		t.Errorf("encoded query keeps pc edge: %s", out)
	}
}

func TestRelaxString(t *testing.T) {
	p := MustParseProfile(`sr r1: if pc(car, description) then relax pc(car, description)`)
	s := p.SRs[0].String()
	if !strings.Contains(s, "relax") {
		t.Errorf("String = %q", s)
	}
}
