package profile

import (
	"strings"
	"testing"
)

// TestDuplicateRuleIdentifiers pins the P001 parse-time rejection:
// rule names share one namespace across sr/vor/kor declarations.
func TestDuplicateRuleIdentifiers(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string // "" = must parse
	}{
		{
			name: "distinct names accepted",
			src: `sr a: if pc(car, d) then add ftcontains(d, "x")
vor b: x.tag = car & y.tag = car & x.m < y.m => x < y
kor c: x.tag = car & y.tag = car & ftcontains(x, "bid") => x < y`,
		},
		{
			name: "same body different names accepted",
			src: `sr a: if pc(car, d) then add ftcontains(d, "x")
sr b: if pc(car, d) then add ftcontains(d, "x")`,
		},
		{
			name: "duplicate sr name rejected",
			src: `sr a: if pc(car, d) then add ftcontains(d, "x")
sr a: if pc(car, d) then remove ftcontains(d, "x")`,
			wantErr: "[P001]",
		},
		{
			name: "duplicate vor name rejected",
			src: `vor w: x.tag = car & y.tag = car & x.m < y.m => x < y
vor w: x.tag = car & y.tag = car & x.p < y.p => x < y`,
			wantErr: "[P001]",
		},
		{
			name: "duplicate kor name rejected",
			src: `kor k: x.tag = car & y.tag = car & ftcontains(x, "a") => x < y
kor k: x.tag = car & y.tag = car & ftcontains(x, "b") => x < y`,
			wantErr: "[P001]",
		},
		{
			name: "vor reusing sr name rejected",
			src: `sr w: if pc(car, d) then add ftcontains(d, "x")
vor w: x.tag = car & y.tag = car & x.m < y.m => x < y`,
			wantErr: "already used by a sr [P001]",
		},
		{
			name: "kor reusing vor name rejected",
			src: `vor w: x.tag = car & y.tag = car & x.m < y.m => x < y
kor w: x.tag = car & y.tag = car & ftcontains(x, "bid") => x < y`,
			wantErr: "already used by a vor [P001]",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := ParseProfile(c.src)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("want accepted, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want rejection, parsed %v", p)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Errorf("error %q should carry the offending line", err)
			}
		})
	}
}
