package profile

import (
	"fmt"
	"strings"

	"repro/internal/tpq"
)

// SRKind discriminates the three scoping-rule actions of Section 3.1:
// add rules narrow the search, delete and replace rules broaden it.
type SRKind uint8

const (
	SRAdd SRKind = iota
	SRDelete
	SRReplace
	// SRRelax generalizes structural predicates (pc-edge to ad-edge),
	// the classic FleXPath relaxation [3, 19] the paper's Section 3.1
	// lists among the broadening rewritings ("a parent-child
	// relationship may be relaxed to ancestor-descendant").
	SRRelax
)

func (k SRKind) String() string {
	switch k {
	case SRAdd:
		return "add"
	case SRDelete:
		return "remove"
	case SRReplace:
		return "replace"
	case SRRelax:
		return "relax"
	}
	return "?"
}

// AtomKind discriminates condition/conclusion atoms.
type AtomKind uint8

const (
	// AtomPC is a structural parent-child atom pc(X, Y).
	AtomPC AtomKind = iota
	// AtomAD is a structural ancestor-descendant atom ad(X, Y).
	AtomAD
	// AtomFT is ftcontains(X, "phrase").
	AtomFT
	// AtomCmp is a constraint X relOp value (on X's content) or
	// X.Attr relOp value.
	AtomCmp
)

// Atom is one predicate of a scoping rule's condition or conclusion.
// Variables are identified by tag names, as in the paper's Fig. 2 where
// conditions like pc(car, description) name pattern nodes by their tags.
type Atom struct {
	Kind   AtomKind
	X, Y   string // X for all atoms; Y for structural atoms
	Phrase string // AtomFT
	Attr   string // AtomCmp: "" means X's own content
	Op     tpq.RelOp
	Val    tpq.Value
}

func (a Atom) String() string {
	switch a.Kind {
	case AtomPC:
		return fmt.Sprintf("pc(%s, %s)", a.X, a.Y)
	case AtomAD:
		return fmt.Sprintf("ad(%s, %s)", a.X, a.Y)
	case AtomFT:
		return fmt.Sprintf("ftcontains(%s, %q)", a.X, a.Phrase)
	case AtomCmp:
		lhs := a.X
		if a.Attr != "" {
			lhs += "." + a.Attr
		}
		return fmt.Sprintf("%s %s %s", lhs, a.Op, a.Val)
	}
	return "?"
}

// SR is a scoping rule: if (condition) then (action, conclusion) for
// add/delete rules, or if (condition) then replace E with E' for replace
// rules (Section 3.1).
type SR struct {
	Name string
	Kind SRKind
	Cond []Atom
	// Concl is the add/delete payload; for replace rules ReplWhat is
	// deleted and ReplWith added.
	Concl    []Atom
	ReplWhat []Atom
	ReplWith []Atom
	// Priority fixes the application order when rules conflict (Section
	// 5.1); lower number = applied earlier. 0 means unprioritized.
	Priority int
	// Weight is the score contributed by the rule's optional predicates
	// under flock encoding (default 1).
	Weight float64

	condQ *tpq.Query // compiled condition pattern, built lazily
}

// EffectiveWeight returns the flock-encoding score weight (default 1).
func (sr *SR) EffectiveWeight() float64 {
	if sr.Weight == 0 {
		return 1
	}
	return sr.Weight
}

func (sr *SR) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: if ", sr.Name)
	for i, a := range sr.Cond {
		if i > 0 {
			sb.WriteString(" & ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(" then ")
	switch sr.Kind {
	case SRReplace:
		sb.WriteString("replace ")
		for i, a := range sr.ReplWhat {
			if i > 0 {
				sb.WriteString(" & ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString(" with ")
		for i, a := range sr.ReplWith {
			if i > 0 {
				sb.WriteString(" & ")
			}
			sb.WriteString(a.String())
		}
	default:
		sb.WriteString(sr.Kind.String())
		sb.WriteString(" ")
		for i, a := range sr.Concl {
			if i > 0 {
				sb.WriteString(" & ")
			}
			sb.WriteString(a.String())
		}
	}
	return sb.String()
}

// CondQuery compiles the condition atoms into an unanchored tree pattern
// for subsumption checks. The atoms must form a connected tree over the
// variables (the paper's well-formedness requirement).
func (sr *SR) CondQuery() (*tpq.Query, error) {
	if sr.condQ != nil {
		return sr.condQ, nil
	}
	q, _, err := atomsToPattern(sr.Cond)
	if err != nil {
		return nil, fmt.Errorf("profile: sr %s: %w", sr.Name, err)
	}
	sr.condQ = q
	return q, nil
}

// atomsToPattern builds a tree pattern from atoms and returns it plus the
// variable-to-node mapping.
func atomsToPattern(atoms []Atom) (*tpq.Query, map[string]int, error) {
	if len(atoms) == 0 {
		return nil, nil, fmt.Errorf("empty atom conjunction")
	}
	type edge struct {
		parent, child string
		axis          tpq.Axis
	}
	var edges []edge
	vars := map[string]bool{}
	for _, a := range atoms {
		vars[a.X] = true
		switch a.Kind {
		case AtomPC:
			vars[a.Y] = true
			edges = append(edges, edge{a.X, a.Y, tpq.Child})
		case AtomAD:
			vars[a.Y] = true
			edges = append(edges, edge{a.X, a.Y, tpq.Descendant})
		}
	}
	// Find the root: the unique variable that is never a child.
	isChild := map[string]bool{}
	parentOf := map[string]edge{}
	for _, e := range edges {
		if isChild[e.child] {
			return nil, nil, fmt.Errorf("variable %s has two parents", e.child)
		}
		isChild[e.child] = true
		parentOf[e.child] = e
	}
	var root string
	for v := range vars {
		if !isChild[v] {
			if root != "" {
				return nil, nil, fmt.Errorf("atoms are not connected: roots %s and %s", root, v)
			}
			root = v
		}
	}
	if root == "" {
		return nil, nil, fmt.Errorf("structural atoms form a cycle")
	}
	q := tpq.NewQuery(root, tpq.Descendant)
	nodeOf := map[string]int{root: 0}
	// Attach children until all variables are placed.
	for placed := 1; placed < len(vars); {
		progress := false
		for v := range vars {
			if _, done := nodeOf[v]; done {
				continue
			}
			e := parentOf[v]
			p, ok := nodeOf[e.parent]
			if !ok {
				continue
			}
			nodeOf[v] = q.AddChild(p, v, e.axis)
			placed++
			progress = true
		}
		if !progress {
			return nil, nil, fmt.Errorf("atoms are not connected")
		}
	}
	for _, a := range atoms {
		n, ok := nodeOf[a.X]
		if !ok {
			return nil, nil, fmt.Errorf("unknown variable %s", a.X)
		}
		switch a.Kind {
		case AtomFT:
			q.Nodes[n].FT = append(q.Nodes[n].FT, tpq.FTPred{Phrase: a.Phrase})
		case AtomCmp:
			q.Nodes[n].Constraints = append(q.Nodes[n].Constraints,
				tpq.Constraint{Attr: a.Attr, Op: a.Op, Val: a.Val})
		}
	}
	return q, nodeOf, nil
}

// Applicable reports whether the rule's condition is subsumed by q
// (Section 5.1: "a rule p is applicable to a query Q if the condition in
// p is subsumed by Q").
func (sr *SR) Applicable(q *tpq.Query) bool {
	cond, err := sr.CondQuery()
	if err != nil {
		return false
	}
	return tpq.SubsumedBy(cond, q)
}

// Apply rewrites q by this rule (literal rewriting semantics, used to
// build the query flock and to detect conflicts). It returns the
// rewritten query and true, or (q, false) when the rule is inapplicable
// or its action cannot be carried out. q itself is never mutated.
func (sr *SR) Apply(q *tpq.Query) (*tpq.Query, bool) {
	binding, ok := sr.bind(q)
	if !ok {
		return q, false
	}
	out := q.Clone()
	switch sr.Kind {
	case SRAdd:
		if !applyAdd(out, binding, sr.Concl, false, 0) {
			return q, false
		}
	case SRDelete:
		if !applyDelete(out, binding, sr.Concl, false, 0) {
			return q, false
		}
	case SRReplace:
		if !applyDelete(out, binding, sr.ReplWhat, false, 0) {
			return q, false
		}
		if !applyAdd(out, binding, sr.ReplWith, false, 0) {
			return q, false
		}
	case SRRelax:
		if !applyRelax(out, binding, sr.Concl) {
			return q, false
		}
	}
	return out, true
}

// EncodeOptional enforces the rule on q via the flock encoding of Section
// 6.2: instead of literally rewriting, added predicates become optional
// score-contributing (outer-joined) predicates, and deleted predicates
// are kept but demoted to optional — so answers of both the original and
// the rewritten query are captured, with the preferred ones scoring
// higher. Returns (rewritten, true) or (q, false) when inapplicable.
func (sr *SR) EncodeOptional(q *tpq.Query) (*tpq.Query, bool) {
	binding, ok := sr.bind(q)
	if !ok {
		return q, false
	}
	w := sr.EffectiveWeight()
	out := q.Clone()
	switch sr.Kind {
	case SRAdd:
		if !applyAdd(out, binding, sr.Concl, true, w) {
			return q, false
		}
	case SRDelete:
		if !applyDelete(out, binding, sr.Concl, true, w) {
			return q, false
		}
	case SRReplace:
		if !applyDelete(out, binding, sr.ReplWhat, true, w) {
			return q, false
		}
		if !applyAdd(out, binding, sr.ReplWith, true, w) {
			return q, false
		}
	case SRRelax:
		// Edge relaxation is already non-filtering in spirit (every
		// pc-match is an ad-match); the literal rewrite is the encoding.
		if !applyRelax(out, binding, sr.Concl) {
			return q, false
		}
	}
	return out, true
}

// applyRelax generalizes each pc(X, Y) conclusion atom into an ad-edge
// on the bound child node. Atoms other than pc are rejected.
func applyRelax(q *tpq.Query, binding map[string]int, atoms []Atom) bool {
	for _, a := range atoms {
		if a.Kind != AtomPC {
			return false
		}
		p, okP := binding[a.X]
		if !okP {
			return false
		}
		relaxed := false
		for _, c := range q.Nodes[p].Children {
			if q.Nodes[c].Tag == a.Y && q.Nodes[c].Axis == tpq.Child {
				q.RelaxEdge(c)
				relaxed = true
				break
			}
		}
		if !relaxed {
			return false
		}
	}
	return true
}

// bind finds the condition's embedding into q and returns the variable ->
// q-node binding.
func (sr *SR) bind(q *tpq.Query) (map[string]int, bool) {
	cond, err := sr.CondQuery()
	if err != nil {
		return nil, false
	}
	assign, ok := tpq.Embedding(cond, q)
	if !ok {
		return nil, false
	}
	binding := make(map[string]int, len(cond.Nodes))
	for i, n := range cond.Nodes {
		binding[n.Tag] = assign[i]
	}
	return binding, true
}

// applyAdd attaches the conclusion atoms to q through the binding.
// Structural atoms may introduce new pattern nodes; FT and Cmp atoms
// attach to bound or newly created nodes. When optional is true the added
// material is marked optional with weight w.
func applyAdd(q *tpq.Query, binding map[string]int, atoms []Atom, optional bool, w float64) bool {
	local := make(map[string]int, len(binding))
	for k, v := range binding {
		local[k] = v
	}
	// Structural atoms first (they may create attachment points). Loop to
	// a fixpoint so chains pc(a,b) & pc(b,c) resolve in any order.
	pending := append([]Atom(nil), atoms...)
	for {
		progress := false
		rest := pending[:0]
		for _, a := range pending {
			if a.Kind != AtomPC && a.Kind != AtomAD {
				rest = append(rest, a)
				continue
			}
			p, ok := local[a.X]
			if !ok {
				rest = append(rest, a)
				continue
			}
			axis := tpq.Child
			if a.Kind == AtomAD {
				axis = tpq.Descendant
			}
			id := q.AddChild(p, a.Y, axis)
			if optional {
				q.Nodes[id].Optional = true
				q.Nodes[id].Weight = w
			}
			local[a.Y] = id
			progress = true
		}
		pending = rest
		if !progress {
			break
		}
	}
	for _, a := range pending {
		switch a.Kind {
		case AtomPC, AtomAD:
			return false // dangling structural atom (unbound parent)
		case AtomFT:
			n, ok := local[a.X]
			if !ok {
				return false
			}
			q.Nodes[n].FT = append(q.Nodes[n].FT,
				tpq.FTPred{Phrase: a.Phrase, Optional: optional, Weight: optW(optional, w)})
		case AtomCmp:
			n, ok := local[a.X]
			if !ok {
				return false
			}
			q.Nodes[n].Constraints = append(q.Nodes[n].Constraints,
				tpq.Constraint{Attr: a.Attr, Op: a.Op, Val: a.Val,
					Optional: optional, Weight: optW(optional, w)})
		}
	}
	return true
}

func optW(optional bool, w float64) float64 {
	if optional {
		return w
	}
	return 0
}

// applyDelete removes (or, when optional is true, demotes to optional)
// the conclusion's predicates. FT and Cmp atoms remove matching
// predicates at or below the bound node (ftcontains holds at any depth);
// structural atoms remove a matching child subtree. Deleting is a no-op
// success when nothing matches — the rule still applied, the query simply
// did not contain the optional part.
func applyDelete(q *tpq.Query, binding map[string]int, atoms []Atom, optional bool, w float64) bool {
	for _, a := range atoms {
		n, ok := binding[a.X]
		if !ok {
			return false
		}
		switch a.Kind {
		case AtomFT:
			if optional {
				q.SetFTOptional(n, a.Phrase, w)
			} else {
				q.RemoveFT(n, a.Phrase)
			}
		case AtomCmp:
			if optional {
				q.SetConstraintOptional(n, a.Attr, a.Op, a.Val, w)
			} else {
				q.RemoveConstraint(n, a.Attr, a.Op, a.Val)
			}
		case AtomPC, AtomAD:
			// Remove a matching child subtree of the bound parent.
			for _, c := range q.Nodes[n].Children {
				if q.Nodes[c].Tag != a.Y {
					continue
				}
				if a.Kind == AtomPC && q.Nodes[c].Axis != tpq.Child {
					continue
				}
				if optional {
					q.Nodes[c].Optional = true
					q.Nodes[c].Weight = w
				} else if err := q.RemoveNode(c); err != nil {
					return false
				}
				break
			}
		}
	}
	return true
}
