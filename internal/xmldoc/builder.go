package xmldoc

import "fmt"

// Builder constructs a Document in a single preorder pass. It is the
// programmatic construction API used by the data generators and tests;
// Parse builds on it for textual XML.
//
//	b := xmldoc.NewBuilder()
//	b.Start("car", xmldoc.Attr{Name: "vin", Value: "123"})
//	b.Start("price")
//	b.Text("500")
//	b.End() // price
//	b.End() // car
//	doc, err := b.Document()
type Builder struct {
	nodes   []Node
	stack   []NodeID
	lastSib []NodeID // parallel to stack: last child added at that level
	textLen int
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// NewBuilderCap returns a Builder with capacity for n nodes preallocated,
// avoiding re-allocation while generating large synthetic documents.
func NewBuilderCap(n int) *Builder {
	return &Builder{nodes: make([]Node, 0, n)}
}

func (b *Builder) push(n Node) NodeID {
	id := NodeID(len(b.nodes))
	n.Start = int32(id)
	n.End = int32(id)
	n.First = InvalidNode
	n.Next = InvalidNode
	if len(b.stack) == 0 {
		n.Parent = InvalidNode
		n.Level = 0
	} else {
		top := len(b.stack) - 1
		parent := b.stack[top]
		n.Parent = parent
		n.Level = b.nodes[parent].Level + 1
		if b.lastSib[top] == InvalidNode {
			b.nodes[parent].First = id
		} else {
			b.nodes[b.lastSib[top]].Next = id
		}
		b.lastSib[top] = id
	}
	b.nodes = append(b.nodes, n)
	return id
}

// Start opens an element with the given tag and attributes and returns its
// ID. The element stays open until the matching End.
func (b *Builder) Start(tag string, attrs ...Attr) NodeID {
	if b.err != nil {
		return InvalidNode
	}
	if tag == "" {
		b.err = fmt.Errorf("xmldoc: empty element tag")
		return InvalidNode
	}
	if len(b.stack) == 0 && len(b.nodes) > 0 {
		b.err = fmt.Errorf("xmldoc: multiple root elements")
		return InvalidNode
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	id := b.push(Node{Kind: Element, Tag: tag, Attrs: as})
	b.stack = append(b.stack, id)
	b.lastSib = append(b.lastSib, InvalidNode)
	return id
}

// Text appends a character-data node under the currently open element.
// Empty strings are ignored.
func (b *Builder) Text(s string) NodeID {
	if b.err != nil {
		return InvalidNode
	}
	if s == "" {
		return InvalidNode
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmldoc: text outside of any element")
		return InvalidNode
	}
	b.textLen += len(s)
	return b.push(Node{Kind: Text, Text: s})
}

// End closes the most recently opened element.
func (b *Builder) End() {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmldoc: End with no open element")
		return
	}
	top := len(b.stack) - 1
	id := b.stack[top]
	b.nodes[id].End = int32(len(b.nodes) - 1)
	b.stack = b.stack[:top]
	b.lastSib = b.lastSib[:top]
}

// Elem writes a complete leaf element with text content in one call.
func (b *Builder) Elem(tag, text string, attrs ...Attr) NodeID {
	id := b.Start(tag, attrs...)
	b.Text(text)
	b.End()
	return id
}

// Document finalizes and returns the built document. It fails if elements
// remain open or no root was created.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmldoc: %d unclosed element(s)", len(b.stack))
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("xmldoc: empty document")
	}
	d := &Document{nodes: b.nodes, textLen: b.textLen}
	d.buildPositions()
	return d, nil
}

// MustDocument is Document for tests and generators with known-good input;
// it panics on error.
func (b *Builder) MustDocument() *Document {
	d, err := b.Document()
	if err != nil {
		panic(err)
	}
	return d
}
