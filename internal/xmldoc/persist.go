package xmldoc

import (
	"encoding/gob"
	"fmt"
	"io"
)

// persistedDocument is the on-disk form of a Document.
type persistedDocument struct {
	Version int
	Nodes   []Node
	TextLen int
}

// persistVersion guards the snapshot format.
const persistVersion = 1

// Save writes the document in a binary snapshot format (gob). The
// snapshot restores byte-for-byte identical documents with Load.
func (d *Document) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(persistedDocument{
		Version: persistVersion,
		Nodes:   d.nodes,
		TextLen: d.textLen,
	})
}

// Load reads a document snapshot written by Save, validating the
// structural invariants (parent pointers, region encoding, levels) so a
// corrupted or truncated snapshot cannot produce an inconsistent tree.
func Load(r io.Reader) (*Document, error) {
	var p persistedDocument
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("xmldoc: load: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("xmldoc: load: unsupported snapshot version %d", p.Version)
	}
	d := &Document{nodes: p.Nodes, textLen: p.TextLen}
	if err := d.validate(); err != nil {
		return nil, fmt.Errorf("xmldoc: load: corrupt snapshot: %w", err)
	}
	d.buildPositions()
	return d, nil
}

// validate checks the arena invariants that builders guarantee.
func (d *Document) validate() error {
	n := len(d.nodes)
	if n == 0 {
		return fmt.Errorf("empty document")
	}
	if d.nodes[0].Parent != InvalidNode || d.nodes[0].Level != 0 {
		return fmt.Errorf("node 0 is not a root")
	}
	textLen := 0
	for i := range d.nodes {
		nd := &d.nodes[i]
		if nd.Start != int32(i) {
			return fmt.Errorf("node %d: Start %d != index", i, nd.Start)
		}
		if nd.End < nd.Start || int(nd.End) >= n {
			return fmt.Errorf("node %d: End %d out of range", i, nd.End)
		}
		if i > 0 {
			p := nd.Parent
			if p == InvalidNode {
				return fmt.Errorf("node %d: second root", i)
			}
			if p < 0 || int(p) >= n || p >= NodeID(i) {
				return fmt.Errorf("node %d: bad parent %d", i, p)
			}
			pp := &d.nodes[p]
			if !(pp.Start < nd.Start && nd.End <= pp.End) {
				return fmt.Errorf("node %d: region not inside parent %d", i, p)
			}
			if nd.Level != pp.Level+1 {
				return fmt.Errorf("node %d: level %d, parent level %d", i, nd.Level, pp.Level)
			}
		}
		if nd.Kind == Text {
			if nd.First != InvalidNode {
				return fmt.Errorf("node %d: text node with children", i)
			}
			textLen += len(nd.Text)
		}
		for c := nd.First; c != InvalidNode; c = d.nodes[c].Next {
			if c <= NodeID(i) || int(c) >= n {
				return fmt.Errorf("node %d: bad child %d", i, c)
			}
			if d.nodes[c].Parent != NodeID(i) {
				return fmt.Errorf("node %d: child %d disowns it", i, c)
			}
		}
	}
	if textLen != d.textLen {
		return fmt.Errorf("text length mismatch: %d vs %d", textLen, d.textLen)
	}
	return nil
}
