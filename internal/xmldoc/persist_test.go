package xmldoc

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := mustParse(t, carXML)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.XMLString() != d2.XMLString() {
		t.Fatalf("round trip changed the document")
	}
	if d.TotalTextLen() != d2.TotalTextLen() {
		t.Errorf("text length changed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, input := range [][]byte{nil, []byte("x"), []byte("garbage input here")} {
		if _, err := Load(bytes.NewReader(input)); err == nil {
			t.Errorf("Load(%q) should fail", input)
		}
	}
}

// TestPropertySaveLoadRandomTrees round-trips random documents.
func TestPropertySaveLoadRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for iter := 0; iter < 200; iter++ {
		d := randomTree(r, 2+r.Intn(60))
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		d2, err := Load(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if d.Len() != d2.Len() {
			t.Fatalf("node count changed")
		}
		for i := 0; i < d.Len(); i++ {
			a, b := d.Node(NodeID(i)), d2.Node(NodeID(i))
			if a.Kind != b.Kind || a.Tag != b.Tag || a.Text != b.Text ||
				a.Parent != b.Parent || a.Start != b.Start || a.End != b.End {
				t.Fatalf("node %d differs after round trip", i)
			}
		}
	}
}

// TestPropertyValidateCatchesCorruption: flipping structural fields of a
// loaded snapshot must be caught by validation (content-only corruption
// can go unnoticed; structure must not).
func TestPropertyValidateCatchesCorruption(t *testing.T) {
	d := mustParse(t, carXML)
	corruptions := []func(*Document){
		func(d *Document) { d.nodes[3].Parent = 99 },
		func(d *Document) { d.nodes[2].Start = 0 },
		func(d *Document) { d.nodes[1].End = int32(len(d.nodes) + 5) },
		func(d *Document) { d.nodes[4].Level += 3 },
		func(d *Document) { d.nodes[0].Parent = 1 },
		func(d *Document) { d.textLen += 10 },
	}
	for i, corrupt := range corruptions {
		cp := mustParse(t, carXML)
		corrupt(cp)
		if err := cp.validate(); err == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
	// The pristine document validates.
	if err := d.validate(); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}
