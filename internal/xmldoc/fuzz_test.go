package xmldoc

import "testing"

// FuzzParseXML checks the XML front end never panics and that accepted
// documents round-trip through the serializer.
func FuzzParseXML(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>text</b><c x="1"/></a>`,
		`<dealer><car><price>500</price></car></dealer>`,
		`<a>x &lt; y &amp; z</a>`,
		`<a xmlns:n="u"><n:b/></a>`,
		`<a><b></a></b>`, `<a>`, ``, `text only`, `<a><![CDATA[cd]]></a>`,
		`<a><!-- comment --><?pi data?><b/></a>`,
		"<a>\xff\xfe</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		if err := d.validate(); err != nil {
			t.Fatalf("accepted document invalid: %v\nsrc: %q", err, src)
		}
		d2, err := ParseString(d.XMLString())
		if err != nil {
			t.Fatalf("serializer output unparseable: %v\nsrc: %q\nout: %q", err, src, d.XMLString())
		}
		if d.Len() != d2.Len() {
			t.Fatalf("round trip changed node count: %d -> %d\nsrc: %q", d.Len(), d2.Len(), src)
		}
	})
}
