// Package xmldoc implements the XML document substrate used by PIMENTO:
// an arena-allocated DOM with region (interval) encoding for constant-time
// structural predicates, parent pointers for parent-child checks, and
// typed value access for constraint predicates such as price < 2000.
//
// The model intentionally mirrors what the paper's evaluation needs:
// element trees with text content, where an "attribute" of an element (as
// in x.color or x.mileage of Section 3.2) is either an XML attribute or
// the text of a single child element with that tag.
package xmldoc

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeID identifies a node inside a Document. IDs are dense indices into
// the document's node arena and are assigned in document (preorder) order,
// so sorting answers by NodeID yields document order.
type NodeID int32

// InvalidNode is the null NodeID; it is the parent of the root and the
// child/sibling of nodes that have none.
const InvalidNode NodeID = -1

// NodeKind discriminates element nodes from text nodes.
type NodeKind uint8

const (
	// Element is an XML element node with a tag.
	Element NodeKind = iota
	// Text is a character-data node; its content is in Node.Text.
	Text
)

// Attr is an XML attribute on an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is a single DOM node. Start/End implement region encoding: for two
// nodes a and d, a is a proper ancestor of d iff
// a.Start < d.Start && d.End >= n.End ... see Document.IsAncestor.
type Node struct {
	Kind   NodeKind
	Tag    string // element tag; empty for text nodes
	Text   string // character data; empty for element nodes
	Attrs  []Attr // XML attributes; nil for text nodes
	Parent NodeID
	First  NodeID // first child
	Next   NodeID // next sibling
	Start  int32  // preorder position (== its own NodeID by construction)
	End    int32  // largest Start in the subtree rooted here
	Level  int32  // depth; the root has level 0
}

// Document is an immutable parsed XML document. Nodes are stored in a
// single arena in preorder so that NodeID, Start and arena index coincide.
type Document struct {
	nodes []Node
	// textLen caches the total character-data length, used by scoring.
	textLen int
	// post/level are the flat positional arrays behind Pos(); see pos.go.
	post  []int32
	level []int32
}

// Root returns the document's root element ID, or InvalidNode for an
// empty document.
func (d *Document) Root() NodeID {
	if len(d.nodes) == 0 {
		return InvalidNode
	}
	return 0
}

// Len returns the number of nodes (elements and text nodes).
func (d *Document) Len() int { return len(d.nodes) }

// Node returns the node with the given ID. The returned pointer is valid
// for the lifetime of the document and must not be mutated.
func (d *Document) Node(id NodeID) *Node {
	return &d.nodes[id]
}

// Kind returns the node kind of id.
func (d *Document) Kind(id NodeID) NodeKind { return d.nodes[id].Kind }

// Tag returns the element tag of id (empty for text nodes).
func (d *Document) Tag(id NodeID) string { return d.nodes[id].Tag }

// Parent returns the parent of id, or InvalidNode for the root.
func (d *Document) Parent(id NodeID) NodeID { return d.nodes[id].Parent }

// Level returns the depth of id (root is 0).
func (d *Document) Level(id NodeID) int32 { return d.nodes[id].Level }

// IsAncestor reports whether a is a proper ancestor of dnode, in O(1)
// via region encoding.
func (d *Document) IsAncestor(a, dnode NodeID) bool {
	if a == dnode || a == InvalidNode || dnode == InvalidNode {
		return false
	}
	na, nd := &d.nodes[a], &d.nodes[dnode]
	return na.Start < nd.Start && nd.End <= na.End
}

// IsParent reports whether p is the parent of c.
func (d *Document) IsParent(p, c NodeID) bool {
	return c != InvalidNode && d.nodes[c].Parent == p
}

// Contains reports whether container is a (a == d allowed) ancestor-or-self
// of contained.
func (d *Document) Contains(container, contained NodeID) bool {
	return container == contained || d.IsAncestor(container, contained)
}

// Children returns the element/text children of id in document order.
func (d *Document) Children(id NodeID) []NodeID {
	var out []NodeID
	for c := d.nodes[id].First; c != InvalidNode; c = d.nodes[c].Next {
		out = append(out, c)
	}
	return out
}

// ChildElements returns the element children of id in document order.
func (d *Document) ChildElements(id NodeID) []NodeID {
	var out []NodeID
	for c := d.nodes[id].First; c != InvalidNode; c = d.nodes[c].Next {
		if d.nodes[c].Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// ChildByTag returns the first child element of id with the given tag, or
// InvalidNode.
func (d *Document) ChildByTag(id NodeID, tag string) NodeID {
	for c := d.nodes[id].First; c != InvalidNode; c = d.nodes[c].Next {
		if d.nodes[c].Kind == Element && d.nodes[c].Tag == tag {
			return c
		}
	}
	return InvalidNode
}

// AttrValue resolves the paper's node "attribute" access x.attr: it
// returns the value of the XML attribute attr if present, otherwise the
// text content of the first child element tagged attr. The second return
// is false if neither exists.
func (d *Document) AttrValue(id NodeID, attr string) (string, bool) {
	n := &d.nodes[id]
	for _, a := range n.Attrs {
		if a.Name == attr {
			return a.Value, true
		}
	}
	if c := d.ChildByTag(id, attr); c != InvalidNode {
		return d.TextContent(c), true
	}
	return "", false
}

// DeepValue resolves x.attr like AttrValue but additionally falls back
// to the first descendant element tagged attr (in document order). The
// paper's ordering rules read x.age on persons whose age element is
// nested inside a profile child; this is the resolution rule the vor
// operator uses.
func (d *Document) DeepValue(id NodeID, attr string) (string, bool) {
	if v, ok := d.AttrValue(id, attr); ok {
		return v, true
	}
	n := &d.nodes[id]
	for i := id + 1; int32(i) <= n.End; i++ {
		if d.nodes[i].Kind == Element && d.nodes[i].Tag == attr {
			return d.TextContent(i), true
		}
	}
	return "", false
}

// NumericValue resolves x.attr as a float64; ok is false when the
// attribute is missing or not numeric.
func (d *Document) NumericValue(id NodeID, attr string) (float64, bool) {
	s, ok := d.AttrValue(id, attr)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// TextContent returns the concatenated character data of the subtree
// rooted at id, in document order.
func (d *Document) TextContent(id NodeID) string {
	n := &d.nodes[id]
	if n.Kind == Text {
		return n.Text
	}
	var sb strings.Builder
	d.appendText(id, &sb)
	return sb.String()
}

func (d *Document) appendText(id NodeID, sb *strings.Builder) {
	for c := d.nodes[id].First; c != InvalidNode; c = d.nodes[c].Next {
		n := &d.nodes[c]
		if n.Kind == Text {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(n.Text)
		} else {
			d.appendText(c, sb)
		}
	}
}

// TotalTextLen returns the total number of characters of text content in
// the document, used for score normalization.
func (d *Document) TotalTextLen() int { return d.textLen }

// Walk visits every node in preorder, calling fn; if fn returns false the
// subtree below the node is skipped.
func (d *Document) Walk(fn func(NodeID) bool) {
	d.walk(d.Root(), fn)
}

func (d *Document) walk(id NodeID, fn func(NodeID) bool) {
	if id == InvalidNode {
		return
	}
	if !fn(id) {
		return
	}
	for c := d.nodes[id].First; c != InvalidNode; c = d.nodes[c].Next {
		d.walk(c, fn)
	}
}

// ElementsByTag scans the arena and returns all element IDs with the given
// tag in document order. Index structures should be preferred for repeated
// lookups; this is the naive fallback used in tests.
func (d *Document) ElementsByTag(tag string) []NodeID {
	var out []NodeID
	for i := range d.nodes {
		if d.nodes[i].Kind == Element && d.nodes[i].Tag == tag {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Path returns a /-separated tag path from the root to id, mainly for
// diagnostics and experiment output.
func (d *Document) Path(id NodeID) string {
	if id == InvalidNode {
		return ""
	}
	var parts []string
	for n := id; n != InvalidNode; n = d.nodes[n].Parent {
		if d.nodes[n].Kind == Element {
			parts = append(parts, d.nodes[n].Tag)
		}
	}
	// reverse
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// String summarizes the document for debugging.
func (d *Document) String() string {
	r := d.Root()
	if r == InvalidNode {
		return "Document(empty)"
	}
	return fmt.Sprintf("Document(root=%s, nodes=%d, text=%dB)",
		d.nodes[r].Tag, len(d.nodes), d.textLen)
}
