package xmldoc

// Positions is the document's (pre, post, level) positional encoding as
// flat arrays keyed by NodeID. The preorder number of a node IS its
// NodeID (nodes are arena-allocated in preorder), so only post and level
// need materializing. The twig join and the matcher's structural
// predicates run their hot loops over these arrays instead of loading
// whole Node structs: an ancestor test is one compare against Post, a
// parent test adds one compare against Level.
//
// Invariants (guaranteed by Builder and validated on Load):
//
//	pre(n)  == n                      (NodeID is the preorder rank)
//	Post[n] == largest pre in n's subtree (== Node.End)
//	a is a proper ancestor of d  ⇔  a < d && d <= Post[a]
//	p is the parent of c         ⇔  ancestor && Level[c] == Level[p]+1
//
// The parent characterization holds because a node has exactly one
// ancestor per level.
type Positions struct {
	Post  []int32
	Level []int32
}

// Ancestor reports whether a is a proper ancestor of d in O(1).
func (p Positions) Ancestor(a, d NodeID) bool {
	return a >= 0 && a < d && int32(d) <= p.Post[a]
}

// ParentOf reports whether par is the parent of c in O(1).
func (p Positions) ParentOf(par, c NodeID) bool {
	return p.Ancestor(par, c) && p.Level[c] == p.Level[par]+1
}

// Pos returns the document's positional arrays. The arrays are built
// once at document finalization and shared; callers must not mutate
// them.
func (d *Document) Pos() Positions {
	return Positions{Post: d.post, Level: d.level}
}

// buildPositions materializes the flat positional arrays from the node
// arena (one pass; called by Builder.Document and Load).
func (d *Document) buildPositions() {
	d.post = make([]int32, len(d.nodes))
	d.level = make([]int32, len(d.nodes))
	for i := range d.nodes {
		d.post[i] = d.nodes[i].End
		d.level[i] = d.nodes[i].Level
	}
}
