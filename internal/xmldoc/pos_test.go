package xmldoc

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomPosDoc builds a random document through the Builder so the
// positional arrays come from the normal finalization path.
func randomPosDoc(r *rand.Rand) *Document {
	tags := []string{"a", "b", "c", "d"}
	b := NewBuilder()
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		used := 1
		b.Start(tags[r.Intn(len(tags))])
		if r.Intn(4) == 0 {
			b.Text("t")
		}
		for used < budget && depth < 6 && r.Intn(3) != 0 {
			used += build(depth+1, budget-used)
		}
		b.End()
		return used
	}
	build(0, 2+r.Intn(60))
	return b.MustDocument()
}

// TestPositionsAgreeWithTree: the flat-array Ancestor/ParentOf tests
// must agree with the pointer-chasing reference on every node pair.
func TestPositionsAgreeWithTree(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		d := randomPosDoc(r)
		pos := d.Pos()
		if len(pos.Post) != d.Len() || len(pos.Level) != d.Len() {
			t.Fatalf("positions sized %d/%d for %d nodes",
				len(pos.Post), len(pos.Level), d.Len())
		}
		for a := NodeID(0); int(a) < d.Len(); a++ {
			if pos.Post[a] != d.Node(a).End || pos.Level[a] != d.Node(a).Level {
				t.Fatalf("node %d: pos (%d,%d) != node (%d,%d)",
					a, pos.Post[a], pos.Level[a], d.Node(a).End, d.Node(a).Level)
			}
			for n := NodeID(0); int(n) < d.Len(); n++ {
				if got, want := pos.Ancestor(a, n), a != n && d.IsAncestor(a, n); got != want {
					t.Fatalf("Ancestor(%d,%d) = %t, tree says %t", a, n, got, want)
				}
				if got, want := pos.ParentOf(a, n), d.Parent(n) == a && a != n; got != want {
					t.Fatalf("ParentOf(%d,%d) = %t, tree says %t", a, n, got, want)
				}
			}
		}
	}
}

// TestPositionsSurviveLoad: a persisted document must come back with its
// positional arrays rebuilt.
func TestPositionsSurviveLoad(t *testing.T) {
	d, err := ParseString(`<a><b><c/></b><d>t</d></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pos := ld.Pos()
	if len(pos.Post) != ld.Len() {
		t.Fatalf("loaded document has %d post entries for %d nodes", len(pos.Post), ld.Len())
	}
	for i := 0; i < ld.Len(); i++ {
		if pos.Post[i] != ld.Node(NodeID(i)).End || pos.Level[i] != ld.Node(NodeID(i)).Level {
			t.Fatalf("node %d: positions diverge after Load", i)
		}
	}
}
