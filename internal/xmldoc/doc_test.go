package xmldoc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const carXML = `
<dealer>
  <car vin="A1">
    <description>I am selling my 2001 car at the best bid. It is in good condition.</description>
    <date>2001</date>
    <price>500</price>
    <horsepower>150</horsepower>
    <owner>John Smith</owner>
    <color>red</color>
  </car>
  <car vin="B2">
    <description>Powerful car. Low mileage. Bought on 11/2005. Eager seller.</description>
    <horsepower>200</horsepower>
    <mileage>50000</mileage>
    <price>500</price>
    <location>NYC</location>
    <color>blue</color>
  </car>
</dealer>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestParseBasic(t *testing.T) {
	d := mustParse(t, carXML)
	root := d.Root()
	if got := d.Tag(root); got != "dealer" {
		t.Fatalf("root tag = %q, want dealer", got)
	}
	cars := d.ElementsByTag("car")
	if len(cars) != 2 {
		t.Fatalf("got %d cars, want 2", len(cars))
	}
	if d.Parent(cars[0]) != root {
		t.Errorf("car parent is not root")
	}
}

func TestAttrValue(t *testing.T) {
	d := mustParse(t, carXML)
	cars := d.ElementsByTag("car")

	// XML attribute.
	if v, ok := d.AttrValue(cars[0], "vin"); !ok || v != "A1" {
		t.Errorf("vin = %q,%v; want A1,true", v, ok)
	}
	// Child-element value.
	if v, ok := d.AttrValue(cars[0], "color"); !ok || v != "red" {
		t.Errorf("color = %q,%v; want red,true", v, ok)
	}
	// Missing.
	if _, ok := d.AttrValue(cars[0], "mileage"); ok {
		t.Errorf("mileage should be missing on first car")
	}
	// Numeric.
	if v, ok := d.NumericValue(cars[1], "mileage"); !ok || v != 50000 {
		t.Errorf("mileage = %v,%v; want 50000,true", v, ok)
	}
	if _, ok := d.NumericValue(cars[0], "owner"); ok {
		t.Errorf("owner should not parse as numeric")
	}
}

func TestTextContent(t *testing.T) {
	d := mustParse(t, carXML)
	cars := d.ElementsByTag("car")
	txt := d.TextContent(cars[1])
	for _, want := range []string{"Low mileage", "NYC", "50000"} {
		if !strings.Contains(txt, want) {
			t.Errorf("TextContent missing %q in %q", want, txt)
		}
	}
}

func TestStructuralPredicates(t *testing.T) {
	d := mustParse(t, carXML)
	root := d.Root()
	cars := d.ElementsByTag("car")
	descs := d.ElementsByTag("description")

	if !d.IsParent(root, cars[0]) {
		t.Errorf("dealer should be parent of car")
	}
	if !d.IsAncestor(root, descs[0]) {
		t.Errorf("dealer should be ancestor of description")
	}
	if d.IsParent(root, descs[0]) {
		t.Errorf("dealer is not parent of description")
	}
	if d.IsAncestor(cars[0], cars[1]) || d.IsAncestor(cars[1], cars[0]) {
		t.Errorf("sibling cars must not be ancestors of each other")
	}
	if d.IsAncestor(cars[0], cars[0]) {
		t.Errorf("IsAncestor must be irreflexive")
	}
	if !d.Contains(cars[0], cars[0]) {
		t.Errorf("Contains must be reflexive")
	}
}

func TestChildLookups(t *testing.T) {
	d := mustParse(t, carXML)
	cars := d.ElementsByTag("car")
	if c := d.ChildByTag(cars[0], "price"); c == InvalidNode {
		t.Fatalf("price child not found")
	} else if d.TextContent(c) != "500" {
		t.Errorf("price = %q", d.TextContent(c))
	}
	if c := d.ChildByTag(cars[0], "nope"); c != InvalidNode {
		t.Errorf("found nonexistent child %v", c)
	}
	kids := d.ChildElements(cars[1])
	if len(kids) != 6 {
		t.Errorf("second car has %d element children, want 6", len(kids))
	}
}

func TestPath(t *testing.T) {
	d := mustParse(t, carXML)
	descs := d.ElementsByTag("description")
	if p := d.Path(descs[0]); p != "/dealer/car/description" {
		t.Errorf("Path = %q", p)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Start("a")
	if _, err := b.Document(); err == nil {
		t.Errorf("unclosed element must error")
	}

	b = NewBuilder()
	if _, err := b.Document(); err == nil {
		t.Errorf("empty document must error")
	}

	b = NewBuilder()
	b.Start("a")
	b.End()
	b.Start("b")
	b.End()
	if _, err := b.Document(); err == nil {
		t.Errorf("multiple roots must error")
	}

	b = NewBuilder()
	b.End()
	if _, err := b.Document(); err == nil {
		t.Errorf("End without Start must error")
	}

	b = NewBuilder()
	b.Text("floating")
	if _, err := b.Document(); err == nil {
		t.Errorf("text outside element must error")
	}

	b = NewBuilder()
	b.Start("")
	if _, err := b.Document(); err == nil {
		t.Errorf("empty tag must error")
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	d := mustParse(t, carXML)
	var visited []string
	d.Walk(func(id NodeID) bool {
		if d.Kind(id) == Element {
			visited = append(visited, d.Tag(id))
			return d.Tag(id) != "car" // do not descend into cars
		}
		return true
	})
	for _, tag := range visited {
		if tag == "price" || tag == "description" {
			t.Fatalf("walked into skipped subtree: %v", visited)
		}
	}
	if len(visited) != 3 { // dealer + 2 cars
		t.Errorf("visited = %v", visited)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, bad := range []string{
		"<a><b></a></b>",
		"<a>",
		"no xml at all",
		"",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestEscaping(t *testing.T) {
	src := `<a><b>x &lt; y &amp; z</b></a>`
	d := mustParse(t, src)
	b := d.ElementsByTag("b")[0]
	if got := d.TextContent(b); got != "x < y & z" {
		t.Errorf("TextContent = %q", got)
	}
	out := d.XMLString()
	d2 := mustParse(t, out)
	if got := d2.TextContent(d2.ElementsByTag("b")[0]); got != "x < y & z" {
		t.Errorf("round trip = %q", got)
	}
}

// randomTree builds a random document and returns it; used by property
// tests below.
func randomTree(r *rand.Rand, maxNodes int) *Document {
	tags := []string{"a", "b", "c", "d", "e"}
	b := NewBuilder()
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		used := 1
		b.Start(tags[r.Intn(len(tags))])
		if r.Intn(2) == 0 {
			b.Text("t" + tags[r.Intn(len(tags))])
			used++
		}
		for used < budget && depth < 6 && r.Intn(3) != 0 {
			used += build(depth+1, budget-used)
		}
		b.End()
		return used
	}
	build(0, maxNodes)
	return b.MustDocument()
}

// TestPropertyRegionEncodingAgreesWithParentWalk checks, on random trees,
// that IsAncestor (region encoding) agrees with walking parent pointers.
func TestPropertyRegionEncodingAgreesWithParentWalk(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		d := randomTree(r, 2+r.Intn(40))
		n := d.Len()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, dn := NodeID(i), NodeID(j)
				walk := false
				for p := d.Parent(dn); p != InvalidNode; p = d.Parent(p) {
					if p == a {
						walk = true
						break
					}
				}
				if got := d.IsAncestor(a, dn); got != walk {
					t.Fatalf("IsAncestor(%d,%d)=%v, parent walk says %v\n%s",
						a, dn, got, walk, d.XMLString())
				}
			}
		}
	}
}

// TestPropertyRoundTrip checks parse(serialize(doc)) preserves structure.
func TestPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		d := randomTree(r, 2+r.Intn(50))
		d2, err := ParseString(d.XMLString())
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if d.Len() != d2.Len() {
			t.Fatalf("node count changed: %d -> %d\n%s", d.Len(), d2.Len(), d.XMLString())
		}
		for i := 0; i < d.Len(); i++ {
			a, b := d.Node(NodeID(i)), d2.Node(NodeID(i))
			if a.Kind != b.Kind || a.Tag != b.Tag || a.Text != b.Text ||
				a.Parent != b.Parent || a.Level != b.Level {
				t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
			}
		}
	}
}

// TestQuickLevelMonotone: along any parent chain levels strictly decrease
// to 0 at the root, and Start values strictly decrease.
func TestQuickLevelMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		d := randomTree(rand.New(rand.NewSource(seed^r.Int63())), 30)
		for i := 0; i < d.Len(); i++ {
			id := NodeID(i)
			p := d.Parent(id)
			if p == InvalidNode {
				if d.Level(id) != 0 {
					return false
				}
				continue
			}
			if d.Level(id) != d.Level(p)+1 {
				return false
			}
			if d.Node(p).Start >= d.Node(id).Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
