package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// Parse reads an XML document from r into a Document. Namespaces are
// flattened to local names (the paper's data model is namespace-free);
// comments, processing instructions and directives are skipped; whitespace-
// only character data between elements is dropped.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if !validXMLName(t.Name.Local) {
				return nil, fmt.Errorf("xmldoc: parse: invalid element name %q", t.Name.Local)
			}
			var attrs []Attr
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				if !validXMLName(a.Name.Local) {
					// Names the lenient decoder accepts but that cannot
					// be re-serialized as well-formed XML are dropped.
					continue
				}
				attrs = append(attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			b.Start(t.Name.Local, attrs...)
			depth++
		case xml.EndElement:
			b.End()
			depth--
		case xml.CharData:
			if depth == 0 {
				continue
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(strings.TrimSpace(s))
		}
	}
	return b.Document()
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// WriteXML serializes the document back to XML on w, with the given indent
// ("" for compact output). Serialization is lossless up to whitespace
// normalization, which the tests rely on for round-trip checks.
func (d *Document) WriteXML(w io.Writer, indent string) error {
	return d.writeNode(w, d.Root(), indent, 0)
}

func (d *Document) writeNode(w io.Writer, id NodeID, indent string, depth int) error {
	n := &d.nodes[id]
	pad := ""
	nl := ""
	if indent != "" {
		pad = strings.Repeat(indent, depth)
		nl = "\n"
	}
	if n.Kind == Text {
		if _, err := fmt.Fprintf(w, "%s%s%s", pad, escapeText(n.Text), nl); err != nil {
			return err
		}
		return nil
	}
	var ab strings.Builder
	for _, a := range n.Attrs {
		fmt.Fprintf(&ab, " %s=%q", a.Name, a.Value)
	}
	if n.First == InvalidNode {
		_, err := fmt.Fprintf(w, "%s<%s%s/>%s", pad, n.Tag, ab.String(), nl)
		return err
	}
	// Compact single-text-child elements onto one line for readability.
	if d.nodes[n.First].Kind == Text && d.nodes[n.First].Next == InvalidNode {
		_, err := fmt.Fprintf(w, "%s<%s%s>%s</%s>%s",
			pad, n.Tag, ab.String(), escapeText(d.nodes[n.First].Text), n.Tag, nl)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>%s", pad, n.Tag, ab.String(), nl); err != nil {
		return err
	}
	for c := n.First; c != InvalidNode; c = d.nodes[c].Next {
		if err := d.writeNode(w, c, indent, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>%s", pad, n.Tag, nl)
	return err
}

// XMLString renders the document as an indented XML string.
func (d *Document) XMLString() string {
	var sb strings.Builder
	_ = d.WriteXML(&sb, "  ")
	return sb.String()
}

// validXMLName approximates the XML Name production closely enough to
// guarantee round-trippable output: a letter or underscore followed by
// letters, digits, '-', '_' or '.'.
func validXMLName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := unicode.IsLetter(r) || r == '_'
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

func escapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
