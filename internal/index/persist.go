package index

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/text"
	"repro/internal/xmldoc"
)

// persistedIndex is the on-disk form of an Index (caches excluded; they
// rebuild lazily).
type persistedIndex struct {
	Version   int
	Pipe      text.Pipeline
	Tags      map[string][]xmldoc.NodeID
	Positions map[string][]int32
	SeqNode   []xmldoc.NodeID
	NumTokens int
}

const persistVersion = 1

// Save writes the index in a binary snapshot format (gob). The document
// is not included — pair it with xmldoc's Save, or use the engine-level
// snapshot which bundles both.
func (ix *Index) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(persistedIndex{
		Version:   persistVersion,
		Pipe:      ix.pipe,
		Tags:      ix.tags,
		Positions: ix.positions,
		SeqNode:   ix.seqNode,
		NumTokens: ix.numTokens,
	})
}

// Load reads an index snapshot written by Save and re-attaches it to its
// document. It cross-checks the snapshot against the document (token
// positions must reference text nodes) so mismatched pairs fail loudly
// instead of corrupting probes.
func Load(r io.Reader, doc *xmldoc.Document) (*Index, error) {
	var p persistedIndex
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("index: load: unsupported snapshot version %d", p.Version)
	}
	if len(p.SeqNode) != p.NumTokens {
		return nil, fmt.Errorf("index: load: token count mismatch")
	}
	for _, id := range p.SeqNode {
		if id < 0 || int(id) >= doc.Len() || doc.Kind(id) != xmldoc.Text {
			return nil, fmt.Errorf("index: load: snapshot does not match document (token in node %d)", id)
		}
	}
	for tag, ids := range p.Tags {
		for _, id := range ids {
			if id < 0 || int(id) >= doc.Len() || doc.Tag(id) != tag {
				return nil, fmt.Errorf("index: load: snapshot does not match document (tag %q at node %d)", tag, id)
			}
		}
	}
	var allElems []xmldoc.NodeID
	doc.Walk(func(id xmldoc.NodeID) bool {
		if doc.Kind(id) == xmldoc.Element {
			allElems = append(allElems, id)
		}
		return true
	})
	ix := &Index{
		doc:       doc,
		pipe:      p.Pipe,
		tags:      p.Tags,
		allElems:  allElems,
		positions: p.Positions,
		seqNode:   p.SeqNode,
		numTokens: p.NumTokens,
	}
	ix.resetCaches()
	return ix, nil
}
