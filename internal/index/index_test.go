package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/text"
	"repro/internal/xmldoc"
)

const dealerXML = `
<dealer>
  <car>
    <description>It is in good condition. I used it to go to work in NYC.</description>
    <price>500</price>
    <color>red</color>
  </car>
  <car>
    <description>Powerful car. Low mileage. Eager seller. good shape</description>
    <price>1500</price>
    <color>blue</color>
  </car>
  <car>
    <description>best bid wins. good condition, good condition indeed</description>
    <price>900</price>
  </car>
</dealer>`

func buildIdx(t *testing.T, src string) *Index {
	t.Helper()
	d, err := xmldoc.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(d, text.Pipeline{}) // no stemming: exact-token tests
}

func TestTagIndex(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	if got := ix.TagCount("car"); got != 3 {
		t.Fatalf("TagCount(car) = %d", got)
	}
	cars := ix.Elements("car")
	for i := 1; i < len(cars); i++ {
		if cars[i-1] >= cars[i] {
			t.Errorf("Elements not in document order: %v", cars)
		}
	}
	if got := ix.TagCount("nothing"); got != 0 {
		t.Errorf("TagCount(nothing) = %d", got)
	}
	tags := ix.Tags()
	want := []string{"car", "color", "dealer", "description", "price"}
	if strings.Join(tags, ",") != strings.Join(want, ",") {
		t.Errorf("Tags = %v", tags)
	}
}

func TestContainsSingleTerm(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	cars := ix.Elements("car")
	if !ix.Contains(cars[0], "NYC") {
		t.Errorf("car 0 should contain NYC")
	}
	if ix.Contains(cars[1], "NYC") {
		t.Errorf("car 1 should not contain NYC")
	}
	// Scope: the dealer root contains everything.
	if !ix.Contains(ix.Document().Root(), "mileage") {
		t.Errorf("root should contain mileage")
	}
	// Case folding.
	if !ix.Contains(cars[0], "nyc") {
		t.Errorf("case folding failed")
	}
}

func TestContainsPhrase(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	cars := ix.Elements("car")
	if !ix.Contains(cars[0], "good condition") {
		t.Errorf("car 0 has the phrase")
	}
	if ix.Contains(cars[1], "good condition") {
		t.Errorf("car 1 has 'good' and (no) 'condition' but not the phrase")
	}
	if !ix.Contains(cars[1], "low mileage") {
		t.Errorf("car 1 has low mileage")
	}
	if !ix.Contains(cars[2], "best bid") {
		t.Errorf("car 2 has best bid")
	}
	if ix.Contains(cars[0], "condition good") {
		t.Errorf("phrase order must matter")
	}
	if ix.Contains(cars[0], "zzz yyy") {
		t.Errorf("absent phrase")
	}
	if ix.Contains(cars[0], "") {
		t.Errorf("empty phrase must not match")
	}
}

func TestTF(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	cars := ix.Elements("car")
	if got := ix.TF(cars[2], "good condition"); got != 2 {
		t.Errorf("TF(car2, good condition) = %d, want 2", got)
	}
	if got := ix.TF(cars[0], "good condition"); got != 1 {
		t.Errorf("TF(car0) = %d, want 1", got)
	}
	if got := ix.TF(ix.Document().Root(), "good condition"); got != 3 {
		t.Errorf("TF(root) = %d, want 3", got)
	}
	if got := ix.TF(cars[1], "good condition"); got != 0 {
		t.Errorf("TF(car1) = %d, want 0", got)
	}
}

func TestDF(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	if got := ix.DF("car", "good condition"); got != 2 {
		t.Errorf("DF = %d, want 2", got)
	}
	if got := ix.DF("car", "powerful"); got != 1 {
		t.Errorf("DF(powerful) = %d, want 1", got)
	}
	if got := ix.DF("car", "zebra"); got != 0 {
		t.Errorf("DF(zebra) = %d", got)
	}
}

func TestScoreProperties(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	cars := ix.Elements("car")
	s0 := ix.Score(cars[0], "good condition")
	s1 := ix.Score(cars[1], "good condition")
	s2 := ix.Score(cars[2], "good condition")
	if s1 != 0 {
		t.Errorf("non-matching element must score 0, got %v", s1)
	}
	if !(s0 > 0 && s0 <= MaxScore) {
		t.Errorf("score out of range: %v", s0)
	}
	if !(s2 > s0) {
		t.Errorf("higher tf must score higher: tf=2 score %v vs tf=1 score %v", s2, s0)
	}
	// Rarer phrases get a higher idf: "best bid" occurs in 1 of 3 cars.
	rare := ix.Score(cars[2], "best bid")
	if !(rare > s0) {
		t.Errorf("rarer phrase should outscore commoner one: %v vs %v", rare, s0)
	}
}

func TestPhraseAcrossTextNodes(t *testing.T) {
	// "good" ends one element's text, "condition" starts a sibling's: the
	// phrase must NOT match across text-node boundaries.
	src := `<a><b>it is good</b><c>condition matters</c></a>`
	ix := buildIdx(t, src)
	if ix.Contains(ix.Document().Root(), "good condition") {
		t.Errorf("phrase must not span text nodes")
	}
	if !ix.Contains(ix.Document().Root(), "good") {
		t.Errorf("single term must match")
	}
}

func TestStemmedIndex(t *testing.T) {
	d, err := xmldoc.ParseString(`<a><p>mining associations effectively</p></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(d, text.Pipeline{Stem: true})
	root := d.Root()
	if !ix.Contains(root, "mine association") {
		t.Errorf("stemmed index should match inflections")
	}
	plain := Build(d, text.Pipeline{})
	if plain.Contains(root, "mine association") {
		t.Errorf("unstemmed index must not match inflections")
	}
}

// TestPropertyContainsAgreesWithNaiveScan cross-checks the index probe
// against a naive text scan on random documents.
func TestPropertyContainsAgreesWithNaiveScan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	words := []string{"red", "car", "bid", "best", "mileage", "low", "good"}
	pipe := text.Pipeline{}
	for iter := 0; iter < 150; iter++ {
		b := xmldoc.NewBuilder()
		b.Start("root")
		nElems := 1 + r.Intn(8)
		for i := 0; i < nElems; i++ {
			b.Start("item")
			nSents := r.Intn(3)
			for s := 0; s < nSents; s++ {
				n := 1 + r.Intn(5)
				var sb strings.Builder
				for w := 0; w < n; w++ {
					if w > 0 {
						sb.WriteByte(' ')
					}
					sb.WriteString(words[r.Intn(len(words))])
				}
				b.Elem("txt", sb.String())
			}
			b.End()
		}
		b.End()
		doc := b.MustDocument()
		ix := Build(doc, pipe)

		// Random probe phrases of length 1..3.
		for probe := 0; probe < 10; probe++ {
			n := 1 + r.Intn(3)
			parts := make([]string, n)
			for i := range parts {
				parts[i] = words[r.Intn(len(words))]
			}
			phrase := strings.Join(parts, " ")
			for _, e := range ix.Elements("item") {
				// Naive: phrase must appear inside a single text node.
				naive := false
				doc.Walk(func(id xmldoc.NodeID) bool {
					if doc.Kind(id) == xmldoc.Text && doc.Contains(e, id) &&
						pipe.ContainsPhrase(doc.Node(id).Text, phrase) {
						naive = true
					}
					return true
				})
				if got := ix.Contains(e, phrase); got != naive {
					t.Fatalf("Contains(%v, %q) = %v, naive = %v\ndoc: %s",
						e, phrase, got, naive, doc.XMLString())
				}
			}
		}
	}
}

func TestPhraseCacheConcurrency(t *testing.T) {
	ix := buildIdx(t, dealerXML)
	cars := ix.Elements("car")
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				ix.Contains(cars[i%3], "good condition")
				ix.TF(cars[i%3], "low mileage")
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func BenchmarkBuild(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<dealer>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "<car><description>car number %d in good condition low mileage</description><price>%d</price></car>", i, i)
	}
	sb.WriteString("</dealer>")
	doc, err := xmldoc.ParseString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(doc, text.DefaultPipeline)
	}
}

func BenchmarkContains(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<dealer>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "<car><description>car number %d in good condition low mileage</description></car>", i)
	}
	sb.WriteString("</dealer>")
	doc, _ := xmldoc.ParseString(sb.String())
	ix := Build(doc, text.DefaultPipeline)
	cars := ix.Elements("car")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Contains(cars[i%len(cars)], "good condition")
	}
}
