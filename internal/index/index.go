// Package index implements the indexing substrate Section 6.4 of the
// paper relies on: "We rely on inverted indices on keywords and on an
// index per distinct tag."
//
// The inverted index is positional: every token occurrence carries a
// global sequence number so that phrase predicates such as
// ftcontains(., "good condition") resolve to contiguous occurrences
// within one text node. Element-scope probes (does element e contain an
// occurrence of phrase p anywhere below it?) are answered with binary
// search over the occurrence list using the document's region encoding.
package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/text"
	"repro/internal/xmldoc"
)

// Index holds the per-tag element index and the positional inverted
// keyword index for one document. An Index is safe for concurrent
// readers: the derived caches are immutable copy-on-write snapshots
// behind atomic pointers, so the per-candidate scoring hot path never
// takes a lock. Cache misses copy the snapshot under a writer mutex;
// a plan build warms every (tag, phrase) pair its query needs, so
// steady-state execution is miss-free.
type Index struct {
	doc  *xmldoc.Document
	pipe text.Pipeline

	tags     map[string][]xmldoc.NodeID // element IDs in document order
	allElems []xmldoc.NodeID            // every element, document order

	positions map[string][]int32 // term -> sorted global token positions
	seqNode   []xmldoc.NodeID    // global token position -> its text node
	numTokens int

	guide *Dataguide // strong dataguide (path summary), built with the index

	scorer Scorer // nil means TFIDFScorer

	// cacheMu serializes cache writers only; readers atomically load the
	// current snapshot and never block. Snapshots are never mutated after
	// publication. Concurrent misses may compute the same entry twice —
	// results are deterministic, so duplicated work is the only cost.
	cacheMu       sync.Mutex
	phraseCache   atomic.Pointer[map[string][]int32]    // raw phrase -> sorted text-node starts
	maxScoreCache atomic.Pointer[map[tagPhrase]float64] // max element score per tag+phrase
	dfCache       atomic.Pointer[map[tagPhrase]int]     // document frequency per tag+phrase
}

// tagPhrase is a composite cache key (a struct key avoids allocating
// concatenated strings on the per-candidate scoring path).
type tagPhrase struct{ tag, phrase string }

// Build tokenizes every text node of doc under pipe and constructs the
// indexes. Building is a single pass over the document.
func Build(doc *xmldoc.Document, pipe text.Pipeline) *Index {
	ix := &Index{
		doc:       doc,
		pipe:      pipe,
		tags:      make(map[string][]xmldoc.NodeID),
		positions: make(map[string][]int32),
	}
	ix.resetCaches()
	gb := newGuideBuilder(doc.Len())
	doc.Walk(func(id xmldoc.NodeID) bool {
		n := doc.Node(id)
		switch n.Kind {
		case xmldoc.Element:
			ix.tags[n.Tag] = append(ix.tags[n.Tag], id)
			ix.allElems = append(ix.allElems, id)
			gb.visit(id, n.Tag, n.Level)
		case xmldoc.Text:
			for _, tok := range pipe.Tokenize(n.Text) {
				pos := int32(ix.numTokens)
				ix.positions[tok.Term] = append(ix.positions[tok.Term], pos)
				ix.seqNode = append(ix.seqNode, id)
				ix.numTokens++
			}
		}
		return true
	})
	ix.guide = gb.g
	return ix
}

// Document returns the indexed document.
func (ix *Index) Document() *xmldoc.Document { return ix.doc }

// Pipeline returns the text pipeline the index was built with.
func (ix *Index) Pipeline() text.Pipeline { return ix.pipe }

// Elements returns the IDs of all elements with the given tag, in document
// order; the wildcard tag "*" returns every element. The returned slice
// is shared and must not be modified.
func (ix *Index) Elements(tag string) []xmldoc.NodeID {
	if tag == "*" {
		return ix.allElems
	}
	return ix.tags[tag]
}

// TagCount returns the number of elements with the given tag ("*" counts
// all elements).
func (ix *Index) TagCount(tag string) int { return len(ix.Elements(tag)) }

// Tags returns all distinct element tags, sorted.
func (ix *Index) Tags() []string {
	out := make([]string, 0, len(ix.tags))
	for t := range ix.tags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NumTokens returns the total number of indexed token occurrences.
func (ix *Index) NumTokens() int { return ix.numTokens }

// resetCaches installs fresh empty cache snapshots (build time and
// scorer changes). Callers that can race with readers must hold cacheMu.
func (ix *Index) resetCaches() {
	phrase := make(map[string][]int32)
	maxScore := make(map[tagPhrase]float64)
	df := make(map[tagPhrase]int)
	ix.phraseCache.Store(&phrase)
	ix.maxScoreCache.Store(&maxScore)
	ix.dfCache.Store(&df)
}

// cachePut publishes snapshot' = snapshot ∪ {key: val} under cacheMu.
// The copy is cheap: cache key spaces are bounded by the distinct
// phrases and tags of the running queries, not by the document.
func cachePut[K comparable, V any](mu *sync.Mutex, p *atomic.Pointer[map[K]V], key K, val V) {
	mu.Lock()
	defer mu.Unlock()
	old := *p.Load()
	next := make(map[K]V, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = val
	p.Store(&next)
}

// phraseOccurrences returns the sorted Start positions (== NodeIDs) of the
// text nodes holding each occurrence of phrase; an occurrence is a run of
// the phrase's normalized terms at consecutive global positions inside a
// single text node. Results are cached per phrase.
func (ix *Index) phraseOccurrences(phrase string) []int32 {
	// Cache by the raw phrase: predicates reuse identical strings, and
	// probing must not re-tokenize per candidate.
	if occ, ok := (*ix.phraseCache.Load())[phrase]; ok {
		return occ
	}

	terms := ix.pipe.NormalizePhrase(phrase)
	var occ []int32
	if len(terms) == 0 {
		occ = []int32{}
	} else {
		occ = ix.computePhrase(terms)
	}
	cachePut(&ix.cacheMu, &ix.phraseCache, phrase, occ)
	return occ
}

func (ix *Index) computePhrase(terms []string) []int32 {
	first := ix.positions[terms[0]]
	if first == nil {
		return []int32{}
	}
	if len(terms) == 1 {
		out := make([]int32, 0, len(first))
		for _, p := range first {
			out = append(out, int32(ix.seqNode[p]))
		}
		// first is sorted by position == document order of text nodes, so
		// out is sorted too (duplicates kept: multiple occurrences per node).
		return out
	}
	// Start from the rarest term to keep the candidate list short.
	rarest, rarestIdx := first, 0
	for i := 1; i < len(terms); i++ {
		p := ix.positions[terms[i]]
		if p == nil {
			return []int32{}
		}
		if len(p) < len(rarest) {
			rarest, rarestIdx = p, i
		}
	}
	var out []int32
	for _, p := range rarest {
		start := p - int32(rarestIdx)
		if start < 0 || int(start)+len(terms) > ix.numTokens {
			continue
		}
		node := ix.seqNode[start]
		match := true
		for j, t := range terms {
			pos := start + int32(j)
			if ix.seqNode[pos] != node || !ix.hasPosition(t, pos) {
				match = false
				break
			}
		}
		if match {
			out = append(out, int32(node))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (ix *Index) hasPosition(term string, pos int32) bool {
	ps := ix.positions[term]
	i := sort.Search(len(ps), func(i int) bool { return ps[i] >= pos })
	return i < len(ps) && ps[i] == pos
}

// Contains reports whether element elem contains at least one occurrence
// of phrase anywhere in its subtree — the paper's ftcontains predicate.
func (ix *Index) Contains(elem xmldoc.NodeID, phrase string) bool {
	return ix.TF(elem, phrase) > 0
}

// TF returns the number of occurrences of phrase within elem's subtree.
func (ix *Index) TF(elem xmldoc.NodeID, phrase string) int {
	occ := ix.phraseOccurrences(phrase)
	if len(occ) == 0 {
		return 0
	}
	n := ix.doc.Node(elem)
	lo := sort.Search(len(occ), func(i int) bool { return occ[i] >= n.Start })
	hi := sort.Search(len(occ), func(i int) bool { return occ[i] > n.End })
	return hi - lo
}

// DF returns the number of elements with the given tag whose subtree
// contains phrase — the document-frequency analog used by idf. The
// wildcard tag "*" counts over every element.
func (ix *Index) DF(tag, phrase string) int {
	occ := ix.phraseOccurrences(phrase)
	if len(occ) == 0 {
		return 0
	}
	df := 0
	for _, e := range ix.Elements(tag) {
		n := ix.doc.Node(e)
		lo := sort.Search(len(occ), func(i int) bool { return occ[i] >= n.Start })
		if lo < len(occ) && occ[lo] <= n.End {
			df++
		}
	}
	return df
}

// Score returns the relevance contribution of phrase to element elem,
// normalized into [0, Bound]. The paper leaves the base scoring function
// S open ("there is no one scoring function that fits all"), so the
// function is pluggable (SetScorer); the default is a bounded tf·idf.
// The bound per predicate is what makes query-scorebound (Section 6.2,
// Algorithm 1) a sound conservative estimate.
func (ix *Index) Score(elem xmldoc.NodeID, phrase string) float64 {
	tf := ix.TF(elem, phrase)
	if tf == 0 {
		return 0
	}
	tag := ix.doc.Tag(elem)
	sc := ix.scorer
	if sc == nil {
		sc = TFIDFScorer{}
	}
	return sc.Score(tf, ix.cachedDF(tag, phrase), len(ix.tags[tag]))
}

// cachedDF caches document frequency per (tag, phrase); computing DF
// scans the tag's element list, so repeated scoring of the same
// predicate must not redo it.
func (ix *Index) cachedDF(tag, phrase string) int {
	key := tagPhrase{tag, phrase}
	if v, ok := (*ix.dfCache.Load())[key]; ok {
		return v
	}
	df := ix.DF(tag, phrase)
	cachePut(&ix.cacheMu, &ix.dfCache, key, df)
	return df
}

// MaxScore is the static upper bound on the Score of any single phrase
// predicate, used to build conservative score bounds for pruning.
const MaxScore = 1.0

// MaxPhraseScore returns the maximum Score any element with the given
// tag attains for phrase — the tight per-list bound the planner uses for
// query-scorebound and kor-scorebound. (The paper only requires the
// bounds to be conservative; the true per-index maximum is the tightest
// sound choice and is what makes pushed-down pruning effective.) Results
// are cached per (tag, phrase).
func (ix *Index) MaxPhraseScore(tag, phrase string) float64 {
	key := tagPhrase{tag, phrase}
	if v, ok := (*ix.maxScoreCache.Load())[key]; ok {
		return v
	}
	best := 0.0
	for _, e := range ix.Elements(tag) {
		if s := ix.Score(e, phrase); s > best {
			best = s
		}
	}
	cachePut(&ix.cacheMu, &ix.maxScoreCache, key, best)
	return best
}
