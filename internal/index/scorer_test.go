package index

import (
	"math/rand"
	"testing"

	"repro/internal/text"
	"repro/internal/xmldoc"
)

func TestScorerContracts(t *testing.T) {
	scorers := []Scorer{TFIDFScorer{}, BM25Scorer{}, BM25Scorer{K1: 2}, BooleanScorer{}}
	r := rand.New(rand.NewSource(5))
	for _, sc := range scorers {
		if sc.Name() == "" {
			t.Errorf("%T: empty name", sc)
		}
		if sc.Score(0, 3, 10) != 0 {
			t.Errorf("%s: tf=0 must score 0", sc.Name())
		}
		for trial := 0; trial < 2000; trial++ {
			n := 1 + r.Intn(100)
			df := r.Intn(n + 1)
			tf := 1 + r.Intn(20)
			got := sc.Score(tf, df, n)
			if got <= 0 || got > sc.Bound()+1e-12 {
				t.Fatalf("%s: Score(%d,%d,%d) = %v out of (0, %v]",
					sc.Name(), tf, df, n, got, sc.Bound())
			}
		}
	}
}

func TestScorerMonotoneInTF(t *testing.T) {
	for _, sc := range []Scorer{TFIDFScorer{}, BM25Scorer{}} {
		last := 0.0
		for tf := 1; tf <= 20; tf++ {
			got := sc.Score(tf, 5, 50)
			if got < last {
				t.Errorf("%s: not monotone at tf=%d", sc.Name(), tf)
			}
			last = got
		}
	}
}

func TestScorerRareTermsScoreHigher(t *testing.T) {
	for _, sc := range []Scorer{TFIDFScorer{}, BM25Scorer{}} {
		rare := sc.Score(1, 1, 100)
		common := sc.Score(1, 90, 100)
		if !(rare > common) {
			t.Errorf("%s: rare %v <= common %v", sc.Name(), rare, common)
		}
	}
}

func TestSetScorerChangesRanking(t *testing.T) {
	doc, err := xmldoc.ParseString(dealerXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc, text.Pipeline{})
	cars := ix.Elements("car")

	// Default tf·idf: tf=2 (car 2) beats tf=1 (car 0).
	if !(ix.Score(cars[2], "good condition") > ix.Score(cars[0], "good condition")) {
		t.Fatalf("tfidf tf ordering broken")
	}
	if ix.ScorerName() != "tfidf" {
		t.Errorf("default scorer = %q", ix.ScorerName())
	}

	// Boolean: all matches equal.
	ix.SetScorer(BooleanScorer{})
	if ix.ScorerName() != "boolean" {
		t.Errorf("scorer = %q", ix.ScorerName())
	}
	if ix.Score(cars[2], "good condition") != ix.Score(cars[0], "good condition") {
		t.Errorf("boolean must score all matches equally")
	}
	if ix.Score(cars[1], "good condition") != 0 {
		t.Errorf("non-match must stay 0")
	}
	// Caches were reset: the per-list maximum reflects the new scorer.
	if got := ix.MaxPhraseScore("car", "good condition"); got != 1 {
		t.Errorf("boolean max = %v", got)
	}

	// BM25 behaves like a graded scorer again.
	ix.SetScorer(BM25Scorer{})
	if !(ix.Score(cars[2], "good condition") > ix.Score(cars[0], "good condition")) {
		t.Errorf("bm25 tf ordering broken")
	}
}

func TestScorerBoundsKeepPruningSound(t *testing.T) {
	// The per-list maximum must dominate every element's score under any
	// scorer — the invariant the pruning algorithms rely on.
	doc, _ := xmldoc.ParseString(dealerXML)
	for _, sc := range []Scorer{TFIDFScorer{}, BM25Scorer{}, BooleanScorer{}} {
		ix := Build(doc, text.Pipeline{})
		ix.SetScorer(sc)
		for _, phrase := range []string{"good condition", "best bid", "low mileage"} {
			bound := ix.MaxPhraseScore("car", phrase)
			for _, c := range ix.Elements("car") {
				if got := ix.Score(c, phrase); got > bound+1e-12 {
					t.Errorf("%s: score %v exceeds per-list bound %v", sc.Name(), got, bound)
				}
			}
		}
	}
}
