package index

import "math"

// Scorer turns raw phrase statistics into the query score contribution S
// of one predicate. The paper's opening argument — "there is no one
// scoring function that fits all" — is why the base relevance function is
// pluggable; the personalization machinery only requires scores to be
// non-negative, bounded, and additive across predicates.
//
// Inputs: tf = occurrences of the phrase in the element's subtree,
// df = number of same-tag elements containing the phrase, n = number of
// same-tag elements.
type Scorer interface {
	// Score must return 0 when tf == 0 and a value in (0, Bound] otherwise.
	Score(tf, df, n int) float64
	// Bound is the static upper bound of Score, used when no per-list
	// maximum is available.
	Bound() float64
	// Name identifies the scorer in plan diagnostics.
	Name() string
}

// TFIDFScorer is the default: score = tf/(tf+1) · idf, with
// idf = log(1 + n/(1+df)) / log(2 + n), bounded by 1.
type TFIDFScorer struct{}

func (TFIDFScorer) Score(tf, df, n int) float64 {
	if tf == 0 {
		return 0
	}
	if n == 0 {
		n = 1
	}
	idf := math.Log(1+float64(n)/float64(1+df)) / math.Log(float64(n)+2)
	return float64(tf) / float64(tf+1) * idf
}

func (TFIDFScorer) Bound() float64 { return 1 }
func (TFIDFScorer) Name() string   { return "tfidf" }

// BM25Scorer is a length-free BM25 variant:
// score = idf · tf·(k1+1)/(tf+k1), normalized into (0, 1].
type BM25Scorer struct {
	// K1 is BM25's term-frequency saturation parameter (default 1.2).
	K1 float64
}

func (s BM25Scorer) k1() float64 {
	if s.K1 <= 0 {
		return 1.2
	}
	return s.K1
}

func (s BM25Scorer) Score(tf, df, n int) float64 {
	if tf == 0 {
		return 0
	}
	if n == 0 {
		n = 1
	}
	k1 := s.k1()
	// Standard BM25 idf with +1 flooring so it stays positive, scaled
	// into [0, 1] by its maximum log(n+1).
	idf := math.Log(1+(float64(n)-float64(df)+0.5)/(float64(df)+0.5)) / math.Log(float64(n)+1)
	if idf <= 0 {
		idf = 1 / math.Log(float64(n)+2)
	}
	if idf > 1 { // df = 0 can push the normalized idf just past 1
		idf = 1
	}
	sat := float64(tf) * (k1 + 1) / (float64(tf) + k1)
	return idf * sat / (k1 + 1)
}

func (BM25Scorer) Bound() float64 { return 1 }
func (s BM25Scorer) Name() string { return "bm25" }

// BooleanScorer scores 1 for any match — pure boolean retrieval.
type BooleanScorer struct{}

func (BooleanScorer) Score(tf, df, n int) float64 {
	if tf == 0 {
		return 0
	}
	return 1
}

func (BooleanScorer) Bound() float64 { return 1 }
func (BooleanScorer) Name() string   { return "boolean" }

// SetScorer replaces the index's relevance function. It must be called
// before the index serves queries (scores and bounds are cached); it
// clears the caches.
func (ix *Index) SetScorer(s Scorer) {
	ix.cacheMu.Lock()
	defer ix.cacheMu.Unlock()
	ix.scorer = s
	ix.resetCaches()
}

// ScorerName reports the active scorer.
func (ix *Index) ScorerName() string {
	if ix.scorer == nil {
		return TFIDFScorer{}.Name()
	}
	return ix.scorer.Name()
}
