package index

import "repro/internal/xmldoc"

// Dataguide is a strong dataguide (path summary) of the indexed
// document: one guide node per distinct root-to-element tag path,
// annotated with the number of document elements on that path. Every
// element maps to exactly one guide node (ElemGuide), and the guide is
// tiny compared to the document — XMark's 5.7M-node instance has a few
// hundred distinct paths.
//
// The guide supports sound structural pruning: any embedding of a tree
// pattern into the document projects, path-wise, to an embedding into
// the guide (each element maps to its guide node, and document
// parent/ancestor edges map to guide parent/ancestor edges). So if a
// query skeleton has no guide embedding it has no document embedding,
// and an element whose guide node participates in no guide embedding
// can never bind a pattern node. The converse does not hold — the
// guide over-approximates — which is exactly what a pre-filter needs.
type Dataguide struct {
	tag      []string  // per guide node
	parent   []int32   // guide parent; -1 for the root
	level    []int32   // depth; root is 0
	count    []int32   // document elements mapping here
	children [][]int32 // guide child nodes, in first-occurrence order
	byTag    map[string][]int32
	elem     []int32 // per NodeID: guide node, or -1 for text nodes
}

// guideBuilder accumulates the guide during the index build walk.
type guideBuilder struct {
	g     *Dataguide
	edge  map[guideEdge]int32
	stack []int32 // stack[level] = guide node of the open element there
}

type guideEdge struct {
	parent int32
	tag    string
}

func newGuideBuilder(docLen int) *guideBuilder {
	g := &Dataguide{
		byTag: make(map[string][]int32),
		elem:  make([]int32, docLen),
	}
	for i := range g.elem {
		g.elem[i] = -1
	}
	return &guideBuilder{g: g, edge: make(map[guideEdge]int32)}
}

// visit maps one element (seen in preorder) to its guide node, creating
// the node on the first occurrence of its path.
func (b *guideBuilder) visit(id xmldoc.NodeID, tag string, level int32) {
	parent := int32(-1)
	if level > 0 {
		parent = b.stack[level-1]
	}
	key := guideEdge{parent, tag}
	gn, ok := b.edge[key]
	if !ok {
		gn = int32(len(b.g.tag))
		b.edge[key] = gn
		b.g.tag = append(b.g.tag, tag)
		b.g.parent = append(b.g.parent, parent)
		b.g.level = append(b.g.level, level)
		b.g.count = append(b.g.count, 0)
		b.g.children = append(b.g.children, nil)
		b.g.byTag[tag] = append(b.g.byTag[tag], gn)
		if parent >= 0 {
			b.g.children[parent] = append(b.g.children[parent], gn)
		}
	}
	b.g.count[gn]++
	b.g.elem[id] = gn
	if int(level) < len(b.stack) {
		b.stack[level] = gn
	} else {
		b.stack = append(b.stack, gn)
	}
}

// Guide returns the document's strong dataguide.
func (ix *Index) Guide() *Dataguide { return ix.guide }

// Len returns the number of guide nodes (distinct root-to-tag paths).
func (g *Dataguide) Len() int { return len(g.tag) }

// Tag returns guide node gn's element tag.
func (g *Dataguide) Tag(gn int32) string { return g.tag[gn] }

// Parent returns gn's guide parent (-1 for the root).
func (g *Dataguide) Parent(gn int32) int32 { return g.parent[gn] }

// Level returns gn's depth (the root path has level 0).
func (g *Dataguide) Level(gn int32) int32 { return g.level[gn] }

// Count returns the number of document elements on gn's path.
func (g *Dataguide) Count(gn int32) int32 { return g.count[gn] }

// Children returns gn's guide children; callers must not mutate.
func (g *Dataguide) Children(gn int32) []int32 { return g.children[gn] }

// NodesByTag returns the guide nodes with the given tag ("*" returns
// every guide node as a nil marker: callers treat nil as "all").
func (g *Dataguide) NodesByTag(tag string) []int32 {
	return g.byTag[tag]
}

// ElemGuide returns the guide node of element id (-1 for text nodes).
func (g *Dataguide) ElemGuide(id xmldoc.NodeID) int32 { return g.elem[id] }
