package index

import (
	"bytes"
	"testing"

	"repro/internal/text"
	"repro/internal/xmldoc"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	doc, err := xmldoc.ParseString(dealerXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc, text.DefaultPipeline)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(&buf, doc)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumTokens() != ix.NumTokens() {
		t.Errorf("token count changed: %d vs %d", ix2.NumTokens(), ix.NumTokens())
	}
	if ix2.Pipeline() != ix.Pipeline() {
		t.Errorf("pipeline changed")
	}
	cars := ix2.Elements("car")
	if len(cars) != 3 {
		t.Fatalf("cars = %d", len(cars))
	}
	for _, c := range cars {
		if ix.Contains(c, "good condition") != ix2.Contains(c, "good condition") {
			t.Errorf("probe disagrees after reload on car %d", c)
		}
		if ix.Score(c, "best bid") != ix2.Score(c, "best bid") {
			t.Errorf("score disagrees after reload on car %d", c)
		}
	}
	// Wildcard element list is rebuilt on load.
	if len(ix2.Elements("*")) != len(ix.Elements("*")) {
		t.Errorf("all-elements list not rebuilt")
	}
	if got := ix2.MaxPhraseScore("car", "good condition"); got != ix.MaxPhraseScore("car", "good condition") {
		t.Errorf("max score disagrees")
	}
}

func TestIndexLoadRejectsMismatchedDoc(t *testing.T) {
	doc, _ := xmldoc.ParseString(dealerXML)
	ix := Build(doc, text.Pipeline{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := xmldoc.ParseString(`<x><y>small</y></x>`)
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Errorf("index must reject a foreign document")
	}
	if _, err := Load(bytes.NewReader([]byte("junk")), doc); err == nil {
		t.Errorf("garbage snapshot must fail")
	}
}

func TestWildcardElements(t *testing.T) {
	doc, _ := xmldoc.ParseString(`<a><b>t</b><c><d/></c></a>`)
	ix := Build(doc, text.Pipeline{})
	all := ix.Elements("*")
	if len(all) != 4 {
		t.Fatalf("all elements = %d", len(all))
	}
	if ix.TagCount("*") != 4 {
		t.Errorf("TagCount(*) = %d", ix.TagCount("*"))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Errorf("not document order: %v", all)
		}
	}
}
