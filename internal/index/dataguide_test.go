package index

import (
	"testing"

	"repro/internal/text"
	"repro/internal/xmldoc"
)

func guideFor(t *testing.T, src string) (*Dataguide, *xmldoc.Document) {
	t.Helper()
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc, text.Pipeline{})
	g := ix.Guide()
	if g == nil {
		t.Fatal("nil dataguide")
	}
	return g, doc
}

// TestDataguidePaths: one guide node per distinct root-to-tag path, with
// element counts.
func TestDataguidePaths(t *testing.T) {
	// Paths: /a, /a/b, /a/b/c, /a/c — four distinct, with /a/b twice
	// and /a/b/c twice (one per b).
	g, _ := guideFor(t, `<a><b><c/></b><b><c/><c/></b><c/></a>`)
	if g.Len() != 4 {
		t.Fatalf("guide has %d nodes, want 4", g.Len())
	}
	counts := map[string]int32{}
	for gn := int32(0); gn < int32(g.Len()); gn++ {
		path := g.Tag(gn)
		for p := g.Parent(gn); p >= 0; p = g.Parent(p) {
			path = g.Tag(p) + "/" + path
		}
		counts[path] = g.Count(gn)
	}
	want := map[string]int32{"a": 1, "a/b": 2, "a/b/c": 3, "a/c": 1}
	for path, n := range want {
		if counts[path] != n {
			t.Errorf("path %s: count %d, want %d (all: %v)", path, counts[path], n, counts)
		}
	}
}

// TestDataguideInvariants: structural invariants the twig join relies
// on — parents precede children (first-occurrence preorder), levels are
// parent+1, every element maps to a guide node with its own tag, and
// counts total the element population.
func TestDataguideInvariants(t *testing.T) {
	g, doc := guideFor(t, `
<site>
  <people>
    <person><name>n1</name><address><city>c</city></address></person>
    <person><name>n2</name></person>
  </people>
  <regions><item><name>i</name></item></regions>
</site>`)
	var total int32
	for gn := int32(0); gn < int32(g.Len()); gn++ {
		p := g.Parent(gn)
		if p >= gn {
			t.Fatalf("guide node %d has parent %d: parents must precede children", gn, p)
		}
		if p < 0 && g.Level(gn) != 0 {
			t.Fatalf("root guide node %d at level %d", gn, g.Level(gn))
		}
		if p >= 0 && g.Level(gn) != g.Level(p)+1 {
			t.Fatalf("guide node %d level %d under parent level %d", gn, g.Level(gn), g.Level(p))
		}
		total += g.Count(gn)
		found := false
		for _, c := range g.NodesByTag(g.Tag(gn)) {
			if c == gn {
				found = true
			}
		}
		if !found {
			t.Fatalf("guide node %d missing from NodesByTag(%s)", gn, g.Tag(gn))
		}
	}
	elems := int32(0)
	doc.Walk(func(id xmldoc.NodeID) bool {
		if doc.Kind(id) != xmldoc.Element {
			if g.ElemGuide(id) != -1 {
				t.Fatalf("text node %d mapped to guide node %d", id, g.ElemGuide(id))
			}
			return true
		}
		elems++
		gn := g.ElemGuide(id)
		if gn < 0 || g.Tag(gn) != doc.Tag(id) {
			t.Fatalf("element %d (%s) maps to guide node %d (%s)",
				id, doc.Tag(id), gn, g.Tag(gn))
		}
		// The element's document parent must map to the guide parent.
		if par := doc.Parent(id); par != xmldoc.InvalidNode {
			if g.ElemGuide(par) != g.Parent(gn) {
				t.Fatalf("element %d: guide parent %d, document parent maps to %d",
					id, g.Parent(gn), g.ElemGuide(par))
			}
		}
		return true
	})
	if total != elems {
		t.Fatalf("guide counts total %d, document has %d elements", total, elems)
	}
}
