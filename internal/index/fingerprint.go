// Content fingerprinting. A fingerprint is a stable hash of everything
// index-side that can change a search response: the document's full
// node arena, the text pipeline configuration (stemming/stopwords
// change tokenization and hence matching), and the active scorer. Both
// the per-document engine (engine.Fingerprint) and the mutable corpus
// registry (corpus.Entry) derive their cache-key identities from it, so
// the hashing lives here — below both.
package index

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/xmldoc"
)

// ContentFingerprint hashes the index's document together with its
// pipeline and scorer configuration. Two indexes over byte-identical
// documents with the same configuration share a fingerprint, so a
// result cache survives an index rebuild or a process restart.
//
// The hash walks the node arena directly rather than a serialized XML
// string: same content sensitivity, but no multi-megabyte allocation.
// Every field is length- or kind-prefixed so distinct documents cannot
// collide by concatenation.
func ContentFingerprint(ix *Index) string {
	h := sha256.New()
	doc := ix.Document()
	pipe := ix.Pipeline()
	fmt.Fprintf(h, "pipe:stem=%t,stop=%t;scorer=%s;doc:",
		pipe.Stem, pipe.DropStopwords, ix.ScorerName())
	var num [4]byte
	writeStr := func(s string) {
		num[0] = byte(len(s))
		num[1] = byte(len(s) >> 8)
		num[2] = byte(len(s) >> 16)
		num[3] = byte(len(s) >> 24)
		h.Write(num[:])
		h.Write([]byte(s))
	}
	doc.Walk(func(id xmldoc.NodeID) bool {
		n := doc.Node(id)
		h.Write([]byte{byte(n.Kind)})
		writeStr(n.Tag)
		writeStr(n.Text)
		num[0] = byte(len(n.Attrs))
		h.Write(num[:1])
		for _, a := range n.Attrs {
			writeStr(a.Name)
			writeStr(a.Value)
		}
		return true
	})
	return hex.EncodeToString(h.Sum(nil)[:16])
}
