// Oversubscription regression tests: the end-to-end guarantees the
// scheduler exists for, exercised against the real plan and corpus
// layers (external test package — sched itself stays dependency-free).
package sched_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/text"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// sampleGoroutines polls runtime.NumGoroutine until stop is closed and
// records the peak.
func sampleGoroutines(stop <-chan struct{}, peak *atomic.Int64) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if n := int64(runtime.NumGoroutine()); n > peak.Load() {
			peak.Store(n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// waitGoroutines waits for the goroutine count to drop back to at most
// want (leak gate — execution goroutines must all exit).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSmallDocSearchesStaySequential is the regression for the original
// bug: N concurrent small-document searches admitted through the pool
// must never multiply into N×GOMAXPROCS plan workers. Auto parallelism
// resolves to 1 below the node threshold, so the only goroutines alive
// during the burst are the test's own clients — zero plan helpers.
func TestSmallDocSearchesStaySequential(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(8) // the old default would grant 8 workers/request
	defer runtime.GOMAXPROCS(prevProcs)

	doc := xmark.GenerateSized(xmark.Config{Seed: 7}, 101*1024) // ~5.8K nodes, below threshold
	ix := index.Build(doc, text.Pipeline{})
	q := workload.Fig5Query()
	prof := workload.Fig5Profile(2)

	pool := sched.New(sched.Config{Workers: 4})
	const clients = 16

	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	var peak atomic.Int64
	go sampleGoroutines(stop, &peak)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				release, err := pool.Acquire(t.Context())
				if err != nil {
					t.Error(err)
					return
				}
				p, err := plan.BuildWith(ix, q, prof, 10, plan.Options{Budget: pool.Budget()})
				if err == nil {
					if w := p.Parallelism(); w != 1 {
						t.Errorf("small doc resolved parallelism %d, want 1", w)
					}
					p.Execute()
					p.Release()
				} else {
					t.Error(err)
				}
				release()
			}
		}()
	}
	wg.Wait()
	close(stop)

	// Bound: baseline + 16 clients + sampler + small runtime slack. The
	// pre-fix behavior (each request auto-granted GOMAXPROCS=8 workers)
	// would put 4 admitted × 7 helpers = 28 extra goroutines in flight.
	limit := int64(base + clients + 1 + 4)
	if got := peak.Load(); got > limit {
		t.Errorf("peak goroutines %d > limit %d — plan workers spawned for small docs", got, limit)
	}
	waitGoroutines(t, base+2)
}

// TestMixedFanoutParallelBudget is the GOMAXPROCS² regression under
// -race: registry fan-out and explicitly-parallel single-document plans
// run concurrently through one pool, drawing every extra goroutine from
// the one shared budget. Total execution goroutines must stay bounded
// by Workers (admitted) + Workers (budget), never fan-out × per-query.
func TestMixedFanoutParallelBudget(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prevProcs)

	const workers = 4
	pool := sched.New(sched.Config{Workers: workers})

	reg := corpus.New(text.Pipeline{})
	for i, seed := range []int64{1, 2, 3, 4, 5, 6} {
		reg.Add(string(rune('a'+i)), xmark.GenerateSized(xmark.Config{Seed: seed}, 60*1024))
	}
	reg.SetBudget(pool.Budget())

	big := xmark.GenerateSized(xmark.Config{Seed: 42}, 300*1024)
	bigIx := index.Build(big, text.Pipeline{})
	q := workload.Fig5Query()
	prof := workload.Fig5Profile(2)

	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	var peak atomic.Int64
	go sampleGoroutines(stop, &peak)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				release, err := pool.Acquire(t.Context())
				if err != nil {
					t.Error(err)
					return
				}
				if c%2 == 0 {
					// Registry fan-out: helpers come from the shared budget,
					// per-document plans are pinned sequential.
					if _, err := reg.Search(q, prof, 5, plan.PushDeep); err != nil {
						t.Error(err)
					}
				} else {
					// Explicitly parallel single-document plan: partitions
					// beyond the caller come from the same budget.
					p, err := plan.BuildWith(bigIx, q, prof, 5,
						plan.Options{Parallelism: 8, Budget: pool.Budget()})
					if err != nil {
						t.Error(err)
					} else {
						p.Execute()
						p.Release()
					}
				}
				release()
			}
		}(c)
	}
	wg.Wait()
	close(stop)

	if held := pool.Budget().InUse(); held != 0 {
		t.Errorf("budget tokens leaked: %d still out", held)
	}
	// Bound: baseline + clients + sampler + budget extras (≤ workers) +
	// slack. The old nesting (GOMAXPROCS fan-out semaphore × GOMAXPROCS
	// plan workers) could reach 8×8 = 64 extras.
	limit := int64(base + clients + 1 + workers + 4)
	if got := peak.Load(); got > limit {
		t.Errorf("peak goroutines %d > limit %d — nested oversubscription", got, limit)
	}
	waitGoroutines(t, base+2)
}
