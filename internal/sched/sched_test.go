package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAcquireReleaseBasics: a pool of n admits exactly n without
// queueing, and a released slot is immediately reusable.
func TestAcquireReleaseBasics(t *testing.T) {
	p := New(Config{Workers: 2, Queue: -1})
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", p.Workers())
	}
	r1, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Queue is disabled: the third acquire sheds instead of blocking.
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Acquire err = %v, want ErrQueueFull", err)
	}
	r1()
	r1() // double release must be a no-op, not a slot leak
	r3, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
	st := p.Stats()
	if st.Running != 0 {
		t.Errorf("Running = %d, want 0", st.Running)
	}
	if st.Admitted != 3 || st.ShedQueueFull != 1 {
		t.Errorf("Admitted=%d ShedQueueFull=%d, want 3 and 1", st.Admitted, st.ShedQueueFull)
	}
}

// TestQueueAdmission: with a waiting room, a blocked Acquire is admitted
// when a slot frees, and the wait is observed.
func TestQueueAdmission(t *testing.T) {
	var waits atomic.Int64
	p := New(Config{Workers: 1, Queue: 4, ObserveWait: func(time.Duration) { waits.Add(1) }})
	r1, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r2, err := p.Acquire(context.Background())
		if err == nil {
			r2()
		}
		done <- err
	}()
	// Let the second acquire reach the waiting room, then free the slot.
	deadline := time.After(2 * time.Second)
	for p.Stats().Queued == 0 {
		select {
		case <-deadline:
			t.Fatal("second Acquire never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	r1()
	if err := <-done; err != nil {
		t.Fatalf("queued Acquire err = %v", err)
	}
	st := p.Stats()
	if st.AdmittedQueued != 1 {
		t.Errorf("AdmittedQueued = %d, want 1", st.AdmittedQueued)
	}
	if waits.Load() != 1 {
		t.Errorf("ObserveWait calls = %d, want 1", waits.Load())
	}
}

// TestSheddingTable covers the three ways a queued request leaves
// without a slot: queue full, wait bound exceeded, context cancelled,
// and context already expired.
func TestSheddingTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		cfg     Config
		ctx     func() (context.Context, context.CancelFunc)
		wantErr error
		check   func(Stats) bool
	}{
		{
			name:    "queue_full",
			cfg:     Config{Workers: 1, Queue: -1},
			ctx:     func() (context.Context, context.CancelFunc) { return context.WithCancel(context.Background()) },
			wantErr: ErrQueueFull,
			check:   func(s Stats) bool { return s.ShedQueueFull == 1 },
		},
		{
			name:    "wait_bound",
			cfg:     Config{Workers: 1, Queue: 4, MaxWait: 5 * time.Millisecond},
			ctx:     func() (context.Context, context.CancelFunc) { return context.WithCancel(context.Background()) },
			wantErr: ErrQueueWait,
			check:   func(s Stats) bool { return s.ShedWait == 1 },
		},
		{
			name: "cancelled_while_queued",
			cfg:  Config{Workers: 1, Queue: 4},
			ctx: func() (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(5 * time.Millisecond); cancel() }()
				return ctx, cancel
			},
			wantErr: context.Canceled,
			check:   func(s Stats) bool { return s.Abandoned == 1 },
		},
		{
			name: "deadline_while_queued",
			cfg:  Config{Workers: 1, Queue: 4},
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 5*time.Millisecond)
			},
			wantErr: context.DeadlineExceeded,
			check:   func(s Stats) bool { return s.Abandoned == 1 },
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := New(tc.cfg)
			hold, err := p.Acquire(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			defer hold()
			ctx, cancel := tc.ctx()
			defer cancel()
			rel, err := p.Acquire(ctx)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if rel != nil {
				t.Fatal("failed Acquire returned a release func")
			}
			if st := p.Stats(); !tc.check(st) {
				t.Errorf("stats after shed: %+v", st)
			}
			if got := p.Stats().Queued; got != 0 {
				t.Errorf("Queued = %d after shed, want 0", got)
			}
		})
	}
}

// TestRetryAfterBounds: with no history the estimate is the 1s floor;
// after long holds it is clamped to 60s.
func TestRetryAfterBounds(t *testing.T) {
	p := New(Config{Workers: 1})
	if got := p.RetryAfter(); got != 1 {
		t.Errorf("cold RetryAfter = %d, want 1", got)
	}
	// Fold in an absurdly long hold; the estimate must clamp at 60.
	p.recordHold(10 * time.Hour)
	if got := p.RetryAfter(); got != 60 {
		t.Errorf("clamped RetryAfter = %d, want 60", got)
	}
	p2 := New(Config{Workers: 4})
	p2.recordHold(2 * time.Millisecond)
	if got := p2.RetryAfter(); got != 1 {
		t.Errorf("fast-drain RetryAfter = %d, want 1", got)
	}
}

// TestBudget: tokens are finite, non-blocking, and restored on release.
func TestBudget(t *testing.T) {
	b := NewBudget(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("fresh budget of 2 refused a token")
	}
	if b.TryAcquire() {
		t.Fatal("exhausted budget granted a token")
	}
	if b.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", b.InUse())
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released token not reusable")
	}
	b.Release()
	b.Release()
	if b.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", b.InUse())
	}
	// Zero and negative budgets never grant.
	for _, n := range []int{0, -3} {
		if NewBudget(n).TryAcquire() {
			t.Errorf("NewBudget(%d) granted a token", n)
		}
	}
}

// TestPoolStress hammers a small pool from many goroutines under -race:
// no slot may leak, counters must balance, and concurrency inside the
// pool must never exceed Workers.
func TestPoolStress(t *testing.T) {
	p := New(Config{Workers: 3, Queue: 8, MaxWait: 50 * time.Millisecond})
	var (
		wg      sync.WaitGroup
		peak    atomic.Int64
		inPool  atomic.Int64
		success atomic.Int64
		shed    atomic.Int64
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := p.Acquire(context.Background())
				if err != nil {
					shed.Add(1)
					continue
				}
				cur := inPool.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				if b := p.Budget(); b.TryAcquire() {
					b.Release()
				}
				time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				inPool.Add(-1)
				rel()
				success.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Errorf("peak in-pool concurrency = %d, want <= 3", got)
	}
	st := p.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("pool not drained: %+v", st)
	}
	if st.Admitted+st.AdmittedQueued != success.Load() {
		t.Errorf("admissions %d+%d != successes %d", st.Admitted, st.AdmittedQueued, success.Load())
	}
	if st.ShedQueueFull+st.ShedWait != shed.Load() {
		t.Errorf("sheds %d+%d != failures %d", st.ShedQueueFull, st.ShedWait, shed.Load())
	}
	if st.BudgetInUse != 0 {
		t.Errorf("BudgetInUse = %d, want 0", st.BudgetInUse)
	}
	// Every slot must be back: Workers() immediate acquires succeed.
	for i := 0; i < p.Workers(); i++ {
		rel, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatalf("slot %d leaked: %v", i, err)
		}
		defer rel()
	}
}

// TestDefaults pins the Config zero-value resolution.
func TestDefaults(t *testing.T) {
	p := New(Config{})
	if p.Workers() < 1 {
		t.Errorf("default Workers = %d, want >= 1 (GOMAXPROCS)", p.Workers())
	}
	if p.queueCap != 64*p.Workers() {
		t.Errorf("default queue = %d, want %d", p.queueCap, 64*p.Workers())
	}
}
