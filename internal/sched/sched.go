// Package sched is the serving-side worker-pool scheduler. It exists to
// fix an oversubscription bug: pimentod used to hand every concurrent
// request a full machine's worth of plan workers (Parallelism 0 →
// GOMAXPROCS), and the registry fan-out nested another GOMAXPROCS
// semaphore on top, so N concurrent requests could run O(N·GOMAXPROCS)
// — or, mixed with fan-out, O(GOMAXPROCS²) — runnable goroutines.
// BENCH_parallel.json shows intra-query parallelism is a *loss* below
// multi-megabyte documents, so under load that was pure overhead.
//
// The pool inverts the default: a bounded number of requests execute
// concurrently, each sequential unless the plan layer's cost model
// (plan.ResolveParallelism) grants intra-query workers, and every
// *extra* goroutine anyone wants — parallel plan partitions, registry
// fan-out helpers — is drawn from one shared Budget instead of private
// per-request semaphores. Total execution goroutines are therefore
// bounded by Workers (admitted requests) + Workers (budget extras),
// independent of offered load.
//
// Admission is FIFO-ish with two shedding modes:
//
//   - the waiting room is full            → ErrQueueFull  (serve 503)
//   - a request queued longer than MaxWait → ErrQueueWait (serve 429)
//
// and a request whose context is cancelled or expires while queued gets
// ctx.Err() back, which the serving layer maps to its usual 499/504.
package sched

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Acquire when the waiting room is at
// capacity: the server is overloaded and the client should back off
// (HTTP 503 + Retry-After).
var ErrQueueFull = errors.New("sched: admission queue full")

// ErrQueueWait is returned by Acquire when the request sat queued
// longer than the pool's MaxWait bound (HTTP 429 + Retry-After).
var ErrQueueWait = errors.New("sched: queued longer than the configured wait bound")

// Config tunes a Pool.
type Config struct {
	// Workers is the number of requests executing concurrently; 0 means
	// GOMAXPROCS (one CPU-bound execution per processor).
	Workers int
	// Queue is the waiting-room capacity. 0 defaults to 64×Workers — a
	// deep queue, because shedding is for genuine overload, not jitter.
	// Negative means no waiting room at all (every busy moment sheds).
	Queue int
	// MaxWait bounds how long a request may sit queued before it is shed
	// with ErrQueueWait. 0 disables the bound (the request's own context
	// deadline still applies while it waits).
	MaxWait time.Duration
	// ObserveWait, when non-nil, is called with the queue wait of every
	// admission that had to queue (the serving layer feeds a histogram).
	ObserveWait func(time.Duration)
}

// Pool is a bounded worker pool with a shed-on-overload waiting room
// and a shared budget for extra execution goroutines.
type Pool struct {
	workers  int
	queueCap int
	maxWait  time.Duration
	observe  func(time.Duration)

	slots  chan struct{}
	budget *Budget

	waiting   atomic.Int64
	running   atomic.Int64
	admitted  atomic.Int64 // admitted without queueing
	queued    atomic.Int64 // admitted after queueing
	shedFull  atomic.Int64
	shedWait  atomic.Int64
	abandoned atomic.Int64 // context cancelled/expired while queued

	// holdEWMA is an exponentially-weighted moving average of slot hold
	// times in nanoseconds (atomic float64 bits), feeding RetryAfter.
	holdEWMA atomic.Uint64
}

// New builds a pool. The pool is ready immediately; there are no
// background goroutines to start or stop.
func New(cfg Config) *Pool {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := cfg.Queue
	if q == 0 {
		q = 64 * w
	}
	if q < 0 {
		q = 0
	}
	p := &Pool{
		workers:  w,
		queueCap: q,
		maxWait:  cfg.MaxWait,
		observe:  cfg.ObserveWait,
		slots:    make(chan struct{}, w),
		budget:   NewBudget(w),
	}
	for i := 0; i < w; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Workers returns the pool's concurrent-execution capacity.
func (p *Pool) Workers() int { return p.workers }

// Budget returns the pool's shared extra-goroutine budget (sized
// Workers): plan partitions and fan-out helpers draw from it, so the
// extras across ALL in-flight requests never exceed one machine's
// worth.
func (p *Pool) Budget() *Budget { return p.budget }

// Acquire admits the caller into the pool, blocking in the waiting room
// when every worker slot is busy. On success it returns a release
// function that must be called exactly once when the execution
// finishes. On failure it returns ErrQueueFull, ErrQueueWait, or
// ctx.Err() — and no slot is held.
func (p *Pool) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case <-p.slots:
		p.admitted.Add(1)
		return p.releaseFunc(), nil
	default:
	}
	if p.waiting.Add(1) > int64(p.queueCap) {
		p.waiting.Add(-1)
		p.shedFull.Add(1)
		return nil, ErrQueueFull
	}
	defer p.waiting.Add(-1)
	var bound <-chan time.Time
	if p.maxWait > 0 {
		t := time.NewTimer(p.maxWait)
		defer t.Stop()
		bound = t.C
	}
	start := time.Now()
	select {
	case <-p.slots:
		p.queued.Add(1)
		if p.observe != nil {
			p.observe(time.Since(start))
		}
		return p.releaseFunc(), nil
	case <-bound:
		p.shedWait.Add(1)
		return nil, ErrQueueWait
	case <-ctx.Done():
		p.abandoned.Add(1)
		return nil, ctx.Err()
	}
}

// releaseFunc transfers the just-taken slot to a once-guarded closure
// and starts the hold-time clock.
func (p *Pool) releaseFunc() func() {
	p.running.Add(1)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.running.Add(-1)
			p.recordHold(time.Since(start))
			p.slots <- struct{}{}
		})
	}
}

// recordHold folds a slot hold time into the EWMA (α = 1/8).
func (p *Pool) recordHold(d time.Duration) {
	for {
		old := p.holdEWMA.Load()
		prev := math.Float64frombits(old)
		next := prev + (float64(d.Nanoseconds())-prev)/8
		if p.holdEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfter estimates, in whole seconds (≥ 1), how long a shed client
// should wait before retrying: the queue's expected drain time at the
// recent average service rate, clamped to [1, 60].
func (p *Pool) RetryAfter() int {
	hold := math.Float64frombits(p.holdEWMA.Load())
	if hold <= 0 {
		return 1
	}
	drainNS := (float64(p.waiting.Load()) + 1) * hold / float64(p.workers)
	secs := int(math.Ceil(drainNS / 1e9))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// Stats is a point-in-time snapshot of the pool's counters.
type Stats struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_capacity"`

	Running int `json:"running"`
	Queued  int `json:"queued"`

	// Admitted ran without queueing; AdmittedQueued waited first.
	Admitted       int64 `json:"admitted"`
	AdmittedQueued int64 `json:"admitted_queued"`
	ShedQueueFull  int64 `json:"shed_queue_full"`
	ShedWait       int64 `json:"shed_wait"`
	// Abandoned requests were cancelled or timed out while queued.
	Abandoned int64 `json:"abandoned"`

	// BudgetInUse is how many extra-goroutine tokens are currently out.
	BudgetInUse int `json:"budget_in_use"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:        p.workers,
		QueueCap:       p.queueCap,
		Running:        int(p.running.Load()),
		Queued:         int(p.waiting.Load()),
		Admitted:       p.admitted.Load(),
		AdmittedQueued: p.queued.Load(),
		ShedQueueFull:  p.shedFull.Load(),
		ShedWait:       p.shedWait.Load(),
		Abandoned:      p.abandoned.Load(),
		BudgetInUse:    p.budget.InUse(),
	}
}

// Budget is a non-blocking counting semaphore for *extra* execution
// goroutines beyond the one each admitted request already owns. Both
// the plan layer's parallel partitions and the corpus fan-out helpers
// draw from one Budget, which is what keeps their product bounded:
// work always proceeds in the caller's goroutine, helpers only join
// when a token is free, and a denied token is not an error — it just
// means that partition runs in the caller.
type Budget struct {
	tokens chan struct{}
	inUse  atomic.Int64
}

// NewBudget returns a budget of n tokens (n < 0 is treated as 0 —
// callers then never get helpers).
func NewBudget(n int) *Budget {
	if n < 0 {
		n = 0
	}
	b := &Budget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// TryAcquire takes a token without blocking; false means run the work
// in the calling goroutine instead.
func (b *Budget) TryAcquire() bool {
	select {
	case <-b.tokens:
		b.inUse.Add(1)
		return true
	default:
		return false
	}
}

// Release returns a token taken with TryAcquire.
func (b *Budget) Release() {
	b.inUse.Add(-1)
	b.tokens <- struct{}{}
}

// InUse reports how many tokens are currently held.
func (b *Budget) InUse() int { return int(b.inUse.Load()) }
