package plan

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/tpq"
)

// TestResolveAccessAuto pins the auto heuristic's decision surface:
// explicit choices always win; structural skeletons with cheap tag
// lists take the join; single-node queries and rare-distinguished-tag
// queries under huge descendant lists fall back to the scan.
func TestResolveAccessAuto(t *testing.T) {
	ix := index.Build(genDealer(rand.New(rand.NewSource(7)), 200), text.Pipeline{})
	cases := []struct {
		name string
		q    string
		opts Options
		want AccessPath
	}{
		{"explicit scan", `//car[./color]`, Options{AccessPath: AccessScan}, AccessScan},
		{"explicit twigjoin", `//car`, Options{AccessPath: AccessTwigJoin}, AccessTwigJoin},
		{"legacy twig flag", `//car`, Options{TwigAccess: true}, AccessTwigJoin},
		{"auto single node", `//car`, Options{}, AccessScan},
		{"auto structural", `//car[./color and ./make]`, Options{}, AccessTwigJoin},
		// dealer is a single element sitting above every car subtree: the
		// scan visits one candidate while the join would stream every
		// descendant list, so the cost estimate must keep the scan.
		{"auto rare dist", `//dealer[.//color and .//make and .//mileage and .//price and .//hp and .//description]`, Options{}, AccessScan},
		// Optional branches do not stream: the same huge lists behind an
		// optional edge must not scare auto away from the join.
		{"auto optional streams", `//car[./color and ./make and .//dealer[.//price and .//mileage and .//hp]?]`, Options{}, AccessTwigJoin},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := tpq.Parse(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if got := tc.opts.resolveAccess(ix, q); got != tc.want {
				t.Fatalf("resolveAccess(%s) = %s, want %s", tc.q, got, tc.want)
			}
		})
	}
}
