package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// genDealer builds a randomized car-sale document with the attributes and
// phrases the Fig. 2 running example uses.
func genDealer(r *rand.Rand, nCars int) *xmldoc.Document {
	colors := []string{"red", "blue", "green"}
	makes := []string{"honda", "ford", "mustang"}
	snippets := []string{
		"good condition", "low mileage", "best bid", "NYC", "eager seller",
		"powerful engine", "american classic", "clean title",
	}
	b := xmldoc.NewBuilder()
	b.Start("dealer")
	for i := 0; i < nCars; i++ {
		b.Start("car")
		var sb strings.Builder
		n := 1 + r.Intn(4)
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteString(". ")
			}
			sb.WriteString(snippets[r.Intn(len(snippets))])
		}
		b.Elem("description", sb.String())
		b.Elem("price", fmt.Sprintf("%d", 300+r.Intn(3000)))
		if r.Intn(5) > 0 {
			b.Elem("color", colors[r.Intn(len(colors))])
		}
		b.Elem("mileage", fmt.Sprintf("%d", 1000*(1+r.Intn(90))))
		b.Elem("make", makes[r.Intn(len(makes))])
		b.Elem("hp", fmt.Sprintf("%d", 100+10*r.Intn(20)))
		b.End()
	}
	b.End()
	return b.MustDocument()
}

const testProfile = `
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S
`

func TestAllStrategiesAgreeWithNaive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	prof := profile.MustParseProfile(testProfile)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	for iter := 0; iter < 40; iter++ {
		doc := genDealer(r, 5+r.Intn(60))
		ix := index.Build(doc, text.Pipeline{})
		k := 1 + r.Intn(8)
		ref, err := Evaluate(ix, q, prof, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{InterleaveNoSort, InterleaveSort, Push, PushDeep} {
			p, err := Build(ix, q, prof, k, strat)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Execute()
			if !sameAnswers(ref, got) {
				t.Fatalf("iter %d k %d: %v disagrees with Naive\nnaive: %v\n%-5v: %v\nplan: %s",
					iter, k, strat, describe(ref), strat, describe(got), p)
			}
		}
	}
}

// sameAnswers compares results modulo reordering among exact ranking
// ties: the (K, V-irrelevant, S) triples must match pairwise and the node
// sets must be permutations within tie groups. We require K and S
// sequences to match exactly and node multisets to be equal.
func sameAnswers(a, b []algebra.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	const eps = 1e-12
	for i := range a {
		if absf(a[i].K-b[i].K) > eps || absf(a[i].S-b[i].S) > eps {
			return false
		}
	}
	seen := map[xmldoc.NodeID]int{}
	for i := range a {
		seen[a[i].Node]++
		seen[b[i].Node]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func describe(as []algebra.Answer) string {
	var parts []string
	for _, a := range as {
		parts = append(parts, fmt.Sprintf("n%d(K=%.3f,S=%.3f)", a.Node, a.K, a.S))
	}
	return strings.Join(parts, " ")
}

func TestPushPrunesMoreThanNaive(t *testing.T) {
	// Pruning between KORs needs the accumulated K spread to exceed the
	// remaining kor-scorebound — the paper's Section 7.2 observation that
	// "applying the KOR which contributes the highest score first is
	// beneficial as it increases the pruning threshold". Four KORs with a
	// heavy first one make that happen.
	r := rand.New(rand.NewSource(7))
	doc := genDealer(r, 400)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(`
kor k1 priority 1 weight 3: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor k2 priority 2: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
kor k3 priority 3: x.tag = car & y.tag = car & ftcontains(x, "eager seller") => x < y
kor k4 priority 4: x.tag = car & y.tag = car & ftcontains(x, "clean title") => x < y
`)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)

	naive, err := Build(ix, q, prof, 5, Naive)
	if err != nil {
		t.Fatal(err)
	}
	naive.Execute()
	push, err := Build(ix, q, prof, 5, Push)
	if err != nil {
		t.Fatal(err)
	}
	push.Execute()

	// The push plan prunes before the KOR operators; its kor ops must see
	// fewer answers than the naive plan's.
	naiveKorIn := korInput(naive)
	pushKorIn := korInput(push)
	if pushKorIn >= naiveKorIn {
		t.Errorf("push kor input %d, naive %d: pushing should cut kor work",
			pushKorIn, naiveKorIn)
	}
}

func korInput(p *Plan) int {
	total := 0
	for _, s := range p.Stats() {
		if strings.HasPrefix(s.Name, "kor(") {
			total += s.In
		}
	}
	return total
}

func TestVOnlyProfile(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	doc := genDealer(r, 60)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(`
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	p, err := Build(ix, q, prof, 5, Push)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != algebra.ModeVS {
		t.Fatalf("mode = %v", p.Mode)
	}
	got := p.Execute()
	if len(got) == 0 {
		t.Fatal("no answers")
	}
	// Results must be sorted by increasing mileage (the VOR preference).
	last := -1.0
	for _, a := range got {
		m, ok := ix.Document().NumericValue(a.Node, "mileage")
		if !ok {
			continue
		}
		if last >= 0 && m < last {
			t.Errorf("mileage order violated: %v after %v", m, last)
		}
		last = m
	}
}

func TestNoProfile(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	doc := genDealer(r, 40)
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	p, err := Build(ix, q, nil, 3, Push)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != algebra.ModeS {
		t.Fatalf("mode = %v", p.Mode)
	}
	got := p.Execute()
	for i := 1; i < len(got); i++ {
		if got[i].S > got[i-1].S {
			t.Errorf("S order violated: %+v", got)
		}
	}
}

func TestVKSRankOrder(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	prof := profile.MustParseProfile(testProfile + "\nrank V,K,S")
	doc := genDealer(r, 80)
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	ref, err := Evaluate(ix, q, prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{InterleaveNoSort, InterleaveSort, Push} {
		p, err := Build(ix, q, prof, 5, strat)
		if err != nil {
			t.Fatal(err)
		}
		if p.Mode != algebra.ModeVKS {
			t.Fatalf("mode = %v", p.Mode)
		}
		got := p.Execute()
		if !sameAnswers(ref, got) {
			t.Errorf("%v disagrees under V,K,S:\nnaive: %s\ngot:   %s",
				strat, describe(ref), describe(got))
		}
	}
}

func TestEncodedOptionalPredicatesRankHigher(t *testing.T) {
	// Flock-encoded query: optional "low mileage" (delete-encoded) must
	// keep non-matching cars but rank matching ones higher on S.
	doc, err := xmldoc.ParseString(`
<dealer>
  <car><description>good condition</description></car>
  <car><description>good condition and low mileage</description></car>
</dealer>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"?]]`)
	got, err := Evaluate(ix, q, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("both cars must qualify: %+v", got)
	}
	cars := ix.Elements("car")
	if got[0].Node != cars[1] {
		t.Errorf("the car satisfying the optional predicate must rank first: %s", describe(got))
	}
	if !(got[0].S > got[1].S) {
		t.Errorf("optional match must add score: %s", describe(got))
	}
}

func TestBuildErrors(t *testing.T) {
	doc, _ := xmldoc.ParseString(`<a><b>x</b></a>`)
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//b`)
	if _, err := Build(ix, q, nil, 0, Naive); err == nil {
		t.Errorf("k=0 must fail")
	}
	bad := tpq.MustParse(`//b`)
	bad.Dist = 5
	if _, err := Build(ix, bad, nil, 3, Naive); err == nil {
		t.Errorf("invalid query must fail")
	}
}

func TestKFewerThanAnswers(t *testing.T) {
	doc, _ := xmldoc.ParseString(`<d><car><description>good condition</description></car></d>`)
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	got, err := Evaluate(ix, q, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("k larger than result: %+v", got)
	}
}

func TestPlanStringAndStats(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	doc := genDealer(r, 10)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(testProfile)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	p, err := BuildWith(ix, q, prof, 3, Options{Strategy: Push, AccessPath: AccessScan})
	if err != nil {
		t.Fatal(err)
	}
	p.Execute()
	s := p.String()
	for _, frag := range []string{"scan(car)", "ftjoin", "vor", "kor(w4)", "kor(w5)", "topkPrune", "sort"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan %q missing %q", s, frag)
		}
	}
	if p.TotalPruned() < 0 {
		t.Errorf("TotalPruned negative")
	}
	stats := p.Stats()
	if len(stats) == 0 || stats[0].Name != "scan(car)" {
		t.Errorf("stats = %+v", stats)
	}
}

// TestTwigAccessAgreesWithScan: the twig access path must produce the
// exact same ranked answers as the scan + per-candidate matcher path.
func TestTwigAccessAgreesWithScan(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	prof := profile.MustParseProfile(testProfile)
	queries := []*tpq.Query{
		tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`),
		tpq.MustParse(`//car[price < 2000]`),
		tpq.MustParse(`//dealer//car[./description and ./color]`),
		tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"?]]`),
	}
	for iter := 0; iter < 30; iter++ {
		doc := genDealer(r, 5+r.Intn(60))
		ix := index.Build(doc, text.Pipeline{})
		q := queries[r.Intn(len(queries))]
		k := 1 + r.Intn(6)
		for _, strat := range []Strategy{Naive, Push} {
			scan, err := BuildWith(ix, q, prof, k, Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			twigP, err := BuildWith(ix, q, prof, k, Options{Strategy: strat, TwigAccess: true})
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswers(scan.Execute(), twigP.Execute()) {
				t.Fatalf("iter %d: twig access disagrees\nq: %s", iter, q)
			}
			if !strings.Contains(twigP.String(), "twigscan") {
				t.Fatalf("twig plan lacks twigscan: %s", twigP)
			}
		}
	}
}

// TestPropertyStrategiesAgreeRandomQueries widens the agreement check to
// random profiles and random k over random documents.
func TestPropertyStrategiesAgreeRandomQueries(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	queries := []*tpq.Query{
		tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`),
		tpq.MustParse(`//car[price < 2000]`),
		tpq.MustParse(`//car[./description[. ftcontains "best bid"] and price < 2500]`),
		tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"?]]`),
	}
	profiles := []*profile.Profile{
		nil,
		profile.MustParseProfile(`kor k1: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y`),
		profile.MustParseProfile(testProfile),
		profile.MustParseProfile(`
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor k1 priority 1 weight 2: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor k2 priority 2: x.tag = car & y.tag = car & ftcontains(x, "american") => x < y
kor k3 priority 3: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
`),
		profile.MustParseProfile(testProfile + "\nrank blend"),
	}
	for iter := 0; iter < 60; iter++ {
		doc := genDealer(r, 3+r.Intn(50))
		ix := index.Build(doc, text.Pipeline{})
		q := queries[r.Intn(len(queries))]
		prof := profiles[r.Intn(len(profiles))]
		k := 1 + r.Intn(6)
		ref, err := Evaluate(ix, q, prof, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{InterleaveNoSort, InterleaveSort, Push, PushDeep} {
			p, err := Build(ix, q, prof, k, strat)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Execute()
			if !sameAnswers(ref, got) {
				t.Fatalf("iter %d: %v disagrees\nq: %s\nnaive: %s\ngot:   %s\nplan: %s",
					iter, strat, q, describe(ref), describe(got), p)
			}
		}
	}
}
