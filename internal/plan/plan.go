// Package plan builds the physical query plans of Section 6 and Fig. 7:
// NaivetopkPrune (prune only at the end), InterleavetopkPrune (prune
// after each keyword-based OR, with or without sorting), and
// PushtopKPrune (pruning pushed all the way down the plan), plus the
// score-bound bookkeeping (query-scorebound, kor-scorebound) that keeps
// every prune sound.
package plan

import (
	"context"
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/tpq"
	"repro/internal/twig"
	"repro/internal/xmldoc"
)

// Strategy selects the plan shape of Fig. 7.
type Strategy uint8

const (
	// Default resolves to Push, the paper's best-performing plan.
	Default Strategy = iota
	// Naive applies topkPrune once, at the end of the plan (NtpkP).
	Naive
	// InterleaveNoSort applies topkPrune after each KOR without sorting
	// (NS-ILtpkP).
	InterleaveNoSort
	// InterleaveSort sorts before each interleaved topkPrune, enabling
	// bulk pruning (S-ILtpkP).
	InterleaveSort
	// Push pushes topkPrune all the way down: before the first KOR and
	// after each one (PtkpP).
	Push
	// PushDeep additionally pushes prunes between the score-contributing
	// keyword joins using query-scorebounds — the ablation DESIGN.md
	// calls out for score-bound tightness.
	PushDeep
)

func (s Strategy) String() string {
	switch s {
	case Default:
		return "default(PtpkP)"
	case Naive:
		return "NtpkP"
	case InterleaveNoSort:
		return "NS-ILtpkP"
	case InterleaveSort:
		return "S-ILtpkP"
	case Push:
		return "PtpkP"
	case PushDeep:
		return "PtpkP-deep"
	}
	return "?"
}

// Strategies lists the four plans Fig. 7 compares, in the paper's order.
var Strategies = []Strategy{Naive, InterleaveNoSort, InterleaveSort, Push}

// Plan is an executable physical plan.
type Plan struct {
	Strategy Strategy
	Mode     algebra.Mode
	K        int

	// Build context, retained so Execute can instantiate additional
	// operator chains for parallel partitions.
	ix     *index.Index
	q      *tpq.Query
	prof   *profile.Profile
	opts   Options
	ranker *algebra.Ranker

	par        int  // resolved parallelism (ResolveParallelism)
	parAuto    bool // par came from auto-resolution (load scale-down applies)
	m          *algebra.Matcher
	access     AccessPath      // resolved access path (never AccessAuto)
	eval       *twig.Evaluator // twigjoin access path; nil for scan
	listSrc    *algebra.ListScanOp
	sourceIDs  []xmldoc.NodeID // the access path's candidate list
	sourceName string          // display name of the source operator
	distTag    string

	// Last twigjoin execution, for the synthetic source OpStats entry
	// and the serving layer's counters.
	joinStats *twig.JoinStats
	joinNS    int64
	joinIn    int

	root  algebra.Operator
	final *algebra.TopKPruneOp
	ops   []algebra.Operator
	// cancel is the sequential chain's cancellation probe; it is rebound
	// to the caller's context by each ExecuteContext. Parallel workers
	// build their own probes.
	cancel *algebra.CancelCheck

	parStats    []algebra.OpStats // merged worker stats of a parallel Execute
	lastWorkers int               // workers used by the most recent Execute
}

// Options tunes plan compilation beyond the strategy.
type Options struct {
	Strategy Strategy
	// AccessPath selects the candidate source: AccessScan streams the
	// distinguished tag list and matches per candidate, AccessTwigJoin
	// runs the holistic twig join (positional stack join + dataguide
	// pruning) at Execute time. AccessAuto — the default — picks
	// twigjoin for structural queries whose tag lists are cheap to
	// stream relative to the scan's candidate count, and scan
	// otherwise. The ranked answers are identical on every path.
	AccessPath AccessPath
	// TwigAccess is the legacy boolean form of AccessPath: true means
	// AccessTwigJoin when AccessPath is AccessAuto.
	TwigAccess bool
	// Parallelism partitions the access path's candidate list across
	// workers at Execute time: 0 resolves by document size (sequential
	// below ParallelMinNodes, GOMAXPROCS above — see
	// ResolveParallelism), 1 forces the sequential reference path,
	// n >= 2 forces exactly n workers (capped at MaxParallelism,
	// clamped to the candidate count). Results are identical at every
	// setting; see DESIGN.md "Parallel execution".
	Parallelism int
	// ParallelMinNodes is the document node count above which
	// Parallelism 0 grants workers: 0 means DefaultParallelMinNodes,
	// negative disables the threshold (auto -> GOMAXPROCS always, the
	// pre-scheduler behavior kept as the load harness's baseline).
	ParallelMinNodes int
	// Budget, when non-nil, gates the *extra* goroutines of a parallel
	// Execute (the caller's own goroutine always works): each helper
	// spawns only if Budget.TryAcquire allows. The serving layer passes
	// one shared budget to every plan and the corpus fan-out, bounding
	// total execution goroutines machine-wide. Results do not depend on
	// how many tokens are granted.
	Budget WorkerBudget
	// Context, when non-nil, is the default execution context: Execute
	// aborts cooperatively once it is cancelled or past its deadline.
	// ExecuteContext overrides it per call.
	Context context.Context
	// Timing wraps every operator so Stats() report per-operator wall
	// time (OpStats.WallNS) at the cost of two clock reads per pull.
	// The serving layer and the Fig. 6/7 harnesses enable it; the bare
	// chain stays the default for library callers and benchmarks.
	Timing bool
}

// Build compiles a (possibly profile-encoded) query into a physical plan.
// The query's optional predicates are honored as outer-joins; the
// profile supplies the ordering rules. k is the result size.
func Build(ix *index.Index, q *tpq.Query, prof *profile.Profile, k int, strat Strategy) (*Plan, error) {
	return BuildWith(ix, q, prof, k, Options{Strategy: strat})
}

// BuildWith is Build with full options.
func BuildWith(ix *index.Index, q *tpq.Query, prof *profile.Profile, k int, opts Options) (*Plan, error) {
	if k <= 0 {
		return nil, fmt.Errorf("plan: k must be positive, got %d", k)
	}
	if opts.Strategy == Default {
		opts.Strategy = Push
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Strategy: opts.Strategy,
		Mode:     algebra.ModeForProfile(prof),
		K:        k,
		ix:       ix, q: q, prof: prof, opts: opts,
		ranker: algebra.NewRanker(prof),
	}
	p.distTag = q.Nodes[q.Dist].Tag
	p.access = opts.resolveAccess(ix, q)
	p.par = ResolveParallelism(opts.Parallelism, ix.Document().Len(), opts.ParallelMinNodes)
	p.parAuto = opts.Parallelism <= 0
	var src algebra.Operator
	if p.access == AccessTwigJoin {
		// The join itself runs lazily at Execute time (ensureSource), so
		// execution timings honestly include the access path's work; the
		// evaluator memoizes the query decomposition and the dataguide
		// match so re-executions pay only for the streaming passes.
		p.eval = twig.NewEvaluator(ix, q)
		p.joinIn = ix.TagCount(p.distTag)
		p.sourceName = "twigscan(" + p.distTag + ")"
		p.listSrc = &algebra.ListScanOp{Name: p.sourceName}
		src = p.listSrc
	} else {
		p.sourceIDs = ix.Elements(p.distTag)
		p.sourceName = "scan(" + p.distTag + ")"
		src = &algebra.ScanOp{Ix: ix, Tag: p.distTag}
	}
	// Compiling the chain doubles as the cache pre-warm pass: the bound
	// computations below (MaxUnitScore, MaxKORContribution) populate the
	// index's phrase/df/max-score caches for every (tag, phrase) pair the
	// query and profile can probe, so per-candidate evaluation — and the
	// per-worker rebuilds of a parallel Execute — hit read-only snapshots.
	p.cancel = algebra.NewCancelCheck(nil)
	p.ops, p.final, p.m = p.buildChain(src, nil, p.cancel)
	p.root = p.ops[len(p.ops)-1]
	return p, nil
}

// buildChain compiles the operator pipeline on top of the given source
// operator. Every call creates its own Matcher (matchers reuse scratch
// buffers and are not safe for concurrent use); shared is non-nil only
// for the workers of a parallel Execute, which exchange their top-k
// thresholds through it. cancel is the chain's cancellation probe,
// threaded into the scan, match and prune loops (the places a
// cooperative abort must interrupt; see DESIGN.md §10).
func (p *Plan) buildChain(src algebra.Operator, shared *algebra.SharedBound, cancel *algebra.CancelCheck) ([]algebra.Operator, *algebra.TopKPruneOp, *algebra.Matcher) {
	ix, q, prof, k := p.ix, p.q, p.prof, p.K
	strat, mode, ranker := p.Strategy, p.Mode, p.ranker
	m := algebra.NewMatcher(ix, q)

	switch s := src.(type) {
	case *algebra.ScanOp:
		s.Cancel = cancel
	case *algebra.ListScanOp:
		s.Cancel = cancel
	}

	var ops []algebra.Operator
	push := func(op algebra.Operator) algebra.Operator {
		if p.opts.Timing {
			op = algebra.WithTiming(op)
		}
		ops = append(ops, op)
		return op
	}

	op := push(src)
	if p.access == AccessTwigJoin {
		if units := m.RequiredConstraintUnits(); len(units) > 0 {
			op = push(&algebra.UnitFilterOp{In: op, Matcher: m, Units: units})
		}
	} else {
		op = push(&algebra.RequiredOp{In: op, Matcher: m, Cancel: cancel})
	}

	// Score-contributing keyword joins, required first. For PushDeep,
	// interleave prunes with decreasing query-scorebounds.
	ftUnits := m.FTUnits()
	ftMax := make([]float64, len(ftUnits))
	totalS := 0.0
	for i, u := range ftUnits {
		ftMax[i] = m.MaxUnitScore(u)
		totalS += ftMax[i]
	}
	bonus := &algebra.BonusOp{Matcher: m, Units: m.OptionalBonusUnits()}
	bonusMax := bonus.MaxScore()
	totalS += bonusMax

	var kors []*profile.KOR
	if prof != nil {
		kors = prof.SortKORsByPriority()
	}
	korMax := make([]float64, len(kors))
	totalK := 0.0
	for i, kor := range kors {
		korMax[i] = algebra.MaxKORContribution(ix, kor)
		totalK += korMax[i]
	}

	remS := totalS
	for i, u := range ftUnits {
		if strat == PushDeep && len(ops) > 2 {
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker,
				SBound: remS, KorBound: totalK, Shared: shared, Cancel: cancel,
			})
		}
		op = push(&algebra.FTOp{In: op, Matcher: m, Unit: u})
		remS -= ftMax[i]
	}
	bonus.In = op
	op = push(bonus)
	remS = 0

	if prof != nil && len(prof.VORs) > 0 {
		op = push(&algebra.VOROp{In: op, Doc: ix.Document(), Prof: prof})
	}

	remK := totalK
	for i, kor := range kors {
		switch strat {
		case Push, PushDeep:
			// Prune right before each kor with the sum of the remaining
			// KORs' maximal scores (Section 6.3's Plan 2 description).
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, KorBound: remK,
				Shared: shared, Cancel: cancel,
			})
		}
		op = push(&algebra.KOROp{In: op, Ix: ix, Kor: kor})
		remK -= korMax[i]
		if remK < 1e-12 {
			remK = 0 // absorb floating-point residue: the bound is conceptually exact
		}
		switch strat {
		case InterleaveNoSort:
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, KorBound: remK,
				Shared: shared, Cancel: cancel,
			})
		case InterleaveSort:
			op = push(&algebra.SortOp{In: op, Ranker: ranker, Mode: mode})
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, KorBound: remK,
				SortedInput: true, Shared: shared, Cancel: cancel,
			})
		}
		if (strat == Push || strat == PushDeep) && i == len(kors)-1 {
			// Pushed all the way also means pruning after the last KOR
			// (kor-scorebound 0), so the final sort sees a k-sized stream
			// instead of every candidate.
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, Shared: shared, Cancel: cancel,
			})
		}
	}

	// Final ranking: parametric sort + topkPrune (Fig. 4's plan tops).
	op = push(&algebra.SortOp{In: op, Ranker: ranker, Mode: mode})
	final := &algebra.TopKPruneOp{
		In: op, K: k, Mode: mode, Ranker: ranker, SortedInput: true,
		Shared: shared, Cancel: cancel,
	}
	push(final)

	return ops, final, m
}

// Execute runs the plan to completion and returns the top-k answers,
// best first. With Options.Parallelism != 1 (and enough candidates) the
// access path is partitioned across workers; the answer list is
// identical to the sequential path's at every parallelism level.
// Cancellation of Options.Context surfaces as a truncated result here;
// use ExecuteContext to distinguish aborts from completions.
func (p *Plan) Execute() []algebra.Answer {
	// A nil Options.Context threads through as-is: every layer below
	// (CancelCheck, ContextErr, the twig stop probes) treats nil as
	// "never cancelled", so no context is fabricated mid-stack.
	answers, _ := p.ExecuteContext(p.opts.Context)
	return answers
}

// ExecuteContext runs the plan under ctx and returns the top-k answers,
// best first. When ctx is cancelled or its deadline expires, the scan,
// match and prune loops abort cooperatively (within a bounded number of
// candidates) and ExecuteContext returns ctx's error with a nil answer
// list — never a silently truncated top k.
func (p *Plan) ExecuteContext(ctx context.Context) ([]algebra.Answer, error) {
	if err := algebra.ContextErr(ctx); err != nil {
		return nil, err
	}
	if err := p.ensureSource(ctx); err != nil {
		return nil, err
	}
	if w := p.effectiveWorkers(); w > 1 {
		return p.executeParallel(ctx, w)
	}
	p.parStats = nil
	p.lastWorkers = 1
	p.cancel.Reset(ctx)
	p.root.Open()
	for {
		if _, ok := p.root.Next(); !ok {
			break
		}
	}
	if err := algebra.ContextErr(ctx); err != nil {
		return nil, err
	}
	return p.final.TopK(), nil
}

// ensureSource runs the twigjoin access path (no-op for scans). It
// runs on every execution — not once per plan — so Execute timings and
// benchmarks account for the full per-query cost of the access path,
// exactly as the scan path re-scans its tag list each time. The join
// aborts cooperatively when ctx is cancelled.
func (p *Plan) ensureSource(ctx context.Context) error {
	if p.eval == nil {
		return nil
	}
	start := time.Now()
	ids, stats, err := p.eval.Distinguished(ctx)
	if err != nil {
		return err
	}
	p.sourceIDs = ids
	p.listSrc.IDs = ids
	p.joinStats = &stats
	p.joinNS = time.Since(start).Nanoseconds()
	return nil
}

// Workers reports how many workers the most recent Execute used
// (0 before the first Execute).
func (p *Plan) Workers() int { return p.lastWorkers }

// Parallelism reports the plan's resolved parallelism — the worker
// count ResolveParallelism chose from the request and the document
// size, before the Execute-time candidate-count scale-down. This is
// the value the serving layer surfaces to clients and keys its result
// cache on.
func (p *Plan) Parallelism() int { return p.par }

// Release hands the sequential chain's pooled scratch buffers back
// (parallel partitions release their own as they finish). The plan
// stays executable — operators re-acquire on the next Open — but call
// it only after copying out whatever answers you need. Safe to call
// repeatedly.
func (p *Plan) Release() {
	algebra.ReleaseChainScratch(p.ops)
	p.m.ReleaseScratch()
}

// Access reports the resolved access path (never AccessAuto).
func (p *Plan) Access() AccessPath { return p.access }

// JoinStats returns the twigjoin counters of the most recent Execute,
// or nil when the plan uses the scan access path (or has not executed).
func (p *Plan) JoinStats() *JoinStats { return p.joinStats }

// Stats returns per-operator counters, bottom-up. After a parallel
// Execute the counters — answer counts and, with Options.Timing, wall
// time — are the position-wise sums over all workers (worker chains
// are structurally identical). Note that summed WallNS is aggregate
// busy time across workers, not elapsed wall clock: it can exceed the
// execution's elapsed time by up to the worker count.
//
// On the twigjoin access path a synthetic leading entry reports the
// join itself: In is the distinguished tag's list size, Out the
// candidates the join emitted, WallNS the join's wall time. With
// Options.Timing the join time is also folded into every chain
// operator's inclusive WallNS, preserving the self-time-by-adjacent-
// difference convention (the join is upstream of the whole chain).
func (p *Plan) Stats() []algebra.OpStats {
	chain := p.chainStats()
	if p.joinStats == nil {
		return chain
	}
	join := algebra.OpStats{
		Name:   "twigjoin(" + p.distTag + ")",
		In:     p.joinIn,
		Out:    len(p.sourceIDs),
		Pruned: p.joinIn - len(p.sourceIDs),
		WallNS: p.joinNS,
	}
	if p.opts.Timing {
		for i := range chain {
			chain[i].WallNS += p.joinNS
		}
	} else {
		join.WallNS = 0
	}
	return append([]algebra.OpStats{join}, chain...)
}

// chainStats returns the operator chain's counters without the access
// path's synthetic entry.
func (p *Plan) chainStats() []algebra.OpStats {
	if p.parStats != nil {
		out := make([]algebra.OpStats, len(p.parStats))
		copy(out, p.parStats)
		return out
	}
	out := make([]algebra.OpStats, len(p.ops))
	for i, op := range p.ops {
		out[i] = op.Stats()
	}
	return out
}

// TotalPruned sums answers dropped by the chain's prune operators. The
// twigjoin access path's structural prunes are intentionally excluded —
// they are candidates that never entered the pipeline (the scan path
// never counted the RequiredOp's structural rejects here either);
// JoinStats reports them.
func (p *Plan) TotalPruned() int {
	t := 0
	for _, s := range p.chainStats() {
		t += s.Pruned
	}
	return t
}

// String renders the plan shape for diagnostics.
func (p *Plan) String() string {
	// Go through Stats(): after a parallel execution the sequential chain
	// was never opened (its operator names are empty), but the merged
	// worker stats carry the names.
	s := ""
	for i, st := range p.Stats() {
		if i > 0 {
			s += " -> "
		}
		s += st.Name
	}
	return s
}

// Evaluate is the naive reference evaluator: score every candidate fully,
// sort by the profile's rank order, return the top k. It is the ground
// truth the pruning plans are tested against and the evaluator used by
// the effectiveness experiments (where pruning is not under study).
func Evaluate(ix *index.Index, q *tpq.Query, prof *profile.Profile, k int) ([]algebra.Answer, error) {
	p, err := Build(ix, q, prof, k, Naive)
	if err != nil {
		return nil, err
	}
	return p.Execute(), nil
}
