// Package plan builds the physical query plans of Section 6 and Fig. 7:
// NaivetopkPrune (prune only at the end), InterleavetopkPrune (prune
// after each keyword-based OR, with or without sorting), and
// PushtopKPrune (pruning pushed all the way down the plan), plus the
// score-bound bookkeeping (query-scorebound, kor-scorebound) that keeps
// every prune sound.
package plan

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/tpq"
	"repro/internal/twig"
)

// Strategy selects the plan shape of Fig. 7.
type Strategy uint8

const (
	// Default resolves to Push, the paper's best-performing plan.
	Default Strategy = iota
	// Naive applies topkPrune once, at the end of the plan (NtpkP).
	Naive
	// InterleaveNoSort applies topkPrune after each KOR without sorting
	// (NS-ILtpkP).
	InterleaveNoSort
	// InterleaveSort sorts before each interleaved topkPrune, enabling
	// bulk pruning (S-ILtpkP).
	InterleaveSort
	// Push pushes topkPrune all the way down: before the first KOR and
	// after each one (PtkpP).
	Push
	// PushDeep additionally pushes prunes between the score-contributing
	// keyword joins using query-scorebounds — the ablation DESIGN.md
	// calls out for score-bound tightness.
	PushDeep
)

func (s Strategy) String() string {
	switch s {
	case Default:
		return "default(PtpkP)"
	case Naive:
		return "NtpkP"
	case InterleaveNoSort:
		return "NS-ILtpkP"
	case InterleaveSort:
		return "S-ILtpkP"
	case Push:
		return "PtpkP"
	case PushDeep:
		return "PtpkP-deep"
	}
	return "?"
}

// Strategies lists the four plans Fig. 7 compares, in the paper's order.
var Strategies = []Strategy{Naive, InterleaveNoSort, InterleaveSort, Push}

// Plan is an executable physical plan.
type Plan struct {
	Strategy Strategy
	Mode     algebra.Mode
	K        int

	root  algebra.Operator
	final *algebra.TopKPruneOp
	ops   []algebra.Operator
}

// Options tunes plan compilation beyond the strategy.
type Options struct {
	Strategy Strategy
	// TwigAccess replaces the scan + per-candidate structural semijoin
	// with a holistic twig filter (internal/twig): the distinguished
	// candidates are computed set-at-a-time before the pipeline starts.
	TwigAccess bool
}

// Build compiles a (possibly profile-encoded) query into a physical plan.
// The query's optional predicates are honored as outer-joins; the
// profile supplies the ordering rules. k is the result size.
func Build(ix *index.Index, q *tpq.Query, prof *profile.Profile, k int, strat Strategy) (*Plan, error) {
	return BuildWith(ix, q, prof, k, Options{Strategy: strat})
}

// BuildWith is Build with full options.
func BuildWith(ix *index.Index, q *tpq.Query, prof *profile.Profile, k int, opts Options) (*Plan, error) {
	strat := opts.Strategy
	if k <= 0 {
		return nil, fmt.Errorf("plan: k must be positive, got %d", k)
	}
	if strat == Default {
		strat = Push
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m := algebra.NewMatcher(ix, q)
	ranker := &algebra.Ranker{Prof: prof}
	mode := algebra.ModeForProfile(prof)

	p := &Plan{Strategy: strat, Mode: mode, K: k}
	push := func(op algebra.Operator) algebra.Operator {
		p.ops = append(p.ops, op)
		return op
	}

	var op algebra.Operator
	if opts.TwigAccess {
		op = push(&algebra.ListScanOp{
			Name: "twigscan(" + q.Nodes[q.Dist].Tag + ")",
			IDs:  twig.Distinguished(ix, q),
		})
		if units := m.RequiredConstraintUnits(); len(units) > 0 {
			op = push(&algebra.UnitFilterOp{In: op, Matcher: m, Units: units})
		}
	} else {
		op = push(&algebra.ScanOp{Ix: ix, Tag: q.Nodes[q.Dist].Tag})
		op = push(&algebra.RequiredOp{In: op, Matcher: m})
	}

	// Score-contributing keyword joins, required first. For PushDeep,
	// interleave prunes with decreasing query-scorebounds.
	ftUnits := m.FTUnits()
	ftMax := make([]float64, len(ftUnits))
	totalS := 0.0
	for i, u := range ftUnits {
		ftMax[i] = m.MaxUnitScore(u)
		totalS += ftMax[i]
	}
	bonus := &algebra.BonusOp{Matcher: m, Units: m.OptionalBonusUnits()}
	bonusMax := bonus.MaxScore()
	totalS += bonusMax

	var kors []*profile.KOR
	if prof != nil {
		kors = prof.SortKORsByPriority()
	}
	korMax := make([]float64, len(kors))
	totalK := 0.0
	for i, kor := range kors {
		korMax[i] = algebra.MaxKORContribution(ix, kor)
		totalK += korMax[i]
	}

	remS := totalS
	for i, u := range ftUnits {
		if strat == PushDeep && len(p.ops) > 2 {
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker,
				SBound: remS, KorBound: totalK,
			})
		}
		op = push(&algebra.FTOp{In: op, Matcher: m, Unit: u})
		remS -= ftMax[i]
	}
	bonus.In = op
	op = push(bonus)
	remS = 0

	if prof != nil && len(prof.VORs) > 0 {
		op = push(&algebra.VOROp{In: op, Doc: ix.Document(), Prof: prof})
	}

	remK := totalK
	for i, kor := range kors {
		switch strat {
		case Push, PushDeep:
			// Prune right before each kor with the sum of the remaining
			// KORs' maximal scores (Section 6.3's Plan 2 description).
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, KorBound: remK,
			})
		}
		op = push(&algebra.KOROp{In: op, Ix: ix, Kor: kor})
		remK -= korMax[i]
		if remK < 1e-12 {
			remK = 0 // absorb floating-point residue: the bound is conceptually exact
		}
		switch strat {
		case InterleaveNoSort:
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, KorBound: remK,
			})
		case InterleaveSort:
			op = push(&algebra.SortOp{In: op, Ranker: ranker, Mode: mode})
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker, KorBound: remK,
				SortedInput: true,
			})
		}
		if (strat == Push || strat == PushDeep) && i == len(kors)-1 {
			// Pushed all the way also means pruning after the last KOR
			// (kor-scorebound 0), so the final sort sees a k-sized stream
			// instead of every candidate.
			op = push(&algebra.TopKPruneOp{
				In: op, K: k, Mode: mode, Ranker: ranker,
			})
		}
	}

	// Final ranking: parametric sort + topkPrune (Fig. 4's plan tops).
	op = push(&algebra.SortOp{In: op, Ranker: ranker, Mode: mode})
	final := &algebra.TopKPruneOp{
		In: op, K: k, Mode: mode, Ranker: ranker, SortedInput: true,
	}
	op = push(final)

	p.root = op
	p.final = final
	return p, nil
}

// Execute runs the plan to completion and returns the top-k answers,
// best first.
func (p *Plan) Execute() []algebra.Answer {
	p.root.Open()
	for {
		if _, ok := p.root.Next(); !ok {
			break
		}
	}
	return p.final.TopK()
}

// Stats returns per-operator counters, bottom-up.
func (p *Plan) Stats() []algebra.OpStats {
	out := make([]algebra.OpStats, len(p.ops))
	for i, op := range p.ops {
		out[i] = op.Stats()
	}
	return out
}

// TotalPruned sums answers dropped by all prune operators.
func (p *Plan) TotalPruned() int {
	t := 0
	for _, s := range p.Stats() {
		t += s.Pruned
	}
	return t
}

// String renders the plan shape for diagnostics.
func (p *Plan) String() string {
	s := ""
	for i, op := range p.ops {
		if i > 0 {
			s += " -> "
		}
		s += op.Stats().Name
	}
	return s
}

// Evaluate is the naive reference evaluator: score every candidate fully,
// sort by the profile's rank order, return the top k. It is the ground
// truth the pruning plans are tested against and the evaluator used by
// the effectiveness experiments (where pruning is not under study).
func Evaluate(ix *index.Index, q *tpq.Query, prof *profile.Profile, k int) ([]algebra.Answer, error) {
	p, err := Build(ix, q, prof, k, Naive)
	if err != nil {
		return nil, err
	}
	return p.Execute(), nil
}
