package plan

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// bigDoc builds a flat document with n <item> elements so scans have
// enough candidates to cross many cancellation checkpoints.
func bigDoc(t *testing.T, n int) *index.Index {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<item><name>item %d alpha beta</name><price>%d</price></item>", i, i%100)
	}
	sb.WriteString("</root>")
	doc, err := xmldoc.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc, text.Pipeline{})
}

func TestExecuteContextCancelled(t *testing.T) {
	ix := bigDoc(t, 2000)
	q, err := tpq.Parse(`//item[./name[. ftcontains "alpha"]]`)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p, err := BuildWith(ix, q, nil, 5, Options{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}

			// Pre-cancelled context: no work at all.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			answers, err := p.ExecuteContext(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
			}
			if answers != nil {
				t.Fatalf("pre-cancelled: got %d answers, want none", len(answers))
			}

			// Already-expired deadline: plan aborts even though the
			// context's timer may never have fired (clock-based check).
			dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
			defer dcancel()
			answers, err = p.ExecuteContext(dctx)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
			}
			if answers != nil {
				t.Fatalf("expired deadline: got %d answers, want none", len(answers))
			}

			// The same plan still executes fully under a live context:
			// Reset clears the latched abort.
			answers, err = p.ExecuteContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(answers) != 5 {
				t.Fatalf("after abort, fresh execution returned %d answers, want 5", len(answers))
			}
		})
	}
}

// TestExecuteNilContextOption covers the Execute() compatibility path:
// Options.Context is optional and nil means background.
func TestExecuteNilContextOption(t *testing.T) {
	ix := bigDoc(t, 50)
	q, err := tpq.Parse(`//item`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildWith(ix, q, nil, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Execute(); len(got) != 3 {
		t.Fatalf("Execute returned %d answers, want 3", len(got))
	}
}
