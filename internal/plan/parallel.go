// Parallel scan-partitioned plan execution.
//
// The pipelines of Fig. 4 process distinguished-node candidates one at
// a time, and per-candidate matching is independent — the only shared
// state a sound top-k evaluation needs is the pruning threshold. So the
// parallel executor splits the access path's candidate list (tag scan
// or twig output) into contiguous partitions, gives each worker its own
// full operator chain (each chain owns its Matcher, which reuses
// scratch buffers and is not concurrency-safe), and lets the workers
// exchange prune thresholds through an atomic, monotonically tightening
// SharedBound. A stale (lower) read of the bound is merely looser — it
// prunes less, never an answer that belongs in the top k — so workers
// never block on each other.
//
// Determinism: each worker returns the top k of its partition under the
// full rank order with NodeID tie-break; the final k-merge sorts the
// union under the same total order, which is exactly the sequential
// result whatever the partition count or goroutine interleaving.
package plan

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/algebra"
	"repro/internal/xmldoc"
)

// minPartition is the smallest candidate partition worth a dedicated
// worker: below this, goroutine spawn and per-worker chain construction
// cost more than scanning the partition sequentially.
const minPartition = 256

// effectiveWorkers resolves Options.Parallelism against the candidate
// count: 1 (or a single-CPU GOMAXPROCS) keeps the sequential reference
// path; 0 takes GOMAXPROCS workers scaled down so each gets at least
// minPartition candidates; an explicit n >= 2 is honored (clamped to
// one candidate per worker) so tests can force parallelism on small
// inputs.
func (p *Plan) effectiveWorkers() int {
	n := p.opts.Parallelism
	if n == 1 {
		return 1
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if byLoad := len(p.sourceIDs) / minPartition; byLoad < n {
			n = byLoad
		}
	}
	if n > len(p.sourceIDs) {
		n = len(p.sourceIDs)
	}
	if n < 1 {
		return 1
	}
	return n
}

// executeParallel runs the plan as w scan-partitioned workers and
// k-merges their results deterministically. Each worker carries its own
// cancellation probe bound to ctx, so a deadline or client disconnect
// aborts every partition cooperatively instead of burning w workers on
// a result nobody is waiting for.
func (p *Plan) executeParallel(ctx context.Context, w int) ([]algebra.Answer, error) {
	ids := p.sourceIDs
	shared := algebra.NewSharedBound()
	type workerOut struct {
		top   []algebra.Answer
		stats []algebra.OpStats
	}
	outs := make([]workerOut, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := i*len(ids)/w, (i+1)*len(ids)/w
		wg.Add(1)
		go func(i int, part []xmldoc.NodeID) {
			defer wg.Done()
			src := &algebra.ListScanOp{Name: p.sourceName, IDs: part}
			ops, final := p.buildChain(src, shared, algebra.NewCancelCheck(ctx))
			root := ops[len(ops)-1]
			root.Open()
			for {
				if _, ok := root.Next(); !ok {
					break
				}
			}
			stats := make([]algebra.OpStats, len(ops))
			for j, op := range ops {
				stats[j] = op.Stats()
			}
			outs[i] = workerOut{top: final.TopK(), stats: stats}
		}(i, ids[lo:hi])
	}
	wg.Wait()
	p.lastWorkers = w
	if err := algebra.ContextErr(ctx); err != nil {
		// At least one worker may have stopped mid-partition; its top-k
		// list is not a sound summary of its partition, so the merge
		// below would be a silently truncated answer. Report the abort.
		p.parStats = nil
		return nil, err
	}

	// Position-wise stats merge: worker chains are built by the same
	// buildChain call sequence, so operator j means the same thing in
	// every worker. Counts and wall time are summed — a single worker's
	// chain would misreport the whole execution's traffic (regression:
	// TestParallelStatsAggregate).
	merged := outs[0].stats
	for _, o := range outs[1:] {
		for j := range merged {
			merged[j].In += o.stats[j].In
			merged[j].Out += o.stats[j].Out
			merged[j].Pruned += o.stats[j].Pruned
			merged[j].WallNS += o.stats[j].WallNS
		}
	}
	p.parStats = merged

	// Deterministic k-merge under the same total order as the sequential
	// final sort: rank comparison first, NodeID as tie-break. Partitions
	// are disjoint, so no deduplication is needed.
	all := make([]algebra.Answer, 0, w*p.K)
	for _, o := range outs {
		all = append(all, o.top...)
	}
	r, mode := p.ranker, p.Mode
	sort.SliceStable(all, func(i, j int) bool {
		c := r.Compare(&all[i], &all[j], mode)
		if c != 0 {
			return c > 0
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > p.K {
		all = all[:p.K]
	}
	return all, nil
}
