// Parallel scan-partitioned plan execution.
//
// The pipelines of Fig. 4 process distinguished-node candidates one at
// a time, and per-candidate matching is independent — the only shared
// state a sound top-k evaluation needs is the pruning threshold. So the
// parallel executor splits the access path's candidate list (tag scan
// or twig output) into contiguous partitions, gives each worker its own
// full operator chain (each chain owns its Matcher, which reuses
// scratch buffers and is not concurrency-safe), and lets the workers
// exchange prune thresholds through an atomic, monotonically tightening
// SharedBound. A stale (lower) read of the bound is merely looser — it
// prunes less, never an answer that belongs in the top k — so workers
// never block on each other.
//
// Determinism: each worker returns the top k of its partition under the
// full rank order with NodeID tie-break; the final k-merge sorts the
// union under the same total order, which is exactly the sequential
// result whatever the partition count or goroutine interleaving.
package plan

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
)

// minPartition is the smallest candidate partition worth a dedicated
// worker: below this, goroutine spawn and per-worker chain construction
// cost more than scanning the partition sequentially.
const minPartition = 256

// MaxParallelism bounds the Parallelism option. Anything above it is a
// request error at the API boundary (the serving layer rejects it; see
// the contract in server.SearchRequest), never a silent clamp — the old
// behavior of accepting up to 1024 and quietly capping at the candidate
// count hid what actually ran.
const MaxParallelism = 64

// DefaultParallelMinNodes is the document size (node count) above which
// auto-resolution (Parallelism <= 0) grants intra-query workers. The
// threshold is read off BENCH_parallel.json: par=8 *loses* to par=1 at
// every XMark size up to 1 MB (57,558 nodes — 528µs vs 242µs at 101KB /
// 5,788 nodes) and first wins at 5.7 MB (324,990 nodes, 11.8ms vs
// 12.9ms). 150,000 sits between the largest losing size and the
// smallest winning one.
const DefaultParallelMinNodes = 150_000

// WorkerBudget is a non-blocking allowance for *extra* goroutines
// beyond the one the caller already owns (implemented by sched.Budget).
// A nil budget means "unbudgeted": spawn freely, the pre-scheduler
// library behavior. Execution never blocks on the budget and results
// are identical whether a token is granted or not — a denied token just
// runs that partition in the caller's goroutine.
type WorkerBudget interface {
	TryAcquire() bool
	Release()
}

// ResolveParallelism is the cost model behind the Parallelism knob,
// mirroring resolveAccess: it maps the requested setting and the
// document's node count to the worker count the plan will report.
//
//	requested == 1  -> 1 (explicit sequential)
//	requested >= 2  -> requested, capped at MaxParallelism (explicit
//	                   parallel; tests force workers on small inputs)
//	requested <= 0  -> auto: GOMAXPROCS when docNodes >= minNodes,
//	                   else 1 — small documents lose under intra-query
//	                   parallelism (BENCH_parallel.json), and under
//	                   concurrent load extra workers are pure
//	                   oversubscription.
//
// minNodes == 0 means DefaultParallelMinNodes; minNodes < 0 disables
// the threshold entirely (auto -> GOMAXPROCS unconditionally), which is
// the legacy behavior the load harness uses as its naive baseline.
// The result is deterministic for a given document, so it is safe to
// key result caches on (the serving layer does).
func ResolveParallelism(requested, docNodes, minNodes int) int {
	if requested == 1 {
		return 1
	}
	if requested >= 2 {
		if requested > MaxParallelism {
			return MaxParallelism
		}
		return requested
	}
	if minNodes == 0 {
		minNodes = DefaultParallelMinNodes
	}
	if minNodes > 0 && docNodes < minNodes {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > MaxParallelism {
		n = MaxParallelism
	}
	return n
}

// effectiveWorkers scales the resolved parallelism down against the
// actual candidate count at Execute time: auto-resolved workers are
// dropped to one per minPartition candidates (worker setup costs more
// than scanning a short partition), and every worker needs at least one
// candidate. Explicit parallelism skips the load scale-down so tests
// can force workers on small inputs.
func (p *Plan) effectiveWorkers() int {
	n := p.par
	if n <= 1 {
		return 1
	}
	if p.parAuto {
		if byLoad := len(p.sourceIDs) / minPartition; byLoad < n {
			n = byLoad
		}
	}
	if n > len(p.sourceIDs) {
		n = len(p.sourceIDs)
	}
	if n < 1 {
		return 1
	}
	return n
}

// executeParallel runs the plan as w scan-partitioned partitions and
// k-merges their results deterministically. The partition *count* is
// fixed at w — that is what makes the result and the reported Workers()
// deterministic — but the *goroutine* count is not: the caller's
// goroutine drains partitions off an atomic work queue, and up to w-1
// helper goroutines join only while Options.Budget grants tokens. Under
// a saturated scheduler the helpers simply don't materialize and the
// caller runs every partition itself; with a nil budget (library use)
// all w-1 helpers spawn, the original behavior. Each partition chain
// carries its own cancellation probe bound to ctx, so a deadline or
// client disconnect aborts every partition cooperatively.
func (p *Plan) executeParallel(ctx context.Context, w int) ([]algebra.Answer, error) {
	ids := p.sourceIDs
	shared := algebra.NewSharedBound()
	type workerOut struct {
		top   []algebra.Answer
		stats []algebra.OpStats
	}
	outs := make([]workerOut, w)
	var next atomic.Int64
	runPartition := func(i int) {
		lo, hi := i*len(ids)/w, (i+1)*len(ids)/w
		src := &algebra.ListScanOp{Name: p.sourceName, IDs: ids[lo:hi]}
		ops, final, m := p.buildChain(src, shared, algebra.NewCancelCheck(ctx))
		root := ops[len(ops)-1]
		root.Open()
		for {
			if _, ok := root.Next(); !ok {
				break
			}
		}
		stats := make([]algebra.OpStats, len(ops))
		for j, op := range ops {
			stats[j] = op.Stats()
		}
		outs[i] = workerOut{top: final.TopK(), stats: stats}
		// The chain is dead and TopK copied out: hand the scratch back so
		// the next partition (or the next request) skips the allocations.
		algebra.ReleaseChainScratch(ops)
		m.ReleaseScratch()
	}
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= w {
				return
			}
			runPartition(i)
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < w-1; h++ {
		if p.opts.Budget != nil && !p.opts.Budget.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.opts.Budget != nil {
				defer p.opts.Budget.Release()
			}
			drain()
		}()
	}
	drain()
	wg.Wait()
	p.lastWorkers = w
	if err := algebra.ContextErr(ctx); err != nil {
		// At least one worker may have stopped mid-partition; its top-k
		// list is not a sound summary of its partition, so the merge
		// below would be a silently truncated answer. Report the abort.
		p.parStats = nil
		return nil, err
	}

	// Position-wise stats merge: worker chains are built by the same
	// buildChain call sequence, so operator j means the same thing in
	// every worker. Counts and wall time are summed — a single worker's
	// chain would misreport the whole execution's traffic (regression:
	// TestParallelStatsAggregate).
	merged := outs[0].stats
	for _, o := range outs[1:] {
		for j := range merged {
			merged[j].In += o.stats[j].In
			merged[j].Out += o.stats[j].Out
			merged[j].Pruned += o.stats[j].Pruned
			merged[j].WallNS += o.stats[j].WallNS
		}
	}
	p.parStats = merged

	// Deterministic k-merge under the same total order as the sequential
	// final sort: rank comparison first, NodeID as tie-break. Partitions
	// are disjoint, so no deduplication is needed.
	all := make([]algebra.Answer, 0, w*p.K)
	for _, o := range outs {
		all = append(all, o.top...)
	}
	r, mode := p.ranker, p.Mode
	sort.SliceStable(all, func(i, j int) bool {
		c := r.Compare(&all[i], &all[j], mode)
		if c != 0 {
			return c > 0
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > p.K {
		all = all[:p.K]
	}
	return all, nil
}
