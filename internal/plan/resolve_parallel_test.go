package plan

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// TestResolveParallelism pins the cost model: explicit settings are
// honored (capped), auto goes sequential below the node threshold and
// wide above it, and the legacy mode (minNodes < 0) is unconditional.
func TestResolveParallelism(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range []struct {
		requested, docNodes, minNodes, want int
	}{
		{1, 1 << 20, 0, 1},                       // explicit sequential, huge doc
		{2, 100, 0, 2},                           // explicit parallel, tiny doc
		{8, 100, 0, 8},                           // explicit honored as-is
		{MaxParallelism, 100, 0, MaxParallelism}, // at the cap
		{100, 100, 0, MaxParallelism},            // above the cap: capped
		{1024, 100, 0, MaxParallelism},           // old server ceiling: capped
		{0, DefaultParallelMinNodes - 1, 0, 1},   // auto, below default threshold
		{0, DefaultParallelMinNodes, 0, 4},       // auto, at threshold -> GOMAXPROCS
		{0, 1 << 22, 0, 4},                       // auto, far above
		{0, 100, 50, 4},                          // custom threshold crossed
		{0, 100, 101, 1},                         // custom threshold not crossed
		{0, 10, -1, 4},                           // legacy: unconditional GOMAXPROCS
		{-1, 10, 0, 1},                           // negative request behaves like 0
		{0, DefaultParallelMinNodes - 1, -1, 4},  // legacy ignores doc size
	} {
		got := ResolveParallelism(tc.requested, tc.docNodes, tc.minNodes)
		if got != tc.want {
			t.Errorf("ResolveParallelism(%d, %d, %d) = %d, want %d",
				tc.requested, tc.docNodes, tc.minNodes, got, tc.want)
		}
	}
}

// TestResolveParallelismGOMAXPROCSCap: with GOMAXPROCS above the cap,
// auto resolution must not exceed MaxParallelism.
func TestResolveParallelismGOMAXPROCSCap(t *testing.T) {
	prev := runtime.GOMAXPROCS(MaxParallelism + 8)
	defer runtime.GOMAXPROCS(prev)
	if got := ResolveParallelism(0, 1<<22, 0); got != MaxParallelism {
		t.Errorf("auto at GOMAXPROCS=%d resolved to %d, want %d",
			MaxParallelism+8, got, MaxParallelism)
	}
}

// TestPlanParallelismAccessor: the plan reports its resolved
// parallelism — the value cache keys and responses surface.
func TestPlanParallelismAccessor(t *testing.T) {
	doc := xmark.GenerateSized(xmark.Config{Seed: 42}, 100*1024)
	ix := index.Build(doc, text.Pipeline{})
	q := workload.Fig5Query()
	for _, tc := range []struct {
		par, minNodes, want int
	}{
		{0, 0, 1},    // ~6K nodes, below default threshold
		{0, 1000, 0}, // tiny custom threshold: GOMAXPROCS (filled below)
		{3, 0, 3},    // explicit
	} {
		want := tc.want
		if want == 0 {
			want = ResolveParallelism(0, ix.Document().Len(), tc.minNodes)
		}
		p, err := BuildWith(ix, q, nil, 5,
			Options{Parallelism: tc.par, ParallelMinNodes: tc.minNodes})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Parallelism(); got != want {
			t.Errorf("par=%d minNodes=%d: Parallelism() = %d, want %d",
				tc.par, tc.minNodes, got, want)
		}
	}
}

// countingBudget grants at most cap tokens and records the peak held.
type countingBudget struct {
	held atomic.Int64
	peak atomic.Int64
	cap  int64
}

func (b *countingBudget) TryAcquire() bool {
	if h := b.held.Add(1); h <= b.cap {
		for {
			old := b.peak.Load()
			if h <= old || b.peak.CompareAndSwap(old, h) {
				break
			}
		}
		return true
	}
	b.held.Add(-1)
	return false
}

func (b *countingBudget) Release() { b.held.Add(-1) }

// TestParallelBudget: a budget caps helper goroutines but never changes
// the answer — even a zero budget (caller drains every partition) must
// report the full worker count and match the sequential reference.
func TestParallelBudget(t *testing.T) {
	doc := xmark.GenerateSized(xmark.Config{Seed: 42}, 300*1024)
	ix := index.Build(doc, text.Pipeline{})
	q := workload.Fig5Query()
	prof := workload.Fig5Profile(2)
	seq, err := BuildWith(ix, q, prof, 10, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Execute()
	for _, tokens := range []int64{0, 1, 16} {
		b := &countingBudget{cap: tokens}
		p, err := BuildWith(ix, q, prof, 10, Options{Parallelism: 4, Budget: b})
		if err != nil {
			t.Fatal(err)
		}
		got := p.Execute()
		if p.Workers() != 4 {
			t.Errorf("tokens=%d: Workers() = %d, want 4 (partition count is budget-independent)",
				tokens, p.Workers())
		}
		assertSameRanking(t, want, got, fmt.Sprintf("budget tokens=%d", tokens))
		if b.held.Load() != 0 {
			t.Errorf("tokens=%d: %d tokens leaked", tokens, b.held.Load())
		}
		maxHelpers := tokens
		if maxHelpers > 3 {
			maxHelpers = 3 // at most w-1 helpers for w=4
		}
		if peak := b.peak.Load(); peak > maxHelpers {
			t.Errorf("tokens=%d: peak helpers %d, want <= %d", tokens, peak, maxHelpers)
		}
	}
}

// TestAutoSequentialOnSmallDocs guards the auto default against regression:
// on a small document the resolved parallelism must be 1 even though
// GOMAXPROCS is larger — the original oversubscription bug resolved
// Parallelism 0 to GOMAXPROCS on every document.
func TestAutoSequentialOnSmallDocs(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	doc := xmark.GenerateSized(xmark.Config{Seed: 7}, 101*1024)
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//item[./description[. ftcontains "gold"]]`)
	p, err := BuildWith(ix, q, nil, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Parallelism(); got != 1 {
		t.Fatalf("auto parallelism on a %d-node doc = %d, want 1", ix.Document().Len(), got)
	}
	p.Execute()
	if got := p.Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
}
