package plan

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmark"
)

// TestParallelSharedBoundTie is a regression test for a parallel-only
// pruning bug: on this workload the global top-5 has two answers whose
// K scalars tie exactly at the k-th boundary, and the losing worker's
// intermediate prune used to drop its candidate because its
// "partial K + remaining kor-scorebound" estimate landed one ulp below
// the threshold the other worker published from fully-accumulated K
// values (same real quantity, different floating-point association).
// Concurrent executions vary the publish/prune interleaving enough to
// surface the drop; every run must still match the sequential answer.
func TestParallelSharedBoundTie(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte workload skipped in -short mode")
	}
	doc := xmark.GenerateSized(xmark.Config{Seed: 7}, 4*1024*1024)
	ix := index.Build(doc, text.Pipeline{})
	q, err := tpq.Parse(`//person(*)[.//business[. ftcontains "Yes"]]`)
	if err != nil {
		t.Fatal(err)
	}
	phrases := []string{"male", "United States", "College", "Phoenix"}
	var sb strings.Builder
	for i, ph := range phrases {
		fmt.Fprintf(&sb,
			"kor pi%d priority %d: x.tag = person & y.tag = person & ftcontains(x, %q) => x < y\n",
			i+1, i+1, ph)
	}
	sb.WriteString("vor pi5: x.tag = person & y.tag = person & x.age = 33 & y.age != 33 => x < y\n")
	sb.WriteString("rank K,V,S\n")
	prof, err := profile.ParseProfile(sb.String())
	if err != nil {
		t.Fatal(err)
	}

	seq, err := BuildWith(ix, q, prof, 5, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Execute()

	for iter := 0; iter < 6; iter++ {
		const concurrent = 6
		results := make([][]algebra.Answer, concurrent)
		var wg sync.WaitGroup
		for g := 0; g < concurrent; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				p, err := BuildWith(ix, q, prof, 5, Options{Parallelism: 2})
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = p.Execute()
			}(g)
		}
		wg.Wait()
		for g := 0; g < concurrent; g++ {
			assertSameRanking(t, want, results[g], fmt.Sprintf("iter=%d g=%d", iter, g))
		}
	}
}
