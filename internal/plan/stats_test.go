package plan

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
)

// TestParallelStatsAggregate is the regression for the parallel
// Plan.Stats contract: after a parallel Execute the per-operator
// counters must be position-wise *sums over all workers*, not one
// worker's chain. The deterministic prefix of the plan — everything
// before the first prune (scan, required, keyword joins, bonus) sees
// exactly the same answers whether the candidate list is partitioned
// or not — so those counters must match the sequential run exactly;
// downstream of the first prune only conservation invariants hold
// (shared-bound pruning is interleaving-dependent).
func TestParallelStatsAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	doc := genDealer(r, 600)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(testProfile)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)

	seq, err := BuildWith(ix, q, prof, 5, Options{Strategy: Push, Parallelism: 1, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Execute()
	seqStats := seq.Stats()

	par, err := BuildWith(ix, q, prof, 5, Options{Strategy: Push, Parallelism: 4, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	par.Execute()
	if par.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", par.Workers())
	}
	parStats := par.Stats()

	if len(seqStats) != len(parStats) {
		t.Fatalf("chain lengths differ: seq %d vs par %d", len(seqStats), len(parStats))
	}
	// Same operators in the same order.
	for i := range seqStats {
		if seqStats[i].Name != parStats[i].Name {
			t.Fatalf("op %d: name %q (par) vs %q (seq)", i, parStats[i].Name, seqStats[i].Name)
		}
	}
	// The source must have consumed every candidate exactly once across
	// partitions — a single worker's chain would report ~1/4 of this.
	nCars := ix.TagCount("car")
	if parStats[0].In != nCars || seqStats[0].In != nCars {
		t.Fatalf("scan consumed par=%d seq=%d candidates, want %d both",
			parStats[0].In, seqStats[0].In, nCars)
	}
	// Deterministic prefix: every operator before the first prune sees
	// identical traffic in both runs.
	for i := range seqStats {
		if parStats[i].Kind() == "topkPrune" {
			break
		}
		if parStats[i].In != seqStats[i].In ||
			parStats[i].Out != seqStats[i].Out ||
			parStats[i].Pruned != seqStats[i].Pruned {
			t.Errorf("op %d (%s): par {in %d out %d pruned %d} != seq {in %d out %d pruned %d}",
				i, seqStats[i].Name,
				parStats[i].In, parStats[i].Out, parStats[i].Pruned,
				seqStats[i].In, seqStats[i].Out, seqStats[i].Pruned)
		}
	}
	checkConservation(t, "seq", seqStats)
	checkConservation(t, "par", parStats)
}

// checkConservation asserts per-operator flow invariants that hold in
// any run: no operator emits or drops more answers than it consumed.
func checkConservation(t *testing.T, label string, stats []algebra.OpStats) {
	t.Helper()
	for i, s := range stats {
		if s.Out+s.Pruned > s.In {
			t.Errorf("%s op %d (%s): out %d + pruned %d > in %d",
				label, i, s.Name, s.Out, s.Pruned, s.In)
		}
	}
}

// TestTimingWallClock pins the WallNS contract: with Options.Timing the
// chain reports inclusive wall time that is positive at the source and
// non-decreasing up the chain (each operator's measurement includes its
// upstream); without it, WallNS stays zero everywhere.
func TestTimingWallClock(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	doc := genDealer(r, 400)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(testProfile)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)

	timed, err := BuildWith(ix, q, prof, 5, Options{Strategy: Push, Parallelism: 1, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	timed.Execute()
	stats := timed.Stats()
	if stats[0].WallNS <= 0 {
		t.Errorf("timed scan WallNS = %d, want > 0", stats[0].WallNS)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].WallNS < stats[i-1].WallNS {
			t.Errorf("inclusive wall time decreased at op %d (%s): %d < %d",
				i, stats[i].Name, stats[i].WallNS, stats[i-1].WallNS)
		}
	}

	bare, err := BuildWith(ix, q, prof, 5, Options{Strategy: Push, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	bare.Execute()
	for i, s := range bare.Stats() {
		if s.WallNS != 0 {
			t.Errorf("untimed op %d (%s) has WallNS %d", i, s.Name, s.WallNS)
		}
	}

	// Timing must not change answers.
	if !sameAnswers(timed.final.TopK(), bare.final.TopK()) {
		t.Error("timed and untimed executions disagree on answers")
	}
}

// TestParallelTimingAggregate: summed worker wall time is still
// non-decreasing up the chain (the invariant survives position-wise
// summation) and positive at the source.
func TestParallelTimingAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	doc := genDealer(r, 600)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(testProfile)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	p, err := BuildWith(ix, q, prof, 5, Options{Strategy: Push, Parallelism: 3, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Execute()
	if p.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", p.Workers())
	}
	stats := p.Stats()
	if stats[0].WallNS <= 0 {
		t.Errorf("merged scan WallNS = %d, want > 0", stats[0].WallNS)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].WallNS < stats[i-1].WallNS {
			t.Errorf("merged inclusive wall time decreased at op %d (%s): %d < %d",
				i, stats[i].Name, stats[i].WallNS, stats[i-1].WallNS)
		}
	}
}
