package plan

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/tpq"
	"repro/internal/twig"
)

// AccessPath selects how a plan produces distinguished-node candidates.
type AccessPath uint8

const (
	// AccessAuto picks the access path by a tag-statistics cost estimate:
	// twigjoin when the query has a required structural skeleton to
	// exploit (at least two required pattern nodes) and the total length
	// of the lists the join would stream is small relative to the number
	// of scan candidates, scan otherwise.
	AccessAuto AccessPath = iota
	// AccessScan streams the distinguished tag's index list and enforces
	// the skeleton per candidate (RequiredOp) — the paper's indexed
	// nested-loops evaluation.
	AccessScan
	// AccessTwigJoin computes the candidates set-at-a-time with the
	// holistic twig join over the positional index, pruned by the strong
	// dataguide (internal/twig); only value constraints remain for the
	// pipeline to filter.
	AccessTwigJoin
)

func (a AccessPath) String() string {
	switch a {
	case AccessAuto:
		return "auto"
	case AccessScan:
		return "scan"
	case AccessTwigJoin:
		return "twigjoin"
	}
	return "?"
}

// ParseAccessPath parses an access-path name as used by the -access
// flags and the serving API. The empty string means AccessAuto.
func ParseAccessPath(s string) (AccessPath, error) {
	switch s {
	case "", "auto":
		return AccessAuto, nil
	case "scan":
		return AccessScan, nil
	case "twigjoin", "twig":
		return AccessTwigJoin, nil
	}
	return AccessAuto, fmt.Errorf("plan: unknown access path %q (want auto, scan or twigjoin)", s)
}

// JoinStats re-exports the twigjoin access path's counters for callers
// above the plan layer (engine responses, /metrics).
type JoinStats = twig.JoinStats

// autoStreamFactor bounds the join's streaming work relative to the
// scan's candidate count: AccessAuto picks twigjoin only when the sum
// of the required skeleton's tag-list lengths is at most this many
// elements per distinguished candidate. The join touches each streamed
// element O(1) times, while the scan's matcher walks tens of arena
// nodes per candidate, so the break-even ratio is well above 1:
// measured on XMark (see BENCH_twigjoin.json) the structure-heavy
// benchmark query streams 4.3 elements per candidate and the join wins
// 2.5–3x at every document size down to a few hundred nodes, putting
// break-even near a ratio of ~13. The factor deliberately sits near
// that point: the loss near the boundary is small either way, while
// the pathological shape this gate exists for — a rare distinguished
// tag under huge descendant lists (ratio in the hundreds) — must fall
// to the scan, which only visits the few candidates.
const autoStreamFactor = 16

// resolveAccess folds the legacy TwigAccess flag into AccessPath and
// applies the auto heuristic.
func (o Options) resolveAccess(ix *index.Index, q *tpq.Query) AccessPath {
	a := o.AccessPath
	if a == AccessAuto && o.TwigAccess {
		a = AccessTwigJoin
	}
	if a != AccessAuto {
		return a
	}
	required := requiredSkeleton(q)
	skeleton, streamed := 0, 0
	for i := range q.Nodes {
		if required[i] {
			skeleton++
			streamed += ix.TagCount(q.Nodes[i].Tag)
		}
	}
	dist := ix.TagCount(q.Nodes[q.Dist].Tag)
	if skeleton >= 2 && dist > 0 && streamed <= autoStreamFactor*dist {
		return AccessTwigJoin
	}
	return AccessScan
}

// requiredSkeleton flags pattern nodes outside optional branches.
func requiredSkeleton(q *tpq.Query) []bool {
	required := make([]bool, len(q.Nodes))
	for i := range q.Nodes {
		opt := false
		for a := i; a != -1; a = q.Nodes[a].Parent {
			if q.Nodes[a].Optional {
				opt = true
				break
			}
		}
		required[i] = !opt
	}
	return required
}
