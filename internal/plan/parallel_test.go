package plan

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// TestParallelMatchesSequentialXMark is the headline equivalence check:
// on the XMark workload (Fig. 5 query and KOR profiles), forcing 2 and
// 8 workers must return the exact same ranked top-k answers — same
// nodes, same order, same scores — as the sequential reference path.
func TestParallelMatchesSequentialXMark(t *testing.T) {
	doc := xmark.GenerateSized(xmark.Config{Seed: 42}, 300*1024)
	ix := index.Build(doc, text.Pipeline{})
	q := workload.Fig5Query()
	for _, nKORs := range []int{1, 4} {
		prof := workload.Fig5Profile(nKORs)
		for _, strat := range []Strategy{Naive, Push, PushDeep, InterleaveSort} {
			for _, k := range []int{1, 5, 10, 40} {
				seq, err := BuildWith(ix, q, prof, k, Options{Strategy: strat, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				want := seq.Execute()
				for _, par := range []int{2, 8} {
					p, err := BuildWith(ix, q, prof, k, Options{Strategy: strat, Parallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					got := p.Execute()
					if p.Workers() < 2 {
						t.Fatalf("kors=%d %v k=%d par=%d: parallel path not engaged (workers=%d)",
							nKORs, strat, k, par, p.Workers())
					}
					assertSameRanking(t, want, got,
						fmt.Sprintf("kors=%d %v k=%d par=%d", nKORs, strat, k, par))
				}
			}
		}
	}
}

// assertSameRanking demands exact positional equality: node, K and S.
// Parallel execution must not even reorder ties, because both paths
// break them by NodeID.
func assertSameRanking(t *testing.T, want, got []algebra.Answer, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d answers, want %d\nwant: %s\ngot:  %s",
			ctx, len(got), len(want), describe(want), describe(got))
	}
	for i := range want {
		if want[i].Node != got[i].Node || want[i].K != got[i].K || want[i].S != got[i].S {
			t.Fatalf("%s: rank %d differs\nwant: %s\ngot:  %s",
				ctx, i, describe(want), describe(got))
		}
	}
}

// TestParallelMatchesSequentialDealer covers the V-ordered modes (VOR
// profiles make the rank order a partial order, where the shared bound
// must stay out of the way) plus the twig access path, on randomized
// documents.
func TestParallelMatchesSequentialDealer(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	profiles := []*profile.Profile{
		nil,
		profile.MustParseProfile(testProfile),
		profile.MustParseProfile(testProfile + "\nrank V,K,S"),
		profile.MustParseProfile(testProfile + "\nrank blend"),
		profile.MustParseProfile(`vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`),
	}
	queries := []*tpq.Query{
		tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`),
		tpq.MustParse(`//car[price < 2000]`),
		tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"?]]`),
	}
	for iter := 0; iter < 25; iter++ {
		doc := genDealer(r, 20+r.Intn(120))
		ix := index.Build(doc, text.Pipeline{})
		q := queries[r.Intn(len(queries))]
		prof := profiles[r.Intn(len(profiles))]
		k := 1 + r.Intn(8)
		twig := r.Intn(2) == 1
		seq, err := BuildWith(ix, q, prof, k, Options{Strategy: Push, TwigAccess: twig, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := seq.Execute()
		for _, par := range []int{2, 3, 8} {
			p, err := BuildWith(ix, q, prof, k, Options{Strategy: Push, TwigAccess: twig, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			got := p.Execute()
			if !sameAnswers(want, got) {
				t.Fatalf("iter %d par=%d twig=%v: parallel disagrees\nq: %s\nwant: %s\ngot:  %s",
					iter, par, twig, q, describe(want), describe(got))
			}
		}
	}
}

// TestParallelStatsMerge checks that merged worker stats stay coherent:
// the source operator must have consumed every candidate exactly once
// across partitions, and pruning counters must survive the merge.
func TestParallelStatsMerge(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	doc := genDealer(r, 300)
	ix := index.Build(doc, text.Pipeline{})
	prof := profile.MustParseProfile(testProfile)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	p, err := BuildWith(ix, q, prof, 5,
		Options{Strategy: Push, AccessPath: AccessScan, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Execute()
	if p.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", p.Workers())
	}
	stats := p.Stats()
	if len(stats) == 0 || stats[0].Name != "scan(car)" {
		t.Fatalf("stats = %+v", stats)
	}
	if nCars := ix.TagCount("car"); stats[0].In != nCars {
		t.Errorf("merged scan consumed %d candidates, want %d", stats[0].In, nCars)
	}
	if p.TotalPruned() <= 0 {
		t.Errorf("parallel Push plan on 300 cars should prune, got %d", p.TotalPruned())
	}
}

// TestEffectiveWorkers pins the resolution rules of the Parallelism knob.
func TestEffectiveWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	doc := genDealer(r, 30) // 30 candidates: below the auto floor
	ix := index.Build(doc, text.Pipeline{})
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	for _, tc := range []struct {
		par, want int
	}{
		{1, 1},    // explicit sequential
		{0, 1},    // auto: 30 candidates < minPartition -> sequential
		{4, 4},    // explicit parallelism is honored on small inputs
		{100, 30}, // clamped to one candidate per worker
	} {
		// The scan path knows its candidate list at Build time; the
		// twigjoin path fills it at Execute (ensureSource), where
		// effectiveWorkers resolves against the join's output instead.
		p, err := BuildWith(ix, q, nil, 3,
			Options{Strategy: Push, AccessPath: AccessScan, Parallelism: tc.par})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.effectiveWorkers(); got != tc.want {
			t.Errorf("Parallelism=%d: effectiveWorkers = %d, want %d", tc.par, got, tc.want)
		}
	}
}

// TestSharedBoundTighten checks the CAS-max semantics under concurrency:
// the bound must end at the maximum of all published values and never
// decrease along the way.
func TestSharedBoundTighten(t *testing.T) {
	b := algebra.NewSharedBound()
	if b.Load() > -1e308 {
		t.Fatalf("fresh bound = %v, want -Inf", b.Load())
	}
	b.Tighten(2)
	b.Tighten(1) // lower: ignored
	if got := b.Load(); got != 2 {
		t.Fatalf("bound = %v, want 2", got)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Tighten(float64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := b.Load(); got != 7999 {
		t.Fatalf("bound = %v, want 7999", got)
	}
}
