package twig

import (
	"context"
	"testing"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// FuzzTwigJoin drives the scan-path and twigjoin-path evaluators with a
// document and a tree pattern both decoded from the fuzz input, and
// requires byte-identical results: per-node candidate sets (two-sweep vs
// holistic stack join) and distinguished candidates (semijoin
// decomposition vs Evaluator). The decoders accept every byte string, so
// the fuzzer explores structure instead of fighting a parser.
func FuzzTwigJoin(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x80, 0x91}, []byte{0x00, 0x31, 0x42})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x07, 0x70}, []byte{0x14, 0x25})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, docBytes, qBytes []byte) {
		ix := fuzzDoc(docBytes)
		q := fuzzQuery(qBytes)
		wantCand := Candidates(ix, q)
		gotCand := HolisticCandidates(ix, q)
		if !sameIDSets(gotCand, wantCand) {
			t.Fatalf("candidates diverge: holistic %v vs two-sweep %v\nq: %s\ndoc: %s",
				gotCand, wantCand, q, ix.Document().XMLString())
		}
		want := Distinguished(ix, q)
		got, _, err := NewEvaluator(ix, q).Distinguished(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("distinguished diverge: twigjoin %v vs scan %v\nq: %s\ndoc: %s",
				got, want, q, ix.Document().XMLString())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("distinguished diverge at %d: twigjoin %v vs scan %v\nq: %s\ndoc: %s",
					i, got, want, q, ix.Document().XMLString())
			}
		}
	})
}

// fuzzDoc decodes an arbitrary byte string into a small document: each
// byte's low nibble picks a tag, the high nibble decides between opening
// a child and closing the current element.
func fuzzDoc(data []byte) *index.Index {
	tags := []string{"a", "b", "c", "d"}
	b := xmldoc.NewBuilder()
	b.Start("r")
	depth := 1
	for _, x := range data {
		if len(data) > 256 {
			break // keep fuzz cases small
		}
		if x&0x10 != 0 && depth > 1 {
			b.End()
			depth--
			continue
		}
		if depth < 8 {
			b.Start(tags[int(x&0x03)])
			depth++
		}
	}
	for ; depth > 0; depth-- {
		b.End()
	}
	return index.Build(b.MustDocument(), text.Pipeline{})
}

// fuzzQuery decodes bytes into a tree pattern: per byte, two tag bits,
// one axis bit, and parent-selection bits; the last byte picks the
// distinguished node.
func fuzzQuery(data []byte) *tpq.Query {
	tags := []string{"a", "b", "c", "d", "*", "r"}
	q := tpq.NewQuery(tags[len(data)%len(tags)], tpq.Descendant)
	for i, x := range data {
		if i >= 6 {
			break
		}
		axis := tpq.Child
		if x&0x04 != 0 {
			axis = tpq.Descendant
		}
		q.AddChild(int(x>>3)%len(q.Nodes), tags[int(x&0x03)], axis)
	}
	if len(data) > 0 {
		q.Dist = int(data[len(data)-1]) % len(q.Nodes)
	}
	return q
}
