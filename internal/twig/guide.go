// Strong-dataguide pruning for twig joins.
//
// Before a holistic join streams a single element, the query skeleton is
// matched against the index's strong dataguide (index.Dataguide): a
// path summary with one node per distinct root-to-tag path. The match
// is the same two sweeps as the element-level semijoin — bottom-up then
// top-down — but over the guide, whose size is the number of distinct
// paths (hundreds) rather than the number of elements (millions).
//
// Soundness: every embedding of the skeleton into the document projects
// to an embedding into the guide (elements map to their guide nodes,
// and parent/ancestor edges are preserved by construction). So a guide
// node that survives no guide embedding contributes no element to any
// answer, and a skeleton with an empty guide match has an empty
// document match — the short-circuit case. The guide over-approximates
// (it may admit paths that no single element realizes jointly), which
// is exactly what a pre-filter requires.
package twig

import (
	"repro/internal/index"
	"repro/internal/tpq"
)

// guideEmb is the result of matching a required skeleton against the
// dataguide: per pattern node, the set of guide nodes that can bind it.
type guideEmb struct {
	// allowed[i][gn] reports whether guide node gn can bind pattern
	// node i; nil for optional-branch nodes (never filtered).
	allowed [][]bool
	// counts[i] is the number of document elements on allowed paths —
	// the join-ordering estimate (smallest stream first).
	counts []int64
	// empty is true when some required node has no allowed guide node:
	// the skeleton embeds nowhere and the join can be skipped entirely.
	empty bool
}

// matchGuide runs the two-sweep skeleton match over the dataguide.
func matchGuide(g *index.Dataguide, q *tpq.Query) *guideEmb {
	ng := g.Len()
	n := len(q.Nodes)
	emb := &guideEmb{
		allowed: make([][]bool, n),
		counts:  make([]int64, n),
	}
	skip := make([]bool, n)
	for i := range q.Nodes {
		skip[i] = optionalBranch(q, i)
		if skip[i] {
			continue
		}
		a := make([]bool, ng)
		if tag := q.Nodes[i].Tag; tag == "*" {
			for gn := range a {
				a[gn] = true
			}
		} else {
			for _, gn := range g.NodesByTag(tag) {
				a[gn] = true
			}
		}
		emb.allowed[i] = a
	}
	// Root axis: an absolute pattern root must be the document root,
	// whose path is guide node 0 (the first path visited).
	if q.Nodes[0].Axis == tpq.Child && ng > 0 {
		rootOK := emb.allowed[0][0]
		for gn := range emb.allowed[0] {
			emb.allowed[0][gn] = false
		}
		emb.allowed[0][0] = rootOK
	}

	scratch := make([]bool, ng)
	// Bottom-up: a guide node binds p only if every required child
	// pattern node can bind below it.
	for _, p := range postorder(q) {
		if skip[p] {
			continue
		}
		for _, c := range q.Nodes[p].Children {
			if skip[c] {
				continue
			}
			ok := scratch
			for gn := range ok {
				ok[gn] = false
			}
			if q.Nodes[c].Axis == tpq.Child {
				// ok[gp] ⇔ some guide child of gp can bind c.
				for gn := 0; gn < ng; gn++ {
					if emb.allowed[c][gn] {
						if gp := g.Parent(int32(gn)); gp >= 0 {
							ok[gp] = true
						}
					}
				}
			} else {
				// ok[gp] ⇔ some proper guide descendant of gp can bind
				// c. Guide parents precede children (first-occurrence
				// preorder), so one reverse pass propagates upward.
				for gn := ng - 1; gn >= 1; gn-- {
					if emb.allowed[c][gn] || ok[gn] {
						if gp := g.Parent(int32(gn)); gp >= 0 {
							ok[gp] = true
						}
					}
				}
			}
			for gn := 0; gn < ng; gn++ {
				emb.allowed[p][gn] = emb.allowed[p][gn] && ok[gn]
			}
		}
	}
	// Top-down: a guide node binds c only if a guide parent/ancestor
	// binds c's pattern parent.
	for _, c := range q.Descendants(0) {
		if c == 0 || skip[c] {
			continue
		}
		p := q.Nodes[c].Parent
		if q.Nodes[c].Axis == tpq.Child {
			for gn := 0; gn < ng; gn++ {
				if !emb.allowed[c][gn] {
					continue
				}
				gp := g.Parent(int32(gn))
				emb.allowed[c][gn] = gp >= 0 && emb.allowed[p][gp]
			}
		} else {
			// anc[gn] ⇔ some proper guide ancestor of gn binds p; a
			// forward pass inherits the parent's verdict.
			anc := scratch
			for gn := range anc {
				anc[gn] = false
			}
			for gn := 1; gn < ng; gn++ {
				gp := g.Parent(int32(gn))
				anc[gn] = gp >= 0 && (emb.allowed[p][gp] || anc[gp])
			}
			for gn := 0; gn < ng; gn++ {
				emb.allowed[c][gn] = emb.allowed[c][gn] && anc[gn]
			}
		}
	}

	for i := range q.Nodes {
		if skip[i] {
			continue
		}
		for gn := 0; gn < ng; gn++ {
			if emb.allowed[i][gn] {
				emb.counts[i] += int64(g.Count(int32(gn)))
			}
		}
		if emb.counts[i] == 0 {
			emb.empty = true
		}
	}
	return emb
}

// minCount returns the smallest per-node element estimate of the
// match — the join-ordering key (most selective Y-pattern first).
func (e *guideEmb) minCount() int64 {
	min := int64(-1)
	for i, a := range e.allowed {
		if a == nil {
			continue
		}
		if min < 0 || e.counts[i] < min {
			min = e.counts[i]
		}
	}
	return min
}
