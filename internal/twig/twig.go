// Package twig implements a holistic structural-semijoin filter for tree
// pattern skeletons, in the family of stack-based twig join algorithms
// (Bruno et al.'s TwigStack lineage; the paper's related algorithms are
// the structural joins its plans are built from — Section 6.4 uses
// indexed nested loops, and this package provides the set-at-a-time
// alternative used as an ablation access path).
//
// Given a query, Candidates computes for every required pattern node the
// exact set of elements that participate in at least one embedding of the
// required structural skeleton (tags + axes; predicates other than
// structure are left to downstream operators, preserving the paper's
// per-predicate semijoin semantics). The computation is two linear
// semijoin sweeps over the sorted tag lists — one bottom-up, one
// top-down — which is complete for tree-shaped patterns.
package twig

import (
	"sort"

	"repro/internal/index"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// Candidates returns, per pattern node index, the sorted element IDs
// participating in some embedding of q's required structural skeleton.
// Optional branches are skipped (their slots hold nil).
func Candidates(ix *index.Index, q *tpq.Query) [][]xmldoc.NodeID {
	doc := ix.Document()
	n := len(q.Nodes)
	cand := make([][]xmldoc.NodeID, n)
	skip := make([]bool, n)
	for i := range q.Nodes {
		skip[i] = optionalBranch(q, i)
		if skip[i] {
			continue
		}
		// Tag lists are already sorted in document order.
		cand[i] = append([]xmldoc.NodeID(nil), ix.Elements(q.Nodes[i].Tag)...)
	}
	// Root axis: an absolute pattern root must be the document root.
	if q.Nodes[0].Axis == tpq.Child {
		root := doc.Root()
		keep := cand[0][:0]
		for _, e := range cand[0] {
			if e == root {
				keep = append(keep, e)
			}
		}
		cand[0] = keep
	}

	// Bottom-up: postorder — a node survives if every required child
	// subtree can embed below it.
	post := postorder(q)
	for _, p := range post {
		if skip[p] {
			continue
		}
		for _, c := range q.Nodes[p].Children {
			if skip[c] {
				continue
			}
			if q.Nodes[c].Axis == tpq.Child {
				cand[p] = keepWithChildIn(doc, cand[p], cand[c])
			} else {
				cand[p] = keepWithDescendantIn(doc, cand[p], cand[c])
			}
		}
	}
	// Top-down: preorder — a node survives if some surviving parent
	// binding sits above it.
	pre := q.Descendants(0)
	for _, c := range pre {
		if c == 0 || skip[c] {
			continue
		}
		p := q.Nodes[c].Parent
		if q.Nodes[c].Axis == tpq.Child {
			cand[c] = keepWithParentIn(doc, cand[c], cand[p])
		} else {
			cand[c] = keepWithAncestorIn(doc, cand[c], cand[p])
		}
	}
	return cand
}

// Distinguished returns the distinguished-node candidates under the
// engine's per-predicate semijoin semantics (each structural obligation
// is enforced independently, as in the paper's plans): the query is
// decomposed into one "Y-pattern" per required leaf — the root→dist
// chain plus the root→leaf chain sharing their prefix — and the
// per-pattern candidate lists are intersected. Within a Y-pattern the
// conjunctive two-sweep coincides with the matcher's navigation, so the
// result equals scan + MatchRequired exactly.
//
// (Candidates, by contrast, is fully conjunctive: an interior node with
// several children must have one element satisfying all of them — a
// stronger semantics, exposed for callers that want classical twig
// matching.)
func Distinguished(ix *index.Index, q *tpq.Query) []xmldoc.NodeID {
	leaves := requiredLeaves(q)
	var result []xmldoc.NodeID
	first := true
	for _, leaf := range leaves {
		y, yDist := yPattern(q, leaf)
		cands := Candidates(ix, y)[yDist]
		if first {
			result = cands
			first = false
		} else {
			result = intersectSorted(result, cands)
		}
		if len(result) == 0 {
			return nil
		}
	}
	if first { // defensive: dist itself is always a required leaf holder
		return Candidates(ix, q)[q.Dist]
	}
	return result
}

// requiredLeaves returns the required pattern nodes with no required
// children (the distinguished node's own chain is covered by whichever
// leaf lies at or below it; if dist has no required descendants it is a
// leaf itself).
func requiredLeaves(q *tpq.Query) []int {
	var out []int
	for i := range q.Nodes {
		if optionalBranch(q, i) {
			continue
		}
		hasReqChild := false
		for _, c := range q.Nodes[i].Children {
			if !optionalBranch(q, c) {
				hasReqChild = true
				break
			}
		}
		if !hasReqChild {
			out = append(out, i)
		}
	}
	return out
}

// yPattern builds the sub-pattern consisting of the root→dist and
// root→leaf chains of q (sharing their common prefix) and returns it
// with the new index of the distinguished node.
func yPattern(q *tpq.Query, leaf int) (*tpq.Query, int) {
	distAnc := q.Ancestors(q.Dist)
	leafAnc := q.Ancestors(leaf)
	include := map[int]bool{}
	for _, n := range distAnc {
		include[n] = true
	}
	for _, n := range leafAnc {
		include[n] = true
	}
	// Rebuild in preorder so parents precede children.
	remap := map[int]int{}
	var y *tpq.Query
	for _, n := range q.Descendants(0) {
		if !include[n] {
			continue
		}
		src := q.Nodes[n]
		if y == nil {
			y = tpq.NewQuery(src.Tag, src.Axis)
			remap[n] = 0
			continue
		}
		remap[n] = y.AddChild(remap[src.Parent], src.Tag, src.Axis)
	}
	y.Dist = remap[q.Dist]
	return y, y.Dist
}

// intersectSorted intersects two ascending NodeID lists.
func intersectSorted(a, b []xmldoc.NodeID) []xmldoc.NodeID {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// optionalBranch reports whether pattern node i lies on an optional
// branch (which never filters).
func optionalBranch(q *tpq.Query, i int) bool {
	for n := i; n != -1; n = q.Nodes[n].Parent {
		if q.Nodes[n].Optional {
			return true
		}
	}
	return false
}

func postorder(q *tpq.Query) []int {
	var out []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range q.Nodes[i].Children {
			rec(c)
		}
		out = append(out, i)
	}
	rec(0)
	return out
}

// keepWithDescendantIn keeps parents having at least one proper
// descendant in ds. Both lists are sorted by Start; for each parent a
// binary search finds the first potential descendant.
func keepWithDescendantIn(doc *xmldoc.Document, ps, ds []xmldoc.NodeID) []xmldoc.NodeID {
	if len(ds) == 0 {
		return nil
	}
	out := ps[:0]
	for _, p := range ps {
		node := doc.Node(p)
		i := sort.Search(len(ds), func(i int) bool { return ds[i] > p })
		if i < len(ds) && doc.Node(ds[i]).Start <= node.End {
			out = append(out, p)
		}
	}
	return out
}

// keepWithChildIn keeps parents having a direct child in cs. It marks
// the parents of cs (sorted, deduplicated) and intersects.
func keepWithChildIn(doc *xmldoc.Document, ps, cs []xmldoc.NodeID) []xmldoc.NodeID {
	if len(cs) == 0 {
		return nil
	}
	parents := make([]xmldoc.NodeID, 0, len(cs))
	for _, c := range cs {
		parents = append(parents, doc.Parent(c))
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	out := ps[:0]
	for _, p := range ps {
		i := sort.Search(len(parents), func(i int) bool { return parents[i] >= p })
		if i < len(parents) && parents[i] == p {
			out = append(out, p)
		}
	}
	return out
}

// keepWithParentIn keeps children whose parent is in ps (sorted).
func keepWithParentIn(doc *xmldoc.Document, cs, ps []xmldoc.NodeID) []xmldoc.NodeID {
	out := cs[:0]
	for _, c := range cs {
		p := doc.Parent(c)
		if p == xmldoc.InvalidNode {
			continue
		}
		i := sort.Search(len(ps), func(i int) bool { return ps[i] >= p })
		if i < len(ps) && ps[i] == p {
			out = append(out, c)
		}
	}
	return out
}

// keepWithAncestorIn keeps descendants having a proper ancestor in as,
// via a single merge with a stack of active ancestor intervals.
func keepWithAncestorIn(doc *xmldoc.Document, ds, as []xmldoc.NodeID) []xmldoc.NodeID {
	if len(as) == 0 {
		return nil
	}
	out := ds[:0]
	var stack []int32 // End positions of active ancestors
	ai := 0
	for _, d := range ds {
		dn := doc.Node(d)
		// Push ancestors starting before d.
		for ai < len(as) && as[ai] < d {
			an := doc.Node(as[ai])
			// Pop finished intervals first.
			for len(stack) > 0 && stack[len(stack)-1] < an.Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, an.End)
			ai++
		}
		// Pop ancestors that end before d starts.
		for len(stack) > 0 && stack[len(stack)-1] < dn.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			out = append(out, d)
		}
	}
	return out
}
