// Package twig implements holistic structural joins for tree pattern
// skeletons, in the family of stack-based twig join algorithms
// (Bruno et al.'s TwigStack lineage; the paper's related algorithms are
// the structural joins its plans are built from — Section 6.4 uses
// indexed nested loops, and this package provides the set-at-a-time
// alternative used as an access path).
//
// Given a query, Candidates computes for every required pattern node the
// exact set of elements that participate in at least one embedding of the
// required structural skeleton (tags + axes; predicates other than
// structure are left to downstream operators, preserving the paper's
// per-predicate semijoin semantics). Two implementations produce the
// same sets: the two-sweep semijoin below (one bottom-up, one top-down
// pass over the sorted tag lists — complete for tree-shaped patterns)
// and the stack-based merge join in holistic.go, which streams every
// tag list exactly once. Evaluator combines the holistic join with
// strong-dataguide pruning (guide.go) into the plan layer's twigjoin
// access path.
//
// All structural predicates run on the document's flat (pre, post,
// level) positional arrays (xmldoc.Positions): an ancestor test is one
// interval comparison, a parent test adds a level comparison.
package twig

import (
	"sort"

	"repro/internal/index"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// Candidates returns, per pattern node index, the sorted element IDs
// participating in some embedding of q's required structural skeleton.
// Optional branches are skipped (their slots hold nil).
//
// The returned slices are filtered copy-on-write: a slot whose list was
// never narrowed aliases the index's shared tag list. Callers must
// treat every slot as read-only.
func Candidates(ix *index.Index, q *tpq.Query) [][]xmldoc.NodeID {
	cand, _ := candidatesOwned(ix, q)
	return cand
}

// candidatesOwned is Candidates plus per-slot ownership: owned[i]
// reports whether cand[i] is private to the caller (false means it
// aliases the index's tag list and must not be mutated).
func candidatesOwned(ix *index.Index, q *tpq.Query) (cand [][]xmldoc.NodeID, owned []bool) {
	doc := ix.Document()
	pos := doc.Pos()
	n := len(q.Nodes)
	cand = make([][]xmldoc.NodeID, n)
	owned = make([]bool, n)
	skip := make([]bool, n)
	for i := range q.Nodes {
		skip[i] = optionalBranch(q, i)
		if skip[i] {
			continue
		}
		// Tag lists are already sorted in document order. Lazy filtering
		// below copies only when an element is actually removed.
		cand[i] = ix.Elements(q.Nodes[i].Tag)
	}
	// Root axis: an absolute pattern root must be the document root.
	if q.Nodes[0].Axis == tpq.Child {
		root := doc.Root()
		cand[0], owned[0] = filterCOW(cand[0], owned[0], func(e xmldoc.NodeID) bool {
			return e == root
		})
	}

	// Bottom-up: postorder — a node survives if every required child
	// subtree can embed below it.
	post := postorder(q)
	for _, p := range post {
		if skip[p] {
			continue
		}
		for _, c := range q.Nodes[p].Children {
			if skip[c] {
				continue
			}
			if q.Nodes[c].Axis == tpq.Child {
				cand[p], owned[p] = keepWithChildIn(doc, pos, cand[p], owned[p], cand[c])
			} else {
				cand[p], owned[p] = keepWithDescendantIn(pos, cand[p], owned[p], cand[c])
			}
		}
	}
	// Top-down: preorder — a node survives if some surviving parent
	// binding sits above it.
	pre := q.Descendants(0)
	for _, c := range pre {
		if c == 0 || skip[c] {
			continue
		}
		p := q.Nodes[c].Parent
		if q.Nodes[c].Axis == tpq.Child {
			cand[c], owned[c] = keepWithParentIn(doc, cand[c], owned[c], cand[p])
		} else {
			cand[c], owned[c] = keepWithAncestorIn(pos, cand[c], owned[c], cand[p])
		}
	}
	return cand, owned
}

// Distinguished returns the distinguished-node candidates under the
// engine's per-predicate semijoin semantics (each structural obligation
// is enforced independently, as in the paper's plans): the query is
// decomposed into one "Y-pattern" per required leaf — the root→dist
// chain plus the root→leaf chain sharing their prefix — and the
// per-pattern candidate lists are intersected. Within a Y-pattern the
// conjunctive two-sweep coincides with the matcher's navigation, so the
// result equals scan + MatchRequired exactly.
//
// (Candidates, by contrast, is fully conjunctive: an interior node with
// several children must have one element satisfying all of them — a
// stronger semantics, exposed for callers that want classical twig
// matching.)
func Distinguished(ix *index.Index, q *tpq.Query) []xmldoc.NodeID {
	leaves := requiredLeaves(q)
	var result []xmldoc.NodeID
	resultOwned := false
	first := true
	for _, leaf := range leaves {
		y, yDist, _ := yPattern(q, leaf)
		cands, owned := candidatesOwned(ix, y)
		if first {
			result, resultOwned = cands[yDist], owned[yDist]
			first = false
		} else {
			result, resultOwned = intersectSorted(result, resultOwned, cands[yDist])
		}
		if len(result) == 0 {
			return nil
		}
	}
	if first { // defensive: dist itself is always a required leaf holder
		return Candidates(ix, q)[q.Dist]
	}
	_ = resultOwned
	return result
}

// requiredLeaves returns the required pattern nodes with no required
// children (the distinguished node's own chain is covered by whichever
// leaf lies at or below it; if dist has no required descendants it is a
// leaf itself).
func requiredLeaves(q *tpq.Query) []int {
	var out []int
	for i := range q.Nodes {
		if optionalBranch(q, i) {
			continue
		}
		hasReqChild := false
		for _, c := range q.Nodes[i].Children {
			if !optionalBranch(q, c) {
				hasReqChild = true
				break
			}
		}
		if !hasReqChild {
			out = append(out, i)
		}
	}
	return out
}

// yPattern builds the sub-pattern consisting of the root→dist and
// root→leaf chains of q (sharing their common prefix) and returns it
// with the new index of the distinguished node, plus the node remap
// (remap[full] = index in the Y-pattern, -1 for nodes outside it).
func yPattern(q *tpq.Query, leaf int) (*tpq.Query, int, []int) {
	distAnc := q.Ancestors(q.Dist)
	leafAnc := q.Ancestors(leaf)
	include := map[int]bool{}
	for _, n := range distAnc {
		include[n] = true
	}
	for _, n := range leafAnc {
		include[n] = true
	}
	// Rebuild in preorder so parents precede children.
	remap := make([]int, len(q.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	var y *tpq.Query
	for _, n := range q.Descendants(0) {
		if !include[n] {
			continue
		}
		src := q.Nodes[n]
		if y == nil {
			y = tpq.NewQuery(src.Tag, src.Axis)
			remap[n] = 0
			continue
		}
		remap[n] = y.AddChild(remap[src.Parent], src.Tag, src.Axis)
	}
	y.Dist = remap[q.Dist]
	return y, y.Dist, remap
}

// filterCOW filters xs with keep (called once per element, in document
// order) without copying until the first removal: the unfiltered
// prefix — or the whole list, when nothing is removed — continues to
// alias the input. It returns the filtered list and whether the caller
// now owns its backing array (a shared input that loses no element
// stays shared).
func filterCOW(xs []xmldoc.NodeID, owned bool, keep func(xmldoc.NodeID) bool) ([]xmldoc.NodeID, bool) {
	for i, x := range xs {
		if keep(x) {
			continue
		}
		// First removal: materialize the kept prefix, then filter the rest.
		var out []xmldoc.NodeID
		if owned {
			out = xs[:i]
		} else {
			out = make([]xmldoc.NodeID, i, len(xs)-1)
			copy(out, xs[:i])
		}
		for _, y := range xs[i+1:] {
			if keep(y) {
				out = append(out, y)
			}
		}
		return out, true
	}
	return xs, owned
}

// intersectSorted intersects two ascending NodeID lists, reusing a's
// backing array only when the caller owns it.
func intersectSorted(a []xmldoc.NodeID, aOwned bool, b []xmldoc.NodeID) ([]xmldoc.NodeID, bool) {
	var out []xmldoc.NodeID
	if aOwned {
		out = a[:0]
	} else {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		out = make([]xmldoc.NodeID, 0, n)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out, true
}

// optionalBranch reports whether pattern node i lies on an optional
// branch (which never filters).
func optionalBranch(q *tpq.Query, i int) bool {
	for n := i; n != -1; n = q.Nodes[n].Parent {
		if q.Nodes[n].Optional {
			return true
		}
	}
	return false
}

func postorder(q *tpq.Query) []int {
	var out []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range q.Nodes[i].Children {
			rec(c)
		}
		out = append(out, i)
	}
	rec(0)
	return out
}

// keepWithDescendantIn keeps parents having at least one proper
// descendant in ds. Both lists are sorted by pre, so a single merge
// pointer replaces per-parent binary searches; the test itself is one
// interval comparison on the flat positional arrays.
func keepWithDescendantIn(pos xmldoc.Positions, ps []xmldoc.NodeID, owned bool, ds []xmldoc.NodeID) ([]xmldoc.NodeID, bool) {
	if len(ds) == 0 {
		return nil, true
	}
	di := 0
	return filterCOW(ps, owned, func(p xmldoc.NodeID) bool {
		for di < len(ds) && ds[di] <= p {
			di++
		}
		return di < len(ds) && int32(ds[di]) <= pos.Post[p]
	})
}

// keepWithChildIn keeps parents having a direct child in cs: the
// parents of cs (one O(1) pointer each) are sorted and merged against
// ps.
func keepWithChildIn(doc *xmldoc.Document, pos xmldoc.Positions, ps []xmldoc.NodeID, owned bool, cs []xmldoc.NodeID) ([]xmldoc.NodeID, bool) {
	if len(cs) == 0 {
		return nil, true
	}
	parents := make([]xmldoc.NodeID, 0, len(cs))
	for _, c := range cs {
		parents = append(parents, doc.Parent(c))
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	pi := 0
	return filterCOW(ps, owned, func(p xmldoc.NodeID) bool {
		for pi < len(parents) && parents[pi] < p {
			pi++
		}
		return pi < len(parents) && parents[pi] == p
	})
}

// keepWithParentIn keeps children whose parent is in ps (sorted).
func keepWithParentIn(doc *xmldoc.Document, cs []xmldoc.NodeID, owned bool, ps []xmldoc.NodeID) ([]xmldoc.NodeID, bool) {
	if len(ps) == 0 {
		return nil, true
	}
	return filterCOW(cs, owned, func(c xmldoc.NodeID) bool {
		p := doc.Parent(c)
		if p == xmldoc.InvalidNode {
			return false
		}
		i := sort.Search(len(ps), func(i int) bool { return ps[i] >= p })
		return i < len(ps) && ps[i] == p
	})
}

// keepWithAncestorIn keeps descendants having a proper ancestor in as,
// via a single merge with a stack of active ancestor intervals over the
// flat positional arrays.
func keepWithAncestorIn(pos xmldoc.Positions, ds []xmldoc.NodeID, owned bool, as []xmldoc.NodeID) ([]xmldoc.NodeID, bool) {
	if len(as) == 0 {
		return nil, true
	}
	var stack []int32 // post positions of active ancestors
	ai := 0
	return filterCOW(ds, owned, func(d xmldoc.NodeID) bool {
		// Push ancestors starting before d.
		for ai < len(as) && as[ai] < d {
			aPost := pos.Post[as[ai]]
			// Pop finished intervals first.
			for len(stack) > 0 && stack[len(stack)-1] < int32(as[ai]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, aPost)
			ai++
		}
		// Pop ancestors that end before d starts.
		for len(stack) > 0 && stack[len(stack)-1] < int32(d) {
			stack = stack[:len(stack)-1]
		}
		return len(stack) > 0
	})
}
