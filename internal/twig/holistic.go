// Holistic stack-based twig join.
//
// holisticCandidates computes the same per-pattern-node candidate sets
// as the two-sweep Candidates, but streams every per-tag sorted element
// list exactly once per pass — no per-level list copies and no repeated
// intersection allocations. It is a TwigStack-style merge join run
// twice:
//
// Pass 1 (bottom-up survival): all required streams are merged in
// document (pre) order. Each pattern node keeps a stack of open
// elements; the stack invariant — every entry is a proper ancestor of
// the one above it — holds because an arrival with pre past an entry's
// post closes (pops) that entry first. Entries are popped innermost
// first (increasing post across all stacks). An entry survives when
// every required child obligation was satisfied below it, tracked as
// two bitmasks: `down` for descendant-axis children (propagated to the
// next outer entry of the same stack on pop — a surviving descendant of
// an inner entry is also a descendant of every outer one) and `child`
// for child-axis children (level-exact, never propagated). A surviving
// pop notifies the innermost open ancestor on its parent pattern node's
// stack; nesting guarantees that ancestor is the stack top (or the
// entry below it, when the top is the same element streamed under two
// pattern nodes — wildcard tags).
//
// Pass 2 (top-down): the bottom-up survivors are merged again in pre
// order; an element is emitted iff an emitted binding of its pattern
// parent is open above it (descendant axis: any open entry; child axis:
// the top entry exactly one level up). Emitted elements cascade by
// being the only ones pushed.
//
// Per-join scratch (stacks, stream cursors, survivor bitsets) is
// recycled through a sync.Pool, mirroring the Matcher's reused
// navigation buffers.
package twig

import (
	"sync"

	"repro/internal/index"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// JoinStats counts what one twigjoin access-path evaluation did; the
// serving layer exports them as pimento_twigjoin_* counters.
type JoinStats struct {
	// Leaves is the number of Y-pattern joins the query decomposed into.
	Leaves int
	// GuideShortCircuit is true when the dataguide proved the skeleton
	// embeds nowhere and no join ran at all.
	GuideShortCircuit bool
	// GuidePruned counts elements the dataguide removed from join
	// streams (their root path cannot participate in any embedding).
	GuidePruned int
	// StackPushes counts pass-1 stack pushes (elements that entered the
	// holistic merge after guide pruning).
	StackPushes int
	// Emitted counts candidate elements emitted by pass 2 across all
	// pattern nodes.
	Emitted int
}

// stkEntry is one open element on a pattern node's join stack.
type stkEntry struct {
	elem  xmldoc.NodeID
	post  int32
	level int32
	idx   int32  // position in the pattern node's tag stream
	down  uint64 // satisfied descendant-axis child obligations
	child uint64 // satisfied child-axis child obligations
}

// maskChildren caps the required children of one pattern node the
// bitmask survival tracking supports; wider nodes (never seen in
// practice) fall back to the two-sweep join.
const maskChildren = 64

// stopCheckEvery is how many merge steps pass between cooperative
// cancellation probes.
const stopCheckEvery = 4096

// joiner is the pooled per-join scratch state.
type joiner struct {
	stacks  [][]stkEntry
	streams [][]xmldoc.NodeID
	allowed [][]bool // per node: guide-admissible elements (nil = all)
	surv    [][]uint64
	vals    [][]uint64 // per chain node: final leaf masks (fused join)
	heads   []int
	parentQ []int
	axisD   []bool // true = descendant axis to the pattern parent
	bit     []uint64
	reqMask []uint64
	depth   []int32
}

var joinerPool = sync.Pool{New: func() any { return new(joiner) }}

// maskable reports whether every pattern node has few enough required
// children for bitmask survival tracking.
func maskable(q *tpq.Query) bool {
	for i := range q.Nodes {
		req := 0
		for _, c := range q.Nodes[i].Children {
			if !optionalBranch(q, c) {
				req++
			}
		}
		if req > maskChildren {
			return false
		}
	}
	return true
}

// HolisticCandidates is Candidates computed by the holistic stack join
// (with dataguide pruning); the two produce identical sets for every
// tree pattern — the differential and fuzz suites pin this.
func HolisticCandidates(ix *index.Index, q *tpq.Query) [][]xmldoc.NodeID {
	var emb *guideEmb
	if g := ix.Guide(); g != nil {
		emb = matchGuide(g, q)
	}
	cand, _, _ := holisticCandidates(ix, q, emb, &JoinStats{}, nil)
	return cand
}

// holisticCandidates runs the two-pass stack join. It returns the
// per-node candidate lists plus per-slot ownership (the fallback path
// can alias index tag lists). stop, when non-nil, is polled
// periodically; a true return aborts with errStopped.
func holisticCandidates(ix *index.Index, q *tpq.Query, emb *guideEmb, stats *JoinStats, stop func() bool) ([][]xmldoc.NodeID, []bool, error) {
	n := len(q.Nodes)
	if emb != nil && emb.empty {
		stats.GuideShortCircuit = true
		return make([][]xmldoc.NodeID, n), make([]bool, n), nil
	}
	if !maskable(q) {
		cand, owned := candidatesOwned(ix, q)
		return cand, owned, nil
	}
	doc := ix.Document()
	pos := doc.Pos()
	var guide *index.Dataguide
	if emb != nil {
		guide = ix.Guide()
	}

	j := joinerPool.Get().(*joiner)
	defer j.release()
	j.reset(n)

	// Per-node metadata: parent, axis, survival masks, query depth.
	for i := 0; i < n; i++ {
		j.parentQ[i] = q.Nodes[i].Parent
		j.axisD[i] = q.Nodes[i].Axis == tpq.Descendant
		if i > 0 {
			j.depth[i] = j.depth[q.Nodes[i].Parent] + 1
		}
	}
	for i := 0; i < n; i++ {
		if optionalBranch(q, i) {
			continue
		}
		j.streams[i] = ix.Elements(q.Nodes[i].Tag)
		if emb != nil {
			j.allowed[i] = emb.allowed[i]
		}
		var mask uint64
		bit := uint64(1)
		for _, c := range q.Nodes[i].Children {
			if optionalBranch(q, c) {
				continue
			}
			j.bit[c] = bit
			mask |= bit
			bit <<= 1
		}
		j.reqMask[i] = mask
	}
	rootOnly := xmldoc.InvalidNode
	if q.Nodes[0].Axis == tpq.Child {
		rootOnly = doc.Root()
	}

	// advance skips stream elements the guide (or the root axis) rules
	// out, so pruned elements never enter the merge.
	advance := func(i int) {
		s := j.streams[i]
		for j.heads[i] < len(s) {
			e := s[j.heads[i]]
			if i == 0 && rootOnly != xmldoc.InvalidNode && e != rootOnly {
				j.heads[i]++
				continue
			}
			if a := j.allowed[i]; a != nil && !a[guide.ElemGuide(e)] {
				j.heads[i]++
				stats.GuidePruned++
				continue
			}
			return
		}
	}
	for i := range j.streams {
		if j.streams[i] != nil {
			j.surv[i] = growBitset(j.surv[i], len(j.streams[i]))
			j.heads[i] = 0
			advance(i)
		}
	}

	// popOne pops the globally innermost open entry (minimum post; the
	// per-stack tops hold each stack's minimum because entries nest).
	// Returns false when every open entry starts at or after threshold.
	// Survival evaluation and parent notification run only while
	// recording (pass 1); pass 2 pops purely to maintain the stacks.
	recording := true
	popOne := func(threshold int32, all bool) bool {
		t := -1
		var minPost int32
		var minElem xmldoc.NodeID
		for i := range j.stacks {
			if m := len(j.stacks[i]); m > 0 {
				top := &j.stacks[i][m-1]
				// Equal posts mean nested entries (both subtrees end at
				// the same node); the larger pre is the innermost and
				// must pop first so its survival notification reaches
				// the outer entries while they are still open.
				if t < 0 || top.post < minPost ||
					(top.post == minPost && top.elem > minElem) {
					t, minPost, minElem = i, top.post, top.elem
				}
			}
		}
		if t < 0 || (!all && minPost >= threshold) {
			return false
		}
		m := len(j.stacks[t]) - 1
		e := j.stacks[t][m]
		j.stacks[t] = j.stacks[t][:m]
		if recording && (e.down|e.child)&j.reqMask[t] == j.reqMask[t] {
			j.surv[t][e.idx>>6] |= 1 << uint(e.idx&63)
			if t != 0 {
				ps := j.stacks[j.parentQ[t]]
				k := len(ps) - 1
				// Proper ancestor / parent required: skip the top when
				// it is the same element streamed under a wildcard
				// pattern node (it can never be its own ancestor).
				if k >= 0 && ps[k].elem == e.elem {
					k--
				}
				if j.axisD[t] {
					if k >= 0 {
						ps[k].down |= j.bit[t]
					}
				} else if k >= 0 && ps[k].level == e.level-1 {
					ps[k].child |= j.bit[t]
				}
			}
		}
		// Lazy propagation: obligations satisfied below e are satisfied
		// below every outer ancestor on the same stack.
		if m > 0 {
			j.stacks[t][m-1].down |= e.down
		}
		return true
	}

	// Pass 1: merge all streams by pre, push every admitted element,
	// decide survival at pop time.
	steps := 0
	for {
		if steps++; stop != nil && steps%stopCheckEvery == 0 && stop() {
			return nil, nil, errStopped
		}
		s := -1
		var best xmldoc.NodeID
		for i := range j.streams {
			if j.streams[i] == nil || j.heads[i] >= len(j.streams[i]) {
				continue
			}
			if e := j.streams[i][j.heads[i]]; s < 0 || e < best {
				s, best = i, e
			}
		}
		if s < 0 {
			break
		}
		for popOne(int32(best), false) {
		}
		j.stacks[s] = append(j.stacks[s], stkEntry{
			elem:  best,
			post:  pos.Post[best],
			level: pos.Level[best],
			idx:   int32(j.heads[s]),
		})
		stats.StackPushes++
		j.heads[s]++
		advance(s)
	}
	for popOne(0, true) {
	}

	// Pass 2: merge the survivors by pre (parents before children on
	// same-element ties); emit and push only elements with an emitted
	// parent binding open above them.
	recording = false
	out := make([][]xmldoc.NodeID, n)
	owned := make([]bool, n)
	for i := range j.streams {
		if j.streams[i] != nil {
			owned[i] = true
			j.heads[i] = 0
		}
	}
	advSurv := func(i int) {
		s := j.streams[i]
		for j.heads[i] < len(s) {
			h := j.heads[i]
			if j.surv[i][h>>6]&(1<<uint(h&63)) != 0 {
				return
			}
			j.heads[i]++
		}
	}
	for i := range j.streams {
		if j.streams[i] != nil {
			advSurv(i)
		}
	}
	for {
		if steps++; stop != nil && steps%stopCheckEvery == 0 && stop() {
			return nil, nil, errStopped
		}
		s := -1
		var best xmldoc.NodeID
		for i := range j.streams {
			if j.streams[i] == nil || j.heads[i] >= len(j.streams[i]) {
				continue
			}
			e := j.streams[i][j.heads[i]]
			if s < 0 || e < best || (e == best && j.depth[i] < j.depth[s]) {
				s, best = i, e
			}
		}
		if s < 0 {
			break
		}
		for popOne(int32(best), false) {
		}
		keep := s == 0
		if !keep {
			ps := j.stacks[j.parentQ[s]]
			k := len(ps)
			// Same-element wildcard guard, as in pass 1: the element's
			// own entry on the parent stack is not an ancestor.
			if k > 0 && ps[k-1].elem == best {
				k--
			}
			if j.axisD[s] {
				keep = k > 0
			} else {
				keep = k > 0 && ps[k-1].level == pos.Level[best]-1
			}
		}
		if keep {
			out[s] = append(out[s], best)
			j.stacks[s] = append(j.stacks[s], stkEntry{
				elem:  best,
				post:  pos.Post[best],
				level: pos.Level[best],
			})
			stats.Emitted++
		}
		j.heads[s]++
		advSurv(s)
	}
	return out, owned, nil
}

// maskLeaves caps the required leaves the fused join's per-leaf bitmask
// supports; wider queries fall back to the per-Y-pattern join loop.
const maskLeaves = 64

// fusedQuery is the Evaluator's precomputed metadata for the fused
// per-leaf join: one bit per required leaf, per-node leaf masks, and
// the union of the per-Y-pattern dataguide matches.
type fusedQuery struct {
	full     uint64   // all required-leaf bits
	leafMask []uint64 // per node: leaf bits inside its required subtree
	selfBit  []uint64 // per node: its own leaf bit (0 for interior nodes)
	isLeaf   []bool   // no required children
	onChain  []bool   // on the root→dist chain
	allowed  [][]bool // per node: union of per-Y guide-allowed sets (nil = all)
}

// holisticDistinguished computes the distinguished-node candidates of q
// under the per-predicate semijoin semantics in one two-pass stack join
// over the full pattern, instead of one join per Y-pattern — every
// per-tag element list streams exactly once per pass.
//
// The difference from holisticCandidates is the bit space. There, a bit
// is one required child edge and an entry must cover all of them before
// it notifies its parent (conjunctive semantics). Here a bit is one
// required LEAF and every accumulated bit propagates upward
// unconditionally, so bits(e@t) reads "some axis-consistent element
// chain below e reaches leaf l", for each l independently — the
// Y-pattern decomposition evaluated simultaneously, with each leaf free
// to pick its own chain. Leaf streams never push at all: a leaf
// delivers its own bit to the open parent entry at arrival (its
// ancestors are exactly the entries still open after the pop loop, and
// a leaf has nothing to accumulate).
//
// Pass 2 re-merges only the root→dist chain nodes: leaf-branch nodes
// influence the answer solely through the bits they left behind in
// pass 1. Each emitted chain entry carries a mask K — "for which
// leaves does some ancestor chain with the required bits reach this
// element" — computed top-down as K(e) = parentK & (bits(e) |
// ^leafMask[node]); a dist element is an answer iff its K covers every
// leaf. Entries reuse stkEntry's mask fields: down holds K, child holds
// the running union of K over the open entries at and below it (the
// descendant-axis parent lookup is then one load from the stack top).
func holisticDistinguished(ix *index.Index, q *tpq.Query, f *fusedQuery, stats *JoinStats, stop func() bool) ([]xmldoc.NodeID, error) {
	n := len(q.Nodes)
	doc := ix.Document()
	pos := doc.Pos()
	var guide *index.Dataguide
	if f.allowed != nil {
		guide = ix.Guide()
	}

	j := joinerPool.Get().(*joiner)
	defer j.release()
	j.reset(n)

	dist := q.Dist
	for i := 0; i < n; i++ {
		j.parentQ[i] = q.Nodes[i].Parent
		j.axisD[i] = q.Nodes[i].Axis == tpq.Descendant
	}
	for i := 0; i < n; i++ {
		if optionalBranch(q, i) {
			continue
		}
		j.streams[i] = ix.Elements(q.Nodes[i].Tag)
		if f.allowed != nil {
			j.allowed[i] = f.allowed[i]
		}
	}
	rootOnly := xmldoc.InvalidNode
	if q.Nodes[0].Axis == tpq.Child {
		rootOnly = doc.Root()
	}
	advance := func(i int) {
		s := j.streams[i]
		for j.heads[i] < len(s) {
			e := s[j.heads[i]]
			if i == 0 && rootOnly != xmldoc.InvalidNode && e != rootOnly {
				j.heads[i]++
				continue
			}
			if a := j.allowed[i]; a != nil && !a[guide.ElemGuide(e)] {
				j.heads[i]++
				stats.GuidePruned++
				continue
			}
			return
		}
	}
	for i := range j.streams {
		if j.streams[i] == nil {
			continue
		}
		j.heads[i] = 0
		advance(i)
		if f.onChain[i] {
			j.surv[i] = growBitset(j.surv[i], len(j.streams[i]))
			if i != dist {
				// Final bit masks, read back in pass 2. Only positions whose
				// surv bit is set are ever read, so no zeroing is needed.
				j.vals[i] = growVals(j.vals[i], len(j.streams[i]))
			}
		}
	}

	// notify delivers the leaf bits reachable through an element at
	// pattern node t to the innermost open entry on t's parent stack,
	// skipping the element's own entry when a wildcard streams it under
	// both nodes; a child-axis hop requires the exact level.
	notify := func(t int, elem xmldoc.NodeID, level int32, bits uint64) {
		ps := j.stacks[j.parentQ[t]]
		k := len(ps) - 1
		if k >= 0 && ps[k].elem == elem {
			k--
		}
		if j.axisD[t] {
			if k >= 0 {
				ps[k].down |= bits
			}
		} else if k >= 0 && ps[k].level == level-1 {
			ps[k].child |= bits
		}
	}

	// popOne pops the globally innermost open entry (as in
	// holisticCandidates: minimum post; larger pre first on post ties so
	// inner notifications land while the outer entries are open). Every
	// pop records chain survival and propagates its accumulated bits —
	// upward to the parent node's innermost open entry, and outward to
	// the next entry of its own stack (descendant-axis bits only: a
	// chain below an inner entry is below every outer one, but a
	// child-axis hop is level-exact).
	//
	// minOpen caches the smallest open post so the common case — the
	// next arrival closes nothing — is one comparison instead of a scan
	// over every stack; pushes lower it, failed pop scans refresh it.
	const noOpen = int32(1<<31 - 1)
	minOpen := noOpen
	popOne := func(threshold int32, all bool) bool {
		t := -1
		var minPost int32
		var minElem xmldoc.NodeID
		for i := range j.stacks {
			if m := len(j.stacks[i]); m > 0 {
				top := &j.stacks[i][m-1]
				if t < 0 || top.post < minPost ||
					(top.post == minPost && top.elem > minElem) {
					t, minPost, minElem = i, top.post, top.elem
				}
			}
		}
		if t < 0 {
			minOpen = noOpen
			return false
		}
		if !all && minPost >= threshold {
			minOpen = minPost
			return false
		}
		m := len(j.stacks[t]) - 1
		e := j.stacks[t][m]
		j.stacks[t] = j.stacks[t][:m]
		below := e.down | e.child
		if f.onChain[t] {
			if t == dist {
				// A dist element must cover every leaf below dist itself;
				// leaves hanging off the chain above are pass 2's job.
				if below&f.leafMask[t] == f.leafMask[t] {
					j.surv[t][e.idx>>6] |= 1 << uint(e.idx&63)
				}
			} else {
				// Interior chain nodes stay useful with partial bits: the
				// pass-2 mask algebra lets every leaf pick its own chain.
				j.vals[t][e.idx] = below
				if below != 0 || f.leafMask[t] != f.full {
					j.surv[t][e.idx>>6] |= 1 << uint(e.idx&63)
				}
			}
		}
		if t != 0 && below != 0 {
			notify(t, e.elem, e.level, below)
		}
		if m > 0 {
			j.stacks[t][m-1].down |= e.down
		}
		return true
	}

	// Pass 1: merge all streams by pre (ties resolved toward the lower
	// pattern-node index, which is always the parent). Interior elements
	// push and accumulate; leaf elements deliver their bit at arrival.
	steps := 0
	for {
		if steps++; stop != nil && steps%stopCheckEvery == 0 && stop() {
			return nil, errStopped
		}
		s := -1
		var best xmldoc.NodeID
		for i := range j.streams {
			if j.streams[i] == nil || j.heads[i] >= len(j.streams[i]) {
				continue
			}
			if e := j.streams[i][j.heads[i]]; s < 0 || e < best {
				s, best = i, e
			}
		}
		if s < 0 {
			break
		}
		if minOpen < int32(best) {
			for popOne(int32(best), false) {
			}
		}
		if f.isLeaf[s] {
			if s != 0 {
				notify(s, best, pos.Level[best], f.selfBit[s])
			}
			if s == dist {
				// A leaf dist node has no downward obligations of its own.
				h := j.heads[s]
				j.surv[s][h>>6] |= 1 << uint(h&63)
			}
		} else {
			post := pos.Post[best]
			j.stacks[s] = append(j.stacks[s], stkEntry{
				elem:  best,
				post:  post,
				level: pos.Level[best],
				idx:   int32(j.heads[s]),
			})
			if post < minOpen {
				minOpen = post
			}
			stats.StackPushes++
		}
		j.heads[s]++
		advance(s)
	}
	for popOne(0, true) {
	}

	if dist == 0 {
		// The dist node is the pattern root: no chain hangs above it, so
		// the pass-1 survivors are the answer.
		var out []xmldoc.NodeID
		for h, s0 := 0, j.streams[0]; h < len(s0); h++ {
			if w := j.surv[0][h>>6]; w == 0 {
				h |= 63 // skip the rest of an empty word
			} else if w&(1<<uint(h&63)) != 0 {
				out = append(out, s0[h])
			}
		}
		stats.Emitted += len(out)
		return out, nil
	}

	// Pass 2: top-down over the chain survivors. Pops need no recording
	// or ordering here — entries just expire.
	popTo := func(threshold int32) {
		for i := range j.stacks {
			st := j.stacks[i]
			m := len(st)
			for m > 0 && st[m-1].post < threshold {
				m--
			}
			j.stacks[i] = st[:m]
		}
	}
	advSurv := func(i int) {
		s := j.streams[i]
		for j.heads[i] < len(s) {
			h := j.heads[i]
			if j.surv[i][h>>6]&(1<<uint(h&63)) != 0 {
				return
			}
			j.heads[i]++
		}
	}
	for i := range j.streams {
		if j.streams[i] != nil && f.onChain[i] {
			j.heads[i] = 0
			advSurv(i)
		}
	}
	var out []xmldoc.NodeID
	for {
		if steps++; stop != nil && steps%stopCheckEvery == 0 && stop() {
			return nil, errStopped
		}
		s := -1
		var best xmldoc.NodeID
		for i := range j.streams {
			if j.streams[i] == nil || !f.onChain[i] || j.heads[i] >= len(j.streams[i]) {
				continue
			}
			// Chain node indices ascend root→dist, so the strict < keeps
			// parents before children on same-element (wildcard) ties.
			if e := j.streams[i][j.heads[i]]; s < 0 || e < best {
				s, best = i, e
			}
		}
		if s < 0 {
			break
		}
		popTo(int32(best))
		var cand uint64
		if s == 0 {
			cand = f.full
		} else {
			ps := j.stacks[j.parentQ[s]]
			k := len(ps)
			// Same-element wildcard guard, as in pass 1.
			if k > 0 && ps[k-1].elem == best {
				k--
			}
			if j.axisD[s] {
				if k > 0 {
					cand = ps[k-1].child // union of K over the open ancestors
				}
			} else if k > 0 && ps[k-1].level == pos.Level[best]-1 {
				cand = ps[k-1].down // K of the exact-level parent
			}
		}
		if s == dist {
			// Survival already pinned the leaves below dist, so the
			// element's K reduces to cand (see the survival cases above).
			if cand == f.full {
				out = append(out, best)
			}
		} else if cand != 0 {
			h := j.heads[s]
			k := cand & (j.vals[s][h] | ^f.leafMask[s])
			if k != 0 {
				acc := k
				if m := len(j.stacks[s]); m > 0 {
					acc |= j.stacks[s][m-1].child
				}
				j.stacks[s] = append(j.stacks[s], stkEntry{
					elem:  best,
					post:  pos.Post[best],
					level: pos.Level[best],
					down:  k,
					child: acc,
				})
			}
		}
		j.heads[s]++
		advSurv(s)
	}
	stats.Emitted += len(out)
	return out, nil
}

// reset prepares the pooled scratch for a join over n pattern nodes.
func (j *joiner) reset(n int) {
	j.stacks = growSlices(j.stacks, n)
	j.surv = growSlices(j.surv, n)
	j.vals = growSlices(j.vals, n)
	for i := range j.stacks {
		j.stacks[i] = j.stacks[i][:0]
	}
	j.streams = growSlices(j.streams, n)
	j.allowed = growSlices(j.allowed, n)
	for i := 0; i < n; i++ {
		j.streams[i], j.allowed[i] = nil, nil
	}
	j.heads = growInts(j.heads, n)
	j.parentQ = growInts(j.parentQ, n)
	j.axisD = growBools(j.axisD, n)
	j.bit = growU64(j.bit, n)
	j.reqMask = growU64(j.reqMask, n)
	j.depth = growI32(j.depth, n)
	for i := 0; i < n; i++ {
		j.heads[i], j.bit[i], j.reqMask[i], j.depth[i] = 0, 0, 0, 0
		j.axisD[i] = false
	}
}

// release drops references into the index (tag streams, guide masks) so
// pooling the scratch never pins a document, then returns it.
func (j *joiner) release() {
	for i := range j.streams {
		j.streams[i], j.allowed[i] = nil, nil
	}
	joinerPool.Put(j)
}

func growSlices[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		return make([][]T, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growVals returns a mask array able to index n elements. Contents are
// deliberately left stale: the fused join only reads positions whose
// survivor bit was set, and those are always written first.
func growVals(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// growBitset returns a zeroed bitset able to index bits elements.
func growBitset(b []uint64, bits int) []uint64 {
	words := (bits + 63) / 64
	if cap(b) < words {
		return make([]uint64, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}
