package twig

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// sameIDSets reports per-slot equality, treating nil and empty as equal.
func sameIDSets(a, b [][]xmldoc.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestHolisticAgreesWithCandidates: the stack join must produce exactly
// the two-sweep's per-pattern-node candidate sets on random documents
// and patterns — the tentpole differential.
func TestHolisticAgreesWithCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 1500; iter++ {
		ix := randomDoc(r)
		q := randomStructuralQuery(r)
		want := Candidates(ix, q)
		got := HolisticCandidates(ix, q)
		if !sameIDSets(got, want) {
			t.Fatalf("iter %d: holistic %v vs two-sweep %v\nq: %s\ndoc: %s",
				iter, got, want, q, ix.Document().XMLString())
		}
	}
}

// TestEvaluatorAgreesWithDistinguished: the twigjoin access path's
// Y-pattern decomposition must reproduce the scan path's semijoin
// semantics element for element.
func TestEvaluatorAgreesWithDistinguished(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 1500; iter++ {
		ix := randomDoc(r)
		q := randomStructuralQuery(r)
		want := Distinguished(ix, q)
		got, _, err := NewEvaluator(ix, q).Distinguished(context.Background())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: twigjoin %v vs scan %v\nq: %s\ndoc: %s",
				iter, got, want, q, ix.Document().XMLString())
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("iter %d: twigjoin %v vs scan %v\nq: %s\ndoc: %s",
					iter, got, want, q, ix.Document().XMLString())
			}
		}
	}
}

// TestGuideShortCircuit: tags that all exist but never along a common
// path must be rejected by the dataguide alone — no stream is opened and
// no element is pushed.
func TestGuideShortCircuit(t *testing.T) {
	ix := buildDoc(t, `<a><b>x</b><c>y</c></a>`)
	q := tpq.MustParse(`//b[./c]`)
	ev := NewEvaluator(ix, q)
	got, stats, err := ev.Distinguished(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("candidates = %v, want none", got)
	}
	if !stats.GuideShortCircuit {
		t.Fatalf("stats = %+v: the guide must short-circuit this query", stats)
	}
	if stats.StackPushes != 0 || stats.Emitted != 0 {
		t.Fatalf("stats = %+v: a short-circuited join must not stream", stats)
	}
	// Sanity: the scan path agrees the answer is empty.
	if d := Distinguished(ix, q); len(d) != 0 {
		t.Fatalf("scan path disagrees: %v", d)
	}
}

// TestGuidePruneCounts: elements of the right tag on non-embedding
// paths are skipped before entering the merge.
func TestGuidePruneCounts(t *testing.T) {
	// Two c populations: under b (matches //b//c) and under d (pruned).
	ix := buildDoc(t, `<a><b><c/><c/></b><d><c/><c/><c/></d></a>`)
	ev := NewEvaluator(ix, tpq.MustParse(`//b//c`))
	got, stats, err := ev.Distinguished(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want the 2 c under b", got)
	}
	if stats.GuidePruned < 3 {
		t.Fatalf("stats = %+v: the 3 c under d must be guide-pruned", stats)
	}
}

// TestEvaluatorCancellation: a cancelled context aborts the join with
// the context's error.
func TestEvaluatorCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ix := randomDoc(r)
	ev := NewEvaluator(ix, tpq.MustParse(`//a//b`))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ev.Distinguished(ctx); err != nil && err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	// Note: tiny documents may finish between cancellation probes; the
	// contract is only that a returned error is the context's.
}

// TestEvaluatorConcurrent: one Evaluator must serve concurrent
// Distinguished calls (the plan layer shares it across Executes).
func TestEvaluatorConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	ix := randomDoc(r)
	q := tpq.MustParse(`//a[./b]//c`)
	ev := NewEvaluator(ix, q)
	want, _, err := ev.Distinguished(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				got, _, err := ev.Distinguished(context.Background())
				if err != nil {
					done <- err
					return
				}
				if len(got) != len(want) {
					t.Errorf("concurrent run diverged: %v vs %v", got, want)
					done <- nil
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
