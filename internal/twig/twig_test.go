package twig

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

func buildDoc(t testing.TB, src string) *index.Index {
	t.Helper()
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(doc, text.Pipeline{})
}

func TestDistinguishedBasic(t *testing.T) {
	ix := buildDoc(t, `
<site>
  <people>
    <person><profile><business>Yes</business></profile></person>
    <person><name>no profile</name></person>
    <person><profile><gender>male</gender></profile></person>
  </people>
</site>`)
	q := tpq.MustParse(`//person(*)[.//business]`)
	got := Distinguished(ix, q)
	if len(got) != 1 {
		t.Fatalf("candidates = %v", got)
	}
	if ix.Document().Tag(got[0]) != "person" {
		t.Errorf("wrong tag")
	}
}

func TestPCvsAD(t *testing.T) {
	ix := buildDoc(t, `<a><b><c/></b><c/></a>`)
	// pc: only the direct c child of a.
	pc := Distinguished(ix, tpq.MustParse(`//a/c`))
	if len(pc) != 1 {
		t.Fatalf("pc candidates = %v", pc)
	}
	// ad: both c elements.
	ad := Distinguished(ix, tpq.MustParse(`//a//c`))
	if len(ad) != 2 {
		t.Fatalf("ad candidates = %v", ad)
	}
}

func TestAbsoluteRoot(t *testing.T) {
	ix := buildDoc(t, `<a><a><b/></a></a>`)
	abs := Distinguished(ix, tpq.MustParse(`/a/a`))
	if len(abs) != 1 {
		t.Fatalf("abs = %v", abs)
	}
	rel := Candidates(ix, tpq.MustParse(`//a`))
	if len(rel[0]) != 2 {
		t.Fatalf("rel = %v", rel[0])
	}
}

func TestOptionalBranchesIgnored(t *testing.T) {
	ix := buildDoc(t, `<a><b/></a>`)
	q := tpq.MustParse(`//a[./b and ./missing?]`)
	got := Distinguished(ix, q)
	if len(got) != 1 {
		t.Fatalf("optional branch must not filter: %v", got)
	}
}

func TestWildcardCandidates(t *testing.T) {
	ix := buildDoc(t, `<a><b><c/></b><d/></a>`)
	got := Distinguished(ix, tpq.MustParse(`//a//*`))
	if len(got) != 3 { // b, c, d (a is the required ancestor)
		t.Fatalf("wildcard candidates = %v", got)
	}
	got = Distinguished(ix, tpq.MustParse(`//a/*[./c]`))
	if len(got) != 1 || ix.Document().Tag(got[0]) != "b" {
		t.Fatalf("constrained wildcard = %v", got)
	}
}

func TestEmptyWhenTagMissing(t *testing.T) {
	ix := buildDoc(t, `<a><b/></a>`)
	if got := Distinguished(ix, tpq.MustParse(`//a[./zzz]`)); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Distinguished(ix, tpq.MustParse(`//zzz`)); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// randomStructuralQuery builds a predicate-free pattern over small tags
// (including the wildcard).
func randomStructuralQuery(r *rand.Rand) *tpq.Query {
	tags := []string{"a", "b", "c", "d", "*"}
	axis := func() tpq.Axis {
		if r.Intn(2) == 0 {
			return tpq.Child
		}
		return tpq.Descendant
	}
	q := tpq.NewQuery(tags[r.Intn(len(tags))], tpq.Descendant)
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		parent := r.Intn(len(q.Nodes))
		q.AddChild(parent, tags[r.Intn(len(tags))], axis())
	}
	q.Dist = r.Intn(len(q.Nodes))
	return q
}

func randomDoc(r *rand.Rand) *index.Index {
	tags := []string{"a", "b", "c", "d"}
	b := xmldoc.NewBuilder()
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		used := 1
		b.Start(tags[r.Intn(len(tags))])
		for used < budget && depth < 5 && r.Intn(3) != 0 {
			used += build(depth+1, budget-used)
		}
		b.End()
		return used
	}
	build(0, 2+r.Intn(50))
	return index.Build(b.MustDocument(), text.Pipeline{})
}

// TestPropertyAgreesWithMatcher: the twig filter must accept exactly the
// elements the per-candidate matcher accepts, over random documents and
// structural patterns.
func TestPropertyAgreesWithMatcher(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for iter := 0; iter < 800; iter++ {
		ix := randomDoc(r)
		q := randomStructuralQuery(r)
		m := algebra.NewMatcher(ix, q)
		want := map[xmldoc.NodeID]bool{}
		for _, e := range ix.Elements(q.Nodes[q.Dist].Tag) {
			if m.MatchRequired(e) {
				want[e] = true
			}
		}
		got := Distinguished(ix, q)
		if len(got) != len(want) {
			t.Fatalf("iter %d: twig %d vs matcher %d\nq: %s\ndoc: %s\ntwig: %v",
				iter, len(got), len(want), q, ix.Document().XMLString(), got)
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("iter %d: twig accepted %d, matcher rejects\nq: %s\ndoc: %s",
					iter, e, q, ix.Document().XMLString())
			}
		}
		// Sorted output.
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("iter %d: candidates not sorted: %v", iter, got)
			}
		}
	}
}

func BenchmarkTwigVsMatcher(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d"}
	bl := xmldoc.NewBuilder()
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		used := 1
		bl.Start(tags[r.Intn(len(tags))])
		for used < budget && depth < 8 && r.Intn(3) != 0 {
			used += build(depth+1, budget-used)
		}
		bl.End()
		return used
	}
	bl.Start("root")
	for used := 0; used < 20000; {
		used += build(1, 20000-used)
	}
	bl.End()
	ix := index.Build(bl.MustDocument(), text.Pipeline{})
	q := tpq.MustParse(`//a[./b and .//c]//d`)

	b.Run("twig", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Distinguished(ix, q)
		}
	})
	b.Run("matcher", func(b *testing.B) {
		b.ReportAllocs()
		m := algebra.NewMatcher(ix, q)
		for i := 0; i < b.N; i++ {
			for _, e := range ix.Elements("d") {
				m.MatchRequired(e)
			}
		}
	})
}
