package twig

import (
	"context"
	"errors"
	"sort"

	"repro/internal/index"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// errStopped is the internal abort signal of a cancelled join; the
// Evaluator maps it back to the context's error.
var errStopped = errors.New("twig: join stopped")

// Evaluator is the twigjoin access path for one (index, query) pair:
// the query's required-leaf decomposition (requiredLeaves, the
// Y-patterns) and each Y-pattern's dataguide match are computed once at
// construction and reused across executions — a plan that re-runs its
// join per Execute pays only for the streaming passes.
//
// Queries with at most maskLeaves required leaves run as ONE fused
// holistic join over the full pattern (holisticDistinguished): all
// Y-patterns evaluate simultaneously with one bit per leaf, so shared
// prefix streams — typically the biggest tag lists — are merged once
// instead of once per branch. Wider queries fall back to one holistic
// join per Y-pattern; there the guide's element counts order the
// branches smallest-first so the candidate intersection shrinks (and
// can empty-exit) as early as possible.
//
// An Evaluator is immutable after construction and safe for concurrent
// Distinguished calls.
type Evaluator struct {
	ix    *index.Index
	q     *tpq.Query
	ys    []yJoin
	fused *fusedQuery // non-nil: fused per-leaf join applies
	empty bool        // some Y-pattern has no guide embedding
}

// yJoin is one memoized Y-pattern join branch.
type yJoin struct {
	q    *tpq.Query
	dist int
	emb  *guideEmb
	est  int64 // guide element estimate; join-ordering key
}

// NewEvaluator decomposes q and matches each Y-pattern against the
// index's dataguide.
func NewEvaluator(ix *index.Index, q *tpq.Query) *Evaluator {
	e := &Evaluator{ix: ix, q: q}
	g := ix.Guide()
	leaves := requiredLeaves(q)
	remaps := make([][]int, 0, len(leaves))
	for _, leaf := range leaves {
		y, yDist, remap := yPattern(q, leaf)
		yj := yJoin{q: y, dist: yDist, est: int64(ix.TagCount(y.Nodes[yDist].Tag))}
		if g != nil {
			yj.emb = matchGuide(g, y)
			if yj.emb.empty {
				e.empty = true
			}
			yj.est = yj.emb.minCount()
		}
		e.ys = append(e.ys, yj)
		remaps = append(remaps, remap)
	}
	if !e.empty && len(leaves) > 0 && len(leaves) <= maskLeaves &&
		!optionalBranch(q, q.Dist) {
		e.fused = buildFused(q, leaves, e.ys, remaps, g)
	}
	sort.SliceStable(e.ys, func(i, j int) bool { return e.ys[i].est < e.ys[j].est })
	return e
}

// buildFused assembles the fused join's per-leaf metadata; remaps runs
// parallel to ys (one Y-pattern per leaf, pre-sort).
func buildFused(q *tpq.Query, leaves []int, ys []yJoin, remaps [][]int, g *index.Dataguide) *fusedQuery {
	n := len(q.Nodes)
	f := &fusedQuery{
		leafMask: make([]uint64, n),
		selfBit:  make([]uint64, n),
		isLeaf:   make([]bool, n),
		onChain:  make([]bool, n),
	}
	for bi, leaf := range leaves {
		bit := uint64(1) << uint(bi)
		f.full |= bit
		f.selfBit[leaf] = bit
		f.isLeaf[leaf] = true
		for t := leaf; t != -1; t = q.Nodes[t].Parent {
			f.leafMask[t] |= bit
		}
	}
	for t := q.Dist; t != -1; t = q.Nodes[t].Parent {
		f.onChain[t] = true
	}
	if g != nil {
		// Per-node stream pruning: the union of the per-Y guide matches.
		// Sound because a node shared by several Y-patterns may bind an
		// element for any one of them, and the bits an element contributes
		// in the join always correspond to real element chains — a
		// union-admitted element can never manufacture an answer.
		f.allowed = make([][]bool, n)
		for t := 0; t < n; t++ {
			if optionalBranch(q, t) {
				continue
			}
			a := make([]bool, g.Len())
			for yi := range ys {
				if yt := remaps[yi][t]; yt >= 0 {
					for gn, ok := range ys[yi].emb.allowed[yt] {
						if ok {
							a[gn] = true
						}
					}
				}
			}
			f.allowed[t] = a
		}
	}
	return f
}

// Distinguished computes the distinguished-node candidates with the
// holistic stack join, under the same per-predicate semijoin semantics
// as the package-level Distinguished (the two are byte-identical; the
// differential suite pins it). It returns the join's statistics and
// aborts cooperatively when ctx is cancelled.
func (e *Evaluator) Distinguished(ctx context.Context) ([]xmldoc.NodeID, JoinStats, error) {
	stats := JoinStats{Leaves: len(e.ys)}
	if e.empty {
		// The dataguide proved the skeleton embeds nowhere: no join runs.
		stats.GuideShortCircuit = true
		return nil, stats, nil
	}
	var stop func() bool
	if ctx != nil && ctx.Done() != nil {
		stop = func() bool { return ctx.Err() != nil }
	}
	if e.fused != nil {
		ids, err := holisticDistinguished(e.ix, e.q, e.fused, &stats, stop)
		if err != nil {
			if errors.Is(err, errStopped) && ctx.Err() != nil {
				return nil, stats, ctx.Err()
			}
			return nil, stats, err
		}
		return ids, stats, nil
	}
	var result []xmldoc.NodeID
	resultOwned := false
	for i, yj := range e.ys {
		cand, owned, err := holisticCandidates(e.ix, yj.q, yj.emb, &stats, stop)
		if err != nil {
			if errors.Is(err, errStopped) && ctx.Err() != nil {
				return nil, stats, ctx.Err()
			}
			return nil, stats, err
		}
		if i == 0 {
			result, resultOwned = cand[yj.dist], owned[yj.dist]
		} else {
			result, resultOwned = intersectSorted(result, resultOwned, cand[yj.dist])
		}
		if len(result) == 0 {
			return nil, stats, nil
		}
	}
	if len(e.ys) == 0 { // defensive: dist is always a required leaf holder
		return Distinguished(e.ix, e.q), stats, nil
	}
	if !resultOwned {
		// Callers (the plan's list scan, parallel partitioning) treat the
		// candidate list as theirs; never leak the index's backing array.
		result = append([]xmldoc.NodeID(nil), result...)
	}
	return result, stats, nil
}
