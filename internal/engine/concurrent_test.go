package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// TestConcurrentSearches hammers one shared Engine (and thus one shared
// Index) with overlapping searches from many goroutines. Run under
// -race it verifies the index's copy-on-write caches and the parallel
// executor's shared state; functionally it verifies every goroutine
// gets exactly the answers a lone caller would, whatever interleaving
// the scheduler picks.
func TestConcurrentSearches(t *testing.T) {
	doc := xmark.GenerateSized(xmark.Config{Seed: 7}, 200*1024)
	e := New(doc, text.Pipeline{})

	type call struct {
		q    *tpq.Query
		prof *profile.Profile
		par  int
	}
	// A mix of phrase probes, structural queries and profiles so the
	// goroutines populate disjoint and overlapping cache keys, with
	// every parallelism mode in flight at once.
	calls := []call{
		{workload.Fig5Query(), workload.Fig5Profile(1), 1},
		{workload.Fig5Query(), workload.Fig5Profile(4), 0},
		{workload.Fig5Query(), workload.Fig5Profile(2), 3},
		{tpq.MustParse(`//person[.//emailaddress]`), nil, 2},
		{tpq.MustParse(`//item[./description[. ftcontains "gold"]]`), nil, 4},
		{tpq.MustParse(`//person(*)[. ftcontains "United States"]`), workload.Fig5Profile(3), 2},
	}

	// Sequential reference responses, computed before any concurrency.
	want := make([][]Result, len(calls))
	for i, c := range calls {
		resp, err := e.Search(Request{Query: c.q, Profile: c.prof, K: 8, Parallelism: 1})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want[i] = resp.Results
	}

	const goroutines = 16
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(calls)
				c := calls[i]
				resp, err := e.Search(Request{Query: c.q, Profile: c.prof, K: 8, Parallelism: c.par})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if !reflect.DeepEqual(resp.Results, want[i]) {
					errs <- fmt.Errorf("goroutine %d round %d call %d (par=%d): results diverge\nwant %v\ngot  %v",
						g, r, i, c.par, want[i], resp.Results)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
