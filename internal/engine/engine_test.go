package engine

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// fig1XML recreates the car-sale database of Fig. 1.
const fig1XML = `
<dealer>
  <car>
    <description>I am selling my 2001 car at the best bid. It is in good condition
      as I was the only driver. I used it to go to work in NYC.</description>
    <date>2001</date>
    <price>500</price>
    <horsepower>150</horsepower>
    <owner>John Smith</owner>
    <color>red</color>
  </car>
  <car>
    <description>Powerful car. Low mileage. Bought on 11/2005. Eager seller.
      goodcar@yahoo.com</description>
    <horsepower>200</horsepower>
    <description>good condition overall</description>
    <mileage>50000</mileage>
    <price>500</price>
    <location>NYC</location>
    <color>blue</color>
  </car>
  <car>
    <description>american classic in good condition and low mileage</description>
    <price>1800</price>
    <mileage>30000</mileage>
    <color>green</color>
    <horsepower>180</horsepower>
  </car>
</dealer>`

const fig2Rules = `
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2 priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3 priority 3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S
`

const paperQ = `//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`

func newEngine(t *testing.T) *Engine {
	t.Helper()
	doc, err := xmldoc.ParseString(fig1XML)
	if err != nil {
		t.Fatal(err)
	}
	return New(doc, text.Pipeline{})
}

func TestSearchWithoutProfile(t *testing.T) {
	e := newEngine(t)
	resp, err := e.Search(Request{Query: tpq.MustParse(paperQ), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Cars 2 and 3 satisfy both phrases and the price bound; car 1 lacks
	// "low mileage".
	if len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
}

// TestSearchP1DisablesP2P3 checks the Section 5.1 conflict semantics end
// to end: with p1 at the highest priority, p1 fires first and removes
// "good condition", making p2 and p3 inapplicable.
func TestSearchP1DisablesP2P3(t *testing.T) {
	e := newEngine(t)
	prof := profile.MustParseProfile(fig2Rules)
	resp, err := e.Search(Request{Query: tpq.MustParse(paperQ), Profile: prof, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AppliedSRs) != 1 || resp.AppliedSRs[0] != "p1" {
		t.Fatalf("applied = %v, want [p1] (p1 disables p2 and p3)", resp.AppliedSRs)
	}
	// "low mileage" remains required: still 2 cars.
	if len(resp.Results) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
}

// plan1Rules is the Section 6.2 scenario: "For ease of exposition, we
// consider two SRs, p2 and p3" plus the ordering rules.
const plan1Rules = `
sr p2 priority 1: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3 priority 2: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S
`

func TestSearchWithProfileBroadens(t *testing.T) {
	e := newEngine(t)
	prof := profile.MustParseProfile(plan1Rules)
	resp, err := e.Search(Request{Query: tpq.MustParse(paperQ), Profile: prof, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AppliedSRs) != 2 {
		t.Fatalf("applied = %v, want p2 and p3", resp.AppliedSRs)
	}
	// p3's outer-join makes "low mileage" optional and p2 adds an
	// optional "american" — Plan 1's behaviour: all three cars qualify,
	// american/low-mileage cars score higher.
	if len(resp.Results) != 3 {
		t.Fatalf("personalization should broaden to 3 cars: %+v", resp.Results)
	}
	// KORs dominate the ranking: car 1 contains both "best bid" and
	// "NYC" and must come first.
	if !strings.Contains(resp.Results[0].Snippet, "best bid") {
		t.Errorf("KOR-preferred car must rank first: %+v", resp.Results)
	}
	if resp.Results[0].K <= resp.Results[1].K {
		t.Errorf("K order broken: %+v", resp.Results)
	}
	if resp.EncodedQuery == nil || resp.PlanShape == "" {
		t.Errorf("response metadata missing")
	}
}

func TestSearchRejectsAmbiguousProfile(t *testing.T) {
	e := newEngine(t)
	prof := profile.MustParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	_, err := e.Search(Request{Query: tpq.MustParse(paperQ), Profile: prof})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous profile must be rejected, got %v", err)
	}
	// With priorities it goes through.
	prof.VORs[0].Priority = 2
	prof.VORs[1].Priority = 1
	if _, err := e.Search(Request{Query: tpq.MustParse(paperQ), Profile: prof}); err != nil {
		t.Fatalf("prioritized profile must work: %v", err)
	}
}

func TestStrategiesProduceSameResults(t *testing.T) {
	e := newEngine(t)
	prof := profile.MustParseProfile(fig2Rules)
	q := tpq.MustParse(paperQ)
	var base []Result
	for i, strat := range []plan.Strategy{plan.Naive, plan.InterleaveNoSort, plan.InterleaveSort, plan.Push} {
		resp, err := e.Search(Request{Query: q, Profile: prof, K: 3, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = resp.Results
			continue
		}
		if len(resp.Results) != len(base) {
			t.Fatalf("%v: %d results vs %d", strat, len(resp.Results), len(base))
		}
		for j := range base {
			if resp.Results[j].Node != base[j].Node {
				t.Errorf("%v: rank %d differs: %v vs %v", strat, j,
					resp.Results[j].Node, base[j].Node)
			}
		}
	}
}

func TestLiteralFlockBroadensToo(t *testing.T) {
	e := newEngine(t)
	prof := profile.MustParseProfile(fig2Rules)
	resp, err := e.Search(Request{
		Query: tpq.MustParse(paperQ), Profile: prof, K: 5, LiteralRewrite: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) < 2 {
		t.Fatalf("literal flock should also broaden: %+v", resp.Results)
	}
	if !strings.Contains(resp.PlanShape, "flock") {
		t.Errorf("PlanShape = %q", resp.PlanShape)
	}
}

func TestAnalyzeProfile(t *testing.T) {
	prof := profile.MustParseProfile(fig2Rules)
	pa := AnalyzeProfile(prof, tpq.MustParse(paperQ))
	if pa.ConflictErr != nil {
		t.Fatalf("prioritized rules must not error: %v", pa.ConflictErr)
	}
	if len(pa.Flock) < 2 {
		t.Errorf("flock = %d queries", len(pa.Flock))
	}
	if pa.Ambiguity.Ambiguous {
		t.Errorf("prioritized VORs must be unambiguous")
	}
	if len(pa.Applied) == 0 {
		t.Errorf("no rules applied")
	}
}

func TestSearchValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Search(Request{}); err == nil {
		t.Errorf("nil query must fail")
	}
}

func TestFromXML(t *testing.T) {
	e, err := FromXML(strings.NewReader(fig1XML), text.DefaultPipeline)
	if err != nil {
		t.Fatal(err)
	}
	// Stemming on: "conditions" would match too; basic smoke check.
	resp, err := e.Search(Request{Query: tpq.MustParse(`//car[. ftcontains "good condition"]`), K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Errorf("all cars mention good condition: %+v", resp.Results)
	}

	if _, err := FromXML(strings.NewReader("<broken"), text.DefaultPipeline); err == nil {
		t.Errorf("broken XML must fail")
	}
}

func TestSnippetTruncation(t *testing.T) {
	long := strings.Repeat("word ", 50)
	s := snippet(long, 40)
	if len(s) > 45 {
		t.Errorf("snippet too long: %q", s)
	}
	if !strings.HasSuffix(s, "…") {
		t.Errorf("no ellipsis: %q", s)
	}
	if got := snippet("short", 40); got != "short" {
		t.Errorf("short text mangled: %q", got)
	}
}

func TestResultPaths(t *testing.T) {
	e := newEngine(t)
	resp, err := e.Search(Request{Query: tpq.MustParse(`//car[color = "red"]`), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Path != "/dealer/car" {
		t.Errorf("results = %+v", resp.Results)
	}
}
