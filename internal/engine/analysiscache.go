// Memoized profile/query analysis. The Section 5 analyses and the vet
// suite are pure functions of the profile (and query), so a warm server
// should never pay for re-analysis on the request path: verdicts are
// cached under the profile fingerprint (plus the canonical query string
// for query-scoped work), single-flight like the result cache, and the
// stored artifacts (encoded query, applied-rule list, diagnostics) are
// shared copy-on-write — every consumer treats them as immutable.
//
// Unlike the serving layer's ResultCache, analysis *errors* are cached
// inside the verdict values: an ambiguous profile is deterministically
// ambiguous, so recomputing the rejection per request would defeat the
// cache. The only error do() itself can return is the caller's context
// expiring while a fill is in flight.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/profile"
	"repro/internal/tpq"
)

// ProfileFingerprint hashes a profile's canonical serialization; equal
// fingerprints mean the profiles analyze (and rank) identically. The
// fingerprint is document-independent, so one AnalysisCache serves every
// engine in a registry.
func ProfileFingerprint(p *profile.Profile) string {
	sum := sha256.Sum256([]byte(CanonicalProfile(p)))
	return hex.EncodeToString(sum[:8])
}

// ProfileVerdict is the cached outcome of the profile-scoped analyses:
// the vet diagnostics and the Section 5.2 ambiguity gate.
type ProfileVerdict struct {
	Fingerprint string
	// Diags is VetProfile's output (sorted, canonical witnesses).
	Diags []analysis.Diagnostic
	// AmbiguityErr is the Search-blocking rejection, nil when the VOR
	// set is unambiguous under priorities.
	AmbiguityErr error
}

// QueryVerdict is the cached outcome of analyzing one (profile, query)
// pair: the single-plan flock encoding Search executes, plus the
// query-scoped vet diagnostics.
type QueryVerdict struct {
	// Encoded is the flock encoded into a single query (Section 6.2);
	// nil when ConflictErr is set. Consumers must not mutate it.
	Encoded *tpq.Query
	// Applied lists the scoping rules applied during encoding.
	Applied []string
	// Diags is VetQuery's output.
	Diags []analysis.Diagnostic
	// ConflictErr is the Section 5.1 rejection (conflict cycle), nil
	// when an application order exists.
	ConflictErr error
}

// AnalysisCacheStats is a snapshot of cache behavior plus the cumulative
// per-diagnostic-class counts observed by fills — the source for the
// /metrics counters.
type AnalysisCacheStats struct {
	Hits, Misses, Coalesced uint64
	Evictions               uint64
	Entries, Capacity       int
	// Diagnostics maps check ID -> number of diagnostics produced by
	// analysis fills (each unique profile/query analyzed counts once,
	// not once per request — cache hits don't re-count).
	Diagnostics map[string]uint64
}

// AnalysisCache memoizes ProfileVerdict and QueryVerdict values under an
// LRU with single-flight fills.
type AnalysisCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*acEntry
	head     *acEntry // most recently used
	tail     *acEntry // least recently used
	inflight map[string]*acCall

	hits, misses, coalesced, evictions uint64
	diagCounts                         map[string]uint64
}

type acEntry struct {
	key        string
	val        any
	prev, next *acEntry
}

type acCall struct {
	done chan struct{}
	val  any
}

// NewAnalysisCache returns a cache holding up to capacity verdicts
// (minimum 2: a profile verdict and one query verdict).
func NewAnalysisCache(capacity int) *AnalysisCache {
	if capacity < 2 {
		capacity = 2
	}
	return &AnalysisCache{
		capacity:   capacity,
		entries:    make(map[string]*acEntry),
		inflight:   make(map[string]*acCall),
		diagCounts: make(map[string]uint64),
	}
}

// ProfileVerdict returns the memoized profile-scoped analysis of p. The
// error is non-nil only when ctx expires while another goroutine's fill
// is still running; analysis rejections live in the verdict itself.
func (c *AnalysisCache) ProfileVerdict(ctx context.Context, p *profile.Profile) (*ProfileVerdict, error) {
	fp := ProfileFingerprint(p)
	v, err := c.do(ctx, "p\x1f"+fp, func() any {
		pv := &ProfileVerdict{Fingerprint: fp, Diags: analysis.VetProfile(p)}
		if rep := analysis.DetectAmbiguityPrioritized(p.VORs); rep.Ambiguous {
			pv.AmbiguityErr = fmt.Errorf(
				"engine: ambiguous value-based ordering rules (cycle %v): %s",
				rep.Cycle, rep.Suggestion)
		}
		c.countDiags(pv.Diags)
		return pv
	})
	if err != nil {
		return nil, err
	}
	return v.(*ProfileVerdict), nil
}

// QueryVerdict returns the memoized (profile, query) analysis: the
// single-plan flock encoding plus query-scoped diagnostics.
func (c *AnalysisCache) QueryVerdict(ctx context.Context, p *profile.Profile, q *tpq.Query) (*QueryVerdict, error) {
	key := "q\x1f" + ProfileFingerprint(p) + "\x1f" + q.String()
	v, err := c.do(ctx, key, func() any {
		qv := &QueryVerdict{Diags: analysis.VetQuery(p, q)}
		qv.Encoded, qv.Applied, qv.ConflictErr = analysis.EncodeFlock(p.SRs, q)
		c.countDiags(qv.Diags)
		return qv
	})
	if err != nil {
		return nil, err
	}
	return v.(*QueryVerdict), nil
}

// do is the single-flight LRU lookup. The fill runs in its own goroutine
// detached from ctx, so a follower outlives a cancelled leader: whoever
// triggered the fill giving up does not abort it, and every waiter with
// a live context still receives the value.
func (c *AnalysisCache) do(ctx context.Context, key string, fill func() any) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.touch(e)
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-call.done:
			return call.val, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &acCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	//pimento:allow budgetedgo single-flight fill: at most one detached goroutine per missing key (bounded by the inflight map), so duplicate waiters share it instead of multiplying work
	go func() {
		call.val = fill()
		c.mu.Lock()
		c.insert(key, call.val)
		delete(c.inflight, key)
		c.mu.Unlock()
		close(call.done)
	}()

	select {
	case <-call.done:
		return call.val, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// touch moves e to the MRU position. Caller holds mu.
func (c *AnalysisCache) touch(e *acEntry) {
	if c.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// relink at head
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// insert stores a new entry at MRU, evicting LRU past capacity. Caller
// holds mu.
func (c *AnalysisCache) insert(key string, val any) {
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.touch(e)
		return
	}
	e := &acEntry{key: key, val: val}
	c.entries[key] = e
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	for len(c.entries) > c.capacity && c.tail != nil {
		victim := c.tail
		c.tail = victim.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.entries, victim.key)
		c.evictions++
	}
}

// RecordDiagnostics folds externally-produced diagnostics into the
// per-class counters — the serving layer uses it for findings that
// never reach a fill (e.g. a duplicate-identifier rejection raised
// during profile parsing, before analysis can run).
func (c *AnalysisCache) RecordDiagnostics(ds []analysis.Diagnostic) { c.countDiags(ds) }

func (c *AnalysisCache) countDiags(ds []analysis.Diagnostic) {
	c.mu.Lock()
	for _, d := range ds {
		c.diagCounts[d.ID]++
	}
	c.mu.Unlock()
}

// Stats snapshots the counters. The Diagnostics map is a copy.
func (c *AnalysisCache) Stats() AnalysisCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	diags := make(map[string]uint64, len(c.diagCounts))
	for k, v := range c.diagCounts {
		diags[k] = v
	}
	return AnalysisCacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Coalesced:   c.coalesced,
		Evictions:   c.evictions,
		Entries:     len(c.entries),
		Capacity:    c.capacity,
		Diagnostics: diags,
	}
}
