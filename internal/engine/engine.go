// Package engine is PIMENTO's personalization driver: it runs the static
// analyses of Section 5 (scoping-rule conflicts, ordering-rule
// ambiguity), enforces the profile by encoding the query flock into a
// single plan (Section 6), executes it with OR-aware top-k pruning, and
// reports results with per-operator statistics.
package engine

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/algebra"
	"repro/internal/analysis"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// Engine answers personalized queries over one indexed document.
type Engine struct {
	doc *xmldoc.Document
	ix  *index.Index

	fpOnce sync.Once
	fp     string

	// ac, when set via UseAnalysisCache, memoizes profile/query analysis
	// so repeated requests with the same profile skip re-running the
	// Section 5 checks and flock encoding.
	ac *AnalysisCache
}

// UseAnalysisCache attaches a (possibly shared) analysis cache; Search
// then reuses memoized ambiguity/conflict verdicts and flock encodings
// instead of recomputing them per request. Passing nil detaches.
func (e *Engine) UseAnalysisCache(c *AnalysisCache) { e.ac = c }

// New indexes doc under the given text pipeline and returns an engine.
func New(doc *xmldoc.Document, pipe text.Pipeline) *Engine {
	return &Engine{doc: doc, ix: index.Build(doc, pipe)}
}

// FromParts wraps an already-built (document, index) pair without
// re-indexing — the constructor the serving layer uses to put an engine
// on top of a corpus entry.
func FromParts(doc *xmldoc.Document, ix *index.Index) *Engine {
	return &Engine{doc: doc, ix: ix}
}

// FromXML parses and indexes an XML document.
func FromXML(r io.Reader, pipe text.Pipeline) (*Engine, error) {
	doc, err := xmldoc.Parse(r)
	if err != nil {
		return nil, err
	}
	return New(doc, pipe), nil
}

// Document returns the engine's document.
func (e *Engine) Document() *xmldoc.Document { return e.doc }

// Index returns the engine's index.
func (e *Engine) Index() *index.Index { return e.ix }

// Request is one personalized search.
type Request struct {
	Query   *tpq.Query
	Profile *profile.Profile // nil disables personalization
	// K is the result size; 0 defaults to 10, negative values are
	// rejected (an explicitly negative K is a caller bug, not a request
	// for the default).
	K int
	// Strategy selects the physical plan; defaults to Push (the paper's
	// winner).
	Strategy plan.Strategy
	// LiteralRewrite evaluates the whole query flock by literal rewriting
	// (one query after another) instead of the single-plan encoding; it
	// exists for comparison and testing.
	LiteralRewrite bool
	// TwigAccess uses the holistic twig semijoin as the access path
	// instead of scan + per-candidate matching. Legacy toggle: it is
	// equivalent to Access = plan.AccessTwigJoin and is ignored when
	// Access is set explicitly.
	TwigAccess bool
	// Access selects the candidate access path: plan.AccessAuto (zero
	// value; corpus-size heuristic), plan.AccessScan, or
	// plan.AccessTwigJoin (holistic structural join with dataguide
	// pruning).
	Access plan.AccessPath
	// Parallelism partitions plan execution across workers: 0 resolves
	// by document size (sequential below ParallelMinNodes, GOMAXPROCS
	// above — plan.ResolveParallelism), 1 forces the sequential
	// reference path, n >= 2 forces n workers (capped at
	// plan.MaxParallelism). The ranked answers are identical at every
	// setting.
	Parallelism int
	// ParallelMinNodes tunes auto-resolution: 0 means
	// plan.DefaultParallelMinNodes, negative restores the legacy
	// unconditional-GOMAXPROCS behavior (the load harness's baseline).
	ParallelMinNodes int
	// Budget, when non-nil, gates the extra goroutines of parallel plan
	// execution (see plan.Options.Budget). The serving layer passes the
	// scheduler's shared budget; library callers leave it nil.
	Budget plan.WorkerBudget
	// Thesaurus, when non-nil, expands required full-text predicates
	// with optional synonym predicates at ThesaurusWeight (default 0.5).
	Thesaurus       *text.Thesaurus
	ThesaurusWeight float64
	// Timing enables per-operator wall-time collection (OpStats.WallNS)
	// at the cost of two clock reads per operator pull. The serving
	// layer sets it so /metrics and the slow-query log can attribute
	// time inside the plan; library callers default to the bare chain.
	Timing bool
}

// Result is one ranked answer.
type Result struct {
	Node    xmldoc.NodeID
	Path    string
	S, K    float64
	Snippet string
}

// Response carries the answers plus everything the personalization
// pipeline decided along the way.
type Response struct {
	Results      []Result
	EncodedQuery *tpq.Query
	AppliedSRs   []string
	PlanShape    string
	Stats        []algebra.OpStats
	TotalPruned  int
	Workers      int // plan-execution workers (1 = sequential)
	// Parallelism is the *resolved* parallelism (plan.ResolveParallelism
	// applied to the request and the document) — what the request was
	// granted, as opposed to what it asked for. Workers can be lower
	// when the candidate list was too small to use the grant.
	Parallelism int
	// Access is the resolved access path (never AccessAuto) and TwigJoin
	// the join's counters — nil on the scan path.
	Access   plan.AccessPath
	TwigJoin *plan.JoinStats
	Elapsed  time.Duration
	// Trace is the pipeline trace: one span per personalization stage
	// (analyze → rewrite → build → execute → rank), offsets relative to
	// the start of SearchContext. Always recorded — five clock pairs
	// per request are noise next to plan execution.
	Trace []metrics.Span
	// Cached is true when this response was served from a result cache
	// (see internal/server.ResultCache) instead of a fresh execution.
	Cached bool
}

// Search personalizes and evaluates the request. It fails when the
// profile's value-based ORs are ambiguous (Section 5.2 requires the user
// to resolve ambiguity with priorities before the profile is enforced)
// or when its scoping rules have unresolvable conflict cycles.
func (e *Engine) Search(req Request) (*Response, error) {
	//pimento:allow ctxbg context-free public entry point whose contract is run-to-completion; cancellable callers use SearchContext
	return e.SearchContext(context.Background(), req)
}

// SearchContext is Search under a context: when ctx is cancelled or its
// deadline expires, plan execution aborts cooperatively (scan, match and
// prune loops all carry checkpoints) and SearchContext returns ctx's
// error — never a silently truncated top k.
func (e *Engine) SearchContext(ctx context.Context, req Request) (*Response, error) {
	if req.Query == nil {
		return nil, fmt.Errorf("engine: nil query")
	}
	if req.K < 0 {
		return nil, fmt.Errorf("engine: negative K %d (use 0 or omit K for the default of 10)", req.K)
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	strat := req.Strategy // plan.Default resolves to Push inside Build

	start := time.Now()
	tr := metrics.NewTrace()
	q := req.Query
	var applied []string
	if req.Profile != nil {
		endAnalyze := tr.Start("analyze")
		if e.ac != nil && !req.LiteralRewrite {
			// Memoized path: the ambiguity gate, flock encoding and vet
			// diagnostics come from the shared analysis cache; only the
			// first request per profile (and per profile+query) pays for
			// analysis.
			pv, err := e.ac.ProfileVerdict(ctx, req.Profile)
			if err != nil {
				return nil, err
			}
			if pv.AmbiguityErr != nil {
				return nil, pv.AmbiguityErr
			}
			qv, err := e.ac.QueryVerdict(ctx, req.Profile, req.Query)
			endAnalyze()
			if err != nil {
				return nil, err
			}
			if qv.ConflictErr != nil {
				return nil, qv.ConflictErr
			}
			q, applied = qv.Encoded, qv.Applied
		} else {
			if rep := analysis.DetectAmbiguityPrioritized(req.Profile.VORs); rep.Ambiguous {
				return nil, fmt.Errorf(
					"engine: ambiguous value-based ordering rules (cycle %v): %s",
					rep.Cycle, rep.Suggestion)
			}
			if req.LiteralRewrite {
				return e.literalFlockSearch(ctx, req, k, strat, start)
			}
			var err error
			q, applied, err = analysis.EncodeFlock(req.Profile.SRs, req.Query)
			endAnalyze()
			if err != nil {
				return nil, err
			}
		}
	}
	if req.Thesaurus != nil && req.Thesaurus.Len() > 0 {
		endRewrite := tr.Start("rewrite")
		w := req.ThesaurusWeight
		if w == 0 {
			w = 0.5
		}
		q = q.ExpandPhrases(req.Thesaurus.Synonyms, w)
		endRewrite()
	}

	endBuild := tr.Start("build")
	p, err := plan.BuildWith(e.ix, q, req.Profile, k, plan.Options{
		Strategy:         strat,
		TwigAccess:       req.TwigAccess,
		AccessPath:       req.Access,
		Parallelism:      req.Parallelism,
		ParallelMinNodes: req.ParallelMinNodes,
		Budget:           req.Budget,
		Timing:           req.Timing,
	})
	endBuild()
	if err != nil {
		return nil, err
	}
	// Hand the chain's pooled scratch back once the response is
	// materialized: under the worker-pool scheduler the next request on
	// this worker reuses the same buffers instead of reallocating.
	defer p.Release()
	endExecute := tr.Start("execute")
	answers, err := p.ExecuteContext(ctx)
	endExecute()
	if err != nil {
		return nil, err
	}

	endRank := tr.Start("rank")
	resp := &Response{
		EncodedQuery: q,
		AppliedSRs:   applied,
		PlanShape:    p.String(),
		Stats:        p.Stats(),
		TotalPruned:  p.TotalPruned(),
		Workers:      p.Workers(),
		Parallelism:  p.Parallelism(),
		Access:       p.Access(),
		TwigJoin:     p.JoinStats(),
	}
	resp.Results = e.materialize(answers)
	endRank()
	resp.Trace = tr.Spans()
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// literalFlockSearch evaluates every query of the flock separately and
// merges results (rewritten-query answers get a rank bonus per flock
// position). It exists to validate the single-plan encoding.
func (e *Engine) literalFlockSearch(ctx context.Context, req Request, k int, strat plan.Strategy, start time.Time) (*Response, error) {
	flock, applied, err := analysis.Flock(req.Profile.SRs, req.Query)
	if err != nil {
		return nil, err
	}
	type scored struct {
		a     algebra.Answer
		bonus float64
	}
	best := map[xmldoc.NodeID]scored{}
	for pos, fq := range flock {
		p, err := plan.BuildWith(e.ix, fq, req.Profile, k, plan.Options{
			Strategy:         strat,
			Parallelism:      req.Parallelism,
			ParallelMinNodes: req.ParallelMinNodes,
			Budget:           req.Budget,
		})
		if err != nil {
			return nil, err
		}
		defer p.Release()
		answers, err := p.ExecuteContext(ctx)
		if err != nil {
			return nil, err
		}
		for _, a := range answers {
			bonus := float64(pos) // later flock members are more personalized
			if cur, ok := best[a.Node]; !ok || a.S+bonus > cur.a.S+cur.bonus {
				best[a.Node] = scored{a: a, bonus: bonus}
			}
		}
	}
	merged := make([]algebra.Answer, 0, len(best))
	for _, s := range best {
		a := s.a
		a.S += s.bonus
		merged = append(merged, a)
	}
	ranker := algebra.NewRanker(req.Profile)
	mode := algebra.ModeForProfile(req.Profile)
	sortAnswers(merged, ranker, mode)
	if len(merged) > k {
		merged = merged[:k]
	}
	return &Response{
		EncodedQuery: flock[len(flock)-1],
		AppliedSRs:   applied,
		PlanShape:    fmt.Sprintf("literal flock of %d queries", len(flock)),
		Parallelism:  e.ResolvedParallelism(&req),
		Elapsed:      time.Since(start),
		Results:      e.materialize(merged),
	}, nil
}

// ResolvedParallelism reports the worker count the request resolves to
// against this engine's document — plan.ResolveParallelism on the
// request's Parallelism/ParallelMinNodes and the document size. The
// serving layer folds this into its cache key (a cached response's
// Workers/Stats metadata depends on it) and surfaces it to clients.
func (e *Engine) ResolvedParallelism(req *Request) int {
	return plan.ResolveParallelism(req.Parallelism, e.doc.Len(), req.ParallelMinNodes)
}

func sortAnswers(as []algebra.Answer, r *algebra.Ranker, mode algebra.Mode) {
	// Insertion sort with the ranker comparison: answer lists here are
	// small (k-bounded merges).
	for i := 1; i < len(as); i++ {
		for j := i; j > 0; j-- {
			c := r.Compare(&as[j], &as[j-1], mode)
			if c > 0 || (c == 0 && as[j].Node < as[j-1].Node) {
				as[j], as[j-1] = as[j-1], as[j]
			} else {
				break
			}
		}
	}
}

func (e *Engine) materialize(answers []algebra.Answer) []Result {
	out := make([]Result, len(answers))
	for i, a := range answers {
		out[i] = Result{
			Node:    a.Node,
			Path:    e.doc.Path(a.Node),
			S:       a.S,
			K:       a.K,
			Snippet: snippet(e.doc.TextContent(a.Node), 90),
		}
	}
	return out
}

func snippet(s string, max int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= max {
		return s
	}
	// Back the cut up to a rune boundary: s[:max] may split a multi-byte
	// UTF-8 sequence and emit an invalid string.
	for max > 0 && !utf8.RuneStart(s[max]) {
		max--
	}
	cut := s[:max]
	if i := strings.LastIndexByte(cut, ' '); i > max/2 {
		cut = cut[:i]
	}
	return cut + "…"
}

// AnalyzeProfile runs the Section 5 static analyses for a profile against
// a query without executing anything — the "explain" entry point.
type ProfileAnalysis struct {
	Conflicts   *analysis.ConflictReport
	ConflictErr error
	Ambiguity   analysis.AmbiguityReport
	Flock       []*tpq.Query
	Applied     []string
	// Trace spans the analysis stages (conflicts → ambiguity → flock),
	// the /explain half of the pipeline trace.
	Trace []metrics.Span
}

// AnalyzeProfile reports rule applicability, conflicts, the application
// order, the resulting flock, and VOR ambiguity.
func AnalyzeProfile(prof *profile.Profile, q *tpq.Query) *ProfileAnalysis {
	pa := &ProfileAnalysis{}
	tr := metrics.NewTrace()
	end := tr.Start("conflicts")
	pa.Conflicts, pa.ConflictErr = analysis.AnalyzeSRs(prof.SRs, q)
	end()
	end = tr.Start("ambiguity")
	pa.Ambiguity = analysis.DetectAmbiguityPrioritized(prof.VORs)
	end()
	if pa.ConflictErr == nil {
		end = tr.Start("flock")
		pa.Flock, pa.Applied, _ = analysis.Flock(prof.SRs, q)
		end()
	}
	pa.Trace = tr.Spans()
	return pa
}
