package engine

import (
	"fmt"
	"io"

	"repro/internal/index"
	"repro/internal/xmldoc"
)

// Save writes an engine snapshot (document + index) so a corpus can be
// reopened without re-parsing and re-indexing the XML.
func (e *Engine) Save(w io.Writer) error {
	if err := e.doc.Save(w); err != nil {
		return fmt.Errorf("engine: save document: %w", err)
	}
	if err := e.ix.Save(w); err != nil {
		return fmt.Errorf("engine: save index: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Engine, error) {
	doc, err := xmldoc.Load(r)
	if err != nil {
		return nil, fmt.Errorf("engine: load: %w", err)
	}
	ix, err := index.Load(r, doc)
	if err != nil {
		return nil, fmt.Errorf("engine: load: %w", err)
	}
	return &Engine{doc: doc, ix: ix}, nil
}
