package engine

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// rankXML has three cars engineered so each rank order produces a
// different winner: car A has the KOR phrase, car B the best VOR value
// (lowest mileage), car C the highest query score (double phrase).
const rankXML = `<dealer>
  <car id="A"><description>good condition, best bid</description><mileage>50000</mileage></car>
  <car id="B"><description>good condition</description><mileage>1000</mileage></car>
  <car id="C"><description>good condition and again good condition</description><mileage>90000</mileage></car>
</dealer>`

const rankRules = `
vor w: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor k: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
`

func winner(t *testing.T, rank string) string {
	t.Helper()
	doc, err := xmldoc.ParseString(rankXML)
	if err != nil {
		t.Fatal(err)
	}
	e := New(doc, text.Pipeline{})
	prof := profile.MustParseProfile(rankRules + "rank " + rank + "\n")
	resp, err := e.Search(Request{
		Query:    tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`),
		Profile:  prof,
		K:        3,
		Strategy: plan.Push,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	id, _ := doc.AttrValue(resp.Results[0].Node, "id")
	return id
}

func TestRankOrdersProduceDifferentWinners(t *testing.T) {
	// K,V,S: the KOR match (A) wins.
	if got := winner(t, "K,V,S"); got != "A" {
		t.Errorf("KVS winner = %s, want A", got)
	}
	// V,K,S: the lowest-mileage car (B) wins.
	if got := winner(t, "V,K,S"); got != "B" {
		t.Errorf("VKS winner = %s, want B", got)
	}
	// blend: K + S combined. A has K≈kor score + S(1 hit); C has S with
	// tf=2. The outcome depends on magnitudes; assert only that blend
	// is well-defined and the full set returns.
	got := winner(t, "blend")
	if got == "" {
		t.Errorf("blend produced no winner")
	}
	// And blend must differ from at least one of the lexicographic
	// orders on this workload (it trades K against S).
	if got != winner(t, "K,V,S") && got != winner(t, "V,K,S") && got != "C" {
		t.Errorf("blend winner %s unexpected", got)
	}
}

func TestTwigAccessEndToEnd(t *testing.T) {
	doc, err := xmldoc.ParseString(rankXML)
	if err != nil {
		t.Fatal(err)
	}
	e := New(doc, text.Pipeline{})
	prof := profile.MustParseProfile(rankRules + "rank K,V,S\n")
	req := Request{
		Query:    tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`),
		Profile:  prof,
		K:        3,
		Strategy: plan.Push,
	}
	plain, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	req.TwigAccess = true
	twig, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Results) != len(twig.Results) {
		t.Fatalf("twig access changed result count")
	}
	for i := range plain.Results {
		if plain.Results[i].Node != twig.Results[i].Node {
			t.Errorf("rank %d differs: %v vs %v", i, plain.Results[i].Node, twig.Results[i].Node)
		}
	}
}
