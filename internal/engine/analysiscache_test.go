package engine

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/profile"
	"repro/internal/tpq"
)

const ambiguousVORs = `
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`

// cyclicSRs conflict on any query carrying both phrases: each removes
// the predicate the other's condition needs.
const cyclicSRs = `
sr p1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(description, "good condition")
sr p3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
`

func TestAnalysisCacheProfileVerdict(t *testing.T) {
	c := NewAnalysisCache(8)
	clean := profile.MustParseProfile(fig2Rules)
	ctx := context.Background()

	pv1, err := c.ProfileVerdict(ctx, clean)
	if err != nil {
		t.Fatal(err)
	}
	if pv1.AmbiguityErr != nil {
		t.Fatalf("clean profile verdict carries %v", pv1.AmbiguityErr)
	}
	pv2, err := c.ProfileVerdict(ctx, clean)
	if err != nil {
		t.Fatal(err)
	}
	if pv1 != pv2 {
		t.Error("second lookup should return the cached verdict pointer")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", st)
	}

	// An analysis rejection is cached inside the verdict, not surfaced as
	// a do() error.
	amb := profile.MustParseProfile(ambiguousVORs)
	pv3, err := c.ProfileVerdict(ctx, amb)
	if err != nil {
		t.Fatal(err)
	}
	if pv3.AmbiguityErr == nil || !strings.Contains(pv3.AmbiguityErr.Error(), "ambiguous") {
		t.Fatalf("ambiguity verdict = %v", pv3.AmbiguityErr)
	}
	pv4, _ := c.ProfileVerdict(ctx, amb)
	if pv4.AmbiguityErr != pv3.AmbiguityErr {
		t.Error("cached rejection should be the same error value")
	}
	if analysis.ErrorCount(pv3.Diags) == 0 {
		t.Error("ambiguous profile should carry an error diagnostic")
	}

	// Diagnostics are counted once per fill, not once per request.
	d0 := c.Stats().Diagnostics[analysis.DiagVORAmbiguous]
	c.ProfileVerdict(ctx, amb)
	c.ProfileVerdict(ctx, amb)
	if d1 := c.Stats().Diagnostics[analysis.DiagVORAmbiguous]; d1 != d0 {
		t.Errorf("cache hits re-counted diagnostics: %d -> %d", d0, d1)
	}
}

func TestAnalysisCacheQueryVerdict(t *testing.T) {
	c := NewAnalysisCache(8)
	ctx := context.Background()
	q := tpq.MustParse(paperQ)

	clean := profile.MustParseProfile(fig2Rules)
	qv, err := c.QueryVerdict(ctx, clean, q)
	if err != nil {
		t.Fatal(err)
	}
	if qv.ConflictErr != nil || qv.Encoded == nil {
		t.Fatalf("clean verdict = %+v", qv)
	}
	qv2, _ := c.QueryVerdict(ctx, clean, q)
	if qv2.Encoded != qv.Encoded {
		t.Error("encoded query should be shared copy-on-write, not re-encoded")
	}

	cyclic := profile.MustParseProfile(cyclicSRs)
	qv3, err := c.QueryVerdict(ctx, cyclic, q)
	if err != nil {
		t.Fatal(err)
	}
	if qv3.ConflictErr == nil || qv3.Encoded != nil {
		t.Fatalf("cyclic verdict = %+v", qv3)
	}
}

func TestAnalysisCacheEviction(t *testing.T) {
	c := NewAnalysisCache(2)
	ctx := context.Background()
	profs := []*profile.Profile{
		profile.MustParseProfile(fig2Rules),
		profile.MustParseProfile(ambiguousVORs),
		profile.MustParseProfile(cyclicSRs),
	}
	for _, p := range profs {
		if _, err := c.ProfileVerdict(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries and 1 eviction", st)
	}
	// The oldest profile was evicted: looking it up again is a miss.
	c.ProfileVerdict(ctx, profs[0])
	if st = c.Stats(); st.Misses != 4 {
		t.Errorf("evicted entry should refill: %+v", st)
	}
	// The newest is still resident.
	c.ProfileVerdict(ctx, profs[2])
	if st2 := c.Stats(); st2.Hits != st.Hits+1 {
		t.Errorf("resident entry should hit: %+v", st2)
	}
}

// TestAnalysisCacheFollowerOutlivesLeader: the goroutine that triggers a
// fill cancelling its context must not abort the fill — a later waiter
// still receives the value.
func TestAnalysisCacheFollowerOutlivesLeader(t *testing.T) {
	c := NewAnalysisCache(4)
	started := make(chan struct{})
	release := make(chan struct{})

	leaderCtx, cancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.do(leaderCtx, "k", func() any {
			close(started)
			<-release
			return "value"
		})
		leaderErr <- err
	}()
	<-started
	cancel() // leader gives up mid-fill

	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}

	// Follower joins the (still running) fill with a live context.
	followerDone := make(chan any, 1)
	go func() {
		v, err := c.do(context.Background(), "k", func() any {
			t.Error("follower must coalesce, not refill")
			return nil
		})
		if err != nil {
			t.Error(err)
		}
		followerDone <- v
	}()

	// Give the follower time to register as coalesced, then finish the
	// fill.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	if v := <-followerDone; v != "value" {
		t.Fatalf("follower got %v", v)
	}
	if _, err := c.do(context.Background(), "k", func() any {
		t.Error("value must be cached after the fill")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchUsesAnalysisCache: a cached engine returns the same results
// and the same rejections as the inline path, and repeat searches hit.
func TestSearchUsesAnalysisCache(t *testing.T) {
	cached := newEngine(t)
	ac := NewAnalysisCache(16)
	cached.UseAnalysisCache(ac)
	inline := newEngine(t)

	q := func() *tpq.Query { return tpq.MustParse(paperQ) }
	prof := profile.MustParseProfile(fig2Rules)

	r1, err := cached.Search(Request{Query: q(), Profile: prof, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := inline.Search(Request{Query: q(), Profile: prof, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("cached %d results vs inline %d", len(r1.Results), len(r2.Results))
	}
	for i := range r1.Results {
		if r1.Results[i].Path != r2.Results[i].Path {
			t.Fatalf("result %d: %s vs %s", i, r1.Results[i].Path, r2.Results[i].Path)
		}
	}

	// Second search on the warm cache: no new analysis fills.
	st0 := ac.Stats()
	if _, err := cached.Search(Request{Query: q(), Profile: prof, K: 5}); err != nil {
		t.Fatal(err)
	}
	st1 := ac.Stats()
	if st1.Misses != st0.Misses {
		t.Errorf("warm search re-analyzed: %+v -> %+v", st0, st1)
	}
	if st1.Hits <= st0.Hits {
		t.Errorf("warm search should hit: %+v -> %+v", st0, st1)
	}

	// Rejection parity: identical error strings on both paths.
	for _, src := range []string{ambiguousVORs, cyclicSRs} {
		p := profile.MustParseProfile(src)
		_, errC := cached.Search(Request{Query: q(), Profile: p, K: 5})
		_, errI := inline.Search(Request{Query: q(), Profile: p, K: 5})
		if errC == nil || errI == nil {
			t.Fatalf("both paths must reject %q: cached=%v inline=%v", src[:20], errC, errI)
		}
		if errC.Error() != errI.Error() {
			t.Errorf("error text diverged:\ncached: %v\ninline: %v", errC, errI)
		}
	}
}

// TestVetVerdictMatchesSearch is the property test behind `pimento vet`:
// a profile with no error-severity diagnostics is accepted by Search,
// and a profile with an error diagnostic is rejected — under both the
// cached and the inline analysis paths.
func TestVetVerdictMatchesSearch(t *testing.T) {
	srSets := []string{
		"",
		"sr p1 priority 1: if pc(car, description) & ftcontains(description, \"low mileage\") then remove ftcontains(description, \"good condition\")\n",
		cyclicSRs,
		"sr u: if pc(car, d) & d.p < 1 & d.p > 2 then add ftcontains(d, \"z\")\n", // warn only
	}
	vorSets := []string{
		"",
		ambiguousVORs,
		"vor w1 priority 2: x.tag = car & y.tag = car & x.color = \"red\" & y.color != \"red\" => x < y\nvor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y\n",
		"vor d: x.tag = car & y.tag = car & x.hp < 100 & x.hp > 200 & x.m < y.m => x < y\n", // warn only
	}
	queries := []string{
		paperQ,
		`//car[./description[. ftcontains "good condition"]]`,
	}

	cached := newEngine(t)
	cached.UseAnalysisCache(NewAnalysisCache(64))
	inline := newEngine(t)

	for _, srs := range srSets {
		for _, vors := range vorSets {
			src := srs + vors + "rank K,V,S\n"
			p := profile.MustParseProfile(src)
			for _, qs := range queries {
				q := tpq.MustParse(qs)
				wantClean := analysis.ErrorCount(analysis.Vet(p, q)) == 0
				for name, e := range map[string]*Engine{"cached": cached, "inline": inline} {
					_, err := e.Search(Request{Query: tpq.MustParse(qs), Profile: p, K: 3})
					if accepted := err == nil; accepted != wantClean {
						t.Errorf("%s engine: vet clean=%v but Search err=%v\nprofile:\n%s\nquery: %s",
							name, wantClean, err, src, qs)
					}
				}
			}
		}
	}
}

// TestAnalysisCacheStress drives concurrent searches and direct cache
// lookups over shared and distinct profiles under -race, then gates on
// goroutine leaks (detached fills must all finish).
func TestAnalysisCacheStress(t *testing.T) {
	e := newEngine(t)
	ac := NewAnalysisCache(4) // small: force evictions under load
	e.UseAnalysisCache(ac)

	profSrcs := []string{fig2Rules, ambiguousVORs, cyclicSRs,
		"sr p2 priority 2: if pc(car, description) & ftcontains(description, \"good condition\") then add ftcontains(description, \"american\")\nrank K,V,S\n"}
	queries := []string{paperQ, `//car[./description[. ftcontains "good condition"]]`}

	before := runtime.NumGoroutine()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := profSrcs[(w+i)%len(profSrcs)]
				p, err := profile.ParseProfile(src)
				if err != nil {
					t.Error(err)
					return
				}
				q := tpq.MustParse(queries[i%len(queries)])
				ctx := context.Background()
				timed := i%7 == 3
				if timed {
					// Some callers give up almost immediately; the
					// detached fill must still complete for everyone
					// else. (The plan layer reports deadline expiry by
					// wall clock, possibly before ctx.Err() flips, so
					// ctx errors are judged by this flag, not ctx.Err.)
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				}
				switch i % 3 {
				case 0:
					_, err = e.SearchContext(ctx, Request{Query: q, Profile: p, K: 3})
					if err != nil && !timed &&
						!strings.Contains(err.Error(), "ambiguous") &&
						!strings.Contains(err.Error(), "conflict") {
						t.Errorf("unexpected search error: %v", err)
					}
				case 1:
					if _, err := ac.ProfileVerdict(ctx, p); err != nil && !timed {
						t.Errorf("profile verdict: %v", err)
					}
				case 2:
					if _, err := ac.QueryVerdict(ctx, p, q); err != nil && !timed {
						t.Errorf("query verdict: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := ac.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stress should exercise both hits and misses: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before stress, %d after settle\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
