package engine

import (
	"bytes"
	"testing"

	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	e := newEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	r1, err := e.Search(Request{Query: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Search(Request{Query: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(r1.Results), len(r2.Results))
	}
	for i := range r1.Results {
		a, b := r1.Results[i], r2.Results[i]
		if a.Node != b.Node || a.S != b.S || a.K != b.K {
			t.Errorf("result %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Errorf("garbage must fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Errorf("empty input must fail")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	e := newEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 3, len(full) - 2} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated snapshot (len %d of %d) must fail", cut, len(full))
		}
	}
}

func TestLoadRejectsMismatchedIndex(t *testing.T) {
	// Save engine A's document followed by engine B's index: the
	// cross-check must fail.
	a := newEngine(t)
	bDoc, err := xmldoc.ParseString(`<x><y>different content entirely</y></x>`)
	if err != nil {
		t.Fatal(err)
	}
	b := New(bDoc, text.Pipeline{})

	var buf bytes.Buffer
	if err := a.Document().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Index().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Errorf("mismatched document/index pair must be rejected")
	}
}
