package engine

import (
	"strings"
	"testing"

	"repro/internal/text"
	"repro/internal/tpq"
)

// TestNegativeKRejected pins the API-boundary contract: K == 0 means
// "default of 10", but an explicitly negative K is a caller bug and
// must be an error, not a silent default.
func TestNegativeKRejected(t *testing.T) {
	e, err := FromXML(strings.NewReader(fig1XML), text.Pipeline{Stem: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := tpq.Parse(`//car[price < 2000]`)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		k       int
		wantErr bool
	}{
		{"k=-1", -1, true},
		{"k=-10", -10, true},
		{"k=minint", -1 << 31, true},
		{"k=0 defaults", 0, false},
		{"k=1", 1, false},
		{"k=100", 100, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := e.Search(Request{Query: q, K: tc.k})
			if tc.wantErr {
				if err == nil {
					t.Fatalf("K=%d: got %d results, want error", tc.k, len(resp.Results))
				}
				if !strings.Contains(err.Error(), "negative K") {
					t.Errorf("K=%d: error %q does not name the problem", tc.k, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("K=%d: %v", tc.k, err)
			}
			if tc.k == 0 && len(resp.Results) > 10 {
				t.Errorf("K=0 returned %d results, want the default cap of 10", len(resp.Results))
			}
		})
	}
}
