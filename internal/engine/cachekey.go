// Cache key canonicalization. A personalized search is a pure function
// of (document + index configuration, query, profile, evaluation
// options); the serving layer's result cache (internal/server) keys on
// a canonical string of exactly those inputs, so two requests collide
// iff they are guaranteed to produce identical ranked answers and
// identical response metadata.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/text"
)

// Fingerprint returns a stable hash of everything engine-side that can
// change a response: the document's full content, the text pipeline
// configuration (stemming/stopwords change tokenization and hence
// matching), and the active scorer — index.ContentFingerprint over the
// engine's index. It is computed once per engine and cached; two
// engines over byte-identical documents with the same configuration
// share a fingerprint, so a result cache survives an engine rebuild or
// a process restart. A fingerprint installed with SetFingerprint (the
// mutable registry stamps generation-qualified fingerprints) takes
// precedence over the computed one.
func (e *Engine) Fingerprint() string {
	e.fpOnce.Do(func() {
		if e.fp == "" {
			e.fp = index.ContentFingerprint(e.ix)
		}
	})
	return e.fp
}

// SetFingerprint overrides the engine's fingerprint — the serving layer
// installs the corpus entry's generation-stamped fingerprint so cache
// keys derived through this engine carry the document's generation, not
// just its content hash. Call before the engine is shared; the override
// wins over (and suppresses) the lazy content hash.
func (e *Engine) SetFingerprint(fp string) {
	e.fp = fp
	e.fpOnce.Do(func() {})
}

// CacheKey returns the canonical cache key for the request against a
// document with the given fingerprint. Every request field that can
// influence the response is folded in: the query's canonical string
// form, the profile's canonical serialization, the resolved K, the
// strategy, and the literal-rewrite / twig-access / access-path flags.
//
// resolvedPar is the *resolved* parallelism (Engine.ResolvedParallelism),
// not the request's raw Parallelism knob. Parallelism never changes the
// ranked answers, but it changes the response's Workers/Stats metadata,
// so it must be part of the key — and keying on the raw request value
// would be wrong in both directions: requests that resolve identically
// (0 and 1 on a small document) would miss needlessly, and a stored
// entry would go stale if the resolution threshold changed between
// requests (the resolved value is what actually ran).
func (req *Request) CacheKey(fingerprint string, resolvedPar int) string {
	k := req.K
	if k == 0 {
		k = 10
	}
	var sb strings.Builder
	sb.Grow(256)
	fmt.Fprintf(&sb, "doc=%s\x1fq=%s\x1fk=%d\x1fstrat=%s\x1flit=%t\x1ftwig=%t\x1faccess=%s\x1fpar=%d",
		fingerprint, req.Query.String(), k, req.Strategy, req.LiteralRewrite,
		req.TwigAccess, req.Access, resolvedPar)
	sb.WriteString("\x1fprof=")
	sb.WriteString(CanonicalProfile(req.Profile))
	if req.Thesaurus != nil && req.Thesaurus.Len() > 0 {
		w := req.ThesaurusWeight
		if w == 0 {
			w = 0.5
		}
		fmt.Fprintf(&sb, "\x1fth@%g=%s", w, canonicalThesaurus(req.Thesaurus))
	}
	return sb.String()
}

// CanonicalProfile serializes a profile deterministically: rules in
// declaration order with their priorities and weights, named partial
// orders sorted by name with their full edge sets, and the rank order.
// Two profiles with the same canonical form rank every answer list
// identically. A nil profile canonicalizes to "-".
func CanonicalProfile(p *profile.Profile) string {
	if p == nil {
		return "-"
	}
	var sb strings.Builder
	for _, sr := range p.SRs {
		fmt.Fprintf(&sb, "sr{%s;prio=%d;w=%g}", sr, sr.Priority, sr.Weight)
	}
	for _, v := range p.VORs {
		fmt.Fprintf(&sb, "vor{%s;prio=%d}", v, v.Priority)
	}
	for _, kor := range p.KORs {
		fmt.Fprintf(&sb, "kor{%s;prio=%d;w=%g}", kor, kor.Priority, kor.Weight)
	}
	names := make([]string, 0, len(p.Orders))
	for name := range p.Orders {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		po := p.Orders[name]
		vals := po.Values()
		sort.Strings(vals)
		fmt.Fprintf(&sb, "order{%s:", name)
		for _, a := range vals {
			for _, b := range vals {
				if a != b && po.Prefers(a, b) {
					fmt.Fprintf(&sb, "%s<%s;", a, b)
				}
			}
		}
		sb.WriteString("}")
	}
	fmt.Fprintf(&sb, "rank=%s", p.Rank)
	return sb.String()
}

// canonicalThesaurus serializes a thesaurus as sorted phrase → synonym
// lists (Phrases is already sorted; synonym order matters to expansion
// order, so it is preserved).
func canonicalThesaurus(t *text.Thesaurus) string {
	var sb strings.Builder
	for _, p := range t.Phrases() {
		fmt.Fprintf(&sb, "%s=%s;", p, strings.Join(t.Synonyms(p), ","))
	}
	return sb.String()
}
