// Cache key canonicalization. A personalized search is a pure function
// of (document + index configuration, query, profile, evaluation
// options); the serving layer's result cache (internal/server) keys on
// a canonical string of exactly those inputs, so two requests collide
// iff they are guaranteed to produce identical ranked answers and
// identical response metadata.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/xmldoc"
)

// Fingerprint returns a stable hash of everything engine-side that can
// change a response: the document's full serialized content, the text
// pipeline configuration (stemming/stopwords change tokenization and
// hence matching), and the active scorer. It is computed once per
// engine and cached; two engines over byte-identical documents with the
// same configuration share a fingerprint, so a result cache survives an
// engine rebuild or a process restart.
func (e *Engine) Fingerprint() string {
	e.fpOnce.Do(func() {
		h := sha256.New()
		pipe := e.ix.Pipeline()
		fmt.Fprintf(h, "pipe:stem=%t,stop=%t;scorer=%s;doc:",
			pipe.Stem, pipe.DropStopwords, e.ix.ScorerName())
		// Hash the node arena directly rather than a serialized XML
		// string: same content sensitivity, but no multi-megabyte
		// allocation. Every field is length- or kind-prefixed so distinct
		// documents cannot collide by concatenation.
		var num [4]byte
		writeStr := func(s string) {
			num[0] = byte(len(s))
			num[1] = byte(len(s) >> 8)
			num[2] = byte(len(s) >> 16)
			num[3] = byte(len(s) >> 24)
			h.Write(num[:])
			h.Write([]byte(s))
		}
		e.doc.Walk(func(id xmldoc.NodeID) bool {
			n := e.doc.Node(id)
			h.Write([]byte{byte(n.Kind)})
			writeStr(n.Tag)
			writeStr(n.Text)
			num[0] = byte(len(n.Attrs))
			h.Write(num[:1])
			for _, a := range n.Attrs {
				writeStr(a.Name)
				writeStr(a.Value)
			}
			return true
		})
		e.fp = hex.EncodeToString(h.Sum(nil)[:16])
	})
	return e.fp
}

// CacheKey returns the canonical cache key for the request against a
// document with the given fingerprint. Every request field that can
// influence the response is folded in: the query's canonical string
// form, the profile's canonical serialization, the resolved K, the
// strategy, and the literal-rewrite / twig-access / access-path flags.
//
// resolvedPar is the *resolved* parallelism (Engine.ResolvedParallelism),
// not the request's raw Parallelism knob. Parallelism never changes the
// ranked answers, but it changes the response's Workers/Stats metadata,
// so it must be part of the key — and keying on the raw request value
// would be wrong in both directions: requests that resolve identically
// (0 and 1 on a small document) would miss needlessly, and a stored
// entry would go stale if the resolution threshold changed between
// requests (the resolved value is what actually ran).
func (req *Request) CacheKey(fingerprint string, resolvedPar int) string {
	k := req.K
	if k == 0 {
		k = 10
	}
	var sb strings.Builder
	sb.Grow(256)
	fmt.Fprintf(&sb, "doc=%s\x1fq=%s\x1fk=%d\x1fstrat=%s\x1flit=%t\x1ftwig=%t\x1faccess=%s\x1fpar=%d",
		fingerprint, req.Query.String(), k, req.Strategy, req.LiteralRewrite,
		req.TwigAccess, req.Access, resolvedPar)
	sb.WriteString("\x1fprof=")
	sb.WriteString(CanonicalProfile(req.Profile))
	if req.Thesaurus != nil && req.Thesaurus.Len() > 0 {
		w := req.ThesaurusWeight
		if w == 0 {
			w = 0.5
		}
		fmt.Fprintf(&sb, "\x1fth@%g=%s", w, canonicalThesaurus(req.Thesaurus))
	}
	return sb.String()
}

// CanonicalProfile serializes a profile deterministically: rules in
// declaration order with their priorities and weights, named partial
// orders sorted by name with their full edge sets, and the rank order.
// Two profiles with the same canonical form rank every answer list
// identically. A nil profile canonicalizes to "-".
func CanonicalProfile(p *profile.Profile) string {
	if p == nil {
		return "-"
	}
	var sb strings.Builder
	for _, sr := range p.SRs {
		fmt.Fprintf(&sb, "sr{%s;prio=%d;w=%g}", sr, sr.Priority, sr.Weight)
	}
	for _, v := range p.VORs {
		fmt.Fprintf(&sb, "vor{%s;prio=%d}", v, v.Priority)
	}
	for _, kor := range p.KORs {
		fmt.Fprintf(&sb, "kor{%s;prio=%d;w=%g}", kor, kor.Priority, kor.Weight)
	}
	names := make([]string, 0, len(p.Orders))
	for name := range p.Orders {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		po := p.Orders[name]
		vals := po.Values()
		sort.Strings(vals)
		fmt.Fprintf(&sb, "order{%s:", name)
		for _, a := range vals {
			for _, b := range vals {
				if a != b && po.Prefers(a, b) {
					fmt.Fprintf(&sb, "%s<%s;", a, b)
				}
			}
		}
		sb.WriteString("}")
	}
	fmt.Fprintf(&sb, "rank=%s", p.Rank)
	return sb.String()
}

// canonicalThesaurus serializes a thesaurus as sorted phrase → synonym
// lists (Phrases is already sorted; synonym order matters to expansion
// order, so it is preserved).
func canonicalThesaurus(t *text.Thesaurus) string {
	var sb strings.Builder
	for _, p := range t.Phrases() {
		fmt.Fprintf(&sb, "%s=%s;", p, strings.Join(t.Synonyms(p), ","))
	}
	return sb.String()
}
