package engine

import (
	"runtime"
	"testing"

	"repro/internal/plan"
	"repro/internal/tpq"
)

// TestCacheKeyResolvedParallelism pins the resolved-parallelism keying
// contract in both directions:
//
//   - requests whose parallelism resolves identically (raw 0 and raw 1
//     on a document below the auto threshold) share one key, so they
//     share one cache entry instead of missing needlessly;
//   - when the resolution *changes* — the threshold moves, or the raw
//     value differs materially — the key changes with it, so an entry
//     stored under the old resolution can never be served for an
//     execution that would run (and report) a different worker count.
func TestCacheKeyResolvedParallelism(t *testing.T) {
	// The resolver grants GOMAXPROCS workers above the threshold; on a
	// 1-CPU runner that is indistinguishable from sequential, so pin 4.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	e := newEngine(t)
	docNodes := e.Document().Len()
	q, err := tpq.Parse(`//car[price < 2000]`)
	if err != nil {
		t.Fatal(err)
	}
	fp := e.Fingerprint()
	key := func(rawPar, minNodes int) string {
		req := Request{Query: q, K: 3, Parallelism: rawPar, ParallelMinNodes: minNodes}
		return req.CacheKey(fp, e.ResolvedParallelism(&req))
	}

	// Below the threshold, auto (0) and explicit 1 both resolve to 1.
	aboveDoc := docNodes + 1
	if got, want := key(0, aboveDoc), key(1, aboveDoc); got != want {
		t.Errorf("identical resolutions got distinct keys:\n %s\n %s", got, want)
	}

	// Moving the threshold below the document flips auto to GOMAXPROCS:
	// the key must move too, or the sequential entry would be served for
	// a parallel execution (stale Workers/Stats metadata).
	if got, stale := key(0, 1), key(0, aboveDoc); got == stale {
		t.Errorf("threshold change did not change the key: %s", got)
	}
	// And the flipped key lands exactly on the explicit-GOMAXPROCS key:
	// same resolution, same entry.
	if got, want := key(0, 1), key(4, aboveDoc); got != want {
		t.Errorf("auto-above-threshold and explicit keys differ:\n %s\n %s", got, want)
	}

	// Materially different explicit values stay distinct.
	if key(1, aboveDoc) == key(2, aboveDoc) {
		t.Error("parallelism 1 and 2 share a key")
	}

	// Legacy resolution (minNodes -1, the pre-scheduler behavior) is
	// unconditional GOMAXPROCS — equivalent to auto-above-threshold.
	if got, want := key(0, -1), key(0, 1); got != want {
		t.Errorf("legacy and above-threshold auto keys differ:\n %s\n %s", got, want)
	}
	_ = plan.MaxParallelism // the server rejects values above this; no key exists for them
}

// TestCacheKeyEquivalenceAcrossThresholds executes the same auto
// request under two thresholds and checks the stored responses disagree
// exactly where the key disagrees — the end-to-end version of the
// keying contract: no stale entry can survive a threshold change.
func TestCacheKeyEquivalenceAcrossThresholds(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	e := newEngine(t)
	q, err := tpq.Parse(`//car[price < 2000]`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(minNodes int) *Response {
		resp, err := e.Search(Request{Query: q, K: 3, Parallelism: 0, ParallelMinNodes: minNodes})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	seq := run(e.Document().Len() + 1) // below threshold: sequential
	par := run(1)                      // above threshold: parallel

	if seq.Parallelism != 1 {
		t.Errorf("below-threshold resolved parallelism = %d, want 1", seq.Parallelism)
	}
	if par.Parallelism != 4 {
		t.Errorf("above-threshold resolved parallelism = %d, want 4", par.Parallelism)
	}
	// Identical ranked answers — parallelism never changes results…
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if seq.Results[i].Node != par.Results[i].Node {
			t.Errorf("result %d: node %v vs %v", i, seq.Results[i].Node, par.Results[i].Node)
		}
	}
	// …but distinct response metadata, hence the distinct keys.
	fp := e.Fingerprint()
	reqSeq := Request{Query: q, K: 3, Parallelism: 0, ParallelMinNodes: e.Document().Len() + 1}
	reqPar := Request{Query: q, K: 3, Parallelism: 0, ParallelMinNodes: 1}
	if reqSeq.CacheKey(fp, e.ResolvedParallelism(&reqSeq)) == reqPar.CacheKey(fp, e.ResolvedParallelism(&reqPar)) {
		t.Error("sequential and parallel executions share a cache key")
	}
}
