package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func xmarkEngine(t testing.TB, size int) *Engine {
	t.Helper()
	return New(xmark.GenerateSized(xmark.Config{Seed: 42}, size), text.Pipeline{})
}

// responseKey flattens the ranked answers into one comparable string:
// node IDs, paths and both score components, in order.
func responseKey(resp *Response) string {
	s := ""
	for _, r := range resp.Results {
		s += fmt.Sprintf("%d|%s|%g|%g;", r.Node, r.Path, r.S, r.K)
	}
	return s
}

// TestAccessPathsIdenticalResults: the scan and twigjoin access paths
// must return byte-identical ranked answers on the paper's Fig. 6/7
// workload and on structure-heavy queries, personalized and not.
func TestAccessPathsIdenticalResults(t *testing.T) {
	e := xmarkEngine(t, 101*1024)
	queries := []*tpq.Query{
		workload.Fig5Query(),
		tpq.MustParse(`//person[./address[./city and ./country] and .//business]`),
		tpq.MustParse(`//item[.//name]`),
		tpq.MustParse(`//open_auction//bidder//increase`),
	}
	for qi, q := range queries {
		for _, prof := range []int{0, 2} {
			req := Request{Query: q, K: 10}
			if prof > 0 {
				req.Profile = workload.Fig5Profile(prof)
			}
			req.Access = plan.AccessScan
			scan, err := e.Search(req)
			if err != nil {
				t.Fatalf("q%d scan: %v", qi, err)
			}
			req.Access = plan.AccessTwigJoin
			twig, err := e.Search(req)
			if err != nil {
				t.Fatalf("q%d twigjoin: %v", qi, err)
			}
			if responseKey(scan) != responseKey(twig) {
				t.Fatalf("q%d (kors=%d): results diverge\nscan: %s\ntwig: %s",
					qi, prof, responseKey(scan), responseKey(twig))
			}
			if scan.Access != plan.AccessScan || twig.Access != plan.AccessTwigJoin {
				t.Fatalf("resolved access = %s / %s", scan.Access, twig.Access)
			}
			if twig.TwigJoin == nil {
				t.Fatalf("q%d: twigjoin response missing join stats", qi)
			}
			if scan.TwigJoin != nil {
				t.Fatalf("q%d: scan response carries join stats", qi)
			}
		}
	}
}

// TestTwigJoinPlanShape: the twigjoin access path surfaces itself in the
// plan shape and the operator stats as a synthetic leading entry.
func TestTwigJoinPlanShape(t *testing.T) {
	e := xmarkEngine(t, 101*1024)
	resp, err := e.Search(Request{
		Query:  workload.Fig5Query(),
		Access: plan.AccessTwigJoin,
		K:      5,
		Timing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Stats) == 0 || resp.Stats[0].Kind() != "twigjoin" {
		t.Fatalf("stats = %+v: want a leading twigjoin entry", resp.Stats)
	}
	st := resp.Stats[0]
	if st.In < st.Out || st.Pruned != st.In-st.Out {
		t.Fatalf("twigjoin stats inconsistent: %+v", st)
	}
	// Inclusive wall times must stay monotone for the adjacent-difference
	// self-time breakdown: the chain entries include the join's time.
	for i := 1; i < len(resp.Stats); i++ {
		if resp.Stats[i].WallNS < resp.Stats[0].WallNS {
			t.Fatalf("chain op %d wall %d below join wall %d: breakdown would go negative",
				i, resp.Stats[i].WallNS, resp.Stats[0].WallNS)
		}
	}
}

// TestAccessRaceStress: concurrent twigjoin searches with parallel plan
// execution under -race, with a goroutine-leak gate.
func TestAccessRaceStress(t *testing.T) {
	e := xmarkEngine(t, 101*1024)
	q := workload.Fig5Query()
	prof := workload.Fig5Profile(2)
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				access := plan.AccessScan
				if (w+i)%2 == 0 {
					access = plan.AccessTwigJoin
				}
				if _, err := e.Search(Request{
					Query: q, Profile: prof, K: 10,
					Access: access, Parallelism: 1 + (i % 3),
				}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after stress",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
