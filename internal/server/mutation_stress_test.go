package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/xmark"
)

// TestMutationStress is the live-corpus race gate: concurrent searchers,
// mutators and /watch long-pollers hammer one server — with some search
// deadlines expiring mid-flight — and every 200 search response must be
// byte-identical (modulo volatile timing fields) to a reference
// execution against SOME reachable corpus state. The corpus only ever
// holds known document versions, so the reachable states are
// enumerable up front; a torn read — a response mixing two snapshots,
// or a cache entry surviving its document's replacement — falls outside
// the allowed set and fails. A search admitted before a swap completes
// is expected to answer from the old snapshot: that old-state answer is
// in the set by construction. Run under -race; that is the point.
func TestMutationStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}

	fluxA := xmark.GenerateSized(xmark.Config{Seed: 11}, 16*1024).XMLString()
	fluxB := xmark.GenerateSized(xmark.Config{Seed: 12}, 16*1024).XMLString()
	const ephemXML = `<dealer><car><description>ephemeral good condition spare</description><price>700</price></car></dealer>`

	s := New(Config{CacheSize: 32})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.AddXML("stable", carsXML); err != nil {
		t.Fatal(err)
	}
	if err := s.AddXML("flux", fluxA); err != nil {
		t.Fatal(err)
	}
	if err := s.AddXML("ephem", ephemXML); err != nil {
		t.Fatal(err)
	}

	probes := []SearchRequest{
		{Doc: "stable", Query: carsQuery, Profile: carsProfile, K: 3},
		{Doc: "flux", Keywords: "the", K: 5},
		{Doc: "ephem", Keywords: "good", K: 3},
		{Doc: "*", Keywords: "good condition", K: 4},
	}

	// Enumerate the reachable corpus states and collect, per probe, the
	// set of allowed normalized payloads from fresh reference servers.
	type state struct {
		flux  string
		ephem bool
	}
	states := []state{
		{fluxA, true}, {fluxA, false}, {fluxB, true}, {fluxB, false},
	}
	allowed := make([]map[string]bool, len(probes))
	for i := range allowed {
		allowed[i] = make(map[string]bool)
	}
	for _, st := range states {
		ref := New(Config{})
		if err := ref.AddXML("stable", carsXML); err != nil {
			t.Fatal(err)
		}
		if err := ref.AddXML("flux", st.flux); err != nil {
			t.Fatal(err)
		}
		if st.ephem {
			if err := ref.AddXML("ephem", ephemXML); err != nil {
				t.Fatal(err)
			}
		}
		rts := httptest.NewServer(ref.Handler())
		for i, p := range probes {
			p.NoCache = true
			status, _, body := post(t, rts, "/search", p)
			switch {
			case status == http.StatusOK:
				allowed[i][string(normalizePayload(t, body))] = true
			case status == http.StatusNotFound && p.Doc == "ephem" && !st.ephem:
				// deleted-state probe: 404 is the allowed answer
			default:
				t.Fatalf("reference state %+v probe %d: status %d, body %s", st, i, status, body)
			}
		}
		rts.Close()
		ref.Close()
	}

	before := runtime.NumGoroutine()
	stop := make(chan struct{})
	errs := make(chan error, 256)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	var wg sync.WaitGroup

	// Mutators: one flips flux between its two versions, one cycles
	// ephem through put/delete.
	const mutations = 40
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < mutations; i++ {
			src := fluxA
			if i%2 == 0 {
				src = fluxB
			}
			if status, body := putDoc(t, ts, "flux", src); status != http.StatusOK {
				report(fmt.Errorf("flux PUT %d: status %d body %s", i, status, body))
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < mutations; i++ {
			if i%2 == 0 {
				if status, body := deleteDoc(t, ts, "ephem"); status != http.StatusOK {
					report(fmt.Errorf("ephem DELETE %d: status %d body %s", i, status, body))
					return
				}
			} else {
				if status, body := putDoc(t, ts, "ephem", ephemXML); status != http.StatusCreated {
					report(fmt.Errorf("ephem PUT %d: status %d body %s", i, status, body))
					return
				}
			}
		}
	}()

	// Watch pollers: follow the feed with short long-polls; generations
	// must be monotone along each poller's cursor.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, wr := getWatch(t, fmt.Sprintf("%s/watch?since=%d&timeout_ms=40", ts.URL, cursor))
				if status != http.StatusOK {
					report(fmt.Errorf("watcher %d: status %d", p, status))
					return
				}
				if wr.Gen < cursor {
					report(fmt.Errorf("watcher %d: generation went backwards %d -> %d", p, cursor, wr.Gen))
					return
				}
				for _, ev := range wr.Events {
					if ev.Gen <= cursor && !wr.Resync {
						report(fmt.Errorf("watcher %d: replayed event gen %d at cursor %d without resync", p, ev.Gen, cursor))
						return
					}
				}
				cursor = wr.Gen
			}
		}(p)
	}

	// Searchers: mixed probes, every 6th request with a 1ms deadline so
	// contexts expire mid-flight against snapshots being swapped under
	// them.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pi := (w + i) % len(probes)
				req := probes[pi]
				timed := i%6 == 0 && req.Doc == "flux"
				if timed {
					req.TimeoutMS = 1
				}
				var buf bytes.Buffer
				json.NewEncoder(&buf).Encode(&req)
				resp, err := ts.Client().Post(ts.URL+"/search", "application/json", &buf)
				if err != nil {
					report(fmt.Errorf("searcher %d req %d: %v", w, i, err))
					return
				}
				var body bytes.Buffer
				body.ReadFrom(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					got := string(normalizePayload(t, body.Bytes()))
					if !allowed[pi][got] {
						report(fmt.Errorf("searcher %d req %d (probe %d): response matches NO reachable corpus state (torn read?):\n%s",
							w, i, pi, got))
						return
					}
				case http.StatusNotFound:
					if req.Doc != "ephem" {
						report(fmt.Errorf("searcher %d req %d (probe %d): unexpected 404: %s", w, i, pi, body.Bytes()))
						return
					}
				case http.StatusGatewayTimeout:
					if !timed {
						report(fmt.Errorf("searcher %d req %d (probe %d): unexpected timeout", w, i, pi))
						return
					}
				default:
					report(fmt.Errorf("searcher %d req %d (probe %d): status %d body %s",
						w, i, pi, resp.StatusCode, body.Bytes()))
					return
				}
			}
		}(w)
	}

	// Run until both mutators finish their quota, then stop the loops.
	muteDone := make(chan struct{})
	go func() {
		// 40 flux re-puts + 20 ephem re-puts; 20 ephem deletes. (Seed
		// AddXML calls don't count: only HTTP mutations are recorded.)
		defer close(muteDone)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			st := s.Snapshot()
			if st.Mutation.Puts >= mutations+mutations/2 && st.Mutation.Deletes >= mutations/2 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		report(fmt.Errorf("mutators did not reach their quota in 60s"))
	}()
	<-muteDone
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Accounting: the corpus generation equals applied mutations (3
	// seed adds + the two mutators' quotas), and the invalidation
	// counter moved.
	st := s.Snapshot()
	wantGen := uint64(3 + mutations + mutations)
	if st.Generation != wantGen {
		t.Errorf("generation = %d, want %d", st.Generation, wantGen)
	}
	if s.Cache().Stats().Invalidations == 0 {
		t.Error("stress run recorded no cache invalidations")
	}
	if st.WatchSubscribers != 0 {
		t.Errorf("watch subscribers = %d after drain, want 0", st.WatchSubscribers)
	}

	// Goroutine-leak check, as in TestServerStress. The watch pollers go
	// through http.DefaultClient (getWatch), so drop its idle
	// connections too.
	if tr, ok := ts.Client().Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before stress, %d after settle\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
