// Live-corpus tests: the PUT/DELETE /docs/{name} contract, the
// differential "mutate then query == rebuild then query" equivalence
// suite, and the cache-precision properties (targeted invalidation
// never over- or under-evicts).
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/xmark"
)

// putDoc PUTs raw XML under /docs/{name}.
func putDoc(t testing.TB, ts *httptest.Server, name, src string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/docs/"+name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("PUT /docs/%s: %v", name, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// deleteDoc DELETEs /docs/{name}.
func deleteDoc(t testing.TB, ts *httptest.Server, name string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/docs/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("DELETE /docs/%s: %v", name, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func decodeMutate(t testing.TB, data []byte) MutateResponse {
	t.Helper()
	var mr MutateResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatalf("bad mutate response %q: %v", data, err)
	}
	return mr
}

// smallXMark returns a compact generated XMark document's XML, small
// enough to rebuild a reference server per mutation step.
func smallXMark(seed int64) string {
	return xmark.GenerateSized(xmark.Config{Seed: seed}, 24*1024).XMLString()
}

func TestPutDeleteDocContract(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	baseGen := s.Snapshot().Generation
	if baseGen != 2 {
		t.Fatalf("generation after 2 adds = %d, want 2", baseGen)
	}

	// Create: 201, generation bumps, node count reported.
	status, body := putDoc(t, ts, "lot", carsXML)
	if status != http.StatusCreated {
		t.Fatalf("PUT new doc status = %d, body %s", status, body)
	}
	mr := decodeMutate(t, body)
	if !mr.Created || mr.Op != "put" || mr.Gen != baseGen+1 || mr.Nodes == 0 {
		t.Fatalf("create response = %+v", mr)
	}

	// Replace: 200, fresh generation.
	status, body = putDoc(t, ts, "lot", smallXMark(3))
	if status != http.StatusOK {
		t.Fatalf("PUT replace status = %d, body %s", status, body)
	}
	if mr = decodeMutate(t, body); mr.Created || mr.Gen != baseGen+2 {
		t.Fatalf("replace response = %+v", mr)
	}

	// The new document is immediately searchable.
	status, _, data := post(t, ts, "/search", SearchRequest{Doc: "lot", Keywords: "the", K: 3})
	if status != http.StatusOK {
		t.Fatalf("search replaced doc = %d, body %s", status, data)
	}

	// GET /docs lists it with the live generation.
	status, body = get(t, ts, "/docs")
	var dr DocsResponse
	if status != http.StatusOK || json.Unmarshal(body, &dr) != nil {
		t.Fatalf("GET /docs = %d, body %s", status, body)
	}
	if dr.Gen != baseGen+2 || !contains(dr.Docs, "lot") || len(dr.Docs) != 3 {
		t.Fatalf("GET /docs = %+v, want 3 docs incl. lot at gen %d", dr, baseGen+2)
	}

	// Delete: 200 once, 404 after.
	if status, body = deleteDoc(t, ts, "lot"); status != http.StatusOK {
		t.Fatalf("DELETE status = %d, body %s", status, body)
	}
	if mr = decodeMutate(t, body); mr.Op != "delete" || mr.Gen != baseGen+3 {
		t.Fatalf("delete response = %+v", mr)
	}
	if status, _ = deleteDoc(t, ts, "lot"); status != http.StatusNotFound {
		t.Fatalf("re-DELETE status = %d, want 404", status)
	}
	if status, _, _ = post(t, ts, "/search", SearchRequest{Doc: "lot", Keywords: "the"}); status != http.StatusNotFound {
		t.Fatalf("search deleted doc = %d, want 404", status)
	}

	// Names the API cannot address are rejected before any state change.
	for _, name := range []string{"*", "a%2Fb"} {
		if status, body = putDoc(t, ts, name, carsXML); status != http.StatusBadRequest {
			t.Errorf("PUT %q status = %d (%s), want 400", name, status, body)
		}
	}
	if got := s.Snapshot().Generation; got != baseGen+3 {
		t.Fatalf("rejected mutations moved the generation: %d, want %d", got, baseGen+3)
	}

	st := s.Snapshot()
	if st.Mutation.Puts != 2 || st.Mutation.Deletes != 1 || st.Mutation.Rejected < 3 {
		t.Fatalf("mutation stats = %+v", st.Mutation)
	}
}

func TestPutDocRejectsMalformedAndOversized(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxDocBytes: 2048})
	gen := s.Snapshot().Generation
	warm := func() []byte {
		_, _, data := post(t, ts, "/search", SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile})
		return stablePart(t, data)
	}
	before := warm()

	// Malformed XML: 400 with a parse diagnostic, nothing mutated.
	status, body := putDoc(t, ts, "cars", "<open><unclosed>")
	if status != http.StatusBadRequest || !bytes.Contains(body, []byte("parse")) {
		t.Fatalf("malformed PUT = %d, body %s", status, body)
	}
	// Oversized body: 413.
	if status, body = putDoc(t, ts, "big", "<a>"+strings.Repeat("x", 4096)+"</a>"); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d, body %s", status, body)
	}

	if got := s.Snapshot().Generation; got != gen {
		t.Fatalf("rejected PUTs moved the generation %d -> %d", gen, got)
	}
	// The cached entry for cars survived (rejections invalidate nothing)
	// and still serves identical bytes.
	if after := warm(); !bytes.Equal(before, after) {
		t.Fatalf("rejected PUT changed served bytes:\n%s\nvs\n%s", before, after)
	}
}

// TestMutationCachePrecision is the satellite property test: a mutation
// drops exactly the entries that depended on the mutated document —
// single-document entries for that name plus every fan-out entry.
// Entries for untouched documents keep serving hits, and a re-PUT of
// byte-identical content still invalidates (generation stamping: the
// old key space is unreachable, so stale bytes cannot be served).
func TestMutationCachePrecision(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	type probe struct {
		name string
		req  SearchRequest
	}
	probes := []probe{
		{"cars", SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile}},
		{"xmark", SearchRequest{Doc: "xmark", Keywords: "United States", K: 3}},
		{"fanout", SearchRequest{Doc: "*", Keywords: "good condition", K: 3}},
	}
	// run returns (X-Cache header, raw payload bytes).
	run := func(p probe) (string, []byte) {
		status, hdr, data := post(t, ts, "/search", p.req)
		if status != http.StatusOK {
			t.Fatalf("probe %s: status %d, body %s", p.name, status, data)
		}
		return hdr.Get("X-Cache"), data
	}
	// want holds the cached body (byte-identical across hits); wantNorm
	// the normalized payload (comparable across distinct executions).
	want, wantNorm := make(map[string][]byte), make(map[string][]byte)
	for _, p := range probes {
		run(p) // warm
		xc, body := run(p)
		if xc != "HIT" {
			t.Fatalf("probe %s not cached after warmup: X-Cache=%s", p.name, xc)
		}
		want[p.name] = stablePart(t, body)
		wantNorm[p.name] = normalizePayload(t, body)
	}

	// Mutate an unrelated document: only the fan-out entry may drop.
	putDoc(t, ts, "other", smallXMark(5))
	for _, p := range probes {
		xc, body := run(p)
		switch p.name {
		case "fanout":
			if xc != "MISS" {
				t.Errorf("fan-out entry survived an unrelated PUT (X-Cache=%s); fan-out results depend on every document", xc)
			}
		default:
			if xc != "HIT" {
				t.Errorf("probe %s over-invalidated by an unrelated PUT (X-Cache=%s)", p.name, xc)
			}
			if !bytes.Equal(stablePart(t, body), want[p.name]) {
				t.Errorf("probe %s bytes changed on a HIT", p.name)
			}
		}
	}

	inv := s.Cache().Stats().Invalidations
	if inv == 0 {
		t.Fatalf("no invalidations counted after a PUT")
	}

	// Re-PUT cars with byte-identical content: same content hash, new
	// generation. The cars entry must MISS (no stale bytes), xmark must
	// still HIT (no over-invalidation).
	putDoc(t, ts, "cars", carsXML)
	xc, body := run(probes[0])
	if xc != "MISS" {
		t.Errorf("cars entry served X-Cache=%s after an identical-content re-PUT; generation stamping must retire the old key space", xc)
	}
	if got := normalizePayload(t, body); !bytes.Equal(got, wantNorm["cars"]) {
		t.Errorf("identical-content re-PUT changed cars results:\n%s\nvs\n%s", got, wantNorm["cars"])
	}
	if xc, _ = run(probes[1]); xc != "HIT" {
		t.Errorf("xmark entry dropped by a cars PUT (X-Cache=%s)", xc)
	}

	// Delete the unrelated doc: untouched single-doc entries survive.
	deleteDoc(t, ts, "other")
	if xc, _ = run(probes[1]); xc != "HIT" {
		t.Errorf("xmark entry dropped by an unrelated DELETE (X-Cache=%s)", xc)
	}
	if got := s.Cache().Stats().Invalidations; got <= inv {
		t.Errorf("invalidations did not grow across mutations: %d -> %d", inv, got)
	}
}

// TestMutateThenQueryEquivalence is the differential suite: a server
// that *mutated* its way to a corpus state must serve byte-identical
// /search responses to a server *rebuilt from scratch* at that state —
// on both the scan and twigjoin access paths, for single-document and
// fan-out queries, across a randomized PUT/DELETE sequence over
// generated XMark documents. Volatile timing fields are normalized;
// everything else (results, scores, paths, plan shape, workers) must
// match exactly.
func TestMutateThenQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential equivalence suite is not -short")
	}
	const seed = 20260809
	rng := rand.New(rand.NewSource(seed))

	cfg := Config{}
	live := New(cfg)
	defer live.Close()
	ts := httptest.NewServer(live.Handler())
	defer ts.Close()

	// sources is the doc-content pool; state tracks the live corpus.
	sources := []string{carsXML, smallXMark(1), smallXMark(2), smallXMark(3)}
	names := []string{"d0", "d1", "d2"}
	state := map[string]string{}
	var order []string // insertion order of live names

	apply := func(op, name, src string) {
		if op == "put" {
			status, body := putDoc(t, ts, name, src)
			if status != http.StatusOK && status != http.StatusCreated {
				t.Fatalf("PUT %s: %d %s", name, status, body)
			}
			if _, ok := state[name]; !ok {
				order = append(order, name)
			}
			state[name] = src
			return
		}
		status, _ := deleteDoc(t, ts, name)
		_, existed := state[name]
		if existed != (status == http.StatusOK) {
			t.Fatalf("DELETE %s: status %d, existed %v", name, status, existed)
		}
		delete(state, name)
		for i, n := range order {
			if n == name {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
	}

	queries := []SearchRequest{
		{Doc: "*", Keywords: "United States", K: 5, Profile: personProfile(2)},
		{Doc: "*", Keywords: "good condition", K: 4},
	}
	perDoc := func(name string) []SearchRequest {
		return []SearchRequest{
			{Doc: name, Keywords: "the", K: 5, Access: "scan"},
			{Doc: name, Keywords: "the", K: 5, Access: "twigjoin"},
			{Doc: name, Query: `//person(*)[.//business[. ftcontains "Yes"]]`, K: 3, Access: "twigjoin"},
		}
	}

	check := func(step int) {
		if len(state) == 0 {
			return
		}
		// Reference: a fresh server built from scratch at this state.
		ref := New(cfg)
		defer ref.Close()
		for _, n := range order {
			if err := ref.AddXML(n, state[n]); err != nil {
				t.Fatal(err)
			}
		}
		rts := httptest.NewServer(ref.Handler())
		defer rts.Close()

		reqs := append([]SearchRequest{}, queries...)
		for _, n := range order {
			reqs = append(reqs, perDoc(n)...)
		}
		for _, req := range reqs {
			s1, _, d1 := post(t, ts, "/search", req)
			s2, _, d2 := post(t, rts, "/search", req)
			if s1 != s2 {
				t.Fatalf("step %d: status diverged (%d vs %d) for %+v: %s vs %s", step, s1, s2, req, d1, d2)
			}
			if s1 != http.StatusOK {
				continue
			}
			n1, n2 := normalizePayload(t, d1), normalizePayload(t, d2)
			if !bytes.Equal(n1, n2) {
				t.Fatalf("step %d: mutated server diverged from rebuilt server for %+v:\nmutated: %s\nrebuilt: %s",
					step, req, n1, n2)
			}
		}
	}

	// Seed state, then a randomized walk.
	apply("put", "d0", sources[0])
	check(0)
	for step := 1; step <= 8; step++ {
		name := names[rng.Intn(len(names))]
		if _, ok := state[name]; ok && rng.Intn(3) == 0 {
			apply("delete", name, "")
		} else {
			apply("put", name, sources[rng.Intn(len(sources))])
		}
		check(step)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
