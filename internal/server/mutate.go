// Document mutation endpoints: the serving layer's live-corpus surface.
//
//	PUT    /docs/{name} — index the body off the request path, then swap
//	                      the new entry into a fresh corpus snapshot
//	DELETE /docs/{name} — remove a document (404 when absent)
//	GET    /docs        — list registered names + corpus generation
//
// The expensive half of a put (parse, index build, content hashing)
// happens before any lock, so concurrent searches — and other mutations
// — never stall behind it. The commit path (snapshot swap, targeted
// cache invalidation, watch publish) runs under one server-wide
// mutation lock so /watch observes mutations in generation order and an
// invalidation can never interleave into the middle of another
// mutation's publish. A request that fails validation or parsing
// changes nothing: no snapshot swap, no cache eviction, no watch event.
package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/corpus"
	"repro/internal/xmldoc"
)

// MutateResponse is the PUT/DELETE /docs/{name} payload.
type MutateResponse struct {
	Doc string `json:"doc"`
	// Op is "put" or "delete".
	Op string `json:"op"`
	// Gen is the corpus generation the mutation produced.
	Gen uint64 `json:"gen"`
	// Created is true when a put introduced a new name (HTTP 201).
	Created bool `json:"created,omitempty"`
	// Nodes is the indexed document's node count (puts only).
	Nodes int `json:"nodes,omitempty"`
	// Invalidated is the number of result-cache entries dropped: entries
	// tagged with this document plus all fan-out entries. Entries for
	// untouched documents survive.
	Invalidated int `json:"invalidated"`
}

// DocsResponse is the GET /docs payload.
type DocsResponse struct {
	Docs []string `json:"docs"`
	Gen  uint64   `json:"gen"`
}

// validateDocName rejects names the rest of the API cannot address:
// "" and "*" mean fan-out in /search, and tag TagAll in the cache.
func validateDocName(name string) error {
	if name == "" || name == "*" {
		return fmt.Errorf("invalid document name %q", name)
	}
	if strings.ContainsAny(name, "/\x00") {
		return fmt.Errorf("invalid document name %q: must not contain '/'", name)
	}
	return nil
}

// applyPut commits a prepared document and runs the post-swap
// bookkeeping under the mutation lock: targeted invalidation of the
// mutated name's cache entries (plus fan-out entries), then the watch
// publish — so subscribers woken by the event can never re-read stale
// cached bytes for the name it announces.
func (s *Server) applyPut(name string, p *corpus.Prepared) (corpus.Mutation, int) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	mut := s.reg.Commit(name, p)
	dropped := s.cache.Invalidate(name)
	s.watch.publish(WatchEvent{Gen: mut.Gen, Op: "put", Doc: name})
	return mut, dropped
}

// applyDelete is applyPut's delete twin; ok is false when the name was
// not registered (nothing changed, nothing published).
func (s *Server) applyDelete(name string) (corpus.Mutation, int, bool) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	mut, ok := s.reg.Delete(name)
	if !ok {
		return mut, 0, false
	}
	dropped := s.cache.Invalidate(name)
	s.watch.publish(WatchEvent{Gen: mut.Gen, Op: "delete", Doc: name})
	return mut, dropped, true
}

func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	s.stats.docsRequests.Add(1)
	done := s.metrics.startRequest("docs")
	defer done()

	name := r.PathValue("name")
	if err := validateDocName(name); err != nil {
		s.rejectMutation(w, "put", http.StatusBadRequest, "parse", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxDocBytes)
	src, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rejectMutation(w, "put", http.StatusRequestEntityTooLarge, "parse",
				fmt.Errorf("document body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		s.rejectMutation(w, "put", http.StatusBadRequest, "parse",
			fmt.Errorf("reading document body: %w", err))
		return
	}
	doc, err := xmldoc.ParseString(string(src))
	if err != nil {
		// A malformed document mutates nothing: the 400 carries the parse
		// diagnostic, and neither the snapshot, the cache, nor /watch see
		// any change (pinned by FuzzDocUpdate).
		s.rejectMutation(w, "put", http.StatusBadRequest, "parse", err)
		return
	}

	// Index + fingerprint off-lock; only the snapshot swap serializes.
	prepared := s.reg.Prepare(doc)
	mut, dropped := s.applyPut(name, prepared)
	s.recordMutation("put", mut.Created)

	status := http.StatusOK
	if mut.Created {
		status = http.StatusCreated
	}
	s.writeJSON(w, status, &MutateResponse{
		Doc: name, Op: "put", Gen: mut.Gen, Created: mut.Created,
		Nodes: mut.Nodes, Invalidated: dropped,
	})
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	s.stats.docsRequests.Add(1)
	done := s.metrics.startRequest("docs")
	defer done()

	name := r.PathValue("name")
	if err := validateDocName(name); err != nil {
		s.rejectMutation(w, "delete", http.StatusBadRequest, "parse", err)
		return
	}
	mut, dropped, ok := s.applyDelete(name)
	if !ok {
		s.rejectMutation(w, "delete", http.StatusNotFound, "not_found",
			fmt.Errorf("unknown document %q", name))
		return
	}
	s.recordMutation("delete", false)
	s.writeJSON(w, http.StatusOK, &MutateResponse{
		Doc: name, Op: "delete", Gen: mut.Gen, Invalidated: dropped,
	})
}

func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	s.stats.docsRequests.Add(1)
	done := s.metrics.startRequest("docs")
	defer done()
	snap := s.reg.Snapshot()
	names := snap.Names()
	if names == nil {
		names = []string{}
	}
	s.writeJSON(w, http.StatusOK, &DocsResponse{Docs: names, Gen: snap.Generation()})
}

// recordMutation counts an applied mutation in /statsz and /metrics.
func (s *Server) recordMutation(op string, created bool) {
	switch op {
	case "put":
		s.stats.mutPuts.Add(1)
	case "delete":
		s.stats.mutDeletes.Add(1)
	}
	outcome := "replaced"
	if op == "delete" {
		outcome = "applied"
	} else if created {
		outcome = "created"
	}
	s.metrics.mutations[[2]string{op, outcome}].Inc()
}

// rejectMutation reports a refused mutation: the error response plus
// the {op, outcome="rejected"} counter. Nothing else changed.
func (s *Server) rejectMutation(w http.ResponseWriter, op string, status int, kind string, err error) {
	s.stats.mutRejected.Add(1)
	s.metrics.mutations[[2]string{op, "rejected"}].Inc()
	s.writeError(w, status, kind, err)
}
