// The /watch change feed: a long-poll hub over corpus mutations.
//
// Clients that hold standing personalized queries poll
// GET /watch?since=<gen> and re-run their queries when events arrive.
// The hub keeps a bounded in-order buffer of recent mutations; a client
// whose since-cursor has fallen off the buffer gets resync=true and is
// expected to re-run everything rather than replay a gap. Publishes are
// broadcast by closing (and replacing) a notification channel, so a
// waiting poller costs one parked goroutine and no timers until its
// own deadline fires.
package server

import (
	"net/http"
	"strconv"
	"time"
)

// WatchEvent is one corpus mutation on the wire.
type WatchEvent struct {
	// Gen is the corpus generation the mutation produced; generations
	// are monotone, so clients use the latest seen as their next cursor.
	Gen uint64 `json:"gen"`
	// Op is "put" or "delete".
	Op string `json:"op"`
	// Doc is the mutated document's name.
	Doc string `json:"doc"`
}

// WatchResponse is the GET /watch payload.
type WatchResponse struct {
	// Gen is the corpus generation at response time — the client's next
	// since cursor.
	Gen uint64 `json:"gen"`
	// Events lists the mutations after the request's since cursor, in
	// generation order. Empty on a long-poll timeout.
	Events []WatchEvent `json:"events"`
	// Resync is true when the since cursor predates the hub's retained
	// history: events were dropped, and the client must re-run its
	// standing queries instead of replaying Events as a complete delta.
	Resync bool `json:"resync,omitempty"`
}

// watchHub buffers recent mutations and wakes long-pollers.
type watchHub struct {
	capacity int

	// mu guards everything below. Publishes happen under the server's
	// mutation lock, so events arrive in strictly increasing generation
	// order.
	mu     chan struct{} // 1-buffered semaphore: Lock = receive, Unlock = send
	events []WatchEvent
	gen    uint64        // latest published generation
	notify chan struct{} // closed and replaced on each publish
}

func newWatchHub(capacity int) *watchHub {
	if capacity < 1 {
		capacity = 256
	}
	h := &watchHub{
		capacity: capacity,
		mu:       make(chan struct{}, 1),
		notify:   make(chan struct{}),
	}
	h.mu <- struct{}{}
	return h
}

func (h *watchHub) lock()   { <-h.mu }
func (h *watchHub) unlock() { h.mu <- struct{}{} }

// publish appends a mutation and wakes every waiting poller.
func (h *watchHub) publish(ev WatchEvent) {
	h.lock()
	h.gen = ev.Gen
	h.events = append(h.events, ev)
	if len(h.events) > h.capacity {
		h.events = append(h.events[:0], h.events[len(h.events)-h.capacity:]...)
	}
	close(h.notify)
	h.notify = make(chan struct{})
	h.unlock()
}

// since returns the events after the given cursor, the current
// generation, and whether history before the cursor was dropped.
func (h *watchHub) since(gen uint64) (evs []WatchEvent, latest uint64, resync bool) {
	h.lock()
	defer h.unlock()
	latest = h.gen
	if gen > latest {
		// A cursor from the future — e.g. a client resuming against a
		// restarted server whose generation counter reset — can never be
		// satisfied by waiting: no publish will ever cover the gap below
		// it. Tell the client to resync immediately instead of parking
		// the poll until timeout (regression: TestWatchFutureCursor).
		return nil, latest, true
	}
	if gen == latest {
		return nil, latest, false
	}
	// Something changed past the cursor. If the oldest retained event is
	// not the cursor's immediate successor, the buffer no longer covers
	// the gap — the client must resync.
	if len(h.events) == 0 || h.events[0].Gen > gen+1 {
		resync = true
	}
	for _, ev := range h.events {
		if ev.Gen > gen {
			evs = append(evs, ev)
		}
	}
	return evs, latest, resync
}

// wait returns the channel the next publish closes.
func (h *watchHub) wait() <-chan struct{} {
	h.lock()
	ch := h.notify
	h.unlock()
	return ch
}

// maxWatchWait bounds a long poll regardless of the requested
// timeout_ms, so an idle corpus cannot pin handler goroutines forever.
const maxWatchWait = 55 * time.Second

// handleWatch serves the long poll. ?since=<gen> sets the cursor
// (default 0: everything retained); ?timeout_ms bounds the wait
// (default 30s, capped at maxWatchWait). A poll with no changes returns
// 200 with empty events — clients distinguish "nothing happened" from
// transport errors by status.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	s.stats.watchRequests.Add(1)
	done := s.metrics.startRequest("watch")
	defer done()

	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "parse", err)
			return
		}
		since = v
	}
	wait := 30 * time.Second
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, "parse", errTimeoutMS(raw))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxWatchWait {
		wait = maxWatchWait
	}

	s.stats.watchSubscribers.Add(1)
	s.metrics.watchSubscribers.Add(1)
	defer func() {
		s.stats.watchSubscribers.Add(-1)
		s.metrics.watchSubscribers.Add(-1)
	}()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		// Snapshot the notify channel BEFORE reading the cursor state, so
		// a publish landing between the read and the wait still wakes us.
		notify := s.watch.wait()
		evs, latest, resync := s.watch.since(since)
		if len(evs) > 0 || resync {
			s.writeJSON(w, http.StatusOK, &WatchResponse{Gen: latest, Events: evs, Resync: resync})
			return
		}
		select {
		case <-notify:
			continue
		case <-timer.C:
			s.writeJSON(w, http.StatusOK, &WatchResponse{Gen: latest, Events: []WatchEvent{}})
			return
		case <-r.Context().Done():
			// Client gone: count the cancel; the write is best-effort.
			s.stats.canceled.Add(1)
			s.writeError(w, 499, "canceled", r.Context().Err())
			return
		}
	}
}

type errTimeoutMS string

func (e errTimeoutMS) Error() string { return "bad timeout_ms " + strconv.Quote(string(e)) }
