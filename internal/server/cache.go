// Result caching for the serving layer: a fixed-capacity LRU with
// single-flight admission.
//
// Personalization makes caching unusually valuable: every profile
// rewrites every query into a flock, so the same (document, query,
// profile, options) tuple re-executes the same multi-operator plan on
// every repeat — and personalized home-page-style queries repeat a lot.
// The cache is keyed by engine.Request.CacheKey (document fingerprint +
// canonical query + canonical profile + resolved options), so a hit is
// guaranteed byte-identical to a cold execution.
//
// Single-flight: when a thundering herd of identical requests arrives,
// exactly one (the leader) executes; the rest (followers) block on the
// leader's completion and share its result. A leader's *error* is never
// shared — a follower whose leader failed (e.g. the leader's own
// deadline expired first) retries and may become the next leader, so a
// follower with a healthy context is never poisoned by a sick one.
package server

import (
	"container/list"
	"context"
	"sync"
)

// Outcome says how a ResultCache.Do call obtained its value.
type Outcome uint8

const (
	// Miss: this call executed the fill function (it was the leader).
	Miss Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Coalesced: an in-flight leader's execution was shared.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "miss"
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	// Invalidations counts entries dropped by Invalidate — targeted
	// eviction after a document mutation, as opposed to LRU pressure.
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
}

// TagAll marks an entry as depending on every document (fan-out
// searches): Invalidate for any tag also drops entries tagged TagAll.
const TagAll = "*"

type cacheEntry struct {
	key string
	val any
	// tags name the documents this entry's result depends on; a
	// mutation of any of them invalidates the entry. Nil entries are
	// untaggable (legacy Do path) and only age out by LRU.
	tags []string
}

// flight is one in-progress fill: followers wait on done, then read
// val/err (the close of done publishes them).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// ResultCache is the LRU + single-flight combination. Values are opaque
// (the serving layer stores marshaled response payloads; the library
// layer stores *engine.Response) and MUST be treated as immutable once
// stored — hits share the stored value.
type ResultCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	flight map[string]*flight
	// tagged is the reverse tag index: tag -> set of resident keys. It
	// makes Invalidate O(entries dropped), not O(cache size).
	tagged map[string]map[string]struct{}

	hits, misses, coalesced, evictions, invalidations int64
}

// NewResultCache returns a cache holding up to capacity entries
// (minimum 1).
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{
		cap:    capacity,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
		flight: make(map[string]*flight),
		tagged: make(map[string]map[string]struct{}),
	}
}

// Do returns the cached value for key, or executes fill (once across
// all concurrent callers of the same key) and caches its result with
// no tags (the entry only ages out by LRU; see DoTagged).
// Errors are returned to the leader and any followers already waiting,
// but never cached. A follower abandons the wait when ctx is done and
// returns ctx's error.
func (c *ResultCache) Do(ctx context.Context, key string, fill func() (any, error)) (any, Outcome, error) {
	return c.DoTagged(ctx, key, nil, fill)
}

// DoTagged is Do with document tags: a successfully filled entry is
// registered under each tag, and a later Invalidate of any of those
// tags (or of any tag at all, for entries tagged TagAll) drops it.
func (c *ResultCache) DoTagged(ctx context.Context, key string, tags []string, fill func() (any, error)) (any, Outcome, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*cacheEntry).val
			c.hits++
			c.mu.Unlock()
			return v, Hit, nil
		}
		if fl, ok := c.flight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err == nil {
					return fl.val, Coalesced, nil
				}
				// The leader failed. Its error may be all about the
				// leader (its deadline, its disconnect), so retry with
				// our own context rather than inherit it.
				if ctx.Err() != nil {
					return nil, Coalesced, ctx.Err()
				}
				continue
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		c.flight[key] = fl
		c.misses++
		c.mu.Unlock()

		val, err := fill()

		c.mu.Lock()
		delete(c.flight, key)
		if err == nil {
			c.putLocked(key, val, tags)
		}
		c.mu.Unlock()
		fl.val, fl.err = val, err
		close(fl.done)
		return val, Miss, err
	}
}

// Get returns the cached value for key without filling.
func (c *ResultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).val, true
}

// putLocked inserts or refreshes key; callers hold c.mu.
func (c *ResultCache) putLocked(key string, val any, tags []string) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.untagLocked(e)
		e.val = val
		e.tags = tags
		c.tagLocked(e)
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, val: val, tags: tags}
	c.items[key] = c.ll.PushFront(e)
	c.tagLocked(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		victim := back.Value.(*cacheEntry)
		c.untagLocked(victim)
		delete(c.items, victim.key)
		c.evictions++
	}
}

// tagLocked registers e under each of its tags; callers hold c.mu.
func (c *ResultCache) tagLocked(e *cacheEntry) {
	for _, t := range e.tags {
		set, ok := c.tagged[t]
		if !ok {
			set = make(map[string]struct{})
			c.tagged[t] = set
		}
		set[e.key] = struct{}{}
	}
}

// untagLocked removes e from the tag index; callers hold c.mu.
func (c *ResultCache) untagLocked(e *cacheEntry) {
	for _, t := range e.tags {
		set := c.tagged[t]
		delete(set, e.key)
		if len(set) == 0 {
			delete(c.tagged, t)
		}
	}
}

// Invalidate drops every entry tagged with any of the given document
// tags — plus every entry tagged TagAll (fan-out results depend on the
// whole registry) — and returns the number of entries dropped. Entries
// for untouched documents are left alone: this is the targeted,
// generation-precise eviction a document mutation triggers. In-flight
// fills are unaffected; their keys carry the old generation-stamped
// fingerprint, so once stored they can never be read by requests keyed
// against the new snapshot.
func (c *ResultCache) Invalidate(tags ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make(map[string]struct{})
	for _, t := range append(tags, TagAll) {
		for k := range c.tagged[t] {
			keys[k] = struct{}{}
		}
	}
	for k := range keys {
		el, ok := c.items[k]
		if !ok {
			continue
		}
		e := el.Value.(*cacheEntry)
		c.untagLocked(e)
		c.ll.Remove(el)
		delete(c.items, k)
		c.invalidations++
	}
	return len(keys)
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every cached entry (in-flight fills are unaffected).
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.tagged = make(map[string]map[string]struct{})
}

// Stats returns a snapshot of the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Capacity:      c.cap,
	}
}
