// The named-profile endpoints: the serving surface over
// internal/registry.
//
//	PUT    /profiles/{name} — register (or rebind) a profile body; the
//	                          body is vetted on write and rejected with
//	                          its diagnostics when any error-severity
//	                          check fires
//	GET    /profiles/{name} — fetch one binding (fingerprint, source,
//	                          share count)
//	DELETE /profiles/{name} — unbind a name (404 when absent)
//	GET    /profiles        — list bindings + distinct-body count
//
// Searches reference a registered profile with "profile_name"; the
// resolved body — not the name — feeds the result-cache key, so
// renames cannot alias cache entries and N names over one body share
// one key space. Deleting or rebinding a name never invalidates cached
// results: entries are keyed by profile content, and any search that
// would hit them with the same content is still entitled to the same
// bytes (mirroring the generation-stamp reasoning in DESIGN.md §15).
package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/registry"
)

// ProfileResponse is the PUT/GET/DELETE /profiles/{name} payload.
type ProfileResponse struct {
	Name string `json:"name"`
	// Fingerprint identifies the stored body (sha256 of the canonical
	// profile, content-addressed: equal bodies share it).
	Fingerprint string `json:"fingerprint"`
	// Created is true when a put introduced a new name (HTTP 201).
	Created bool `json:"created,omitempty"`
	// Shared is how many names (including this one) are bound to the
	// same stored body right now.
	Shared int `json:"shared,omitempty"`
	// Source is the registered profile DSL (GET only).
	Source string `json:"source,omitempty"`
}

// ProfilesResponse is the GET /profiles payload.
type ProfilesResponse struct {
	Profiles []registry.Entry `json:"profiles"`
	// Distinct is the number of deduplicated bodies behind the names.
	Distinct int `json:"distinct"`
}

// ProfileRejection is the vet-on-write refusal payload: the 400 body
// carries the diagnostics that vetoed the registration, in POST
// /lint's sorted order.
type ProfileRejection struct {
	Error string `json:"error"`
	Kind  string `json:"kind"` // always "vet"
	// Errors is the number of error-severity diagnostics.
	Errors      int                   `json:"errors"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
}

func (s *Server) handlePutProfile(w http.ResponseWriter, r *http.Request) {
	s.stats.profilesRequests.Add(1)
	done := s.metrics.startRequest("profiles")
	defer done()

	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	src, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.rejectProfile(w, http.StatusRequestEntityTooLarge, "parse",
				fmt.Errorf("profile body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		s.rejectProfile(w, http.StatusBadRequest, "parse",
			fmt.Errorf("reading profile body: %w", err))
		return
	}

	st, created, err := s.profiles.Put(r.Context(), name, string(src))
	if err != nil {
		var rej *registry.Rejection
		if errors.As(err, &rej) && rej.Diagnostics != nil {
			// Vet-on-write veto: the registration changed nothing; the
			// diagnostics tell the client why. Count the findings exactly
			// like /lint does for parse-time discoveries.
			s.analysis.RecordDiagnostics(rej.Diagnostics)
			s.stats.profileRejected.Add(1)
			s.stats.errors4xx.Add(1)
			s.metrics.recordError(http.StatusBadRequest)
			s.metrics.registryRequests[[2]string{"put", "rejected"}].Inc()
			s.writeJSON(w, http.StatusBadRequest, &ProfileRejection{
				Error:       rej.Error(),
				Kind:        "vet",
				Errors:      analysis.ErrorCount(rej.Diagnostics),
				Diagnostics: rej.Diagnostics,
			})
			return
		}
		if errors.As(err, &rej) {
			s.rejectProfile(w, http.StatusBadRequest, "parse", err)
			return
		}
		// Only ctx expiry mid-vet reaches here.
		s.writeSearchError(w, err)
		return
	}

	s.stats.profilePuts.Add(1)
	outcome, status := "replaced", http.StatusOK
	if created {
		outcome, status = "created", http.StatusCreated
	}
	s.metrics.registryRequests[[2]string{"put", outcome}].Inc()
	s.writeJSON(w, status, &ProfileResponse{
		Name: name, Fingerprint: st.Fingerprint(), Created: created, Shared: st.Shared(),
	})
}

func (s *Server) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	s.stats.profilesRequests.Add(1)
	done := s.metrics.startRequest("profiles")
	defer done()

	name := r.PathValue("name")
	st, ok := s.profiles.Get(name)
	if !ok {
		s.metrics.registryRequests[[2]string{"get", "not_found"}].Inc()
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Errorf("unknown profile %q", name))
		return
	}
	s.metrics.registryRequests[[2]string{"get", "ok"}].Inc()
	s.writeJSON(w, http.StatusOK, &ProfileResponse{
		Name: name, Fingerprint: st.Fingerprint(), Shared: st.Shared(), Source: st.Source(),
	})
}

func (s *Server) handleDeleteProfile(w http.ResponseWriter, r *http.Request) {
	s.stats.profilesRequests.Add(1)
	done := s.metrics.startRequest("profiles")
	defer done()

	name := r.PathValue("name")
	st, ok := s.profiles.Delete(name)
	if !ok {
		s.metrics.registryRequests[[2]string{"delete", "not_found"}].Inc()
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Errorf("unknown profile %q", name))
		return
	}
	s.stats.profileDeletes.Add(1)
	s.metrics.registryRequests[[2]string{"delete", "applied"}].Inc()
	s.writeJSON(w, http.StatusOK, &ProfileResponse{Name: name, Fingerprint: st.Fingerprint()})
}

func (s *Server) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	s.stats.profilesRequests.Add(1)
	done := s.metrics.startRequest("profiles")
	defer done()

	s.metrics.registryRequests[[2]string{"list", "ok"}].Inc()
	list := s.profiles.List()
	if list == nil {
		list = []registry.Entry{}
	}
	s.writeJSON(w, http.StatusOK, &ProfilesResponse{Profiles: list, Distinct: s.profiles.Distinct()})
}

// rejectProfile reports a refused registration that never reached the
// vet (bad name, parse failure, oversized body): the error response
// plus the {put, rejected} counter. Nothing changed.
func (s *Server) rejectProfile(w http.ResponseWriter, status int, kind string, err error) {
	s.stats.profileRejected.Add(1)
	s.metrics.registryRequests[[2]string{"put", "rejected"}].Inc()
	s.writeError(w, status, kind, err)
}
