package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
)

// TestCacheEquivalenceProperty draws random (query, profile, K,
// strategy, parallelism) combinations and checks the cache contract on
// each draw:
//
//  1. repeating the identical request is a HIT whose payload is
//     byte-identical to the first answer;
//  2. a cold execution of the same request (no_cache) produces the same
//     payload modulo volatile fields — the cache never changes answers;
//  3. mutating any single option is a MISS — the key covers every
//     option that can change the answer.
func TestCacheEquivalenceProperty(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 1024})

	queries := []string{
		carsQuery,
		`//car[price < 2000]`,
		`//car[./description[. ftcontains "low mileage"]]`,
		`//car`,
	}
	profiles := []string{
		"",
		carsProfile,
		`vor v1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y` + "\nrank K,V,S\n",
	}
	strategies := []string{"", "naive", "interleave", "interleave-sort", "push", "push-deep"}

	rng := rand.New(rand.NewSource(20260806)) // fixed seed: failures must reproduce
	seen := make(map[string]bool)

	for draw := 0; draw < 40; draw++ {
		req := SearchRequest{
			Doc:         "cars",
			Query:       queries[rng.Intn(len(queries))],
			Profile:     profiles[rng.Intn(len(profiles))],
			K:           1 + rng.Intn(6),
			Strategy:    strategies[rng.Intn(len(strategies))],
			Parallelism: rng.Intn(3),
		}
		id, _ := json.Marshal(&req)
		// The cache keys on *resolved* parallelism, and on the tiny cars
		// document both 0 (auto, below the node threshold) and 1 resolve
		// to 1 — so those two JSON-distinct requests legitimately share an
		// entry. Normalize the seen-key the same way.
		normalized := req
		if normalized.Parallelism == 0 {
			normalized.Parallelism = 1
		}
		seenID, _ := json.Marshal(&normalized)

		status1, hdr1, body1 := post(t, ts, "/search", req)
		if status1 != http.StatusOK {
			t.Fatalf("draw %d (%s): status %d body %s", draw, id, status1, body1)
		}
		wantFirst := "MISS"
		if seen[string(seenID)] {
			wantFirst = "HIT"
		}
		seen[string(seenID)] = true
		if got := hdr1.Get("X-Cache"); got != wantFirst {
			t.Errorf("draw %d (%s): first X-Cache = %q, want %s", draw, id, got, wantFirst)
		}

		// (1) repeat: HIT, byte-identical.
		status2, hdr2, body2 := post(t, ts, "/search", req)
		if status2 != http.StatusOK {
			t.Fatalf("draw %d (%s): repeat status %d", draw, id, status2)
		}
		if got := hdr2.Get("X-Cache"); got != "HIT" {
			t.Errorf("draw %d (%s): repeat X-Cache = %q, want HIT", draw, id, got)
		}
		if !bytes.Equal(stablePart(t, body1), stablePart(t, body2)) {
			t.Errorf("draw %d (%s): cached body diverges from first answer\n got %s\nwant %s",
				draw, id, body2, body1)
		}

		// (2) cold no_cache run: same answer modulo volatile fields.
		cold := req
		cold.NoCache = true
		status3, hdr3, body3 := post(t, ts, "/search", cold)
		if status3 != http.StatusOK {
			t.Fatalf("draw %d (%s): cold status %d", draw, id, status3)
		}
		if got := hdr3.Get("X-Cache"); got != "" {
			t.Errorf("draw %d (%s): no_cache got X-Cache %q", draw, id, got)
		}
		if got, want := normalizePayload(t, body3), normalizePayload(t, body1); !bytes.Equal(got, want) {
			t.Errorf("draw %d (%s): cold execution diverges from cached answer\n got %s\nwant %s",
				draw, id, got, want)
		}

		// (3) mutate one option: MISS.
		mut := req
		switch rng.Intn(4) {
		case 0:
			mut.K = req.K + 10
		case 1:
			mut.Strategy = "naive"
			if req.Strategy == "naive" {
				mut.Strategy = "interleave-sort"
			}
		case 2:
			mut.Profile = carsProfile
			if req.Profile == carsProfile {
				mut.Profile = ""
			}
		case 3:
			mut.Parallelism = req.Parallelism + 3
		}
		mid, _ := json.Marshal(&mut)
		mutNorm := mut
		if mutNorm.Parallelism == 0 {
			mutNorm.Parallelism = 1
		}
		mutID, _ := json.Marshal(&mutNorm)
		if seen[string(mutID)] {
			continue // mutation collided with an earlier draw; HIT is correct there
		}
		seen[string(mutID)] = true
		status4, hdr4, body4 := post(t, ts, "/search", mut)
		if status4 != http.StatusOK {
			t.Fatalf("draw %d (%s): mutated status %d body %s", draw, mid, status4, body4)
		}
		if got := hdr4.Get("X-Cache"); got != "MISS" {
			t.Errorf("draw %d: mutated request (%s) X-Cache = %q, want MISS", draw, mid, got)
		}
	}
}
