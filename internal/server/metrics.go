// Prometheus-style metrics for the serving layer.
//
// Every label value used here comes from a compile-time-enumerable set
// (endpoint names, operator kinds, pipeline stages, error classes,
// cache outcomes) — never from request content. That keeps the series
// count bounded no matter what clients send; TestMetricsLabelLint pins
// the rule by scraping /metrics after a hostile workload and checking
// every label value against these sets.
package server

import (
	"net/http"
	"time"

	"repro/internal/algebra"
	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sched"
)

// opKinds is the static operator-kind label set: every algebra operator
// folds its display name (which may embed phrases or tags, e.g.
// "ftjoin(best bid)") down to one of these via OpStats.Kind.
var opKinds = []string{
	"scan", "listscan", "twigscan", "twigjoin", "required", "unitfilter",
	"ftjoin", "ftouterjoin", "bonus", "vor", "kor", "topkPrune", "sort",
}

// twigOutcomes labels pimento_twigjoin_queries_total: "joined" when the
// holistic join ran, "shortcircuit" when the dataguide proved the
// skeleton non-embedding and no join ran at all.
var twigOutcomes = []string{"joined", "shortcircuit"}

// stageNames is the pipeline-trace span set recorded by
// engine.SearchContext.
var stageNames = []string{"analyze", "rewrite", "build", "execute", "rank"}

// endpointNames is the HTTP endpoint label set ("docs" covers the
// PUT/DELETE/GET document mutation surface, "profiles" the named-
// profile registry, "watch" the long poll).
var endpointNames = []string{"search", "explain", "lint", "docs", "profiles", "watch", "healthz", "statsz", "metrics"}

// mutationSeries enumerates the valid {op, outcome} combinations of
// pimento_corpus_mutations_total: a put creates, replaces, or is
// rejected; a delete applies or is rejected (including delete of a
// missing name). Rejected mutations change no server state.
var mutationSeries = [][2]string{
	{"put", "created"}, {"put", "replaced"}, {"put", "rejected"},
	{"delete", "applied"}, {"delete", "rejected"},
}

// registrySeries enumerates the valid {op, outcome} combinations of
// pimento_registry_requests_total: a put creates, replaces (rebinding
// an existing name), or is rejected (vet-on-write veto, parse failure,
// bad name); a get or delete finds its name or doesn't; a list always
// succeeds.
var registrySeries = [][2]string{
	{"put", "created"}, {"put", "replaced"}, {"put", "rejected"},
	{"get", "ok"}, {"get", "not_found"},
	{"delete", "applied"}, {"delete", "not_found"},
	{"list", "ok"},
}

// registryViews labels pimento_registry_profiles: registered names vs
// the distinct deduplicated bodies behind them — the gap between the
// two series is the content-fingerprint dedup savings.
var registryViews = []string{"names", "distinct"}

// fanoutOutcomes labels pimento_fanout_shards_total: shards that
// completed within their carved deadline budget vs shards dropped from
// a degraded merge.
var fanoutOutcomes = []string{"ok", "timeout"}

// cacheNames labels pimento_cache_invalidations_total. The analysis
// cache is profile-keyed and document-independent, so document
// mutations never invalidate it — the series is exposed (at zero) to
// make that contract observable.
var cacheNames = []string{"result", "analysis"}

// errorClasses is the error-classification label set (see
// classifySearchError and writeError). "overloaded" is a scheduler
// queue-full shed (503), "throttled" a queue-wait-bound shed (429).
var errorClasses = []string{"4xx", "5xx", "timeout", "canceled", "overloaded", "throttled"}

// admissionOutcomes labels pimento_sched_admissions_total: how each
// request left the scheduler's admission step. "admitted" ran without
// queueing, "queued" waited first; the rest never got a slot.
var admissionOutcomes = []string{"admitted", "queued", "shed_queue_full", "shed_wait", "abandoned"}

// cacheOutcomes mirrors server.Outcome.String values.
var cacheOutcomes = []string{"hit", "miss", "coalesced"}

// answerDirs labels the three OpStats counters.
var answerDirs = []string{"in", "out", "pruned"}

// serverMetrics owns the registry behind GET /metrics plus
// preregistered handles for every series the server ever touches.
// Preregistration does double duty: the hot path never takes the
// registry's name lookup, and /metrics exposes the full schema (with
// zero values) from the first scrape.
type serverMetrics struct {
	reg *metrics.Registry

	requests map[string]*metrics.Counter   // by endpoint
	latency  map[string]*metrics.Histogram // by endpoint
	inFlight *metrics.Gauge
	errors   map[string]*metrics.Counter // by class

	cacheRequests  map[string]*metrics.Counter // by outcome, mirrored at scrape
	cacheEvictions *metrics.Counter            // mirrored at scrape
	cacheEntries   *metrics.Gauge
	cacheCapacity  *metrics.Gauge
	docs           *metrics.Gauge

	// Live-corpus series: mutation counters are bumped by the handlers;
	// the invalidation counters and generation gauge are mirrored from
	// their authoritative owners at scrape time.
	mutations          map[[2]string]*metrics.Counter // by {op, outcome}
	cacheInvalidations map[string]*metrics.Counter    // by cache name
	corpusGeneration   *metrics.Gauge
	watchSubscribers   *metrics.Gauge

	// Profile-registry series: request counters are bumped by the
	// handlers; the profile gauges are mirrored from the registry at
	// scrape time.
	registryRequests map[[2]string]*metrics.Counter // by {op, outcome}
	registryProfiles map[string]*metrics.Gauge      // by view

	// fanoutShards counts scatter-gather shard outcomes, bumped as each
	// sharded fan-out completes.
	fanoutShards map[string]*metrics.Counter // by outcome

	// Analysis-cache mirrors (authoritative counters live in
	// engine.AnalysisCache, synced at scrape like the result cache).
	analysisRequests map[string]*metrics.Counter // by outcome
	analysisEntries  *metrics.Gauge
	diagnostics      map[string]*metrics.Counter // by check ID

	opWall    map[string]*metrics.Counter // by op kind
	opAnswers map[[2]string]*metrics.Counter
	stage     map[string]*metrics.Histogram

	twigQueries     map[string]*metrics.Counter // by outcome
	twigGuidePruned *metrics.Counter
	twigPushes      *metrics.Counter
	twigEmitted     *metrics.Counter

	slowTotal   *metrics.Counter
	slowDropped *metrics.Counter

	// Scheduler series. Admission counters and capacity/occupancy gauges
	// are mirrored from sched.Pool.Stats at scrape time; the queue-wait
	// histogram is fed live through the pool's ObserveWait hook.
	schedAdmissions map[string]*metrics.Counter // by admission outcome
	schedWorkers    *metrics.Gauge
	schedRunning    *metrics.Gauge
	schedQueueDepth *metrics.Gauge
	schedQueueCap   *metrics.Gauge
	schedBudgetUse  *metrics.Gauge
	schedQueueWait  *metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:       reg,
		requests:  make(map[string]*metrics.Counter, len(endpointNames)),
		latency:   make(map[string]*metrics.Histogram, len(endpointNames)),
		errors:    make(map[string]*metrics.Counter, len(errorClasses)),
		opWall:    make(map[string]*metrics.Counter, len(opKinds)),
		opAnswers: make(map[[2]string]*metrics.Counter, len(opKinds)*len(answerDirs)),
		stage:     make(map[string]*metrics.Histogram, len(stageNames)),
	}
	for _, ep := range endpointNames {
		m.requests[ep] = reg.Counter("pimento_http_requests_total",
			"HTTP requests received, by endpoint.",
			metrics.Labels{"endpoint": ep})
		m.latency[ep] = reg.Histogram("pimento_http_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			metrics.DefBuckets, metrics.Labels{"endpoint": ep})
	}
	m.inFlight = reg.Gauge("pimento_http_in_flight",
		"Requests currently being served.", nil)
	for _, c := range errorClasses {
		m.errors[c] = reg.Counter("pimento_http_errors_total",
			"Request errors, by class (4xx, 5xx, timeout, canceled, overloaded, throttled; a timeout or overload shed also counts as 5xx, a client cancel or throttle as 4xx).",
			metrics.Labels{"class": c})
	}
	m.cacheRequests = make(map[string]*metrics.Counter, len(cacheOutcomes))
	for _, o := range cacheOutcomes {
		m.cacheRequests[o] = reg.Counter("pimento_cache_requests_total",
			"Result-cache lookups, by outcome.",
			metrics.Labels{"outcome": o})
	}
	m.cacheEvictions = reg.Counter("pimento_cache_evictions_total",
		"Result-cache LRU evictions.", nil)
	m.cacheEntries = reg.Gauge("pimento_cache_entries",
		"Result-cache entries resident.", nil)
	m.cacheCapacity = reg.Gauge("pimento_cache_capacity",
		"Result-cache capacity in entries.", nil)
	m.docs = reg.Gauge("pimento_docs",
		"Documents registered.", nil)
	m.mutations = make(map[[2]string]*metrics.Counter, len(mutationSeries))
	for _, s := range mutationSeries {
		m.mutations[s] = reg.Counter("pimento_corpus_mutations_total",
			"Document mutations, by op (put, delete) and outcome (created, replaced, applied, rejected).",
			metrics.Labels{"op": s[0], "outcome": s[1]})
	}
	m.cacheInvalidations = make(map[string]*metrics.Counter, len(cacheNames))
	for _, c := range cacheNames {
		m.cacheInvalidations[c] = reg.Counter("pimento_cache_invalidations_total",
			"Cache entries dropped by targeted invalidation after a document mutation, by cache. The analysis cache is document-independent and never invalidated.",
			metrics.Labels{"cache": c})
	}
	m.registryRequests = make(map[[2]string]*metrics.Counter, len(registrySeries))
	for _, s := range registrySeries {
		m.registryRequests[s] = reg.Counter("pimento_registry_requests_total",
			"Profile-registry requests, by op (put, get, delete, list) and outcome (created, replaced, rejected, ok, not_found, applied).",
			metrics.Labels{"op": s[0], "outcome": s[1]})
	}
	m.registryProfiles = make(map[string]*metrics.Gauge, len(registryViews))
	for _, v := range registryViews {
		m.registryProfiles[v] = reg.Gauge("pimento_registry_profiles",
			"Registered profiles, by view: bound names vs distinct deduplicated bodies.",
			metrics.Labels{"view": v})
	}
	m.fanoutShards = make(map[string]*metrics.Counter, len(fanoutOutcomes))
	for _, o := range fanoutOutcomes {
		m.fanoutShards[o] = reg.Counter("pimento_fanout_shards_total",
			"Scatter-gather fan-out shards, by outcome: completed within the carved deadline budget (ok) vs dropped from a degraded merge (timeout).",
			metrics.Labels{"outcome": o})
	}
	m.corpusGeneration = reg.Gauge("pimento_corpus_generation",
		"Corpus generation: applied mutations since process start.", nil)
	m.watchSubscribers = reg.Gauge("pimento_watch_subscribers",
		"GET /watch long polls currently parked.", nil)
	m.analysisRequests = make(map[string]*metrics.Counter, len(cacheOutcomes))
	for _, o := range cacheOutcomes {
		m.analysisRequests[o] = reg.Counter("pimento_analysis_cache_requests_total",
			"Analysis-verdict cache lookups (profile/query static analysis), by outcome.",
			metrics.Labels{"outcome": o})
	}
	m.analysisEntries = reg.Gauge("pimento_analysis_cache_entries",
		"Analysis-verdict cache entries resident.", nil)
	ids := analysis.DiagnosticIDs()
	m.diagnostics = make(map[string]*metrics.Counter, len(ids))
	for _, id := range ids {
		m.diagnostics[id] = reg.Counter("pimento_diagnostics_total",
			"Vet diagnostics produced by analysis fills, by check ID (each unique profile/query analyzed counts once).",
			metrics.Labels{"check": id}) //pimento:allow metriclabels check IDs come from analysis.DiagnosticIDs(), a fixed compile-time registry the analyzer cannot see through the call
	}
	for _, k := range opKinds {
		m.opWall[k] = reg.Counter("pimento_plan_operator_wall_nanoseconds_total",
			"Wall time spent inside plan operators (inclusive of upstream), by operator kind.",
			metrics.Labels{"op": k})
		for _, d := range answerDirs {
			m.opAnswers[[2]string{k, d}] = reg.Counter("pimento_plan_operator_answers_total",
				"Answers consumed (in), emitted (out) and pruned by plan operators, by operator kind.",
				metrics.Labels{"op": k, "dir": d})
		}
	}
	for _, st := range stageNames {
		m.stage[st] = reg.Histogram("pimento_pipeline_stage_seconds",
			"Personalization pipeline stage latency in seconds (analyze, rewrite, build, execute, rank).",
			metrics.DefBuckets, metrics.Labels{"stage": st})
	}
	m.twigQueries = make(map[string]*metrics.Counter, len(twigOutcomes))
	for _, o := range twigOutcomes {
		m.twigQueries[o] = reg.Counter("pimento_twigjoin_queries_total",
			"Searches served by the twigjoin access path, by outcome (joined, shortcircuit).",
			metrics.Labels{"outcome": o})
	}
	m.twigGuidePruned = reg.Counter("pimento_twigjoin_guide_pruned_total",
		"Elements skipped by dataguide pruning before entering a twig-join stream.", nil)
	m.twigPushes = reg.Counter("pimento_twigjoin_stack_pushes_total",
		"Elements pushed onto twig-join stacks (pass-1 stream volume).", nil)
	m.twigEmitted = reg.Counter("pimento_twigjoin_candidates_total",
		"Candidates emitted by twig joins across all pattern nodes.", nil)
	m.slowTotal = reg.Counter("pimento_slow_queries_total",
		"Searches slower than the configured slow-query threshold.", nil)
	m.slowDropped = reg.Counter("pimento_slow_queries_dropped_total",
		"Slow-query log entries dropped because the logger could not keep up.", nil)
	m.schedAdmissions = make(map[string]*metrics.Counter, len(admissionOutcomes))
	for _, o := range admissionOutcomes {
		m.schedAdmissions[o] = reg.Counter("pimento_sched_admissions_total",
			"Scheduler admission decisions, by outcome (admitted, queued, shed_queue_full, shed_wait, abandoned).",
			metrics.Labels{"outcome": o})
	}
	m.schedWorkers = reg.Gauge("pimento_sched_workers",
		"Scheduler worker-pool size (concurrent executions allowed).", nil)
	m.schedRunning = reg.Gauge("pimento_sched_running",
		"Executions currently holding a scheduler slot.", nil)
	m.schedQueueDepth = reg.Gauge("pimento_sched_queue_depth",
		"Requests waiting for a scheduler slot.", nil)
	m.schedQueueCap = reg.Gauge("pimento_sched_queue_capacity",
		"Scheduler waiting-room capacity.", nil)
	m.schedBudgetUse = reg.Gauge("pimento_sched_budget_in_use",
		"Extra execution goroutines (plan partitions, fan-out helpers) currently drawn from the shared budget.", nil)
	m.schedQueueWait = reg.Histogram("pimento_sched_queue_wait_seconds",
		"Time admitted requests spent queued for a scheduler slot.",
		metrics.DefBuckets, nil)
	return m
}

// startRequest records a request's arrival and returns the completion
// callback that observes its latency. Endpoints outside endpointNames
// would panic at registration time, so callers pass constants.
func (m *serverMetrics) startRequest(endpoint string) func() {
	m.requests[endpoint].Inc()
	m.inFlight.Add(1)
	start := time.Now()
	return func() {
		m.latency[endpoint].Observe(time.Since(start).Seconds())
		m.inFlight.Add(-1)
	}
}

// recordError folds an HTTP error status into the class counters.
// 504 is both a timeout and a 5xx; 499 is both a cancel and a 4xx —
// each dimension counts the request exactly once (regression:
// TestErrorClassCounters).
func (m *serverMetrics) recordError(status int) {
	switch {
	case status == http.StatusGatewayTimeout:
		m.errors["timeout"].Inc()
		m.errors["5xx"].Inc()
	case status == http.StatusServiceUnavailable:
		m.errors["overloaded"].Inc()
		m.errors["5xx"].Inc()
	case status == http.StatusTooManyRequests:
		m.errors["throttled"].Inc()
		m.errors["4xx"].Inc()
	case status == 499:
		m.errors["canceled"].Inc()
		m.errors["4xx"].Inc()
	case status >= 500:
		m.errors["5xx"].Inc()
	case status >= 400:
		m.errors["4xx"].Inc()
	}
}

// recordSearch folds one fresh execution's response into the plan and
// pipeline metrics. Cache hits and coalesced followers never reach
// here — their leader already recorded the execution once.
func (m *serverMetrics) recordSearch(resp *engine.Response) {
	m.recordPlanStats(resp.Stats)
	for _, sp := range resp.Trace {
		if h, ok := m.stage[sp.Name]; ok {
			h.Observe(float64(sp.DurUS) / 1e6)
		}
	}
	if js := resp.TwigJoin; js != nil {
		if js.GuideShortCircuit {
			m.twigQueries["shortcircuit"].Inc()
		} else {
			m.twigQueries["joined"].Inc()
		}
		m.twigGuidePruned.Add(int64(js.GuidePruned))
		m.twigPushes.Add(int64(js.StackPushes))
		m.twigEmitted.Add(int64(js.Emitted))
	}
}

// recordPlanStats folds per-operator counters by operator kind. The
// fold is what keeps label cardinality static: operator display names
// embed query content, kinds do not.
func (m *serverMetrics) recordPlanStats(stats []algebra.OpStats) {
	for _, s := range stats {
		k := s.Kind()
		if c, ok := m.opWall[k]; ok {
			c.Add(s.WallNS)
		}
		if c, ok := m.opAnswers[[2]string{k, "in"}]; ok {
			c.Add(int64(s.In))
			m.opAnswers[[2]string{k, "out"}].Add(int64(s.Out))
			m.opAnswers[[2]string{k, "pruned"}].Add(int64(s.Pruned))
		}
	}
}

// syncGauges refreshes the scrape-time mirrors: cache counters live in
// ResultCache and engine.AnalysisCache (authoritative), document count
// in the registry. Counter totals are monotone in the sources, so Store
// is safe here.
func (m *serverMetrics) syncGauges(docs int, gen uint64, cs CacheStats, as engine.AnalysisCacheStats, rs registry.Stats, ss *sched.Stats) {
	m.docs.Set(int64(docs))
	m.corpusGeneration.Set(int64(gen))
	m.registryProfiles["names"].Set(int64(rs.Names))
	m.registryProfiles["distinct"].Set(int64(rs.Distinct))
	m.cacheInvalidations["result"].Store(cs.Invalidations)
	m.cacheRequests["hit"].Store(cs.Hits)
	m.cacheRequests["miss"].Store(cs.Misses)
	m.cacheRequests["coalesced"].Store(cs.Coalesced)
	m.cacheEvictions.Store(cs.Evictions)
	m.cacheEntries.Set(int64(cs.Entries))
	m.cacheCapacity.Set(int64(cs.Capacity))
	m.analysisRequests["hit"].Store(int64(as.Hits))
	m.analysisRequests["miss"].Store(int64(as.Misses))
	m.analysisRequests["coalesced"].Store(int64(as.Coalesced))
	m.analysisEntries.Set(int64(as.Entries))
	for id, n := range as.Diagnostics {
		if c, ok := m.diagnostics[id]; ok {
			c.Store(int64(n))
		}
	}
	if ss != nil {
		m.schedAdmissions["admitted"].Store(ss.Admitted)
		m.schedAdmissions["queued"].Store(ss.AdmittedQueued)
		m.schedAdmissions["shed_queue_full"].Store(ss.ShedQueueFull)
		m.schedAdmissions["shed_wait"].Store(ss.ShedWait)
		m.schedAdmissions["abandoned"].Store(ss.Abandoned)
		m.schedWorkers.Set(int64(ss.Workers))
		m.schedRunning.Set(int64(ss.Running))
		m.schedQueueDepth.Set(int64(ss.Queued))
		m.schedQueueCap.Set(int64(ss.QueueCap))
		m.schedBudgetUse.Set(int64(ss.BudgetInUse))
	}
}
