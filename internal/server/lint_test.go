package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/analysis"
)

const ambiguousProfile = `
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
rank K,V,S
`

func decodeLint(t testing.TB, data []byte) LintResponse {
	t.Helper()
	var lr LintResponse
	if err := json.Unmarshal(data, &lr); err != nil {
		t.Fatalf("lint response %s: %v", data, err)
	}
	return lr
}

func TestLintCleanProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, body := post(t, ts, "/lint", LintRequest{Profile: carsProfile, Query: carsQuery})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	lr := decodeLint(t, body)
	if !lr.Clean || lr.Errors != 0 {
		t.Fatalf("carsProfile should be clean: %s", body)
	}
}

func TestLintAmbiguousProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, body := post(t, ts, "/lint", LintRequest{Profile: ambiguousProfile})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	lr := decodeLint(t, body)
	if lr.Clean || lr.Errors != 1 {
		t.Fatalf("want one error: %s", body)
	}
	if lr.Counts[analysis.DiagVORAmbiguous] != 1 {
		t.Errorf("counts = %v", lr.Counts)
	}
	d := lr.Diagnostics[0]
	if d.ID != analysis.DiagVORAmbiguous || d.Witness == nil ||
		d.Witness.Kind != analysis.WitnessAlternatingCycle {
		t.Fatalf("diagnostic = %+v", d)
	}
	// The profile with an error diagnostic must be rejected by /search.
	code, _, body = post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, Profile: ambiguousProfile, K: 3,
	})
	if code == http.StatusOK {
		t.Fatalf("/search accepted a profile /lint flagged as error: %s", body)
	}
}

func TestLintByteStable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := LintRequest{Profile: ambiguousProfile + `
kor k: x.tag = car & y.tag = car & ftcontains(x, "bid") & ftcontains(x, "bid") => x < y`,
		Query: carsQuery}
	_, _, first := post(t, ts, "/lint", req)
	for i := 0; i < 3; i++ {
		_, _, again := post(t, ts, "/lint", req)
		if !bytes.Equal(first, again) {
			t.Fatalf("lint output not byte-stable:\n%s\nvs\n%s", first, again)
		}
	}
}

func TestLintDuplicateIdentifier(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, body := post(t, ts, "/lint", LintRequest{Profile: `
sr a: if pc(car, d) then add ftcontains(d, "x")
sr a: if pc(car, d) then remove ftcontains(d, "x")`})
	if code != http.StatusOK {
		t.Fatalf("P001 is a finding, not a bad request: %d %s", code, body)
	}
	lr := decodeLint(t, body)
	if lr.Clean || len(lr.Diagnostics) != 1 || lr.Diagnostics[0].ID != analysis.DiagDuplicateName {
		t.Fatalf("want a single P001: %s", body)
	}
	// Genuinely malformed profiles are still 400s.
	code, _, _ = post(t, ts, "/lint", LintRequest{Profile: "sr ???"})
	if code != http.StatusBadRequest {
		t.Errorf("malformed profile status = %d", code)
	}
	// Missing profile too.
	code, _, _ = post(t, ts, "/lint", LintRequest{Query: carsQuery})
	if code != http.StatusBadRequest {
		t.Errorf("missing profile status = %d", code)
	}
}

func TestExplainIncludesDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, body := post(t, ts, "/explain", ExplainRequest{
		Query: carsQuery, Profile: ambiguousProfile,
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var er ExplainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Ambiguous {
		t.Fatalf("explain should flag ambiguity: %s", body)
	}
	found := false
	for _, d := range er.Diagnostics {
		if d.ID == analysis.DiagVORAmbiguous {
			found = true
		}
	}
	if !found {
		t.Fatalf("explain diagnostics missing VOR001: %s", body)
	}
}

// TestAnalysisCacheServesWarmSearches is the PR's acceptance criterion:
// a warm server answers a second /search with the same profile without
// re-running analysis, observable via the cache-hit counters on /statsz
// and /metrics.
func TestAnalysisCacheServesWarmSearches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Different K so the *result* cache can't absorb the second request;
	// only the analysis cache is shared between them.
	for _, k := range []int{3, 5} {
		code, _, body := post(t, ts, "/search", SearchRequest{
			Doc: "cars", Query: carsQuery, Profile: carsProfile, K: k,
		})
		if code != http.StatusOK {
			t.Fatalf("search k=%d: %d %s", k, code, body)
		}
	}

	var st Statsz
	_, body := get(t, ts, "/statsz")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Analysis.Hits == 0 {
		t.Fatalf("second warm search should hit the analysis cache: %s", body)
	}
	if st.Analysis.Misses == 0 || st.Analysis.Entries == 0 {
		t.Fatalf("analysis stats incoherent: %s", body)
	}

	fams := scrape(t, ts)
	fam := fams["pimento_analysis_cache_requests_total"]
	if fam == nil {
		t.Fatal("pimento_analysis_cache_requests_total not exported")
	}
	hits := -1.0
	for _, s := range fam.Samples {
		if s.Labels["outcome"] == "hit" {
			hits = s.Value
		}
	}
	if hits <= 0 {
		t.Fatalf("analysis hit counter = %v on /metrics", hits)
	}
	if fams["pimento_analysis_cache_entries"] == nil {
		t.Fatal("pimento_analysis_cache_entries not exported")
	}
}

// TestDiagnosticsMetrics: lints feed the per-check counters, counted
// once per analyzed profile (cache hits don't re-count).
func TestDiagnosticsMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		post(t, ts, "/lint", LintRequest{Profile: ambiguousProfile})
	}
	fams := scrape(t, ts)
	fam := fams["pimento_diagnostics_total"]
	if fam == nil {
		t.Fatal("pimento_diagnostics_total not exported")
	}
	byCheck := map[string]float64{}
	for _, s := range fam.Samples {
		byCheck[s.Labels["check"]] = s.Value
	}
	if byCheck[analysis.DiagVORAmbiguous] != 1 {
		t.Fatalf("VOR001 count = %v, want 1 (one fill, two cache hits)", byCheck[analysis.DiagVORAmbiguous])
	}
}
