package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func fillConst(v any) func() (any, error) {
	return func() (any, error) { return v, nil }
}

func TestCacheDoBasics(t *testing.T) {
	c := NewResultCache(4)
	ctx := context.Background()

	v, out, err := c.Do(ctx, "a", fillConst(1))
	if err != nil || out != Miss || v != 1 {
		t.Fatalf("first Do = (%v, %v, %v), want (1, Miss, nil)", v, out, err)
	}
	v, out, err = c.Do(ctx, "a", func() (any, error) {
		t.Fatal("fill must not run on a hit")
		return nil, nil
	})
	if err != nil || out != Hit || v != 1 {
		t.Fatalf("second Do = (%v, %v, %v), want (1, Hit, nil)", v, out, err)
	}

	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%v, %v), want (1, true)", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) = true")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}

	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d, want 0", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Purge")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewResultCache(2)
	ctx := context.Background()
	c.Do(ctx, "a", fillConst("a"))
	c.Do(ctx, "b", fillConst("b"))
	c.Do(ctx, "a", fillConst(nil)) // touch a: b becomes the LRU victim
	c.Do(ctx, "c", fillConst("c"))

	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b survived")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s was evicted", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2/2 entries", st)
	}

	// Refreshing an existing key must not grow the cache.
	c.mu.Lock()
	c.putLocked("a", "a2", nil)
	c.mu.Unlock()
	if v, _ := c.Get("a"); v != "a2" || c.Len() != 2 {
		t.Errorf("refresh: Get(a) = %v, Len = %d; want a2, 2", v, c.Len())
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewResultCache(0) // clamped to 1
	ctx := context.Background()
	c.Do(ctx, "a", fillConst(1))
	c.Do(ctx, "b", fillConst(2))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (capacity clamp)", c.Len())
	}
	if c.Stats().Capacity != 1 {
		t.Fatalf("Capacity = %d, want 1", c.Stats().Capacity)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewResultCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	fail := func() (any, error) { calls++; return nil, boom }

	if _, _, err := c.Do(ctx, "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.Do(ctx, "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times, want 2 (errors are never cached)", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after failures, want 0", c.Len())
	}
}

// TestCacheSingleFlight checks the admission contract under
// contention: one fill per key no matter how many concurrent callers,
// followers coalesce onto the leader's result.
func TestCacheSingleFlight(t *testing.T) {
	c := NewResultCache(4)
	ctx := context.Background()

	gate := make(chan struct{})
	var fills int
	var fillMu sync.Mutex
	fill := func() (any, error) {
		fillMu.Lock()
		fills++
		fillMu.Unlock()
		<-gate
		return "value", nil
	}

	const callers = 8
	outcomes := make([]Outcome, callers)
	vals := make([]any, callers)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, out, err := c.Do(ctx, "k", fill)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], outcomes[i] = v, out
		}(i)
	}
	started.Wait()
	close(gate) // release the leader; followers coalesce
	wg.Wait()

	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	miss, coalesced, hit := 0, 0, 0
	for i, out := range outcomes {
		if vals[i] != "value" {
			t.Errorf("caller %d got %v", i, vals[i])
		}
		switch out {
		case Miss:
			miss++
		case Coalesced:
			coalesced++
		case Hit:
			hit++
		}
	}
	if miss != 1 {
		t.Errorf("outcomes: %d misses (%d coalesced, %d hits), want exactly 1 miss",
			miss, coalesced, hit)
	}
	if miss+coalesced+hit != callers {
		t.Errorf("outcomes don't add up: %d+%d+%d != %d", miss, coalesced, hit, callers)
	}
}

// TestCacheFollowerOutlivesFailedLeader: a leader failing with its own
// deadline error must not poison a follower that still has time — the
// follower retries as the new leader.
func TestCacheFollowerOutlivesFailedLeader(t *testing.T) {
	c := NewResultCache(4)

	gate := make(chan struct{})
	leaderFill := func() (any, error) {
		<-gate
		return nil, context.DeadlineExceeded
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.Do(context.Background(), "k", leaderFill); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("leader err = %v", err)
		}
	}()

	// Wait until the leader's flight is registered.
	for {
		c.mu.Lock()
		_, inFlight := c.flight["k"]
		c.mu.Unlock()
		if inFlight {
			break
		}
	}

	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		v, out, err := c.Do(context.Background(), "k", fillConst("fresh"))
		if err != nil || v != "fresh" {
			t.Errorf("follower = (%v, %v, %v), want (fresh, _, nil)", v, out, err)
		}
	}()

	close(gate)
	wg.Wait()
	<-followerDone

	// A follower whose own context dies while waiting gets that error.
	c2 := NewResultCache(4)
	gate2 := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		c2.Do(context.Background(), "k", func() (any, error) { <-gate2; return 1, nil })
	}()
	for {
		c2.mu.Lock()
		_, inFlight := c2.flight["k"]
		c2.mu.Unlock()
		if inFlight {
			break
		}
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c2.Do(cctx, "k", fillConst(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("dead follower err = %v, want context.Canceled", err)
	}
	close(gate2)
	wg.Wait()
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{Miss: "miss", Hit: "hit", Coalesced: "coalesced"} {
		if got := out.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", out, got, want)
		}
	}
	if got := fmt.Sprint(Outcome(99)); got == "" {
		t.Error("unknown outcome prints empty")
	}
}
