// Sharded fan-out tests: the degraded-response contract (slow shard →
// 200 with "degraded": true, healthy results intact, never cached),
// the sharded-vs-unsharded byte-identity differential, and the
// regression pins for the pre-admission option rejection and the
// execute-path 404.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/corpus"
)

// newFanoutServer builds a server over enough small documents that
// every shard in a 3-way split holds work, avoiding the multi-megabyte
// xmark document so carved shard deadlines stay comfortable.
func newFanoutServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	descs := []string{
		"good condition, city car",
		"good condition and best bid welcome",
		"rusty but cheap",
		"good condition, best bid, NYC pickup",
		"best bid, low mileage, good condition",
		"good condition family car",
	}
	for i, d := range descs {
		src := fmt.Sprintf(`<dealer><car><description>%s</description><price>%d</price><color>red</color></car></dealer>`,
			d, 500+100*i)
		if err := s.AddXML(fmt.Sprintf("doc-%d", i), src); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// TestFanoutShardedDifferential: a sharded server and an unsharded
// server answer every fan-out request with byte-identical payloads
// (modulo the volatile timing fields) — the consistent-hash scatter
// and local-top-k merge are invisible to clients.
func TestFanoutShardedDifferential(t *testing.T) {
	_, plain := newFanoutServer(t, Config{})
	_, sharded := newFanoutServer(t, Config{Shards: 3})

	requests := []SearchRequest{
		{Doc: "*", Keywords: "good condition", K: 4},
		{Doc: "*", Query: carsQuery, Profile: carsProfile, K: 3},
		{Doc: "*", Query: `//car[price < 900]`, K: 10},
	}
	for i, req := range requests {
		status, _, want := post(t, plain, "/search", req)
		if status != http.StatusOK {
			t.Fatalf("request %d unsharded = %d, body %s", i, status, want)
		}
		status, _, got := post(t, sharded, "/search", req)
		if status != http.StatusOK {
			t.Fatalf("request %d sharded = %d, body %s", i, status, got)
		}
		var sr SearchResponse
		if err := json.Unmarshal(got, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Degraded || len(sr.TimedOutShards) != 0 {
			t.Fatalf("request %d degraded without load: %s", i, got)
		}
		if !bytes.Equal(normalizePayload(t, want), normalizePayload(t, got)) {
			t.Errorf("request %d payloads diverge\nunsharded %s\n  sharded %s", i, want, got)
		}
	}
}

// TestFanoutDegraded is the degraded-fan-out contract: a shard held
// past its carved deadline is dropped — the response is a 200 with
// "degraded": true and the slow shard listed, the healthy shards'
// results are intact, and the response is never cached.
func TestFanoutDegraded(t *testing.T) {
	s, ts := newFanoutServer(t, Config{Shards: 3, ShardDeadlineFrac: 0.2})

	shards := corpus.ShardNames(s.Docs(), 3)
	slow := -1
	for i, sh := range shards {
		if len(sh) > 0 {
			slow = i
			break
		}
	}
	if slow < 0 {
		t.Fatal("no non-empty shard")
	}
	slowDocs := map[string]bool{}
	for _, name := range shards[slow] {
		slowDocs[name] = true
	}
	s.shardStart = func(shard int) {
		if shard == slow {
			time.Sleep(250 * time.Millisecond) // ≫ the ≈100ms carved budget
		}
	}

	req := SearchRequest{Doc: "*", Keywords: "good condition", K: 10, TimeoutMS: 500}
	status, hdr, body := post(t, ts, "/search", req)
	if status != http.StatusOK {
		t.Fatalf("degraded search = %d, body %s", status, body)
	}
	if hdr.Get("X-Cache") != "" {
		t.Errorf("degraded response carries X-Cache %q — it must bypass the cache", hdr.Get("X-Cache"))
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded || len(sr.TimedOutShards) != 1 || sr.TimedOutShards[0] != slow {
		t.Fatalf("degradation report = degraded=%v timed_out=%v, want shard %d", sr.Degraded, sr.TimedOutShards, slow)
	}
	for _, r := range sr.Results {
		if slowDocs[r.Doc] {
			t.Errorf("result from the dropped shard: %+v", r)
		}
	}
	if wantDocs := len(s.Docs()) - len(shards[slow]); sr.DocsSearched != wantDocs {
		t.Errorf("docs_searched = %d, want %d (healthy shards only)", sr.DocsSearched, wantDocs)
	}

	// Never cached: with the slow shard healed, the identical request is
	// a fresh MISS (a cached degraded body would surface as a HIT) and
	// now covers every shard.
	s.shardStart = nil
	status, hdr, body = post(t, ts, "/search", req)
	if status != http.StatusOK {
		t.Fatalf("healed search = %d, body %s", status, body)
	}
	if hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("healed search X-Cache = %q, want MISS (degraded result must not be cached)", hdr.Get("X-Cache"))
	}
	var healed SearchResponse // fresh: omitted fields must not inherit sr's
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Degraded || healed.DocsSearched != len(s.Docs()) {
		t.Fatalf("healed search still partial: %s", body)
	}
}

// TestFanoutOptionsRejectedBeforeAdmission is the headline regression:
// fan-out requests carrying the single-document options (twig,
// literal, access) are 400s from request validation — before the pool
// admits anything and before the single-flight cache registers a miss.
// The check used to live inside execute, where the doomed request had
// already occupied a pool slot and could coalesce followers onto its
// guaranteed failure.
func TestFanoutOptionsRejectedBeforeAdmission(t *testing.T) {
	s, ts := newFanoutServer(t, Config{Shards: 3})
	for _, req := range []SearchRequest{
		{Doc: "*", Keywords: "good condition", Twig: true},
		{Doc: "*", Keywords: "good condition", Literal: true},
		{Doc: "*", Keywords: "good condition", Access: "twigjoin"},
		{Doc: "", Keywords: "good condition", Twig: true}, // empty doc is a fan-out too
	} {
		status, _, body := post(t, ts, "/search", req)
		if status != http.StatusBadRequest {
			t.Fatalf("%+v = %d, body %s", req, status, body)
		}
	}
	if ps := s.Pool().Stats(); ps.Admitted != 0 || ps.AdmittedQueued != 0 ||
		ps.ShedQueueFull != 0 || ps.ShedWait != 0 || ps.Abandoned != 0 {
		t.Errorf("rejected requests reached the pool: %+v", ps)
	}
	if cs := s.Cache().Stats(); cs.Misses != 0 || cs.Hits != 0 || cs.Coalesced != 0 {
		t.Errorf("rejected requests touched the result cache: %+v", cs)
	}
}

// TestExecuteUnknownDoc pins the unknown-document status unification:
// both the validation path and the (theoretically unreachable)
// execute-path recheck classify an unknown document as 404/not_found —
// the execute path used to produce a 400.
func TestExecuteUnknownDoc(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// The validation path, over HTTP.
	status, _, body := post(t, ts, "/search", SearchRequest{Doc: "ghost", Keywords: "x"})
	if status != http.StatusNotFound {
		t.Fatalf("unknown doc over HTTP = %d, body %s", status, body)
	}
	var e errorResponse
	if json.Unmarshal(body, &e) != nil || e.Kind != "not_found" {
		t.Fatalf("error body = %s, want kind not_found", body)
	}

	// The execute-path recheck, driven directly: build a valid request,
	// then swap the document name out from under it.
	snap := s.reg.Snapshot()
	sreq := SearchRequest{Doc: "cars", Keywords: "good condition", K: 3}
	req, status, err := s.buildEngineRequest(snap, &sreq)
	if err != nil {
		t.Fatalf("buildEngineRequest: %d %v", status, err)
	}
	sreq.Doc = "ghost"
	_, err = s.execute(context.Background(), snap, &sreq, req)
	var nf *notFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("execute on unknown doc = %v, want *notFoundError", err)
	}
	if st, kind := classifySearchError(err); st != http.StatusNotFound || kind != "not_found" {
		t.Fatalf("classified as %d/%s, want 404/not_found", st, kind)
	}
}

// TestClassifySearchErrors table-tests the error classifier over the
// typed errors the search path produces.
func TestClassifySearchErrors(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{&notFoundError{errors.New("unknown document")}, http.StatusNotFound, "not_found"},
		{fmt.Errorf("wrapped: %w", &notFoundError{errors.New("gone")}), http.StatusNotFound, "not_found"},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout"},
		{context.Canceled, 499, "canceled"},
		{errors.New("plain engine failure"), http.StatusInternalServerError, "engine"},
	}
	for _, tc := range cases {
		if st, kind := classifySearchError(tc.err); st != tc.status || kind != tc.kind {
			t.Errorf("classify(%v) = %d/%s, want %d/%s", tc.err, st, kind, tc.status, tc.kind)
		}
	}
}
