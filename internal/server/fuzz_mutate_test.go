package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// fuzzMutServer backs FuzzDocUpdate. It is distinct from fuzzServer:
// this one is mutated on purpose, and FuzzSearchHandler's server must
// stay immutable across iterations.
var fuzzMutServer = sync.OnceValue(func() *Server {
	s := New(Config{CacheSize: 16, MaxDocBytes: 8 << 10})
	if err := s.AddXML("cars", carsXML); err != nil {
		panic(err)
	}
	return s
})

// FuzzDocUpdate throws arbitrary names and bodies at PUT/DELETE
// /docs/{name} and checks the mutation contract: no panics, always
// well-formed JSON, and — the live-corpus invariant — a rejected
// mutation (malformed XML, invalid name, delete-of-missing, oversized
// body) leaves the corpus generation and the cache invalidation
// counter exactly where they were. Applied mutations advance the
// generation by exactly one. Successfully PUT non-seed names are
// deleted again afterwards so a long fuzz run's memory stays bounded.
func FuzzDocUpdate(f *testing.F) {
	f.Add("newdoc", "<a><b>hi there</b></a>", false)
	f.Add("cars", carsXML, false) // duplicate name: replace, not create
	f.Add("bad", "<open><unclosed>", false)
	f.Add("bad", "not xml at all", false)
	f.Add("bad", "", false)
	f.Add("missing", "", true) // delete of a name that is not there
	f.Add("*", "<a/>", false)  // reserved fan-out name
	f.Add("a/b", "<a/>", false)
	f.Add("", "<a/>", false)
	f.Add("big", strings.Repeat("<pad>aaaaaaaa</pad>", 1024), false) // > MaxDocBytes
	f.Add("d\x00d", "<a/>", false)

	f.Fuzz(func(t *testing.T, name, body string, del bool) {
		s := fuzzMutServer()
		preGen := s.Snapshot().Generation
		preInv := s.Cache().Stats().Invalidations

		method := http.MethodPut
		var rd *strings.Reader
		if del {
			method = http.MethodDelete
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(method, "/docs/"+url.PathEscape(name), rd)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req) // must not panic

		resp := rec.Result()
		data := rec.Body.Bytes()
		if !json.Valid(data) && resp.StatusCode != http.StatusNotFound {
			// the net/http mux answers its own plain-text 404 for routes
			// like PUT /docs/ (empty name); everything we write is JSON
			t.Fatalf("status %d: response is not valid JSON: %q (name %q)",
				resp.StatusCode, data, name)
		}

		switch resp.StatusCode {
		case http.StatusOK, http.StatusCreated:
			var mr MutateResponse
			if err := json.Unmarshal(data, &mr); err != nil {
				t.Fatalf("2xx body does not decode as MutateResponse: %v (name %q)", err, name)
			}
			if mr.Gen != preGen+1 {
				t.Fatalf("applied mutation moved generation %d -> %d, want +1 (name %q)",
					preGen, mr.Gen, name)
			}
			if (resp.StatusCode == http.StatusCreated) != mr.Created {
				t.Fatalf("status %d disagrees with created=%v (name %q)",
					resp.StatusCode, mr.Created, name)
			}
			// Bound memory: drop any non-seed document we just created.
			if !del && name != "cars" {
				dreq := httptest.NewRequest(http.MethodDelete, "/docs/"+url.PathEscape(name), nil)
				drec := httptest.NewRecorder()
				s.Handler().ServeHTTP(drec, dreq)
				if drec.Code != http.StatusOK {
					t.Fatalf("cleanup DELETE %q = %d, want 200", name, drec.Code)
				}
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusRequestEntityTooLarge:
			// A refused mutation changes nothing.
			if got := s.Snapshot().Generation; got != preGen {
				t.Fatalf("status %d moved generation %d -> %d (name %q, del %v)",
					resp.StatusCode, preGen, got, name, del)
			}
			if got := s.Cache().Stats().Invalidations; got != preInv {
				t.Fatalf("status %d invalidated cache entries (%d -> %d) (name %q)",
					resp.StatusCode, preInv, got, name)
			}
			if json.Valid(data) {
				var er errorResponse
				if err := json.Unmarshal(data, &er); err != nil || er.Error == "" || er.Kind == "" {
					t.Fatalf("status %d: bad error body %q (name %q)", resp.StatusCode, data, name)
				}
				if er.Kind != "parse" && er.Kind != "not_found" {
					t.Fatalf("status %d: unexpected error kind %q (name %q)", resp.StatusCode, er.Kind, name)
				}
			}
		default:
			t.Fatalf("unexpected status %d: %q (name %q, del %v)", resp.StatusCode, data, name, del)
		}
	})
}
