package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// occupySlot grabs the pool's only worker slot directly, so the next
// search request must queue (or shed, with no waiting room). Returns
// the release func.
func occupySlot(t *testing.T, s *Server) func() {
	t.Helper()
	release, err := s.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatalf("occupy slot: %v", err)
	}
	return release
}

// searchReq is a fresh uncacheable request (cache hits bypass
// admission, so shedding tests must force execution).
func searchReq() SearchRequest {
	return SearchRequest{Doc: "cars", Query: carsQuery, K: 3, NoCache: true}
}

// TestSchedQueueFullSheds pins the overload contract: with one worker
// busy and no waiting room, a search is shed with 503, a Retry-After
// hint, and the overloaded error class — and the very same request
// succeeds once the slot frees.
func TestSchedQueueFullSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1, PoolQueue: -1})
	release := occupySlot(t, s)

	status, hdr, body := post(t, ts, "/search", searchReq())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body %s, want 503", status, body)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want an integer in [1,60]", hdr.Get("Retry-After"))
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "overloaded" {
		t.Errorf("error kind = %q (%v), want overloaded", er.Kind, err)
	}

	release()
	status, _, body = post(t, ts, "/search", searchReq())
	if status != http.StatusOK {
		t.Fatalf("after release: status = %d body %s, want 200", status, body)
	}

	st := s.Snapshot()
	if st.Shed != 1 {
		t.Errorf("statsz shed = %d, want 1", st.Shed)
	}
	if st.Sched == nil || st.Sched.ShedQueueFull != 1 {
		t.Errorf("sched stats = %+v, want shed_queue_full 1", st.Sched)
	}
}

// TestSchedWaitBoundSheds: a request that queues past PoolMaxWait is
// throttled with 429 + Retry-After rather than waiting forever.
func TestSchedWaitBoundSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1, PoolMaxWait: 20 * time.Millisecond})
	release := occupySlot(t, s)
	defer release()

	status, hdr, body := post(t, ts, "/search", searchReq())
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d body %s, want 429", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "throttled" {
		t.Errorf("error kind = %q (%v), want throttled", er.Kind, err)
	}
	if st := s.Snapshot(); st.Sched == nil || st.Sched.ShedWait != 1 {
		t.Errorf("sched stats = %+v, want shed_wait 1", st.Sched)
	}
}

// TestSchedDeadlineWhileQueued: the request's own timeout_ms keeps
// ticking in the waiting room; expiry there is a 504, not a hang.
func TestSchedDeadlineWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1})
	release := occupySlot(t, s)
	defer release()

	req := searchReq()
	req.TimeoutMS = 30
	status, _, body := post(t, ts, "/search", req)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s, want 504", status, body)
	}
	if st := s.Snapshot(); st.Sched == nil || st.Sched.Abandoned != 1 {
		t.Errorf("sched stats = %+v, want abandoned 1", st.Sched)
	}
}

// TestSchedCancelWhileQueued: a client that disconnects while its
// request sits in the waiting room abandons the queue slot; the server
// accounts it as canceled (499 class), and the pool is healthy after.
func TestSchedCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1})
	release := occupySlot(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(searchReq())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/search",
		bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the request time to enter the queue, then hang up. The worker
	// slot stays occupied until the abandonment is recorded, so the
	// queued request's only exit is via its (cancelled) context.
	waitFor(t, func() bool { return s.Pool().Stats().Queued == 1 })
	cancel()
	if err := <-done; err == nil {
		t.Error("cancelled request returned no client error")
	}
	waitFor(t, func() bool {
		st := s.Snapshot()
		return st.Canceled == 1 && st.Sched.Abandoned == 1
	})
	release()
	// The pool must be fully drained: the abandoned request gave back
	// its queue slot, the occupier its worker slot.
	if st := s.Pool().Stats(); st.Running != 0 || st.Queued != 0 {
		t.Errorf("pool not drained: %+v", st)
	}
}

// waitFor polls cond for up to ~2s; the handler finishes asynchronously
// after a client disconnect, so counters are eventually consistent.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestParallelismValidationContract: values outside [0, 64] are
// rejected with 400 — never silently clamped — in both scheduler and
// legacy modes, so the accepted surface matches what plan honors.
func TestParallelismValidationContract(t *testing.T) {
	for _, workers := range []int{0, -1} {
		_, ts := newTestServer(t, Config{PoolWorkers: workers})
		for _, par := range []int{-1, 65, 1024} {
			req := searchReq()
			req.Parallelism = par
			status, _, body := post(t, ts, "/search", req)
			if status != http.StatusBadRequest {
				t.Errorf("pool=%d par=%d: status %d body %s, want 400", workers, par, status, body)
				continue
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Kind != "parse" {
				t.Errorf("pool=%d par=%d: error kind %q, want parse", workers, par, er.Kind)
			}
		}
	}
}

// TestResolvedParallelismInResponse: the response reports what actually
// ran. Under the scheduler a 0 (auto) request on a small document
// resolves to 1 even with GOMAXPROCS raised — the oversubscription fix —
// while legacy mode (PoolWorkers -1) resolves 0 to GOMAXPROCS
// unconditionally, which is exactly the baseline behavior the load
// harness A/Bs against.
func TestResolvedParallelismInResponse(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	cases := []struct {
		pool, par, want int
	}{
		{0, 0, 1},  // scheduler: auto on a small doc stays sequential
		{0, 2, 2},  // explicit request is honored (within range)
		{-1, 0, 4}, // legacy: auto = GOMAXPROCS regardless of size
		{-1, 2, 2},
	}
	for _, tc := range cases {
		_, ts := newTestServer(t, Config{PoolWorkers: tc.pool})
		req := searchReq()
		req.Parallelism = tc.par
		status, _, body := post(t, ts, "/search", req)
		if status != http.StatusOK {
			t.Fatalf("pool=%d par=%d: status %d body %s", tc.pool, tc.par, status, body)
		}
		var resp struct {
			Parallelism int `json:"parallelism"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Parallelism != tc.want {
			t.Errorf("pool=%d par=%d: resolved parallelism %d, want %d",
				tc.pool, tc.par, resp.Parallelism, tc.want)
		}
	}
}

// TestStatszSchedBlock: /statsz carries the scheduler block exactly
// when the scheduler is on.
func TestStatszSchedBlock(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 2})
	post(t, ts, "/search", searchReq())
	_, body := get(t, ts, "/statsz")
	var st Statsz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Sched == nil || st.Sched.Workers != 2 {
		t.Fatalf("statsz sched = %+v, want workers 2", st.Sched)
	}
	if st.Sched.Admitted+st.Sched.AdmittedQueued < 1 {
		t.Errorf("statsz sched admissions = %+v, want at least one", st.Sched)
	}
	_ = s

	sLegacy, tsLegacy := newTestServer(t, Config{PoolWorkers: -1})
	_, body = get(t, tsLegacy, "/statsz")
	var stLegacy Statsz
	if err := json.Unmarshal(body, &stLegacy); err != nil {
		t.Fatal(err)
	}
	if stLegacy.Sched != nil {
		t.Errorf("legacy statsz sched = %+v, want absent", stLegacy.Sched)
	}
	_ = sLegacy
}

// TestSchedCacheBypass: cache hits are served without consuming a
// worker slot — only fresh executions pass through admission.
func TestSchedCacheBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1, PoolQueue: -1})

	warm := SearchRequest{Doc: "cars", Query: carsQuery, K: 3}
	if status, _, body := post(t, ts, "/search", warm); status != http.StatusOK {
		t.Fatalf("warm: status %d body %s", status, body)
	}

	release := occupySlot(t, s)
	defer release()
	status, hdr, body := post(t, ts, "/search", warm)
	if status != http.StatusOK {
		t.Fatalf("hit under full pool: status %d body %s, want 200", status, body)
	}
	if got := hdr.Get("X-Cache"); got != "HIT" {
		t.Errorf("X-Cache = %q, want HIT", got)
	}
}
