package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzServer is shared across fuzz iterations: handler behavior must
// not depend on per-request server state, and rebuilding the index for
// every input would make fuzzing useless.
var fuzzServer = sync.OnceValue(func() *Server {
	s := New(Config{CacheSize: 64})
	if err := s.AddXML("cars", carsXML); err != nil {
		panic(err)
	}
	return s
})

// FuzzSearchHandler feeds arbitrary bytes to POST /search and checks
// the handler's contract for hostile input: it never panics, always
// answers well-formed JSON, and classifies failures — 4xx (kind parse /
// not_found) for bad requests, 5xx only for engine-side failures.
func FuzzSearchHandler(f *testing.F) {
	f.Add(`{"doc":"cars","query":"//car"}`)
	f.Add(`{"doc":"cars","query":"//car[price < 2000]","k":3,"strategy":"naive"}`)
	f.Add(`{"doc":"cars","keywords":"good condition"}`)
	f.Add(`{"doc":"cars","query":"//car","profile":"rank K,V,S"}`)
	f.Add(`{"doc":"*","keywords":"car","k":2}`)
	f.Add(`{"doc":"cars","query":"//car","k":-1}`)
	f.Add(`{"doc":"cars","query":"//car[[["}`)
	f.Add(`{"doc":"nope","query":"//car"}`)
	f.Add(`{"doc":"cars","query":"//car","timeout_ms":1,"parallelism":2}`)
	f.Add(`not json at all`)
	f.Add(`{"doc":"cars","query":"//car","k":999999999}`)
	f.Add("{\"doc\":\"cars\",\"query\":\"//car\\u0000\\ud800\"}")

	f.Fuzz(func(t *testing.T, body string) {
		s := fuzzServer()
		req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req) // must not panic

		resp := rec.Result()
		data := rec.Body.Bytes()
		if !json.Valid(data) {
			t.Fatalf("status %d: response is not valid JSON: %q (input %q)",
				resp.StatusCode, data, body)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var sr SearchResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Fatalf("200 body does not decode as SearchResponse: %v (input %q)", err, body)
			}
		case resp.StatusCode >= 400:
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("status %d body does not decode as errorResponse: %v (input %q)",
					resp.StatusCode, err, body)
			}
			if er.Error == "" || er.Kind == "" {
				t.Fatalf("status %d: empty error/kind in %q (input %q)", resp.StatusCode, data, body)
			}
			switch er.Kind {
			case "parse", "not_found":
				if resp.StatusCode >= 500 {
					t.Fatalf("request-side error %q answered with %d (input %q)",
						er.Kind, resp.StatusCode, body)
				}
			case "timeout", "canceled", "engine":
				if resp.StatusCode < 500 && resp.StatusCode != 499 {
					t.Fatalf("engine-side error %q answered with %d (input %q)",
						er.Kind, resp.StatusCode, body)
				}
			default:
				t.Fatalf("unknown error kind %q (input %q)", er.Kind, body)
			}
		default:
			t.Fatalf("unexpected status %d (input %q)", resp.StatusCode, body)
		}
	})
}
