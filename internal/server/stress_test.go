package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestServerStress hammers one server with concurrent mixed traffic —
// distinct queries and profiles sharing the result cache, plus requests
// whose deadlines expire mid-flight — and checks that
//
//   - every 200 response is complete and byte-identical (modulo
//     elapsed_us) to a reference execution of the same request: the
//     cache and the parallel workers never leak a truncated top k;
//   - every non-200 outcome is a clean, classified timeout;
//   - no goroutines leak once the traffic stops.
//
// Run it under -race; that is the point.
func TestServerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	s, ts := newTestServer(t, Config{CacheSize: 8}) // small cache: force evictions too

	// The request mix: cars with and without profile, xmark keyword and
	// twig queries under increasingly personal profiles, and a fan-out.
	variants := []SearchRequest{
		{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3},
		{Doc: "cars", Query: carsQuery, K: 2},
		{Doc: "cars", Keywords: "good condition", K: 5},
		{Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`, Profile: personProfile(1), K: 10},
		{Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`, Profile: personProfile(2), K: 10},
		{Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`, Profile: personProfile(4), K: 5, Parallelism: 2},
		{Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`, Profile: personProfile(4), K: 5, Strategy: "interleave-sort"},
		{Doc: "*", Keywords: "good condition", K: 4},
	}

	// Reference payloads: one cold, cache-bypassing execution each.
	refs := make([][]byte, len(variants))
	for i, v := range variants {
		v.NoCache = true
		status, _, body := post(t, ts, "/search", v)
		if status != http.StatusOK {
			t.Fatalf("reference %d: status %d, body %s", i, status, body)
		}
		refs[i] = normalizePayload(t, body)
	}

	before := runtime.NumGoroutine()

	const (
		workers     = 16
		perWorker   = 25
		deadlineMod = 5 // every 5th request carries a 1ms deadline
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				vi := (w + i) % len(variants)
				req := variants[vi]
				timed := i%deadlineMod == 0 && req.Doc == "xmark"
				if timed {
					req.TimeoutMS = 1
				}
				var buf bytes.Buffer
				json.NewEncoder(&buf).Encode(&req)
				resp, err := ts.Client().Post(ts.URL+"/search", "application/json", &buf)
				if err != nil {
					errs <- fmt.Errorf("worker %d req %d: %v", w, i, err)
					return
				}
				var body bytes.Buffer
				body.ReadFrom(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					got := normalizePayload(t, body.Bytes())
					if !bytes.Equal(got, refs[vi]) {
						errs <- fmt.Errorf("worker %d req %d (variant %d): response diverged from reference\n got %s\nwant %s",
							w, i, vi, got, refs[vi])
						return
					}
				case http.StatusGatewayTimeout:
					if !timed {
						errs <- fmt.Errorf("worker %d req %d (variant %d): unexpected timeout", w, i, vi)
						return
					}
					var er errorResponse
					if err := json.Unmarshal(body.Bytes(), &er); err != nil || er.Kind != "timeout" {
						errs <- fmt.Errorf("worker %d req %d: malformed timeout body %s", w, i, body.Bytes())
						return
					}
				default:
					errs <- fmt.Errorf("worker %d req %d (variant %d): status %d body %s",
						w, i, vi, resp.StatusCode, body.Bytes())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Cache().Stats()
	if st.Hits == 0 {
		t.Error("stress run produced no cache hits")
	}
	if st.Entries > st.Capacity {
		t.Errorf("cache holds %d entries over capacity %d", st.Entries, st.Capacity)
	}

	// Goroutine-leak check: drain idle HTTP conns, then wait for the
	// count to settle back to (near) the pre-stress baseline.
	if tr, ok := ts.Client().Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before stress, %d after settle\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMetricsScrapeStress scrapes /metrics continuously while search
// traffic (including slow-query-logged executions and timeouts) is in
// flight. Every scrape must parse as valid exposition format — a
// torn render under concurrent counter updates is a bug — and the
// whole thing runs under -race to catch unsynchronized access between
// Observe and WritePrometheus.
func TestMetricsScrapeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	_, ts := newTestServer(t, Config{
		CacheSize:          8,
		SlowQueryThreshold: time.Microsecond, // exercise the log under load
		SlowQueryLog:       func(string, ...any) {},
	})

	variants := []SearchRequest{
		{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3},
		{Doc: "cars", Keywords: "good condition", K: 5},
		{Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`, Profile: personProfile(2), K: 5, Parallelism: 2},
		{Doc: "*", Keywords: "good condition", K: 4},
	}

	stop := make(chan struct{})
	var searchers, scrapers sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < 4; w++ {
		searchers.Add(1)
		go func(w int) {
			defer searchers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := variants[(w+i)%len(variants)]
				if i%7 == 0 && req.Doc == "xmark" {
					req.TimeoutMS = 1
				}
				var buf bytes.Buffer
				json.NewEncoder(&buf).Encode(&req)
				resp, err := ts.Client().Post(ts.URL+"/search", "application/json", &buf)
				if err != nil {
					report(fmt.Errorf("search worker %d: %v", w, err))
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	for sc := 0; sc < 3; sc++ {
		scrapers.Add(1)
		go func(sc int) {
			defer scrapers.Done()
			for i := 0; i < 30; i++ {
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					report(fmt.Errorf("scraper %d: %v", sc, err))
					return
				}
				var body bytes.Buffer
				body.ReadFrom(resp.Body)
				resp.Body.Close()
				if _, err := metrics.ParseExposition(body.String()); err != nil {
					report(fmt.Errorf("scraper %d iteration %d: invalid exposition under load: %v", sc, i, err))
					return
				}
			}
		}(sc)
	}

	// Let the scrapers finish their quota, then stop the traffic.
	done := make(chan struct{})
	go func() { scrapers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Error("scrape stress did not finish in 60s")
	}
	close(stop)
	searchers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
