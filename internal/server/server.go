// Package server is PIMENTO's query serving layer: an HTTP JSON API
// over a registry of indexed documents, with per-request deadlines
// plumbed down into plan-operator loops, an LRU result cache with
// single-flight admission, and per-endpoint counters.
//
// Endpoints:
//
//	POST   /search       — personalized search over one document or a
//	                       fan-out across the whole registry (doc "" or "*")
//	POST   /explain      — the Section 5 static analyses for (query, profile)
//	PUT    /docs/{name}  — add or replace a document (live corpus mutation)
//	DELETE /docs/{name}  — remove a document
//	GET    /docs         — list documents + corpus generation
//	GET    /watch        — long-poll feed of corpus mutations
//	GET    /healthz      — liveness plus document count
//	GET    /statsz       — request/cache/timeout counters
//
// See DESIGN.md §10 for the cache key anatomy, the cancellation
// checkpoints and the single-flight semantics, and §15 for the
// mutation protocol and generation-stamped invalidation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// maxBodyBytes bounds a request body; anything larger is a 4xx, not an
// allocation.
const maxBodyBytes = 1 << 20

// Config tunes a Server.
type Config struct {
	// Pipeline is the text pipeline documents are indexed under.
	Pipeline text.Pipeline
	// CacheSize is the result cache capacity in entries (default 512).
	CacheSize int
	// DefaultTimeout bounds every request that does not carry its own
	// timeout_ms; 0 means no server-side deadline (client disconnects
	// still cancel).
	DefaultTimeout time.Duration
	// MaxK caps the per-request result size (default 10000) so a
	// hostile K cannot force giant allocations.
	MaxK int
	// SlowQueryThreshold enables the slow-query log: any fresh search
	// execution at least this slow is logged asynchronously with its
	// query, plan shape and per-operator stats. 0 disables the log (and
	// its goroutine).
	SlowQueryThreshold time.Duration
	// SlowQueryLog overrides the slow-query sink (default: the standard
	// logger). Tests inject a capture function here.
	SlowQueryLog func(format string, args ...any)
	// AnalysisCacheSize is the analysis-verdict cache capacity in
	// entries (default 256). The cache is shared across every engine:
	// profile analysis is document-independent, so a profile analyzed
	// for one document is warm for all of them.
	AnalysisCacheSize int
	// DefaultAccess is the candidate access path used when a request
	// does not name one (zero value: plan.AccessAuto). Requests override
	// it per search with the "access" field.
	DefaultAccess plan.AccessPath
	// PoolWorkers sizes the admission scheduler: at most this many
	// searches execute concurrently, each sequential unless
	// ParallelMinNodes grants plan workers. 0 means GOMAXPROCS; -1
	// disables the scheduler entirely — every request executes
	// immediately with the legacy unconditional-GOMAXPROCS parallelism
	// (the load harness's naive baseline, not a production setting).
	PoolWorkers int
	// PoolQueue is the admission waiting-room capacity: requests beyond
	// it are shed with 503 + Retry-After. 0 means 64×PoolWorkers;
	// negative means no waiting room.
	PoolQueue int
	// PoolMaxWait bounds how long a request may sit queued before being
	// shed with 429 + Retry-After. 0 disables the bound (the request's
	// own deadline still applies while it waits).
	PoolMaxWait time.Duration
	// ParallelMinNodes is the document node count above which a request
	// with parallelism 0 is granted intra-query workers
	// (plan.ResolveParallelism): 0 means plan.DefaultParallelMinNodes.
	// Ignored when the scheduler is disabled (legacy resolution).
	ParallelMinNodes int
	// MaxDocBytes bounds a PUT /docs/{name} body (default 64 MiB);
	// larger uploads are rejected with 413 before parsing.
	MaxDocBytes int64
	// WatchBuffer is how many recent mutations GET /watch retains for
	// since-cursor replay (default 256); clients whose cursor falls off
	// the buffer are told to resync.
	WatchBuffer int
	// Shards is the number of consistent-hash partitions fan-out
	// searches scatter over; values below 2 keep the unsharded fan-out.
	// Sharded and unsharded fan-outs return byte-identical bodies when
	// no shard degrades (pinned by TestFanoutShardedDifferential).
	Shards int
	// ShardDeadlineFrac is the fraction of a request's remaining
	// deadline each shard is granted (0 means
	// corpus.DefaultShardDeadlineFrac). A shard that exhausts its budget
	// while the request is still alive is dropped and reported in the
	// response's degraded fields instead of failing the whole fan-out.
	ShardDeadlineFrac float64
}

// Server serves personalized XML search over a registry of documents.
type Server struct {
	cfg Config
	reg *corpus.Corpus

	// mutMu serializes the commit half of every mutation (snapshot swap
	// + cache invalidation + watch publish) so /watch sees generations
	// in order and an invalidation can never interleave into another
	// mutation's publish. Searches never take it: they read one atomic
	// corpus snapshot instead.
	mutMu sync.Mutex
	watch *watchHub

	cache    *ResultCache
	analysis *engine.AnalysisCache
	// profiles is the named-profile store: fingerprint-deduplicated,
	// vetted at registration through the shared analysis cache.
	profiles *registry.Registry
	mux      *http.ServeMux
	// shardStart is corpus.ShardOptions.ShardStart for fan-out scatter:
	// nil in production, injected by tests to simulate a slow shard.
	shardStart func(shard int)
	// pool is the admission scheduler; nil when Config.PoolWorkers is -1
	// (legacy mode: unbounded concurrent executions).
	pool *sched.Pool

	stats   serverStats
	metrics *serverMetrics
	slowlog *slowQueryLogger // nil unless Config.SlowQueryThreshold > 0
}

// serverStats is the counter block behind /statsz. All fields are
// atomics: handlers bump them concurrently.
type serverStats struct {
	searchRequests  atomic.Int64
	explainRequests atomic.Int64
	lintRequests    atomic.Int64
	healthRequests  atomic.Int64
	statsRequests   atomic.Int64
	metricsRequests atomic.Int64
	errors4xx       atomic.Int64
	errors5xx       atomic.Int64
	timeouts        atomic.Int64
	canceled        atomic.Int64
	// shed counts searches refused by the admission scheduler (503
	// queue-full and 429 wait-bound sheds).
	shed     atomic.Int64
	inFlight atomic.Int64
	// Mutation counters: applied puts, applied deletes, and refused
	// mutations (bad name, parse failure, delete of a missing doc).
	docsRequests  atomic.Int64
	watchRequests atomic.Int64
	mutPuts       atomic.Int64
	mutDeletes    atomic.Int64
	mutRejected   atomic.Int64
	// Profile-registry counters: applied puts/deletes and vetoed
	// registrations (vet-on-write rejections change no state).
	profilesRequests atomic.Int64
	profilePuts      atomic.Int64
	profileDeletes   atomic.Int64
	profileRejected  atomic.Int64
	// Fan-out scatter counters: shards that completed, shards dropped
	// for blowing their deadline budget, and responses served degraded.
	fanoutShardsOK       atomic.Int64
	fanoutShardsTimedOut atomic.Int64
	fanoutDegraded       atomic.Int64
	// watchSubscribers is the number of /watch long polls parked right
	// now (gauge, not counter).
	watchSubscribers atomic.Int64
}

// New returns an empty server; add documents with Add/AddXML.
func New(cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 512
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 10000
	}
	if cfg.AnalysisCacheSize == 0 {
		cfg.AnalysisCacheSize = 256
	}
	if cfg.MaxDocBytes == 0 {
		cfg.MaxDocBytes = 64 << 20
	}
	s := &Server{
		cfg:      cfg,
		reg:      corpus.New(cfg.Pipeline),
		watch:    newWatchHub(cfg.WatchBuffer),
		cache:    NewResultCache(cfg.CacheSize),
		analysis: engine.NewAnalysisCache(cfg.AnalysisCacheSize),
		metrics:  newServerMetrics(),
	}
	// Registration vets through the shared analysis cache: the verdict
	// filled at PUT /profiles/{name} is the one /search and /lint hit,
	// so N names over one body cost exactly one analysis fill.
	s.profiles = registry.New(func(ctx context.Context, p *profile.Profile) ([]analysis.Diagnostic, error) {
		pv, err := s.analysis.ProfileVerdict(ctx, p)
		if err != nil {
			return nil, err
		}
		return pv.Diags, nil
	})
	if cfg.PoolWorkers >= 0 {
		s.pool = sched.New(sched.Config{
			Workers: cfg.PoolWorkers,
			Queue:   cfg.PoolQueue,
			MaxWait: cfg.PoolMaxWait,
			ObserveWait: func(d time.Duration) {
				s.metrics.schedQueueWait.Observe(d.Seconds())
			},
		})
		// One budget for every extra goroutine: registry fan-out helpers
		// and parallel plan partitions draw from the same allowance, so
		// their product can never exceed one machine's worth.
		s.reg.SetBudget(s.pool.Budget())
	}
	if cfg.SlowQueryThreshold > 0 {
		s.slowlog = newSlowQueryLogger(cfg.SlowQueryThreshold, cfg.SlowQueryLog,
			s.metrics.slowTotal, s.metrics.slowDropped)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /lint", s.handleLint)
	mux.HandleFunc("PUT /profiles/{name}", s.handlePutProfile)
	mux.HandleFunc("GET /profiles/{name}", s.handleGetProfile)
	mux.HandleFunc("DELETE /profiles/{name}", s.handleDeleteProfile)
	mux.HandleFunc("GET /profiles", s.handleListProfiles)
	mux.HandleFunc("PUT /docs/{name}", s.handlePutDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("GET /docs", s.handleListDocs)
	mux.HandleFunc("GET /watch", s.handleWatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Close releases background resources (today: the slow-query logging
// goroutine). Safe to call more than once; the HTTP handler stays
// usable but slow queries are no longer logged.
func (s *Server) Close() {
	if s.slowlog != nil {
		s.slowlog.close()
	}
}

// Add indexes doc under name (replacing any previous document with
// that name). It is the library-side spelling of PUT /docs/{name}: the
// index and content fingerprint are built off-lock, the snapshot swap
// invalidates exactly the cached results that depended on the name,
// and /watch subscribers see the mutation.
func (s *Server) Add(name string, doc *xmldoc.Document) {
	s.applyPut(name, s.reg.Prepare(doc))
}

// AddXML parses src and adds it under name.
func (s *Server) AddXML(name, src string) error {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return fmt.Errorf("server: %s: %w", name, err)
	}
	s.Add(name, doc)
	return nil
}

// Docs returns the registered document names.
func (s *Server) Docs() []string { return s.reg.Names() }

// Cache exposes the result cache (for stats and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Pool exposes the admission scheduler (nil when disabled), for stats
// and tests.
func (s *Server) Pool() *sched.Pool { return s.pool }

// AnalysisCache exposes the shared analysis-verdict cache (for stats
// and tests).
func (s *Server) AnalysisCache() *engine.AnalysisCache { return s.analysis }

// Profiles exposes the named-profile registry (for stats and tests).
func (s *Server) Profiles() *registry.Registry { return s.profiles }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// engineForEntry layers a per-request engine over one snapshot entry.
// The wrapper is cheap (the entry's index is reused, never rebuilt) and
// carries the entry's generation-stamped fingerprint, so every cache
// key derived through it is pinned to the snapshot the caller loaded —
// a swap between key derivation and execution cannot mix generations.
func (s *Server) engineForEntry(e *corpus.Entry) *engine.Engine {
	eng := engine.FromParts(e.Document(), e.Index())
	eng.SetFingerprint(e.Fingerprint())
	eng.UseAnalysisCache(s.analysis)
	return eng
}

// --- request / response wire types ---

// SearchRequest is the /search body.
type SearchRequest struct {
	// Doc selects a registered document; "" or "*" fans the query out
	// across the whole registry.
	Doc string `json:"doc"`
	// Query is the tree-pattern query source; Keywords is the
	// content-only alternative (exactly one must be set).
	Query    string `json:"query"`
	Keywords string `json:"keywords"`
	// Profile is the profile DSL source ("" disables personalization).
	Profile string `json:"profile"`
	// ProfileName references a profile registered via
	// PUT /profiles/{name}; mutually exclusive with the inline Profile.
	// The resolved profile's *content* — not the name — feeds the
	// result-cache key, so two names over one body share cache entries
	// and a rename can never alias them.
	ProfileName string `json:"profile_name"`
	K           int    `json:"k"`
	// Strategy: "" (push) | naive | interleave | interleave-sort |
	// push | push-deep.
	Strategy    string `json:"strategy"`
	Parallelism int    `json:"parallelism"`
	Twig        bool   `json:"twig"`
	Literal     bool   `json:"literal"`
	// Access selects the candidate access path: "" or "auto"
	// (corpus-size heuristic), "scan", or "twigjoin".
	Access string `json:"access"`
	// TimeoutMS bounds this request; it can only tighten the server's
	// DefaultTimeout, never extend it.
	TimeoutMS int `json:"timeout_ms"`
	// NoCache bypasses the result cache (the request neither reads nor
	// populates it).
	NoCache bool `json:"no_cache"`
}

// SearchResult is one ranked answer on the wire.
type SearchResult struct {
	Doc     string  `json:"doc,omitempty"`
	Node    uint32  `json:"node"`
	Path    string  `json:"path"`
	S       float64 `json:"s"`
	K       float64 `json:"k"`
	Snippet string  `json:"snippet,omitempty"`
}

// SearchBody is the cacheable portion of the /search payload: the
// result of an execution, independent of which request serves it. The
// cache stores its marshaled bytes, so repeated identical requests get
// a byte-identical result payload. ExecUS and Trace describe the
// execution that produced the results — on a cache hit they replay the
// leader's numbers, which is the truthful reading.
type SearchBody struct {
	Results    []SearchResult `json:"results"`
	K          int            `json:"k"`
	Strategy   string         `json:"strategy"`
	AppliedSRs []string       `json:"applied_srs,omitempty"`
	PlanShape  string         `json:"plan,omitempty"`
	Workers    int            `json:"workers,omitempty"`
	// Parallelism is the resolved parallelism the execution was granted
	// (plan.ResolveParallelism): what actually ran, not what the request
	// asked for — mirroring the "access" field's resolved-value
	// contract. Fan-out searches report 1 (per-document plans are
	// sequential; the fan-out supplies the concurrency).
	Parallelism  int `json:"parallelism,omitempty"`
	TotalPruned  int `json:"total_pruned,omitempty"`
	DocsSearched int `json:"docs_searched"`
	// Degraded is true when a sharded fan-out dropped shards that blew
	// their per-shard deadline budget; TimedOutShards lists them and
	// Results covers only the survivors. Degraded payloads are never
	// cached, so a retry gets a fresh chance at a complete answer.
	Degraded       bool  `json:"degraded,omitempty"`
	TimedOutShards []int `json:"timed_out_shards,omitempty"`
	// ExecUS is the wall time of the execution that produced these
	// results, in microseconds.
	ExecUS int64 `json:"exec_us"`
	// Trace is the pipeline trace of that execution (single-document
	// searches only).
	Trace []metrics.Span `json:"trace,omitempty"`
}

// SearchResponse is the full /search payload: the cacheable body plus
// two volatile per-request fields the handler splices onto the cached
// bytes at write time. ElapsedUS is *this request's* serve time — on a
// cache hit it is the (microsecond-scale) lookup cost, not the
// original execution's elapsed time, which lives in ExecUS. CacheAgeMS
// is how long ago the cached execution ran (0 on a miss or bypass).
// The X-Cache header (MISS / HIT / COALESCED) carries the outcome.
type SearchResponse struct {
	SearchBody
	ElapsedUS  int64 `json:"elapsed_us"`
	CacheAgeMS int64 `json:"cache_age_ms"`
}

// cachedSearch is the cache value: the marshaled SearchBody plus the
// store timestamp the handler needs to compute CacheAgeMS.
type cachedSearch struct {
	body     []byte
	storedAt time.Time
}

// spliceVolatile turns marshaled SearchBody bytes into a full
// SearchResponse payload by splicing the per-request fields before the
// closing brace. Splicing (rather than re-marshaling) keeps the cached
// portion byte-identical across requests.
func spliceVolatile(body []byte, elapsedUS, ageMS int64) []byte {
	out := make([]byte, 0, len(body)+48)
	out = append(out, body[:len(body)-1]...)
	out = append(out, fmt.Sprintf(`,"elapsed_us":%d,"cache_age_ms":%d}`, elapsedUS, ageMS)...)
	return out
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"` // parse | not_found | timeout | canceled | engine
}

// --- handlers ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.stats.searchRequests.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	start := time.Now()
	done := s.metrics.startRequest("search")
	defer done()

	var sreq SearchRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("bad request body: %w", err))
		return
	}

	// One atomic snapshot load serves the whole request: existence
	// checks, cache-key fingerprints and execution all resolve against
	// it, so a corpus swap landing mid-request can neither mix
	// generations (a key from one snapshot filled by another's index)
	// nor tear a fan-out (every per-document read sees one view).
	snap := s.reg.Snapshot()

	req, status, err := s.buildEngineRequest(snap, &sreq)
	if err != nil {
		kind := "parse"
		if status == http.StatusNotFound {
			kind = "not_found"
		}
		s.writeError(w, status, kind, err)
		return
	}

	ctx, cancel := s.requestContext(r, sreq.TimeoutMS)
	defer cancel()

	fill := func() (any, error) { return s.execute(ctx, snap, &sreq, req) }

	var payload any
	outcome := Miss
	if sreq.NoCache {
		// Bypass, not a miss: the cache is neither consulted nor filled,
		// so no X-Cache header is set.
		payload, err = fill()
	} else {
		key, tags := s.cacheKey(snap, &sreq, req)
		payload, outcome, err = s.cache.DoTagged(ctx, key, tags, fill)
		if err == nil {
			w.Header().Set("X-Cache", strings.ToUpper(outcome.String()))
		}
	}
	if err != nil {
		// A degraded fan-out travels as an error so it is never cached;
		// unwrap and serve it with 200. No X-Cache header: the cache was
		// neither hit nor filled (coalesced followers receive the same
		// error and retry as fresh leaders).
		var unc *uncacheableError
		if errors.As(err, &unc) {
			payload, outcome, err = unc.cs, Miss, nil
		}
	}
	if err != nil {
		s.writeSearchError(w, err)
		return
	}

	// Splice the per-request fields onto the cached body: elapsed_us is
	// this request's serve time (a past bug replayed the leader's
	// execution time on HITs — regression: TestCacheHitElapsed), and
	// cache_age_ms says how stale a hit is.
	cs := payload.(*cachedSearch)
	var ageMS int64
	if outcome == Hit {
		ageMS = time.Since(cs.storedAt).Milliseconds()
	}
	out := spliceVolatile(cs.body, time.Since(start).Microseconds(), ageMS)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// buildEngineRequest validates and compiles the wire request into an
// engine request, resolving document existence against the caller's
// snapshot. It returns the HTTP status to use on error.
func (s *Server) buildEngineRequest(snap *corpus.Snapshot, sreq *SearchRequest) (engine.Request, int, error) {
	var req engine.Request
	if (sreq.Query == "") == (sreq.Keywords == "") {
		return req, http.StatusBadRequest, errors.New("exactly one of query or keywords must be set")
	}
	// Fan-out searches do not support the per-engine extras. Rejecting
	// here — with the other 400s, before admission and single-flight —
	// keeps malformed requests from occupying a pool slot or coalescing
	// followers onto a guaranteed failure (regression:
	// TestFanoutOptionsRejectedBeforeAdmission; the check used to live
	// inside execute).
	if s.fanout(sreq) && (sreq.Twig || sreq.Literal || sreq.Access != "") {
		return req, http.StatusBadRequest, errors.New("twig, literal and access are single-document options")
	}
	if sreq.K < 0 {
		return req, http.StatusBadRequest, fmt.Errorf("negative k %d", sreq.K)
	}
	if sreq.K > s.cfg.MaxK {
		return req, http.StatusBadRequest, fmt.Errorf("k %d exceeds the maximum of %d", sreq.K, s.cfg.MaxK)
	}
	// The contract matches what the plan layer will actually run:
	// [0, plan.MaxParallelism], rejected — not silently clamped — above
	// it. (The old ceiling of 1024 accepted values the plan quietly cut
	// down to the candidate count; the response's "parallelism" field
	// now reports the resolved value so clients can see what ran.)
	if sreq.Parallelism < 0 || sreq.Parallelism > plan.MaxParallelism {
		return req, http.StatusBadRequest,
			fmt.Errorf("parallelism %d out of range [0,%d]", sreq.Parallelism, plan.MaxParallelism)
	}
	var err error
	if sreq.Query != "" {
		req.Query, err = tpq.Parse(sreq.Query)
	} else {
		req.Query, err = keywordQuery(sreq.Keywords)
	}
	if err != nil {
		return req, http.StatusBadRequest, err
	}
	if sreq.Profile != "" && sreq.ProfileName != "" {
		return req, http.StatusBadRequest, errors.New("profile and profile_name are mutually exclusive")
	}
	if sreq.Profile != "" {
		req.Profile, err = profile.ParseProfile(sreq.Profile)
		if err != nil {
			return req, http.StatusBadRequest, err
		}
	}
	if sreq.ProfileName != "" {
		st, ok := s.profiles.Get(sreq.ProfileName)
		if !ok {
			return req, http.StatusNotFound, fmt.Errorf("unknown profile %q", sreq.ProfileName)
		}
		// The resolved body flows into the engine request exactly as an
		// inline profile would, so the cache key (which folds the
		// canonical profile) is automatically fingerprint-keyed: the name
		// never reaches it.
		req.Profile = st.Profile()
	}
	req.Strategy, err = parseStrategy(sreq.Strategy)
	if err != nil {
		return req, http.StatusBadRequest, err
	}
	req.K = sreq.K
	req.Parallelism = sreq.Parallelism
	req.TwigAccess = sreq.Twig
	req.LiteralRewrite = sreq.Literal
	req.Access = s.cfg.DefaultAccess
	if sreq.Access != "" {
		req.Access, err = plan.ParseAccessPath(sreq.Access)
		if err != nil {
			return req, http.StatusBadRequest, err
		}
	}
	// The serving layer always pays for operator timing: /metrics and
	// the slow-query log attribute time inside the plan with it.
	req.Timing = true
	if s.pool != nil {
		// Under the scheduler, parallelism 0 resolves by document size
		// and extra goroutines come from the shared budget. With the
		// pool disabled (PoolWorkers -1), keep the legacy unconditional
		// GOMAXPROCS resolution — the load harness's naive baseline.
		req.ParallelMinNodes = s.cfg.ParallelMinNodes
		req.Budget = s.pool.Budget()
	} else {
		req.ParallelMinNodes = -1
	}

	if !s.fanout(sreq) {
		if _, ok := snap.Entry(sreq.Doc); !ok {
			return req, http.StatusNotFound, fmt.Errorf("unknown document %q", sreq.Doc)
		}
	} else if snap.Len() == 0 {
		return req, http.StatusNotFound, errors.New("no documents registered")
	}
	return req, 0, nil
}

// fanout reports whether the request targets the whole registry.
func (s *Server) fanout(sreq *SearchRequest) bool {
	return sreq.Doc == "" || sreq.Doc == "*"
}

// cacheKey derives the canonical result-cache key and invalidation
// tags for the request, entirely from the caller's snapshot. The key
// carries the *resolved* parallelism — what the plan will actually run
// given the document size and threshold — so requests that resolve
// identically share an entry and a threshold change can never serve a
// stale one (see engine.Request.CacheKey). Fingerprints are
// generation-stamped (corpus.Entry.Fingerprint), so a key minted here
// can never collide with one minted against any other generation of
// the same document. buildEngineRequest already established the
// document exists in this snapshot.
func (s *Server) cacheKey(snap *corpus.Snapshot, sreq *SearchRequest, req engine.Request) (string, []string) {
	if s.fanout(sreq) {
		// Fan-out per-document plans always run sequentially (the
		// fan-out itself is the parallelism); the result depends on
		// every document, so any mutation invalidates it (TagAll).
		return req.CacheKey(snap.Fingerprint(), 1), []string{TagAll}
	}
	entry, _ := snap.Entry(sreq.Doc)
	e := s.engineForEntry(entry)
	return req.CacheKey(e.Fingerprint(), e.ResolvedParallelism(&req)), []string{sreq.Doc}
}

// execute runs the search (single document or fan-out) against the
// caller's snapshot — the same one its cache key was derived from —
// records the execution's plan and pipeline metrics, feeds the
// slow-query log, and marshals the cacheable body. It runs at most
// once per cache key — inside the single-flight fill — so cache hits
// neither re-record operator metrics nor re-trip the slow-query log.
func (s *Server) execute(ctx context.Context, snap *corpus.Snapshot, sreq *SearchRequest, req engine.Request) (*cachedSearch, error) {
	// Admission happens here — inside the single-flight fill — so cache
	// hits and coalesced followers never occupy a slot; only work that
	// will actually execute competes for the pool.
	if s.pool != nil {
		release, err := s.pool.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	var body SearchBody
	if s.fanout(sreq) {
		// buildEngineRequest already rejected the per-engine extras
		// (twig/literal/access) before admission.
		var resp *corpus.Response
		if s.cfg.Shards > 1 {
			sresp, serr := snap.SearchSharded(ctx, req.Query, req.Profile, req.K, req.Strategy,
				corpus.ShardOptions{
					Shards:       s.cfg.Shards,
					DeadlineFrac: s.cfg.ShardDeadlineFrac,
					ShardStart:   s.shardStart,
				})
			if serr != nil {
				return nil, serr
			}
			s.recordFanout(sresp)
			resp = &sresp.Response
			body.Degraded = sresp.Degraded
			body.TimedOutShards = sresp.TimedOutShards
		} else {
			var err error
			resp, err = snap.SearchContext(ctx, req.Query, req.Profile, req.K, req.Strategy)
			if err != nil {
				return nil, err
			}
		}
		degraded, timedOut := body.Degraded, body.TimedOutShards
		body = SearchBody{
			Degraded:       degraded,
			TimedOutShards: timedOut,
			Results:        make([]SearchResult, 0, len(resp.Results)),
			K:              resolveK(req.K),
			Strategy:       req.Strategy.String(),
			AppliedSRs:     resp.AppliedSRs,
			Parallelism:    1,
			DocsSearched:   resp.DocsSearched,
			ExecUS:         resp.Elapsed.Microseconds(),
		}
		for _, res := range resp.Results {
			body.Results = append(body.Results, SearchResult{
				Doc: res.DocName, Node: uint32(res.Node), Path: res.Path,
				S: res.S, K: res.K, Snippet: res.Snippet,
			})
		}
		if s.slowlog != nil {
			s.slowlog.observe(slowQuery{
				Doc: sreq.Doc, Query: querySource(sreq), Elapsed: resp.Elapsed,
				Plan: fmt.Sprintf("fan-out over %d docs", resp.DocsSearched),
			})
		}
	} else {
		entry, ok := snap.Entry(sreq.Doc)
		if !ok {
			// Theoretically unreachable: buildEngineRequest verified the
			// name against the same snapshot this execution resolves.
			// Kept panic-free and classified as 404 — matching
			// buildEngineRequest's status for the identical condition (it
			// used to return 400 here; regression: TestExecuteUnknownDoc).
			return nil, &notFoundError{fmt.Errorf("unknown document %q", sreq.Doc)}
		}
		resp, err := s.engineForEntry(entry).SearchContext(ctx, req)
		if err != nil {
			return nil, err
		}
		body = SearchBody{
			Results:      make([]SearchResult, 0, len(resp.Results)),
			K:            resolveK(req.K),
			Strategy:     req.Strategy.String(),
			AppliedSRs:   resp.AppliedSRs,
			PlanShape:    resp.PlanShape,
			Workers:      resp.Workers,
			Parallelism:  resp.Parallelism,
			TotalPruned:  resp.TotalPruned,
			DocsSearched: 1,
			ExecUS:       resp.Elapsed.Microseconds(),
			Trace:        resp.Trace,
		}
		for _, res := range resp.Results {
			body.Results = append(body.Results, SearchResult{
				Doc: sreq.Doc, Node: uint32(res.Node), Path: res.Path,
				S: res.S, K: res.K, Snippet: res.Snippet,
			})
		}
		s.metrics.recordSearch(resp)
		if s.slowlog != nil {
			s.slowlog.observe(slowQuery{
				Doc: sreq.Doc, Query: querySource(sreq), Elapsed: resp.Elapsed,
				Plan: resp.PlanShape, Stats: resp.Stats,
			})
		}
	}
	b, err := json.Marshal(&body)
	if err != nil {
		return nil, err
	}
	cs := &cachedSearch{body: b, storedAt: time.Now()}
	if body.Degraded {
		// A partial answer must not be memoized: carrying it out of the
		// single-flight fill as an error keeps the cache empty (fill
		// errors are never stored) while the handler unwraps the payload
		// and serves it with 200.
		return nil, &uncacheableError{cs: cs}
	}
	return cs, nil
}

// recordFanout folds one sharded scatter-gather's outcome into the
// /statsz counters and the pimento_fanout_shards_total series.
func (s *Server) recordFanout(sresp *corpus.ShardedResponse) {
	healthy := sresp.ShardsRun - len(sresp.TimedOutShards)
	s.stats.fanoutShardsOK.Add(int64(healthy))
	s.metrics.fanoutShards["ok"].Add(int64(healthy))
	if sresp.Degraded {
		s.stats.fanoutShardsTimedOut.Add(int64(len(sresp.TimedOutShards)))
		s.metrics.fanoutShards["timeout"].Add(int64(len(sresp.TimedOutShards)))
		s.stats.fanoutDegraded.Add(1)
	}
}

// querySource returns whichever query form the request carried, for
// log lines.
func querySource(sreq *SearchRequest) string {
	if sreq.Query != "" {
		return sreq.Query
	}
	return "keywords: " + sreq.Keywords
}

// LintRequest is the /lint body: a profile to vet, optionally against a
// query (which enables the query-scoped checks: conflict cycles,
// unsatisfiable rewrites, inert ordering rules).
type LintRequest struct {
	Profile string `json:"profile"`
	Query   string `json:"query"`
}

// LintResponse reports the vet diagnostics for a (profile[, query])
// pair. The payload is byte-stable for identical inputs: diagnostics
// are sorted canonically, witnesses carry canonical cycle rotations,
// and the per-check counts marshal with sorted keys.
type LintResponse struct {
	// Clean is true when no error-severity diagnostic was found; such a
	// profile is accepted by /search (Section 5's gates pass).
	Clean bool `json:"clean"`
	// Errors is the number of error-severity diagnostics.
	Errors int `json:"errors"`
	// Diagnostics is the sorted findings list.
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	// Counts maps check ID -> occurrences in this response.
	Counts map[string]int `json:"counts,omitempty"`
}

func lintResponse(ds []analysis.Diagnostic) *LintResponse {
	resp := &LintResponse{
		Errors:      analysis.ErrorCount(ds),
		Diagnostics: ds,
	}
	resp.Clean = resp.Errors == 0
	if len(ds) > 0 {
		resp.Counts = make(map[string]int)
		for _, d := range ds {
			resp.Counts[d.ID]++
		}
	}
	return resp
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	s.stats.lintRequests.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	done := s.metrics.startRequest("lint")
	defer done()

	var lreq LintRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lreq); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("bad request body: %w", err))
		return
	}
	if lreq.Profile == "" {
		s.writeError(w, http.StatusBadRequest, "parse", errors.New("profile is required"))
		return
	}
	prof, err := profile.ParseProfile(lreq.Profile)
	if err != nil {
		// A duplicate rule identifier is a *finding*, not a malformed
		// request: report it as the P001 diagnostic the parser's error
		// cites. Anything else is a plain parse failure.
		if strings.Contains(err.Error(), "["+analysis.DiagDuplicateName+"]") {
			ds := []analysis.Diagnostic{{
				ID:       analysis.DiagDuplicateName,
				Severity: analysis.SevError,
				Message:  err.Error(),
			}}
			s.analysis.RecordDiagnostics(ds)
			s.writeJSON(w, http.StatusOK, lintResponse(ds))
			return
		}
		s.writeError(w, http.StatusBadRequest, "parse", err)
		return
	}
	var q *tpq.Query
	if lreq.Query != "" {
		if q, err = tpq.Parse(lreq.Query); err != nil {
			s.writeError(w, http.StatusBadRequest, "parse", err)
			return
		}
	}
	ds, err := s.vetDiagnostics(r.Context(), prof, q)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, lintResponse(ds))
}

// vetDiagnostics assembles the full diagnostics list for (prof[, q])
// through the shared analysis cache, so repeated lints — and searches
// with the same profile — hit memoized verdicts. The only possible
// error is ctx expiring mid-fill.
func (s *Server) vetDiagnostics(ctx context.Context, prof *profile.Profile, q *tpq.Query) ([]analysis.Diagnostic, error) {
	pv, err := s.analysis.ProfileVerdict(ctx, prof)
	if err != nil {
		return nil, err
	}
	ds := append([]analysis.Diagnostic(nil), pv.Diags...)
	if q != nil {
		qv, err := s.analysis.QueryVerdict(ctx, prof, q)
		if err != nil {
			return nil, err
		}
		ds = append(ds, qv.Diags...)
	}
	analysis.SortDiagnostics(ds)
	return ds, nil
}

// ExplainRequest is the /explain body.
type ExplainRequest struct {
	Query   string `json:"query"`
	Profile string `json:"profile"`
}

// ExplainResponse reports the Section 5 static analyses plus the
// trace of the analysis pipeline that produced them.
type ExplainResponse struct {
	Ambiguous   bool           `json:"ambiguous"`
	Cycle       []string       `json:"cycle,omitempty"`
	Suggestion  string         `json:"suggestion,omitempty"`
	ConflictErr string         `json:"conflict_error,omitempty"`
	Applied     []string       `json:"applied_srs,omitempty"`
	Flock       []string       `json:"flock,omitempty"`
	Trace       []metrics.Span `json:"trace,omitempty"`
	// Diagnostics is the vet suite's findings for (profile, query) —
	// the same list POST /lint returns.
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.stats.explainRequests.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	done := s.metrics.startRequest("explain")
	defer done()

	var ereq ExplainRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&ereq); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("bad request body: %w", err))
		return
	}
	if ereq.Query == "" || ereq.Profile == "" {
		s.writeError(w, http.StatusBadRequest, "parse", errors.New("query and profile are required"))
		return
	}
	q, err := tpq.Parse(ereq.Query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", err)
		return
	}
	prof, err := profile.ParseProfile(ereq.Profile)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", err)
		return
	}
	pa := engine.AnalyzeProfile(prof, q)
	eresp := ExplainResponse{
		Ambiguous:  pa.Ambiguity.Ambiguous,
		Cycle:      pa.Ambiguity.Cycle,
		Suggestion: pa.Ambiguity.Suggestion,
		Applied:    pa.Applied,
		Trace:      pa.Trace,
	}
	if pa.ConflictErr != nil {
		eresp.ConflictErr = pa.ConflictErr.Error()
	}
	for _, fq := range pa.Flock {
		eresp.Flock = append(eresp.Flock, fq.String())
	}
	if ds, derr := s.vetDiagnostics(r.Context(), prof, q); derr == nil {
		eresp.Diagnostics = ds
	}
	s.writeJSON(w, http.StatusOK, &eresp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.stats.healthRequests.Add(1)
	done := s.metrics.startRequest("healthz")
	defer done()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"docs":   s.reg.Len(),
	})
}

// handleMetrics serves the Prometheus text exposition. Cache and
// registry totals are mirrored into the registry at scrape time (they
// have authoritative owners elsewhere); everything else is live.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.stats.metricsRequests.Add(1)
	done := s.metrics.startRequest("metrics")
	defer done()
	var ss *sched.Stats
	if s.pool != nil {
		st := s.pool.Stats()
		ss = &st
	}
	snap := s.reg.Snapshot()
	s.metrics.syncGauges(snap.Len(), snap.Generation(), s.cache.Stats(), s.analysis.Stats(), s.profiles.Stats(), ss)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// RegistryStats is the /statsz profile-registry counter block.
type RegistryStats struct {
	// Names is the number of registered profile names; Distinct the
	// number of deduplicated bodies behind them (Names − Distinct is
	// the dedup savings).
	Names    int `json:"names"`
	Distinct int `json:"distinct"`
	// Puts and Deletes count applied registrations/unbindings; Rejected
	// counts vet-on-write and parse refusals (which change no state).
	Puts     int64 `json:"puts"`
	Deletes  int64 `json:"deletes"`
	Rejected int64 `json:"rejected"`
}

// FanoutStats is the /statsz sharded-fan-out counter block.
type FanoutStats struct {
	// Shards is the configured partition count (1 = unsharded fan-out).
	Shards int `json:"shards"`
	// ShardsOK counts shards that completed within their deadline
	// budget; ShardsTimedOut counts shards dropped for blowing it.
	ShardsOK       int64 `json:"shards_ok"`
	ShardsTimedOut int64 `json:"shards_timed_out"`
	// Degraded counts fan-out responses served partial.
	Degraded int64 `json:"degraded"`
}

// MutationStats is the /statsz mutation counter block.
type MutationStats struct {
	// Puts and Deletes count applied mutations; Rejected counts refused
	// ones (bad name, parse failure, oversized body, delete of a
	// missing document) — rejections change no state.
	Puts     int64 `json:"puts"`
	Deletes  int64 `json:"deletes"`
	Rejected int64 `json:"rejected"`
}

// Statsz is the /statsz payload.
type Statsz struct {
	Docs int `json:"docs"`
	// Generation is the corpus generation: the total number of applied
	// mutations since the process started.
	Generation uint64           `json:"generation"`
	Endpoints  map[string]int64 `json:"endpoints"`
	Errors4xx  int64            `json:"errors_4xx"`
	Errors5xx  int64            `json:"errors_5xx"`
	Timeouts   int64            `json:"timeouts"`
	Canceled   int64            `json:"canceled"`
	// Shed counts searches the admission scheduler refused (503/429).
	Shed     int64         `json:"shed"`
	InFlight int64         `json:"in_flight"`
	Mutation MutationStats `json:"mutations"`
	// Registry is the named-profile store's counter block.
	Registry RegistryStats `json:"registry"`
	// Fanout reports the sharded scatter-gather counters; Shards is the
	// configured partition count (1 = unsharded).
	Fanout FanoutStats `json:"fanout"`
	// WatchSubscribers is the number of /watch long polls parked now.
	WatchSubscribers int64      `json:"watch_subscribers"`
	Cache            CacheStats `json:"cache"`
	// Analysis is the shared analysis-verdict cache's counter block.
	Analysis engine.AnalysisCacheStats `json:"analysis"`
	// Sched is the admission scheduler's counter block; nil when the
	// scheduler is disabled (PoolWorkers -1).
	Sched *sched.Stats `json:"sched,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.stats.statsRequests.Add(1)
	done := s.metrics.startRequest("statsz")
	defer done()
	s.writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot returns the current counters (the /statsz payload).
func (s *Server) Snapshot() Statsz {
	var ss *sched.Stats
	if s.pool != nil {
		st := s.pool.Stats()
		ss = &st
	}
	snap := s.reg.Snapshot()
	return Statsz{
		Docs:       snap.Len(),
		Generation: snap.Generation(),
		Endpoints: map[string]int64{
			"search":   s.stats.searchRequests.Load(),
			"explain":  s.stats.explainRequests.Load(),
			"lint":     s.stats.lintRequests.Load(),
			"docs":     s.stats.docsRequests.Load(),
			"profiles": s.stats.profilesRequests.Load(),
			"watch":    s.stats.watchRequests.Load(),
			"healthz":  s.stats.healthRequests.Load(),
			"statsz":   s.stats.statsRequests.Load(),
			"metrics":  s.stats.metricsRequests.Load(),
		},
		Errors4xx: s.stats.errors4xx.Load(),
		Errors5xx: s.stats.errors5xx.Load(),
		Timeouts:  s.stats.timeouts.Load(),
		Canceled:  s.stats.canceled.Load(),
		Shed:      s.stats.shed.Load(),
		InFlight:  s.stats.inFlight.Load(),
		Mutation: MutationStats{
			Puts:     s.stats.mutPuts.Load(),
			Deletes:  s.stats.mutDeletes.Load(),
			Rejected: s.stats.mutRejected.Load(),
		},
		Registry: s.registryStats(),
		Fanout: FanoutStats{
			Shards:         resolveShards(s.cfg.Shards),
			ShardsOK:       s.stats.fanoutShardsOK.Load(),
			ShardsTimedOut: s.stats.fanoutShardsTimedOut.Load(),
			Degraded:       s.stats.fanoutDegraded.Load(),
		},
		WatchSubscribers: s.stats.watchSubscribers.Load(),
		Cache:            s.cache.Stats(),
		Analysis:         s.analysis.Stats(),
		Sched:            ss,
	}
}

// --- plumbing ---

// requestContext derives the execution context: the client's context
// (cancelled on disconnect) bounded by the tighter of the server
// default timeout and the request's timeout_ms.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		rd := time.Duration(timeoutMS) * time.Millisecond
		if d == 0 || rd < d {
			d = rd
		}
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// badRequestError marks an error discovered during execution that is
// nonetheless the client's fault.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// notFoundError marks an execution-time lookup miss that maps to 404 —
// the same status buildEngineRequest gives the condition before
// execution, so the two paths can never disagree.
type notFoundError struct{ err error }

func (e *notFoundError) Error() string { return e.err.Error() }
func (e *notFoundError) Unwrap() error { return e.err }

// uncacheableError smuggles a successful-but-degraded payload out of
// the single-flight fill: fill errors are never cached, and the
// handler unwraps the payload and serves it with 200.
type uncacheableError struct{ cs *cachedSearch }

func (e *uncacheableError) Error() string { return "degraded fan-out result (not cacheable)" }

// classifySearchError maps an execution error onto its HTTP status and
// error kind: deadline → 504, client cancel → 499 (nginx's
// convention), client mistakes → 400, anything else the engine
// reports → 500. Classification is separated from counting so /statsz
// and /metrics agree on one mapping (regression:
// TestErrorClassCounters).
func classifySearchError(err error) (status int, kind string) {
	var (
		bad *badRequestError
		nf  *notFoundError
	)
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		// The admission queue is full: genuine overload, shed with 503
		// so clients back off (Retry-After is attached by the writer).
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, sched.ErrQueueWait):
		// Queued past the wait bound: throttle with 429.
		return http.StatusTooManyRequests, "throttled"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		// 499: the client went away; the write is best-effort. A client
		// that disconnects while queued for admission lands here too.
		return 499, "canceled"
	case errors.As(err, &bad):
		return http.StatusBadRequest, "parse"
	case errors.As(err, &nf):
		return http.StatusNotFound, "not_found"
	default:
		return http.StatusInternalServerError, "engine"
	}
}

// writeSearchError classifies and reports an execution error. Counting
// rules: a 504 is a timeout AND a 5xx (the client received a server
// error); a 499 is a cancel AND a 4xx (the client caused it); each
// counter sees the request exactly once.
func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	status, kind := classifySearchError(err)
	switch kind {
	case "timeout":
		s.stats.timeouts.Add(1)
	case "canceled":
		s.stats.canceled.Add(1)
	case "overloaded", "throttled":
		s.stats.shed.Add(1)
		if s.pool != nil {
			// Retry-After: the queue's estimated drain time at the pool's
			// recent service rate.
			w.Header().Set("Retry-After", strconv.Itoa(s.pool.RetryAfter()))
		}
	}
	s.writeError(w, status, kind, err)
}

// writeError reports an error response and counts it once per status
// class in both the /statsz block and the Prometheus counters.
func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	if status >= 500 {
		s.stats.errors5xx.Add(1)
	} else if status >= 400 {
		s.stats.errors4xx.Add(1)
	}
	s.metrics.recordError(status)
	s.writeJSON(w, status, &errorResponse{Error: err.Error(), Kind: kind})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// registryStats merges the registry's gauges with the server's
// request counters into the /statsz block.
func (s *Server) registryStats() RegistryStats {
	rs := s.profiles.Stats()
	return RegistryStats{
		Names:    rs.Names,
		Distinct: rs.Distinct,
		Puts:     s.stats.profilePuts.Load(),
		Deletes:  s.stats.profileDeletes.Load(),
		Rejected: s.stats.profileRejected.Load(),
	}
}

// resolveShards normalizes the configured shard count: anything below
// 2 is the unsharded fan-out.
func resolveShards(n int) int {
	if n < 2 {
		return 1
	}
	return n
}

// resolveK mirrors the engine's K default.
func resolveK(k int) int {
	if k == 0 {
		return 10
	}
	return k
}

// parseStrategy maps the wire strategy names onto plan strategies,
// mirroring cmd/pimento's flag values.
func parseStrategy(s string) (plan.Strategy, error) {
	switch s {
	case "", "push", "default":
		return plan.Push, nil
	case "naive":
		return plan.Naive, nil
	case "interleave", "interleave-nosort":
		return plan.InterleaveNoSort, nil
	case "interleave-sort":
		return plan.InterleaveSort, nil
	case "push-deep":
		return plan.PushDeep, nil
	}
	return plan.Default, fmt.Errorf("unknown strategy %q", s)
}

// keywordQuery builds the content-only query form (any element whose
// subtree contains every phrase).
func keywordQuery(keywords string) (*tpq.Query, error) {
	if strings.TrimSpace(keywords) == "" {
		return nil, errors.New("empty keywords")
	}
	q := tpq.NewQuery("*", tpq.Descendant)
	q.Nodes[0].FT = append(q.Nodes[0].FT, tpq.FTPred{Phrase: keywords})
	return q, nil
}
