// Package server is PIMENTO's query serving layer: an HTTP JSON API
// over a registry of indexed documents, with per-request deadlines
// plumbed down into plan-operator loops, an LRU result cache with
// single-flight admission, and per-endpoint counters.
//
// Endpoints:
//
//	POST /search  — personalized search over one document or a fan-out
//	                across the whole registry (doc "" or "*")
//	POST /explain — the Section 5 static analyses for (query, profile)
//	GET  /healthz — liveness plus document count
//	GET  /statsz  — request/cache/timeout counters
//
// See DESIGN.md §10 for the cache key anatomy, the cancellation
// checkpoints and the single-flight semantics.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// maxBodyBytes bounds a request body; anything larger is a 4xx, not an
// allocation.
const maxBodyBytes = 1 << 20

// Config tunes a Server.
type Config struct {
	// Pipeline is the text pipeline documents are indexed under.
	Pipeline text.Pipeline
	// CacheSize is the result cache capacity in entries (default 512).
	CacheSize int
	// DefaultTimeout bounds every request that does not carry its own
	// timeout_ms; 0 means no server-side deadline (client disconnects
	// still cancel).
	DefaultTimeout time.Duration
	// MaxK caps the per-request result size (default 10000) so a
	// hostile K cannot force giant allocations.
	MaxK int
}

// Server serves personalized XML search over a registry of documents.
type Server struct {
	cfg Config
	reg *corpus.Corpus

	mu      sync.RWMutex
	engines map[string]*engine.Engine // lazily layered over registry indexes

	cache *ResultCache
	mux   *http.ServeMux

	stats serverStats
}

// serverStats is the counter block behind /statsz. All fields are
// atomics: handlers bump them concurrently.
type serverStats struct {
	searchRequests  atomic.Int64
	explainRequests atomic.Int64
	healthRequests  atomic.Int64
	statsRequests   atomic.Int64
	errors4xx       atomic.Int64
	errors5xx       atomic.Int64
	timeouts        atomic.Int64
	canceled        atomic.Int64
	inFlight        atomic.Int64
}

// New returns an empty server; add documents with Add/AddXML.
func New(cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 512
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 10000
	}
	s := &Server{
		cfg:     cfg,
		reg:     corpus.New(cfg.Pipeline),
		engines: make(map[string]*engine.Engine),
		cache:   NewResultCache(cfg.CacheSize),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux = mux
	return s
}

// Add indexes doc under name (replacing any previous document with that
// name; its engine and any cached results keyed by its fingerprint
// become unreachable and age out of the LRU). The engine wrapper and
// its content fingerprint are built here, at registration time, so the
// first search request never pays a document-sized hashing cost inside
// its deadline.
func (s *Server) Add(name string, doc *xmldoc.Document) {
	s.reg.Add(name, doc)
	ix, _ := s.reg.Index(name)
	e := engine.FromParts(doc, ix)
	e.Fingerprint()
	s.mu.Lock()
	s.engines[name] = e
	s.mu.Unlock()
}

// AddXML parses src and adds it under name.
func (s *Server) AddXML(name, src string) error {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return fmt.Errorf("server: %s: %w", name, err)
	}
	s.Add(name, doc)
	return nil
}

// Docs returns the registered document names.
func (s *Server) Docs() []string { return s.reg.Names() }

// Cache exposes the result cache (for stats and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// engineFor returns the engine of a registered document. Add builds
// engines (and their fingerprints) eagerly, so this is a pure lookup.
func (s *Server) engineFor(name string) (*engine.Engine, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.engines[name]
	return e, ok
}

// registryFingerprint combines every document's fingerprint into the
// cache-key fingerprint of a fan-out search (sorted by name, so the
// insertion order of documents does not split the cache).
func (s *Server) registryFingerprint() (string, error) {
	names := s.reg.Names()
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		e, ok := s.engineFor(n)
		if !ok {
			return "", fmt.Errorf("server: document %q vanished", n)
		}
		fmt.Fprintf(h, "%s=%s;", n, e.Fingerprint())
	}
	return "corpus:" + hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// --- request / response wire types ---

// SearchRequest is the /search body.
type SearchRequest struct {
	// Doc selects a registered document; "" or "*" fans the query out
	// across the whole registry.
	Doc string `json:"doc"`
	// Query is the tree-pattern query source; Keywords is the
	// content-only alternative (exactly one must be set).
	Query    string `json:"query"`
	Keywords string `json:"keywords"`
	// Profile is the profile DSL source ("" disables personalization).
	Profile string `json:"profile"`
	K       int    `json:"k"`
	// Strategy: "" (push) | naive | interleave | interleave-sort |
	// push | push-deep.
	Strategy    string `json:"strategy"`
	Parallelism int    `json:"parallelism"`
	Twig        bool   `json:"twig"`
	Literal     bool   `json:"literal"`
	// TimeoutMS bounds this request; it can only tighten the server's
	// DefaultTimeout, never extend it.
	TimeoutMS int `json:"timeout_ms"`
	// NoCache bypasses the result cache (the request neither reads nor
	// populates it).
	NoCache bool `json:"no_cache"`
}

// SearchResult is one ranked answer on the wire.
type SearchResult struct {
	Doc     string  `json:"doc,omitempty"`
	Node    uint32  `json:"node"`
	Path    string  `json:"path"`
	S       float64 `json:"s"`
	K       float64 `json:"k"`
	Snippet string  `json:"snippet,omitempty"`
}

// SearchResponse is the /search payload. Cached responses are
// byte-identical to the original execution's payload; the X-Cache
// header (MISS / HIT / COALESCED) carries the per-request cache
// outcome instead of a body field.
type SearchResponse struct {
	Results      []SearchResult `json:"results"`
	K            int            `json:"k"`
	Strategy     string         `json:"strategy"`
	AppliedSRs   []string       `json:"applied_srs,omitempty"`
	PlanShape    string         `json:"plan,omitempty"`
	Workers      int            `json:"workers,omitempty"`
	TotalPruned  int            `json:"total_pruned,omitempty"`
	DocsSearched int            `json:"docs_searched"`
	ElapsedUS    int64          `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"` // parse | not_found | timeout | canceled | engine
}

// --- handlers ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.stats.searchRequests.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	var sreq SearchRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("bad request body: %w", err))
		return
	}

	req, status, err := s.buildEngineRequest(&sreq)
	if err != nil {
		kind := "parse"
		if status == http.StatusNotFound {
			kind = "not_found"
		}
		s.writeError(w, status, kind, err)
		return
	}

	ctx, cancel := s.requestContext(r, sreq.TimeoutMS)
	defer cancel()

	fill := func() (any, error) { return s.execute(ctx, &sreq, req) }

	var payload any
	if sreq.NoCache {
		// Bypass, not a miss: the cache is neither consulted nor filled,
		// so no X-Cache header is set.
		payload, err = fill()
	} else {
		key, kerr := s.cacheKey(&sreq, req)
		if kerr != nil {
			s.writeError(w, http.StatusNotFound, "not_found", kerr)
			return
		}
		var outcome Outcome
		payload, outcome, err = s.cache.Do(ctx, key, fill)
		if err == nil {
			w.Header().Set("X-Cache", strings.ToUpper(outcome.String()))
		}
	}
	if err != nil {
		s.writeSearchError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload.([]byte))
}

// buildEngineRequest validates and compiles the wire request into an
// engine request. It returns the HTTP status to use on error.
func (s *Server) buildEngineRequest(sreq *SearchRequest) (engine.Request, int, error) {
	var req engine.Request
	if (sreq.Query == "") == (sreq.Keywords == "") {
		return req, http.StatusBadRequest, errors.New("exactly one of query or keywords must be set")
	}
	if sreq.K < 0 {
		return req, http.StatusBadRequest, fmt.Errorf("negative k %d", sreq.K)
	}
	if sreq.K > s.cfg.MaxK {
		return req, http.StatusBadRequest, fmt.Errorf("k %d exceeds the maximum of %d", sreq.K, s.cfg.MaxK)
	}
	if sreq.Parallelism < 0 || sreq.Parallelism > 1024 {
		return req, http.StatusBadRequest, fmt.Errorf("parallelism %d out of range [0,1024]", sreq.Parallelism)
	}
	var err error
	if sreq.Query != "" {
		req.Query, err = tpq.Parse(sreq.Query)
	} else {
		req.Query, err = keywordQuery(sreq.Keywords)
	}
	if err != nil {
		return req, http.StatusBadRequest, err
	}
	if sreq.Profile != "" {
		req.Profile, err = profile.ParseProfile(sreq.Profile)
		if err != nil {
			return req, http.StatusBadRequest, err
		}
	}
	req.Strategy, err = parseStrategy(sreq.Strategy)
	if err != nil {
		return req, http.StatusBadRequest, err
	}
	req.K = sreq.K
	req.Parallelism = sreq.Parallelism
	req.TwigAccess = sreq.Twig
	req.LiteralRewrite = sreq.Literal

	if !s.fanout(sreq) {
		if _, ok := s.reg.Document(sreq.Doc); !ok {
			return req, http.StatusNotFound, fmt.Errorf("unknown document %q", sreq.Doc)
		}
	} else if s.reg.Len() == 0 {
		return req, http.StatusNotFound, errors.New("no documents registered")
	}
	return req, 0, nil
}

// fanout reports whether the request targets the whole registry.
func (s *Server) fanout(sreq *SearchRequest) bool {
	return sreq.Doc == "" || sreq.Doc == "*"
}

// cacheKey derives the canonical result-cache key for the request.
func (s *Server) cacheKey(sreq *SearchRequest, req engine.Request) (string, error) {
	if s.fanout(sreq) {
		fp, err := s.registryFingerprint()
		if err != nil {
			return "", err
		}
		return req.CacheKey(fp), nil
	}
	e, ok := s.engineFor(sreq.Doc)
	if !ok {
		return "", fmt.Errorf("unknown document %q", sreq.Doc)
	}
	return req.CacheKey(e.Fingerprint()), nil
}

// execute runs the search (single document or fan-out) and marshals the
// response payload. The payload bytes are what the cache stores, so
// repeated identical requests are byte-identical.
func (s *Server) execute(ctx context.Context, sreq *SearchRequest, req engine.Request) ([]byte, error) {
	var sresp SearchResponse
	if s.fanout(sreq) {
		// Fan-out searches do not support the per-engine extras.
		if sreq.Twig || sreq.Literal {
			return nil, &badRequestError{errors.New("twig and literal are single-document options")}
		}
		resp, err := s.reg.SearchContext(ctx, req.Query, req.Profile, req.K, req.Strategy)
		if err != nil {
			return nil, err
		}
		sresp = SearchResponse{
			Results:      make([]SearchResult, 0, len(resp.Results)),
			K:            resolveK(req.K),
			Strategy:     req.Strategy.String(),
			AppliedSRs:   resp.AppliedSRs,
			DocsSearched: resp.DocsSearched,
			ElapsedUS:    resp.Elapsed.Microseconds(),
		}
		for _, res := range resp.Results {
			sresp.Results = append(sresp.Results, SearchResult{
				Doc: res.DocName, Node: uint32(res.Node), Path: res.Path,
				S: res.S, K: res.K, Snippet: res.Snippet,
			})
		}
	} else {
		e, ok := s.engineFor(sreq.Doc)
		if !ok {
			return nil, &badRequestError{fmt.Errorf("unknown document %q", sreq.Doc)}
		}
		resp, err := e.SearchContext(ctx, req)
		if err != nil {
			return nil, err
		}
		sresp = SearchResponse{
			Results:      make([]SearchResult, 0, len(resp.Results)),
			K:            resolveK(req.K),
			Strategy:     req.Strategy.String(),
			AppliedSRs:   resp.AppliedSRs,
			PlanShape:    resp.PlanShape,
			Workers:      resp.Workers,
			TotalPruned:  resp.TotalPruned,
			DocsSearched: 1,
			ElapsedUS:    resp.Elapsed.Microseconds(),
		}
		for _, res := range resp.Results {
			sresp.Results = append(sresp.Results, SearchResult{
				Doc: sreq.Doc, Node: uint32(res.Node), Path: res.Path,
				S: res.S, K: res.K, Snippet: res.Snippet,
			})
		}
	}
	return json.Marshal(&sresp)
}

// ExplainRequest is the /explain body.
type ExplainRequest struct {
	Query   string `json:"query"`
	Profile string `json:"profile"`
}

// ExplainResponse reports the Section 5 static analyses.
type ExplainResponse struct {
	Ambiguous   bool     `json:"ambiguous"`
	Cycle       []string `json:"cycle,omitempty"`
	Suggestion  string   `json:"suggestion,omitempty"`
	ConflictErr string   `json:"conflict_error,omitempty"`
	Applied     []string `json:"applied_srs,omitempty"`
	Flock       []string `json:"flock,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.stats.explainRequests.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	var ereq ExplainRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&ereq); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("bad request body: %w", err))
		return
	}
	if ereq.Query == "" || ereq.Profile == "" {
		s.writeError(w, http.StatusBadRequest, "parse", errors.New("query and profile are required"))
		return
	}
	q, err := tpq.Parse(ereq.Query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", err)
		return
	}
	prof, err := profile.ParseProfile(ereq.Profile)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "parse", err)
		return
	}
	pa := engine.AnalyzeProfile(prof, q)
	eresp := ExplainResponse{
		Ambiguous:  pa.Ambiguity.Ambiguous,
		Cycle:      pa.Ambiguity.Cycle,
		Suggestion: pa.Ambiguity.Suggestion,
		Applied:    pa.Applied,
	}
	if pa.ConflictErr != nil {
		eresp.ConflictErr = pa.ConflictErr.Error()
	}
	for _, fq := range pa.Flock {
		eresp.Flock = append(eresp.Flock, fq.String())
	}
	s.writeJSON(w, http.StatusOK, &eresp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.stats.healthRequests.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"docs":   s.reg.Len(),
	})
}

// Statsz is the /statsz payload.
type Statsz struct {
	Docs      int              `json:"docs"`
	Endpoints map[string]int64 `json:"endpoints"`
	Errors4xx int64            `json:"errors_4xx"`
	Errors5xx int64            `json:"errors_5xx"`
	Timeouts  int64            `json:"timeouts"`
	Canceled  int64            `json:"canceled"`
	InFlight  int64            `json:"in_flight"`
	Cache     CacheStats       `json:"cache"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.stats.statsRequests.Add(1)
	s.writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot returns the current counters (the /statsz payload).
func (s *Server) Snapshot() Statsz {
	return Statsz{
		Docs: s.reg.Len(),
		Endpoints: map[string]int64{
			"search":  s.stats.searchRequests.Load(),
			"explain": s.stats.explainRequests.Load(),
			"healthz": s.stats.healthRequests.Load(),
			"statsz":  s.stats.statsRequests.Load(),
		},
		Errors4xx: s.stats.errors4xx.Load(),
		Errors5xx: s.stats.errors5xx.Load(),
		Timeouts:  s.stats.timeouts.Load(),
		Canceled:  s.stats.canceled.Load(),
		InFlight:  s.stats.inFlight.Load(),
		Cache:     s.cache.Stats(),
	}
}

// --- plumbing ---

// requestContext derives the execution context: the client's context
// (cancelled on disconnect) bounded by the tighter of the server
// default timeout and the request's timeout_ms.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		rd := time.Duration(timeoutMS) * time.Millisecond
		if d == 0 || rd < d {
			d = rd
		}
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// badRequestError marks an error discovered during execution that is
// nonetheless the client's fault.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// writeSearchError classifies an execution error: deadline → 504,
// client cancel → 499 (nginx's convention), client mistakes → 400,
// anything else the engine reports → 500.
func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "timeout", err)
	case errors.Is(err, context.Canceled):
		s.stats.canceled.Add(1)
		// 499: the client went away; the write is best-effort.
		s.writeError(w, 499, "canceled", err)
	case errors.As(err, &bad):
		s.writeError(w, http.StatusBadRequest, "parse", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "engine", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	if status >= 500 {
		s.stats.errors5xx.Add(1)
	} else if status >= 400 {
		s.stats.errors4xx.Add(1)
	}
	s.writeJSON(w, status, &errorResponse{Error: err.Error(), Kind: kind})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// resolveK mirrors the engine's K default.
func resolveK(k int) int {
	if k == 0 {
		return 10
	}
	return k
}

// parseStrategy maps the wire strategy names onto plan strategies,
// mirroring cmd/pimento's flag values.
func parseStrategy(s string) (plan.Strategy, error) {
	switch s {
	case "", "push", "default":
		return plan.Push, nil
	case "naive":
		return plan.Naive, nil
	case "interleave", "interleave-nosort":
		return plan.InterleaveNoSort, nil
	case "interleave-sort":
		return plan.InterleaveSort, nil
	case "push-deep":
		return plan.PushDeep, nil
	}
	return plan.Default, fmt.Errorf("unknown strategy %q", s)
}

// keywordQuery builds the content-only query form (any element whose
// subtree contains every phrase).
func keywordQuery(keywords string) (*tpq.Query, error) {
	if strings.TrimSpace(keywords) == "" {
		return nil, errors.New("empty keywords")
	}
	q := tpq.NewQuery("*", tpq.Descendant)
	q.Nodes[0].FT = append(q.Nodes[0].FT, tpq.FTPred{Phrase: keywords})
	return q, nil
}
