// Asynchronous slow-query log.
//
// Requests slower than Config.SlowQueryThreshold are handed to a
// single logging goroutine through a bounded channel; the request path
// never blocks on the log sink. When the channel is full the entry is
// dropped and counted (pimento_slow_queries_dropped_total) — a slow
// log that backpressures the server would be worse than no log.
package server

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/metrics"
)

// slowQuery is one log entry: enough to reproduce and diagnose the
// request without holding references into the response.
type slowQuery struct {
	Doc     string
	Query   string
	Elapsed time.Duration
	Plan    string
	Stats   []algebra.OpStats
}

type slowQueryLogger struct {
	threshold time.Duration
	logf      func(format string, args ...any)
	ch        chan slowQuery
	wg        sync.WaitGroup
	closeOnce sync.Once

	// mu guards the channel against close-during-send: observe holds
	// the read lock while enqueueing, close takes the write lock before
	// closing. Only threshold-crossing requests ever touch the lock.
	mu     sync.RWMutex
	closed bool

	total   *metrics.Counter
	dropped *metrics.Counter
}

// newSlowQueryLogger starts the logging goroutine. logf defaults to
// the standard logger; tests inject their own to capture output and to
// prove the goroutine exits on close.
func newSlowQueryLogger(threshold time.Duration, logf func(string, ...any), total, dropped *metrics.Counter) *slowQueryLogger {
	if logf == nil {
		logf = log.Printf
	}
	l := &slowQueryLogger{
		threshold: threshold,
		logf:      logf,
		ch:        make(chan slowQuery, 64),
		total:     total,
		dropped:   dropped,
	}
	l.wg.Add(1)
	//pimento:allow budgetedgo construction-time singleton: one drain goroutine for the logger's lifetime, not per-request fan-out
	go l.run()
	return l
}

func (l *slowQueryLogger) run() {
	defer l.wg.Done()
	for q := range l.ch {
		l.logf("slow query (%s): doc=%q query=%q plan=%q ops=[%s]",
			q.Elapsed.Round(time.Microsecond), q.Doc, q.Query, q.Plan, formatOpStats(q.Stats))
	}
}

// observe submits a request for logging if it crossed the threshold.
// Non-blocking: a full channel drops the entry and bumps the counter.
func (l *slowQueryLogger) observe(q slowQuery) {
	if q.Elapsed < l.threshold {
		return
	}
	l.total.Inc()
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		l.dropped.Inc()
		return
	}
	select {
	case l.ch <- q:
	default:
		l.dropped.Inc()
	}
}

// close drains and stops the logging goroutine. Idempotent; waits for
// already-queued entries to be written (the goroutine-leak gate in the
// stress suite depends on the wait).
func (l *slowQueryLogger) close() {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		close(l.ch)
	})
	l.wg.Wait()
}

// formatOpStats renders a per-operator summary: full display names
// (with query content) are fine in a log line, unlike in metric labels.
func formatOpStats(stats []algebra.OpStats) string {
	var b strings.Builder
	for i, s := range stats {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s in=%d out=%d pruned=%d", s.Name, s.In, s.Out, s.Pruned)
		if s.WallNS > 0 {
			fmt.Fprintf(&b, " wall=%s", time.Duration(s.WallNS).Round(time.Microsecond))
		}
	}
	return b.String()
}
