package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/xmark"
	"repro/internal/xmldoc"
)

// carsXML recreates the paper's Fig. 1 car-sale database.
const carsXML = `
<dealer>
  <car>
    <description>I am selling my 2001 car at the best bid. It is in good condition
      as I was the only driver. I used it to go to work in NYC.</description>
    <date>2001</date>
    <price>500</price>
    <owner>John Smith</owner>
    <color>red</color>
  </car>
  <car>
    <description>Powerful car. Low mileage. Eager seller.</description>
    <description>good condition overall</description>
    <mileage>50000</mileage>
    <price>500</price>
    <location>NYC</location>
    <color>blue</color>
  </car>
  <car>
    <description>american classic in good condition and low mileage</description>
    <price>1800</price>
    <mileage>30000</mileage>
    <color>green</color>
  </car>
</dealer>`

const carsProfile = `
sr p2 priority 1: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
rank K,V,S
`

const carsQuery = `//car[./description[. ftcontains "good condition"] and price < 2000]`

// personProfile builds the Fig. 5 profile DSL with nKORs keyword rules.
func personProfile(nKORs int) string {
	phrases := []string{"male", "United States", "College", "Phoenix"}
	var sb strings.Builder
	for i := 0; i < nKORs && i < len(phrases); i++ {
		fmt.Fprintf(&sb,
			"kor pi%d priority %d: x.tag = person & y.tag = person & ftcontains(x, %q) => x < y\n",
			i+1, i+1, phrases[i])
	}
	sb.WriteString(`vor pi5: x.tag = person & y.tag = person & x.age = 33 & y.age != 33 => x < y` + "\n")
	sb.WriteString("rank K,V,S\n")
	return sb.String()
}

// bigXMark returns a shared multi-megabyte XMark document — large
// enough that a 1ms deadline reliably expires mid-execution.
var bigXMark = sync.OnceValue(func() *xmldoc.Document {
	return xmark.GenerateSized(xmark.Config{Seed: 7}, 4*1024*1024)
})

// newTestServer builds a server with the cars document and a large
// generated XMark document, wrapped in an httptest server.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.AddXML("cars", carsXML); err != nil {
		t.Fatal(err)
	}
	s.Add("xmark", bigXMark())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// post sends a JSON request and returns the status, headers and body.
func post(t testing.TB, ts *httptest.Server, path string, body any) (int, http.Header, []byte) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	case []byte:
		buf.Write(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, data
}

func get(t testing.TB, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func decodeSearch(t testing.TB, data []byte) SearchResponse {
	t.Helper()
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("bad search response %q: %v", data, err)
	}
	return sr
}

// normalizePayload zeroes the volatile fields so payloads from distinct
// executions can be compared byte-for-byte: the wall-clock fields
// (elapsed_us, exec_us, cache_age_ms, the trace spans) and
// total_pruned (under parallel execution the prune count depends on how
// worker interleaving tightens the shared bound — the ranked answers do
// not).
func normalizePayload(t testing.TB, data []byte) []byte {
	t.Helper()
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("bad search response %q: %v", data, err)
	}
	sr.ElapsedUS = 0
	sr.TotalPruned = 0
	sr.ExecUS = 0
	sr.CacheAgeMS = 0
	sr.Trace = nil
	out, err := json.Marshal(&sr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// stablePart strips the spliced per-request tail (elapsed_us,
// cache_age_ms) from a /search payload, leaving the cached body — the
// portion the server promises is byte-identical across cache hits.
func stablePart(t testing.TB, data []byte) []byte {
	t.Helper()
	i := bytes.LastIndex(data, []byte(`,"elapsed_us":`))
	if i < 0 {
		t.Fatalf("payload %q has no spliced elapsed_us tail", data)
	}
	return data[:i]
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status = %d, body %s", status, body)
	}
	var h struct {
		Status string `json:"status"`
		Docs   int    `json:"docs"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Docs != 2 {
		t.Fatalf("healthz = %+v, want ok with 2 docs", h)
	}
}

func TestSearchSingleDoc(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, hdr, body := post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 5,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if got := hdr.Get("X-Cache"); got != "MISS" {
		t.Errorf("X-Cache = %q, want MISS", got)
	}
	sr := decodeSearch(t, body)
	if len(sr.Results) == 0 {
		t.Fatal("no results")
	}
	if sr.K != 5 || sr.DocsSearched != 1 {
		t.Errorf("K=%d docs=%d, want 5 and 1", sr.K, sr.DocsSearched)
	}
	if len(sr.AppliedSRs) == 0 {
		t.Error("profile scoping rule was not applied")
	}
	// The best-bid car must lead: the w4 KOR dominates under K,V,S.
	if !strings.Contains(sr.Results[0].Snippet, "best bid") {
		t.Errorf("top result %+v does not contain the KOR phrase", sr.Results[0])
	}
	for _, r := range sr.Results {
		if r.Doc != "cars" || r.Path == "" {
			t.Errorf("result %+v missing doc/path", r)
		}
	}
}

func TestSearchFanout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, "/search", SearchRequest{
		Doc: "*", Keywords: "good condition", K: 4,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	sr := decodeSearch(t, body)
	if sr.DocsSearched != 2 {
		t.Errorf("DocsSearched = %d, want 2", sr.DocsSearched)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results")
	}
	if sr.Results[0].Doc == "" {
		t.Errorf("fan-out result %+v missing doc name", sr.Results[0])
	}
}

func TestSearchCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3}

	before := s.Cache().Stats()
	status1, hdr1, body1 := post(t, ts, "/search", req)
	status2, hdr2, body2 := post(t, ts, "/search", req)
	if status1 != 200 || status2 != 200 {
		t.Fatalf("statuses = %d, %d", status1, status2)
	}
	if hdr1.Get("X-Cache") != "MISS" || hdr2.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q then %q, want MISS then HIT",
			hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(stablePart(t, body1), stablePart(t, body2)) {
		t.Fatalf("cached result payload is not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	after := s.Cache().Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("cache hits %d -> %d, want +1", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses+1 {
		t.Errorf("cache misses %d -> %d, want +1", before.Misses, after.Misses)
	}

	// The /statsz view must agree.
	_, body := get(t, ts, "/statsz")
	var st Statsz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != after.Hits {
		t.Errorf("statsz cache hits = %d, want %d", st.Cache.Hits, after.Hits)
	}
	if st.Endpoints["search"] < 2 {
		t.Errorf("statsz search requests = %d, want >= 2", st.Endpoints["search"])
	}
}

// TestCacheHitElapsed pins the fix for the cache-hit elapsed bug: HIT
// responses used to replay the leader's marshaled bytes wholesale, so
// their elapsed_ms reported the original execution's time instead of
// the (much smaller) serve time. Now the cached body carries the
// execution's exec_us and trace verbatim — byte-identical across
// requests — while elapsed_us and cache_age_ms are spliced per
// request.
func TestCacheHitElapsed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3}

	_, hdr1, body1 := post(t, ts, "/search", req)
	time.Sleep(20 * time.Millisecond)
	_, hdr2, body2 := post(t, ts, "/search", req)
	if hdr1.Get("X-Cache") != "MISS" || hdr2.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q then %q, want MISS then HIT",
			hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}

	// The cached result body replays byte-identically ...
	if !bytes.Equal(stablePart(t, body1), stablePart(t, body2)) {
		t.Fatalf("cached body diverged:\n%s\nvs\n%s", body1, body2)
	}
	// ... but the volatile tail is per-request: the HIT aged at least
	// the 20ms we slept, the MISS has age 0, so full payloads differ.
	if bytes.Equal(body1, body2) {
		t.Fatal("HIT payload is byte-identical to MISS payload — volatile tail not spliced")
	}

	miss := decodeSearch(t, body1)
	hit := decodeSearch(t, body2)
	if miss.ExecUS <= 0 {
		t.Errorf("MISS exec_us = %d, want > 0", miss.ExecUS)
	}
	if hit.ExecUS != miss.ExecUS {
		t.Errorf("HIT exec_us = %d, want the leader's %d", hit.ExecUS, miss.ExecUS)
	}
	if miss.CacheAgeMS != 0 {
		t.Errorf("MISS cache_age_ms = %d, want 0", miss.CacheAgeMS)
	}
	if hit.CacheAgeMS < 10 {
		t.Errorf("HIT cache_age_ms = %d, want >= 10 after a 20ms sleep", hit.CacheAgeMS)
	}
	if len(hit.Trace) == 0 {
		t.Error("HIT lost the execution's pipeline trace")
	}
	// elapsed_us must be this request's serve time, not a replay: both
	// requests measured it independently, and it stays bounded by the
	// request's own wall time rather than the leader's execution.
	if miss.ElapsedUS < miss.ExecUS {
		t.Errorf("MISS elapsed_us %d < exec_us %d; serve time should include execution",
			miss.ElapsedUS, miss.ExecUS)
	}
}

func TestSearchOptionChangesMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3}
	post(t, ts, "/search", base)

	for name, mut := range map[string]func(r SearchRequest) SearchRequest{
		"k":        func(r SearchRequest) SearchRequest { r.K = 4; return r },
		"strategy": func(r SearchRequest) SearchRequest { r.Strategy = "naive"; return r },
		"profile":  func(r SearchRequest) SearchRequest { r.Profile = ""; return r },
		"par":      func(r SearchRequest) SearchRequest { r.Parallelism = 2; return r },
	} {
		status, hdr, body := post(t, ts, "/search", mut(base))
		if status != 200 {
			t.Fatalf("%s: status %d body %s", name, status, body)
		}
		if got := hdr.Get("X-Cache"); got != "MISS" {
			t.Errorf("mutated option %s: X-Cache = %q, want MISS", name, got)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 100})
	cases := []struct {
		name   string
		body   any
		status int
		kind   string
	}{
		{"bad json", `{"doc": cars}`, 400, "parse"},
		{"unknown field", `{"doc":"cars","quary":"//car"}`, 400, "parse"},
		{"no query", SearchRequest{Doc: "cars"}, 400, "parse"},
		{"both query and keywords", SearchRequest{Doc: "cars", Query: "//car", Keywords: "x"}, 400, "parse"},
		{"bad query syntax", SearchRequest{Doc: "cars", Query: "//car[[["}, 400, "parse"},
		{"bad profile", SearchRequest{Doc: "cars", Query: "//car", Profile: "nonsense rule"}, 400, "parse"},
		{"negative k", SearchRequest{Doc: "cars", Query: "//car", K: -1}, 400, "parse"},
		{"huge k", SearchRequest{Doc: "cars", Query: "//car", K: 101}, 400, "parse"},
		{"bad strategy", SearchRequest{Doc: "cars", Query: "//car", Strategy: "quantum"}, 400, "parse"},
		{"unknown doc", SearchRequest{Doc: "nope", Query: "//car"}, 404, "not_found"},
		{"fanout twig", SearchRequest{Doc: "*", Query: "//car", Twig: true}, 400, "parse"},
		{"ambiguous profile", SearchRequest{Doc: "cars", Query: "//car",
			Profile: "vor a: x.tag = car & y.tag = car & x.color = \"red\" & y.color != \"red\" => x < y\n" +
				"vor b: x.tag = car & y.tag = car & x.color = \"blue\" & y.color != \"blue\" => x < y\nrank K,V,S"}, 500, "engine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts, "/search", tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body %q is not JSON: %v", body, err)
			}
			if er.Kind != tc.kind {
				t.Errorf("kind = %q, want %q", er.Kind, tc.kind)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestSearchDeadline is the acceptance check: a 1ms deadline against
// the XMark document returns a prompt, clean timeout — not a truncated
// top k and not a full scan.
func TestSearchDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	start := time.Now()
	status, _, body := post(t, ts, "/search", SearchRequest{
		Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`,
		Profile: personProfile(4), K: 10, TimeoutMS: 1,
	})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "timeout" || !strings.Contains(er.Error, "deadline exceeded") {
		t.Errorf("error = %+v, want a context.DeadlineExceeded timeout", er)
	}
	// "Promptly": the checkpoint stride bounds the overrun to far less
	// than a full scan; 500ms is generous for any CI machine.
	if elapsed > 500*time.Millisecond {
		t.Errorf("timeout took %v, want prompt abort", elapsed)
	}
	if got := s.Snapshot().Timeouts; got < 1 {
		t.Errorf("timeouts counter = %d, want >= 1", got)
	}

	// A timed-out execution must not have been cached.
	status2, hdr2, _ := post(t, ts, "/search", SearchRequest{
		Doc: "xmark", Query: `//person(*)[.//business[. ftcontains "Yes"]]`,
		Profile: personProfile(4), K: 10,
	})
	if status2 != 200 {
		t.Fatalf("follow-up status = %d", status2)
	}
	if hdr2.Get("X-Cache") != "MISS" {
		t.Errorf("follow-up X-Cache = %q, want MISS (errors are never cached)", hdr2.Get("X-Cache"))
	}
}

func TestExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, "/explain", ExplainRequest{
		Query: carsQuery, Profile: carsProfile,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var er ExplainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Ambiguous {
		t.Error("profile reported ambiguous")
	}
	if len(er.Flock) < 2 {
		t.Errorf("flock = %v, want the original plus the rewritten query", er.Flock)
	}
	if len(er.Applied) == 0 {
		t.Error("no applied SRs reported")
	}

	status, _, body = post(t, ts, "/explain", ExplainRequest{Query: "//car"})
	if status != 400 {
		t.Errorf("missing profile: status = %d, body %s", status, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search status = %d, want 405", resp.StatusCode)
	}
}

func TestSearchClientCancel(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client has already gone away
	body, _ := json.Marshal(SearchRequest{Doc: "cars", Query: carsQuery})
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("status = %d, body %s, want 499", rec.Code, rec.Body)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Kind != "canceled" {
		t.Errorf("body = %s (err %v), want kind canceled", rec.Body, err)
	}
	if s.Snapshot().Canceled < 1 {
		t.Error("canceled counter did not move")
	}
}

func TestWhitespaceKeywords(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, "/search", SearchRequest{Doc: "cars", Keywords: "   "})
	if status != 400 {
		t.Fatalf("status = %d, body %s, want 400", status, body)
	}
}

func TestAddXMLError(t *testing.T) {
	s := New(Config{})
	if err := s.AddXML("bad", "<unclosed>"); err == nil {
		t.Fatal("malformed XML accepted")
	}
	if len(s.Docs()) != 0 {
		t.Fatalf("Docs = %v after failed add", s.Docs())
	}
}

func TestExplainParseErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]any{
		"bad json":    `{"query": }`,
		"bad query":   ExplainRequest{Query: "//[", Profile: carsProfile},
		"bad profile": ExplainRequest{Query: "//car", Profile: "gibberish"},
	} {
		status, _, data := post(t, ts, "/explain", body)
		if status != 400 {
			t.Errorf("%s: status = %d, body %s, want 400", name, status, data)
		}
	}
}

func TestSearchNoCacheBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := SearchRequest{Doc: "cars", Query: carsQuery, NoCache: true}
	post(t, ts, "/search", req)
	post(t, ts, "/search", req)
	st := s.Cache().Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("no_cache touched the cache: %+v", st)
	}
}
