package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/metrics"
)

// scrape fetches and parses /metrics, failing on any exposition-format
// violation (the parser validates TYPE lines, sample/family pairing and
// histogram invariants).
func scrape(t testing.TB, ts *httptest.Server) map[string]*metrics.Family {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("exposition lint failed: %v\n%s", err, sb.String())
	}
	return fams
}

// findSample returns the value of the sample with the given rendered
// name whose labels include every pair in want.
func findSample(t testing.TB, fams map[string]*metrics.Family, family, name string, want map[string]string) float64 {
	t.Helper()
	f, ok := fams[family]
	if !ok {
		t.Fatalf("family %q not exposed", family)
	}
outer:
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		for k, v := range want {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s.Value
	}
	t.Fatalf("no sample %s%v in family %s", name, want, family)
	return 0
}

// TestMetricsEndpoint drives every endpoint once (plus a cache hit and
// a client error), then lints the /metrics output and checks the
// per-endpoint, per-operator and pipeline-stage series carry the
// traffic.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Pin the scan access path: the per-operator assertions below name
	// the scan source, and the auto heuristic may pick twigjoin.
	req := SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3, Access: "scan"}
	post(t, ts, "/search", req)                                          // MISS
	post(t, ts, "/search", req)                                          // HIT
	post(t, ts, "/search", SearchRequest{Doc: "nope", Query: carsQuery}) // 404
	post(t, ts, "/explain", ExplainRequest{Query: carsQuery, Profile: carsProfile})
	get(t, ts, "/healthz")
	get(t, ts, "/statsz")

	fams := scrape(t, ts)

	if got := findSample(t, fams, "pimento_http_requests_total",
		"pimento_http_requests_total", map[string]string{"endpoint": "search"}); got < 3 {
		t.Errorf("search requests = %v, want >= 3", got)
	}
	if got := findSample(t, fams, "pimento_http_request_seconds",
		"pimento_http_request_seconds_count", map[string]string{"endpoint": "search"}); got < 3 {
		t.Errorf("search latency observations = %v, want >= 3", got)
	}
	if got := findSample(t, fams, "pimento_http_errors_total",
		"pimento_http_errors_total", map[string]string{"class": "4xx"}); got < 1 {
		t.Errorf("4xx errors = %v, want >= 1", got)
	}

	// One fresh execution ran (the HIT must not re-record), so the plan
	// operator counters carry exactly that execution's traffic.
	if got := findSample(t, fams, "pimento_plan_operator_wall_nanoseconds_total",
		"pimento_plan_operator_wall_nanoseconds_total", map[string]string{"op": "scan"}); got <= 0 {
		t.Errorf("scan wall time = %v, want > 0", got)
	}
	if got := findSample(t, fams, "pimento_plan_operator_answers_total",
		"pimento_plan_operator_answers_total", map[string]string{"op": "scan", "dir": "in"}); got <= 0 {
		t.Errorf("scan answers in = %v, want > 0", got)
	}
	for _, stage := range []string{"analyze", "build", "execute", "rank"} {
		if got := findSample(t, fams, "pimento_pipeline_stage_seconds",
			"pimento_pipeline_stage_seconds_count", map[string]string{"stage": stage}); got < 1 {
			t.Errorf("stage %s observations = %v, want >= 1", stage, got)
		}
	}

	// Cache counters mirror the authoritative ResultCache stats.
	cs := s.Cache().Stats()
	if got := findSample(t, fams, "pimento_cache_requests_total",
		"pimento_cache_requests_total", map[string]string{"outcome": "hit"}); got != float64(cs.Hits) {
		t.Errorf("cache hits = %v, want %d", got, cs.Hits)
	}
	if got := findSample(t, fams, "pimento_cache_requests_total",
		"pimento_cache_requests_total", map[string]string{"outcome": "miss"}); got != float64(cs.Misses) {
		t.Errorf("cache misses = %v, want %d", got, cs.Misses)
	}
	if got := findSample(t, fams, "pimento_docs", "pimento_docs", nil); got != 2 {
		t.Errorf("docs gauge = %v, want 2", got)
	}

	// Determinism: scraping twice without traffic in between yields the
	// same request counter (plus the scrapes themselves).
	again := scrape(t, ts)
	if got := findSample(t, again, "pimento_http_requests_total",
		"pimento_http_requests_total", map[string]string{"endpoint": "metrics"}); got < 2 {
		t.Errorf("metrics endpoint requests = %v, want >= 2", got)
	}
}

// TestMetricsLabelLint pins the static-cardinality rule: after a
// workload whose queries and profiles embed arbitrary content, every
// label value on /metrics still comes from a compile-time-enumerable
// set — request content must never mint new series.
func TestMetricsLabelLint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Hostile-ish workload: phrases and tags that would explode the
	// series count if operator display names leaked into labels.
	for i, q := range []string{
		`//car[./description[. ftcontains "weird unique phrase alpha"]]`,
		`//car[./description[. ftcontains "another singular phrase beta"]]`,
		`//person(*)[.//business[. ftcontains "Yes"]]`,
	} {
		doc := "cars"
		if strings.Contains(q, "person") {
			doc = "xmark"
		}
		post(t, ts, "/search", SearchRequest{Doc: doc, Query: q, Profile: carsProfile, K: 2 + i})
	}
	post(t, ts, "/search", SearchRequest{Doc: "*", Keywords: "good condition", K: 3})
	post(t, ts, "/search", SearchRequest{Doc: "missing-doc", Query: carsQuery})
	// Mutations mint only static {op, outcome} series: hostile document
	// names must stay out of the label space.
	putDoc(t, ts, "weird-unique-name-gamma", carsXML)
	putDoc(t, ts, "weird-unique-name-gamma", carsXML) // replaced
	putDoc(t, ts, "rejected-doc", "<open><unclosed>") // parse-rejected
	deleteDoc(t, ts, "weird-unique-name-gamma")
	deleteDoc(t, ts, "never-registered-delta") // not_found-rejected
	getWatch(t, ts.URL+"/watch?since=0&timeout_ms=0")
	// Profile registrations mint only static {op, outcome} series too:
	// hostile profile names and bodies stay out of the label space.
	putProfile(t, ts, "weird-profile-name-epsilon", carsProfile)
	putProfile(t, ts, "weird-profile-name-epsilon", carsProfile) // replaced
	putProfile(t, ts, "ambiguous-profile", ambiguousProfile)     // vet-rejected
	getProfile(t, ts, "weird-profile-name-epsilon")
	getProfile(t, ts, "no-such-profile-zeta") // not_found
	deleteProfile(t, ts, "weird-profile-name-epsilon")
	deleteProfile(t, ts, "never-registered-eta") // not_found
	get(t, ts, "/profiles")

	allowed := map[string]map[string][]string{
		"endpoint": {"": endpointNames},
		"class":    {"": errorClasses},
		"outcome": {
			"":                               cacheOutcomes,
			"pimento_twigjoin_queries_total": twigOutcomes,
			"pimento_sched_admissions_total": admissionOutcomes,
			"pimento_corpus_mutations_total": {"created", "replaced", "applied", "rejected"},
			"pimento_registry_requests_total": {
				"created", "replaced", "rejected", "ok", "not_found", "applied",
			},
			"pimento_fanout_shards_total": fanoutOutcomes,
		},
		"op": {
			"":                                opKinds,
			"pimento_corpus_mutations_total":  {"put", "delete"},
			"pimento_registry_requests_total": {"put", "get", "delete", "list"},
		},
		"dir":   {"": answerDirs},
		"stage": {"": stageNames},
		"check": {"": analysis.DiagnosticIDs()},
		"cache": {"": cacheNames},
		"view":  {"": registryViews},
	}
	for _, f := range scrape(t, ts) {
		for _, s := range f.Samples {
			for k, v := range s.Labels {
				if k == "le" {
					continue // histogram bucket bound, numeric by construction
				}
				sets, ok := allowed[k]
				if !ok {
					t.Errorf("family %s: unexpected label key %q", f.Name, k)
					continue
				}
				set, ok := sets[f.Name]
				if !ok {
					set = sets[""]
				}
				found := false
				for _, val := range set {
					if v == val {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("family %s: label %s=%q outside the static set %v — dynamic cardinality",
						f.Name, k, v, set)
				}
			}
		}
	}
}

// TestErrorClassCounters is the table regression for error accounting:
// each error class lands on exactly one status, and every counter
// dimension (/statsz and /metrics agree) sees the request exactly once
// — in particular a 504 is a timeout AND a 5xx, and a 499 is a cancel
// AND a 4xx, never double-counted within a dimension.
func TestErrorClassCounters(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantKind   string
		d4, d5     int64 // expected deltas
		dTimeout   int64
		dCanceled  int64
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout", 0, 1, 1, 0},
		{"wrapped deadline", fmt.Errorf("plan: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "timeout", 0, 1, 1, 0},
		{"canceled", context.Canceled, 499, "canceled", 1, 0, 0, 1},
		{"wrapped canceled", fmt.Errorf("scan: %w", context.Canceled), 499, "canceled", 1, 0, 0, 1},
		{"bad request", &badRequestError{errors.New("twig is single-document")}, http.StatusBadRequest, "parse", 1, 0, 0, 0},
		{"engine", errors.New("boom"), http.StatusInternalServerError, "engine", 0, 1, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{})
			defer s.Close()
			before := s.Snapshot()
			rec := httptest.NewRecorder()
			s.writeSearchError(rec, tc.err)

			if rec.Code != tc.wantStatus {
				t.Errorf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Kind != tc.wantKind {
				t.Errorf("body kind = %q (err %v), want %q", er.Kind, err, tc.wantKind)
			}
			after := s.Snapshot()
			if got := after.Errors4xx - before.Errors4xx; got != tc.d4 {
				t.Errorf("statsz errors_4xx delta = %d, want %d", got, tc.d4)
			}
			if got := after.Errors5xx - before.Errors5xx; got != tc.d5 {
				t.Errorf("statsz errors_5xx delta = %d, want %d", got, tc.d5)
			}
			if got := after.Timeouts - before.Timeouts; got != tc.dTimeout {
				t.Errorf("statsz timeouts delta = %d, want %d", got, tc.dTimeout)
			}
			if got := after.Canceled - before.Canceled; got != tc.dCanceled {
				t.Errorf("statsz canceled delta = %d, want %d", got, tc.dCanceled)
			}
			// The Prometheus class counters must agree with /statsz.
			for class, want := range map[string]int64{
				"4xx": tc.d4, "5xx": tc.d5, "timeout": tc.dTimeout, "canceled": tc.dCanceled,
			} {
				if got := s.metrics.errors[class].Value(); got != want {
					t.Errorf("pimento_http_errors_total{class=%q} = %d, want %d", class, got, want)
				}
			}
		})
	}
}

// TestSlowQueryLog checks the slow-query pipeline end to end: a fresh
// execution past the threshold is logged (with query, plan and
// per-operator stats), a cache hit of the same request is not, and
// Close flushes the logger.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	capture := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s, ts := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond, // every execution is "slow"
		SlowQueryLog:       capture,
	})
	req := SearchRequest{Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3}
	post(t, ts, "/search", req) // MISS: executes, logs
	post(t, ts, "/search", req) // HIT: served from cache, must not log
	s.Close()                   // flush the logging goroutine

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-query log has %d entries, want 1 (the MISS):\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	line := lines[0]
	// The query is %q-escaped in the line, so match quote-free fragments.
	for _, want := range []string{"price < 2000", "scan(car)", "in=", "wall="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q:\n%s", want, line)
		}
	}
	if got := s.metrics.slowTotal.Value(); got != 1 {
		t.Errorf("pimento_slow_queries_total = %d, want 1", got)
	}
	if got := s.metrics.slowDropped.Value(); got != 0 {
		t.Errorf("pimento_slow_queries_dropped_total = %d, want 0", got)
	}
}

// TestSlowLogClose pins the close semantics: Close is idempotent, the
// logging goroutine exits (the stress suite's leak gate depends on
// it), and a post-Close observe drops instead of panicking on the
// closed channel.
func TestSlowLogClose(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{SlowQueryThreshold: time.Millisecond})
	s.slowlog.observe(slowQuery{Doc: "d", Query: "q", Elapsed: time.Second})
	s.Close()
	s.Close() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("slow-query goroutine leaked: %d goroutines before, %d after Close",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}

	dropped := s.metrics.slowDropped.Value()
	s.slowlog.observe(slowQuery{Doc: "d", Query: "q", Elapsed: time.Second})
	if got := s.metrics.slowDropped.Value(); got != dropped+1 {
		t.Errorf("post-Close observe: dropped %d -> %d, want +1", dropped, got)
	}
}
