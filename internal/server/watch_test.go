package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func getWatch(t testing.TB, url string) (int, WatchResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var wr WatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
			t.Fatalf("bad watch response: %v", err)
		}
	}
	return resp.StatusCode, wr
}

func TestWatchReplaysAndLongPolls(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // Adds publish gens 1 (cars), 2 (xmark)

	// A cursor at 0 replays the buffered history immediately.
	status, wr := getWatch(t, ts.URL+"/watch?since=0")
	if status != http.StatusOK || len(wr.Events) != 2 || wr.Gen != 2 || wr.Resync {
		t.Fatalf("replay = %d %+v, want 2 events at gen 2", status, wr)
	}
	if wr.Events[0] != (WatchEvent{Gen: 1, Op: "put", Doc: "cars"}) ||
		wr.Events[1] != (WatchEvent{Gen: 2, Op: "put", Doc: "xmark"}) {
		t.Fatalf("replay events = %+v", wr.Events)
	}

	// A current cursor with timeout_ms=0 returns immediately and empty.
	if status, wr = getWatch(t, ts.URL+"/watch?since=2&timeout_ms=0"); len(wr.Events) != 0 || wr.Gen != 2 {
		t.Fatalf("empty poll = %d %+v", status, wr)
	}

	// A parked long poll is woken by a mutation.
	type polled struct {
		status int
		wr     WatchResponse
	}
	done := make(chan polled, 1)
	go func() {
		st, w := getWatch(t, ts.URL+"/watch?since=2&timeout_ms=5000")
		done <- polled{st, w}
	}()
	// Let the poller park, then mutate.
	time.Sleep(50 * time.Millisecond)
	putDoc(t, ts, "late", carsXML)
	select {
	case p := <-done:
		if p.status != http.StatusOK || len(p.wr.Events) != 1 || p.wr.Events[0].Doc != "late" || p.wr.Events[0].Gen != 3 {
			t.Fatalf("woken poll = %d %+v", p.status, p.wr)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long poll was not woken by the PUT")
	}

	// Deletes are events too.
	deleteDoc(t, ts, "late")
	if _, wr = getWatch(t, ts.URL+"/watch?since=3&timeout_ms=0"); len(wr.Events) != 1 || wr.Events[0].Op != "delete" {
		t.Fatalf("delete event = %+v", wr)
	}

	// Malformed parameters are 400s.
	if status, _ = getWatch(t, ts.URL+"/watch?since=banana"); status != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", status)
	}
	if status, _ = getWatch(t, ts.URL+"/watch?timeout_ms=-5"); status != http.StatusBadRequest {
		t.Fatalf("bad timeout_ms = %d, want 400", status)
	}
}

// TestWatchResync: a cursor that has fallen off the bounded buffer is
// told to resync rather than handed a silently gapped delta.
func TestWatchResync(t *testing.T) {
	s := New(Config{WatchBuffer: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 8; i++ {
		putDoc(t, ts, fmt.Sprintf("doc%d", i), carsXML)
	}
	// Cursor 1 predates the 4-event window (gens 5..8 retained).
	status, wr := getWatch(t, ts.URL+"/watch?since=1")
	if status != http.StatusOK || !wr.Resync {
		t.Fatalf("stale cursor = %d %+v, want resync=true", status, wr)
	}
	if wr.Gen != 8 || len(wr.Events) != 4 {
		t.Fatalf("resync payload = %+v, want 4 retained events at gen 8", wr)
	}
	// The oldest retained cursor still replays without resync.
	if _, wr = getWatch(t, ts.URL+"/watch?since=4"); wr.Resync || len(wr.Events) != 4 {
		t.Fatalf("in-window cursor = %+v, want clean 4-event replay", wr)
	}
	// Statsz exposes the subscriber gauge (0 with no parked pollers).
	if st := s.Snapshot(); st.WatchSubscribers != 0 {
		t.Fatalf("watch subscribers = %d, want 0", st.WatchSubscribers)
	}
}

// TestWatchFutureCursor: a since cursor beyond the latest generation —
// e.g. a client resuming against a restarted server whose generation
// counter reset — can never be satisfied by waiting, so the poll must
// return resync=true immediately instead of parking until its timeout.
func TestWatchFutureCursor(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // latest generation is 2

	start := time.Now()
	status, wr := getWatch(t, ts.URL+"/watch?since=999&timeout_ms=5000")
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("future cursor = %d", status)
	}
	if !wr.Resync || wr.Gen != 2 || len(wr.Events) != 0 {
		t.Fatalf("future cursor = %+v, want immediate resync at gen 2 with no events", wr)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("future cursor long-polled for %s instead of returning immediately", elapsed)
	}
}
