// Named-profile tests: the /profiles CRUD contract, vet-on-write, the
// fingerprint-dedup acceptance criterion (N names over one body share
// one stored profile, one analysis verdict and one result-cache key
// space), and a fixed-seed concurrent register/search/delete stress
// walk (the `make registry-smoke` gate — run it under -race).
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
)

// putProfile PUTs raw profile DSL under /profiles/{name}.
func putProfile(t testing.TB, ts *httptest.Server, name, src string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/profiles/"+name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("PUT /profiles/%s: %v", name, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// getProfile GETs /profiles/{name}.
func getProfile(t testing.TB, ts *httptest.Server, name string) (int, []byte) {
	t.Helper()
	return get(t, ts, "/profiles/"+name)
}

// deleteProfile DELETEs /profiles/{name}.
func deleteProfile(t testing.TB, ts *httptest.Server, name string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/profiles/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("DELETE /profiles/%s: %v", name, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func decodeProfile(t testing.TB, data []byte) ProfileResponse {
	t.Helper()
	var pr ProfileResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("bad profile response %q: %v", data, err)
	}
	return pr
}

func TestProfileCRUDContract(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Create: 201 with the body's fingerprint.
	status, body := putProfile(t, ts, "alice", carsProfile)
	if status != http.StatusCreated {
		t.Fatalf("PUT new profile = %d, body %s", status, body)
	}
	pr := decodeProfile(t, body)
	if !pr.Created || pr.Name != "alice" || pr.Fingerprint == "" {
		t.Fatalf("create response = %+v", pr)
	}
	fp := pr.Fingerprint

	// Idempotent re-put: 200, same fingerprint.
	if status, body = putProfile(t, ts, "alice", carsProfile); status != http.StatusOK {
		t.Fatalf("re-PUT = %d, body %s", status, body)
	}
	if pr = decodeProfile(t, body); pr.Created || pr.Fingerprint != fp {
		t.Fatalf("re-put response = %+v", pr)
	}

	// GET echoes the registered source and share count.
	status, body = getProfile(t, ts, "alice")
	if status != http.StatusOK {
		t.Fatalf("GET = %d, body %s", status, body)
	}
	if pr = decodeProfile(t, body); pr.Source != carsProfile || pr.Shared != 1 || pr.Fingerprint != fp {
		t.Fatalf("GET response = %+v", pr)
	}

	// List.
	putProfile(t, ts, "bob", carsProfile)
	status, body = get(t, ts, "/profiles")
	var list ProfilesResponse
	if status != http.StatusOK || json.Unmarshal(body, &list) != nil {
		t.Fatalf("GET /profiles = %d, body %s", status, body)
	}
	if len(list.Profiles) != 2 || list.Distinct != 1 ||
		list.Profiles[0].Name != "alice" || list.Profiles[1].Name != "bob" {
		t.Fatalf("list = %+v", list)
	}

	// Delete: 200 once, 404 after; the shared body survives under bob.
	if status, _ = deleteProfile(t, ts, "alice"); status != http.StatusOK {
		t.Fatalf("DELETE = %d", status)
	}
	if status, _ = deleteProfile(t, ts, "alice"); status != http.StatusNotFound {
		t.Fatalf("re-DELETE = %d, want 404", status)
	}
	if status, _ = getProfile(t, ts, "alice"); status != http.StatusNotFound {
		t.Fatalf("GET deleted = %d, want 404", status)
	}
	if status, body = getProfile(t, ts, "bob"); status != http.StatusOK {
		t.Fatalf("GET surviving name = %d, body %s", status, body)
	}
}

func TestProfilePutRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		name       string
		profName   string
		source     string
		wantStatus int
	}{
		{"reserved name", "*", carsProfile, http.StatusBadRequest},
		{"malformed source", "ok", "sr ???", http.StatusBadRequest},
		{"vet rejection", "ok", ambiguousProfile, http.StatusBadRequest},
		{"oversized body", "ok", "# " + strings.Repeat("x", maxBodyBytes) + "\n" + carsProfile, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := putProfile(t, ts, tc.profName, tc.source)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", status, tc.wantStatus, body)
			}
			if s.Profiles().Len() != 0 {
				t.Fatalf("rejected put registered a name: %d bindings", s.Profiles().Len())
			}
		})
	}
}

// TestProfileVetOnWrite: a profile POST /lint flags with an
// error-severity diagnostic is rejected at registration with those
// diagnostics — the "error ⇔ Search rejects" contract extended to
// "error ⇔ registration rejects". A name that never registered can
// then never fail profile-scoped analysis at query time.
func TestProfileVetOnWrite(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := putProfile(t, ts, "ambig", ambiguousProfile)
	if status != http.StatusBadRequest {
		t.Fatalf("vet-rejected put = %d, body %s", status, body)
	}
	var rej ProfileRejection
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatalf("bad rejection body %q: %v", body, err)
	}
	if rej.Kind != "vet" || rej.Errors != 1 {
		t.Fatalf("rejection = %+v", rej)
	}
	found := false
	for _, d := range rej.Diagnostics {
		if d.ID == analysis.DiagVORAmbiguous {
			found = true
		}
	}
	if !found {
		t.Fatalf("rejection diagnostics missing %s: %s", analysis.DiagVORAmbiguous, body)
	}

	// The name never registered, so searching by it is a 404 — not a
	// query-time analysis failure.
	status, _, body = post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, ProfileName: "ambig", K: 3,
	})
	if status != http.StatusNotFound {
		t.Fatalf("search by rejected name = %d, body %s", status, body)
	}
}

// TestProfileDedupSharesVerdictAndCache is the PR's acceptance
// criterion: registering N names over one body yields one stored
// profile, one analysis-cache fill, and one shared result-cache key
// space — a search under any of the names warms the cache for all.
func TestProfileDedupSharesVerdictAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	missesBefore := s.AnalysisCache().Stats().Misses

	for _, name := range []string{"alice", "bob", "carol"} {
		if status, body := putProfile(t, ts, name, carsProfile); status != http.StatusCreated {
			t.Fatalf("PUT %s = %d, body %s", name, status, body)
		}
	}
	if d := s.Profiles().Distinct(); d != 1 {
		t.Fatalf("distinct bodies = %d, want 1", d)
	}
	if fills := s.AnalysisCache().Stats().Misses - missesBefore; fills != 1 {
		t.Fatalf("analysis fills for 3 names over one body = %d, want 1", fills)
	}

	// One search under alice fills the result cache for bob and carol:
	// the cache key folds the resolved profile content, never the name.
	req := SearchRequest{Doc: "cars", Query: carsQuery, ProfileName: "alice", K: 3}
	status, hdr, first := post(t, ts, "/search", req)
	if status != http.StatusOK || hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("search as alice = %d, X-Cache %q, body %s", status, hdr.Get("X-Cache"), first)
	}
	req.ProfileName = "bob"
	status, hdr, second := post(t, ts, "/search", req)
	if status != http.StatusOK || hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("search as bob = %d, X-Cache %q, body %s", status, hdr.Get("X-Cache"), second)
	}
	if !bytes.Equal(stablePart(t, first), stablePart(t, second)) {
		t.Fatalf("shared-cache payloads differ:\n%s\nvs\n%s", first, second)
	}
}

// TestProfileNameInlineEquivalence: a search by registered name is the
// same request as the identical inline profile — same payload, same
// result-cache entry.
func TestProfileNameInlineEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts, "alice", carsProfile)

	status, hdr, inline := post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, Profile: carsProfile, K: 3,
	})
	if status != http.StatusOK || hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("inline search = %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	status, hdr, named := post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, ProfileName: "alice", K: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("named search = %d, body %s", status, named)
	}
	if hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("named search X-Cache = %q, want HIT of the inline entry", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(normalizePayload(t, inline), normalizePayload(t, named)) {
		t.Fatalf("inline vs named payloads differ:\n%s\nvs\n%s", inline, named)
	}
}

func TestProfileNameSearchErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts, "alice", carsProfile)

	// Unknown name: 404, classified not_found.
	status, _, body := post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, ProfileName: "nobody", K: 3,
	})
	if status != http.StatusNotFound {
		t.Fatalf("unknown profile_name = %d, body %s", status, body)
	}
	var e struct{ Kind string }
	if json.Unmarshal(body, &e) != nil || e.Kind != "not_found" {
		t.Fatalf("error body = %s, want kind not_found", body)
	}

	// profile and profile_name are mutually exclusive.
	status, _, body = post(t, ts, "/search", SearchRequest{
		Doc: "cars", Query: carsQuery, Profile: carsProfile, ProfileName: "alice", K: 3,
	})
	if status != http.StatusBadRequest {
		t.Fatalf("profile+profile_name = %d, body %s", status, body)
	}
}

// TestProfileRebindChangesCacheKey: rebinding a name to a new body
// routes subsequent searches to a different result-cache entry — the
// key follows content, not the name.
func TestProfileRebindChangesCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putProfile(t, ts, "alice", carsProfile)

	req := SearchRequest{Doc: "cars", Query: carsQuery, ProfileName: "alice", K: 3}
	if _, hdr, _ := post(t, ts, "/search", req); hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("first search X-Cache = %q", hdr.Get("X-Cache"))
	}
	if _, hdr, _ := post(t, ts, "/search", req); hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("warm search X-Cache = %q", hdr.Get("X-Cache"))
	}

	// Rebind alice to a different (clean) body.
	rebound := `
kor w9: x.tag = car & y.tag = car & ftcontains(x, "low mileage") => x < y
rank K,V,S
`
	if status, body := putProfile(t, ts, "alice", rebound); status != http.StatusOK {
		t.Fatalf("rebind = %d, body %s", status, body)
	}
	if _, hdr, _ := post(t, ts, "/search", req); hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("post-rebind search X-Cache = %q, want MISS (new content, new key)", hdr.Get("X-Cache"))
	}
}

// TestRegistryStress is the `make registry-smoke` gate: a fixed-seed
// concurrent register/search-by-name/delete walk. Every response must
// be a clean, classified outcome (no 5xx), and no goroutines may leak
// once the traffic stops. Run it under -race; that is the point.
func TestRegistryStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	s, ts := newTestServer(t, Config{CacheSize: 16})

	bodies := []string{carsProfile, `
kor w9: x.tag = car & y.tag = car & ftcontains(x, "low mileage") => x < y
rank K,V,S
`, `
kor w8: x.tag = car & y.tag = car & ftcontains(x, "good condition") => x < y
rank V,K,S
`}
	names := []string{"alice", "bob", "carol", "dave"}

	before := runtime.NumGoroutine()

	const (
		workers = 8
		steps   = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < steps; i++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(4) {
				case 0:
					status, body := putProfile(t, ts, name, bodies[rng.Intn(len(bodies))])
					if status != http.StatusCreated && status != http.StatusOK {
						t.Errorf("PUT %s = %d, body %s", name, status, body)
					}
				case 1:
					if status, body := deleteProfile(t, ts, name); status != http.StatusOK && status != http.StatusNotFound {
						t.Errorf("DELETE %s = %d, body %s", name, status, body)
					}
				default:
					status, _, body := post(t, ts, "/search", SearchRequest{
						Doc: "cars", Query: carsQuery, ProfileName: name, K: 3,
					})
					// The name may or may not be bound at this instant; both
					// outcomes are legal — anything else is a bug.
					if status != http.StatusOK && status != http.StatusNotFound {
						t.Errorf("search as %s = %d, body %s", name, status, body)
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	// Registry invariants after the dust settles.
	st := s.Profiles().Stats()
	if st.Distinct > len(bodies) || st.Names > len(names) {
		t.Errorf("registry stats out of bounds: %+v", st)
	}

	// Goroutine-leak check (same settle loop as TestServerStress).
	if tr, ok := ts.Client().Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before stress, %d after settle\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
